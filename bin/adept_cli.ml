(* ADePT — Automatic Deployment Planning Tool (the paper's Section 6
   "near future" objective, built on this library).

   Subcommands:
     platform   generate a platform catalog
     plan       plan a deployment and print/export it
     eval       evaluate a hierarchy XML against the model
     simulate   measure a deployment in the discrete-event simulator
     observe    instrumented run + model-vs-measured report / exports
     trace      per-request causal traces, critical-path attribution
     monitor    continuous monitoring: scrapes, alert rules, model drift
     experiment run paper reproductions by id
     bench-node measure this machine's MFlop/s (Linpack mini-benchmark)  *)

open Cmdliner

let exit_err msg =
  prerr_endline ("adept: " ^ msg);
  exit 1

(* Typed errors from the planning/replanning pipeline become exit
   diagnostics here, at the edge. *)
let exit_error e = exit_err (Adept.Error.to_string e)

let params = Adept_model.Params.diet_lyon

(* ---------- shared arguments ---------- *)

let platform_file =
  let doc = "Platform catalog file (see Catalog format in the README)." in
  Arg.(value & opt (some string) None & info [ "platform" ] ~docv:"FILE" ~doc)

let nodes_arg =
  let doc = "Number of synthetic nodes when no catalog is given." in
  Arg.(value & opt int 50 & info [ "nodes"; "n" ] ~docv:"N" ~doc)

let power_arg =
  let doc = "Node power in MFlop/s for synthetic platforms." in
  Arg.(value & opt float 730.0 & info [ "power" ] ~docv:"MFLOPS" ~doc)

let bandwidth_arg =
  let doc = "Link bandwidth in Mbit/s for synthetic platforms." in
  Arg.(value & opt float 1000.0 & info [ "bandwidth"; "B" ] ~docv:"MBITS" ~doc)

let hetero_arg =
  let doc =
    "Heterogenise the synthetic platform with background load (the paper's \
     Section 5.3 method)."
  in
  Arg.(value & flag & info [ "heterogeneous" ] ~doc)

let seed_arg =
  let doc = "Random seed for platform generation and simulation." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let dgemm_arg =
  let doc = "DGEMM matrix order defining the workload." in
  Arg.(value & opt int 310 & info [ "dgemm" ] ~docv:"N" ~doc)

let demand_arg =
  let doc = "Client demand in requests/s (default: unbounded)." in
  Arg.(value & opt (some float) None & info [ "demand" ] ~docv:"REQS" ~doc)

let strategy_arg =
  let doc =
    "Planning strategy: heuristic, star, balanced:<k>, dary:<d>, homogeneous, \
     exhaustive."
  in
  Arg.(value & opt string "heuristic" & info [ "strategy" ] ~docv:"NAME" ~doc)

let replan_mode_arg =
  let doc =
    "Self-heal: how replans are planned — incremental (patch the running \
     hierarchy, falling back to a from-scratch plan when the patch is not \
     good enough) or full (always replan from scratch)."
  in
  Arg.(value & opt string "incremental" & info [ "replan-mode" ] ~docv:"MODE" ~doc)

let prefer_incremental_of_mode = function
  | "incremental" -> true
  | "full" -> false
  | other -> exit_err ("--replan-mode must be incremental or full, got " ^ other)

let rollout_mode_arg =
  let doc =
    "Self-heal: how accepted replans are enacted — off (one-shot swap, the \
     default), direct (one-shot swap recorded as a decision trail), or canary \
     (stage on a client fraction, bake against the alert rules, then promote \
     or roll back)."
  in
  Arg.(value & opt string "off" & info [ "rollout" ] ~docv:"MODE" ~doc)

let canary_fraction_arg =
  let doc =
    "Canary rollout: fraction of clients routed to the staged hierarchy \
     during the bake (deterministic hash of the client id)."
  in
  Arg.(value & opt float 0.25 & info [ "canary-fraction" ] ~docv:"FRACTION" ~doc)

let bake_window_arg =
  let doc =
    "Canary rollout: simulated seconds the canary is observed before the \
     promote-or-rollback verdict."
  in
  Arg.(value & opt float 2.0 & info [ "bake-window" ] ~docv:"SECONDS" ~doc)

let build_platform file n power bandwidth hetero seed =
  match file with
  | Some path -> (
      match Adept_platform.Catalog.load path with
      | Ok p -> p
      | Error e -> exit_err ("cannot load platform: " ^ e))
  | None ->
      if hetero then
        let rng = Adept_util.Rng.create seed in
        Adept_platform.Generator.background_loaded ~bandwidth ~rng ~n ~power
          ~load_fraction:0.65 ~load_levels:4 ()
      else Adept_platform.Generator.homogeneous ~bandwidth ~n ~power ()

let demand_of = function
  | None -> Adept_model.Demand.unbounded
  | Some r -> Adept_model.Demand.rate r

(* Accept either a bare hierarchy XML or a full GoDIET deployment document. *)
let load_hierarchy platform path =
  let text =
    match In_channel.with_open_text path In_channel.input_all with
    | t -> t
    | exception Sys_error e -> exit_err e
  in
  match Adept_hierarchy.Xml.of_string_on platform text with
  | Ok tree -> tree
  | Error direct_err -> (
      match Adept_godiet.Writer.parse_document text with
      | Ok shape -> (
          match
            Adept_hierarchy.Xml.of_string_on platform (Adept_hierarchy.Xml.to_string shape)
          with
          | Ok tree -> tree
          | Error e -> exit_err ("cannot resolve hierarchy hosts: " ^ e))
      | Error _ -> exit_err ("cannot parse hierarchy: " ^ direct_err))

(* ---------- platform ---------- *)

let platform_cmd =
  let run file n power bandwidth hetero seed output =
    let platform = build_platform file n power bandwidth hetero seed in
    let text = Adept_platform.Catalog.to_string platform in
    (match output with
    | None -> print_string text
    | Some path ->
        Adept_platform.Catalog.save platform path;
        Printf.printf "wrote %s\n" path);
    Format.printf "%a@." Adept_platform.Platform.pp_summary platform
  in
  let output =
    Arg.(value & opt (some string) None & info [ "output"; "o" ] ~docv:"FILE"
           ~doc:"Write the catalog to this file.")
  in
  Cmd.v
    (Cmd.info "platform" ~doc:"Generate or inspect a platform catalog")
    Term.(const run $ platform_file $ nodes_arg $ power_arg $ bandwidth_arg
          $ hetero_arg $ seed_arg $ output)

(* ---------- plan ---------- *)

let plan_cmd =
  let run file n power bandwidth hetero seed dgemm demand strategy xml_out dot_out =
    let platform = build_platform file n power bandwidth hetero seed in
    let wapp = Adept_workload.Dgemm.(mflops (make dgemm)) in
    let strategy =
      match Adept.Planner.strategy_of_string strategy with
      | Ok s -> s
      | Error e -> exit_error e
    in
    match
      Adept.Planner.run strategy params ~platform ~wapp ~demand:(demand_of demand)
    with
    | Error e -> exit_error e
    | Ok plan ->
        Format.printf "%a@." Adept.Planner.pp_plan plan;
        (match
           Adept_platform.Link.uniform_bandwidth (Adept_platform.Platform.link platform)
         with
        | Some bandwidth ->
            Format.printf "%s@."
              (Adept.Evaluate.report params ~bandwidth ~wapp plan.Adept.Planner.tree)
        | None ->
            Format.printf "rho (heterogeneous links) = %.2f req/s@."
              (Adept.Evaluate.rho_hetero params ~platform ~wapp plan.Adept.Planner.tree));
        Option.iter
          (fun path ->
            Adept_godiet.Writer.save platform plan.Adept.Planner.tree path;
            Printf.printf "wrote GoDIET XML to %s\n" path)
          xml_out;
        Option.iter
          (fun path ->
            Adept_hierarchy.Dot.save plan.Adept.Planner.tree path;
            Printf.printf "wrote DOT to %s\n" path)
          dot_out
  in
  let xml_out =
    Arg.(value & opt (some string) None & info [ "xml" ] ~docv:"FILE"
           ~doc:"Export the plan as a GoDIET XML document.")
  in
  let dot_out =
    Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE"
           ~doc:"Export the hierarchy as Graphviz DOT.")
  in
  Cmd.v
    (Cmd.info "plan" ~doc:"Plan a middleware deployment")
    Term.(const run $ platform_file $ nodes_arg $ power_arg $ bandwidth_arg
          $ hetero_arg $ seed_arg $ dgemm_arg $ demand_arg $ strategy_arg
          $ xml_out $ dot_out)

(* ---------- eval ---------- *)

let eval_cmd =
  let run file n power bandwidth hetero seed dgemm xml =
    let platform = build_platform file n power bandwidth hetero seed in
    let wapp = Adept_workload.Dgemm.(mflops (make dgemm)) in
    let tree = load_hierarchy platform xml in
    Format.printf "%s@."
      (Adept.Evaluate.report params
         ~bandwidth:(Adept_platform.Platform.uniform_bandwidth platform)
         ~wapp tree)
  in
  let xml =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"HIERARCHY_XML"
           ~doc:"Hierarchy XML file to evaluate.")
  in
  Cmd.v
    (Cmd.info "eval" ~doc:"Evaluate a hierarchy XML under the throughput model")
    Term.(const run $ platform_file $ nodes_arg $ power_arg $ bandwidth_arg
          $ hetero_arg $ seed_arg $ dgemm_arg $ xml)

(* ---------- simulate ---------- *)

let simulate_cmd =
  let run file n power bandwidth hetero seed dgemm demand strategy clients warmup
      duration crash_rate mttr drop fault_seed timeout service_timeout retries
      backoff patience self_heal degrade_threshold cooldown max_replans
      replan_mode rollout_mode canary_fraction bake_window =
    if crash_rate < 0.0 then exit_err "--crash-rate must be >= 0";
    if not (drop >= 0.0 && drop < 1.0) then exit_err "--drop must be in [0, 1)";
    if mttr <= 0.0 then exit_err "--mttr must be > 0";
    (* validate even when --self-heal is absent: a typo must not pass silently *)
    let prefer_incremental = prefer_incremental_of_mode replan_mode in
    let rollout =
      match Adept_sim.Rollout.mode_of_string rollout_mode with
      | Error e -> exit_error e
      | Ok mode -> (
          match
            Adept_sim.Rollout.config ~canary_fraction ~bake_window mode
          with
          | Ok r -> r
          | Error e -> exit_error e)
    in
    let platform = build_platform file n power bandwidth hetero seed in
    let wapp = Adept_workload.Dgemm.(mflops (make dgemm)) in
    let strategy =
      match Adept.Planner.strategy_of_string strategy with
      | Ok s -> s
      | Error e -> exit_error e
    in
    let controller =
      match self_heal with
      | None -> None
      | Some policy_name -> (
          let policy =
            match policy_name with
            | "off" -> Adept_sim.Controller.Off
            | "eager" -> Adept_sim.Controller.Eager
            | "hysteresis" -> Adept_sim.Controller.Hysteresis
            | other ->
                exit_err
                  ("--self-heal must be off, eager or hysteresis, got " ^ other)
          in
          match
            Adept_sim.Controller.config ~strategy ~threshold:degrade_threshold
              ~cooldown ~max_replans
              ~prefer_incremental ~rollout policy
          with
          | Ok cfg -> Some cfg
          | Error e -> exit_error e)
    in
    match
      Adept.Planner.run strategy params ~platform ~wapp ~demand:(demand_of demand)
    with
    | Error e -> exit_error e
    | Ok plan ->
        Format.printf "%a@." Adept.Planner.pp_plan plan;
        let job = Adept_workload.Job.of_dgemm (Adept_workload.Dgemm.make dgemm) in
        let faults =
          if crash_rate <= 0.0 && drop <= 0.0 then Adept_sim.Faults.none
          else begin
            let tree = plan.Adept.Planner.tree in
            let root = Adept_platform.Node.id (Adept_hierarchy.Tree.root_node tree) in
            (* everything but the root agent is fair game for crashes *)
            let crashable =
              List.filter_map
                (fun node ->
                  let id = Adept_platform.Node.id node in
                  if id = root then None else Some id)
                (Adept_hierarchy.Tree.nodes tree)
            in
            let f =
              match
                Adept_sim.Faults.make ~timeout ~service_timeout
                  ~max_retries:retries ~backoff ~patience ()
              with
              | Ok f -> f
              | Error e -> exit_error e
            in
            let f =
              if crash_rate > 0.0 then
                Adept_sim.Faults.seeded_crashes
                  ~rng:(Adept_util.Rng.create fault_seed)
                  ~nodes:crashable ~rate:crash_rate ~mttr
                  ~horizon:(warmup +. duration) f
              else f
            in
            if drop > 0.0 then
              Adept_sim.Faults.with_message_loss ~probability:drop ~seed:fault_seed f
            else f
          end
        in
        let scenario =
          Adept_sim.Scenario.make ~faults ?controller
            ~demand:(demand_of demand) ~seed ~params ~platform
            ~client:(Adept_workload.Client.closed_loop job)
            plan.Adept.Planner.tree
        in
        let r = Adept_sim.Scenario.run_fixed scenario ~clients ~warmup ~duration in
        Printf.printf
          "simulated: %d clients -> %.2f req/s (model %.2f), %d completed, mean \
           response %.4fs\n"
          clients r.Adept_sim.Scenario.throughput plan.Adept.Planner.predicted_rho
          r.Adept_sim.Scenario.completed_total
          (Option.value ~default:Float.nan r.Adept_sim.Scenario.mean_response);
        if not (Adept_sim.Faults.is_none faults) then begin
          let f = r.Adept_sim.Scenario.faults in
          Printf.printf
            "faults: %d crash(es), %d recovery(ies), %d message(s) lost, %d \
             timeout(s), %d request(s) abandoned, %d prune(s), %d rejoin(s)\n"
            f.Adept_sim.Middleware.crashes f.Adept_sim.Middleware.recoveries
            f.Adept_sim.Middleware.messages_lost f.Adept_sim.Middleware.timeouts
            f.Adept_sim.Middleware.abandoned f.Adept_sim.Middleware.prunes
            f.Adept_sim.Middleware.rejoins;
          (match f.Adept_sim.Middleware.recovery_latencies with
          | [] -> ()
          | ls ->
              Printf.printf "mean recovery latency: %.3fs over %d prune(s)\n"
                (List.fold_left ( +. ) 0.0 ls /. float_of_int (List.length ls))
                (List.length ls))
        end;
        if controller <> None then begin
          Printf.printf
            "self-heal: %d replan(s) enacted, %.2fs degraded, %d request(s) lost \
             mid-migration\n"
            (List.length r.Adept_sim.Scenario.replans)
            r.Adept_sim.Scenario.degraded_seconds
            r.Adept_sim.Scenario.migration_lost;
          List.iter
            (fun record ->
              Format.printf "  %a@." Adept_sim.Controller.pp_record record)
            r.Adept_sim.Scenario.replans
        end
  in
  let clients =
    Arg.(value & opt int 100 & info [ "clients" ] ~docv:"N"
           ~doc:"Closed-loop client population.")
  in
  let warmup =
    Arg.(value & opt float 2.0 & info [ "warmup" ] ~docv:"SECONDS"
           ~doc:"Simulated warm-up before measurement.")
  in
  let duration =
    Arg.(value & opt float 4.0 & info [ "duration" ] ~docv:"SECONDS"
           ~doc:"Simulated measurement window.")
  in
  let crash_rate =
    Arg.(value & opt float 0.0 & info [ "crash-rate" ] ~docv:"RATE"
           ~doc:"Fault injection: crashes per non-root node per simulated second \
                 (Poisson; 0 disables).")
  in
  let mttr =
    Arg.(value & opt float 2.0 & info [ "mttr" ] ~docv:"SECONDS"
           ~doc:"Fault injection: mean time to repair after a crash.")
  in
  let drop =
    Arg.(value & opt float 0.0 & info [ "drop" ] ~docv:"PROB"
           ~doc:"Fault injection: per-message loss probability (0 disables).")
  in
  let fault_seed =
    Arg.(value & opt int 7 & info [ "fault-seed" ] ~docv:"SEED"
           ~doc:"Seed for the crash schedule and message-loss stream.")
  in
  let timeout =
    Arg.(value & opt float 0.5 & info [ "timeout" ] ~docv:"SECONDS"
           ~doc:"Fault reaction: client-side scheduling round-trip timeout.")
  in
  let service_timeout =
    Arg.(value & opt float 5.0 & info [ "service-timeout" ] ~docv:"SECONDS"
           ~doc:"Fault reaction: client-side service-phase timeout.")
  in
  let retries =
    Arg.(value & opt int 3 & info [ "retries" ] ~docv:"N"
           ~doc:"Fault reaction: scheduling retries after the first attempt.")
  in
  let backoff =
    Arg.(value & opt float 2.0 & info [ "backoff" ] ~docv:"FACTOR"
           ~doc:"Fault reaction: timeout multiplier per retry (>= 1).")
  in
  let patience =
    Arg.(value & opt float 0.25 & info [ "patience" ] ~docv:"SECONDS"
           ~doc:"Fault reaction: agent-side wait for child replies.")
  in
  let self_heal =
    Arg.(value & opt (some string) None & info [ "self-heal" ] ~docv:"POLICY"
           ~doc:"Attach the online redeployment controller: off (monitor only), \
                 eager, or hysteresis.")
  in
  let degrade_threshold =
    Arg.(value & opt float 0.5 & info [ "degrade-threshold" ] ~docv:"FRACTION"
           ~doc:"Self-heal: degraded when observed throughput falls below this \
                 fraction of the model's rho.")
  in
  let cooldown =
    Arg.(value & opt float 20.0 & info [ "cooldown" ] ~docv:"SECONDS"
           ~doc:"Self-heal: minimum time between enacted replans (hysteresis).")
  in
  let max_replans =
    Arg.(value & opt int 3 & info [ "max-replans" ] ~docv:"N"
           ~doc:"Self-heal: replan budget for the whole run.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Plan and measure a deployment in the simulator")
    Term.(const run $ platform_file $ nodes_arg $ power_arg $ bandwidth_arg
          $ hetero_arg $ seed_arg $ dgemm_arg $ demand_arg $ strategy_arg
          $ clients $ warmup $ duration $ crash_rate $ mttr $ drop $ fault_seed
          $ timeout $ service_timeout $ retries $ backoff $ patience $ self_heal
          $ degrade_threshold $ cooldown $ max_replans $ replan_mode_arg
          $ rollout_mode_arg $ canary_fraction_arg $ bake_window_arg)

(* ---------- observe ---------- *)

let observe_cmd =
  let run file n power bandwidth hetero seed dgemm demand strategy clients warmup
      duration prom_out jsonl_out csv_out max_dev =
    let platform = build_platform file n power bandwidth hetero seed in
    let wapp = Adept_workload.Dgemm.(mflops (make dgemm)) in
    let strategy =
      match Adept.Planner.strategy_of_string strategy with
      | Ok s -> s
      | Error e -> exit_error e
    in
    match
      Adept.Planner.run strategy params ~platform ~wapp ~demand:(demand_of demand)
    with
    | Error e -> exit_error e
    | Ok plan ->
        let tree = plan.Adept.Planner.tree in
        Format.printf "%a@." Adept.Planner.pp_plan plan;
        let job = Adept_workload.Job.of_dgemm (Adept_workload.Dgemm.make dgemm) in
        let registry = Adept_obs.Registry.create () in
        let strategy_labels =
          Adept_obs.Label.v
            [ (Adept_obs.Semconv.l_strategy, Adept.Planner.strategy_name strategy) ]
        in
        Adept_obs.Counter.inc
          (Adept_obs.Registry.counter registry ~labels:strategy_labels
             Adept_obs.Semconv.planner_plans_total);
        Adept_obs.Counter.inc
          ~by:(float_of_int plan.Adept.Planner.evaluations)
          (Adept_obs.Registry.counter registry ~labels:strategy_labels
             Adept_obs.Semconv.planner_evaluations_total);
        let scenario =
          Adept_sim.Scenario.make ~seed ~params ~platform
            ~client:(Adept_workload.Client.closed_loop job)
            tree
        in
        let tracer = Adept_obs.Tracer.create () in
        let trace = Adept_sim.Trace.create ~tracer () in
        let r =
          Adept_sim.Scenario.run_fixed ~trace ~registry scenario ~clients ~warmup
            ~duration
        in
        Printf.printf
          "simulated: %d clients -> %.2f req/s over %.1fs after %.1fs warm-up\n"
          clients r.Adept_sim.Scenario.throughput duration warmup;
        Printf.printf "trace buffer: %d item(s), %d dropped\n\n"
          (Adept_obs.Tracer.length tracer)
          (Adept_obs.Tracer.dropped tracer);
        let report = Adept_obs.Report.build ~registry ~params ~platform ~wapp ~tree in
        print_string (Adept_obs.Report.render report);
        let families = Adept_obs.Registry.snapshot registry in
        let write path text =
          Out_channel.with_open_text path (fun oc ->
              Out_channel.output_string oc text)
        in
        Option.iter
          (fun path ->
            write path (Adept_obs.Export.prometheus families);
            Printf.printf "wrote Prometheus text to %s\n" path)
          prom_out;
        Option.iter
          (fun path ->
            write path (Adept_obs.Export.jsonl families);
            Printf.printf "wrote JSON lines to %s\n" path)
          jsonl_out;
        Option.iter
          (fun path ->
            Adept_util.Csv.save (Adept_obs.Export.csv families) path;
            Printf.printf "wrote CSV to %s\n" path)
          csv_out;
        (match max_dev with
        | None -> ()
        | Some tol -> (
            match Adept_obs.Report.max_deviation report with
            | None -> exit_err "observe: nothing measured, cannot gate on deviation"
            | Some d when d > tol ->
                exit_err
                  (Printf.sprintf
                     "observe: max model-vs-measured deviation %.2f%% exceeds \
                      tolerance %.2f%%"
                     (100.0 *. d) (100.0 *. tol))
            | Some d ->
                Printf.printf "deviation gate passed: %.2f%% <= %.2f%%\n"
                  (100.0 *. d) (100.0 *. tol)))
  in
  let clients =
    Arg.(value & opt int 100 & info [ "clients" ] ~docv:"N"
           ~doc:"Closed-loop client population (saturate for a meaningful rho \
                 comparison).")
  in
  let warmup =
    Arg.(value & opt float 2.0 & info [ "warmup" ] ~docv:"SECONDS"
           ~doc:"Simulated warm-up before measurement.")
  in
  let duration =
    Arg.(value & opt float 4.0 & info [ "duration" ] ~docv:"SECONDS"
           ~doc:"Simulated measurement window.")
  in
  let prom_out =
    Arg.(value & opt (some string) None & info [ "prom" ] ~docv:"FILE"
           ~doc:"Export all metrics in Prometheus text format.")
  in
  let jsonl_out =
    Arg.(value & opt (some string) None & info [ "jsonl" ] ~docv:"FILE"
           ~doc:"Export all metrics as JSON lines.")
  in
  let csv_out =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE"
           ~doc:"Export all metrics as a flat CSV table.")
  in
  let max_dev =
    Arg.(value & opt (some float) None & info [ "max-deviation" ] ~docv:"FRACTION"
           ~doc:"Fail (exit 1) if any model-vs-measured relative deviation \
                 exceeds this fraction — the CI fidelity gate.")
  in
  Cmd.v
    (Cmd.info "observe"
       ~doc:"Run an instrumented simulation and report model-vs-measured costs")
    Term.(const run $ platform_file $ nodes_arg $ power_arg $ bandwidth_arg
          $ hetero_arg $ seed_arg $ dgemm_arg $ demand_arg $ strategy_arg
          $ clients $ warmup $ duration $ prom_out $ jsonl_out $ csv_out $ max_dev)

(* ---------- trace ---------- *)

let trace_cmd =
  let run file n power bandwidth hetero seed dgemm demand strategy clients warmup
      duration sample_rate slowest chrome_out dot_out assert_match =
    if not (sample_rate >= 0.0 && sample_rate <= 1.0) then
      exit_err "--trace-sample-rate must be in [0, 1]";
    if slowest < 1 then exit_err "--slowest must be >= 1";
    let platform = build_platform file n power bandwidth hetero seed in
    let wapp = Adept_workload.Dgemm.(mflops (make dgemm)) in
    let strategy =
      match Adept.Planner.strategy_of_string strategy with
      | Ok s -> s
      | Error e -> exit_error e
    in
    match
      Adept.Planner.run strategy params ~platform ~wapp ~demand:(demand_of demand)
    with
    | Error e -> exit_error e
    | Ok plan ->
        let tree = plan.Adept.Planner.tree in
        Format.printf "%a@." Adept.Planner.pp_plan plan;
        let job = Adept_workload.Job.of_dgemm (Adept_workload.Dgemm.make dgemm) in
        let registry = Adept_obs.Registry.create () in
        let store =
          Adept_obs.Request_trace.create ~sample_rate ~max_traces:slowest ()
        in
        let scenario =
          Adept_sim.Scenario.make ~seed ~params ~platform
            ~client:(Adept_workload.Client.closed_loop job)
            tree
        in
        let r =
          Adept_sim.Scenario.run_fixed ~registry ~rtrace:store scenario ~clients
            ~warmup ~duration
        in
        Printf.printf
          "simulated: %d clients -> %.2f req/s over %.1fs after %.1fs warm-up\n\n"
          clients r.Adept_sim.Scenario.throughput duration warmup;
        let utilization =
          match
            Adept_obs.Registry.find registry Adept_obs.Semconv.node_utilization_ratio
          with
          | None -> []
          | Some fam ->
              List.filter_map
                (fun (labels, value) ->
                  match
                    ( Option.bind
                        (Adept_obs.Label.find labels Adept_obs.Semconv.l_node)
                        int_of_string_opt,
                      value )
                  with
                  | Some id, Adept_obs.Registry.Gauge u -> Some (id, u)
                  | _ -> None)
                fam.Adept_obs.Registry.series
        in
        let predicted =
          Adept.Evaluate.bottleneck_element params
            ~bandwidth:(Adept_platform.Platform.uniform_bandwidth platform)
            ~wapp tree
        in
        let attribution =
          Adept_obs.Attribution.build ~store ~tree ~utilization ~predicted ()
        in
        print_string (Adept_obs.Attribution.render attribution);
        (match Adept_obs.Request_trace.exemplars store with
        | [] -> ()
        | worst :: _ ->
            Printf.printf "\nslowest request (trace %d, %.4fs):\n%s"
              worst.Adept_obs.Request_trace.tr_id
              (Adept_obs.Request_trace.duration worst)
              (Adept_obs.Critical_path.render worst));
        let write path text =
          Out_channel.with_open_text path (fun oc ->
              Out_channel.output_string oc text)
        in
        Option.iter
          (fun path ->
            write path (Adept_obs.Export.chrome_trace store);
            Printf.printf "wrote Chrome trace JSON to %s\n" path)
          chrome_out;
        Option.iter
          (fun path ->
            write path (Adept_obs.Attribution.heat_dot attribution ~tree);
            Printf.printf "wrote utilization-heat DOT to %s\n" path)
          dot_out;
        if assert_match then
          match Adept_obs.Attribution.matches attribution with
          | Some true ->
              Printf.printf "bottleneck gate passed: measurement matches the model\n"
          | Some false ->
              exit_err
                "trace: measured bottleneck disagrees with the model prediction"
          | None ->
              exit_err "trace: nothing measured (or no prediction), cannot gate"
  in
  let clients =
    Arg.(value & opt int 100 & info [ "clients" ] ~docv:"N"
           ~doc:"Closed-loop client population (saturate for a meaningful \
                 bottleneck).")
  in
  let warmup =
    Arg.(value & opt float 2.0 & info [ "warmup" ] ~docv:"SECONDS"
           ~doc:"Simulated warm-up before measurement.")
  in
  let duration =
    Arg.(value & opt float 4.0 & info [ "duration" ] ~docv:"SECONDS"
           ~doc:"Simulated measurement window.")
  in
  let sample_rate =
    Arg.(value & opt float 1.0 & info [ "trace-sample-rate" ] ~docv:"FRACTION"
           ~doc:"Fraction of requests traced, decided by a deterministic hash \
                 of the trace id (0 disables tracing, 1 traces everything).")
  in
  let slowest =
    Arg.(value & opt int 16 & info [ "slowest" ] ~docv:"N"
           ~doc:"Retain the N slowest traces as exemplars (evictions are \
                 counted as dropped).")
  in
  let chrome_out =
    Arg.(value & opt (some string) None & info [ "chrome" ] ~docv:"FILE"
           ~doc:"Export retained traces as Chrome trace-event JSON \
                 (chrome://tracing, Perfetto).")
  in
  let dot_out =
    Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE"
           ~doc:"Export the hierarchy as Graphviz DOT with elements shaded by \
                 critical-path share.")
  in
  let assert_match =
    Arg.(value & flag & info [ "assert-match" ]
           ~doc:"Fail (exit 1) unless the measured bottleneck element matches \
                 the model's Eqs. 6-14 prediction — the CI smoke gate.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Trace per-request critical paths and attribute the bottleneck")
    Term.(const run $ platform_file $ nodes_arg $ power_arg $ bandwidth_arg
          $ hetero_arg $ seed_arg $ dgemm_arg $ demand_arg $ strategy_arg
          $ clients $ warmup $ duration $ sample_rate $ slowest $ chrome_out
          $ dot_out $ assert_match)

(* ---------- monitor ---------- *)

(* "NODE:AT" or "NODE:AT:RECOVER" -> (node, at, recover_at option) *)
let parse_crash spec =
  let fail () = exit_err ("--crash expects NODE:AT[:RECOVER], got " ^ spec) in
  let int_ s = match int_of_string_opt s with Some v -> v | None -> fail () in
  let float_ s =
    match float_of_string_opt s with Some v -> v | None -> fail ()
  in
  match String.split_on_char ':' spec with
  | [ node; at ] -> (int_ node, float_ at, None)
  | [ node; at; recover ] -> (int_ node, float_ at, Some (float_ recover))
  | _ -> fail ()

let monitor_cmd =
  let run file n power bandwidth hetero seed dgemm demand strategy clients warmup
      duration scrape_interval retention rules_file crashes crash_rate mttr drop
      fault_seed
      timeout service_timeout retries backoff patience self_heal degrade_threshold
      sample_period window hold_time cooldown max_replans replan_mode
      drift_tolerance drift_hold rule_window timeline_out alerts_out html_out =
    if scrape_interval < 0.0 then exit_err "--scrape-interval must be >= 0";
    if crash_rate < 0.0 then exit_err "--crash-rate must be >= 0";
    if not (drop >= 0.0 && drop < 1.0) then exit_err "--drop must be in [0, 1)";
    if mttr <= 0.0 then exit_err "--mttr must be > 0";
    (* validate even when --self-heal is absent: a typo must not pass silently *)
    let prefer_incremental = prefer_incremental_of_mode replan_mode in
    let platform = build_platform file n power bandwidth hetero seed in
    let wapp = Adept_workload.Dgemm.(mflops (make dgemm)) in
    let strategy =
      match Adept.Planner.strategy_of_string strategy with
      | Ok s -> s
      | Error e -> exit_error e
    in
    let crashes = List.map parse_crash crashes in
    match
      Adept.Planner.run strategy params ~platform ~wapp ~demand:(demand_of demand)
    with
    | Error e -> exit_error e
    | Ok plan ->
        let tree = plan.Adept.Planner.tree in
        Format.printf "%a@." Adept.Planner.pp_plan plan;
        let root = Adept_platform.Node.id (Adept_hierarchy.Tree.root_node tree) in
        let deployed =
          List.map Adept_platform.Node.id (Adept_hierarchy.Tree.nodes tree)
        in
        List.iter
          (fun (node, _, _) ->
            if node = root then exit_err "--crash: cannot crash the root agent";
            if not (List.mem node deployed) then
              exit_err
                (Printf.sprintf "--crash: node %d is not part of the deployment"
                   node))
          crashes;
        let job = Adept_workload.Job.of_dgemm (Adept_workload.Dgemm.make dgemm) in
        let faults =
          if crashes = [] && crash_rate <= 0.0 && drop <= 0.0 then
            Adept_sim.Faults.none
          else begin
            let f =
              match
                Adept_sim.Faults.make ~timeout ~service_timeout
                  ~max_retries:retries ~backoff ~patience ()
              with
              | Ok f -> f
              | Error e -> exit_error e
            in
            let f =
              List.fold_left
                (fun f (node, at, recover_at) ->
                  match Adept_sim.Faults.crash ?recover_at ~node ~at f with
                  | f -> f
                  | exception Invalid_argument m -> exit_err m)
                f crashes
            in
            let f =
              if crash_rate > 0.0 then
                let crashable = List.filter (fun id -> id <> root) deployed in
                Adept_sim.Faults.seeded_crashes
                  ~rng:(Adept_util.Rng.create fault_seed)
                  ~nodes:crashable ~rate:crash_rate ~mttr
                  ~horizon:(warmup +. duration) f
              else f
            in
            if drop > 0.0 then
              Adept_sim.Faults.with_message_loss ~probability:drop ~seed:fault_seed f
            else f
          end
        in
        let controller =
          match self_heal with
          | None -> None
          | Some policy_name -> (
              let policy =
                match policy_name with
                | "off" -> Adept_sim.Controller.Off
                | "eager" -> Adept_sim.Controller.Eager
                | "hysteresis" -> Adept_sim.Controller.Hysteresis
                | other ->
                    exit_err
                      ("--self-heal must be off, eager or hysteresis, got " ^ other)
              in
              match
                Adept_sim.Controller.config ~strategy ~sample_period ~window
                  ~threshold:degrade_threshold ~hold_time ~cooldown ~max_replans
                  ~prefer_incremental policy
              with
              | Ok cfg -> Some cfg
              | Error e -> exit_error e)
        in
        let rules =
          let model =
            Adept_sim.Monitor.model_rules ~tolerance:drift_tolerance
              ~hold:drift_hold ~window:rule_window ~params ~wapp tree
          in
          let extra =
            match rules_file with
            | None -> []
            | Some path -> (
                let text =
                  match In_channel.with_open_text path In_channel.input_all with
                  | t -> t
                  | exception Sys_error e -> exit_err e
                in
                match Adept_obs.Rule.parse text with
                | Ok rs -> rs
                | Error m -> exit_err ("cannot parse " ^ path ^ ": " ^ m))
          in
          model @ extra
        in
        let monitor =
          match
            Adept_sim.Monitor.create ~interval:scrape_interval ?retention
              ~selectors:(Adept_sim.Monitor.default_selectors tree)
              rules
          with
          | Ok m -> m
          | Error e -> exit_error e
        in
        let scenario =
          Adept_sim.Scenario.make ~faults ?controller
            ~demand:(demand_of demand) ~seed ~params ~platform
            ~client:(Adept_workload.Client.closed_loop job)
            tree
        in
        let r = Adept_sim.Scenario.run_fixed ~monitor scenario ~clients ~warmup ~duration in
        Printf.printf
          "simulated: %d clients -> %.2f req/s (model %.2f), %d completed, %d lost\n"
          clients r.Adept_sim.Scenario.throughput plan.Adept.Planner.predicted_rho
          r.Adept_sim.Scenario.completed_total r.Adept_sim.Scenario.lost_total;
        let alerts = Adept_sim.Monitor.alerts monitor in
        let transitions = Adept_obs.Alert.transitions alerts in
        Printf.printf "monitor: %d scrape(s) at %gs intervals, %d rule(s), %d \
                       alert transition(s)\n"
          (Adept_sim.Monitor.scrapes monitor)
          scrape_interval (List.length rules) (List.length transitions);
        List.iter
          (fun (tr : Adept_obs.Alert.transition) ->
            Printf.printf "  %8.3fs %-8s %s (%s)%s\n" tr.Adept_obs.Alert.at
              (match tr.Adept_obs.Alert.edge with
              | Adept_obs.Alert.To_pending -> "pending"
              | Adept_obs.Alert.To_firing -> "FIRING"
              | Adept_obs.Alert.To_resolved -> "resolved")
              tr.Adept_obs.Alert.rule.Adept_obs.Rule.name
              (Adept_obs.Rule.severity_name
                 tr.Adept_obs.Alert.rule.Adept_obs.Rule.severity)
              (if Float.is_nan tr.Adept_obs.Alert.value then ""
               else Printf.sprintf ", value %.3f" tr.Adept_obs.Alert.value))
          transitions;
        (match Adept_obs.Alert.firing_names alerts with
        | [] -> ()
        | names ->
            Printf.printf "still firing at end of run: %s\n"
              (String.concat ", " names));
        if not (Adept_sim.Faults.is_none faults) then begin
          let f = r.Adept_sim.Scenario.faults in
          Printf.printf
            "faults: %d crash(es), %d recovery(ies), %d message(s) lost, %d \
             timeout(s), %d request(s) abandoned\n"
            f.Adept_sim.Middleware.crashes f.Adept_sim.Middleware.recoveries
            f.Adept_sim.Middleware.messages_lost f.Adept_sim.Middleware.timeouts
            f.Adept_sim.Middleware.abandoned
        end;
        if controller <> None then begin
          Printf.printf
            "self-heal: %d replan(s) enacted, %.2fs degraded, %d request(s) \
             lost mid-migration\n"
            (List.length r.Adept_sim.Scenario.replans)
            r.Adept_sim.Scenario.degraded_seconds
            r.Adept_sim.Scenario.migration_lost;
          List.iter
            (fun record ->
              Format.printf "  %a@." Adept_sim.Controller.pp_record record)
            r.Adept_sim.Scenario.replans
        end;
        let write path text =
          Out_channel.with_open_text path (fun oc ->
              Out_channel.output_string oc text)
        in
        Option.iter
          (fun path ->
            write path (Adept_obs.Export.alert_timeline_jsonl alerts);
            Printf.printf "wrote alert timeline to %s\n" path)
          timeline_out;
        Option.iter
          (fun path ->
            write path (Adept_obs.Export.alerts_prom alerts);
            Printf.printf "wrote ALERTS samples to %s\n" path)
          alerts_out;
        Option.iter
          (fun path ->
            write path
              (Adept_obs.Dashboard.render
                 ~timeseries:(Adept_sim.Monitor.timeseries monitor)
                 ~alerts
                 (Adept_sim.Monitor.default_panels tree ~window:rule_window));
            Printf.printf "wrote dashboard to %s\n" path)
          html_out
  in
  let clients =
    Arg.(value & opt int 100 & info [ "clients" ] ~docv:"N"
           ~doc:"Closed-loop client population.")
  in
  let warmup =
    Arg.(value & opt float 2.0 & info [ "warmup" ] ~docv:"SECONDS"
           ~doc:"Simulated warm-up before measurement.")
  in
  let duration =
    Arg.(value & opt float 4.0 & info [ "duration" ] ~docv:"SECONDS"
           ~doc:"Simulated measurement window.")
  in
  let scrape_interval =
    Arg.(value & opt float 0.25 & info [ "scrape-interval" ] ~docv:"SECONDS"
           ~doc:"Seconds between registry scrapes and alert evaluations \
                 (0 disables the monitor).")
  in
  let retention =
    Arg.(value & opt (some float) None & info [ "retention" ] ~docv:"SECONDS"
           ~doc:"Time-series retention window (default: sized from the \
                 longest rule window; set to the run length to keep every \
                 scrape for the dashboard).")
  in
  let rules_file =
    Arg.(value & opt (some string) None & info [ "rules" ] ~docv:"FILE"
           ~doc:"Alert-rule file evaluated alongside the built-in model rules \
                 (one rule per line; see the OBSERVABILITY notes for the \
                 grammar).")
  in
  let crashes =
    Arg.(value & opt_all string [] & info [ "crash" ] ~docv:"NODE:AT[:RECOVER]"
           ~doc:"Crash a specific node at a specific simulated time, with an \
                 optional recovery time (repeatable; deterministic, unlike \
                 --crash-rate).")
  in
  let crash_rate =
    Arg.(value & opt float 0.0 & info [ "crash-rate" ] ~docv:"RATE"
           ~doc:"Fault injection: crashes per non-root node per simulated \
                 second (Poisson; 0 disables).")
  in
  let mttr =
    Arg.(value & opt float 2.0 & info [ "mttr" ] ~docv:"SECONDS"
           ~doc:"Fault injection: mean time to repair after a crash.")
  in
  let drop =
    Arg.(value & opt float 0.0 & info [ "drop" ] ~docv:"PROB"
           ~doc:"Fault injection: per-message loss probability (0 disables).")
  in
  let fault_seed =
    Arg.(value & opt int 7 & info [ "fault-seed" ] ~docv:"SEED"
           ~doc:"Seed for the crash schedule and message-loss stream.")
  in
  let timeout =
    Arg.(value & opt float 0.5 & info [ "timeout" ] ~docv:"SECONDS"
           ~doc:"Fault reaction: client-side scheduling round-trip timeout.")
  in
  let service_timeout =
    Arg.(value & opt float 5.0 & info [ "service-timeout" ] ~docv:"SECONDS"
           ~doc:"Fault reaction: client-side service-phase timeout.")
  in
  let retries =
    Arg.(value & opt int 3 & info [ "retries" ] ~docv:"N"
           ~doc:"Fault reaction: scheduling retries after the first attempt.")
  in
  let backoff =
    Arg.(value & opt float 2.0 & info [ "backoff" ] ~docv:"FACTOR"
           ~doc:"Fault reaction: timeout multiplier per retry (>= 1).")
  in
  let patience =
    Arg.(value & opt float 0.25 & info [ "patience" ] ~docv:"SECONDS"
           ~doc:"Fault reaction: agent-side wait for child replies.")
  in
  let self_heal =
    Arg.(value & opt (some string) None & info [ "self-heal" ] ~docv:"POLICY"
           ~doc:"Attach the online redeployment controller: off (monitor \
                 only), eager, or hysteresis.  Enacted replans cite the \
                 alerts firing at trigger time.")
  in
  let degrade_threshold =
    Arg.(value & opt float 0.5 & info [ "degrade-threshold" ] ~docv:"FRACTION"
           ~doc:"Self-heal: degraded when observed throughput falls below \
                 this fraction of the model's rho.")
  in
  let sample_period =
    Arg.(value & opt float 0.5 & info [ "sample-period" ] ~docv:"SECONDS"
           ~doc:"Self-heal: seconds between controller throughput samples.")
  in
  let window =
    Arg.(value & opt float 2.0 & info [ "window" ] ~docv:"SECONDS"
           ~doc:"Self-heal: sliding throughput measurement window.")
  in
  let hold_time =
    Arg.(value & opt float 1.0 & info [ "hold-time" ] ~docv:"SECONDS"
           ~doc:"Self-heal: sustained degradation before a hysteresis \
                 trigger.")
  in
  let cooldown =
    Arg.(value & opt float 5.0 & info [ "cooldown" ] ~docv:"SECONDS"
           ~doc:"Self-heal: minimum time between enacted replans \
                 (hysteresis).")
  in
  let max_replans =
    Arg.(value & opt int 3 & info [ "max-replans" ] ~docv:"N"
           ~doc:"Self-heal: replan budget for the whole run.")
  in
  let drift_tolerance =
    Arg.(value & opt float 0.25 & info [ "drift-tolerance" ] ~docv:"FRACTION"
           ~doc:"model-drift rule: relative deviation of measured throughput \
                 from the Eq. 16 prediction that counts as drift.")
  in
  let drift_hold =
    Arg.(value & opt float 1.0 & info [ "drift-hold" ] ~docv:"SECONDS"
           ~doc:"Built-in rules: how long a deviation must hold before the \
                 alert fires (Prometheus for: semantics).")
  in
  let rule_window =
    Arg.(value & opt float 2.0 & info [ "rule-window" ] ~docv:"SECONDS"
           ~doc:"Built-in rules: trailing measurement window for rates and \
                 means.")
  in
  let timeline_out =
    Arg.(value & opt (some string) None & info [ "timeline" ] ~docv:"FILE"
           ~doc:"Export the chronological alert timeline as JSON lines \
                 (deterministic; golden-diffed in CI).")
  in
  let alerts_out =
    Arg.(value & opt (some string) None & info [ "alerts-prom" ] ~docv:"FILE"
           ~doc:"Export the alert transitions as Prometheus ALERTS-style \
                 samples.")
  in
  let html_out =
    Arg.(value & opt (some string) None & info [ "html" ] ~docv:"FILE"
           ~doc:"Write a self-contained static HTML dashboard (inline SVG \
                 sparklines, alert bands, no JavaScript).")
  in
  Cmd.v
    (Cmd.info "monitor"
       ~doc:"Run under continuous monitoring: scrapes, alert rules, \
             model-drift detection")
    Term.(const run $ platform_file $ nodes_arg $ power_arg $ bandwidth_arg
          $ hetero_arg $ seed_arg $ dgemm_arg $ demand_arg $ strategy_arg
          $ clients $ warmup $ duration $ scrape_interval $ retention
          $ rules_file $ crashes
          $ crash_rate $ mttr $ drop $ fault_seed $ timeout $ service_timeout
          $ retries $ backoff $ patience $ self_heal $ degrade_threshold
          $ sample_period $ window $ hold_time $ cooldown $ max_replans
          $ replan_mode_arg $ drift_tolerance $ drift_hold $ rule_window
          $ timeline_out $ alerts_out $ html_out)

(* ---------- replan ---------- *)

let replan_cmd =
  let run file n power bandwidth hetero seed dgemm demand strategy failed =
    if failed = [] then exit_err "replan: pass at least one failed node id";
    let platform = build_platform file n power bandwidth hetero seed in
    let wapp = Adept_workload.Dgemm.(mflops (make dgemm)) in
    let strategy =
      match Adept.Planner.strategy_of_string strategy with
      | Ok s -> s
      | Error e -> exit_error e
    in
    match
      Adept.Planner.replan strategy params ~platform ~wapp
        ~demand:(demand_of demand) ~failed ()
    with
    | Error e -> exit_error e
    | Ok r ->
        Format.printf "%a@." Adept.Planner.pp_replan r;
        Format.printf "%a@." Adept_hierarchy.Tree.pp_compact
          r.Adept.Planner.replanned.Adept.Planner.tree
  in
  let failed =
    Arg.(value & pos_all int [] & info [] ~docv:"NODE_ID"
           ~doc:"Ids of the failed nodes to plan around.")
  in
  Cmd.v
    (Cmd.info "replan"
       ~doc:"Rebuild a deployment after node failures and report the throughput hit")
    Term.(const run $ platform_file $ nodes_arg $ power_arg $ bandwidth_arg
          $ hetero_arg $ seed_arg $ dgemm_arg $ demand_arg $ strategy_arg $ failed)

(* ---------- rollout ---------- *)

let rollout_cmd =
  let run flavor mode canary_fraction bake_window timeline_out html_out expect =
    let module SH = Adept_experiments.Self_heal in
    let flavor =
      match SH.rollout_flavor_of_string flavor with
      | Ok f -> f
      | Error e -> exit_error e
    in
    let mode =
      match Adept_sim.Rollout.mode_of_string mode with
      | Ok m -> m
      | Error e -> exit_error e
    in
    let r, monitor, tree =
      match
        SH.run_rollout ~mode ~canary_fraction ~bake_window ~flavor ()
      with
      | r -> r
      | exception Invalid_argument m -> exit_err m
    in
    let alerts = Adept_sim.Monitor.alerts monitor in
    Printf.printf
      "rollout demo (%s flavor, %s mode): %.2f req/s, %d completed, %d lost \
       (%d in migration pauses)\n"
      (SH.rollout_flavor_name flavor)
      (Adept_sim.Rollout.mode_name mode)
      r.Adept_sim.Scenario.throughput r.Adept_sim.Scenario.completed_total
      r.Adept_sim.Scenario.lost_total r.Adept_sim.Scenario.migration_lost;
    List.iter
      (fun record -> Format.printf "  %a@." Adept_sim.Controller.pp_record record)
      r.Adept_sim.Scenario.replans;
    let trail =
      List.concat_map
        (fun (rep : Adept_sim.Controller.replan_record) ->
          match rep.Adept_sim.Controller.rollout with
          | Some ro -> ro.Adept_sim.Rollout.trail
          | None -> [])
        r.Adept_sim.Scenario.replans
    in
    List.iter
      (fun (e : Adept_sim.Rollout.event) ->
        Printf.printf "  %8.3fs %-16s%s\n" e.Adept_sim.Rollout.at
          (Adept_sim.Rollout.step_name e.Adept_sim.Rollout.step)
          (match e.Adept_sim.Rollout.alerts with
          | [] -> ""
          | names -> " [" ^ String.concat "; " names ^ "]"))
      trail;
    let write path text =
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc text)
    in
    Option.iter
      (fun path ->
        write path (Adept_sim.Rollout.timeline_jsonl ~alerts trail);
        Printf.printf "wrote rollout timeline to %s\n" path)
      timeline_out;
    Option.iter
      (fun path ->
        let spans =
          List.concat_map
            (fun (rep : Adept_sim.Controller.replan_record) ->
              match rep.Adept_sim.Controller.rollout with
              | Some ro -> Adept_sim.Rollout.phase_spans ro.Adept_sim.Rollout.trail
              | None -> [])
            r.Adept_sim.Scenario.replans
        in
        write path
          (Adept_obs.Dashboard.render ~title:"adept rollout"
             ~timeseries:(Adept_sim.Monitor.timeseries monitor)
             ~alerts ~spans
             (Adept_sim.Monitor.default_panels tree ~window:2.0));
        Printf.printf "wrote dashboard to %s\n" path)
      html_out;
    match expect with
    | None -> ()
    | Some expected ->
        let outcomes =
          List.filter_map
            (fun (rep : Adept_sim.Controller.replan_record) ->
              Option.map
                (fun (ro : Adept_sim.Rollout.record) ->
                  Adept_sim.Rollout.outcome_name ro.Adept_sim.Rollout.outcome)
                rep.Adept_sim.Controller.rollout)
            r.Adept_sim.Scenario.replans
        in
        if not (List.mem expected outcomes) then
          exit_err
            (Printf.sprintf "expected rollout outcome %s, got [%s]" expected
               (String.concat "; " outcomes))
  in
  let flavor =
    Arg.(value & opt string "drift" & info [ "flavor" ] ~docv:"FLAVOR"
           ~doc:"Demo flavor: drift (a second crash mid-bake condemns the \
                 canary) or healthy (the canary promotes).")
  in
  let timeline =
    Arg.(value & opt (some string) None & info [ "timeline" ] ~docv:"FILE"
           ~doc:"Write the merged alert + rollout decision timeline (JSON \
                 lines) to $(docv).")
  in
  let html =
    Arg.(value & opt (some string) None & info [ "html" ] ~docv:"FILE"
           ~doc:"Render the monitor dashboard with rollout phase bands to \
                 $(docv) (SVG).")
  in
  let expect =
    Arg.(value & opt (some string) None & info [ "expect" ] ~docv:"OUTCOME"
           ~doc:"Exit non-zero unless some rollout finished with $(docv) \
                 (promoted, rolled-back or direct) — the CI gate.")
  in
  let mode =
    Arg.(value & opt string "canary" & info [ "rollout" ] ~docv:"MODE"
           ~doc:"Enactment mode for the demo: canary (the default here), \
                 direct or off.")
  in
  Cmd.v
    (Cmd.info "rollout"
       ~doc:"Run the canonical staged-rollout demo: canary, bake, promote or \
             roll back")
    Term.(const run $ flavor $ mode $ canary_fraction_arg
          $ bake_window_arg $ timeline $ html $ expect)

(* ---------- compare ---------- *)

let compare_cmd =
  let run file n power bandwidth hetero seed dgemm demand strategies simulate clients =
    let platform = build_platform file n power bandwidth hetero seed in
    let wapp = Adept_workload.Dgemm.(mflops (make dgemm)) in
    let strategies =
      if strategies = [] then [ "heuristic"; "star"; "homogeneous" ] else strategies
    in
    let strategies =
      List.map
        (fun s ->
          match Adept.Planner.strategy_of_string s with
          | Ok st -> st
          | Error e -> exit_error e)
        strategies
    in
    let results =
      Adept.Planner.compare_strategies params ~platform ~wapp ~demand:(demand_of demand)
        strategies
    in
    let table =
      List.fold_left
        (fun table (strategy, outcome) ->
          match outcome with
          | Error e ->
              Adept_util.Table.add_row table
                [ Adept.Planner.strategy_name strategy;
                  "error: " ^ Adept.Error.to_string e; "-"; "-" ]
          | Ok plan ->
              let measured =
                if not simulate then "-"
                else begin
                  let job =
                    Adept_workload.Job.of_dgemm (Adept_workload.Dgemm.make dgemm)
                  in
                  let scenario =
                    Adept_sim.Scenario.make ~seed ~params ~platform
                      ~client:(Adept_workload.Client.closed_loop job)
                      plan.Adept.Planner.tree
                  in
                  let r =
                    Adept_sim.Scenario.run_fixed scenario ~clients ~warmup:2.0
                      ~duration:4.0
                  in
                  Adept_util.Table.cell_float r.Adept_sim.Scenario.throughput
                end
              in
              Adept_util.Table.add_row table
                [
                  Adept.Planner.strategy_name strategy;
                  Adept_hierarchy.Metrics.describe plan.Adept.Planner.tree;
                  Adept_util.Table.cell_float plan.Adept.Planner.predicted_rho;
                  measured;
                ])
        (Adept_util.Table.create
           [ "strategy"; "shape"; "model rho"; "measured req/s" ])
        results
    in
    print_string (Adept_util.Table.render table)
  in
  let strategies =
    Arg.(value & pos_all string [] & info [] ~docv:"STRATEGY"
           ~doc:"Strategies to compare (default: heuristic star homogeneous).")
  in
  let simulate =
    Arg.(value & flag & info [ "measure" ]
           ~doc:"Also measure each plan in the simulator.")
  in
  let clients =
    Arg.(value & opt int 150 & info [ "clients" ] ~docv:"N"
           ~doc:"Client population for --measure.")
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Plan with several strategies side by side")
    Term.(const run $ platform_file $ nodes_arg $ power_arg $ bandwidth_arg
          $ hetero_arg $ seed_arg $ dgemm_arg $ demand_arg $ strategies $ simulate
          $ clients)

(* ---------- improve ---------- *)

let improve_cmd =
  let run file n power bandwidth hetero seed dgemm xml xml_out =
    let platform = build_platform file n power bandwidth hetero seed in
    let wapp = Adept_workload.Dgemm.(mflops (make dgemm)) in
    let tree = load_hierarchy platform xml in
    (match Adept.Improver.improve params ~platform ~wapp tree with
        | Error e -> exit_err e
        | Ok r ->
            let before = Adept.Evaluate.rho_on params ~platform ~wapp tree in
            Printf.printf "rho %.2f -> %.2f req/s after %d change(s)%s\n" before
              r.Adept.Improver.predicted_rho
              (List.length r.Adept.Improver.steps)
              (if r.Adept.Improver.converged then "" else " (iteration limit)");
            List.iter
              (fun (s : Adept.Improver.step) ->
                let action =
                  match s.Adept.Improver.action with
                  | Adept.Improver.Added_server (srv, agent) ->
                      Printf.sprintf "added server %d under agent %d" srv agent
                  | Adept.Improver.Split_agent (agent, fresh) ->
                      Printf.sprintf "split agent %d with new agent %d" agent fresh
                  | Adept.Improver.Removed_server srv ->
                      Printf.sprintf "removed server %d" srv
                in
                Printf.printf "  %s: %.2f -> %.2f req/s\n" action
                  s.Adept.Improver.rho_before s.Adept.Improver.rho_after)
              r.Adept.Improver.steps;
            match xml_out with
            | None -> print_string (Adept_hierarchy.Xml.to_string r.Adept.Improver.tree)
            | Some path ->
                Adept_hierarchy.Xml.save r.Adept.Improver.tree path;
                Printf.printf "wrote improved hierarchy to %s\n" path)
  in
  let xml =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"HIERARCHY_XML"
           ~doc:"Deployed hierarchy to improve.")
  in
  let xml_out =
    Arg.(value & opt (some string) None & info [ "output"; "o" ] ~docv:"FILE"
           ~doc:"Write the improved hierarchy here (default: stdout).")
  in
  Cmd.v
    (Cmd.info "improve"
       ~doc:"Iteratively remove the bottlenecks of an existing deployment")
    Term.(const run $ platform_file $ nodes_arg $ power_arg $ bandwidth_arg
          $ hetero_arg $ seed_arg $ dgemm_arg $ xml $ xml_out)

(* ---------- latency ---------- *)

let latency_cmd =
  let run file n power bandwidth hetero seed dgemm demand strategy rates =
    let platform = build_platform file n power bandwidth hetero seed in
    let wapp = Adept_workload.Dgemm.(mflops (make dgemm)) in
    let strategy =
      match Adept.Planner.strategy_of_string strategy with
      | Ok s -> s
      | Error e -> exit_error e
    in
    match
      Adept.Planner.run strategy params ~platform ~wapp ~demand:(demand_of demand)
    with
    | Error e -> exit_error e
    | Ok plan ->
        Format.printf "%a@." Adept.Planner.pp_plan plan;
        let rho = plan.Adept.Planner.predicted_rho in
        let rates =
          if rates <> [] then rates
          else List.map (fun f -> f *. rho) [ 0.25; 0.5; 0.75; 0.9; 0.99 ]
        in
        let b = Adept_platform.Platform.uniform_bandwidth platform in
        List.iter
          (fun rate ->
            Format.printf "%a@."
              Adept.Latency.pp
              (Adept.Latency.estimate params ~bandwidth:b ~wapp ~rate
                 plan.Adept.Planner.tree))
          rates
  in
  let rates =
    Arg.(value & opt_all float [] & info [ "rate" ] ~docv:"REQS"
           ~doc:"Arrival rate to estimate at (repeatable; default: fractions of rho).")
  in
  Cmd.v
    (Cmd.info "latency" ~doc:"Estimate response time under load for a planned deployment")
    Term.(const run $ platform_file $ nodes_arg $ power_arg $ bandwidth_arg
          $ hetero_arg $ seed_arg $ dgemm_arg $ demand_arg $ strategy_arg $ rates)

(* ---------- experiment ---------- *)

let experiment_cmd =
  let run ids quick seed out_dir list_only =
    if list_only then begin
      List.iter
        (fun (e : Adept_experiments.Registry.experiment) ->
          Printf.printf "%-20s %s\n" e.id e.title)
        Adept_experiments.Registry.all;
      exit 0
    end;
    let ctx =
      {
        Adept_experiments.Common.fidelity =
          (if quick then Adept_experiments.Common.Quick
           else Adept_experiments.Common.Full);
        seed;
        out_dir;
      }
    in
    let selected =
      match ids with
      | [] -> Adept_experiments.Registry.all
      | ids ->
          List.map
            (fun id ->
              match Adept_experiments.Registry.find id with
              | Some e -> e
              | None -> exit_err ("unknown experiment " ^ id))
            ids
    in
    List.iter
      (fun (e : Adept_experiments.Registry.experiment) ->
        let report = e.run ctx in
        print_string (Adept_experiments.Common.render report);
        Adept_experiments.Common.write_series ctx report;
        print_newline ())
      selected
  in
  let ids =
    Arg.(value & pos_all string [] & info [] ~docv:"ID"
           ~doc:"Experiment ids (default: all). Use --list to see them.")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Reduced sweeps for a fast pass.")
  in
  let out_dir =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"DIR"
           ~doc:"Write figure series as CSV files into this directory.")
  in
  let list_only = Arg.(value & flag & info [ "list" ] ~doc:"List experiment ids.") in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Run paper reproduction experiments")
    Term.(const run $ ids $ quick $ seed_arg $ out_dir $ list_only)

(* ---------- bench-node ---------- *)

let bench_node_cmd =
  let run () =
    let daxpy = Adept_calibration.Linpack.daxpy_mflops () in
    let dgemm = Adept_calibration.Linpack.dgemm_mflops () in
    Printf.printf "daxpy: %.0f MFlop/s\ndgemm: %.0f MFlop/s\n" daxpy dgemm
  in
  Cmd.v
    (Cmd.info "bench-node"
       ~doc:"Measure this machine's MFlop/s with the Linpack mini-benchmark")
    Term.(const run $ const ())

(* ---------- serve / query ---------- *)

module Serve = Adept_serve.Server
module Query = Adept_serve.Client
module Proto = Adept_serve.Protocol

let address_arg =
  let doc =
    "Planning-server address: unix:<path>, tcp:<host>:<port>, or a bare Unix \
     socket path."
  in
  Arg.(value & opt string "unix:adept.sock"
       & info [ "address"; "a" ] ~docv:"ADDR" ~doc)

let parse_address s =
  match Serve.address_of_string s with
  | Ok a -> a
  | Error e -> exit_err ("bad --address: " ^ e)

let serve_cmd =
  let run address workers shards cache_capacity max_requests prom_out live
      trace_sample_rate access_log rules_file scrape_interval journal
      journal_segment_bytes journal_max_segments otlp =
    let registry = Adept_obs.Registry.create () in
    (* Any observability flag switches the live layer on; [--live] asks
       for it with the defaults. *)
    let obs_on =
      live || trace_sample_rate <> None || access_log <> None
      || rules_file <> None || scrape_interval <> None || journal <> None
      || otlp <> None
    in
    let otlp_sink =
      Option.map
        (fun s ->
          match Serve.otlp_sink_of_string s with
          | Ok sink -> sink
          | Error e -> exit_err ("bad --otlp: " ^ e))
        otlp
    in
    let obs =
      if not obs_on then None
      else
        let base = Serve.default_obs () in
        let rules =
          match rules_file with
          | None -> base.Serve.rules
          | Some path -> (
              let text =
                match In_channel.with_open_text path In_channel.input_all with
                | text -> text
                | exception Sys_error e -> exit_err e
              in
              match Adept_obs.Rule.parse text with
              | Ok rules -> rules
              | Error e -> exit_err ("bad --rules file: " ^ e))
        in
        Some
          {
            base with
            Serve.trace_sample_rate =
              Option.value ~default:base.Serve.trace_sample_rate
                trace_sample_rate;
            rules;
            scrape_interval =
              Option.value ~default:base.Serve.scrape_interval scrape_interval;
            access_log;
            prom_path = prom_out;
            journal_dir = journal;
            journal_segment_bytes =
              Option.value ~default:base.Serve.journal_segment_bytes
                journal_segment_bytes;
            journal_max_segments =
              Option.value ~default:base.Serve.journal_max_segments
                journal_max_segments;
            otlp = otlp_sink;
          }
    in
    Serve.run
      {
        Serve.address = parse_address address;
        workers;
        shards;
        cache_capacity;
        max_requests;
        registry = Some registry;
        obs;
      };
    Option.iter
      (fun path ->
        (* With the live layer on the server already re-exported this
           file on every scrape and once more at teardown. *)
        if not obs_on then
          Out_channel.with_open_text path (fun oc ->
              Out_channel.output_string oc
                (Adept_obs.Export.prometheus
                   (Adept_obs.Registry.snapshot registry)));
        Printf.printf "wrote Prometheus text to %s\n" path)
      prom_out
  in
  let workers =
    Arg.(value & opt (some int) None & info [ "workers" ] ~docv:"N"
           ~doc:"Worker domains (default: this machine's recommended domain \
                 count minus one).")
  in
  let shards =
    Arg.(value & opt (some int) None & info [ "shards" ] ~docv:"N"
           ~doc:"Planner shards for the heuristic (default: the worker count). \
                 Any value yields bit-identical plans; it only changes how the \
                 work spreads across domains.")
  in
  let cache_capacity =
    Arg.(value & opt int 128 & info [ "cache-capacity" ] ~docv:"N"
           ~doc:"Plan-fragment cache entries (LRU).")
  in
  let max_requests =
    Arg.(value & opt (some int) None & info [ "max-requests" ] ~docv:"N"
           ~doc:"Drain and exit after this many requests (tests/CI).")
  in
  let prom_out =
    Arg.(value & opt (some string) None & info [ "prom" ] ~docv:"FILE"
           ~doc:"Export the server metrics in Prometheus text format: at drain, \
                 and (with live observability on) re-written atomically on \
                 every scrape so it can be read mid-run.")
  in
  let live =
    Arg.(value & flag & info [ "live" ]
           ~doc:"Turn on wall-clock observability with the defaults: request \
                 span tracing, runtime-events GC profiling, a periodic metrics \
                 scrape and the built-in alert rules.  Never changes answers — \
                 responses are byte-identical with or without it.")
  in
  let trace_sample_rate =
    Arg.(value & opt (some float) None & info [ "trace-sample-rate" ]
           ~docv:"RATE"
           ~doc:"Fraction of trace-carrying requests to record as span chains \
                 (0..1, default 1).  Sampling is a deterministic hash of the \
                 client-sent trace id — no RNG.  Implies live observability.")
  in
  let access_log =
    Arg.(value & opt (some string) None & info [ "access-log" ] ~docv:"FILE"
           ~doc:"Append one JSON line per served request: trace id, method, \
                 platform digest, cache hit/miss, shard count, wall-clock \
                 duration, status.  Implies live observability.")
  in
  let rules_file =
    Arg.(value & opt (some string) None & info [ "rules" ] ~docv:"FILE"
           ~doc:"Alert rules file (see `adept monitor` rule syntax) evaluated \
                 against the live metrics every scrape; replaces the built-in \
                 serve rules.  Implies live observability.")
  in
  let scrape_interval =
    Arg.(value & opt (some float) None & info [ "scrape-interval" ]
           ~docv:"SECONDS"
           ~doc:"Wall-clock seconds between metric scrapes and alert \
                 evaluations (default 1).  Implies live observability.")
  in
  let journal =
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"DIR"
           ~doc:"Crash-safe flight recorder: append every finished span \
                 chain, scrape summary, alert transition and access-log line \
                 to rotated segments in this directory, replayable later with \
                 `adept obs replay`.  Implies live observability.")
  in
  let journal_segment_bytes =
    Arg.(value & opt (some int) None & info [ "journal-segment-bytes" ]
           ~docv:"BYTES"
           ~doc:"Rotate flight-recorder segments past this size (default \
                 4 MiB).")
  in
  let journal_max_segments =
    Arg.(value & opt (some int) None & info [ "journal-max-segments" ]
           ~docv:"N"
           ~doc:"Retain at most N flight-recorder segments, pruning the \
                 oldest (default 8).")
  in
  let otlp =
    Arg.(value & opt (some string) None & info [ "otlp" ] ~docv:"SINK"
           ~doc:"Push an OTLP/JSON document (sampled spans plus a metrics \
                 snapshot) on every scrape: a file path (re-written \
                 atomically) or tcp:<host>:<port> (one connection per push). \
                 Implies live observability.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the planner as a long-lived, concurrent, sharded service")
    Term.(const run $ address_arg $ workers $ shards $ cache_capacity
          $ max_requests $ prom_out $ live $ trace_sample_rate $ access_log
          $ rules_file $ scrape_interval $ journal $ journal_segment_bytes
          $ journal_max_segments $ otlp)

(* The query-side platform description: a catalog file is shipped inline
   (the server may be remote), synthetic parameters go as-is. *)
let spec_of file n power bandwidth hetero seed =
  match file with
  | Some path -> (
      match In_channel.with_open_text path In_channel.input_all with
      | text -> Proto.Catalog text
      | exception Sys_error e -> exit_err e)
  | None ->
      Proto.Synthetic
        { nodes = n; power; bandwidth; heterogeneous = hetero; seed }

let query_call address request =
  (* always carry trace context: ids are the connection's request ids
     (deterministic, no RNG), servers without observability — and old
     servers — simply ignore the envelope member *)
  match Query.connect_retry ~trace_base:0 (parse_address address) with
  | Error e -> exit_err ("cannot connect: " ^ e)
  | Ok c -> (
      let r = Query.call c request in
      Query.close c;
      match r with
      | Error e -> exit_err e
      | Ok (Proto.Error kind) -> exit_err (snd (Proto.error_kind_fields kind))
      | Ok resp -> resp)

let query_plan_cmd =
  let run address file n power bandwidth hetero seed dgemm demand strategy
      no_cache =
    let request =
      Proto.Plan
        {
          Proto.spec = spec_of file n power bandwidth hetero seed;
          dgemm;
          demand;
          strategy;
          use_cache = not no_cache;
        }
    in
    match query_call address request with
    | Proto.Plan_ok { text; _ } -> print_string text
    | _ -> exit_err "server sent a mismatched response"
  in
  let no_cache =
    Arg.(value & flag & info [ "no-cache" ]
           ~doc:"Bypass the server's plan cache (always plan afresh).")
  in
  Cmd.v
    (Cmd.info "plan" ~doc:"Plan via the server; output matches `adept plan`")
    Term.(const run $ address_arg $ platform_file $ nodes_arg $ power_arg
          $ bandwidth_arg $ hetero_arg $ seed_arg $ dgemm_arg $ demand_arg
          $ strategy_arg $ no_cache)

let query_replan_cmd =
  let run address file n power bandwidth hetero seed dgemm demand strategy
      failed =
    let request =
      Proto.Replan
        {
          Proto.r_spec = spec_of file n power bandwidth hetero seed;
          r_dgemm = dgemm;
          r_demand = demand;
          r_strategy = strategy;
          r_failed = failed;
        }
    in
    match query_call address request with
    | Proto.Replan_ok { text; _ } -> print_string text
    | _ -> exit_err "server sent a mismatched response"
  in
  let failed =
    Arg.(value & pos_all int [] & info [] ~docv:"NODE_ID"
           ~doc:"Ids of the failed nodes to plan around.")
  in
  Cmd.v
    (Cmd.info "replan"
       ~doc:"Replan via the server; output matches `adept replan`")
    Term.(const run $ address_arg $ platform_file $ nodes_arg $ power_arg
          $ bandwidth_arg $ hetero_arg $ seed_arg $ dgemm_arg $ demand_arg
          $ strategy_arg $ failed)

let query_observe_cmd =
  let run address file n power bandwidth hetero seed dgemm demand strategy
      clients warmup duration =
    let request =
      Proto.Observe
        {
          Proto.o_spec = spec_of file n power bandwidth hetero seed;
          o_dgemm = dgemm;
          o_demand = demand;
          o_strategy = strategy;
          o_seed = seed;
          o_clients = clients;
          o_warmup = warmup;
          o_duration = duration;
        }
    in
    match query_call address request with
    | Proto.Observe_ok { text; _ } -> print_string text
    | _ -> exit_err "server sent a mismatched response"
  in
  let clients =
    Arg.(value & opt int 100 & info [ "clients" ] ~docv:"N"
           ~doc:"Closed-loop client population.")
  in
  let warmup =
    Arg.(value & opt float 2.0 & info [ "warmup" ] ~docv:"SECONDS"
           ~doc:"Simulated warm-up before measurement.")
  in
  let duration =
    Arg.(value & opt float 4.0 & info [ "duration" ] ~docv:"SECONDS"
           ~doc:"Simulated measurement window.")
  in
  Cmd.v
    (Cmd.info "observe"
       ~doc:"Instrumented simulation via the server; output matches `adept \
             observe`")
    Term.(const run $ address_arg $ platform_file $ nodes_arg $ power_arg
          $ bandwidth_arg $ hetero_arg $ seed_arg $ dgemm_arg $ demand_arg
          $ strategy_arg $ clients $ warmup $ duration)

let print_stats (s : Proto.server_stats) =
  Printf.printf "requests: plan=%d replan=%d observe=%d stats=%d\n"
    s.Proto.plan_requests s.Proto.replan_requests s.Proto.observe_requests
    s.Proto.stats_requests;
  Printf.printf "errors: %d\n" s.Proto.errors;
  Printf.printf "cache: hits=%d misses=%d evictions=%d invalidations=%d\n"
    s.Proto.cache_hits s.Proto.cache_misses s.Proto.cache_evictions
    s.Proto.cache_invalidations;
  Printf.printf "coalesced: %d\n" s.Proto.coalesced;
  Printf.printf "workers: %d shards: %d\n" s.Proto.workers s.Proto.shards;
  match s.Proto.live with
  | None -> ()
  | Some l ->
      Printf.printf "uptime: %.1fs\n" l.Proto.uptime_seconds;
      Printf.printf "latency: p50=%.3fms p99=%.3fms\n"
        (l.Proto.latency_p50 *. 1e3) (l.Proto.latency_p99 *. 1e3);
      Printf.printf "cache hit ratio: %.1f%%\n"
        (l.Proto.cache_hit_ratio *. 100.0);
      Printf.printf "gc pause p99: %.3fms\n" (l.Proto.gc_pause_p99 *. 1e3);
      Printf.printf "domain busy:%s\n"
        (String.concat ""
           (List.mapi
              (fun i r -> Printf.sprintf " [%d]=%.0f%%" i (r *. 100.0))
              l.Proto.domain_busy));
      Printf.printf "traces sampled: %d\n" l.Proto.traces_sampled;
      Printf.printf "alerts firing:%s\n"
        (match l.Proto.firing_alerts with
        | [] -> " none"
        | alerts ->
            String.concat ""
              (List.map
                 (fun (name, sev) -> Printf.sprintf " %s(%s)" name sev)
                 alerts));
      match l.Proto.connections with
      | [] -> ()
      | conns ->
          Printf.printf "connections:%s\n"
            (String.concat ""
               (List.map
                  (fun (c : Proto.conn_stats) ->
                    Printf.sprintf " [%d] %dreq/%dspan/%.1fms" c.Proto.conn_id
                      c.Proto.conn_requests c.Proto.conn_spans
                      (c.Proto.conn_seconds *. 1e3))
                  conns))

let query_stats_cmd =
  let run address =
    match query_call address Proto.Stats with
    | Proto.Stats_ok s -> print_stats s
    | _ -> exit_err "server sent a mismatched response"
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Print the server's request and cache counters (plus live \
             latency/GC/alert state when the server runs with observability \
             on)")
    Term.(const run $ address_arg)

let query_trace_cmd =
  let run address out otlp =
    let request = if otlp then Proto.Otlp_dump else Proto.Trace_dump in
    let label = if otlp then "OTLP JSON" else "Chrome trace JSON" in
    let doc =
      match query_call address request with
      | Proto.Trace_ok { chrome } -> chrome
      | Proto.Otlp_ok { otlp } -> otlp
      | _ -> exit_err "server sent a mismatched response"
    in
    match out with
    | None -> print_string doc
    | Some path ->
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc doc);
        Printf.printf "wrote %s to %s\n" label path
  in
  let out =
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE"
           ~doc:"Write the trace document here instead of stdout.")
  in
  let otlp =
    Arg.(value & flag & info [ "otlp" ]
           ~doc:"Dump one OTLP/JSON document (resource, scope, spans and a \
                 metrics snapshot with exemplars) instead of Chrome \
                 trace-event JSON.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Dump the server's slowest sampled requests as Chrome trace-event \
             JSON (open in Perfetto): frame read, parse, cache lookup, \
             per-shard plan, replay, render and write spans per request")
    Term.(const run $ address_arg $ out $ otlp)

let query_cmd =
  Cmd.group
    (Cmd.info "query"
       ~doc:"Send planning requests to a running `adept serve` instance")
    [ query_plan_cmd; query_replan_cmd; query_observe_cmd; query_stats_cmd;
      query_trace_cmd ]

(* ---------- obs ---------- *)

let obs_replay_cmd =
  let run journal chrome_out alerts_out access_out at_dump until =
    let cut =
      match (at_dump, until) with
      | Some _, Some _ -> exit_err "--at-dump and --until are exclusive"
      | Some n, None -> Adept_obs.Replay.At_dump n
      | None, Some t -> Adept_obs.Replay.Until t
      | None, None -> Adept_obs.Replay.To_end
    in
    let reader =
      match Adept_obs.Journal.open_ journal with
      | Ok r -> r
      | Error e -> exit_err ("cannot open journal: " ^ e)
    in
    let records = Adept_obs.Journal.records reader in
    let stats = Adept_obs.Journal.stats reader in
    let t = Adept_obs.Replay.run ~cut records in
    let write path what content =
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc content);
      Printf.printf "wrote %s to %s\n" what path
    in
    Option.iter
      (fun p -> write p "replayed Chrome trace JSON" t.Adept_obs.Replay.rp_chrome)
      chrome_out;
    Option.iter
      (fun p -> write p "replayed alert timeline" t.Adept_obs.Replay.rp_alerts)
      alerts_out;
    Option.iter
      (fun p -> write p "replayed access log" t.Adept_obs.Replay.rp_access)
      access_out;
    print_string (Adept_obs.Replay.summary ~stats t)
  in
  let journal =
    Arg.(required & opt (some string) None & info [ "journal" ] ~docv:"DIR"
           ~doc:"Flight-recorder directory (or a single segment file) written \
                 by `adept serve --journal`.")
  in
  let chrome_out =
    Arg.(value & opt (some string) None & info [ "chrome" ] ~docv:"FILE"
           ~doc:"Write the window's Chrome trace-event JSON here — \
                 byte-identical to what a live `adept query trace` returned \
                 at the same cut.")
  in
  let alerts_out =
    Arg.(value & opt (some string) None & info [ "alerts" ] ~docv:"FILE"
           ~doc:"Write the window's alert-transition timeline (JSONL) here.")
  in
  let access_out =
    Arg.(value & opt (some string) None & info [ "access" ] ~docv:"FILE"
           ~doc:"Write the window's access-log lines (byte-verbatim) here.")
  in
  let at_dump =
    Arg.(value & opt (some int) None & info [ "at-dump" ] ~docv:"N"
           ~doc:"Cut the replay at the Nth (1-based) live trace dump; 0 means \
                 the last one.  Reproduces that dump's bytes exactly.")
  in
  let until =
    Arg.(value & opt (some float) None & info [ "until" ] ~docv:"TIME"
           ~doc:"Replay records with timestamp <= TIME (the clock the server \
                 ran on, as recorded).")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Rebuild a past window's observability exports from a flight \
             recorder: Chrome trace, alert timeline and access log — \
             bit-identical to what the live server exported — plus an `adept \
             top`-style summary of the window")
    Term.(const run $ journal $ chrome_out $ alerts_out $ access_out $ at_dump
          $ until)

let obs_cmd =
  Cmd.group
    (Cmd.info "obs"
       ~doc:"Retrospective observability: query flight-recorder journals \
             written by `adept serve --journal`")
    [ obs_replay_cmd ]

(* ---------- top ---------- *)

let top_cmd =
  let run address interval count once =
    let c =
      match Query.connect_retry (parse_address address) with
      | Error e -> exit_err ("cannot connect: " ^ e)
      | Ok c -> c
    in
    let total (s : Proto.server_stats) =
      s.Proto.plan_requests + s.Proto.replan_requests
      + s.Proto.observe_requests + s.Proto.stats_requests
    in
    let fetch () =
      match Query.call c Proto.Stats with
      | Ok (Proto.Stats_ok s) -> s
      | Ok (Proto.Error kind) ->
          Query.close c;
          exit_err (snd (Proto.error_kind_fields kind))
      | Ok _ -> Query.close c; exit_err "server sent a mismatched response"
      | Error e -> Query.close c; exit_err e
    in
    let frames = if once then 1 else count in
    let rec loop i prev =
      let s = fetch () in
      let at = Unix.gettimeofday () in
      (* QPS from the counter delta between successive polls — the
         server does not need a rate endpoint. *)
      let qps =
        match prev with
        | Some (t0, n0) when at > t0 ->
            float_of_int (total s - n0) /. (at -. t0)
        | _ -> 0.0
      in
      if not once then print_string "\027[2J\027[H";
      Printf.printf "adept top — %s\n\n" address;
      Printf.printf "requests: %d (%.1f qps)  errors: %d  coalesced: %d\n"
        (total s) qps s.Proto.errors s.Proto.coalesced;
      (match s.Proto.live with
      | None ->
          print_string
            "live observability is off on this server \
             (start `adept serve` with --live)\n"
      | Some l ->
          Printf.printf "uptime: %.1fs  traces sampled: %d\n"
            l.Proto.uptime_seconds l.Proto.traces_sampled;
          Printf.printf "latency: p50=%.3fms p99=%.3fms  gc pause p99: %.3fms\n"
            (l.Proto.latency_p50 *. 1e3) (l.Proto.latency_p99 *. 1e3)
            (l.Proto.gc_pause_p99 *. 1e3);
          Printf.printf "cache: %.1f%% hit (hits=%d misses=%d evictions=%d)\n"
            (l.Proto.cache_hit_ratio *. 100.0)
            s.Proto.cache_hits s.Proto.cache_misses s.Proto.cache_evictions;
          Printf.printf "domains:%s\n"
            (match l.Proto.domain_busy with
            | [] -> " (no scrape yet)"
            | busy ->
                String.concat ""
                  (List.mapi
                     (fun i r -> Printf.sprintf " [%d] %.0f%%" i (r *. 100.0))
                     busy));
          Printf.printf "alerts:%s\n"
            (match l.Proto.firing_alerts with
            | [] -> " none firing"
            | alerts ->
                String.concat ""
                  (List.map
                     (fun (name, sev) -> Printf.sprintf " %s(%s)" name sev)
                     alerts)));
      flush stdout;
      if frames = 0 || i < frames then begin
        Unix.sleepf interval;
        loop (i + 1) (Some (at, total s))
      end
    in
    loop 1 None;
    Query.close c
  in
  let interval =
    Arg.(value & opt float 1.0 & info [ "interval"; "i" ] ~docv:"SECONDS"
           ~doc:"Seconds between refreshes.")
  in
  let count =
    Arg.(value & opt int 0 & info [ "count"; "n" ] ~docv:"N"
           ~doc:"Stop after N frames (0 = run until interrupted).")
  in
  let once =
    Arg.(value & flag & info [ "once" ]
           ~doc:"Print one snapshot without clearing the screen and exit \
                 (scripting/CI).")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Live terminal view of a running `adept serve`: QPS, latency \
             quantiles, cache hit ratio, GC pauses, per-domain utilization \
             and firing alerts, refreshed in place")
    Term.(const run $ address_arg $ interval $ count $ once)

let main =
  let doc = "Automatic middleware deployment planning (ADePT)" in
  Cmd.group
    (Cmd.info "adept" ~version:"1.0.0" ~doc)
    [
      platform_cmd; plan_cmd; eval_cmd; simulate_cmd; observe_cmd; trace_cmd;
      monitor_cmd; replan_cmd; rollout_cmd; compare_cmd; improve_cmd;
      latency_cmd; experiment_cmd; bench_node_cmd; serve_cmd; query_cmd;
      top_cmd; obs_cmd;
    ]

let () = exit (Cmd.eval main)
