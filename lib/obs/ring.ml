type t = {
  retention : float;
  mutable times : float array;
  mutable values : float array;
  mutable head : int; (* index of the oldest sample *)
  mutable len : int;
  mutable pruned_before : float; (* max time among dropped samples *)
}

let create ?(capacity = 64) ~retention () =
  if retention < 0. then invalid_arg "Ring.create: negative retention";
  let capacity = max capacity 1 in
  {
    retention;
    times = Array.make capacity 0.;
    values = Array.make capacity 0.;
    head = 0;
    len = 0;
    pruned_before = neg_infinity;
  }

let retention t = t.retention

let length t = t.len

let capacity t = Array.length t.times

let get_time t i = t.times.((t.head + i) mod Array.length t.times)

let get_value t i = t.values.((t.head + i) mod Array.length t.times)

let oldest_time t = if t.len = 0 then None else Some (get_time t 0)

let latest_time t = if t.len = 0 then None else Some (get_time t (t.len - 1))

let grow t =
  let cap = Array.length t.times in
  let times = Array.make (2 * cap) 0. in
  let values = Array.make (2 * cap) 0. in
  for i = 0 to t.len - 1 do
    times.(i) <- get_time t i;
    values.(i) <- get_value t i
  done;
  t.times <- times;
  t.values <- values;
  t.head <- 0

let prune t ~now =
  if t.retention < infinity then begin
    let cutoff = now -. t.retention in
    let cap = Array.length t.times in
    while t.len > 0 && t.times.(t.head) < cutoff do
      let dropped = t.times.(t.head) in
      if dropped > t.pruned_before then t.pruned_before <- dropped;
      t.head <- (t.head + 1) mod cap;
      t.len <- t.len - 1
    done
  end

let push t ~time value =
  (match latest_time t with
  | Some latest when time < latest -> invalid_arg "Ring.push: time went backwards"
  | _ -> ());
  prune t ~now:time;
  if t.len = Array.length t.times then grow t;
  let cap = Array.length t.times in
  let i = (t.head + t.len) mod cap in
  t.times.(i) <- time;
  t.values.(i) <- value;
  t.len <- t.len + 1

(* Smallest logical index [i] with [get_time t i >= x], or [t.len]. *)
let lower_bound t x =
  let lo = ref 0 and hi = ref t.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if get_time t mid < x then lo := mid + 1 else hi := mid
  done;
  !lo

(* Smallest logical index [i] with [get_time t i > x], or [t.len]. *)
let upper_bound t x =
  let lo = ref 0 and hi = ref t.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if get_time t mid <= x then lo := mid + 1 else hi := mid
  done;
  !lo

let find_at_or_before t ~time =
  let i = upper_bound t time in
  if i = 0 then None else Some (get_time t (i - 1), get_value t (i - 1))

let count_in t ~t0 ~t1 =
  if t0 <= t.pruned_before then
    invalid_arg
      (Printf.sprintf
         "Ring.count_in: window start %g predates retained history (pruned \
          through %g)"
         t0 t.pruned_before);
  if t1 <= t0 then 0 else lower_bound t t1 - lower_bound t t0

let iter t f =
  for i = 0 to t.len - 1 do
    f ~time:(get_time t i) ~value:(get_value t i)
  done

let fold t ~init ~f =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc ~time:(get_time t i) ~value:(get_value t i)
  done;
  !acc
