(** The crash-safe flight recorder behind [adept serve --journal].

    A journal is a directory of segment files.  Each segment starts
    with the magic ["ADJ1"] and then holds length-prefixed records:
    [u32 length | u32 crc32 | payload] (little-endian, IEEE CRC32 of
    the payload).  Every append is flushed, so a crash can damage at
    most the tail of the newest segment; both {!create} and {!open_}
    detect a torn or corrupt tail by CRC, keep every whole record
    before it, and count the loss instead of hiding it.  Segments
    rotate at [segment_bytes] and the oldest are deleted beyond
    [max_segments] (bounded retention).

    Records carry everything [adept obs replay] needs to rebuild the
    live observability exports bit-identically: the store/server
    configuration ({!record.Meta}), per-request sampling decisions
    ({!record.Begin_request}), finished traces with their spans
    ({!record.Finish}), periodic scrape summaries ({!record.Scrape}),
    alert transitions ({!record.Alert_edge}), verbatim access-log
    lines ({!record.Access}) and trace-dump cut points
    ({!record.Dump_marker}). *)

(** One scrape-cadence summary of the serving counters. *)
type scrape = {
  j_at : float;
  j_uptime : float;
  j_plans : int;
  j_replans : int;
  j_observes : int;
  j_stats : int;
  j_errors : int;
  j_coalesced : int;
  j_cache_hits : int;
  j_cache_misses : int;
  j_cache_evictions : int;
  j_cache_invalidations : int;
  j_inflight : int;
  j_latency_p50 : float;
  j_latency_p99 : float;
  j_hit_ratio : float;
  j_gc_pause_p99 : float;
  j_traces_sampled : int;
  j_busy : float list;  (** Per-domain busy ratios, domain order. *)
}

type record =
  | Meta of {
      m_at : float;
      m_sample_rate : float;
      m_max_traces : int;
      m_max_spans : int;
      m_scrape_interval : float;
      m_retention : float;
      m_workers : int;
      m_shards : int;
    }  (** First record of a serving run: the observability config. *)
  | Begin_request of { b_at : float; b_trace : int; b_sampled : bool }
      (** A request arrived carrying a trace id. *)
  | Finish of {
      f_at : float;
      f_trace : int;
      f_issued : float;
      f_conn : int;  (** Server connection that carried the request. *)
      f_spans : Request_trace.span array option;
          (** [None] when the trace overflowed [max_spans] and was
              dropped by the live store. *)
      f_dropped_spans : int;  (** Store-wide total after this finish. *)
    }  (** A sampled request finished. *)
  | Scrape of scrape
  | Alert_edge of {
      a_at : float;
      a_name : string;
      a_severity : string;
      a_state : string;  (** ["pending"] / ["firing"] / ["resolved"]. *)
      a_value : float;
    }  (** One alert state-machine transition. *)
  | Access of { x_at : float; x_line : string }
      (** A rendered access-log line, byte-verbatim. *)
  | Dump_marker of { d_at : float }
      (** A live trace/OTLP dump was rendered here — replay cuts at a
          marker to reproduce that dump's bytes. *)

val encode : record -> string
(** The record payload (without framing) — exposed for tests. *)

val decode : string -> record option
(** Inverse of {!encode}; [None] on an unknown (future) tag.
    @raise Bad_record nothing — malformed payloads return [None] or
    are caught internally by the segment scanner. *)

(** {1 Writing} *)

type writer

val create :
  ?segment_bytes:int -> ?max_segments:int -> string -> (writer, string) result
(** Open (creating the directory if needed) a journal for appending.
    Resumes after the last whole record of the newest segment,
    truncating any torn tail first.  Defaults: 4 MiB segments, 8
    segments retained.
    @raise Invalid_argument on [segment_bytes < 4096] or
    [max_segments < 1]. *)

val append : writer -> record -> int
(** Append one record (flushed before returning) and return the framed
    byte count.  Rotates to a new segment when the current one is
    full, deleting the oldest beyond [max_segments]. *)

val records_written : writer -> int

val bytes_written : writer -> int

val directory : writer -> string

val close : writer -> unit

(** {1 Reading} *)

type read_stats = {
  r_segments : int;
  r_records : int;
  r_truncated : int;
      (** Segments whose tail was torn or corrupt — every whole record
          before the tear is still returned. *)
  r_bytes_lost : int;  (** Bytes discarded across all torn tails. *)
}

type reader

val open_ : string -> (reader, string) result
(** Read a journal directory (all segments, oldest first) or a single
    segment file.  Never fails on torn tails — those are recovered and
    counted in {!stats}. *)

val records : reader -> record list
(** Every recovered record, in append order. *)

val stats : reader -> read_stats
