type span = {
  sp_name : string;
  sp_labels : Label.t;
  sp_start : float;
  mutable sp_end : float option;
}

type stored = S_event of { at : float; name : string; labels : Label.t } | S_span of span

type item =
  | Event of { at : float; name : string; labels : Label.t }
  | Span of {
      name : string;
      labels : Label.t;
      start_at : float;
      end_at : float option;
    }

type t = {
  max_items : int;
  mutable items : stored list; (* newest first *)
  mutable length : int;
  mutable dropped : int;
}

let create ?(max_items = 10_000) () =
  if max_items < 0 then invalid_arg "Tracer.create: negative max_items";
  { max_items; items = []; length = 0; dropped = 0 }

let store t s =
  if t.length >= t.max_items then t.dropped <- t.dropped + 1
  else begin
    t.items <- s :: t.items;
    t.length <- t.length + 1
  end

let event t ~at ?(labels = Label.empty) name =
  store t (S_event { at; name; labels })

let span_start t ~at ?(labels = Label.empty) name =
  let sp = { sp_name = name; sp_labels = labels; sp_start = at; sp_end = None } in
  store t (S_span sp);
  sp

let span_end _t ~at sp = if sp.sp_end = None then sp.sp_end <- Some at

let items t =
  List.rev_map
    (function
      | S_event { at; name; labels } -> Event { at; name; labels }
      | S_span sp ->
          Span
            {
              name = sp.sp_name;
              labels = sp.sp_labels;
              start_at = sp.sp_start;
              end_at = sp.sp_end;
            })
    t.items

let length t = t.length

let dropped t = t.dropped
