(** The metrics registry: named families of labeled series.

    Instrument accessors are get-or-create on the [(name, labels)]
    pair, so call sites can be re-entered freely (a redeployed
    middleware generation keeps accumulating into the same series).
    A name is bound to one instrument kind for the registry's
    lifetime; re-registering under a different kind raises. *)

type t

val create : unit -> t

val counter : t -> ?help:string -> ?labels:Label.t -> string -> Counter.t

val gauge : t -> ?help:string -> ?labels:Label.t -> string -> Gauge.t

val histogram :
  t ->
  ?help:string ->
  ?labels:Label.t ->
  ?alpha:float ->
  ?min_value:float ->
  ?max_value:float ->
  string ->
  Histogram.t
(** Histogram options apply on first creation of the family and are
    ignored on later lookups of existing series. *)

(** {1 Snapshots for export} *)

type value =
  | Counter of float
  | Gauge of float
  | Histogram of Histogram.snapshot

type family = {
  name : string;
  help : string;
  series : (Label.t * value) list;  (** sorted by label set *)
}

val snapshot : t -> family list
(** Families sorted by name; series sorted by label set — stable,
    deterministic export order. *)

val find : t -> string -> family option
(** Snapshot of a single family, if registered. *)

val num_series : t -> int
(** Total number of live series across all families (memory proxy). *)
