(** Model-vs-measured fidelity report.

    Sets the per-element compute components the model charges (Eqs. 1–5,
    via {!Adept.Evaluate.element_costs}) against the per-node timing
    histograms the instrumented middleware recorded, and the Eq. 16
    throughput prediction against the measured run throughput.  The
    resulting deviations are both a human-readable table and a CI gate:
    {!max_deviation} is the worst relative error across every compared
    quantity. *)

type row = {
  r_node : int;
  r_level : int;  (** Hierarchy depth, root = 0. *)
  r_role : [ `Agent | `Server ];
  r_component : string;  (** ["wreq/w"], ["wrep/w"], ["wpre/w"], ["wapp/w"]. *)
  r_metric : string;  (** The {!Semconv} histogram backing the measurement. *)
  r_predicted : float;  (** Model seconds per request. *)
  r_measured : float option;  (** Measured mean seconds; [None] if the
                                  series is absent or empty. *)
  r_samples : int;  (** Recorded observations behind the mean. *)
  r_deviation : float option;
      (** [|measured - predicted| / predicted]; [None] without a
          measurement. *)
}

type t = {
  rows : row list;  (** Sorted by node id, then component. *)
  predicted_rho : float;  (** Eq. 16 via {!Adept.Evaluate.rho_hetero}. *)
  measured_rho : float option;
      (** The run's {!Semconv.run_measured_throughput} gauge. *)
  rho_deviation : float option;
  max_deviation : float option;
      (** Worst relative error over all rows and the throughput;
          [None] when nothing was measured. *)
}

val build :
  registry:Registry.t ->
  params:Adept_model.Params.t ->
  platform:Adept_platform.Platform.t ->
  wapp:float ->
  tree:Adept_hierarchy.Tree.t ->
  t
(** Compare the model's predictions for [tree] against whatever the
    [registry] holds after an instrumented run.  Nodes never observed
    (e.g. a server that received no request) produce rows with
    [r_measured = None] and do not count against {!max_deviation}. *)

val max_deviation : t -> float option

val render : t -> string
(** Multi-line human table: one line per element component, then the
    throughput comparison and the worst deviation. *)
