type severity = Info | Warning | Critical

let severity_name = function
  | Info -> "info"
  | Warning -> "warning"
  | Critical -> "critical"

type stat = Value | Count | Sum | Quantile of float

let stat_suffix = function
  | Value -> ""
  | Count -> "/count"
  | Sum -> "/sum"
  | Quantile q -> Printf.sprintf "/q%g" q

type selector = { sel_metric : string; sel_labels : Label.t; sel_stat : stat }

let selector ?(labels = Label.empty) ?(stat = Value) metric =
  if not (Label.valid_name metric) then
    invalid_arg (Printf.sprintf "Rule.selector: invalid metric name %S" metric);
  (match stat with
  | Quantile q when not (q >= 0. && q <= 100.) ->
      invalid_arg "Rule.selector: quantile must be in [0, 100]"
  | _ -> ());
  { sel_metric = metric; sel_labels = labels; sel_stat = stat }

let with_stat s stat = { s with sel_stat = stat }

let selector_key s =
  Printf.sprintf "%s%s%s" s.sel_metric
    (Label.to_prometheus s.sel_labels)
    (stat_suffix s.sel_stat)

type expr =
  | Const of float
  | Last of selector
  | Rate of selector * float
  | Delta of selector * float
  | Window_mean of selector * float
  | Abs of expr
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr
  | Min of expr * expr
  | Max of expr * expr

type cmp = Gt | Lt

type t = {
  name : string;
  severity : severity;
  for_duration : float;
  lhs : expr;
  cmp : cmp;
  rhs : expr;
}

(* Alert names are freer than metric names: hyphens, dots, slashes and
   colons let built-in rules spell e.g. [cost-drift/node-3/service]. *)
let valid_rule_name s =
  let ok_first c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' in
  let ok c =
    ok_first c || (c >= '0' && c <= '9') || c = '.' || c = ':' || c = '/'
    || c = '-'
  in
  String.length s > 0
  && ok_first s.[0]
  && String.for_all ok s

let rec check_windows = function
  | Const _ | Last _ -> ()
  | Rate (_, w) | Delta (_, w) | Window_mean (_, w) ->
      if not (w > 0.) then
        invalid_arg "Rule.v: expression window must be > 0"
  | Abs e -> check_windows e
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Min (a, b) | Max (a, b)
    ->
      check_windows a;
      check_windows b

let v ?(severity = Warning) ?(for_duration = 0.) name lhs cmp rhs =
  if not (valid_rule_name name) then
    invalid_arg (Printf.sprintf "Rule.v: invalid rule name %S" name);
  if Float.is_nan for_duration || for_duration < 0. then
    invalid_arg "Rule.v: for_duration must be >= 0";
  check_windows lhs;
  check_windows rhs;
  { name; severity; for_duration; lhs; cmp; rhs }

let threshold ?severity ?for_duration name sel cmp bound =
  v ?severity ?for_duration name (Last sel) cmp (Const bound)

let deviation ?severity ?for_duration name ~measured ~reference ~tolerance =
  v ?severity ?for_duration name
    (Abs (Sub (Div (measured, reference), Const 1.)))
    Gt (Const tolerance)

let burn_rate ?severity name sel ~short ~long ~bound =
  if not (0. < short && short < long) then
    invalid_arg "Rule.burn_rate: need 0 < short < long";
  v ?severity name (Min (Rate (sel, short), Rate (sel, long))) Gt (Const bound)

let selectors rule =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let add s =
    let key = selector_key s in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      acc := s :: !acc
    end
  in
  let rec walk = function
    | Const _ -> ()
    | Last s | Rate (s, _) | Delta (s, _) -> add s
    | Window_mean (s, _) ->
        add { s with sel_stat = Sum };
        add { s with sel_stat = Count }
    | Abs e -> walk e
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Min (a, b)
    | Max (a, b) ->
        walk a;
        walk b
  in
  walk rule.lhs;
  walk rule.rhs;
  List.rev !acc

let max_window rule =
  let rec walk = function
    | Const _ | Last _ -> 0.
    | Rate (_, w) | Delta (_, w) | Window_mean (_, w) -> w
    | Abs e -> walk e
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Min (a, b)
    | Max (a, b) ->
        Float.max (walk a) (walk b)
  in
  Float.max (walk rule.lhs) (walk rule.rhs)

(* ------------------------------------------------------------------ *)
(* Rendering (the same concrete syntax [parse] accepts)               *)

let num_to_string v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let sel_to_string s =
  let base = Printf.sprintf "%s%s" s.sel_metric (Label.to_prometheus s.sel_labels) in
  match s.sel_stat with
  | Value -> Printf.sprintf "last(%s)" base
  | Count -> Printf.sprintf "count(%s)" base
  | Sum -> Printf.sprintf "sum(%s)" base
  | Quantile q -> Printf.sprintf "quantile(%s, %s)" base (num_to_string q)

let windowed fn s w =
  Printf.sprintf "%s(%s%s[%s])" fn s.sel_metric
    (Label.to_prometheus s.sel_labels)
    (num_to_string w)

let rec expr_to_string = function
  | Const v -> num_to_string v
  | Last s | Rate (s, _) | Delta (s, _) | Window_mean (s, _) as e -> (
      match e with
      | Last _ -> sel_to_string s
      | Rate (_, w) -> windowed "rate" s w
      | Delta (_, w) -> windowed "delta" s w
      | Window_mean (_, w) -> windowed "mean" s w
      | _ -> assert false)
  | Abs e -> Printf.sprintf "abs(%s)" (expr_to_string e)
  | Min (a, b) ->
      Printf.sprintf "min(%s, %s)" (expr_to_string a) (expr_to_string b)
  | Max (a, b) ->
      Printf.sprintf "max(%s, %s)" (expr_to_string a) (expr_to_string b)
  | Add (a, b) ->
      Printf.sprintf "(%s + %s)" (expr_to_string a) (expr_to_string b)
  | Sub (a, b) ->
      Printf.sprintf "(%s - %s)" (expr_to_string a) (expr_to_string b)
  | Mul (a, b) ->
      Printf.sprintf "(%s * %s)" (expr_to_string a) (expr_to_string b)
  | Div (a, b) ->
      Printf.sprintf "(%s / %s)" (expr_to_string a) (expr_to_string b)

let to_string rule =
  let opts =
    (if rule.severity = Warning then ""
     else Printf.sprintf " severity=%s" (severity_name rule.severity))
    ^
    if rule.for_duration = 0. then ""
    else Printf.sprintf " for=%s" (num_to_string rule.for_duration)
  in
  Printf.sprintf "alert %s%s when %s %s %s" rule.name opts
    (expr_to_string rule.lhs)
    (match rule.cmp with Gt -> ">" | Lt -> "<")
    (expr_to_string rule.rhs)

(* ------------------------------------------------------------------ *)
(* Parser: a hand-rolled lexer + recursive descent over one line      *)

type token =
  | Tident of string
  | Tnum of float
  | Tstr of string
  | Tlparen
  | Trparen
  | Tlbrace
  | Trbrace
  | Tlbracket
  | Trbracket
  | Tcomma
  | Teq
  | Tgt
  | Tlt
  | Tplus
  | Tminus
  | Tstar
  | Tslash

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

let lex line =
  let n = String.length line in
  let toks = ref [] in
  let i = ref 0 in
  let is_ident c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = ':' || c = '.' || c = '-'
  in
  let is_num c = (c >= '0' && c <= '9') || c = '.' in
  while !i < n do
    let c = line.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if c = '"' then begin
      (* quoted label value; backslash escapes the next char, [\n] newline *)
      let buf = Buffer.create 8 in
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        (match line.[!i] with
        | '"' -> closed := true
        | '\\' when !i + 1 < n ->
            incr i;
            Buffer.add_char buf
              (match line.[!i] with 'n' -> '\n' | c -> c)
        | c -> Buffer.add_char buf c);
        incr i
      done;
      if not !closed then fail "unterminated string literal";
      toks := Tstr (Buffer.contents buf) :: !toks
    end
    else if is_num c then begin
      let start = !i in
      while !i < n && (is_num line.[!i] || line.[!i] = 'e' || line.[!i] = 'E'
                       || ((line.[!i] = '+' || line.[!i] = '-')
                          && !i > start
                          && (line.[!i - 1] = 'e' || line.[!i - 1] = 'E')))
      do
        incr i
      done;
      let s = String.sub line start (!i - start) in
      match float_of_string_opt s with
      | Some v -> toks := Tnum v :: !toks
      | None -> fail "malformed number %S" s
    end
    else if is_ident c && c <> '-' then begin
      (* '-' may continue an identifier (rule names like model-drift) but
         never start one, so a spaced-out minus still lexes as Tminus *)
      let start = !i in
      while !i < n && (is_ident line.[!i] || line.[!i] = '/') do
        incr i
      done;
      toks := Tident (String.sub line start (!i - start)) :: !toks
    end
    else begin
      (match c with
      | '(' -> toks := Tlparen :: !toks
      | ')' -> toks := Trparen :: !toks
      | '{' -> toks := Tlbrace :: !toks
      | '}' -> toks := Trbrace :: !toks
      | '[' -> toks := Tlbracket :: !toks
      | ']' -> toks := Trbracket :: !toks
      | ',' -> toks := Tcomma :: !toks
      | '=' -> toks := Teq :: !toks
      | '>' -> toks := Tgt :: !toks
      | '<' -> toks := Tlt :: !toks
      | '+' -> toks := Tplus :: !toks
      | '-' -> toks := Tminus :: !toks
      | '*' -> toks := Tstar :: !toks
      | '/' -> toks := Tslash :: !toks
      | c -> fail "unexpected character %C" c);
      incr i
    end
  done;
  List.rev !toks

(* A mutable token cursor. *)
type cursor = { mutable toks : token list }

let peek cur = match cur.toks with [] -> None | t :: _ -> Some t

let advance cur =
  match cur.toks with [] -> fail "unexpected end of line" | _ :: rest ->
    cur.toks <- rest

let expect cur tok what =
  match cur.toks with
  | t :: rest when t = tok -> cur.toks <- rest
  | _ -> fail "expected %s" what

let parse_labels cur =
  (* after Tlbrace: k="v" ("," k="v")* "}" *)
  let pairs = ref [] in
  let rec loop () =
    match peek cur with
    | Some (Tident k) -> (
        advance cur;
        expect cur Teq "'=' in label matcher";
        match peek cur with
        | Some (Tstr v) -> (
            advance cur;
            pairs := (k, v) :: !pairs;
            match peek cur with
            | Some Tcomma ->
                advance cur;
                loop ()
            | _ -> ())
        | _ -> fail "expected quoted label value for %S" k)
    | _ -> ()
  in
  loop ();
  expect cur Trbrace "'}' closing label matcher";
  try Label.v (List.rev !pairs)
  with Invalid_argument m -> fail "%s" m

let parse_selector cur =
  match peek cur with
  | Some (Tident metric) ->
      advance cur;
      let labels =
        match peek cur with
        | Some Tlbrace ->
            advance cur;
            parse_labels cur
        | _ -> Label.empty
      in
      (metric, labels)
  | _ -> fail "expected a metric name"

let parse_window cur =
  expect cur Tlbracket "'[' opening window";
  match peek cur with
  | Some (Tnum w) ->
      advance cur;
      expect cur Trbracket "']' closing window";
      w
  | _ -> fail "expected window length in seconds"

let mk_selector ?stat (metric, labels) =
  try selector ~labels ?stat metric
  with Invalid_argument m -> fail "%s" m

let rec parse_expr cur =
  let lhs = ref (parse_term cur) in
  let rec loop () =
    match peek cur with
    | Some Tplus ->
        advance cur;
        lhs := Add (!lhs, parse_term cur);
        loop ()
    | Some Tminus ->
        advance cur;
        lhs := Sub (!lhs, parse_term cur);
        loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_term cur =
  let lhs = ref (parse_factor cur) in
  let rec loop () =
    match peek cur with
    | Some Tstar ->
        advance cur;
        lhs := Mul (!lhs, parse_factor cur);
        loop ()
    | Some Tslash ->
        advance cur;
        lhs := Div (!lhs, parse_factor cur);
        loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_factor cur =
  match peek cur with
  | Some (Tnum v) ->
      advance cur;
      Const v
  | Some Tminus ->
      advance cur;
      Sub (Const 0., parse_factor cur)
  | Some Tlparen ->
      advance cur;
      let e = parse_expr cur in
      expect cur Trparen "')'";
      e
  | Some (Tident fn) -> (
      advance cur;
      expect cur Tlparen (Printf.sprintf "'(' after %s" fn);
      let finish e =
        expect cur Trparen "')'";
        e
      in
      match fn with
      | "last" -> finish (Last (mk_selector (parse_selector cur)))
      | "count" -> finish (Last (mk_selector ~stat:Count (parse_selector cur)))
      | "sum" -> finish (Last (mk_selector ~stat:Sum (parse_selector cur)))
      | "p50" | "p95" | "p99" ->
          let q = float_of_string (String.sub fn 1 2) in
          finish (Last (mk_selector ~stat:(Quantile q) (parse_selector cur)))
      | "quantile" -> (
          let sel = parse_selector cur in
          expect cur Tcomma "',' before quantile rank";
          match peek cur with
          | Some (Tnum q) ->
              advance cur;
              finish (Last (mk_selector ~stat:(Quantile q) sel))
          | _ -> fail "expected quantile rank")
      | "rate" | "delta" | "mean" ->
          let sel = parse_selector cur in
          let w = parse_window cur in
          let sel = mk_selector sel in
          finish
            (match fn with
            | "rate" -> Rate (sel, w)
            | "delta" -> Delta (sel, w)
            | _ -> Window_mean (sel, w))
      | "abs" -> finish (Abs (parse_expr cur))
      | "min" | "max" ->
          let a = parse_expr cur in
          expect cur Tcomma "','";
          let b = parse_expr cur in
          finish (if fn = "min" then Min (a, b) else Max (a, b))
      | fn -> fail "unknown function %S" fn)
  | _ -> fail "expected an expression"

let parse_rule_line line =
  let cur = { toks = lex line } in
  (match peek cur with
  | Some (Tident "alert") -> advance cur
  | _ -> fail "rule must start with 'alert'");
  let name =
    match peek cur with
    | Some (Tident n) ->
        advance cur;
        n
    | _ -> fail "expected alert name"
  in
  let severity = ref Warning and for_duration = ref 0. in
  let rec opts () =
    match cur.toks with
    | Tident "severity" :: Teq :: Tident s :: rest ->
        (severity :=
           match s with
           | "info" -> Info
           | "warning" -> Warning
           | "critical" -> Critical
           | s -> fail "unknown severity %S" s);
        cur.toks <- rest;
        opts ()
    | Tident "for" :: Teq :: Tnum d :: rest ->
        for_duration := d;
        cur.toks <- rest;
        opts ()
    | _ -> ()
  in
  opts ();
  (match peek cur with
  | Some (Tident "when") -> advance cur
  | _ -> fail "expected 'when'");
  let lhs = parse_expr cur in
  let cmp =
    match peek cur with
    | Some Tgt ->
        advance cur;
        Gt
    | Some Tlt ->
        advance cur;
        Lt
    | _ -> fail "expected '>' or '<'"
  in
  let rhs = parse_expr cur in
  if cur.toks <> [] then fail "trailing tokens after rule";
  try v ~severity:!severity ~for_duration:!for_duration name lhs cmp rhs
  with Invalid_argument m -> fail "%s" m

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec loop lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        let stripped = String.trim line in
        if stripped = "" || stripped.[0] = '#' then loop (lineno + 1) acc rest
        else
          match parse_rule_line stripped with
          | rule -> loop (lineno + 1) (rule :: acc) rest
          | exception Parse_error m ->
              Error (Printf.sprintf "line %d: %s" lineno m))
  in
  loop 1 [] lines
