let float_repr v =
  if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else if Float.is_nan v then "NaN"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let family_help (f : Registry.family) =
  if f.help <> "" then f.help else Semconv.help f.name

let kind_of_family (f : Registry.family) =
  match f.series with
  | (_, Registry.Counter _) :: _ -> "counter"
  | (_, Registry.Gauge _) :: _ -> "gauge"
  | (_, Registry.Histogram _) :: _ -> "histogram"
  | [] -> "untyped"

let escape_help s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let with_le labels bound =
  Label.v (("le", float_repr bound) :: (Label.pairs labels : (string * string) list))

let prometheus families =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (f : Registry.family) ->
      if f.series <> [] then begin
        let help = family_help f in
        if help <> "" then
          Buffer.add_string buf
            (Printf.sprintf "# HELP %s %s\n" f.name (escape_help help));
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" f.name (kind_of_family f));
        List.iter
          (fun (labels, value) ->
            match (value : Registry.value) with
            | Registry.Counter v | Registry.Gauge v ->
                Buffer.add_string buf
                  (Printf.sprintf "%s%s %s\n" f.name (Label.to_prometheus labels)
                     (float_repr v))
            | Registry.Histogram snap ->
                List.iter
                  (fun (bound, cumulative) ->
                    Buffer.add_string buf
                      (Printf.sprintf "%s_bucket%s %d\n" f.name
                         (Label.to_prometheus (with_le labels bound))
                         cumulative))
                  (Histogram.cumulative_buckets snap);
                if Histogram.count snap = 0 then
                  (* an empty histogram still exports its zero count *)
                  Buffer.add_string buf
                    (Printf.sprintf "%s_bucket%s 0\n" f.name
                       (Label.to_prometheus (with_le labels infinity)));
                Buffer.add_string buf
                  (Printf.sprintf "%s_sum%s %s\n" f.name
                     (Label.to_prometheus labels)
                     (float_repr (Histogram.sum snap)));
                Buffer.add_string buf
                  (Printf.sprintf "%s_count%s %d\n" f.name
                     (Label.to_prometheus labels) (Histogram.count snap)))
          f.series
      end)
    families;
  Buffer.contents buf

let json_float v =
  if v = infinity || v = neg_infinity || Float.is_nan v then
    Label.json_string (float_repr v)
  else float_repr v

let jsonl families =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (f : Registry.family) ->
      List.iter
        (fun (labels, value) ->
          let common kind =
            Printf.sprintf "\"metric\":%s,\"type\":%s,\"labels\":%s"
              (Label.json_string f.name) (Label.json_string kind)
              (Label.to_json labels)
          in
          (match (value : Registry.value) with
          | Registry.Counter v ->
              Buffer.add_string buf
                (Printf.sprintf "{%s,\"value\":%s}" (common "counter")
                   (json_float v))
          | Registry.Gauge v ->
              Buffer.add_string buf
                (Printf.sprintf "{%s,\"value\":%s}" (common "gauge")
                   (json_float v))
          | Registry.Histogram snap ->
              let buckets =
                Histogram.cumulative_buckets snap
                |> List.map (fun (bound, c) ->
                       Printf.sprintf "{\"le\":%s,\"count\":%d}" (json_float bound) c)
                |> String.concat ","
              in
              let opt = function Some v -> json_float v | None -> "null" in
              Buffer.add_string buf
                (Printf.sprintf
                   "{%s,\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"buckets\":[%s]}"
                   (common "histogram") (Histogram.count snap)
                   (json_float (Histogram.sum snap))
                   (opt (Histogram.min_recorded snap))
                   (opt (Histogram.max_recorded snap))
                   buckets));
          Buffer.add_char buf '\n')
        f.series)
    families;
  Buffer.contents buf

let csv families =
  let table = ref (Adept_util.Csv.create [ "metric"; "labels"; "stat"; "value" ]) in
  let row metric labels stat value =
    table :=
      Adept_util.Csv.add_row !table
        [ metric; Label.to_string labels; stat; float_repr value ]
  in
  List.iter
    (fun (f : Registry.family) ->
      List.iter
        (fun (labels, value) ->
          match (value : Registry.value) with
          | Registry.Counter v | Registry.Gauge v -> row f.name labels "value" v
          | Registry.Histogram snap ->
              row f.name labels "count" (float_of_int (Histogram.count snap));
              row f.name labels "sum" (Histogram.sum snap);
              let opt stat = function
                | Some v -> row f.name labels stat v
                | None -> ()
              in
              opt "mean" (Histogram.mean snap);
              opt "p50" (Histogram.quantile snap 50.);
              opt "p95" (Histogram.quantile snap 95.);
              opt "p99" (Histogram.quantile snap 99.);
              opt "max" (Histogram.max_recorded snap))
        f.series)
    families;
  !table

let tracer_jsonl tracer =
  let buf = Buffer.create 1024 in
  (* Truncation made visible: a bounded buffer that overflowed says so
     up front instead of silently exporting a prefix. *)
  if Tracer.dropped tracer > 0 then
    Buffer.add_string buf
      (Printf.sprintf "{\"type\":\"meta\",\"dropped\":%d}\n" (Tracer.dropped tracer));
  List.iter
    (fun item ->
      (match (item : Tracer.item) with
      | Tracer.Event { at; name; labels } ->
          Buffer.add_string buf
            (Printf.sprintf "{\"type\":\"event\",\"at\":%s,\"name\":%s,\"labels\":%s}"
               (json_float at) (Label.json_string name) (Label.to_json labels))
      | Tracer.Span { name; labels; start_at; end_at } ->
          Buffer.add_string buf
            (Printf.sprintf
               "{\"type\":\"span\",\"start\":%s,\"end\":%s,\"name\":%s,\"labels\":%s}"
               (json_float start_at)
               (match end_at with Some e -> json_float e | None -> "null")
               (Label.json_string name) (Label.to_json labels)));
      Buffer.add_char buf '\n')
    (Tracer.items tracer);
  Buffer.contents buf

(* The line-level emitter is shared between the live path (feeding it
   [Alert.transitions]) and the flight-recorder replay (feeding it
   journalled transition records) so both produce identical bytes. *)
let alert_timeline_entries entries =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (at, name, severity, state, value) ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"at\":%s,\"alert\":%s,\"severity\":%s,\"state\":%s,\"value\":%s}\n"
           (json_float at) (Label.json_string name)
           (Label.json_string severity) (Label.json_string state)
           (json_float value)))
    entries;
  Buffer.contents buf

let transition_state (tr : Alert.transition) =
  match tr.Alert.edge with
  | Alert.To_pending -> "pending"
  | Alert.To_firing -> "firing"
  | Alert.To_resolved -> "resolved"

let transition_entry (tr : Alert.transition) =
  ( tr.Alert.at,
    tr.Alert.rule.Rule.name,
    Rule.severity_name tr.Alert.rule.Rule.severity,
    transition_state tr,
    tr.Alert.value )

let alert_timeline_jsonl alerts =
  alert_timeline_entries (List.map transition_entry (Alert.transitions alerts))

let alerts_prom alerts =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "# HELP %s %s\n# TYPE %s gauge\n" Semconv.alerts_series
       (escape_help (Semconv.help Semconv.alerts_series))
       Semconv.alerts_series);
  let sample ~at ~state ~value (rule : Rule.t) =
    Buffer.add_string buf
      (Printf.sprintf "%s%s %d %.0f\n" Semconv.alerts_series
         (Label.to_prometheus
            (Label.v
               [
                 (Semconv.l_alertname, rule.Rule.name);
                 (Semconv.l_alertstate, state);
                 (Semconv.l_severity, Rule.severity_name rule.Rule.severity);
               ]))
         value (at *. 1000.))
  in
  List.iter
    (fun (tr : Alert.transition) ->
      match tr.Alert.edge with
      | Alert.To_pending ->
          sample ~at:tr.Alert.at ~state:"pending" ~value:1 tr.Alert.rule
      | Alert.To_firing ->
          sample ~at:tr.Alert.at ~state:"firing" ~value:1 tr.Alert.rule
      | Alert.To_resolved ->
          sample ~at:tr.Alert.at ~state:"firing" ~value:0 tr.Alert.rule)
    (Alert.transitions alerts);
  Buffer.contents buf

(* Chrome trace-event JSON (catapult format, Perfetto-loadable): every
   retained exemplar trace becomes a process, every element a thread,
   every span a complete ("X") event with microsecond timestamps.
   Deterministic: traces slowest-first as the reservoir keeps them,
   spans by id, stable float formatting. *)
let chrome_trace_spans ~exemplars ~requests ~sampled ~finished ~dropped
    ~dropped_spans =
  let module Rt = Request_trace in
  let buf = Buffer.create 4096 in
  let us v = Printf.sprintf "%.3f" (v *. 1e6) in
  let first = ref true in
  let emit line =
    if !first then first := false else Buffer.add_string buf ",\n";
    Buffer.add_string buf line
  in
  Buffer.add_string buf "{\"traceEvents\":[\n";
  List.iter
    (fun (tr : Rt.trace) ->
      let pid = tr.Rt.tr_id in
      emit
        (Printf.sprintf
           "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"request %d (%s s)\"}}"
           pid pid (float_repr (Rt.duration tr)));
      let named_tids = Hashtbl.create 8 in
      let on_path =
        let set = Hashtbl.create 32 in
        List.iter
          (fun (sp : Rt.span) -> Hashtbl.replace set sp.Rt.sp_id ())
          (Rt.critical_path tr);
        fun id -> Hashtbl.mem set id
      in
      Array.iter
        (fun (sp : Rt.span) ->
          let tid = sp.Rt.sp_node + 1 in
          if not (Hashtbl.mem named_tids tid) then begin
            Hashtbl.replace named_tids tid ();
            emit
              (Printf.sprintf
                 "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":%s}}"
                 pid tid
                 (Label.json_string
                    (match sp.Rt.sp_kind with
                    | Rt.Stage _ ->
                        if sp.Rt.sp_node < 0 then "server"
                        else Printf.sprintf "shard %d" sp.Rt.sp_node
                    | _ ->
                        if sp.Rt.sp_node < 0 then "client/net"
                        else Printf.sprintf "node %d" sp.Rt.sp_node)))
          end;
          let cat =
            match sp.Rt.sp_kind with
            | Rt.Compute Rt.Service
            | Rt.Send (Rt.Service_request | Rt.Service_reply)
            | Rt.Wire (Rt.Service_request | Rt.Service_reply)
            | Rt.Recv (Rt.Service_request | Rt.Service_reply) ->
                "service"
            | Rt.Stage _ -> "serve"
            | _ -> "sched"
          in
          emit
            (Printf.sprintf
               "{\"name\":%s,\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":%d,\"tid\":%d,\"args\":{\"span\":%d,\"parent\":%d,\"cp\":%d}}"
               (Label.json_string (Rt.kind_name sp.Rt.sp_kind))
               cat
               (us sp.Rt.sp_start)
               (us (sp.Rt.sp_stop -. sp.Rt.sp_start))
               pid tid sp.Rt.sp_id sp.Rt.sp_parent
               (if on_path sp.Rt.sp_id then 1 else 0)))
        tr.Rt.tr_spans)
    exemplars;
  Buffer.add_string buf
    (Printf.sprintf
       "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"requests\":%d,\"sampled\":%d,\"finished\":%d,\"dropped\":%d,\"dropped_spans\":%d}}\n"
       requests sampled finished dropped dropped_spans);
  Buffer.contents buf

let chrome_trace store =
  let module Rt = Request_trace in
  chrome_trace_spans ~exemplars:(Rt.exemplars store)
    ~requests:(Rt.requests_seen store) ~sampled:(Rt.sampled store)
    ~finished:(Rt.finished store) ~dropped:(Rt.dropped store)
    ~dropped_spans:(Rt.dropped_spans store)

