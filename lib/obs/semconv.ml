let l_node = "node"
let l_level = "level"
let l_kind = "kind"
let l_role = "role"
let l_reason = "reason"
let l_strategy = "strategy"
let l_alertname = "alertname"
let l_alertstate = "alertstate"
let l_severity = "severity"
let l_component = "component"
let l_step = "step"
let l_method = "method"

let node_label id = (l_node, string_of_int id)
let level_label depth = (l_level, string_of_int depth)

let messages_total = "adept_messages_total"
let message_mbit_total = "adept_message_mbit_total"
let agent_request_compute_seconds = "adept_agent_request_compute_seconds"
let agent_reply_compute_seconds = "adept_agent_reply_compute_seconds"
let server_prediction_seconds = "adept_server_prediction_seconds"
let server_service_seconds = "adept_server_service_seconds"
let server_backlog_seconds = "adept_server_backlog_seconds"
let agent_inflight_requests = "adept_agent_inflight_requests"

let sched_latency_seconds = "adept_sched_latency_seconds"
let response_seconds = "adept_response_seconds"
let requests_issued_total = "adept_requests_issued_total"
let requests_completed_total = "adept_requests_completed_total"
let requests_lost_total = "adept_requests_lost_total"
let node_utilization_ratio = "adept_node_utilization_ratio"
let run_duration_seconds = "adept_run_duration_seconds"
let run_measured_throughput = "adept_run_measured_throughput"

let controller_replans_total = "adept_controller_replans_total"
let controller_suppressed_total = "adept_controller_suppressed_total"
let controller_migration_seconds = "adept_controller_migration_seconds"
let controller_window_throughput = "adept_controller_window_throughput"
let controller_degraded_samples_total = "adept_controller_degraded_samples_total"
let rollout_transitions_total = "adept_rollout_transitions_total"

let planner_evaluations_total = "adept_planner_evaluations_total"
let planner_plans_total = "adept_planner_plans_total"

let serve_requests_total = "adept_serve_requests_total"
let serve_errors_total = "adept_serve_errors_total"
let serve_cache_hits_total = "adept_serve_cache_hits_total"
let serve_cache_misses_total = "adept_serve_cache_misses_total"
let serve_cache_evictions_total = "adept_serve_cache_evictions_total"
let serve_cache_invalidations_total = "adept_serve_cache_invalidations_total"
let serve_coalesced_total = "adept_serve_coalesced_total"
let serve_inflight_requests = "adept_serve_inflight_requests"
let serve_request_seconds = "adept_serve_request_seconds"
let serve_cache_hit_ratio = "adept_serve_cache_hit_ratio"
let serve_cache_eviction_age_seconds = "adept_serve_cache_eviction_age_seconds"
let serve_traces_sampled_total = "adept_serve_traces_sampled_total"
let serve_scrapes_total = "adept_serve_scrapes_total"
let serve_journal_records_total = "adept_serve_journal_records_total"
let serve_journal_bytes_total = "adept_serve_journal_bytes_total"
let serve_otlp_exports_total = "adept_serve_otlp_exports_total"

let runtime_gc_pause_seconds = "adept_runtime_gc_pause_seconds"
let runtime_domain_busy_ratio = "adept_runtime_domain_busy_ratio"
let runtime_events_total = "adept_runtime_events_total"

let l_phase = "phase"
let l_domain = "domain"

let model_predicted_rho = "adept_model_predicted_rho"
let model_rho_sched = "adept_model_rho_sched"
let model_rho_service = "adept_model_rho_service"
let alive_nodes = "adept_alive_nodes"
let monitor_scrapes_total = "adept_monitor_scrapes_total"
let alerts_series = "ALERTS"

let help_table =
  [
    (messages_total, "Middleware messages sent, by kind and endpoint role.");
    (message_mbit_total, "Middleware payload volume in Mbit, by kind and role.");
    ( agent_request_compute_seconds,
      "Agent request-processing compute time per message (Eq. 3 wreq/w)." );
    ( agent_reply_compute_seconds,
      "Agent reply-aggregation compute time per message (Eq. 3 wrep(d)/w)." );
    ( server_prediction_seconds,
      "Server performance-prediction compute time per request (Eq. 4 wpre/w)." );
    ( server_service_seconds,
      "Server application service time per job (Eq. 5 wapp/w)." );
    (server_backlog_seconds, "Server queue backlog observed at dispatch time.");
    (agent_inflight_requests, "Scheduling requests currently held by the agent.");
    (sched_latency_seconds, "End-to-end scheduling latency per completed request.");
    (response_seconds, "End-to-end response time per completed request.");
    (requests_issued_total, "Requests issued by clients.");
    (requests_completed_total, "Requests whose reply reached the client.");
    (requests_lost_total, "Requests lost to faults, timeouts or abandonment.");
    (node_utilization_ratio, "Busy-time fraction of the run horizon, per node.");
    (run_duration_seconds, "Measured portion of the run (horizon - warmup).");
    ( run_measured_throughput,
      "Completed requests/s over the measured portion (compare Eq. 16 rho)." );
    (controller_replans_total, "Redeployments enacted by the controller.");
    ( controller_suppressed_total,
      "Replan decisions suppressed, by guard reason." );
    (controller_migration_seconds, "Migration cost per enacted redeployment.");
    ( controller_window_throughput,
      "Latest sliding-window throughput sample seen by the controller." );
    ( controller_degraded_samples_total,
      "Controller samples below the degradation threshold." );
    ( rollout_transitions_total,
      "Staged-rollout state-machine transitions, by step." );
    (planner_evaluations_total, "Candidate hierarchies evaluated while planning.");
    (planner_plans_total, "Planning passes, by strategy.");
    (serve_requests_total, "Requests answered by the planning server, by method.");
    (serve_errors_total, "Requests the planning server rejected, by reason.");
    (serve_cache_hits_total, "Plan-fragment cache hits.");
    (serve_cache_misses_total, "Plan-fragment cache misses.");
    ( serve_cache_evictions_total,
      "Plan-fragment cache entries evicted by the capacity bound (LRU)." );
    ( serve_cache_invalidations_total,
      "Plan-fragment cache entries dropped by replan node-death deltas." );
    ( serve_coalesced_total,
      "Requests answered by an identical in-flight computation." );
    (serve_inflight_requests, "Server requests currently being computed.");
    (serve_request_seconds, "Wall-clock seconds per answered request, by method.");
    ( serve_cache_hit_ratio,
      "Plan-fragment cache hits / lookups since server start (gauge)." );
    ( serve_cache_eviction_age_seconds,
      "Age of plan-fragment cache entries at LRU eviction." );
    ( serve_traces_sampled_total,
      "Requests whose trace context was head-sampled into the span store." );
    (serve_scrapes_total, "Wall-clock registry scrapes taken by the server.");
    ( serve_journal_records_total,
      "Flight-recorder records appended by the planning server." );
    ( serve_journal_bytes_total,
      "Flight-recorder bytes appended (record framing included)." );
    ( serve_otlp_exports_total,
      "OTLP documents exported (file rewrites plus TCP pushes)." );
    ( runtime_gc_pause_seconds,
      "OCaml runtime GC pause/phase durations from Runtime_events, by phase." );
    ( runtime_domain_busy_ratio,
      "Fraction of the last scrape interval each worker domain spent running tasks." );
    ( runtime_events_total,
      "Runtime_events records consumed from the runtime tracing ring." );
    ( model_predicted_rho,
      "Eq. 16 throughput predicted for the currently deployed tree." );
    (model_rho_sched, "Scheduling-side capacity of Eq. 16 (Eqs. 6-11).");
    (model_rho_service, "Service-side capacity of Eq. 16 (Eqs. 12-14).");
    (alive_nodes, "Deployed nodes currently alive (not crashed).");
    (monitor_scrapes_total, "Registry scrapes taken by the monitor.");
    (alerts_series, "Alert-rule state transitions (1 = entered, 0 = left).");
  ]

let help name = match List.assoc_opt name help_table with Some h -> h | None -> ""
