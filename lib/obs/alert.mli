(** Alert evaluation: a Prometheus-style state machine per rule.

    Each {!eval} tick evaluates every rule's condition against the
    backing {!Timeseries} store.  A rule is [Inactive] until its
    condition first holds, [Pending] while it has held for less than
    the rule's [for_duration], and [Firing] once it has held long
    enough; the condition going false (or becoming unevaluable) from
    [Firing] resolves the alert, from [Pending] it silently resets.

    Every [Pending]/[Firing]/resolved edge is appended to a
    chronological transition log — the exported alert timeline — and,
    when a {!Tracer} is attached, mirrored as [alert-pending] /
    [alert-fired] / [alert-resolved] events so alert history lands in
    the same stream as crashes and replans. *)

type state = Inactive | Pending of float | Firing of float
(** [Pending since] / [Firing since] carry the transition instant. *)

type edge = To_pending | To_firing | To_resolved

type transition = {
  at : float;
  rule : Rule.t;
  edge : edge;
  value : float;  (** lhs at the transition; [nan] if unevaluable *)
}

type t

val create :
  ?tracer:Tracer.t -> timeseries:Timeseries.t -> Rule.t list ->
  (t, string) result
(** Validates the rule set: duplicate rule names are an error, as is a
    rule whose {!Rule.max_window} exceeds the store's retention (its
    windows could silently never fill). *)

val rules : t -> Rule.t list

val timeseries : t -> Timeseries.t

val eval : t -> now:float -> unit
(** Advance every rule's state machine to simulated time [now].
    Call after each {!Timeseries.scrape}. *)

val state : t -> string -> state option
(** Current state of the named rule. *)

val states : t -> (Rule.t * state) list
(** All rules with their current state, in rule order. *)

val firing_names : t -> string list
(** Names of currently firing rules, in rule order — the controller's
    replan-record breadcrumb. *)

val transitions : t -> transition list
(** Chronological transition log (the alert timeline). *)

val firing_intervals : t -> (Rule.t * float * float option) list
(** Closed and still-open [(rule, fired_at, resolved_at)] intervals in
    chronological order of firing — dashboard alert bands. *)
