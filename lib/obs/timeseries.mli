(** Bounded time series scraped from a {!Registry}.

    A store is declared over a fixed set of {!Rule.selector}s.  Each
    {!scrape} reduces every selector against the registry's current
    state — summing matched counter/gauge series, merging matched
    histogram snapshots — and pushes one [(time, value)] sample per
    selector into a retention-pruned {!Ring}.  Memory is therefore
    O(selectors x samples-per-window), independent of run length.

    {!eval} interprets a {!Rule.expr} against the stored samples at a
    given instant and returns [None] when the expression needs history
    the store does not (yet) have — a missing family, an empty window,
    a window reaching past retention.  Alert rules treat [None] as
    "condition not met", which gives fresh runs a natural warmup grace
    period instead of spurious fires. *)

type t

val create : ?capacity:int -> retention:float -> Rule.selector list -> t
(** Selectors are deduplicated by {!Rule.selector_key}.  [capacity] is
    the initial per-selector ring allocation.
    @raise Invalid_argument if [retention <= 0]. *)

val retention : t -> float

val selectors : t -> Rule.selector list
(** The deduplicated selector set, in first-seen order. *)

val scrapes : t -> int
(** Number of {!scrape} calls so far. *)

val scrape : t -> registry:Registry.t -> now:float -> unit
(** Sample every selector at simulated time [now].  A selector whose
    family is missing, matches no series, or reduces over zero
    histogram observations records no sample this scrape (gaps, not
    zeros).
    @raise Invalid_argument if [now] decreases between scrapes. *)

val last : t -> Rule.selector -> (float * float) option
(** Most recent retained [(time, value)] sample for a selector. *)

val points : t -> Rule.selector -> (float * float) list
(** All retained samples, oldest first (for dashboards). *)

val scrape_times : t -> float list
(** Retained scrape instants, oldest first. *)

val eval : t -> now:float -> Rule.expr -> float option
(** Evaluate an expression at [now].  [Rate]/[Delta]/[Window_mean] use
    the two-point method over the trailing window: the change between
    the last sample at-or-before [now] and the last sample at-or-before
    [now - w] ([Rate] divides by the actual sample spacing).  [None]
    when any needed sample is absent, or on division by zero. *)
