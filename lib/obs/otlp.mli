(** OTLP/JSON export without any OpenTelemetry dependency.

    Renders {!Request_trace} exemplars and {!Registry} snapshots as one
    OTLP/JSON document — [resourceSpans] (resource -> scope -> spans)
    plus [resourceMetrics] (resource -> scope -> metrics) — following
    the OTLP 1.x JSON mapping: trace ids as 32 lowercase hex chars,
    span ids as 16, uint64 nanosecond timestamps as strings, counters
    as cumulative monotonic [sum]s, gauges as [gauge], histograms as
    explicit-bounds [histogram] points carrying the worst-latency
    exemplar's trace id when {!Histogram.record_ex} attached one.

    Deterministic like every other exporter here: identical inputs
    produce byte-identical documents. *)

val trace_id_hex : int -> string
(** A trace id as OTLP's 32 lowercase hex chars. *)

val span_id_hex : trace:int -> span:int -> string
(** A span id as OTLP's 16 lowercase hex chars, unique across the
    export: packs the trace id with the per-trace span index. *)

val resource_spans :
  ?resource:(string * string) list ->
  ?conn_of:(int -> int option) ->
  Request_trace.trace list ->
  string
(** One [resourceSpans] element covering every span of every given
    trace.  [resource] becomes string resource attributes; [conn_of]
    maps a trace id to the server connection that carried it, attached
    as an [adept.conn.id] span attribute when known. *)

val resource_metrics :
  ?resource:(string * string) list -> at:float -> Registry.family list -> string
(** One [resourceMetrics] element over a registry snapshot, with every
    data point stamped [at] (seconds since the epoch). *)

val document :
  ?resource:(string * string) list ->
  ?conn_of:(int -> int option) ->
  at:float ->
  exemplars:Request_trace.trace list ->
  Registry.family list ->
  string
(** The full export: [{"resourceSpans":[...],"resourceMetrics":[...]}]
    with a trailing newline — what [adept serve --otlp] pushes on every
    scrape and [adept query trace --otlp] dumps on demand. *)
