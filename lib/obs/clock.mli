(** One [now] provider for every time-consuming observability layer.

    {!Timeseries}, {!Rule}, {!Alert} and {!Request_trace} all take
    explicit [now] floats, which makes them time-source agnostic; a
    clock is the thing that produces those floats.  Two sources cover
    every use:

    - a {e manual} clock, advanced by the caller — simulated time (the
      simulator's event loop) and deterministic tests;
    - a monotonic {e source} clock wrapping an external reader (e.g.
      [Unix.gettimeofday]) — wall-clock serving.  Reads are clamped to
      be non-decreasing, so a stepped system clock can never violate
      the [Timeseries.scrape] monotonicity contract.

    [Adept_obs] deliberately has no [unix] dependency: the wall reader
    is injected by the serving layer ({!source}), not baked in here. *)

type t

val manual : ?start:float -> unit -> t
(** A clock that only moves when told to ([start] defaults to [0.]). *)

val source : (unit -> float) -> t
(** Wrap an external time reader.  The first {!now} fixes the baseline;
    later reads never go backwards (clamped, not raised). *)

val now : t -> float
(** Current time.  Manual clocks return the set instant; source clocks
    read and clamp. *)

val advance : t -> float -> unit
(** Move a manual clock forward by a non-negative delta.
    @raise Invalid_argument on a source clock or a negative delta. *)

val set : t -> float -> unit
(** Jump a manual clock to an absolute, non-decreasing instant.
    @raise Invalid_argument on a source clock or a decreasing instant. *)

val is_manual : t -> bool

val raw : t -> unit -> float
(** The clock's underlying reading function, without the monotonic
    clamp — safe to hand to other domains (no shared mutable state is
    touched by calling it).  Worker-side profiling uses this; the
    event-loop side keeps using {!now}. *)
