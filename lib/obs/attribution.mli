(** Cross-trace bottleneck attribution: rank hierarchy elements by their
    time on sampled critical paths and set the measured top element
    against the model's predicted saturating element (Eqs. 6–14 via
    {!Adept.Evaluate.bottleneck_element}).

    This is the per-request counterpart of {!Report}: where the report
    compares aggregate means against Eqs. 1–5, attribution compares
    {e where the time went} against {e which element the model says
    saturates} — the cross-validation of analytic bottleneck predictions
    against per-request traces that the tentpole targets. *)

open Adept_hierarchy

type row = {
  at_node : int;  (** Platform node id; -1 = client machine / wire. *)
  at_name : string;  (** Node name, or ["client/net"]. *)
  at_role : string;  (** ["agent"], ["server"] or ["client/net"]. *)
  at_seconds : float;  (** Critical-path seconds across sampled traces. *)
  at_share : float;  (** Fraction of all critical-path time. *)
  at_recv : float;
  at_send : float;
  at_compute : float;
  at_wire : float;
  at_utilization : float option;  (** End-of-run port utilization. *)
}

type t = {
  rows : row list;  (** Ranked by [at_seconds] descending. *)
  traces : int;  (** Finished sampled traces aggregated. *)
  requests : int;  (** Trace ids assigned (sampled or not). *)
  dropped : int;  (** Reservoir/overflow drops (see {!Request_trace}). *)
  dropped_spans : int;
  measured : row option;  (** Top platform element (node id >= 0). *)
  predicted : Adept.Evaluate.bottleneck_element option;
}

val build :
  store:Request_trace.t ->
  tree:Tree.t ->
  ?utilization:(int * float) list ->
  ?predicted:Adept.Evaluate.bottleneck_element ->
  unit ->
  t
(** Aggregate the store's per-element critical-path totals into ranked
    rows.  [tree] supplies names and roles; [utilization] attaches
    end-of-run port utilizations by node id; [predicted] attaches the
    model's saturating element for the verdict. *)

val matches : t -> bool option
(** Does the measurement confirm the model?  [None] without a prediction
    or a measurement.  When the service side binds, any server as
    measured top element confirms it (under the Eqs. 6–9 split all
    servers saturate together); when the scheduling side binds, the
    measured top element must be the predicted node. *)

val render : t -> string
(** The attribution table plus measured/predicted bottleneck lines, the
    verdict, and the dropped counters. *)

val heat_dot : ?name:string -> t -> tree:Tree.t -> string
(** The hierarchy as a DOT digraph with each element filled by its
    critical-path share (white → red) and labeled with share and
    utilization — deterministic, golden-pinned. *)
