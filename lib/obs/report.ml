module Evaluate = Adept.Evaluate

type row = {
  r_node : int;
  r_level : int;
  r_role : [ `Agent | `Server ];
  r_component : string;
  r_metric : string;
  r_predicted : float;
  r_measured : float option;
  r_samples : int;
  r_deviation : float option;
}

type t = {
  rows : row list;
  predicted_rho : float;
  measured_rho : float option;
  rho_deviation : float option;
  max_deviation : float option;
}

(* Mean and count of the node's series in the named histogram family;
   None if the family or series is missing or empty. *)
let measured_mean registry ~metric ~node =
  match Registry.find registry metric with
  | None -> None
  | Some family ->
      let node_value = string_of_int node in
      List.find_map
        (fun (labels, value) ->
          match (Label.find labels Semconv.l_node, value) with
          | Some v, Registry.Histogram snap when String.equal v node_value -> (
              match Histogram.mean snap with
              | Some m -> Some (m, Histogram.count snap)
              | None -> None)
          | _ -> None)
        family.Registry.series

let deviation ~predicted ~measured =
  if predicted > 0.0 then Some (Float.abs (measured -. predicted) /. predicted)
  else if measured = 0.0 then Some 0.0
  else None

let row_of_component registry ~node ~level ~role ~component ~metric ~predicted =
  let measured, samples =
    match measured_mean registry ~metric ~node with
    | Some (m, n) -> (Some m, n)
    | None -> (None, 0)
  in
  {
    r_node = node;
    r_level = level;
    r_role = role;
    r_component = component;
    r_metric = metric;
    r_predicted = predicted;
    r_measured = measured;
    r_samples = samples;
    r_deviation =
      Option.bind measured (fun m -> deviation ~predicted ~measured:m);
  }

let build ~registry ~params ~platform ~wapp ~tree =
  let costs = Evaluate.element_costs params ~wapp tree in
  let rows =
    List.concat_map
      (fun (ec : Evaluate.element_cost) ->
        let node = Adept_platform.Node.id ec.ec_node in
        let mk = row_of_component registry ~node ~level:ec.ec_level in
        match ec.ec_role with
        | `Agent ->
            [
              mk ~role:`Agent ~component:"wreq/w"
                ~metric:Semconv.agent_request_compute_seconds
                ~predicted:ec.ec_wreq_s;
              mk ~role:`Agent ~component:"wrep/w"
                ~metric:Semconv.agent_reply_compute_seconds
                ~predicted:ec.ec_wrep_s;
            ]
        | `Server ->
            [
              mk ~role:`Server ~component:"wpre/w"
                ~metric:Semconv.server_prediction_seconds
                ~predicted:ec.ec_wpre_s;
              mk ~role:`Server ~component:"wapp/w"
                ~metric:Semconv.server_service_seconds
                ~predicted:ec.ec_service_s;
            ])
      costs
  in
  let predicted_rho = Evaluate.rho_hetero params ~platform ~wapp tree in
  let measured_rho =
    match Registry.find registry Semconv.run_measured_throughput with
    | Some { Registry.series = (_, Registry.Gauge v) :: _; _ } -> Some v
    | _ -> None
  in
  let rho_deviation =
    Option.bind measured_rho (fun m ->
        deviation ~predicted:predicted_rho ~measured:m)
  in
  let max_deviation =
    List.fold_left
      (fun acc r ->
        match (acc, r.r_deviation) with
        | None, d -> d
        | d, None -> d
        | Some a, Some d -> Some (Float.max a d))
      rho_deviation rows
  in
  { rows; predicted_rho; measured_rho; rho_deviation; max_deviation }

let max_deviation t = t.max_deviation

let role_name = function `Agent -> "agent" | `Server -> "server"

let render t =
  let buf = Buffer.create 1024 in
  let pct = function
    | None -> "      -"
    | Some d -> Printf.sprintf "%6.2f%%" (100.0 *. d)
  in
  let opt = function
    | None -> "        -"
    | Some v -> Printf.sprintf "%9.6f" v
  in
  Buffer.add_string buf
    "node  lvl  role    component  predicted  measured   samples  deviation\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%4d  %3d  %-6s  %-9s  %9.6f  %s  %7d  %s\n" r.r_node
           r.r_level (role_name r.r_role) r.r_component r.r_predicted
           (opt r.r_measured) r.r_samples (pct r.r_deviation)))
    t.rows;
  Buffer.add_string buf
    (Printf.sprintf "throughput (Eq. 16): predicted %.4f req/s, measured %s"
       t.predicted_rho
       (match t.measured_rho with
       | None -> "-"
       | Some m -> Printf.sprintf "%.4f req/s" m));
  Buffer.add_string buf
    (match t.rho_deviation with
    | None -> "\n"
    | Some d -> Printf.sprintf " (%.2f%% off)\n" (100.0 *. d));
  Buffer.add_string buf
    (match t.max_deviation with
    | None -> "max deviation: - (nothing measured)\n"
    | Some d -> Printf.sprintf "max deviation: %.2f%%\n" (100.0 *. d));
  Buffer.contents buf
