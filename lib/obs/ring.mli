(** A pruned ring buffer of [(time, value)] samples.

    Times must be pushed in non-decreasing order (discrete-event
    completions are).  On every push, samples older than
    [latest - retention] are dropped from the front, so memory is
    bounded by the number of samples inside the retention window —
    independent of run length.  Queries over the retained window are
    O(log n) thanks to the monotone times. *)

type t

val create : ?capacity:int -> retention:float -> unit -> t
(** [retention] may be [infinity] (never prune).
    @raise Invalid_argument if [retention < 0]. *)

val retention : t -> float

val push : t -> time:float -> float -> unit
(** @raise Invalid_argument if [time] decreases. *)

val length : t -> int

val capacity : t -> int
(** Current allocated slots (memory proxy for tests). *)

val oldest_time : t -> float option
(** Time of the oldest {e retained} sample. *)

val latest_time : t -> float option

val find_at_or_before : t -> time:float -> (float * float) option
(** Latest retained sample [(time', value)] with [time' <= time], by
    binary search.  [None] when every such sample has been pruned (or
    none was ever pushed) — callers treat that as "insufficient
    history" rather than an error. *)

val count_in : t -> t0:float -> t1:float -> int
(** Number of retained samples with [t0 <= time < t1] (half-open, the
    usual window convention), by binary search.
    @raise Invalid_argument if [t0] predates the retained window
    (i.e. samples that could have matched were pruned) — callers must
    keep their query windows within [retention]. *)

val iter : t -> (time:float -> value:float -> unit) -> unit
(** Oldest to newest. *)

val fold : t -> init:'a -> f:('a -> time:float -> value:float -> 'a) -> 'a
