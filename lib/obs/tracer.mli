(** A lightweight span/event tracer.

    Events are point-in-time breadcrumbs (node crash, replan
    suppressed); spans are intervals with a start and an optional end
    (a migration, a planning pass).  The buffer is bounded: past
    [max_events] items, new ones are dropped and counted, so a tracer
    attached to a long run cannot grow without bound. *)

type t

type span
(** Handle returned by [span_start], closed by [span_end]. *)

type item =
  | Event of { at : float; name : string; labels : Label.t }
  | Span of {
      name : string;
      labels : Label.t;
      start_at : float;
      end_at : float option;  (** [None] while still open *)
    }

val create : ?max_items:int -> unit -> t
(** Default [max_items] is 10_000. *)

val event : t -> at:float -> ?labels:Label.t -> string -> unit

val span_start : t -> at:float -> ?labels:Label.t -> string -> span

val span_end : t -> at:float -> span -> unit
(** Idempotent: closing a closed span keeps the first end time. *)

val items : t -> item list
(** In recording order (events by time, spans by start time). *)

val length : t -> int

val dropped : t -> int
(** Items discarded after the buffer filled. *)
