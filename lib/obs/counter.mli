(** Monotonically increasing counters. *)

type t

val create : unit -> t

val inc : ?by:float -> t -> unit
(** Default increment 1.  @raise Invalid_argument on a negative
    increment (counters are monotone). *)

val value : t -> float
