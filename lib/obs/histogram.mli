(** Log-linear-bucket histograms with bounded memory and a provable
    relative-error bound on quantile estimates.

    This is the DDSketch construction: for a relative accuracy
    [alpha], let [gamma = (1 + alpha) / (1 - alpha)].  Bucket [i]
    covers the interval [(gamma^(i-1), gamma^i]], so any value [v] in
    the bucket satisfies [|est - v| <= alpha * v] when the estimate is
    the bucket midpoint [2 * gamma^i / (1 + gamma)].

    Values are clamped to [[min_value, max_value]]; values strictly
    below [min_value] (including zero and negatives) fall into a
    dedicated underflow bucket and are estimated as [min_value].  With
    the defaults ([alpha = 0.01], range [1e-9 .. 1e9]), at most ~2100
    buckets can ever exist, so memory is O(1) in the number of
    recorded values.

    Two histograms with the same [alpha] can be merged; merging the
    snapshots of shards is equivalent to recording the union of their
    streams into one histogram (associative and commutative). *)

type t

val create : ?alpha:float -> ?min_value:float -> ?max_value:float -> unit -> t
(** Defaults: [alpha = 0.01], [min_value = 1e-9], [max_value = 1e9].
    @raise Invalid_argument unless [0 < alpha < 1] and
    [0 < min_value < max_value]. *)

val record : t -> float -> unit
(** O(1).  NaN is ignored. *)

val record_n : t -> float -> int -> unit
(** [record_n t v n] records [v] [n] times in O(1). *)

val record_ex : t -> float -> trace_id:int -> unit
(** [record] plus exemplar attachment: the histogram keeps the single
    largest [(value, trace_id)] pair it has seen, so an OTLP export can
    point at the trace behind the worst latency.  NaN is ignored. *)

(** {1 Snapshots} *)

type snapshot
(** An immutable, mergeable summary: sorted bucket counts plus exact
    running [count], [sum], [min] and [max]. *)

val snapshot : t -> snapshot

val empty_snapshot : ?alpha:float -> ?min_value:float -> ?max_value:float -> unit -> snapshot

val merge : snapshot -> snapshot -> snapshot
(** @raise Invalid_argument if the two snapshots were built with
    different [alpha] (their buckets would not line up). *)

val count : snapshot -> int

val sum : snapshot -> float

val mean : snapshot -> float option

val min_recorded : snapshot -> float option

val max_recorded : snapshot -> float option

val exemplar : snapshot -> (float * int) option
(** The largest [(value, trace_id)] recorded via {!record_ex}, if any.
    [merge] keeps the larger of the two sides' exemplars. *)

val quantile : snapshot -> float -> float option
(** [quantile s q] for [q] in [[0, 100]]: an estimate [est] of the
    [q]-th percentile with [|est - exact| <= alpha * exact] for values
    inside the clamp range.  [None] on an empty snapshot.
    @raise Invalid_argument if [q] is outside [[0, 100]]. *)

val alpha : snapshot -> float

val num_buckets : snapshot -> int
(** Number of distinct occupied buckets (memory proxy). *)

val cumulative_buckets : snapshot -> (float * int) list
(** Prometheus-style cumulative buckets: [(upper_bound, cumulative
    count)] pairs in increasing bound order over the {e occupied}
    buckets, ending with [(infinity, count)].  Upper bound of bucket
    [i] is [gamma^i]; the underflow bucket reports bound
    [min_value]. *)
