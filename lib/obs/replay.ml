(* Retrospective query over a flight-recorder journal: rebuild the
   observability exports for a past window, bit-identical to what the
   live pipeline produced.  The trick is that the journal records the
   exact inputs the live exporters saw — finished traces in finish
   order, alert transitions, rendered access lines — so replay just
   re-runs the same deterministic code over the same data. *)

module Rt = Request_trace

type cut =
  | To_end  (* everything recovered *)
  | Until of float  (* records with timestamp <= t *)
  | At_dump of int  (* the state at the Nth (1-based; 0 = last) dump *)

type t = {
  rp_meta : Journal.record option;  (* the Meta record, if present *)
  rp_chrome : string;
  rp_alerts : string;
  rp_access : string;
  rp_last_scrape : Journal.scrape option;
  rp_seen : int;
  rp_sampled : int;
  rp_finished : int;
  rp_retained : int;
  rp_dropped : int;
  rp_dropped_spans : int;
  rp_alert_edges : int;
  rp_firing : string list;  (* alerts firing at the cut, rule order *)
  rp_window : (float * float) option;  (* first/last record timestamps *)
}

let record_at : Journal.record -> float = function
  | Journal.Meta m -> m.m_at
  | Journal.Begin_request b -> b.b_at
  | Journal.Finish f -> f.f_at
  | Journal.Scrape s -> s.j_at
  | Journal.Alert_edge a -> a.a_at
  | Journal.Access x -> x.x_at
  | Journal.Dump_marker d -> d.d_at

(* The record prefix a cut selects.  [At_dump] reproduces a live dump:
   the live renderer ran on the event loop after the dump request's
   Begin_request was journalled but before its Finish, so the prefix
   ends just before the chosen marker. *)
let select cut records =
  match cut with
  | To_end -> records
  | Until t -> List.filter (fun r -> record_at r <= t) records
  | At_dump n ->
      let markers =
        List.length
          (List.filter (function Journal.Dump_marker _ -> true | _ -> false) records)
      in
      let target = if n <= 0 then markers else n in
      let seen = ref 0 in
      let rec take = function
        | [] -> []
        | Journal.Dump_marker _ :: rest ->
            incr seen;
            if !seen = target then [] else take rest
        | r :: rest -> r :: take rest
      in
      take records

let run ?(cut = To_end) records =
  let records = select cut records in
  let meta =
    List.find_opt (function Journal.Meta _ -> true | _ -> false) records
  in
  let max_traces, max_spans =
    match meta with
    | Some (Journal.Meta m) -> (m.m_max_traces, m.m_max_spans)
    | _ -> (32, 4096)
  in
  (* Rebuild the trace store: re-admitting finished traces in their
     original order converges to the live reservoir (same slowest-first
     insert, same eviction count). *)
  let store = Rt.create ~sample_rate:1.0 ~max_traces ~max_spans () in
  let seen = ref 0 and sampled = ref 0 in
  let overflow_finishes = ref 0 and dropped_spans = ref 0 in
  let alert_entries = ref [] and alert_states = ref [] in
  let access = Buffer.create 1024 in
  let last_scrape = ref None in
  let t0 = ref nan and t1 = ref nan in
  List.iter
    (fun r ->
      let at = record_at r in
      if Float.is_nan !t0 then t0 := at;
      t1 := at;
      match r with
      | Journal.Meta _ | Journal.Dump_marker _ -> ()
      | Journal.Begin_request b ->
          incr seen;
          if b.b_sampled then incr sampled
      | Journal.Finish f -> (
          dropped_spans := f.f_dropped_spans;
          match f.f_spans with
          | None -> incr overflow_finishes
          | Some spans ->
              Rt.restore store
                {
                  Rt.tr_id = f.f_trace;
                  tr_issued = f.f_issued;
                  tr_finished = f.f_at;
                  tr_spans = spans;
                })
      | Journal.Scrape s -> last_scrape := Some s
      | Journal.Alert_edge a ->
          alert_entries :=
            (a.a_at, a.a_name, a.a_severity, a.a_state, a.a_value)
            :: !alert_entries;
          alert_states :=
            (a.a_name, a.a_state)
            :: List.remove_assoc a.a_name !alert_states
      | Journal.Access x ->
          Buffer.add_string access x.x_line;
          Buffer.add_char access '\n')
    records;
  let finished = Rt.finished store + !overflow_finishes in
  let dropped = Rt.dropped store + !overflow_finishes in
  let chrome =
    Export.chrome_trace_spans ~exemplars:(Rt.exemplars store) ~requests:!seen
      ~sampled:!sampled ~finished ~dropped ~dropped_spans:!dropped_spans
  in
  let firing =
    List.filter_map
      (fun (name, state) -> if state = "firing" then Some name else None)
      (List.rev !alert_states)
  in
  {
    rp_meta = meta;
    rp_chrome = chrome;
    rp_alerts = Export.alert_timeline_entries (List.rev !alert_entries);
    rp_access = Buffer.contents access;
    rp_last_scrape = !last_scrape;
    rp_seen = !seen;
    rp_sampled = !sampled;
    rp_finished = finished;
    rp_retained = List.length (Rt.exemplars store);
    rp_dropped = dropped;
    rp_dropped_spans = !dropped_spans;
    rp_alert_edges = List.length !alert_entries;
    rp_firing = firing;
    rp_window = (if Float.is_nan !t0 then None else Some (!t0, !t1));
  }

(* An [adept top]-style text summary of the replayed window, fed by the
   last journalled scrape before the cut. *)
let summary ?(stats : Journal.read_stats option) t =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  (match t.rp_window with
  | Some (t0, t1) ->
      line "window   %s .. %s (%.3f s)" (Export.float_repr t0)
        (Export.float_repr t1) (t1 -. t0)
  | None -> line "window   (empty journal window)");
  (match stats with
  | Some s ->
      line "journal  %d segment%s, %d records%s" s.Journal.r_segments
        (if s.Journal.r_segments = 1 then "" else "s")
        s.Journal.r_records
        (if s.Journal.r_truncated > 0 then
           Printf.sprintf ", %d torn tail%s (%d bytes lost)"
             s.Journal.r_truncated
             (if s.Journal.r_truncated = 1 then "" else "s")
             s.Journal.r_bytes_lost
         else "")
  | None -> ());
  (match t.rp_last_scrape with
  | Some s ->
      line "uptime   %.1f s (at last scrape)" s.Journal.j_uptime;
      line "requests plan=%d replan=%d observe=%d stats=%d errors=%d coalesced=%d"
        s.Journal.j_plans s.Journal.j_replans s.Journal.j_observes
        s.Journal.j_stats s.Journal.j_errors s.Journal.j_coalesced;
      line "latency  p50=%.3f ms  p99=%.3f ms  gc pause p99=%.3f ms"
        (s.Journal.j_latency_p50 *. 1e3)
        (s.Journal.j_latency_p99 *. 1e3)
        (s.Journal.j_gc_pause_p99 *. 1e3);
      line "cache    hits=%d misses=%d hit-ratio=%.1f%% evictions=%d invalidations=%d"
        s.Journal.j_cache_hits s.Journal.j_cache_misses
        (s.Journal.j_hit_ratio *. 100.)
        s.Journal.j_cache_evictions s.Journal.j_cache_invalidations;
      if s.Journal.j_busy <> [] then
        line "domains  %s"
          (String.concat " "
             (List.mapi
                (fun i b -> Printf.sprintf "d%d=%.0f%%" i (b *. 100.))
                s.Journal.j_busy))
  | None -> line "requests (no scrape recorded in window)");
  line "traces   seen=%d sampled=%d finished=%d retained=%d dropped=%d"
    t.rp_seen t.rp_sampled t.rp_finished t.rp_retained t.rp_dropped;
  line "alerts   %d transition%s%s" t.rp_alert_edges
    (if t.rp_alert_edges = 1 then "" else "s")
    (match t.rp_firing with
    | [] -> ", none firing at cut"
    | names -> Printf.sprintf ", firing at cut: %s" (String.concat " " names));
  Buffer.contents buf
