(** Exporters: render a registry snapshot in standard formats.

    All three renderers are deterministic — families sorted by name,
    series by label set, histogram buckets by bound, floats formatted
    with a stable scheme — so identical runs export byte-identical
    documents (relied on by the golden tests). *)

val float_repr : float -> string
(** Stable float rendering: integers as ["42"], everything else with
    [%.12g]; [infinity] as ["+Inf"] (Prometheus spelling). *)

val prometheus : Registry.family list -> string
(** Prometheus text exposition format (version 0.0.4): [# HELP] /
    [# TYPE] headers, histograms as cumulative [_bucket{le="..."}]
    series plus [_sum] and [_count]. *)

val jsonl : Registry.family list -> string
(** One JSON object per line per series.  Counters and gauges carry
    ["value"]; histograms carry ["count"], ["sum"], ["min"], ["max"]
    and ["buckets"] (cumulative [{"le": ..., "count": ...}]). *)

val csv : Registry.family list -> Adept_util.Csv.t
(** Flat table [metric,labels,stat,value]: counters/gauges get one
    [value] row; histograms get [count], [sum], [mean], [p50], [p95],
    [p99] and [max] rows. *)

val tracer_jsonl : Tracer.t -> string
(** One JSON object per trace item: events as
    [{"type":"event","at":...,"name":...,"labels":{...}}], spans with
    ["start"] / ["end"] (null while open).  If the bounded buffer
    overflowed, the first line is [{"type":"meta","dropped":N}] so the
    truncation is visible in the export. *)

val alert_timeline_entries :
  (float * string * string * string * float) list -> string
(** The alert-timeline line emitter on raw [(at, alert, severity,
    state, value)] tuples — shared by {!alert_timeline_jsonl} and the
    flight-recorder replay, which feeds it journalled transitions, so
    live and replayed timelines are byte-identical. *)

val transition_entry : Alert.transition -> float * string * string * string * float
(** A transition as an {!alert_timeline_entries} tuple (state rendered
    as ["pending"] / ["firing"] / ["resolved"]). *)

val alert_timeline_jsonl : Alert.t -> string
(** The chronological alert transition log, one JSON object per line:
    [{"at":...,"alert":...,"severity":...,"state":"pending"|"firing"|
    "resolved","value":...}].  Deterministic — identical runs export
    byte-identical timelines (golden-pinned). *)

val alerts_prom : Alert.t -> string
(** The transition log as Prometheus [ALERTS]-style samples with
    millisecond timestamps: value [1] on entering a state, [0] on
    leaving [firing], labelled [alertname] / [alertstate] /
    [severity]. *)

val chrome_trace_spans :
  exemplars:Request_trace.trace list ->
  requests:int ->
  sampled:int ->
  finished:int ->
  dropped:int ->
  dropped_spans:int ->
  string
(** {!chrome_trace} on explicit parts: the exemplar list (slowest
    first) and the [otherData] counters.  The flight-recorder replay
    renders through this with reconstructed parts to reproduce the live
    document byte-for-byte. *)

val chrome_trace : Request_trace.t -> string
(** The store's exemplar traces as Chrome trace-event JSON
    (Perfetto-loadable): one process per retained request, one thread
    per element ([tid 0] = client machine / wire), one complete ["X"]
    event per span with microsecond timestamps, tagged with its parent
    and critical-path membership; [otherData] carries the request,
    sample and dropped counters.  Deterministic — identical stores
    export byte-identical documents (golden-pinned). *)
