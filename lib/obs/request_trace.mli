(** Request-scoped causal traces of the simulated middleware.

    Every client request is assigned a trace id; on sampled requests the
    middleware records the full Figure-1 causal chain — request descent
    through the agents, SeD prediction, aggregation ascent, the client's
    service submission, server compute and response — as parent-linked
    timed spans.  Spans are recorded {e at completion}, each linking to
    its causal predecessor, so the chain walked backward from the last
    span of a fault-free request is the request's critical path, and the
    segment durations tile: each span starts exactly where its parent
    stopped, and together they cover the whole end-to-end response time.

    Memory stays O(samples): head sampling is a deterministic hash of the
    trace id (same seed, same sampled set — no RNG is consulted), and
    only the slowest [max_traces] finished traces are retained as
    exemplars in a reservoir; evictions are counted in {!dropped} rather
    than silently discarded.  Per-element critical-path aggregates are
    accumulated at finish time for every sampled trace, retained or not.

    Recording is observation-only: no events are scheduled and no random
    state is drawn, so simulation results are identical with the store
    attached, sampled at 0, or absent. *)

type message =
  | Submit  (** Client → root scheduling request. *)
  | Forward  (** Agent → child request descent. *)
  | Reply  (** Child → agent prediction ascent. *)
  | Answer  (** Root → client scheduling answer. *)
  | Service_request  (** Client → selected server. *)
  | Service_reply  (** Server → client response. *)

type step =
  | Wreq  (** Agent request processing, Eq. 3. *)
  | Wrep  (** Agent reply aggregation [Wrep(d)], Eq. 3. *)
  | Wpre  (** Server prediction, Eq. 4. *)
  | Service  (** Server application execution, Eq. 5. *)

(** Stages of one planning-server request (the wall-clock serving path,
    in causal order).  [Shard_plan] spans carry the shard index in
    [sp_node]; every other stage uses node -1 (the serving process). *)
type stage =
  | Frame_read  (** Socket read until the frame completed. *)
  | Parse  (** JSON decode of the request envelope. *)
  | Cache_lookup  (** Plan-fragment cache probe. *)
  | Shard_plan  (** One per-shard hint computation on a worker domain. *)
  | Replay  (** Sequential bisection replay over the memoized probes. *)
  | Render_reply  (** Formatting the reply text. *)
  | Write_reply  (** Frame write back to the client. *)

type kind =
  | Send of message  (** Sender-side port time (queue wait included). *)
  | Wire of message  (** Link latency between the two ports. *)
  | Recv of message  (** Receiver-side port time (queue wait included). *)
  | Compute of step  (** A booked or charged computation. *)
  | Stage of stage  (** A planning-server request stage (wall clock). *)

val kind_name : kind -> string
(** Stable [send.submit] / [compute.wrep] style names (used by the
    exporters and goldens). *)

val message_of_kind : kind -> message option

val kind_code : kind -> int
(** A stable one-byte wire code for a kind (the flight recorder persists
    spans).  Inverse of {!kind_of_code}. *)

val kind_of_code : int -> kind option
(** Decode a {!kind_code}; [None] on bytes no current kind produces. *)

type span = {
  sp_id : int;  (** Dense per-trace index, in completion order. *)
  sp_parent : int;  (** Causal predecessor's [sp_id]; -1 for chain heads. *)
  sp_kind : kind;
  sp_node : int;  (** Platform node id; -1 for the client machine/wire. *)
  sp_start : float;
  sp_stop : float;
}

type trace = {
  tr_id : int;
  tr_issued : float;
  tr_finished : float;
  tr_spans : span array;  (** Completion order; [sp_id] indexes it. *)
}

val duration : trace -> float

val critical_path : trace -> span list
(** The parent chain walked back from the last-completed span, returned
    head-first.  On fault-free traces this is the request's critical
    path and the segments tile the whole [tr_issued .. tr_finished]
    interval; under fault injection chains can break (a patience-timer
    finalisation has no causal reply) and the walk covers the surviving
    suffix. *)

type t

val create : ?sample_rate:float -> ?max_traces:int -> ?max_spans:int -> unit -> t
(** [sample_rate] (default 1.0, clamped to [0, 1]) is the fraction of
    trace ids sampled, decided by a deterministic hash of the id;
    [max_traces] (default 32, >= 1) bounds the slowest-N exemplar
    reservoir; [max_spans] (default 4096, >= 1) caps spans per trace —
    an overflowing trace stops recording and counts as dropped. *)

val sample_rate : t -> float

val would_sample : t -> int -> bool
(** The head-sampling decision for a trace id — pure and deterministic:
    a hash of the id compared against [sample_rate]. *)

(** {1 Recording (used by the simulator)} *)

type handle
(** One in-flight sampled request. *)

val begin_request : t -> now:float -> handle option
(** Assign the next trace id (ids advance for unsampled requests too, so
    the sampled id set is independent of the rate) and open a handle if
    the id is sampled. *)

val begin_with_id : t -> id:int -> now:float -> handle option
(** Open a handle for an externally assigned trace id — the serving
    path, where the id travels inside the request envelope.  Sampling
    is the same deterministic hash as {!begin_request}; the internal id
    sequence does not advance. *)

val trace_id : handle -> int

val add_span :
  t ->
  handle ->
  parent:int ->
  kind:kind ->
  node:int ->
  start:float ->
  stop:float ->
  int
(** Record a completed span and return its id (the parent for the next
    chain link).  Past [max_spans] the trace is poisoned: the span is
    discarded, [parent] is returned, and {!finish} will drop the trace. *)

val span_count : handle -> int
(** Spans recorded on the handle so far (per-connection aggregation). *)

val set_tail : handle -> int -> unit

val tail : handle -> int
(** A parking spot for the chain position between the scheduling and
    service phases: the root's answer delivery stores its last span id
    here and the service phase resumes from it.  -1 until set. *)

val finish : t -> handle -> now:float -> unit
(** The request completed: close the trace, accumulate its critical path
    into the per-element aggregates, and offer it to the slowest-N
    reservoir (evicting the fastest retained trace, counted in
    {!dropped}).  Overflowed traces are dropped instead. *)

val finish_trace : t -> handle -> now:float -> trace option
(** {!finish} that also returns the built trace ([None] when the handle
    overflowed and was dropped) — the serving path hands it to the
    flight recorder. *)

val restore : t -> trace -> unit
(** Re-admit a recorded trace (flight-recorder replay): counts as
    finished, accumulates its critical path, and offers it to the
    reservoir — replaying finishes in their original order rebuilds the
    live store's exact reservoir and drop counts. *)

val abandon : t -> handle -> unit
(** The request failed (fault runs): count it, record nothing. *)

(** {1 Inspection} *)

val requests_seen : t -> int
(** Trace ids assigned, sampled or not. *)

val sampled : t -> int
(** Handles opened. *)

val finished : t -> int

val abandoned : t -> int

val dropped : t -> int
(** Finished sampled traces not retained as exemplars: reservoir
    evictions plus span-overflow drops — the bounded-buffer truncation
    made visible. *)

val dropped_spans : t -> int
(** Spans discarded past [max_spans]. *)

val exemplars : t -> trace list
(** Retained traces, slowest first (ties by lower trace id). *)

type agg = {
  ag_node : int;  (** -1 = client machine / wire. *)
  ag_kind : kind;
  ag_seconds : float;  (** Total time on sampled critical paths. *)
  ag_count : int;  (** Segments contributing. *)
}

val aggregates : t -> agg list
(** Per-(node, kind) critical-path time across every finished sampled
    trace (not just retained exemplars), sorted by node then kind. *)

val hottest_element : t -> (int * float) option
(** The platform element (node id >= 0) with the most critical-path
    seconds so far, with that total — the measured bottleneck fed into
    controller replan breadcrumbs.  [None] before any trace finished. *)
