(* Dependency-free OTLP/JSON encoder: resource -> scope -> spans and
   metrics, rendered with the same deterministic hand-rolled printing
   the other exporters use (stable ordering, stable float formatting),
   so identical inputs produce byte-identical documents. *)

module Rt = Request_trace

let scope_name = "adept.serve"
let scope_version = "1"

(* OTLP/JSON requires trace ids as 32 lowercase hex chars and span ids
   as 16.  Trace ids are the protocol envelope's ints; span ids pack
   (trace, span) so they are unique across the whole export. *)
let trace_id_hex id = Printf.sprintf "%032x" (id land max_int)

let span_id_hex ~trace ~span =
  Printf.sprintf "%016x" (((trace land 0xffffff) * 65536) + span + 1)

(* Timestamps are uint64 nanoseconds since the epoch, emitted as JSON
   strings per the OTLP/JSON mapping. *)
let nanos v =
  let ns = Int64.of_float (Float.max 0.0 v *. 1e9) in
  Printf.sprintf "\"%Lu\"" ns

(* Finite JSON number (OTLP has no Inf/NaN spelling): non-finite
   values clamp to 0. *)
let number v = if Float.is_finite v then Export.float_repr v else "0"

let attr_string k v =
  Printf.sprintf "{\"key\":%s,\"value\":{\"stringValue\":%s}}"
    (Label.json_string k) (Label.json_string v)

let attr_int k v =
  Printf.sprintf "{\"key\":%s,\"value\":{\"intValue\":\"%d\"}}"
    (Label.json_string k) v

let attrs_json attrs = String.concat "," attrs

let resource_json attrs =
  Printf.sprintf "{\"attributes\":[%s]}"
    (attrs_json (List.map (fun (k, v) -> attr_string k v) attrs))

let scope_json =
  Printf.sprintf "{\"name\":%s,\"version\":%s}" (Label.json_string scope_name)
    (Label.json_string scope_version)

let span_json ~conn_of (tr : Rt.trace) (sp : Rt.span) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "{\"traceId\":\"%s\",\"spanId\":\"%s\""
       (trace_id_hex tr.Rt.tr_id)
       (span_id_hex ~trace:tr.Rt.tr_id ~span:sp.Rt.sp_id));
  if sp.Rt.sp_parent >= 0 then
    Buffer.add_string buf
      (Printf.sprintf ",\"parentSpanId\":\"%s\""
         (span_id_hex ~trace:tr.Rt.tr_id ~span:sp.Rt.sp_parent));
  Buffer.add_string buf
    (Printf.sprintf
       ",\"name\":%s,\"kind\":1,\"startTimeUnixNano\":%s,\"endTimeUnixNano\":%s"
       (Label.json_string (Rt.kind_name sp.Rt.sp_kind))
       (nanos sp.Rt.sp_start) (nanos sp.Rt.sp_stop));
  let attrs =
    attr_int "adept.node" sp.Rt.sp_node
    ::
    (match conn_of tr.Rt.tr_id with
    | Some c -> [ attr_int "adept.conn.id" c ]
    | None -> [])
  in
  Buffer.add_string buf
    (Printf.sprintf ",\"attributes\":[%s]}" (attrs_json attrs));
  Buffer.contents buf

let resource_spans ?(resource = []) ?(conn_of = fun _ -> None) exemplars =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "{\"resource\":%s,\"scopeSpans\":[{\"scope\":%s,\"spans\":["
       (resource_json resource) scope_json);
  let first = ref true in
  List.iter
    (fun (tr : Rt.trace) ->
      Array.iter
        (fun sp ->
          if !first then first := false else Buffer.add_char buf ',';
          Buffer.add_string buf (span_json ~conn_of tr sp))
        tr.Rt.tr_spans)
    exemplars;
  Buffer.add_string buf "]}]}";
  Buffer.contents buf

let data_point_attrs labels =
  attrs_json (List.map (fun (k, v) -> attr_string k v) (Label.pairs labels))

let sum_json ~at ~monotonic series value_of =
  let points =
    List.map
      (fun (labels, v) ->
        Printf.sprintf "{\"attributes\":[%s],\"timeUnixNano\":%s,\"asDouble\":%s}"
          (data_point_attrs labels) (nanos at) (number (value_of v)))
      series
  in
  Printf.sprintf
    "\"sum\":{\"dataPoints\":[%s],\"aggregationTemporality\":2,\"isMonotonic\":%b}"
    (String.concat "," points) monotonic

let gauge_json ~at series value_of =
  let points =
    List.map
      (fun (labels, v) ->
        Printf.sprintf "{\"attributes\":[%s],\"timeUnixNano\":%s,\"asDouble\":%s}"
          (data_point_attrs labels) (nanos at) (number (value_of v)))
      series
  in
  Printf.sprintf "\"gauge\":{\"dataPoints\":[%s]}" (String.concat "," points)

(* De-cumulate the Prometheus-style buckets into OTLP explicit-bounds
   form: [explicitBounds] are the finite upper bounds; [bucketCounts]
   has one extra entry for the +Inf overflow. *)
let histogram_point ~at labels snap =
  let cumulative = Histogram.cumulative_buckets snap in
  let bounds = ref [] and counts = ref [] and prev = ref 0 in
  List.iter
    (fun (bound, cum) ->
      let c = cum - !prev in
      prev := cum;
      if Float.is_finite bound then bounds := Export.float_repr bound :: !bounds;
      counts := Printf.sprintf "\"%d\"" c :: !counts)
    cumulative;
  (* an empty histogram has no cumulative buckets at all: emit the bare
     +Inf overflow bucket so the point is still well-formed *)
  if !counts = [] then counts := [ "\"0\"" ];
  let exemplar =
    match Histogram.exemplar snap with
    | None -> ""
    | Some (v, trace_id) ->
        Printf.sprintf
          ",\"exemplars\":[{\"timeUnixNano\":%s,\"asDouble\":%s,\"traceId\":\"%s\"}]"
          (nanos at) (number v) (trace_id_hex trace_id)
  in
  Printf.sprintf
    "{\"attributes\":[%s],\"timeUnixNano\":%s,\"count\":\"%d\",\"sum\":%s,\"bucketCounts\":[%s],\"explicitBounds\":[%s]%s}"
    (data_point_attrs labels) (nanos at)
    (Histogram.count snap)
    (number (Histogram.sum snap))
    (String.concat "," (List.rev !counts))
    (String.concat "," (List.rev !bounds))
    exemplar

let histogram_json ~at series =
  let points = List.map (fun (labels, s) -> histogram_point ~at labels s) series in
  Printf.sprintf
    "\"histogram\":{\"dataPoints\":[%s],\"aggregationTemporality\":2}"
    (String.concat "," points)

let metric_json ~at (f : Registry.family) =
  let help = if f.Registry.help <> "" then f.Registry.help else Semconv.help f.Registry.name in
  let body =
    match f.Registry.series with
    | (_, Registry.Counter _) :: _ ->
        sum_json ~at ~monotonic:true f.Registry.series (function
          | Registry.Counter v | Registry.Gauge v -> v
          | Registry.Histogram _ -> 0.0)
    | (_, Registry.Gauge _) :: _ ->
        gauge_json ~at f.Registry.series (function
          | Registry.Counter v | Registry.Gauge v -> v
          | Registry.Histogram _ -> 0.0)
    | (_, Registry.Histogram _) :: _ ->
        histogram_json ~at
          (List.filter_map
             (fun (labels, v) ->
               match v with
               | Registry.Histogram s -> Some (labels, s)
               | Registry.Counter _ | Registry.Gauge _ -> None)
             f.Registry.series)
    | [] -> "\"gauge\":{\"dataPoints\":[]}"
  in
  Printf.sprintf "{\"name\":%s,\"description\":%s,%s}"
    (Label.json_string f.Registry.name) (Label.json_string help) body

let resource_metrics ?(resource = []) ~at families =
  let metrics =
    families
    |> List.filter (fun (f : Registry.family) -> f.Registry.series <> [])
    |> List.map (metric_json ~at)
  in
  Printf.sprintf
    "{\"resource\":%s,\"scopeMetrics\":[{\"scope\":%s,\"metrics\":[%s]}]}"
    (resource_json resource) scope_json
    (String.concat "," metrics)

let document ?(resource = []) ?(conn_of = fun _ -> None) ~at ~exemplars families =
  Printf.sprintf "{\"resourceSpans\":[%s],\"resourceMetrics\":[%s]}\n"
    (resource_spans ~resource ~conn_of exemplars)
    (resource_metrics ~resource ~at families)
