type t = {
  alpha : float;
  gamma : float;
  log_gamma : float;
  min_value : float;
  max_value : float;
  buckets : (int, int ref) Hashtbl.t; (* bucket index -> count *)
  mutable underflow : int; (* values < min_value (incl. <= 0) *)
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  mutable exemplar : (float * int) option; (* largest (value, trace id) seen *)
}

let create ?(alpha = 0.01) ?(min_value = 1e-9) ?(max_value = 1e9) () =
  if not (alpha > 0. && alpha < 1.) then
    invalid_arg "Histogram.create: alpha must be in (0, 1)";
  if not (min_value > 0. && min_value < max_value) then
    invalid_arg "Histogram.create: need 0 < min_value < max_value";
  let gamma = (1. +. alpha) /. (1. -. alpha) in
  {
    alpha;
    gamma;
    log_gamma = log gamma;
    min_value;
    max_value;
    buckets = Hashtbl.create 64;
    underflow = 0;
    count = 0;
    sum = 0.;
    min_v = infinity;
    max_v = neg_infinity;
    exemplar = None;
  }

let bucket_index t v =
  (* smallest i with gamma^i >= v, i.e. ceil (log_gamma v) *)
  int_of_float (Float.ceil (log v /. t.log_gamma))

let record_n t v n =
  if n < 0 then invalid_arg "Histogram.record_n: negative count";
  if n > 0 && not (Float.is_nan v) then begin
    t.count <- t.count + n;
    t.sum <- t.sum +. (v *. float_of_int n);
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v;
    if v < t.min_value then t.underflow <- t.underflow + n
    else begin
      let v = if v > t.max_value then t.max_value else v in
      let i = bucket_index t v in
      match Hashtbl.find_opt t.buckets i with
      | Some r -> r := !r + n
      | None -> Hashtbl.add t.buckets i (ref n)
    end
  end

let record t v = record_n t v 1

let record_ex t v ~trace_id =
  if not (Float.is_nan v) then begin
    (match t.exemplar with
    | Some (e, _) when e >= v -> ()
    | _ -> t.exemplar <- Some (v, trace_id));
    record t v
  end

type snapshot = {
  s_alpha : float;
  s_gamma : float;
  s_min_value : float;
  s_max_value : float;
  s_buckets : (int * int) array; (* sorted by bucket index, counts > 0 *)
  s_underflow : int;
  s_count : int;
  s_sum : float;
  s_min : float;
  s_max : float;
  s_exemplar : (float * int) option;
}

let snapshot t =
  let pairs =
    Hashtbl.fold (fun i r acc -> (i, !r) :: acc) t.buckets []
    |> List.filter (fun (_, c) -> c > 0)
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  {
    s_alpha = t.alpha;
    s_gamma = t.gamma;
    s_min_value = t.min_value;
    s_max_value = t.max_value;
    s_buckets = Array.of_list pairs;
    s_underflow = t.underflow;
    s_count = t.count;
    s_sum = t.sum;
    s_min = t.min_v;
    s_max = t.max_v;
    s_exemplar = t.exemplar;
  }

let empty_snapshot ?alpha ?min_value ?max_value () =
  snapshot (create ?alpha ?min_value ?max_value ())

let merge a b =
  if a.s_alpha <> b.s_alpha then
    invalid_arg "Histogram.merge: snapshots have different alpha";
  (* Merging an empty snapshot is the identity: an empty side carries no
     samples, only its clamp bounds, and letting those widen the result's
     [s_min_value]/[s_max_value] would shift the underflow bucket bound of
     a snapshot whose recorded data never saw them. *)
  if b.s_count = 0 then a
  else if a.s_count = 0 then b
  else
  let tbl = Hashtbl.create (Array.length a.s_buckets + Array.length b.s_buckets) in
  let add (i, c) =
    match Hashtbl.find_opt tbl i with
    | Some r -> r := !r + c
    | None -> Hashtbl.add tbl i (ref c)
  in
  Array.iter add a.s_buckets;
  Array.iter add b.s_buckets;
  let pairs =
    Hashtbl.fold (fun i r acc -> (i, !r) :: acc) tbl []
    |> List.sort (fun (x, _) (y, _) -> Int.compare x y)
  in
  {
    s_alpha = a.s_alpha;
    s_gamma = a.s_gamma;
    s_min_value = Float.min a.s_min_value b.s_min_value;
    s_max_value = Float.max a.s_max_value b.s_max_value;
    s_buckets = Array.of_list pairs;
    s_underflow = a.s_underflow + b.s_underflow;
    s_count = a.s_count + b.s_count;
    s_sum = a.s_sum +. b.s_sum;
    s_min = Float.min a.s_min b.s_min;
    s_max = Float.max a.s_max b.s_max;
    s_exemplar =
      (match (a.s_exemplar, b.s_exemplar) with
      | (Some (va, _) as ea), Some (vb, _) when va >= vb -> ea
      | Some _, (Some _ as eb) -> eb
      | (Some _ as e), None | None, e -> e);
  }

let count s = s.s_count

let sum s = s.s_sum

let mean s = if s.s_count = 0 then None else Some (s.s_sum /. float_of_int s.s_count)

let min_recorded s = if s.s_count = 0 then None else Some s.s_min

let max_recorded s = if s.s_count = 0 then None else Some s.s_max

let exemplar s = s.s_exemplar

let alpha s = s.s_alpha

let num_buckets s = Array.length s.s_buckets + if s.s_underflow > 0 then 1 else 0

let bucket_estimate s i =
  (* midpoint of (gamma^(i-1), gamma^i] minimising relative error *)
  2. *. (s.s_gamma ** float_of_int i) /. (1. +. s.s_gamma)

let quantile s q =
  if not (q >= 0. && q <= 100.) then
    invalid_arg "Histogram.quantile: q must be in [0, 100]";
  if s.s_count = 0 then None
  else begin
    let rank = max 1 (int_of_float (Float.ceil (q /. 100. *. float_of_int s.s_count))) in
    if rank <= s.s_underflow then Some s.s_min_value
    else begin
      let seen = ref s.s_underflow in
      let result = ref None in
      (try
         Array.iter
           (fun (i, c) ->
             seen := !seen + c;
             if !seen >= rank then begin
               result := Some (bucket_estimate s i);
               raise Exit
             end)
           s.s_buckets
       with Exit -> ());
      match !result with
      | Some _ as r -> r
      | None ->
          (* only possible via fp slack in rank; fall back to the top bucket *)
          if Array.length s.s_buckets = 0 then Some s.s_min_value
          else Some (bucket_estimate s (fst s.s_buckets.(Array.length s.s_buckets - 1)))
    end
  end

let cumulative_buckets s =
  if s.s_count = 0 then []
  else begin
    let acc = ref [] in
    let running = ref 0 in
    if s.s_underflow > 0 then begin
      running := s.s_underflow;
      acc := (s.s_min_value, !running) :: !acc
    end;
    Array.iter
      (fun (i, c) ->
        running := !running + c;
        acc := (s.s_gamma ** float_of_int i, !running) :: !acc)
      s.s_buckets;
    List.rev ((infinity, s.s_count) :: !acc)
  end
