type t = (string * string) list

let empty = []

let valid_name s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       s

let valid_key s = valid_name s && not (String.contains s ':')

let v pairs =
  List.iter
    (fun (k, _) ->
      if not (valid_key k) then invalid_arg ("Label.v: malformed label key " ^ k))
    pairs;
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) pairs in
  let rec check = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        if a = b then invalid_arg ("Label.v: duplicate label key " ^ a);
        check rest
    | [ _ ] | [] -> ()
  in
  check sorted;
  sorted

let compare = List.compare (fun (k1, v1) (k2, v2) ->
    match String.compare k1 k2 with 0 -> String.compare v1 v2 | c -> c)

let equal a b = compare a b = 0

let pairs t = t

let find t key = List.assoc_opt key t

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s

let to_prometheus = function
  | [] -> ""
  | pairs ->
      let buf = Buffer.create 32 in
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, value) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf k;
          Buffer.add_string buf "=\"";
          escape buf value;
          Buffer.add_char buf '"')
        pairs;
      Buffer.add_char buf '}';
      Buffer.contents buf

(* JSON string escaping: control characters beyond \n also need \u form. *)
let json_escape buf s =
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  json_escape buf s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 32 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, value) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (json_string k);
      Buffer.add_char buf ':';
      Buffer.add_string buf (json_string value))
    t;
  Buffer.add_char buf '}';
  Buffer.contents buf

let to_string t = String.concat "," (List.map (fun (k, value) -> k ^ "=" ^ value) t)
