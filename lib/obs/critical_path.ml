module Rt = Request_trace

type share = {
  s_node : int;
  s_recv : float;
  s_send : float;
  s_wire : float;
  s_compute : float;
}

let seconds s = s.s_recv +. s.s_send +. s.s_wire +. s.s_compute

let segments = Rt.critical_path

let empty node =
  { s_node = node; s_recv = 0.0; s_send = 0.0; s_wire = 0.0; s_compute = 0.0 }

let add share (sp : Rt.span) =
  let d = sp.Rt.sp_stop -. sp.Rt.sp_start in
  match sp.Rt.sp_kind with
  | Rt.Send _ -> { share with s_send = share.s_send +. d }
  | Rt.Wire _ -> { share with s_wire = share.s_wire +. d }
  | Rt.Recv _ -> { share with s_recv = share.s_recv +. d }
  | Rt.Compute _ | Rt.Stage _ -> { share with s_compute = share.s_compute +. d }

let by_element tr =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (sp : Rt.span) ->
      let node = sp.Rt.sp_node in
      let share = Option.value ~default:(empty node) (Hashtbl.find_opt tbl node) in
      Hashtbl.replace tbl node (add share sp))
    (segments tr);
  Hashtbl.fold (fun _ share acc -> share :: acc) tbl []
  |> List.sort (fun a b -> Int.compare a.s_node b.s_node)

let eq_label = function
  | Rt.Compute Rt.Wreq -> "Wreq/w (Eq. 3)"
  | Rt.Compute Rt.Wrep -> "Wrep(d)/w (Eq. 3)"
  | Rt.Compute Rt.Wpre -> "Wpre/w (Eq. 4)"
  | Rt.Compute Rt.Service -> "Wapp/w (Eq. 5)"
  | Rt.Stage _ -> "serve stage"
  | Rt.Wire _ -> "link latency"
  | (Rt.Send m | Rt.Recv m) -> (
      match m with
      | Rt.Submit | Rt.Forward -> "sreq/B (Eqs. 1-2)"
      | Rt.Reply | Rt.Answer -> "srep/B (Eqs. 1-2)"
      | Rt.Service_request -> "sreq/B (Eq. 5)"
      | Rt.Service_reply -> "srep/B (Eq. 5)")

let node_name = function -1 -> "client/net" | id -> Printf.sprintf "node %d" id

let render tr =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "trace %d: %.6f s end-to-end, %d spans (%d on critical path)\n"
       tr.Rt.tr_id (Rt.duration tr)
       (Array.length tr.Rt.tr_spans)
       (List.length (segments tr)));
  List.iter
    (fun (sp : Rt.span) ->
      Buffer.add_string buf
        (Printf.sprintf "  %-22s %-10s %10.6f s  [%s]\n"
           (Rt.kind_name sp.Rt.sp_kind) (node_name sp.Rt.sp_node)
           (sp.Rt.sp_stop -. sp.Rt.sp_start)
           (eq_label sp.Rt.sp_kind)))
    (segments tr);
  Buffer.add_string buf "  per element:\n";
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf
           "    %-10s total %.6f s (recv %.6f, send %.6f, compute %.6f, wire %.6f)\n"
           (node_name s.s_node) (seconds s) s.s_recv s.s_send s.s_compute s.s_wire))
    (by_element tr);
  Buffer.contents buf
