type t = {
  retention : float;
  selectors : Rule.selector list; (* deduplicated, first-seen order *)
  rings : (string, Ring.t) Hashtbl.t; (* selector_key -> samples *)
  scrape_instants : Ring.t;
  mutable scrapes : int;
  mutable last_scrape : float;
}

let create ?(capacity = 64) ~retention selectors =
  if not (retention > 0.) then
    invalid_arg "Timeseries.create: retention must be > 0";
  let rings = Hashtbl.create (List.length selectors) in
  let deduped =
    List.filter
      (fun sel ->
        let key = Rule.selector_key sel in
        if Hashtbl.mem rings key then false
        else begin
          Hashtbl.add rings key (Ring.create ~capacity ~retention ());
          true
        end)
      selectors
  in
  {
    retention;
    selectors = deduped;
    rings;
    scrape_instants = Ring.create ~capacity ~retention ();
    scrapes = 0;
    last_scrape = neg_infinity;
  }

let retention t = t.retention

let selectors t = t.selectors

let scrapes t = t.scrapes

(* Label-subset match: every matcher pair appears verbatim in the
   series' label set. *)
let matches (matcher : Label.t) (labels : Label.t) =
  List.for_all
    (fun (k, v) -> Label.find labels k = Some v)
    (Label.pairs matcher)

(* Reduce the matched series of [family] under [sel] to one float.
   [None] = no sample this scrape. *)
let reduce (sel : Rule.selector) (family : Registry.family) =
  let matched =
    List.filter (fun (labels, _) -> matches sel.Rule.sel_labels labels)
      family.Registry.series
  in
  if matched = [] then None
  else
    match sel.Rule.sel_stat with
    | Rule.Value ->
        let total = ref 0. and seen = ref false in
        List.iter
          (fun (_, value) ->
            match (value : Registry.value) with
            | Registry.Counter v | Registry.Gauge v ->
                seen := true;
                total := !total +. v
            | Registry.Histogram _ -> ())
          matched;
        if !seen then Some !total else None
    | Rule.Count | Rule.Sum | Rule.Quantile _ -> (
        let snap = ref None in
        List.iter
          (fun (_, value) ->
            match (value : Registry.value) with
            | Registry.Histogram s ->
                snap :=
                  Some
                    (match !snap with
                    | None -> s
                    | Some acc -> Histogram.merge acc s)
            | Registry.Counter _ | Registry.Gauge _ -> ())
          matched;
        match !snap with
        | None -> None
        | Some s -> (
            match sel.Rule.sel_stat with
            | Rule.Count -> Some (float_of_int (Histogram.count s))
            | Rule.Sum -> Some (Histogram.sum s)
            | Rule.Quantile q -> Histogram.quantile s q
            | Rule.Value -> assert false))

let scrape t ~registry ~now =
  if now < t.last_scrape then
    invalid_arg "Timeseries.scrape: time went backwards";
  t.last_scrape <- now;
  t.scrapes <- t.scrapes + 1;
  Ring.push t.scrape_instants ~time:now 0.;
  List.iter
    (fun sel ->
      match Registry.find registry sel.Rule.sel_metric with
      | None -> ()
      | Some family -> (
          match reduce sel family with
          | None -> ()
          | Some value ->
              let ring = Hashtbl.find t.rings (Rule.selector_key sel) in
              Ring.push ring ~time:now value))
    t.selectors

let ring t sel = Hashtbl.find_opt t.rings (Rule.selector_key sel)

let last t sel =
  match ring t sel with
  | None -> None
  | Some r -> Ring.find_at_or_before r ~time:infinity

let points t sel =
  match ring t sel with
  | None -> []
  | Some r ->
      List.rev (Ring.fold r ~init:[] ~f:(fun acc ~time ~value -> (time, value) :: acc))

let scrape_times t =
  List.rev
    (Ring.fold t.scrape_instants ~init:[] ~f:(fun acc ~time ~value:_ ->
         time :: acc))

let window_ends t sel ~now ~window =
  match ring t sel with
  | None -> None
  | Some r -> (
      match Ring.find_at_or_before r ~time:now with
      | None -> None
      | Some (t1, v1) -> (
          match Ring.find_at_or_before r ~time:(now -. window) with
          | None -> None
          | Some (t0, v0) -> Some (t0, v0, t1, v1)))

let rec eval t ~now expr =
  let lift2 f a b =
    match (eval t ~now a, eval t ~now b) with
    | Some x, Some y -> Some (f x y)
    | _ -> None
  in
  match (expr : Rule.expr) with
  | Rule.Const v -> Some v
  | Rule.Last sel -> (
      match ring t sel with
      | None -> None
      | Some r -> Option.map snd (Ring.find_at_or_before r ~time:now))
  | Rule.Delta (sel, w) ->
      Option.map
        (fun (_, v0, _, v1) -> v1 -. v0)
        (window_ends t sel ~now ~window:w)
  | Rule.Rate (sel, w) -> (
      match window_ends t sel ~now ~window:w with
      | None -> None
      | Some (t0, v0, t1, v1) ->
          if t1 > t0 then Some ((v1 -. v0) /. (t1 -. t0)) else None)
  | Rule.Window_mean (sel, w) -> (
      let sum_sel = Rule.with_stat sel Rule.Sum in
      let count_sel = Rule.with_stat sel Rule.Count in
      match
        (window_ends t sum_sel ~now ~window:w,
         window_ends t count_sel ~now ~window:w)
      with
      | Some (_, s0, _, s1), Some (_, c0, _, c1) when c1 -. c0 > 0. ->
          Some ((s1 -. s0) /. (c1 -. c0))
      | _ -> None)
  | Rule.Abs e -> Option.map Float.abs (eval t ~now e)
  | Rule.Add (a, b) -> lift2 ( +. ) a b
  | Rule.Sub (a, b) -> lift2 ( -. ) a b
  | Rule.Mul (a, b) -> lift2 ( *. ) a b
  | Rule.Div (a, b) -> (
      match (eval t ~now a, eval t ~now b) with
      | Some x, Some y when y <> 0. -> Some (x /. y)
      | _ -> None)
  | Rule.Min (a, b) -> lift2 Float.min a b
  | Rule.Max (a, b) -> lift2 Float.max a b
