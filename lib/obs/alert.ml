type state = Inactive | Pending of float | Firing of float

type edge = To_pending | To_firing | To_resolved

type transition = { at : float; rule : Rule.t; edge : edge; value : float }

type t = {
  rules : Rule.t list;
  timeseries : Timeseries.t;
  tracer : Tracer.t option;
  states : (string, state) Hashtbl.t;
  mutable transitions : transition list; (* newest first *)
}

let create ?tracer ~timeseries rules =
  let seen = Hashtbl.create 16 in
  let err = ref None in
  List.iter
    (fun (r : Rule.t) ->
      if !err = None then
        if Hashtbl.mem seen r.Rule.name then
          err := Some (Printf.sprintf "duplicate rule name %S" r.Rule.name)
        else begin
          Hashtbl.add seen r.Rule.name ();
          let w = Rule.max_window r in
          if w > Timeseries.retention timeseries then
            err :=
              Some
                (Printf.sprintf
                   "rule %S needs a %g s window but the store only retains %g s"
                   r.Rule.name w
                   (Timeseries.retention timeseries))
        end)
    rules;
  match !err with
  | Some m -> Error m
  | None ->
      let states = Hashtbl.create (List.length rules) in
      List.iter (fun (r : Rule.t) -> Hashtbl.replace states r.Rule.name Inactive) rules;
      Ok { rules; timeseries; tracer; states; transitions = [] }

let rules t = t.rules

let timeseries t = t.timeseries

let record t ~at rule edge value =
  t.transitions <- { at; rule; edge; value } :: t.transitions;
  match t.tracer with
  | None -> ()
  | Some tracer ->
      let name =
        match edge with
        | To_pending -> "alert-pending"
        | To_firing -> "alert-fired"
        | To_resolved -> "alert-resolved"
      in
      Tracer.event tracer ~at
        ~labels:
          (Label.v
             [
               (Semconv.l_alertname, rule.Rule.name);
               (Semconv.l_severity, Rule.severity_name rule.Rule.severity);
             ])
        name

let eval t ~now =
  List.iter
    (fun (rule : Rule.t) ->
      let lhs = Timeseries.eval t.timeseries ~now rule.Rule.lhs in
      let rhs = Timeseries.eval t.timeseries ~now rule.Rule.rhs in
      let cond =
        match (lhs, rhs) with
        | Some a, Some b -> (
            match rule.Rule.cmp with Rule.Gt -> a > b | Rule.Lt -> a < b)
        | _ -> false
      in
      let value = Option.value lhs ~default:Float.nan in
      let state = Hashtbl.find t.states rule.Rule.name in
      let fire since =
        Hashtbl.replace t.states rule.Rule.name (Firing since);
        record t ~at:now rule To_firing value
      in
      match (state, cond) with
      | Inactive, true ->
          if rule.Rule.for_duration <= 0. then fire now
          else begin
            Hashtbl.replace t.states rule.Rule.name (Pending now);
            record t ~at:now rule To_pending value
          end
      | Pending since, true ->
          (* a hair of float slack so for=k*interval fires on tick k *)
          if now -. since >= rule.Rule.for_duration -. 1e-9 then fire since
      | Firing _, true -> ()
      | Inactive, false -> ()
      | Pending _, false -> Hashtbl.replace t.states rule.Rule.name Inactive
      | Firing _, false ->
          Hashtbl.replace t.states rule.Rule.name Inactive;
          record t ~at:now rule To_resolved value)
    t.rules

let state t name = Hashtbl.find_opt t.states name

let states t =
  List.map (fun (r : Rule.t) -> (r, Hashtbl.find t.states r.Rule.name)) t.rules

let firing_names t =
  List.filter_map
    (fun (r : Rule.t) ->
      match Hashtbl.find t.states r.Rule.name with
      | Firing _ -> Some r.Rule.name
      | _ -> None)
    t.rules

let transitions t = List.rev t.transitions

let firing_intervals t =
  (* walk the chronological log pairing each To_firing with the next
     To_resolved of the same rule *)
  let open_at = Hashtbl.create 8 in
  let intervals = ref [] in
  List.iter
    (fun tr ->
      match tr.edge with
      | To_pending -> ()
      | To_firing -> Hashtbl.replace open_at tr.rule.Rule.name (tr.rule, tr.at)
      | To_resolved -> (
          match Hashtbl.find_opt open_at tr.rule.Rule.name with
          | Some (rule, fired) ->
              Hashtbl.remove open_at tr.rule.Rule.name;
              intervals := (rule, fired, Some tr.at) :: !intervals
          | None -> ()))
    (transitions t);
  let still_open =
    Hashtbl.fold (fun _ (rule, fired) acc -> (rule, fired, None) :: acc) open_at []
  in
  List.sort
    (fun (_, a, _) (_, b, _) -> Float.compare a b)
    (List.rev_append !intervals still_open)
