type message = Submit | Forward | Reply | Answer | Service_request | Service_reply

type step = Wreq | Wrep | Wpre | Service

type stage =
  | Frame_read
  | Parse
  | Cache_lookup
  | Shard_plan
  | Replay
  | Render_reply
  | Write_reply

type kind =
  | Send of message
  | Wire of message
  | Recv of message
  | Compute of step
  | Stage of stage

let message_name = function
  | Submit -> "submit"
  | Forward -> "forward"
  | Reply -> "reply"
  | Answer -> "answer"
  | Service_request -> "service_request"
  | Service_reply -> "service_reply"

let step_name = function
  | Wreq -> "wreq"
  | Wrep -> "wrep"
  | Wpre -> "wpre"
  | Service -> "service"

let stage_name = function
  | Frame_read -> "frame_read"
  | Parse -> "parse"
  | Cache_lookup -> "cache_lookup"
  | Shard_plan -> "shard_plan"
  | Replay -> "replay"
  | Render_reply -> "render"
  | Write_reply -> "write"

let kind_name = function
  | Send m -> "send." ^ message_name m
  | Wire m -> "wire." ^ message_name m
  | Recv m -> "recv." ^ message_name m
  | Compute s -> "compute." ^ step_name s
  | Stage s -> "serve." ^ stage_name s

let message_of_kind = function
  | Send m | Wire m | Recv m -> Some m
  | Compute _ | Stage _ -> None

(* Total order on kinds for deterministic aggregate listings. *)
let message_rank = function
  | Submit -> 0
  | Forward -> 1
  | Reply -> 2
  | Answer -> 3
  | Service_request -> 4
  | Service_reply -> 5

let step_rank = function Wreq -> 0 | Wrep -> 1 | Wpre -> 2 | Service -> 3

let stage_rank = function
  | Frame_read -> 0
  | Parse -> 1
  | Cache_lookup -> 2
  | Shard_plan -> 3
  | Replay -> 4
  | Render_reply -> 5
  | Write_reply -> 6

let kind_rank = function
  | Send m -> (0, message_rank m)
  | Wire m -> (1, message_rank m)
  | Recv m -> (2, message_rank m)
  | Compute s -> (3, step_rank s)
  | Stage s -> (4, stage_rank s)

let compare_kind a b = compare (kind_rank a) (kind_rank b)

(* Stable wire codec for kinds (the flight recorder persists spans).
   [kind_rank] is already a dense total order; pack it into one byte. *)
let kind_code k =
  let group, sub = kind_rank k in
  (group * 16) + sub

let message_of_rank = function
  | 0 -> Submit
  | 1 -> Forward
  | 2 -> Reply
  | 3 -> Answer
  | 4 -> Service_request
  | _ -> Service_reply

let step_of_rank = function 0 -> Wreq | 1 -> Wrep | 2 -> Wpre | _ -> Service

let stage_of_rank = function
  | 0 -> Frame_read
  | 1 -> Parse
  | 2 -> Cache_lookup
  | 3 -> Shard_plan
  | 4 -> Replay
  | 5 -> Render_reply
  | _ -> Write_reply

let kind_of_code c =
  let group = c / 16 and sub = c mod 16 in
  match group with
  | 0 -> Some (Send (message_of_rank sub))
  | 1 -> Some (Wire (message_of_rank sub))
  | 2 -> Some (Recv (message_of_rank sub))
  | 3 -> Some (Compute (step_of_rank sub))
  | 4 -> Some (Stage (stage_of_rank sub))
  | _ -> None

type span = {
  sp_id : int;
  sp_parent : int;
  sp_kind : kind;
  sp_node : int;
  sp_start : float;
  sp_stop : float;
}

type trace = {
  tr_id : int;
  tr_issued : float;
  tr_finished : float;
  tr_spans : span array;
}

let duration tr = tr.tr_finished -. tr.tr_issued

let critical_path tr =
  let n = Array.length tr.tr_spans in
  if n = 0 then []
  else
    let rec walk acc id =
      if id < 0 || id >= n then acc
      else
        let sp = tr.tr_spans.(id) in
        walk (sp :: acc) sp.sp_parent
    in
    walk [] (n - 1)

type handle = {
  h_id : int;
  h_issued : float;
  mutable h_spans : span list;  (* newest first *)
  mutable h_count : int;
  mutable h_tail : int;
  mutable h_overflowed : bool;
}

type agg_cell = { mutable ac_seconds : float; mutable ac_count : int }

type t = {
  rate : float;
  max_traces : int;
  max_spans : int;
  mutable next_id : int;
  mutable n_seen : int;
  mutable n_sampled : int;
  mutable n_finished : int;
  mutable n_abandoned : int;
  mutable n_dropped : int;
  mutable n_dropped_spans : int;
  mutable reservoir : trace list;  (* slowest first, length <= max_traces *)
  agg : (int * kind, agg_cell) Hashtbl.t;
}

let create ?(sample_rate = 1.0) ?(max_traces = 32) ?(max_spans = 4096) () =
  if Float.is_nan sample_rate then
    invalid_arg "Request_trace.create: sample_rate must not be NaN";
  if max_traces < 1 then invalid_arg "Request_trace.create: max_traces must be >= 1";
  if max_spans < 1 then invalid_arg "Request_trace.create: max_spans must be >= 1";
  {
    rate = Float.min 1.0 (Float.max 0.0 sample_rate);
    max_traces;
    max_spans;
    next_id = 0;
    n_seen = 0;
    n_sampled = 0;
    n_finished = 0;
    n_abandoned = 0;
    n_dropped = 0;
    n_dropped_spans = 0;
    reservoir = [];
    agg = Hashtbl.create 64;
  }

let sample_rate t = t.rate

(* 64-bit finaliser (splitmix64's mixer): trace id -> uniform in [0, 1).
   Deterministic and independent of every simulation RNG stream, so the
   sampled id set depends only on the rate. *)
let hash_unit id =
  let z = Int64.of_int id in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xff51afd7ed558ccdL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xc4ceb9fe1a85ec53L in
  let z = Int64.logxor z (Int64.shift_right_logical z 33) in
  float_of_int (Int64.to_int (Int64.shift_right_logical z 11)) /. 9007199254740992.0

let would_sample t id =
  if t.rate >= 1.0 then true
  else if t.rate <= 0.0 then false
  else hash_unit id < t.rate

let open_handle t id ~now =
  t.n_seen <- t.n_seen + 1;
  if would_sample t id then begin
    t.n_sampled <- t.n_sampled + 1;
    Some
      {
        h_id = id;
        h_issued = now;
        h_spans = [];
        h_count = 0;
        h_tail = -1;
        h_overflowed = false;
      }
  end
  else None

let begin_request t ~now =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  open_handle t id ~now

(* Serving path: the trace id travels with the request envelope, so the
   client picks it and every tier's sampling decision agrees (same hash,
   same rate => same verdict). *)
let begin_with_id t ~id ~now = open_handle t id ~now

let trace_id h = h.h_id

let add_span t h ~parent ~kind ~node ~start ~stop =
  if h.h_overflowed || h.h_count >= t.max_spans then begin
    h.h_overflowed <- true;
    t.n_dropped_spans <- t.n_dropped_spans + 1;
    parent
  end
  else begin
    let id = h.h_count in
    h.h_count <- id + 1;
    h.h_spans <-
      { sp_id = id; sp_parent = parent; sp_kind = kind; sp_node = node;
        sp_start = start; sp_stop = stop }
      :: h.h_spans;
    id
  end

let set_tail h id = h.h_tail <- id

let tail h = h.h_tail

let span_count h = h.h_count

(* Slowest-first reservoir order; ties break to the lower trace id so
   the retained set never depends on insertion order. *)
let slower a b =
  let da = duration a and db = duration b in
  if da > db then true else if da < db then false else a.tr_id < b.tr_id

let offer t tr =
  let rec insert = function
    | [] -> [ tr ]
    | x :: rest -> if slower tr x then tr :: x :: rest else x :: insert rest
  in
  let rec drop_last = function
    | [] | [ _ ] -> []
    | x :: rest -> x :: drop_last rest
  in
  let r = insert t.reservoir in
  if List.length r > t.max_traces then begin
    t.n_dropped <- t.n_dropped + 1;
    t.reservoir <- drop_last r
  end
  else t.reservoir <- r

let accumulate t tr =
  List.iter
    (fun sp ->
      let key = (sp.sp_node, sp.sp_kind) in
      let cell =
        match Hashtbl.find_opt t.agg key with
        | Some c -> c
        | None ->
            let c = { ac_seconds = 0.0; ac_count = 0 } in
            Hashtbl.add t.agg key c;
            c
      in
      cell.ac_seconds <- cell.ac_seconds +. (sp.sp_stop -. sp.sp_start);
      cell.ac_count <- cell.ac_count + 1)
    (critical_path tr)

let finish_trace t h ~now =
  t.n_finished <- t.n_finished + 1;
  if h.h_overflowed then begin
    t.n_dropped <- t.n_dropped + 1;
    None
  end
  else begin
    let spans =
      match h.h_spans with
      | [] -> [||]
      | dummy :: _ ->
          let a = Array.make h.h_count dummy in
          List.iter (fun sp -> a.(sp.sp_id) <- sp) h.h_spans;
          a
    in
    let tr =
      { tr_id = h.h_id; tr_issued = h.h_issued; tr_finished = now; tr_spans = spans }
    in
    accumulate t tr;
    offer t tr;
    Some tr
  end

let finish t h ~now = ignore (finish_trace t h ~now)

(* Re-admit a previously recorded trace (flight-recorder replay): same
   bookkeeping as a live [finish] of an unoverflowed handle, so a replayed
   store converges to the exact reservoir and aggregates of the live one. *)
let restore t tr =
  t.n_finished <- t.n_finished + 1;
  accumulate t tr;
  offer t tr

let abandon t h =
  ignore h;
  t.n_abandoned <- t.n_abandoned + 1

let requests_seen t = t.n_seen

let sampled t = t.n_sampled

let finished t = t.n_finished

let abandoned t = t.n_abandoned

let dropped t = t.n_dropped

let dropped_spans t = t.n_dropped_spans

let exemplars t = t.reservoir

type agg = { ag_node : int; ag_kind : kind; ag_seconds : float; ag_count : int }

let aggregates t =
  Hashtbl.fold
    (fun (node, kind) cell acc ->
      { ag_node = node; ag_kind = kind; ag_seconds = cell.ac_seconds;
        ag_count = cell.ac_count }
      :: acc)
    t.agg []
  |> List.sort (fun a b ->
         match Int.compare a.ag_node b.ag_node with
         | 0 -> compare_kind a.ag_kind b.ag_kind
         | c -> c)

let hottest_element t =
  (* Sum kinds per platform node, then argmax (ties to the lower id).
     Folding over the sorted [aggregates] keeps the result independent
     of hash-table iteration order. *)
  let totals = ref [] in
  List.iter
    (fun a ->
      if a.ag_node >= 0 then
        match !totals with
        | (n, s) :: rest when n = a.ag_node -> totals := (n, s +. a.ag_seconds) :: rest
        | _ -> totals := (a.ag_node, a.ag_seconds) :: !totals)
    (aggregates t);
  List.fold_left
    (fun best (node, seconds) ->
      match best with
      | Some (bn, bs) when bs > seconds || (bs = seconds && bn < node) -> best
      | Some _ | None -> Some (node, seconds))
    None !totals
