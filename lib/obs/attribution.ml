open Adept_platform
open Adept_hierarchy
module Rt = Request_trace
module Evaluate = Adept.Evaluate

type row = {
  at_node : int;
  at_name : string;
  at_role : string;
  at_seconds : float;
  at_share : float;
  at_recv : float;
  at_send : float;
  at_compute : float;
  at_wire : float;
  at_utilization : float option;
}

type t = {
  rows : row list;
  traces : int;
  requests : int;
  dropped : int;
  dropped_spans : int;
  measured : row option;
  predicted : Evaluate.bottleneck_element option;
}

let build ~store ~tree ?(utilization = []) ?predicted () =
  let roles = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace roles (Node.id n) (Node.name n, "agent")) (Tree.agents tree);
  List.iter
    (fun n -> Hashtbl.replace roles (Node.id n) (Node.name n, "server"))
    (Tree.servers tree);
  (* Fold the sorted per-(node, kind) aggregates into per-node rows; the
     store lists a node's kinds contiguously. *)
  let rows = ref [] in
  let current = ref None in
  let flush () =
    match !current with Some r -> rows := r :: !rows; current := None | None -> ()
  in
  List.iter
    (fun (a : Rt.agg) ->
      let r =
        match !current with
        | Some r when r.at_node = a.Rt.ag_node -> r
        | _ ->
            flush ();
            let name, role =
              if a.Rt.ag_node < 0 then ("client/net", "client/net")
              else
                Option.value
                  ~default:(Printf.sprintf "n%d" a.Rt.ag_node, "?")
                  (Hashtbl.find_opt roles a.Rt.ag_node)
            in
            {
              at_node = a.Rt.ag_node;
              at_name = name;
              at_role = role;
              at_seconds = 0.0;
              at_share = 0.0;
              at_recv = 0.0;
              at_send = 0.0;
              at_compute = 0.0;
              at_wire = 0.0;
              at_utilization =
                (if a.Rt.ag_node < 0 then None
                 else List.assoc_opt a.Rt.ag_node utilization);
            }
      in
      let s = a.Rt.ag_seconds in
      let r = { r with at_seconds = r.at_seconds +. s } in
      let r =
        match a.Rt.ag_kind with
        | Rt.Send _ -> { r with at_send = r.at_send +. s }
        | Rt.Wire _ -> { r with at_wire = r.at_wire +. s }
        | Rt.Recv _ -> { r with at_recv = r.at_recv +. s }
        | Rt.Compute _ | Rt.Stage _ -> { r with at_compute = r.at_compute +. s }
      in
      current := Some r)
    (Rt.aggregates store);
  flush ();
  let total = List.fold_left (fun acc r -> acc +. r.at_seconds) 0.0 !rows in
  let rows =
    List.map
      (fun r ->
        { r with at_share = (if total > 0.0 then r.at_seconds /. total else 0.0) })
      !rows
    |> List.sort (fun a b ->
           match Float.compare b.at_seconds a.at_seconds with
           | 0 -> Int.compare a.at_node b.at_node
           | c -> c)
  in
  let measured = List.find_opt (fun r -> r.at_node >= 0) rows in
  {
    rows;
    traces = Rt.finished store;
    requests = Rt.requests_seen store;
    dropped = Rt.dropped store;
    dropped_spans = Rt.dropped_spans store;
    measured;
    predicted;
  }

let matches t =
  match (t.predicted, t.measured) with
  | None, _ | _, None -> None
  | Some be, Some top -> (
      match be.Evaluate.be_side with
      | `Service -> Some (top.at_role = "server")
      | `Sched ->
          Some
            (match be.Evaluate.be_node with
            | Some node -> top.at_node = Node.id node
            | None -> false))

let render t =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       "critical-path attribution: %d traces over %d requests (dropped %d traces, %d spans)\n"
       t.traces t.requests t.dropped t.dropped_spans);
  Buffer.add_string buf
    "rank element      role        cp seconds  share   recv      send      compute   util\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf "%4d %-12s %-10s %11.4f %5.1f%%  %9.4f %9.4f %9.4f  %s\n"
           (i + 1) r.at_name r.at_role r.at_seconds (100.0 *. r.at_share) r.at_recv
           r.at_send r.at_compute
           (match r.at_utilization with
           | Some u -> Printf.sprintf "%.2f" u
           | None -> "-")))
    t.rows;
  (match t.measured with
  | Some top ->
      Buffer.add_string buf
        (Printf.sprintf "measured bottleneck: %s %s (node %d), %.4f s on critical paths (%.1f%%)\n"
           top.at_role top.at_name top.at_node top.at_seconds (100.0 *. top.at_share))
  | None -> Buffer.add_string buf "measured bottleneck: none (no traces finished)\n");
  (match t.predicted with
  | Some be ->
      Buffer.add_string buf
        (Printf.sprintf "model prediction:    %s\n"
           (Evaluate.describe_bottleneck_element be))
  | None -> ());
  (match matches t with
  | Some true -> Buffer.add_string buf "verdict: MATCH — measured top element agrees with the model's saturating element\n"
  | Some false -> Buffer.add_string buf "verdict: MISMATCH — measured top element differs from the model's saturating element\n"
  | None -> ());
  Buffer.contents buf

(* White -> red heat by critical-path share, as an HSV fill: hue 0,
   saturation scaled by share relative to the hottest element (so the
   top element is always fully saturated and the scale is comparable
   across runs). *)
let heat_dot ?(name = "attribution") t ~tree =
  let share_of = Hashtbl.create 16 in
  List.iter (fun r -> Hashtbl.replace share_of r.at_node r) t.rows;
  let max_share =
    List.fold_left (fun acc r -> Float.max acc r.at_share) 0.0 t.rows
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  Buffer.add_string buf "  rankdir=TB;\n";
  Buffer.add_string buf
    (Printf.sprintf "  label=\"critical-path heat (%d traces)\";\n" t.traces);
  let node_decl node shape =
    let id = Node.id node in
    let share, util =
      match Hashtbl.find_opt share_of id with
      | Some r -> (r.at_share, r.at_utilization)
      | None -> (0.0, None)
    in
    let sat = if max_share > 0.0 then share /. max_share else 0.0 in
    Buffer.add_string buf
      (Printf.sprintf
         "  n%d [shape=%s, style=filled, fillcolor=\"0.000 %.3f 1.000\", label=\"%s\\ncp %.1f%%%s\"];\n"
         id shape sat (Node.name node) (100.0 *. share)
         (match util with
         | Some u -> Printf.sprintf " · util %.2f" u
         | None -> ""))
  in
  let rec go = function
    | Tree.Server node -> node_decl node "ellipse"
    | Tree.Agent (node, children) ->
        node_decl node "box";
        List.iter
          (fun child ->
            Buffer.add_string buf
              (Printf.sprintf "  n%d -> n%d;\n" (Node.id node)
                 (Node.id (Tree.root_node child)));
            go child)
          children
  in
  go tree;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
