(** Label sets: the dimensions of a metric series.

    A label set is a canonically sorted list of [key = value] pairs, so
    two series with the same pairs in any order are the same series.  Key
    syntax follows Prometheus ([\[a-zA-Z_\]\[a-zA-Z0-9_\]*]); values are
    arbitrary strings (escaped on export). *)

type t = private (string * string) list

val empty : t

val v : (string * string) list -> t
(** Canonicalise: sort by key.  @raise Invalid_argument on a malformed
    key or a duplicate key. *)

val compare : t -> t -> int

val equal : t -> t -> bool

val pairs : t -> (string * string) list

val find : t -> string -> string option

val valid_name : string -> bool
(** Shared with metric names: [\[a-zA-Z_:\]\[a-zA-Z0-9_:\]*] (the colon
    is reserved for recording rules but accepted, as Prometheus does). *)

val to_prometheus : t -> string
(** [{k="v",k2="v2"}] with ["\\"], ["\""] and newlines escaped; the empty
    set renders as [""]. *)

val to_json : t -> string
(** A JSON object, [{"k":"v"}]; the empty set renders as [{}]. *)

val json_string : string -> string
(** A quoted, escaped JSON string literal (shared by the exporters). *)

val to_string : t -> string
(** Human rendering [k=v,k2=v2] (no escaping) for tables and errors. *)
