(** Critical-path decomposition of one request trace into the paper's
    Eqs. 1–5 cost terms.

    The critical path of a {!Request_trace.trace} is its parent chain
    (see {!Request_trace.critical_path}); this module classifies each
    segment by the element that paid for it — receive, send and compute
    time per node, wire latency to nobody — mirroring how Eqs. 1–4
    charge every message to both endpoint ports and Eqs. 3–5 charge the
    computations [Wreq], [Wrep(d)], [Wpre] and [Wapp] to their node. *)

type share = {
  s_node : int;  (** Platform node id; -1 = client machine / wire. *)
  s_recv : float;  (** Seconds of receive-port time on the path. *)
  s_send : float;  (** Seconds of send-port time on the path. *)
  s_wire : float;  (** Seconds of link latency (node -1 only). *)
  s_compute : float;  (** Seconds of Eqs. 3–5 computation. *)
}

val seconds : share -> float
(** Total of the four components. *)

val segments : Request_trace.trace -> Request_trace.span list
(** The critical path, head first (= {!Request_trace.critical_path}). *)

val by_element : Request_trace.trace -> share list
(** The path's time grouped per element, sorted by node id (the
    client/wire bucket -1 first).  On a fault-free trace the shares sum
    to {!Request_trace.duration} exactly up to float addition. *)

val eq_label : Request_trace.kind -> string
(** The model term a span kind realises, e.g. ["Wrep(d)/w (Eq. 3)"] or
    ["sreq/B (Eqs. 1-2)"]. *)

val render : Request_trace.trace -> string
(** Multi-line human rendering of one trace: the chain with per-segment
    durations, nodes and model terms, then the per-element summary. *)
