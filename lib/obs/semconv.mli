(** Semantic conventions: the metric names and label keys every
    instrumented layer shares, so exporters, the report and dashboards
    agree on spelling.  All durations are in seconds, all sizes in
    Mbit, matching the paper's units. *)

(** {1 Label keys} *)

val l_node : string
(** ["node"] — node id as a decimal string. *)

val l_level : string
(** ["level"] — hierarchy depth, root = 0. *)

val l_kind : string
(** ["kind"] — message kind: [sched_request] etc. *)

val l_role : string
(** ["role"] — element or endpoint role: [agent] / [server] / [client]. *)

val l_reason : string
(** ["reason"] — controller suppression reason. *)

val l_strategy : string
(** ["strategy"] — planner strategy name. *)

val l_alertname : string
(** ["alertname"] — alert-rule name on [alerts_series] samples. *)

val l_alertstate : string
(** ["alertstate"] — [pending] / [firing] on [alerts_series] samples. *)

val l_severity : string
(** ["severity"] — alert severity: [info] / [warning] / [critical]. *)

val l_component : string
(** ["component"] — Eqs. 1-5 cost component a drift rule watches. *)

val l_step : string
(** ["step"] — staged-rollout transition name on
    [rollout_transitions_total]. *)

val l_method : string
(** ["method"] — planning-server request method: [plan] / [replan] /
    [observe] / [stats] / [trace]. *)

val l_phase : string
(** ["phase"] — OCaml runtime phase name on [runtime_gc_pause_seconds]
    samples: [minor] / [major] / [major_slice] / [stw_leader] / ... *)

val l_domain : string
(** ["domain"] — worker-domain index as a decimal string. *)

val node_label : int -> string * string

val level_label : int -> string * string

(** {1 Middleware} *)

val messages_total : string
val message_mbit_total : string
val agent_request_compute_seconds : string
val agent_reply_compute_seconds : string
val server_prediction_seconds : string
val server_service_seconds : string
val server_backlog_seconds : string
val agent_inflight_requests : string

(** {1 Run-level} *)

val sched_latency_seconds : string
val response_seconds : string
val requests_issued_total : string
val requests_completed_total : string
val requests_lost_total : string
val node_utilization_ratio : string
val run_duration_seconds : string
val run_measured_throughput : string

(** {1 Controller} *)

val controller_replans_total : string
val controller_suppressed_total : string
val controller_migration_seconds : string
val controller_window_throughput : string
val controller_degraded_samples_total : string
val rollout_transitions_total : string

(** {1 Planner} *)

val planner_evaluations_total : string
val planner_plans_total : string

(** {1 Planning server} *)

val serve_requests_total : string
val serve_errors_total : string
val serve_cache_hits_total : string
val serve_cache_misses_total : string
val serve_cache_evictions_total : string
val serve_cache_invalidations_total : string
val serve_coalesced_total : string
val serve_inflight_requests : string
val serve_request_seconds : string
val serve_cache_hit_ratio : string
val serve_cache_eviction_age_seconds : string
val serve_traces_sampled_total : string
val serve_scrapes_total : string
val serve_journal_records_total : string
val serve_journal_bytes_total : string
val serve_otlp_exports_total : string

(** {1 OCaml runtime (Runtime_events)} *)

val runtime_gc_pause_seconds : string
val runtime_domain_busy_ratio : string
val runtime_events_total : string

(** {1 Monitor} *)

val model_predicted_rho : string
val model_rho_sched : string
val model_rho_service : string
val alive_nodes : string
val monitor_scrapes_total : string

val alerts_series : string
(** ["ALERTS"] — the Prometheus convention for alert-state series. *)

val help : string -> string
(** One-line HELP text for a known metric name; [""] otherwise. *)
