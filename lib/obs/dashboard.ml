type panel = { title : string; unit_ : string; series : (string * Rule.expr) list }

let panel ?(unit_ = "") title series = { title; unit_; series }

(* Plot geometry (viewBox units): a fixed frame so documents from
   different runs line up and the golden test can pin structure. *)
let vw = 720.
let vh = 170.
let px0 = 10.
let px1 = 640.
let py0 = 12.
let py1 = 120.

let palette =
  [| "#1f77b4"; "#d62728"; "#2ca02c"; "#9467bd"; "#ff7f0e"; "#8c564b" |]

let html_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let coord v = Printf.sprintf "%.2f" v

let short v =
  if Float.is_nan v then "-"
  else if Float.is_integer v && Float.abs v < 1e9 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.4g" v

let style =
  {|<style>
body { font-family: monospace; margin: 1.2em; background: #fff; color: #222; }
h1 { font-size: 1.2em; } h2 { font-size: 1em; margin: 0 0 .2em 0; }
.unit { color: #777; font-weight: normal; }
.panel { margin-bottom: 1.2em; }
table { border-collapse: collapse; margin-top: .4em; }
td, th { border: 1px solid #ccc; padding: .2em .6em; text-align: left; }
.sev-critical { color: #d62728; } .sev-warning { color: #b8860b; }
.sev-info { color: #1f77b4; }
.state-firing { color: #d62728; font-weight: bold; }
.state-pending { color: #b8860b; } .state-inactive { color: #777; }
</style>
|}

let render_panel buf ~timeseries ~xs ~xmin ~xspan ~bands ~spans p =
  Buffer.add_string buf
    (Printf.sprintf "<div class=\"panel\"><h2>%s%s</h2>\n"
       (html_escape p.title)
       (if p.unit_ = "" then ""
        else
          Printf.sprintf " <span class=\"unit\">(%s)</span>"
            (html_escape p.unit_)));
  Buffer.add_string buf
    (Printf.sprintf
       "<svg viewBox=\"0 0 %s %s\" width=\"%s\" height=\"%s\" role=\"img\">\n"
       (coord vw) (coord vh) (coord vw) (coord vh));
  Buffer.add_string buf
    (Printf.sprintf
       "<rect x=\"%s\" y=\"%s\" width=\"%s\" height=\"%s\" fill=\"#fafafa\" \
        stroke=\"#ccc\"/>\n"
       (coord px0) (coord py0)
       (coord (px1 -. px0))
       (coord (py1 -. py0)));
  let x_of t = px0 +. ((t -. xmin) /. xspan *. (px1 -. px0)) in
  (* translucent alert bands under the data *)
  List.iter
    (fun (fired, resolved) ->
      let xa = Float.max px0 (x_of fired) in
      let xb = Float.min px1 (x_of resolved) in
      if xb > xa then
        Buffer.add_string buf
          (Printf.sprintf
             "<rect class=\"alert-band\" x=\"%s\" y=\"%s\" width=\"%s\" \
              height=\"%s\" fill=\"#d62728\" fill-opacity=\"0.12\"/>\n"
             (coord xa) (coord py0)
             (coord (xb -. xa))
             (coord (py1 -. py0))))
    bands;
  (* labeled rollout-phase bands, visually distinct from alert bands *)
  List.iter
    (fun (label, start, stop) ->
      let xa = Float.max px0 (x_of start) in
      let xb = Float.min px1 (x_of stop) in
      if xb > xa then begin
        Buffer.add_string buf
          (Printf.sprintf
             "<rect class=\"phase-band\" x=\"%s\" y=\"%s\" width=\"%s\" \
              height=\"%s\" fill=\"#1f77b4\" fill-opacity=\"0.08\" \
              stroke=\"#1f77b4\" stroke-opacity=\"0.35\" \
              stroke-dasharray=\"3,2\"/>\n"
             (coord xa) (coord py0)
             (coord (xb -. xa))
             (coord (py1 -. py0)));
        Buffer.add_string buf
          (Printf.sprintf
             "<text x=\"%s\" y=\"%s\" font-size=\"8\" fill=\"#1f77b4\">%s</text>\n"
             (coord (xa +. 2.))
             (coord (py0 +. 8.))
             (html_escape label))
      end)
    spans;
  (* evaluate every series over the scrape instants; share one y range *)
  let evaluated =
    List.map
      (fun (legend, expr) ->
        let pts =
          List.filter_map
            (fun x ->
              match Timeseries.eval timeseries ~now:x expr with
              | Some v when (not (Float.is_nan v)) && Float.abs v < infinity ->
                  Some (x, v)
              | _ -> None)
            xs
        in
        (legend, pts))
      p.series
  in
  let ymin, ymax =
    List.fold_left
      (fun (lo, hi) (_, pts) ->
        List.fold_left
          (fun (lo, hi) (_, v) -> (Float.min lo v, Float.max hi v))
          (lo, hi) pts)
      (infinity, neg_infinity) evaluated
  in
  let ymin = if ymin = infinity then 0. else Float.min ymin 0. in
  let ymax = if ymax = neg_infinity then 1. else ymax in
  let yspan = if ymax -. ymin > 0. then ymax -. ymin else 1. in
  let y_of v = py1 -. ((v -. ymin) /. yspan *. (py1 -. py0)) in
  List.iteri
    (fun i (_, pts) ->
      if pts <> [] then begin
        let color = palette.(i mod Array.length palette) in
        let points =
          List.map (fun (x, v) -> coord (x_of x) ^ "," ^ coord (y_of v)) pts
          |> String.concat " "
        in
        Buffer.add_string buf
          (Printf.sprintf
             "<polyline fill=\"none\" stroke=\"%s\" stroke-width=\"1.5\" \
              points=\"%s\"/>\n"
             color points)
      end)
    evaluated;
  (* y-range labels and a per-series legend with last values *)
  Buffer.add_string buf
    (Printf.sprintf
       "<text x=\"%s\" y=\"%s\" font-size=\"10\" fill=\"#777\">%s</text>\n"
       (coord (px1 +. 6.)) (coord (py0 +. 8.)) (short ymax));
  Buffer.add_string buf
    (Printf.sprintf
       "<text x=\"%s\" y=\"%s\" font-size=\"10\" fill=\"#777\">%s</text>\n"
       (coord (px1 +. 6.)) (coord py1) (short ymin));
  List.iteri
    (fun i (legend, pts) ->
      let color = palette.(i mod Array.length palette) in
      let last =
        match List.rev pts with (_, v) :: _ -> short v | [] -> "-"
      in
      Buffer.add_string buf
        (Printf.sprintf
           "<text x=\"%s\" y=\"%s\" font-size=\"10\" fill=\"%s\">%s = %s</text>\n"
           (coord (px0 +. (float_of_int i *. 160.)))
           (coord (py1 +. 14.))
           color (html_escape legend) last))
    evaluated;
  Buffer.add_string buf "</svg></div>\n"

let alert_table buf alerts =
  Buffer.add_string buf "<h2>alerts</h2>\n<table class=\"alerts\">\n";
  Buffer.add_string buf
    "<tr><th>rule</th><th>severity</th><th>state</th><th>since</th>\
     <th>transitions</th></tr>\n";
  let count_transitions name =
    List.length
      (List.filter
         (fun (tr : Alert.transition) -> tr.Alert.rule.Rule.name = name)
         (Alert.transitions alerts))
  in
  List.iter
    (fun ((rule : Rule.t), state) ->
      let state_name, since =
        match (state : Alert.state) with
        | Alert.Inactive -> ("inactive", "-")
        | Alert.Pending s -> ("pending", short s)
        | Alert.Firing s -> ("firing", short s)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "<tr><td>%s</td><td class=\"sev-%s\">%s</td><td \
            class=\"state-%s\">%s</td><td>%s</td><td>%d</td></tr>\n"
           (html_escape rule.Rule.name)
           (Rule.severity_name rule.Rule.severity)
           (Rule.severity_name rule.Rule.severity)
           state_name state_name since
           (count_transitions rule.Rule.name)))
    (Alert.states alerts);
  Buffer.add_string buf "</table>\n"

let render ?(title = "adept monitor") ~timeseries ?alerts ?(spans = []) panels =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"/>\n";
  Buffer.add_string buf
    (Printf.sprintf "<title>%s</title>\n" (html_escape title));
  Buffer.add_string buf style;
  Buffer.add_string buf "</head><body>\n";
  Buffer.add_string buf (Printf.sprintf "<h1>%s</h1>\n" (html_escape title));
  let xs = Timeseries.scrape_times timeseries in
  (match xs with
  | [] -> Buffer.add_string buf "<p>no scrapes recorded</p>\n"
  | x0 :: _ ->
      let xmin = x0 in
      let xmax = List.fold_left Float.max xmin xs in
      let xspan = if xmax -. xmin > 0. then xmax -. xmin else 1. in
      let bands =
        match alerts with
        | None -> []
        | Some a ->
            List.map
              (fun (_, fired, resolved) ->
                (fired, Option.value resolved ~default:xmax))
              (Alert.firing_intervals a)
      in
      let spans =
        List.map
          (fun (label, start, stop) ->
            (label, start, Option.value stop ~default:xmax))
          spans
      in
      Buffer.add_string buf
        (Printf.sprintf "<p>%d scrapes over [%s, %s] s</p>\n" (List.length xs)
           (short xmin) (short xmax));
      List.iter
        (render_panel buf ~timeseries ~xs ~xmin ~xspan ~bands ~spans)
        panels);
  (match alerts with None -> () | Some a -> alert_table buf a);
  Buffer.add_string buf "</body></html>\n";
  Buffer.contents buf
