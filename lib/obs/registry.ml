type instrument =
  | I_counter of Counter.t
  | I_gauge of Gauge.t
  | I_histogram of Histogram.t

type kind = K_counter | K_gauge | K_histogram

let kind_name = function
  | K_counter -> "counter"
  | K_gauge -> "gauge"
  | K_histogram -> "histogram"

type fam = {
  f_kind : kind;
  f_help : string;
  mutable f_series : (Label.t * instrument) list;
}

type t = { families : (string, fam) Hashtbl.t }

let create () = { families = Hashtbl.create 32 }

let family t ~name ~help ~kind =
  if not (Label.valid_name name) then
    invalid_arg ("Registry: malformed metric name " ^ name);
  match Hashtbl.find_opt t.families name with
  | Some f ->
      if f.f_kind <> kind then
        invalid_arg
          (Printf.sprintf "Registry: %s already registered as a %s, not a %s"
             name (kind_name f.f_kind) (kind_name kind));
      f
  | None ->
      let f = { f_kind = kind; f_help = help; f_series = [] } in
      Hashtbl.add t.families name f;
      f

let series f ~labels ~make =
  match List.find_opt (fun (l, _) -> Label.equal l labels) f.f_series with
  | Some (_, i) -> i
  | None ->
      let i = make () in
      f.f_series <- (labels, i) :: f.f_series;
      i

let counter t ?(help = "") ?(labels = Label.empty) name =
  let f = family t ~name ~help ~kind:K_counter in
  match series f ~labels ~make:(fun () -> I_counter (Counter.create ())) with
  | I_counter c -> c
  | _ -> assert false

let gauge t ?(help = "") ?(labels = Label.empty) name =
  let f = family t ~name ~help ~kind:K_gauge in
  match series f ~labels ~make:(fun () -> I_gauge (Gauge.create ())) with
  | I_gauge g -> g
  | _ -> assert false

let histogram t ?(help = "") ?(labels = Label.empty) ?alpha ?min_value ?max_value
    name =
  let f = family t ~name ~help ~kind:K_histogram in
  let make () =
    I_histogram (Histogram.create ?alpha ?min_value ?max_value ())
  in
  match series f ~labels ~make with I_histogram h -> h | _ -> assert false

type value =
  | Counter of float
  | Gauge of float
  | Histogram of Histogram.snapshot

type family = {
  name : string;
  help : string;
  series : (Label.t * value) list;
}

let snapshot_instrument = function
  | I_counter c -> Counter (Counter.value c)
  | I_gauge g -> Gauge (Gauge.value g)
  | I_histogram h -> Histogram (Histogram.snapshot h)

let snapshot_family name f =
  let series =
    f.f_series
    |> List.map (fun (l, i) -> (l, snapshot_instrument i))
    |> List.sort (fun (a, _) (b, _) -> Label.compare a b)
  in
  { name; help = f.f_help; series }

let snapshot t =
  Hashtbl.fold (fun name f acc -> snapshot_family name f :: acc) t.families []
  |> List.sort (fun a b -> String.compare a.name b.name)

let find t name =
  Option.map (snapshot_family name) (Hashtbl.find_opt t.families name)

let num_series t =
  Hashtbl.fold (fun _ f acc -> acc + List.length f.f_series) t.families 0
