type t = { mutable value : float }

let create () = { value = 0. }

let set t v = t.value <- v

let add t v = t.value <- t.value +. v

let value t = t.value
