(** Typed alert rules over registry time series.

    A rule compares two {!type:expr} expressions every evaluation tick;
    when the comparison holds continuously for {!field:for_duration}
    simulated seconds the alert fires (Prometheus [for:] semantics).
    Expressions read from a {!Timeseries} store — they never touch the
    registry directly — so every signal a rule can see is bounded by the
    store's retention window.

    Three families cover the monitoring taxonomy:
    - {e threshold}: [last(series) > bound];
    - {e for-duration}: any rule with [for_duration > 0];
    - {e two-window burn rate}: [min(rate(s[short]), rate(s[long])) > bound]
      — both the fast and the slow window must agree, which rides out
      short spikes without missing sustained burn ({!burn_rate}). *)

type severity = Info | Warning | Critical

val severity_name : severity -> string
(** ["info"] / ["warning"] / ["critical"]. *)

(** How a selector reduces the matched series to one float per scrape:
    [Value] sums counter/gauge values; [Count]/[Sum]/[Quantile q] apply
    to histograms (snapshots are merged across matched series first). *)
type stat = Value | Count | Sum | Quantile of float

type selector = private {
  sel_metric : string;  (** registry family name *)
  sel_labels : Label.t;  (** label-subset match; [empty] matches all *)
  sel_stat : stat;
}

val selector : ?labels:Label.t -> ?stat:stat -> string -> selector
(** @raise Invalid_argument on a malformed metric name or a [Quantile]
    outside [\[0, 100\]]. *)

val with_stat : selector -> stat -> selector
(** Same metric and matcher, different reduction. *)

val selector_key : selector -> string
(** Canonical identity, e.g. [adept_messages_total{kind="sched"}/p95] —
    two selectors with equal keys share one ring in a time-series store. *)

type expr =
  | Const of float
  | Last of selector  (** most recent scraped sample *)
  | Rate of selector * float
      (** per-second increase over a trailing window (counters) *)
  | Delta of selector * float  (** absolute increase over the window *)
  | Window_mean of selector * float
      (** histogram mean over the window: delta sum / delta count *)
  | Abs of expr
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr  (** division by zero evaluates to "no data" *)
  | Min of expr * expr
  | Max of expr * expr

type cmp = Gt | Lt

type t = private {
  name : string;
  severity : severity;
  for_duration : float;
  lhs : expr;
  cmp : cmp;
  rhs : expr;
}

val v :
  ?severity:severity -> ?for_duration:float -> string -> expr -> cmp -> expr -> t
(** [v name lhs cmp rhs] with [severity] defaulting to [Warning] and
    [for_duration] to [0.] (fires on the first true evaluation).
    @raise Invalid_argument on an invalid name
    ([\[A-Za-z_\]\[A-Za-z0-9_.:/-\]*]), a negative/NaN [for_duration],
    or a non-positive expression window. *)

val threshold :
  ?severity:severity -> ?for_duration:float -> string -> selector ->
  cmp -> float -> t
(** [threshold name sel cmp bound] = [v name (Last sel) cmp (Const bound)]. *)

val deviation :
  ?severity:severity -> ?for_duration:float -> string ->
  measured:expr -> reference:expr -> tolerance:float -> t
(** Fires when [|measured / reference - 1| > tolerance] — relative drift
    of a measurement from a model prediction. *)

val burn_rate :
  ?severity:severity -> string -> selector -> short:float -> long:float ->
  bound:float -> t
(** Two-window burn rate: [min(rate(sel[short]), rate(sel[long])) > bound].
    @raise Invalid_argument unless [0 < short < long]. *)

val selectors : t -> selector list
(** Every selector the rule reads, deduplicated by {!selector_key};
    [Window_mean] contributes its [Sum] and [Count] sub-selectors. *)

val max_window : t -> float
(** Longest trailing window any sub-expression needs ([0.] if none) —
    the retention floor for the backing time-series store. *)

val expr_to_string : expr -> string

val to_string : t -> string
(** Renders in the concrete syntax {!parse} accepts. *)

val parse : string -> (t list, string) result
(** Parse a rules file.  One rule per line:
    {v alert NAME [severity=info|warning|critical] [for=SECONDS] when EXPR (>|<) EXPR v}
    Blank lines and [#] comments are skipped.  Expression grammar:
    [+ -] then [* /] (left-associative), parentheses, numbers, and the
    functions [last(s)], [count(s)], [sum(s)], [p50(s)], [p95(s)],
    [p99(s)], [quantile(s, q)], [rate(s[W])], [delta(s[W])],
    [mean(s[W])], [abs(e)], [min(e, e)], [max(e, e)] where [s] is
    [metric_name] or [metric_name{k="v",...}] and [W] is the trailing
    window in seconds.  Errors carry the line number. *)
