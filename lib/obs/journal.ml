(* The crash-safe flight recorder: a directory of segment files, each a
   magic header followed by length-prefixed CRC-checked records.  Every
   append is flushed, so after a crash the only possible damage is a
   torn tail — which [open_] (and the writer, before appending) detects
   by CRC and truncates, counting the loss instead of hiding it. *)

module Rt = Request_trace

type scrape = {
  j_at : float;
  j_uptime : float;
  j_plans : int;
  j_replans : int;
  j_observes : int;
  j_stats : int;
  j_errors : int;
  j_coalesced : int;
  j_cache_hits : int;
  j_cache_misses : int;
  j_cache_evictions : int;
  j_cache_invalidations : int;
  j_inflight : int;
  j_latency_p50 : float;
  j_latency_p99 : float;
  j_hit_ratio : float;
  j_gc_pause_p99 : float;
  j_traces_sampled : int;
  j_busy : float list;
}

type record =
  | Meta of {
      m_at : float;
      m_sample_rate : float;
      m_max_traces : int;
      m_max_spans : int;
      m_scrape_interval : float;
      m_retention : float;
      m_workers : int;
      m_shards : int;
    }
  | Begin_request of { b_at : float; b_trace : int; b_sampled : bool }
  | Finish of {
      f_at : float;
      f_trace : int;
      f_issued : float;
      f_conn : int;
      f_spans : Rt.span array option;  (* None = span-overflowed, dropped *)
      f_dropped_spans : int;  (* store total after this finish *)
    }
  | Scrape of scrape
  | Alert_edge of {
      a_at : float;
      a_name : string;
      a_severity : string;
      a_state : string;
      a_value : float;
    }
  | Access of { x_at : float; x_line : string }
  | Dump_marker of { d_at : float }

(* ------------------------------------------------------------------ *)
(* CRC32 (IEEE 802.3, the zlib polynomial), table-driven.             *)

(* Unboxed native ints throughout — the CRC is the hot path of every
   append, and [Int32] arithmetic boxes on each operation. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 <> 0 then c := 0xEDB88320 lxor (!c lsr 1)
           else c := !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = 0 to String.length s - 1 do
    c :=
      Array.unsafe_get table ((!c lxor Char.code (String.unsafe_get s i)) land 0xff)
      lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* Payload codec: tag byte, then little-endian fixed-width fields.    *)

let magic = "ADJ1"
let max_record_bytes = 16 * 1024 * 1024

let put_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))
let put_i64 buf v = Buffer.add_int64_le buf (Int64.of_int v)
let put_f64 buf v = Buffer.add_int64_le buf (Int64.bits_of_float v)
let put_bool buf v = put_u8 buf (if v then 1 else 0)

let put_str buf s =
  put_i64 buf (String.length s);
  Buffer.add_string buf s

type cursor = { data : string; mutable pos : int }

exception Bad_record

let need cur n = if cur.pos + n > String.length cur.data then raise Bad_record

let get_u8 cur =
  need cur 1;
  let v = Char.code cur.data.[cur.pos] in
  cur.pos <- cur.pos + 1;
  v

let get_i64 cur =
  need cur 8;
  let v = Int64.to_int (String.get_int64_le cur.data cur.pos) in
  cur.pos <- cur.pos + 8;
  v

let get_f64 cur =
  need cur 8;
  let v = Int64.float_of_bits (String.get_int64_le cur.data cur.pos) in
  cur.pos <- cur.pos + 8;
  v

let get_bool cur = get_u8 cur <> 0

let get_str cur =
  let n = get_i64 cur in
  if n < 0 || n > max_record_bytes then raise Bad_record;
  need cur n;
  let s = String.sub cur.data cur.pos n in
  cur.pos <- cur.pos + n;
  s

let tag_of = function
  | Meta _ -> 1
  | Begin_request _ -> 2
  | Finish _ -> 3
  | Scrape _ -> 4
  | Alert_edge _ -> 5
  | Access _ -> 6
  | Dump_marker _ -> 7

let encode r =
  let buf = Buffer.create 64 in
  put_u8 buf (tag_of r);
  (match r with
  | Meta m ->
      put_f64 buf m.m_at;
      put_f64 buf m.m_sample_rate;
      put_i64 buf m.m_max_traces;
      put_i64 buf m.m_max_spans;
      put_f64 buf m.m_scrape_interval;
      put_f64 buf m.m_retention;
      put_i64 buf m.m_workers;
      put_i64 buf m.m_shards
  | Begin_request b ->
      put_f64 buf b.b_at;
      put_i64 buf b.b_trace;
      put_bool buf b.b_sampled
  | Finish f ->
      put_f64 buf f.f_at;
      put_i64 buf f.f_trace;
      put_f64 buf f.f_issued;
      put_i64 buf f.f_conn;
      put_i64 buf f.f_dropped_spans;
      (match f.f_spans with
      | None -> put_u8 buf 0
      | Some spans ->
          put_u8 buf 1;
          put_i64 buf (Array.length spans);
          Array.iter
            (fun (sp : Rt.span) ->
              put_i64 buf sp.Rt.sp_id;
              put_i64 buf sp.Rt.sp_parent;
              put_u8 buf (Rt.kind_code sp.Rt.sp_kind);
              put_i64 buf sp.Rt.sp_node;
              put_f64 buf sp.Rt.sp_start;
              put_f64 buf sp.Rt.sp_stop)
            spans)
  | Scrape s ->
      put_f64 buf s.j_at;
      put_f64 buf s.j_uptime;
      put_i64 buf s.j_plans;
      put_i64 buf s.j_replans;
      put_i64 buf s.j_observes;
      put_i64 buf s.j_stats;
      put_i64 buf s.j_errors;
      put_i64 buf s.j_coalesced;
      put_i64 buf s.j_cache_hits;
      put_i64 buf s.j_cache_misses;
      put_i64 buf s.j_cache_evictions;
      put_i64 buf s.j_cache_invalidations;
      put_i64 buf s.j_inflight;
      put_f64 buf s.j_latency_p50;
      put_f64 buf s.j_latency_p99;
      put_f64 buf s.j_hit_ratio;
      put_f64 buf s.j_gc_pause_p99;
      put_i64 buf s.j_traces_sampled;
      put_i64 buf (List.length s.j_busy);
      List.iter (put_f64 buf) s.j_busy
  | Alert_edge a ->
      put_f64 buf a.a_at;
      put_str buf a.a_name;
      put_str buf a.a_severity;
      put_str buf a.a_state;
      put_f64 buf a.a_value
  | Access x ->
      put_f64 buf x.x_at;
      put_str buf x.x_line
  | Dump_marker d -> put_f64 buf d.d_at);
  Buffer.contents buf

let decode payload =
  let cur = { data = payload; pos = 0 } in
  match get_u8 cur with
  | 1 ->
      let m_at = get_f64 cur in
      let m_sample_rate = get_f64 cur in
      let m_max_traces = get_i64 cur in
      let m_max_spans = get_i64 cur in
      let m_scrape_interval = get_f64 cur in
      let m_retention = get_f64 cur in
      let m_workers = get_i64 cur in
      let m_shards = get_i64 cur in
      Some
        (Meta
           {
             m_at;
             m_sample_rate;
             m_max_traces;
             m_max_spans;
             m_scrape_interval;
             m_retention;
             m_workers;
             m_shards;
           })
  | 2 ->
      let b_at = get_f64 cur in
      let b_trace = get_i64 cur in
      let b_sampled = get_bool cur in
      Some (Begin_request { b_at; b_trace; b_sampled })
  | 3 ->
      let f_at = get_f64 cur in
      let f_trace = get_i64 cur in
      let f_issued = get_f64 cur in
      let f_conn = get_i64 cur in
      let f_dropped_spans = get_i64 cur in
      let f_spans =
        match get_u8 cur with
        | 0 -> None
        | _ ->
            let n = get_i64 cur in
            if n < 0 || n > max_record_bytes then raise Bad_record;
            Some
              (Array.init n (fun _ ->
                   let sp_id = get_i64 cur in
                   let sp_parent = get_i64 cur in
                   let code = get_u8 cur in
                   let sp_kind =
                     match Rt.kind_of_code code with
                     | Some k -> k
                     | None -> raise Bad_record
                   in
                   let sp_node = get_i64 cur in
                   let sp_start = get_f64 cur in
                   let sp_stop = get_f64 cur in
                   { Rt.sp_id; sp_parent; sp_kind; sp_node; sp_start; sp_stop }))
      in
      Some (Finish { f_at; f_trace; f_issued; f_conn; f_spans; f_dropped_spans })
  | 4 ->
      let j_at = get_f64 cur in
      let j_uptime = get_f64 cur in
      let j_plans = get_i64 cur in
      let j_replans = get_i64 cur in
      let j_observes = get_i64 cur in
      let j_stats = get_i64 cur in
      let j_errors = get_i64 cur in
      let j_coalesced = get_i64 cur in
      let j_cache_hits = get_i64 cur in
      let j_cache_misses = get_i64 cur in
      let j_cache_evictions = get_i64 cur in
      let j_cache_invalidations = get_i64 cur in
      let j_inflight = get_i64 cur in
      let j_latency_p50 = get_f64 cur in
      let j_latency_p99 = get_f64 cur in
      let j_hit_ratio = get_f64 cur in
      let j_gc_pause_p99 = get_f64 cur in
      let j_traces_sampled = get_i64 cur in
      let n = get_i64 cur in
      if n < 0 || n > 65536 then raise Bad_record;
      let j_busy = List.init n (fun _ -> get_f64 cur) in
      Some
        (Scrape
           {
             j_at;
             j_uptime;
             j_plans;
             j_replans;
             j_observes;
             j_stats;
             j_errors;
             j_coalesced;
             j_cache_hits;
             j_cache_misses;
             j_cache_evictions;
             j_cache_invalidations;
             j_inflight;
             j_latency_p50;
             j_latency_p99;
             j_hit_ratio;
             j_gc_pause_p99;
             j_traces_sampled;
             j_busy;
           })
  | 5 ->
      let a_at = get_f64 cur in
      let a_name = get_str cur in
      let a_severity = get_str cur in
      let a_state = get_str cur in
      let a_value = get_f64 cur in
      Some (Alert_edge { a_at; a_name; a_severity; a_state; a_value })
  | 6 ->
      let x_at = get_f64 cur in
      let x_line = get_str cur in
      Some (Access { x_at; x_line })
  | 7 -> Some (Dump_marker { d_at = get_f64 cur })
  | _ -> None (* unknown tag: a future record kind, skip it *)

(* ------------------------------------------------------------------ *)
(* Segment files.                                                     *)

let segment_name seq = Printf.sprintf "seg-%06d.adj" seq

let segment_seq name =
  try Scanf.sscanf name "seg-%06d.adj%!" (fun n -> Some n)
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

let list_segments dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map (fun name ->
         match segment_seq name with
         | Some seq -> Some (seq, Filename.concat dir name)
         | None -> None)
  |> List.sort compare

(* Scan a segment file, returning the decoded records, the byte offset
   of the end of the last whole valid record (the truncation point for
   torn tails), and how many payload bytes past it were lost. *)
let scan_segment path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let size = in_channel_length ic in
      let data = really_input_string ic size in
      if size < String.length magic || String.sub data 0 (String.length magic) <> magic
      then (`Bad_magic, [], 0, size)
      else begin
        let records = ref [] in
        let pos = ref (String.length magic) in
        let valid_end = ref !pos in
        let torn = ref false in
        (try
           while !pos + 8 <= size do
             let len = Int32.to_int (String.get_int32_le data !pos) in
             let crc =
               Int32.to_int (String.get_int32_le data (!pos + 4)) land 0xFFFFFFFF
             in
             if len < 1 || len > max_record_bytes || !pos + 8 + len > size then begin
               torn := true;
               raise Exit
             end;
             let payload = String.sub data (!pos + 8) len in
             if crc32 payload <> crc then begin
               torn := true;
               raise Exit
             end;
             (match decode payload with
             | Some r -> records := r :: !records
             | None | (exception Bad_record) -> () (* unknown kind: skip *));
             pos := !pos + 8 + len;
             valid_end := !pos
           done;
           if !pos < size then torn := true
         with Exit -> ());
        let status = if !torn then `Torn else `Ok in
        (status, List.rev !records, !valid_end, size - !valid_end)
      end)

type read_stats = {
  r_segments : int;
  r_records : int;
  r_truncated : int;  (* segments with a torn or corrupt tail *)
  r_bytes_lost : int;
}

type reader = { r_recs : record list; r_stats : read_stats }

let records rd = rd.r_recs
let stats rd = rd.r_stats

let open_ path =
  if not (Sys.file_exists path) then Error (path ^ ": no such journal")
  else begin
    let segments =
      if Sys.is_directory path then List.map snd (list_segments path)
      else [ path ]
    in
    if segments = [] then Error (path ^ ": no journal segments")
    else begin
      let recs = ref [] and n = ref 0 and torn = ref 0 and lost = ref 0 in
      List.iter
        (fun seg ->
          let status, rs, _, bytes_lost = scan_segment seg in
          (match status with
          | `Ok -> ()
          | `Torn | `Bad_magic ->
              incr torn;
              lost := !lost + bytes_lost);
          n := !n + List.length rs;
          recs := List.rev_append rs !recs)
        segments;
      Ok
        {
          r_recs = List.rev !recs;
          r_stats =
            {
              r_segments = List.length segments;
              r_records = !n;
              r_truncated = !torn;
              r_bytes_lost = !lost;
            };
        }
    end
  end

(* ------------------------------------------------------------------ *)
(* Writer.                                                            *)

type writer = {
  dir : string;
  segment_bytes : int;
  max_segments : int;
  mutable seq : int;
  mutable oc : out_channel;
  mutable cur_bytes : int;
  mutable n_records : int;
  mutable n_bytes : int;
  mutable closed : bool;
}

let default_segment_bytes = 4 * 1024 * 1024
let default_max_segments = 8

let open_segment path =
  let exists = Sys.file_exists path in
  let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
  if not exists then begin
    output_string oc magic;
    flush oc
  end;
  oc

let prune w =
  let segs = list_segments w.dir in
  let excess = List.length segs - w.max_segments in
  if excess > 0 then
    List.iteri
      (fun i (_, path) -> if i < excess then try Sys.remove path with Sys_error _ -> ())
      segs

let create ?(segment_bytes = default_segment_bytes)
    ?(max_segments = default_max_segments) dir =
  if segment_bytes < 4096 then
    invalid_arg "Journal.create: segment_bytes must be >= 4096";
  if max_segments < 1 then invalid_arg "Journal.create: max_segments must be >= 1";
  try
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
    else if not (Sys.is_directory dir) then failwith (dir ^ ": not a directory");
    let seq, path, offset =
      match List.rev (list_segments dir) with
      | [] -> (0, Filename.concat dir (segment_name 0), 0)
      | (seq, path) :: _ ->
          (* crash recovery: truncate the newest segment's torn tail so
             the next append lands after the last whole record *)
          let status, _, valid_end, _ = scan_segment path in
          (match status with
          | `Ok -> ()
          | `Torn ->
              (* rewrite the valid prefix: dependency-free truncation *)
              let ic = open_in_bin path in
              let keep = really_input_string ic valid_end in
              close_in ic;
              let oc = open_out_bin path in
              output_string oc keep;
              close_out oc
          | `Bad_magic -> Sys.remove path);
          if status = `Bad_magic then (seq, path, 0)
          else (seq, path, valid_end)
    in
    let oc = open_segment path in
    let cur_bytes = if offset > 0 then offset else String.length magic in
    Ok
      {
        dir;
        segment_bytes;
        max_segments;
        seq;
        oc;
        cur_bytes;
        n_records = 0;
        n_bytes = 0;
        closed = false;
      }
  with Sys_error e | Failure e -> Error e

let rotate w =
  close_out_noerr w.oc;
  w.seq <- w.seq + 1;
  let path = Filename.concat w.dir (segment_name w.seq) in
  w.oc <- open_segment path;
  w.cur_bytes <- String.length magic;
  prune w

let append w r =
  if w.closed then invalid_arg "Journal.append: writer is closed";
  let payload = encode r in
  let framed = 8 + String.length payload in
  if w.cur_bytes > String.length magic && w.cur_bytes + framed > w.segment_bytes
  then rotate w;
  let header = Bytes.create 8 in
  Bytes.set_int32_le header 0 (Int32.of_int (String.length payload));
  Bytes.set_int32_le header 4 (Int32.of_int (crc32 payload));
  output_bytes w.oc header;
  output_string w.oc payload;
  flush w.oc;
  w.cur_bytes <- w.cur_bytes + framed;
  w.n_records <- w.n_records + 1;
  w.n_bytes <- w.n_bytes + framed;
  framed

let records_written w = w.n_records
let bytes_written w = w.n_bytes
let directory w = w.dir

let close w =
  if not w.closed then begin
    w.closed <- true;
    close_out_noerr w.oc
  end
