(** A self-contained static HTML dashboard.

    Panels of sparklines are rendered as inline SVG polylines — no
    JavaScript, no external stylesheets, fonts or images — so the
    emitted document is a single portable artifact (CI uploads it
    as-is).  Each panel evaluates a set of {!Rule.expr} series at every
    retained scrape instant of a {!Timeseries} store; when an {!Alert}
    engine is supplied, its firing intervals are drawn as translucent
    bands across every panel and its current states listed in a table.

    Rendering is deterministic: identical stores produce byte-identical
    documents (relied on by the structural golden test). *)

type panel

val panel : ?unit_:string -> string -> (string * Rule.expr) list -> panel
(** [panel ?unit_ title series] — [series] pairs a legend string with
    the expression to plot. *)

val render :
  ?title:string -> timeseries:Timeseries.t -> ?alerts:Alert.t ->
  ?spans:(string * float * float option) list ->
  panel list -> string
(** The complete HTML document.  [spans] draws labeled phase bands
    (label, start, end) across every panel — visually distinct from the
    alert bands — e.g. a staged rollout's canary-migration / bake /
    promote / rollback intervals; an open span ([None]) extends to the
    last scrape. *)
