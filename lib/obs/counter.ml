(* Monotone counters.  [inc] with a negative amount is rejected so the
   exported series stay monotone, as Prometheus requires. *)

type t = { mutable value : float }

let create () = { value = 0. }

let inc ?(by = 1.) t =
  if by < 0. then invalid_arg "Counter.inc: negative increment";
  t.value <- t.value +. by

let value t = t.value
