(** Retrospective query over a {!Journal}: rebuild the live
    observability exports for a past window.

    The journal records the exact inputs the live exporters consumed —
    finished traces in finish order, alert transitions, rendered
    access-log lines, scrape summaries — and the exporters themselves
    are deterministic, so replaying a journal prefix through the same
    code reproduces the live documents byte-for-byte.  In particular,
    cutting {!At_dump} yields the very bytes a live [adept query
    trace] dump returned at that moment (pinned in tests and CI). *)

(** Where to stop replaying. *)
type cut =
  | To_end  (** Every recovered record. *)
  | Until of float  (** Records with timestamp [<= t]. *)
  | At_dump of int
      (** The state at the [n]-th (1-based) {!Journal.record.Dump_marker};
          [0] (or any non-positive [n]) means the last one.  This is
          the cut that reproduces a live dump's bytes. *)

type t = {
  rp_meta : Journal.record option;  (** The [Meta] record, if present. *)
  rp_chrome : string;  (** Chrome trace JSON — live-dump byte-identical. *)
  rp_alerts : string;  (** Alert timeline JSONL — live byte-identical. *)
  rp_access : string;  (** Access-log lines, byte-verbatim. *)
  rp_last_scrape : Journal.scrape option;  (** Last scrape before the cut. *)
  rp_seen : int;
  rp_sampled : int;
  rp_finished : int;
  rp_retained : int;
  rp_dropped : int;
  rp_dropped_spans : int;
  rp_alert_edges : int;
  rp_firing : string list;  (** Alerts in state ["firing"] at the cut. *)
  rp_window : (float * float) option;
      (** First and last replayed record timestamps. *)
}

val run : ?cut:cut -> Journal.record list -> t
(** Replay a journal's records (as {!Journal.records} returns them)
    up to [cut] (default {!To_end}). *)

val summary : ?stats:Journal.read_stats -> t -> string
(** An [adept top]-style plain-text summary of the replayed window:
    request/latency/cache counters from the last scrape, trace and
    alert totals, and (when [stats] is given) the journal's segment
    and torn-tail accounting. *)
