(** Gauges: values that can go up and down (queue depth, utilization). *)

type t

val create : unit -> t

val set : t -> float -> unit

val add : t -> float -> unit
(** Signed increment, for occupancy-style gauges. *)

val value : t -> float
