type t =
  | Manual of { mutable current : float }
  | Source of { read : unit -> float; mutable last : float }

let manual ?(start = 0.0) () =
  if Float.is_nan start then invalid_arg "Clock.manual: start must not be NaN";
  Manual { current = start }

let source read = Source { read; last = neg_infinity }

let now = function
  | Manual m -> m.current
  | Source s ->
      (* Clamp rather than raise: a stepped wall clock must never take
         the scrape loop down, only stall the series until real time
         catches back up. *)
      let v = s.read () in
      if v > s.last then s.last <- v;
      s.last

let advance t by =
  match t with
  | Source _ -> invalid_arg "Clock.advance: source clocks advance themselves"
  | Manual m ->
      if Float.is_nan by || by < 0.0 then
        invalid_arg "Clock.advance: delta must be >= 0";
      m.current <- m.current +. by

let set t at =
  match t with
  | Source _ -> invalid_arg "Clock.set: source clocks advance themselves"
  | Manual m ->
      if Float.is_nan at || at < m.current then
        invalid_arg "Clock.set: time must not decrease";
      m.current <- at

let is_manual = function Manual _ -> true | Source _ -> false

(* For worker domains: a plain reading function with no shared mutable
   clamp state, so concurrent readers race on nothing.  Manual clocks
   hand out the current value (tests drive those single-domain). *)
let raw = function
  | Manual m -> fun () -> m.current
  | Source s -> s.read
