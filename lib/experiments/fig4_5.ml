module Table = Adept_util.Table
module Csv = Adept_util.Csv

type result = {
  series_one : (int * float) list;
  series_two : (int * float) list;
  predicted_one : float;
  predicted_two : float;
  measured_one : float;
  measured_two : float;
  speedup_predicted : float;
  speedup_measured : float;
}

let dgemm = 200

let peak series = List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 series

let predicted ~servers =
  let platform = Adept_platform.Generator.grid5000_lyon ~n:(servers + 1) () in
  let nodes = Adept_platform.Platform.nodes platform in
  let tree = Adept_hierarchy.Tree.star (List.hd nodes) (List.tl nodes) in
  Adept.Evaluate.rho_on Common.params ~platform
    ~wapp:Adept_workload.Dgemm.(mflops (make dgemm))
    tree

let run (ctx : Common.context) =
  let clients, warmup, duration =
    match ctx.fidelity with
    | Common.Quick -> ([ 1; 10; 30 ], 1.0, 2.0)
    | Common.Full -> ([ 1; 2; 5; 10; 25; 50; 100; 200; 300 ], 2.0, 4.0)
  in
  let series servers =
    Common.measure_series
      (Common.star_scenario ~dgemm ~servers ~seed:ctx.seed ())
      ~clients ~warmup ~duration
  in
  let series_one = series 1 and series_two = series 2 in
  let predicted_one = predicted ~servers:1 and predicted_two = predicted ~servers:2 in
  let measured_one = peak series_one and measured_two = peak series_two in
  {
    series_one;
    series_two;
    predicted_one;
    predicted_two;
    measured_one;
    measured_two;
    speedup_predicted = predicted_two /. predicted_one;
    speedup_measured = measured_two /. measured_one;
  }

let report _ctx r =
  let fig4 =
    List.fold_left
      (fun table ((c, one), (_, two)) ->
        Table.add_row table
          [ string_of_int c; Table.cell_float one; Table.cell_float two ])
      (Table.create [ "clients"; "1 SeD (req/s)"; "2 SeDs (req/s)" ])
      (List.combine r.series_one r.series_two)
  in
  let fig5 =
    Table.create [ "deployment"; "predicted (req/s)"; "measured (req/s)" ]
    |> (fun t ->
         Table.add_row t
           [ "1 SeD"; Table.cell_float r.predicted_one; Table.cell_float r.measured_one ])
    |> fun t ->
    Table.add_row t
      [ "2 SeDs"; Table.cell_float r.predicted_two; Table.cell_float r.measured_two ]
  in
  let csv =
    List.fold_left
      (fun csv ((c, one), (_, two)) -> Csv.add_floats csv [ float_of_int c; one; two ])
      (Csv.create [ "clients"; "one_sed"; "two_seds" ])
      (List.combine r.series_one r.series_two)
  in
  {
    Common.id = "fig4-5";
    title = "Star hierarchies, DGEMM 200x200 (server-limited regime)";
    paper_reference =
      "Fig. 4/5: predicted 45 vs 90 req/s, measured 35 vs 70 req/s — the second \
       server roughly doubles throughput";
    tables = [ ("Fig. 4 — throughput vs load", fig4); ("Fig. 5 — predicted vs measured", fig5) ];
    notes =
      [
        Printf.sprintf "speedup with second server: predicted %.2fx, measured %.2fx"
          r.speedup_predicted r.speedup_measured;
      ];
    series = [ ("throughput", csv) ];
  }
