module Table = Adept_util.Table
module Csv = Adept_util.Csv
module Rng = Adept_util.Rng
module Tree = Adept_hierarchy.Tree
module Faults = Adept_sim.Faults
module Scenario = Adept_sim.Scenario
module Controller = Adept_sim.Controller

type point = {
  rate : float;
  policy : Controller.policy;
  throughput : float;
  completed : int;
  lost : int;
  migration_lost : int;
  replans : int;
  degraded_seconds : float;
}

type result = {
  points : point list;
  servers : int;
  clients : int;
  mttr : float;
  crash_at : float;
  horizon : float;
}

let dgemm = 310

(* Two-level hierarchy on 7 Lyon nodes: the root agent (node 0) fans out
   to two middle agents (1 and 2) with two servers each.  Node 1's
   permanent crash orphans servers 3-4: the middleware's failover prunes
   the whole subtree, which only a redeployment can reattach — the
   situation the controller exists for.  Transient crashes (the swept
   rate) hit only the servers — losses the failover genuinely absorbs on
   its own (prune on strikes, rejoin on recovery), so reacting to them is
   pure waste.  The pool is kept small on purpose: one server is a
   quarter of the service capacity, so even a single transient crash dips
   below the degradation threshold and tempts a guard-free policy into
   replanning around a node that is about to come back. *)
let build_tree platform =
  let node = Adept_platform.Platform.node platform in
  Tree.agent (node 0)
    [
      Tree.agent (node 1) [ Tree.server (node 3); Tree.server (node 4) ];
      Tree.agent (node 2) [ Tree.server (node 5); Tree.server (node 6) ];
    ]

(* Shared sampling parameters; only the reaction policy differs.  The
   migration pause (restart latency) exceeds the sampling window on
   purpose: right after an enactment the window reads near zero, so a
   guard-free policy re-triggers itself whenever churn leaves any node
   dead — the thrash that hold_time and cooldown exist to prevent. *)
let controller_config policy =
  let mk =
    Controller.config ~strategy:Adept.Planner.Heuristic ~sample_period:0.25
      ~window:1.0 ~threshold:0.68 ~restart_latency:1.25 ~state_mbit:1.0
      ~max_replans:8
  in
  let r =
    match policy with
    | Controller.Off -> mk Controller.Off
    | Controller.Eager -> mk ~min_gain:0.0 Controller.Eager
    | Controller.Hysteresis ->
        mk ~hold_time:1.0 ~cooldown:2.5 ~min_gain:0.05 Controller.Hysteresis
  in
  match r with
  | Ok cfg -> cfg
  | Error e -> invalid_arg (Adept.Error.to_string e)

let run (ctx : Common.context) =
  let rates, clients, warmup, duration =
    match ctx.fidelity with
    | Common.Quick -> ([ 0.0; 0.5 ], 18, 1.0, 11.0)
    | Common.Full -> ([ 0.0; 0.2; 0.5; 0.7 ], 24, 1.0, 15.0)
  in
  let servers = 4 in
  let mttr = 0.5 in
  let crash_at = 1.0 in
  let horizon = warmup +. duration in
  let platform = Adept_platform.Generator.grid5000_lyon ~n:7 () in
  let tree = build_tree platform in
  let job = Adept_workload.Job.of_dgemm (Adept_workload.Dgemm.make dgemm) in
  (* Each (rate, policy) point averages several seeded repetitions: a
     single Poisson draw decides when the churn lands relative to the
     heal, which is exactly the noise the policy comparison must not ride
     on. *)
  let reps = match ctx.fidelity with Common.Quick -> 3 | Common.Full -> 5 in
  let one_run ~rate ~rep ~index policy =
    let faults =
      let base = Faults.make_exn () |> Faults.crash ~node:1 ~at:crash_at in
      if rate = 0.0 then base
      else
        Faults.seeded_crashes base
          ~rng:(Rng.create (ctx.seed + (1000 * (index + 1)) + (7919 * rep)))
          ~nodes:[ 3; 4; 5; 6 ] ~rate ~mttr ~horizon
    in
    let scenario =
      Scenario.make ~faults ~controller:(controller_config policy)
        ~seed:(ctx.seed + rep) ~params:Common.params ~platform
        ~client:(Adept_workload.Client.closed_loop job) tree
    in
    Scenario.run_fixed scenario ~clients ~warmup ~duration
  in
  let point index rate policy =
    let runs =
      List.init reps (fun rep -> one_run ~rate ~rep ~index policy)
    in
    let n = float_of_int reps in
    let favg f = List.fold_left (fun a r -> a +. f r) 0.0 runs /. n in
    let iavg f =
      int_of_float (Float.round (favg (fun r -> float_of_int (f r))))
    in
    {
      rate;
      policy;
      throughput = favg (fun r -> r.Scenario.throughput);
      completed = iavg (fun r -> r.Scenario.completed_total);
      lost = iavg (fun r -> r.Scenario.lost_total);
      migration_lost = iavg (fun r -> r.Scenario.migration_lost);
      replans = iavg (fun r -> List.length r.Scenario.replans);
      degraded_seconds = favg (fun r -> r.Scenario.degraded_seconds);
    }
  in
  let points =
    List.concat
      (List.mapi
         (fun i rate ->
           List.map (point i rate)
             [ Controller.Off; Controller.Eager; Controller.Hysteresis ])
         rates)
  in
  { points; servers; clients; mttr; crash_at; horizon }

let find points ~rate ~policy =
  List.find_opt (fun p -> p.rate = rate && p.policy = policy) points

let report _ctx r =
  let sweep =
    List.fold_left
      (fun table p ->
        Table.add_row table
          [
            Printf.sprintf "%.3f" p.rate;
            Controller.policy_name p.policy;
            Table.cell_float p.throughput;
            string_of_int p.completed;
            string_of_int p.lost;
            string_of_int p.migration_lost;
            string_of_int p.replans;
            Printf.sprintf "%.2f" p.degraded_seconds;
          ])
      (Table.create
         [
           "crash rate (/s)";
           "policy";
           "rho (req/s)";
           "completed";
           "lost";
           "migration lost";
           "replans";
           "degraded (s)";
         ])
      r.points
  in
  let csv =
    List.fold_left
      (fun csv p ->
        Csv.add_floats csv
          [
            p.rate;
            (match p.policy with
            | Controller.Off -> 0.0
            | Controller.Eager -> 1.0
            | Controller.Hysteresis -> 2.0);
            p.throughput;
            float_of_int p.completed;
            float_of_int p.lost;
            float_of_int p.migration_lost;
            float_of_int p.replans;
            p.degraded_seconds;
          ])
      (Csv.create
         [
           "rate";
           "policy";
           "throughput";
           "completed";
           "lost";
           "migration_lost";
           "replans";
           "degraded_seconds";
         ])
      r.points
  in
  let notes =
    List.filter_map
      (fun rate ->
        match
          ( find r.points ~rate ~policy:Controller.Off,
            find r.points ~rate ~policy:Controller.Eager,
            find r.points ~rate ~policy:Controller.Hysteresis )
        with
        | Some off, Some eager, Some hyst ->
            Some
              (Printf.sprintf
                 "rate %.3f/s: hysteresis %.2f req/s vs eager %.2f vs off %.2f \
                  (hysteresis %s)"
                 rate hyst.throughput eager.throughput off.throughput
                 (if
                    hyst.throughput > eager.throughput
                    && hyst.throughput > off.throughput
                  then "wins"
                  else "does not win"))
        | _ -> None)
      (List.sort_uniq compare (List.map (fun p -> p.rate) r.points))
  in
  {
    Common.id = "self-heal";
    title =
      Printf.sprintf
        "Extension: self-healing redeployment policies (2-level tree, %d servers, \
         %d clients, agent lost at t=%.1fs, transient MTTR %.1fs)"
        r.servers r.clients r.crash_at r.mttr;
    paper_reference =
      "Beyond the paper: Section 4 plans once, offline; this sweep keeps the plan \
       under supervision, losing a middle agent permanently (orphaning its server \
       subtree) while transient crashes arrive at the swept rate, and compares \
       never replanning (off), replanning on the first degraded sample (eager), \
       and replanning with hysteresis + migration-cost guards";
    tables = [ ("Crash rate x policy", sweep) ];
    notes;
    series = [ ("sweep", csv) ];
  }
