module Table = Adept_util.Table
module Csv = Adept_util.Csv
module Rng = Adept_util.Rng
module Tree = Adept_hierarchy.Tree
module Faults = Adept_sim.Faults
module Scenario = Adept_sim.Scenario
module Controller = Adept_sim.Controller
module Monitor = Adept_sim.Monitor
module Rollout = Adept_sim.Rollout

type point = {
  rate : float;
  policy : Controller.policy;
  throughput : float;
  completed : int;
  lost : int;
  migration_lost : int;
  replans : int;
  degraded_seconds : float;
}

type rollout_flavor = Drift | Healthy

let rollout_flavor_name = function Drift -> "drift" | Healthy -> "healthy"

let rollout_flavor_of_string = function
  | "drift" -> Ok Drift
  | "healthy" -> Ok Healthy
  | other ->
      Error
        (Adept.Error.invalid_input
           "rollout flavor must be drift or healthy, got %s" other)

type rollout_point = {
  r_flavor : rollout_flavor;
  r_mode : Rollout.mode;
  r_outcome : string;
  r_deploy_time : float option;
  r_swap_error_rate : float;
  r_rollback_time : float option;
  r_throughput : float;
  r_alerts : string list;
}

type result = {
  points : point list;
  rollout_points : rollout_point list;
  servers : int;
  clients : int;
  mttr : float;
  crash_at : float;
  horizon : float;
}

let dgemm = 310

(* Two-level hierarchy on 7 Lyon nodes: the root agent (node 0) fans out
   to two middle agents (1 and 2) with two servers each.  Node 1's
   permanent crash orphans servers 3-4: the middleware's failover prunes
   the whole subtree, which only a redeployment can reattach — the
   situation the controller exists for.  Transient crashes (the swept
   rate) hit only the servers — losses the failover genuinely absorbs on
   its own (prune on strikes, rejoin on recovery), so reacting to them is
   pure waste.  The pool is kept small on purpose: one server is a
   quarter of the service capacity, so even a single transient crash dips
   below the degradation threshold and tempts a guard-free policy into
   replanning around a node that is about to come back. *)
let build_tree platform =
  let node = Adept_platform.Platform.node platform in
  Tree.agent (node 0)
    [
      Tree.agent (node 1) [ Tree.server (node 3); Tree.server (node 4) ];
      Tree.agent (node 2) [ Tree.server (node 5); Tree.server (node 6) ];
    ]

(* Shared sampling parameters; only the reaction policy differs.  The
   migration pause (restart latency) exceeds the sampling window on
   purpose: right after an enactment the window reads near zero, so a
   guard-free policy re-triggers itself whenever churn leaves any node
   dead — the thrash that hold_time and cooldown exist to prevent. *)
let controller_config policy =
  let mk =
    Controller.config ~strategy:Adept.Planner.Heuristic ~sample_period:0.25
      ~window:1.0 ~threshold:0.68 ~restart_latency:1.25 ~state_mbit:1.0
      ~max_replans:8
  in
  let r =
    match policy with
    | Controller.Off -> mk Controller.Off
    | Controller.Eager -> mk ~min_gain:0.0 Controller.Eager
    | Controller.Hysteresis ->
        mk ~hold_time:1.0 ~cooldown:2.5 ~min_gain:0.05 Controller.Hysteresis
  in
  match r with
  | Ok cfg -> cfg
  | Error e -> invalid_arg (Adept.Error.to_string e)

(* ---------- staged-rollout demo ----------

   The canonical scenario for canary rollouts, shared verbatim by the
   [adept rollout] CLI command, the golden-pinned timeline test and this
   experiment's direct-vs-canary comparison: ten homogeneous nodes, a
   d-ary-3 hierarchy, agent 1 lost at t=1.5s.  The monitor's model-drift
   rule fires, the controller replans citing it, and the enactment is
   staged per the configured rollout.  [Healthy]: nothing else goes
   wrong, the canary's bake sees the drift resolve against the blended
   forecast, and the rollout promotes.  [Drift]: a second node is lost
   mid-bake, the watched rule is still firing at the deadline, and the
   rollout rolls the canary back onto the untouched old generation. *)

let rollout_crash_at = 1.5
let rollout_second_crash_at = 5.2
let rollout_clients = 16
let rollout_warmup = 0.5
let rollout_duration = 12.0

let rollout_scenario ~flavor ~rollout =
  let platform =
    Adept_platform.Generator.homogeneous ~bandwidth:1000.0 ~n:10 ~power:730.0 ()
  in
  let wapp = Adept_workload.Dgemm.(mflops (make dgemm)) in
  let strategy =
    match Adept.Planner.strategy_of_string "dary:3" with
    | Ok s -> s
    | Error e -> invalid_arg (Adept.Error.to_string e)
  in
  let tree =
    match
      Adept.Planner.run strategy Common.params ~platform ~wapp
        ~demand:Adept_model.Demand.unbounded
    with
    | Ok p -> p.Adept.Planner.tree
    | Error e -> invalid_arg (Adept.Error.to_string e)
  in
  let faults =
    let base =
      Faults.make_exn ~service_timeout:2.0 ~patience:0.2 ()
      |> Faults.crash ~node:1 ~at:rollout_crash_at
    in
    match flavor with
    | Healthy -> base
    | Drift ->
        (* Node 9 is a plain server in both generations, so its death
           mid-bake condemns the canary through the watched alert rules
           rather than the structural canary-agent-died short circuit. *)
        Faults.crash ~node:9 ~at:rollout_second_crash_at base
  in
  let controller =
    match
      Controller.config ~strategy ~sample_period:0.5 ~window:2.0 ~threshold:0.75
        ~hold_time:1.0 ~cooldown:2.0 ~max_replans:3 ~rollout
        Controller.Hysteresis
    with
    | Ok c -> c
    | Error e -> invalid_arg (Adept.Error.to_string e)
  in
  let rules =
    (* Not [Monitor.model_rules]: its drift rule is a symmetric deviation,
       and during a bake the split fleet legitimately OVER-performs the
       blended forecast (the canary's closed-loop clients are unsaturated
       on the staged hierarchy), which would condemn a healthy canary.
       The demo watches one-sided under-performance plus fleet size — a
       node lost mid-bake means the plan under promotion was computed for
       a platform that no longer exists. *)
    let open Adept_obs.Rule in
    let sel = selector in
    [
      v ~severity:Critical ~for_duration:0.5 "model-drift"
        (Sub
           ( Const 1.,
             Div
               ( Rate (sel Adept_obs.Semconv.requests_completed_total, 2.0),
                 Last (sel Adept_obs.Semconv.model_predicted_rho) ) ))
        Gt (Const 0.25);
      (* The scenario expects exactly one node down (the trigger); any
         further shrink while the canary bakes is disqualifying news. *)
      v ~severity:Critical ~for_duration:0.5 "fleet-size"
        (Last (sel Adept_obs.Semconv.alive_nodes))
        Lt (Const 9.);
    ]
  in
  let monitor =
    match
      Monitor.create ~interval:0.25
        ~selectors:(Monitor.default_selectors tree)
        rules
    with
    | Ok m -> m
    | Error e -> invalid_arg (Adept.Error.to_string e)
  in
  let job = Adept_workload.Job.of_dgemm (Adept_workload.Dgemm.make dgemm) in
  let s =
    Scenario.make ~faults ~controller ~seed:42 ~params:Common.params ~platform
      ~client:(Adept_workload.Client.closed_loop job) tree
  in
  (s, monitor, tree)

let run_rollout ?(mode = Rollout.Canary) ?canary_fraction ?bake_window ~flavor ()
    =
  let rollout =
    match
      Rollout.config ?canary_fraction ?bake_window
        ~watch:[ "model-drift"; "fleet-size" ] mode
    with
    | Ok r -> r
    | Error e -> invalid_arg (Adept.Error.to_string e)
  in
  let s, monitor, tree = rollout_scenario ~flavor ~rollout in
  let r =
    Scenario.run_fixed ~monitor s ~clients:rollout_clients
      ~warmup:rollout_warmup ~duration:rollout_duration
  in
  (r, monitor, tree)

(* The decisive replan of a rollout run: the last record carrying a
   rollout trail. *)
let rollout_record (r : Scenario.run_result) =
  List.fold_left
    (fun acc (rep : Controller.replan_record) ->
      match rep.Controller.rollout with Some ro -> Some (rep, ro) | None -> acc)
    None r.Scenario.replans

let rollout_point ~flavor ~mode (r : Scenario.run_result) =
  let step_at step trail =
    List.find_map
      (fun (e : Rollout.event) ->
        if e.Rollout.step = step then Some e.Rollout.at else None)
      trail
  in
  let outcome, deploy, rollback_time, alerts =
    match rollout_record r with
    | None -> ("none", None, None, [])
    | Some (rep, ro) ->
        let trail = ro.Rollout.trail in
        let span a b =
          match (step_at a trail, step_at b trail) with
          | Some t0, Some t1 -> Some (t1 -. t0)
          | _ -> None
        in
        let deploy =
          match ro.Rollout.outcome with
          | Rollout.Direct_enacted -> Some rep.Controller.migration_cost
          | Rollout.Promoted ->
              span Rollout.Canary_started Rollout.Promote_finished
          | Rollout.Rolled_back -> None
        in
        let rollback_time =
          span Rollout.Rollback_started Rollout.Rollback_finished
        in
        let cited =
          List.concat_map (fun (e : Rollout.event) -> e.Rollout.alerts) trail
          |> List.sort_uniq compare
        in
        (Rollout.outcome_name ro.Rollout.outcome, deploy, rollback_time, cited)
  in
  {
    r_flavor = flavor;
    r_mode = mode;
    r_outcome = outcome;
    r_deploy_time = deploy;
    r_swap_error_rate =
      (if r.Scenario.issued_total = 0 then 0.0
       else
         float_of_int r.Scenario.migration_lost
         /. float_of_int r.Scenario.issued_total);
    r_rollback_time = rollback_time;
    r_throughput = r.Scenario.throughput;
    r_alerts = alerts;
  }

let run (ctx : Common.context) =
  let rates, clients, warmup, duration =
    match ctx.fidelity with
    | Common.Quick -> ([ 0.0; 0.5 ], 18, 1.0, 11.0)
    | Common.Full -> ([ 0.0; 0.2; 0.5; 0.7 ], 24, 1.0, 15.0)
  in
  let servers = 4 in
  let mttr = 0.5 in
  let crash_at = 1.0 in
  let horizon = warmup +. duration in
  let platform = Adept_platform.Generator.grid5000_lyon ~n:7 () in
  let tree = build_tree platform in
  let job = Adept_workload.Job.of_dgemm (Adept_workload.Dgemm.make dgemm) in
  (* Each (rate, policy) point averages several seeded repetitions: a
     single Poisson draw decides when the churn lands relative to the
     heal, which is exactly the noise the policy comparison must not ride
     on. *)
  let reps = match ctx.fidelity with Common.Quick -> 3 | Common.Full -> 5 in
  let one_run ~rate ~rep ~index policy =
    let faults =
      let base = Faults.make_exn () |> Faults.crash ~node:1 ~at:crash_at in
      if rate = 0.0 then base
      else
        Faults.seeded_crashes base
          ~rng:(Rng.create (ctx.seed + (1000 * (index + 1)) + (7919 * rep)))
          ~nodes:[ 3; 4; 5; 6 ] ~rate ~mttr ~horizon
    in
    let scenario =
      Scenario.make ~faults ~controller:(controller_config policy)
        ~seed:(ctx.seed + rep) ~params:Common.params ~platform
        ~client:(Adept_workload.Client.closed_loop job) tree
    in
    Scenario.run_fixed scenario ~clients ~warmup ~duration
  in
  let point index rate policy =
    let runs =
      List.init reps (fun rep -> one_run ~rate ~rep ~index policy)
    in
    let n = float_of_int reps in
    let favg f = List.fold_left (fun a r -> a +. f r) 0.0 runs /. n in
    let iavg f =
      int_of_float (Float.round (favg (fun r -> float_of_int (f r))))
    in
    {
      rate;
      policy;
      throughput = favg (fun r -> r.Scenario.throughput);
      completed = iavg (fun r -> r.Scenario.completed_total);
      lost = iavg (fun r -> r.Scenario.lost_total);
      migration_lost = iavg (fun r -> r.Scenario.migration_lost);
      replans = iavg (fun r -> List.length r.Scenario.replans);
      degraded_seconds = favg (fun r -> r.Scenario.degraded_seconds);
    }
  in
  let points =
    List.concat
      (List.mapi
         (fun i rate ->
           List.map (point i rate)
             [ Controller.Off; Controller.Eager; Controller.Hysteresis ])
         rates)
  in
  (* The staged-rollout comparison runs the canonical demo scenario — in
     both flavors, under both enactment modes — so the same report shows
     a bake window catching a bad plan (drift -> rolled back) and
     waving a good one through (healthy -> promoted). *)
  let rollout_points =
    List.concat_map
      (fun flavor ->
        List.map
          (fun mode ->
            let r, _monitor, _tree = run_rollout ~mode ~flavor () in
            rollout_point ~flavor ~mode r)
          [ Rollout.Direct; Rollout.Canary ])
      [ Healthy; Drift ]
  in
  { points; rollout_points; servers; clients; mttr; crash_at; horizon }

let find points ~rate ~policy =
  List.find_opt (fun p -> p.rate = rate && p.policy = policy) points

let report _ctx r =
  let sweep =
    List.fold_left
      (fun table p ->
        Table.add_row table
          [
            Printf.sprintf "%.3f" p.rate;
            Controller.policy_name p.policy;
            Table.cell_float p.throughput;
            string_of_int p.completed;
            string_of_int p.lost;
            string_of_int p.migration_lost;
            string_of_int p.replans;
            Printf.sprintf "%.2f" p.degraded_seconds;
          ])
      (Table.create
         [
           "crash rate (/s)";
           "policy";
           "rho (req/s)";
           "completed";
           "lost";
           "migration lost";
           "replans";
           "degraded (s)";
         ])
      r.points
  in
  let csv =
    List.fold_left
      (fun csv p ->
        Csv.add_floats csv
          [
            p.rate;
            (match p.policy with
            | Controller.Off -> 0.0
            | Controller.Eager -> 1.0
            | Controller.Hysteresis -> 2.0);
            p.throughput;
            float_of_int p.completed;
            float_of_int p.lost;
            float_of_int p.migration_lost;
            float_of_int p.replans;
            p.degraded_seconds;
          ])
      (Csv.create
         [
           "rate";
           "policy";
           "throughput";
           "completed";
           "lost";
           "migration_lost";
           "replans";
           "degraded_seconds";
         ])
      r.points
  in
  let rollout_table =
    let opt = function
      | Some v -> Printf.sprintf "%.3f" v
      | None -> "n/a"
    in
    List.fold_left
      (fun table p ->
        Table.add_row table
          [
            rollout_flavor_name p.r_flavor;
            Rollout.mode_name p.r_mode;
            p.r_outcome;
            opt p.r_deploy_time;
            Printf.sprintf "%.2f%%" (100.0 *. p.r_swap_error_rate);
            opt p.r_rollback_time;
            Table.cell_float p.r_throughput;
            String.concat "; " p.r_alerts;
          ])
      (Table.create
         [
           "flavor";
           "rollout";
           "outcome";
           "deploy time (s)";
           "swap error rate";
           "rollback (s)";
           "rho (req/s)";
           "alerts cited";
         ])
      r.rollout_points
  in
  let rollout_notes =
    List.filter_map
      (fun flavor ->
        let get mode =
          List.find_opt
            (fun p -> p.r_flavor = flavor && p.r_mode = mode)
            r.rollout_points
        in
        match (get Rollout.Direct, get Rollout.Canary) with
        | Some d, Some c ->
            Some
              (Printf.sprintf
                 "%s flavor: direct swap %s (%.2f req/s), canary %s (%.2f \
                  req/s)%s"
                 (rollout_flavor_name flavor)
                 d.r_outcome d.r_throughput c.r_outcome c.r_throughput
                 (match c.r_rollback_time with
                 | Some t ->
                     Printf.sprintf ", rolled back in %.3fs with the old \
                                     generation untouched"
                       t
                 | None -> ""))
        | _ -> None)
      [ Healthy; Drift ]
  in
  let notes =
    List.filter_map
      (fun rate ->
        match
          ( find r.points ~rate ~policy:Controller.Off,
            find r.points ~rate ~policy:Controller.Eager,
            find r.points ~rate ~policy:Controller.Hysteresis )
        with
        | Some off, Some eager, Some hyst ->
            Some
              (Printf.sprintf
                 "rate %.3f/s: hysteresis %.2f req/s vs eager %.2f vs off %.2f \
                  (hysteresis %s)"
                 rate hyst.throughput eager.throughput off.throughput
                 (if
                    hyst.throughput > eager.throughput
                    && hyst.throughput > off.throughput
                  then "wins"
                  else "does not win"))
        | _ -> None)
      (List.sort_uniq compare (List.map (fun p -> p.rate) r.points))
  in
  {
    Common.id = "self-heal";
    title =
      Printf.sprintf
        "Extension: self-healing redeployment policies (2-level tree, %d servers, \
         %d clients, agent lost at t=%.1fs, transient MTTR %.1fs)"
        r.servers r.clients r.crash_at r.mttr;
    paper_reference =
      "Beyond the paper: Section 4 plans once, offline; this sweep keeps the plan \
       under supervision, losing a middle agent permanently (orphaning its server \
       subtree) while transient crashes arrive at the swept rate, and compares \
       never replanning (off), replanning on the first degraded sample (eager), \
       and replanning with hysteresis + migration-cost guards";
    tables =
      [
        ("Crash rate x policy", sweep);
        ("Staged rollout: direct vs canary", rollout_table);
      ];
    notes = notes @ rollout_notes;
    series = [ ("sweep", csv) ];
  }
