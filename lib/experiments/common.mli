(** Shared experiment machinery: run contexts, report structure, and the
    constants every reproduction uses. *)

type fidelity =
  | Quick  (** Reduced client counts and windows — used by the test suite. *)
  | Full  (** The benchmark harness's full parameter sweeps. *)

type context = {
  fidelity : fidelity;
  seed : int;  (** Seeds platform generation and simulation. *)
  out_dir : string option;  (** Where to write CSV series, if anywhere. *)
}

val default_context : context
(** Full fidelity, seed 42, no CSV output. *)

val quick_context : context

type report = {
  id : string;
  title : string;
  paper_reference : string;  (** What the paper reports for this artefact. *)
  tables : (string * Adept_util.Table.t) list;
  notes : string list;
  series : (string * Adept_util.Csv.t) list;  (** Figure data, one per curve set. *)
}

val render : report -> string
(** Human-readable block: header, tables, notes. *)

val write_series : context -> report -> unit
(** Save each series as [<out_dir>/<id>-<name>.csv] when [out_dir] is
    set. *)

val node_power : float
(** 730 MFlop/s — the era-calibrated node capacity (DESIGN.md §2). *)

val lyon_bandwidth : float
(** 100 Mbit/s (calibration site). *)

val orsay_bandwidth : float
(** 1000 Mbit/s (large heterogeneous site). *)

val params : Adept_model.Params.t
(** Table 3 constants. *)

val star_scenario :
  ?faults:Adept_sim.Faults.t ->
  dgemm:int ->
  servers:int ->
  seed:int ->
  unit ->
  Adept_sim.Scenario.t
(** Lyon star deployment with the given server count, closed-loop DGEMM
    clients — the Section 5.2 validation setup.  [faults] (default
    {!Adept_sim.Faults.none}) installs a fault schedule. *)

val measure_series :
  Adept_sim.Scenario.t ->
  clients:int list ->
  warmup:float ->
  duration:float ->
  (int * float) list
(** Throughput per client count (alias of
    {!Adept_sim.Scenario.throughput_series} with the harness defaults). *)
