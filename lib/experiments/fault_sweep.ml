module Table = Adept_util.Table
module Csv = Adept_util.Csv
module Rng = Adept_util.Rng
module Faults = Adept_sim.Faults
module Scenario = Adept_sim.Scenario

type point = {
  rate : float;  (* crashes per server per simulated second *)
  throughput : float;
  completed : int;
  issued : int;
  lost : int;
  crashes : int;
  prunes : int;
  rejoins : int;
  mean_recovery : float option;  (* crash -> prune latency, seconds *)
}

type result = {
  points : point list;
  mttr : float;
  servers : int;
  clients : int;
  (* Planner.replan on the same star with one server down: predicted
     rho before, after, and the relative drop. *)
  replan : (float * float * float) option;
}

let dgemm = 310

let mean = function
  | [] -> None
  | xs -> Some (List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs))

let run (ctx : Common.context) =
  let rates, servers, clients, warmup, duration =
    match ctx.fidelity with
    | Common.Quick -> ([ 0.0; 0.02; 0.1 ], 4, 12, 1.0, 3.0)
    | Common.Full ->
        ([ 0.0; 0.005; 0.01; 0.02; 0.05; 0.1 ], 6, 30, 1.0, 8.0)
  in
  let mttr = 2.0 in
  let horizon = warmup +. duration in
  (* Only servers crash: the MA host is treated as reliable here — losing
     the root takes the whole service down and is the offline replanning
     case, which the replan row below covers. *)
  let crashable = List.init servers (fun i -> i + 1) in
  let point index rate =
    let faults =
      if rate = 0.0 then Faults.none
      else
        Faults.make_exn ()
        |> Faults.seeded_crashes
             ~rng:(Rng.create (ctx.seed + (1000 * (index + 1))))
             ~nodes:crashable ~rate ~mttr ~horizon
    in
    let scenario =
      Common.star_scenario ~faults ~dgemm ~servers ~seed:ctx.seed ()
    in
    let r = Scenario.run_fixed scenario ~clients ~warmup ~duration in
    {
      rate;
      throughput = r.Scenario.throughput;
      completed = r.Scenario.completed_total;
      issued = r.Scenario.issued_total;
      lost = r.Scenario.lost_total;
      crashes = r.Scenario.faults.Adept_sim.Middleware.crashes;
      prunes = r.Scenario.faults.Adept_sim.Middleware.prunes;
      rejoins = r.Scenario.faults.Adept_sim.Middleware.rejoins;
      mean_recovery =
        mean r.Scenario.faults.Adept_sim.Middleware.recovery_latencies;
    }
  in
  let points = List.mapi point rates in
  let replan =
    let platform = Adept_platform.Generator.grid5000_lyon ~n:(servers + 1) () in
    let wapp = Adept_workload.Dgemm.(mflops (make dgemm)) in
    match
      Adept.Planner.replan Adept.Planner.Heuristic Common.params ~platform ~wapp
        ~demand:Adept_model.Demand.unbounded ~failed:[ servers ] ()
    with
    | Error _ -> None
    | Ok r ->
        Some (r.Adept.Planner.rho_before, r.Adept.Planner.rho_after, r.Adept.Planner.rho_drop)
  in
  { points; mttr; servers; clients; replan }

let report _ctx r =
  let sweep =
    List.fold_left
      (fun table p ->
        Table.add_row table
          [
            Printf.sprintf "%.3f" p.rate;
            Table.cell_float p.throughput;
            string_of_int p.completed;
            string_of_int p.lost;
            string_of_int p.crashes;
            string_of_int p.prunes;
            string_of_int p.rejoins;
            (match p.mean_recovery with
            | None -> "-"
            | Some s -> Printf.sprintf "%.3f" s);
          ])
      (Table.create
         [
           "crash rate (/s)";
           "rho (req/s)";
           "completed";
           "lost";
           "crashes";
           "prunes";
           "rejoins";
           "mean recovery (s)";
         ])
      r.points
  in
  let tables = [ ("Failure rate vs completed-request throughput", sweep) ] in
  let tables =
    match r.replan with
    | None -> tables
    | Some (before, after, drop) ->
        let t =
          Table.create [ "plan"; "predicted rho (req/s)" ]
          |> (fun t -> Table.add_row t [ "all nodes up"; Table.cell_float before ])
          |> fun t ->
          Table.add_row t
            [
              Printf.sprintf "replanned, 1 of %d servers down (-%.1f%%)" r.servers
                (100.0 *. drop);
              Table.cell_float after;
            ]
        in
        tables @ [ ("Planner.replan after a permanent server loss", t) ]
  in
  let csv =
    List.fold_left
      (fun csv p ->
        Csv.add_floats csv
          [
            p.rate;
            p.throughput;
            float_of_int p.completed;
            float_of_int p.lost;
            float_of_int p.crashes;
            float_of_int p.prunes;
            Option.value ~default:Float.nan p.mean_recovery;
          ])
      (Csv.create
         [ "rate"; "throughput"; "completed"; "lost"; "crashes"; "prunes"; "mean_recovery" ])
      r.points
  in
  let baseline =
    match r.points with p :: _ -> p.throughput | [] -> Float.nan
  in
  {
    Common.id = "fault-sweep";
    title =
      Printf.sprintf
        "Extension: failure rate vs throughput (star, %d servers, %d clients, MTTR %.1fs)"
        r.servers r.clients r.mttr;
    paper_reference =
      "Beyond the paper: its model assumes every element stays up (Section 3); this \
       sweep measures how the deployed hierarchy degrades when servers crash and \
       recover, with client retries and agent-side failover";
    tables;
    notes =
      (List.filter_map
         (fun p ->
           if p.rate > 0.0 && baseline > 0.0 then
             Some
               (Printf.sprintf
                  "rate %.3f/s: throughput retained %.1f%%, %d request(s) lost"
                  p.rate
                  (100.0 *. p.throughput /. baseline)
                  p.lost)
           else None)
         r.points);
    series = [ ("sweep", csv) ];
  }
