module Table = Adept_util.Table
module Csv = Adept_util.Csv

type result = {
  series_one : (int * float) list;
  series_two : (int * float) list;
  predicted_one : float;
  predicted_two : float;
  measured_one : float;
  measured_two : float;
  second_server_hurts_predicted : bool;
  second_server_hurts_measured : bool;
}

let dgemm = 10

let peak series = List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 series

let predicted ~servers =
  let platform = Adept_platform.Generator.grid5000_lyon ~n:(servers + 1) () in
  let nodes = Adept_platform.Platform.nodes platform in
  let tree = Adept_hierarchy.Tree.star (List.hd nodes) (List.tl nodes) in
  Adept.Evaluate.rho_on Common.params ~platform
    ~wapp:Adept_workload.Dgemm.(mflops (make dgemm))
    tree

let run (ctx : Common.context) =
  let clients, warmup, duration =
    match ctx.fidelity with
    | Common.Quick -> ([ 1; 10; 50 ], 0.5, 1.0)
    | Common.Full -> ([ 1; 2; 5; 10; 20; 50; 100; 150; 200 ], 1.0, 3.0)
  in
  let series servers =
    Common.measure_series
      (Common.star_scenario ~dgemm ~servers ~seed:ctx.seed ())
      ~clients ~warmup ~duration
  in
  let series_one = series 1 and series_two = series 2 in
  let predicted_one = predicted ~servers:1 and predicted_two = predicted ~servers:2 in
  let measured_one = peak series_one and measured_two = peak series_two in
  {
    series_one;
    series_two;
    predicted_one;
    predicted_two;
    measured_one;
    measured_two;
    second_server_hurts_predicted = predicted_two < predicted_one;
    second_server_hurts_measured = measured_two < measured_one;
  }

let report _ctx r =
  let fig2 =
    List.fold_left
      (fun table ((c, one), (_, two)) ->
        Table.add_row table
          [ string_of_int c; Table.cell_float one; Table.cell_float two ])
      (Table.create [ "clients"; "1 SeD (req/s)"; "2 SeDs (req/s)" ])
      (List.combine r.series_one r.series_two)
  in
  let fig3 =
    Table.create [ "deployment"; "predicted (req/s)"; "measured (req/s)" ]
    |> (fun t ->
         Table.add_row t
           [ "1 SeD"; Table.cell_float r.predicted_one; Table.cell_float r.measured_one ])
    |> fun t ->
    Table.add_row t
      [ "2 SeDs"; Table.cell_float r.predicted_two; Table.cell_float r.measured_two ]
  in
  let csv =
    List.fold_left
      (fun csv ((c, one), (_, two)) -> Csv.add_floats csv [ float_of_int c; one; two ])
      (Csv.create [ "clients"; "one_sed"; "two_seds" ])
      (List.combine r.series_one r.series_two)
  in
  {
    Common.id = "fig2-3";
    title = "Star hierarchies, DGEMM 10x10 (agent-limited regime)";
    paper_reference =
      "Fig. 2/3: predicted 1460 vs 1052 req/s, measured 295 vs 283 req/s — the \
       second server hurts in both";
    tables = [ ("Fig. 2 — throughput vs load", fig2); ("Fig. 3 — predicted vs measured", fig3) ];
    notes =
      [
        Printf.sprintf "second server hurts (predicted): %b"
          r.second_server_hurts_predicted;
        Printf.sprintf "second server hurts (measured):  %b" r.second_server_hurts_measured;
      ];
    series = [ ("throughput", csv) ];
  }
