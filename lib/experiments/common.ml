module Table = Adept_util.Table
module Csv = Adept_util.Csv

type fidelity = Quick | Full

type context = { fidelity : fidelity; seed : int; out_dir : string option }

let default_context = { fidelity = Full; seed = 42; out_dir = None }

let quick_context = { fidelity = Quick; seed = 42; out_dir = None }

type report = {
  id : string;
  title : string;
  paper_reference : string;
  tables : (string * Table.t) list;
  notes : string list;
  series : (string * Csv.t) list;
}

let render r =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (Printf.sprintf "=== %s: %s ===\n" r.id r.title);
  Buffer.add_string buf (Printf.sprintf "paper: %s\n" r.paper_reference);
  List.iter
    (fun (name, table) ->
      Buffer.add_string buf (Printf.sprintf "\n-- %s --\n" name);
      Buffer.add_string buf (Table.render table))
    r.tables;
  if r.notes <> [] then begin
    Buffer.add_string buf "\nnotes:\n";
    List.iter (fun n -> Buffer.add_string buf (Printf.sprintf "  * %s\n" n)) r.notes
  end;
  Buffer.contents buf

let write_series ctx r =
  match ctx.out_dir with
  | None -> ()
  | Some dir ->
      List.iter
        (fun (name, csv) -> Csv.save csv (Filename.concat dir (r.id ^ "-" ^ name ^ ".csv")))
        r.series

let node_power = 730.0

let lyon_bandwidth = 100.0

let orsay_bandwidth = 1000.0

let params = Adept_model.Params.diet_lyon

let star_scenario ?faults ~dgemm ~servers ~seed () =
  let platform = Adept_platform.Generator.grid5000_lyon ~n:(servers + 1) () in
  let nodes = Adept_platform.Platform.nodes platform in
  let tree =
    Adept_hierarchy.Tree.star (List.hd nodes) (List.tl nodes)
  in
  let job = Adept_workload.Job.of_dgemm (Adept_workload.Dgemm.make dgemm) in
  Adept_sim.Scenario.make ?faults ~seed ~params ~platform
    ~client:(Adept_workload.Client.closed_loop job) tree

let measure_series scenario ~clients ~warmup ~duration =
  Adept_sim.Scenario.throughput_series scenario ~client_counts:clients ~warmup ~duration
