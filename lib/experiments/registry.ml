type experiment = {
  id : string;
  title : string;
  run : Common.context -> Common.report;
}

let all =
  [
    {
      id = "table3";
      title = "Calibration of middleware parameters (Table 3)";
      run = (fun ctx -> Table3_exp.report ctx (Table3_exp.run ctx));
    };
    {
      id = "fig2-3";
      title = "Star validation, DGEMM 10x10 (Figures 2-3)";
      run = (fun ctx -> Fig2_3.report ctx (Fig2_3.run ctx));
    };
    {
      id = "fig4-5";
      title = "Star validation, DGEMM 200x200 (Figures 4-5)";
      run = (fun ctx -> Fig4_5.report ctx (Fig4_5.run ctx));
    };
    {
      id = "table4";
      title = "Heuristic vs homogeneous optimal (Table 4)";
      run = (fun ctx -> Table4.report ctx (Table4.run ctx));
    };
    {
      id = "fig6";
      title = "Automatic vs intuitive deployments, DGEMM 310x310 (Figure 6)";
      run = (fun ctx -> Fig6.report ctx (Fig6.run ctx));
    };
    {
      id = "fig7";
      title = "Automatic star vs balanced, DGEMM 1000x1000 (Figure 7)";
      run = (fun ctx -> Fig7.report ctx (Fig7.run ctx));
    };
    {
      id = "ablation-selection";
      title = "Extension: server-selection policy ablation";
      run = (fun ctx -> Ablation.report_selection ctx (Ablation.run_selection ctx));
    };
    {
      id = "ablation-bandwidth";
      title = "Extension: bandwidth sensitivity of the planner";
      run = (fun ctx -> Ablation.report_bandwidth ctx (Ablation.run_bandwidth ctx));
    };
    {
      id = "ablation-demand";
      title = "Extension: demand-bounded planning";
      run = (fun ctx -> Ablation.report_demand ctx (Ablation.run_demand ctx));
    };
    {
      id = "ablation-improver";
      title = "Extension: iterative bottleneck removal vs planning from scratch";
      run = (fun ctx -> Ablation.report_improver ctx (Ablation.run_improver ctx));
    };
    {
      id = "ablation-wan";
      title = "Extension: multi-cluster planning across WAN bandwidths";
      run = (fun ctx -> Ablation.report_wan ctx (Ablation.run_wan ctx));
    };
    {
      id = "ablation-mix";
      title = "Extension: multi-application mixes and the effective Wapp";
      run = (fun ctx -> Ablation.report_mix ctx (Ablation.run_mix ctx));
    };
    {
      id = "ablation-latency";
      title = "Extension: response time vs load (M/D/1 companion model)";
      run = (fun ctx -> Ablation.report_latency ctx (Ablation.run_latency ctx));
    };
    {
      id = "fault-sweep";
      title = "Extension: failure rate vs completed-request throughput";
      run = (fun ctx -> Fault_sweep.report ctx (Fault_sweep.run ctx));
    };
    {
      id = "self-heal";
      title = "Extension: self-healing redeployment policies under churn";
      run = (fun ctx -> Self_heal.report ctx (Self_heal.run ctx));
    };
    {
      id = "ablation-monitoring";
      title = "Extension: monitoring-database staleness vs selection quality";
      run = (fun ctx -> Ablation.report_monitoring ctx (Ablation.run_monitoring ctx));
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let ids = List.map (fun e -> e.id) all
