(** Extension experiment: failure rate vs completed-request throughput.

    A Lyon star deployment under closed-loop DGEMM load, with servers
    crashing and recovering as per-node Poisson processes
    ({!Adept_sim.Faults.seeded_crashes}).  Sweeps the crash rate and
    reports the throughput of completed requests, lost requests, failover
    prunes/rejoins and the mean crash-to-prune recovery latency; a final
    table shows {!Adept.Planner.replan}'s predicted throughput hit for a
    permanent loss of one server. *)

type point = {
  rate : float;  (** Crashes per server per simulated second. *)
  throughput : float;  (** Completions/s in the measurement window. *)
  completed : int;
  issued : int;
  lost : int;  (** Requests abandoned after retries. *)
  crashes : int;
  prunes : int;
  rejoins : int;
  mean_recovery : float option;  (** Mean crash→prune latency, seconds. *)
}

type result = {
  points : point list;  (** One per swept rate, rate 0 first (baseline). *)
  mttr : float;
  servers : int;
  clients : int;
  replan : (float * float * float) option;
      (** (rho_before, rho_after, rho_drop) from {!Adept.Planner.replan}
          with one server permanently failed. *)
}

val run : Common.context -> result

val report : Common.context -> result -> Common.report
