(** Extension experiment: self-healing redeployment policies.

    A two-level Lyon hierarchy (root agent, two middle agents, three
    servers each) loses one middle agent permanently — orphaning its
    server subtree, a loss the middleware's failover can prune but never
    repair — while transient crashes arrive on the remaining non-root
    nodes at a swept Poisson rate.  Each (rate, policy) point runs the
    same scenario under a {!Adept_sim.Controller} with policy [Off]
    (monitor only), [Eager] (replan on the first degraded sample, no gain
    guard) or [Hysteresis] (hold time, cooldown and minimum predicted
    gain), and reports completed-request throughput, migration losses,
    enacted replans and degraded time.

    The headline result: at a nonzero transient rate, hysteresis beats
    [Off] (which never reattaches the orphaned subtree) and [Eager]
    (which burns replans and migration pauses on crashes that would have
    recovered on their own). *)

type point = {
  rate : float;  (** Transient crashes per node per simulated second. *)
  policy : Adept_sim.Controller.policy;
  throughput : float;  (** Completions/s in the measurement window. *)
  completed : int;
  lost : int;  (** All lost requests, including migration losses. *)
  migration_lost : int;  (** Requests dropped inside migration windows. *)
  replans : int;  (** Enacted redeployments. *)
  degraded_seconds : float;
}

type result = {
  points : point list;
      (** Rate-major, policy [Off]/[Eager]/[Hysteresis] within each rate. *)
  servers : int;
  clients : int;
  mttr : float;  (** Mean transient repair time, seconds. *)
  crash_at : float;  (** When the middle agent is lost for good. *)
  horizon : float;
}

val run : Common.context -> result

val report : Common.context -> result -> Common.report
