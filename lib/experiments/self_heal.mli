(** Extension experiment: self-healing redeployment policies.

    A two-level Lyon hierarchy (root agent, two middle agents, three
    servers each) loses one middle agent permanently — orphaning its
    server subtree, a loss the middleware's failover can prune but never
    repair — while transient crashes arrive on the remaining non-root
    nodes at a swept Poisson rate.  Each (rate, policy) point runs the
    same scenario under a {!Adept_sim.Controller} with policy [Off]
    (monitor only), [Eager] (replan on the first degraded sample, no gain
    guard) or [Hysteresis] (hold time, cooldown and minimum predicted
    gain), and reports completed-request throughput, migration losses,
    enacted replans and degraded time.

    The headline result: at a nonzero transient rate, hysteresis beats
    [Off] (which never reattaches the orphaned subtree) and [Eager]
    (which burns replans and migration pauses on crashes that would have
    recovered on their own).

    The experiment also runs the canonical staged-rollout demo (see
    {!rollout_scenario}) in both flavors under both enactment modes and
    reports a direct-vs-canary comparison: deployment time, error rate
    during the swap, and rollback time. *)

type point = {
  rate : float;  (** Transient crashes per node per simulated second. *)
  policy : Adept_sim.Controller.policy;
  throughput : float;  (** Completions/s in the measurement window. *)
  completed : int;
  lost : int;  (** All lost requests, including migration losses. *)
  migration_lost : int;  (** Requests dropped inside migration windows. *)
  replans : int;  (** Enacted redeployments. *)
  degraded_seconds : float;
}

type rollout_flavor =
  | Drift  (** A second node dies mid-bake: the watched alert is still
               firing at the deadline and the canary rolls back. *)
  | Healthy  (** Nothing else goes wrong: the drift resolves against the
                 blended forecast and the canary promotes. *)

val rollout_flavor_name : rollout_flavor -> string

val rollout_flavor_of_string : string -> (rollout_flavor, Adept.Error.t) result

type rollout_point = {
  r_flavor : rollout_flavor;
  r_mode : Adept_sim.Rollout.mode;
  r_outcome : string;  (** [promoted] / [rolled-back] / [direct] / [none]. *)
  r_deploy_time : float option;
      (** Trigger to final swap, seconds; [None] when the plan never
          fully deployed (rolled back, or no replan happened). *)
  r_swap_error_rate : float;
      (** Requests dropped in migration pauses over requests issued. *)
  r_rollback_time : float option;
      (** Reverse-migration window, seconds; [None] unless rolled back. *)
  r_throughput : float;
  r_alerts : string list;  (** Citations across the decision trail. *)
}

type result = {
  points : point list;
      (** Rate-major, policy [Off]/[Eager]/[Hysteresis] within each rate. *)
  rollout_points : rollout_point list;
      (** Flavor-major ([Healthy] then [Drift]), [Direct] then [Canary]
          within each flavor. *)
  servers : int;
  clients : int;
  mttr : float;  (** Mean transient repair time, seconds. *)
  crash_at : float;  (** When the middle agent is lost for good. *)
  horizon : float;
}

val rollout_scenario :
  flavor:rollout_flavor ->
  rollout:Adept_sim.Rollout.config ->
  Adept_sim.Scenario.t * Adept_sim.Monitor.t * Adept_hierarchy.Tree.t
(** The canonical staged-rollout demo, shared byte-for-byte by the
    [adept rollout] CLI command, the golden-pinned timeline test and
    this experiment: ten homogeneous 1000 Mbit nodes at 730 MFlop/s, a
    d-ary-3 hierarchy, agent 1 lost at t=1.5s, a model-drift monitor
    (0.25 s scrapes, 0.5 s hold) and a hysteresis controller (0.5 s
    samples, 2 s window, threshold 0.75, hold 1 s, cooldown 2 s) staging
    enactments per [rollout].  [Drift] additionally loses node 2 at
    t=5.2s — inside the default bake window — so the drift never
    resolves.  Run it with {!run_rollout}'s fixed workload (16 closed
    clients, 0.5 s warmup, 12 s measured, seed 42) to reproduce the
    golden timeline. *)

val run_rollout :
  ?mode:Adept_sim.Rollout.mode ->
  ?canary_fraction:float ->
  ?bake_window:float ->
  flavor:rollout_flavor ->
  unit ->
  Adept_sim.Scenario.run_result * Adept_sim.Monitor.t * Adept_hierarchy.Tree.t
(** {!rollout_scenario} under the canonical workload (defaults: [Canary]
    mode with {!Adept_sim.Rollout.config}'s default fraction and bake
    window).  The returned monitor holds the alert timeline that drove
    the rollout's verdict; the tree is the initial deployment (panel
    selectors for a dashboard). *)

val rollout_point :
  flavor:rollout_flavor ->
  mode:Adept_sim.Rollout.mode ->
  Adept_sim.Scenario.run_result ->
  rollout_point
(** Distil one comparison row from a {!run_rollout} result. *)

val run : Common.context -> result

val report : Common.context -> result -> Common.report
