(** The seed implementation of the heterogeneous heuristic, kept verbatim
    as the equivalence oracle for {!Heuristic}.

    {!Heuristic} reimplements the same Algorithm 1 decision procedure on
    top of {!Node_pool} (binary-searched usability boundaries, memoized
    capacities, early-capped server scans).  Those optimizations are
    argued decision-identical — every floating-point comparison sees the
    same values — and the QCheck equivalence property in the test suite
    pins that claim against this module: for random platforms the pooled
    planner must return a bit-identical rho and a structurally equal tree.
    Exposed to planners as [Planner.run ~strategy:Reference].

    Do not optimize this module; its value is being the unoptimized
    original. *)

open Adept_platform
open Adept_hierarchy

type probe = {
  target : float;
  feasible : bool;
  achieved_rho : float;
  nodes_used : int;
}

type result = {
  tree : Tree.t;
  predicted_rho : float;
  probes : probe list;
  demand_met : bool;
}

val plan :
  Adept_model.Params.t ->
  platform:Platform.t ->
  wapp:float ->
  demand:Adept_model.Demand.t ->
  (result, string) Stdlib.result

val plan_tree :
  Adept_model.Params.t ->
  platform:Platform.t ->
  wapp:float ->
  demand:Adept_model.Demand.t ->
  (Tree.t, string) Stdlib.result

val build_for_target :
  Adept_model.Params.t ->
  platform:Platform.t ->
  wapp:float ->
  target:float ->
  Tree.t option
