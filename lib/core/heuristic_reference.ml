open Adept_platform
open Adept_hierarchy
module Params = Adept_model.Params
module Demand = Adept_model.Demand

type probe = { target : float; feasible : bool; achieved_rho : float; nodes_used : int }

type result = {
  tree : Tree.t;
  predicted_rho : float;
  probes : probe list;
  demand_met : bool;
}

(* Working representation during the level-by-level build. *)
type ag = { anode : Node.t; cap : int; mutable kids : kid list }
and kid = Kagent of ag | Kserver of Node.t

let rec tree_of_ag a =
  Tree.agent a.anode
    (List.rev_map (function Kagent c -> tree_of_ag c | Kserver s -> Tree.server s) a.kids)

(* Agent lightening: the sorted order puts the strongest nodes in agent
   positions, but once the target [T] is fixed, any node whose Eq. 14
   scheduling power at the agent's degree still clears [T] can hold that
   position.  Swapping the strongest agents with the weakest such servers
   moves compute power to the service side at no scheduling cost — a
   strict improvement over the paper's strongest-first rule (DESIGN.md
   §5).

   The swap demands a wide safety margin ([lighten_slack]) rather than bare
   feasibility: an agent operating close to its Eq. 14 limit stretches the
   scheduling round-trip, and during that window concurrent requests select
   servers from stale predictions and convoy onto the same machine.  The
   steady-state model cannot express this, but the simulator (like the real
   middleware) pays it dearly on long-running services. *)
let lighten_slack = 4.0

let lighten_agents params ~bandwidth ~target tree =
  let swap_once tree =
    let agents =
      List.sort
        (fun (a, _) (b, _) -> Node.compare_by_power_desc a b)
        (Tree.agents_with_degree tree)
    in
    let servers =
      List.sort (fun a b -> Node.compare_by_power_desc b a) (Tree.servers tree)
    in
    let feasible server degree =
      Sched_power.agent params ~bandwidth ~node:server ~children:degree
      >= lighten_slack *. target
    in
    let rec find_swap = function
      | [] -> None
      | (agent, degree) :: rest ->
          let candidate =
            List.find_opt
              (fun server ->
                Node.power server < Node.power agent && feasible server degree)
              servers
          in
          (match candidate with
          | Some server -> Some (agent, server)
          | None -> find_swap rest)
    in
    match find_swap agents with
    | None -> None
    | Some (agent, server) ->
        let substitute node =
          if Node.id node = Node.id agent then server
          else if Node.id node = Node.id server then agent
          else node
        in
        let rec rewrite = function
          | Tree.Server n -> Tree.server (substitute n)
          | Tree.Agent (n, children) ->
              Tree.agent (substitute n) (List.map rewrite children)
        in
        Some (rewrite tree)
  in
  let rec loop tree fuel =
    if fuel = 0 then tree
    else match swap_once tree with None -> tree | Some tree' -> loop tree' (fuel - 1)
  in
  loop tree (Tree.size tree)

(* Smallest prefix of [sorted.(from..)] whose Eq. 15 service power reaches
   [target], skipping nodes whose own prediction throughput is below the
   target.  Returns the server nodes, or None if even all of them fall
   short. *)
let min_servers params ~bandwidth ~wapp ~target sorted ~from =
  let comm =
    (params.Params.server.sreq +. params.Params.server.srep) /. bandwidth
  in
  let budget = (1.0 /. target) -. comm in
  if budget <= 0.0 then None
  else begin
    (* service >= target  <=>  (1 + Wpre * sum 1/wapp) / sum (w/wapp) <= budget *)
    let n = Array.length sorted in
    let rec scan i sum_rate sum_inv acc =
      let numer = 1.0 +. (params.Params.server.wpre *. sum_inv) in
      if sum_rate > 0.0 && numer /. sum_rate <= budget then Some (List.rev acc)
      else if i >= n then None
      else
        let node = sorted.(i) in
        let usable =
          Sched_power.server params ~bandwidth ~node >= target
        in
        if usable then
          scan (i + 1)
            (sum_rate +. (Node.power node /. wapp))
            (sum_inv +. (1.0 /. wapp))
            (node :: acc)
        else scan (i + 1) sum_rate sum_inv acc
    in
    scan from 0.0 0.0 []
  end

(* Round-robin children into open slots (frontier remainder + new agents),
   never exceeding an agent's capacity. *)
let distribute ~slots children =
  let open_slots = Array.of_list slots in
  let n = Array.length open_slots in
  let cursor = ref 0 in
  let place kid =
    let rec seek tried =
      if tried >= n then invalid_arg "Heuristic.distribute: no capacity left";
      let a = open_slots.(!cursor) in
      cursor := (!cursor + 1) mod n;
      if List.length a.kids < a.cap then a.kids <- kid :: a.kids else seek (tried + 1)
    in
    seek 0
  in
  List.iter place children

let build params ~bandwidth ~wapp ~target sorted =
  let n = Array.length sorted in
  let cap_of ~node =
    Sched_power.supported_children params ~bandwidth ~node ~floor:target
      ~max_children:(n - 1)
  in
  let root_cap = cap_of ~node:sorted.(0) in
  if root_cap < 1 then None
  else begin
    let root = { anode = sorted.(0); cap = root_cap; kids = [] } in
    (* [q] is the next unused index in the sorted order. *)
    let rec level frontier q =
      let slots =
        List.fold_left (fun acc a -> acc + (a.cap - List.length a.kids)) 0 frontier
      in
      if slots <= 0 || q >= n then None
      else begin
        (* Scan j = number of frontier slots converted into new agents
           (the shift_nodes move); j = 0 is the all-servers finish. *)
        let rec try_j j =
          if j > min slots (n - q) then `No_finish
          else begin
            let agent_nodes = Array.sub sorted q j in
            let caps = Array.map (fun node -> cap_of ~node) agent_nodes in
            (* A new non-root agent is useless below two children; the
               sorted order makes capacity non-increasing, so stop. *)
            if j > 0 && caps.(j - 1) < 2 then `No_finish
            else begin
              let deep = Array.fold_left ( + ) 0 caps in
              let direct = slots - j in
              match
                min_servers params ~bandwidth ~wapp ~target sorted ~from:(q + j)
              with
              | Some servers
                when List.length servers <= direct + deep
                     && (j = 0 || List.length servers >= 2 * j) ->
                  `Finish (Array.to_list agent_nodes, caps, servers)
              | Some _ | None -> try_j (j + 1)
            end
          end
        in
        match try_j 0 with
        | `Finish (agent_nodes, caps, servers) ->
            let new_agents =
              List.mapi
                (fun i node -> { anode = node; cap = caps.(i); kids = [] })
                agent_nodes
            in
            distribute ~slots:frontier (List.map (fun a -> Kagent a) new_agents);
            (* Guarantee two servers per new agent before balancing the rest. *)
            let rec seed agents servers =
              match (agents, servers) with
              | [], rest -> rest
              | a :: more, s1 :: s2 :: rest ->
                  a.kids <- Kserver s2 :: Kserver s1 :: a.kids;
                  seed more rest
              | _ :: _, _ -> invalid_arg "Heuristic.build: seeding underflow"
            in
            let rest = seed new_agents servers in
            distribute ~slots:(frontier @ new_agents)
              (List.map (fun s -> Kserver s) rest);
            Some root
          | `No_finish ->
            (* Commit a full level: every remaining slot becomes an agent,
               then grow the next level (nodes without capacity for two
               children cannot anchor a subtree, and capacity is monotone
               along the sorted order). *)
            let takeable =
              let rec count i acc =
                if acc >= slots || q + i >= n then acc
                else if cap_of ~node:sorted.(q + i) >= 2 then count (i + 1) (acc + 1)
                else acc
              in
              count 0 0
            in
            if takeable = 0 then None
            else begin
              let new_agents =
                List.init takeable (fun i ->
                    let node = sorted.(q + i) in
                    { anode = node; cap = cap_of ~node; kids = [] })
              in
              distribute ~slots:frontier (List.map (fun a -> Kagent a) new_agents);
              level new_agents (q + takeable)
            end
      end
    in
    match level [ root ] 1 with
    | None -> None
    | Some root ->
        Some
          (lighten_agents params ~bandwidth ~target
             (Tree.normalize (tree_of_ag root)))
  end

let build_for_target params ~platform ~wapp ~target =
  let bandwidth = Platform.uniform_bandwidth platform in
  let sorted =
    Array.of_list (Sched_power.sort_nodes params ~bandwidth (Platform.nodes platform))
  in
  if Array.length sorted < 2 then None else build params ~bandwidth ~wapp ~target sorted

let plan params ~platform ~wapp ~demand =
  let n = Platform.size platform in
  if n < 2 then Error "heuristic: need at least two nodes (one agent, one server)"
  else if wapp <= 0.0 || not (Float.is_finite wapp) then
    Error "heuristic: wapp must be positive and finite"
  else
    match Link.uniform_bandwidth (Platform.link platform) with
    | None ->
        Error "heuristic: the model requires homogeneous connectivity (a single B)"
    | Some bandwidth ->
        let sorted =
          Array.of_list
            (Sched_power.sort_nodes params ~bandwidth (Platform.nodes platform))
        in
        let probes = ref [] in
        let candidates = ref [] in
        let try_target target =
          match build params ~bandwidth ~wapp ~target sorted with
          | None ->
              probes :=
                { target; feasible = false; achieved_rho = 0.0; nodes_used = 0 }
                :: !probes;
              false
          | Some tree ->
              let rho = Evaluate.rho params ~bandwidth ~wapp tree in
              let used = Tree.size tree in
              probes :=
                { target; feasible = true; achieved_rho = rho; nodes_used = used }
                :: !probes;
              candidates := (tree, rho, used) :: !candidates;
              true
        in
        (* Upper bound on any achievable rho: the strongest agent with a
           single child, the service power of everything else, and the
           fastest possible server prediction rate. *)
        let rest = List.tl (Array.to_list sorted) in
        let hi_sched = Sched_power.agent params ~bandwidth ~node:sorted.(0) ~children:1 in
        let hi_service = Service_power.of_servers params ~bandwidth ~wapp rest in
        let hi_predict =
          List.fold_left
            (fun acc node -> Float.max acc (Sched_power.server params ~bandwidth ~node))
            0.0 rest
        in
        let hi = Float.min hi_sched (Float.min hi_service hi_predict) in
        let search_hi = Demand.min_target demand hi in
        (* Bisection for the largest feasible target; feasibility is
           monotone non-increasing in the target. *)
        if not (try_target search_hi) then begin
          let lo = ref 0.0 and high = ref search_hi in
          let iterations = 64 in
          for _ = 1 to iterations do
            if !high -. !lo > 1e-9 *. Float.max 1.0 search_hi then begin
              let mid = 0.5 *. (!lo +. !high) in
              if try_target mid then lo := mid else high := mid
            end
          done;
          (* Make sure at least the degenerate plan exists. *)
          if !candidates = [] then ignore (try_target (0.5 *. !lo))
        end;
        if !candidates = [] then
          (* Fall back to one agent and one server, always feasible. *)
          ignore
            (try_target
               (0.9
               *. Float.min
                    (Sched_power.agent params ~bandwidth ~node:sorted.(0) ~children:1)
                    (Service_power.of_servers params ~bandwidth ~wapp [ sorted.(1) ])));
        match !candidates with
        | [] -> Error "heuristic: could not build any feasible hierarchy"
        | cands ->
            let demand_rate =
              match demand with Demand.Unbounded -> None | Demand.Rate r -> Some r
            in
            let meeting =
              match demand_rate with
              | None -> []
              | Some r -> List.filter (fun (_, rho, _) -> rho >= r *. (1.0 -. 1e-9)) cands
            in
            let pick_max_rho l =
              List.fold_left
                (fun best ((_, rho, used) as c) ->
                  match best with
                  | None -> Some c
                  | Some (_, brho, bused) ->
                      if rho > brho || (rho = brho && used < bused) then Some c else best)
                None l
            in
            let pick_min_used l =
              List.fold_left
                (fun best ((_, rho, used) as c) ->
                  match best with
                  | None -> Some c
                  | Some (_, brho, bused) ->
                      if used < bused || (used = bused && rho > brho) then Some c
                      else best)
                None l
            in
            let chosen, demand_met =
              match meeting with
              | [] -> (pick_max_rho cands, false)
              | _ :: _ -> (pick_min_used meeting, true)
            in
            (match chosen with
            | None -> Error "heuristic: empty candidate set"
            | Some (tree, rho, _) ->
                Ok { tree; predicted_rho = rho; probes = List.rev !probes; demand_met })

let plan_tree params ~platform ~wapp ~demand =
  Result.map (fun r -> r.tree) (plan params ~platform ~wapp ~demand)
