open Adept_platform
module Throughput = Adept_model.Throughput

let agent params ~bandwidth ~node ~children =
  Throughput.agent_sched params ~bandwidth ~power:(Node.power node) ~degree:children

let server params ~bandwidth ~node =
  Throughput.server_sched params ~bandwidth ~power:(Node.power node)

let sort_nodes params ~bandwidth nodes =
  match nodes with
  | [] -> []
  | _ ->
      let fanout = max 1 (List.length nodes - 1) in
      let keyed =
        List.map (fun n -> (agent params ~bandwidth ~node:n ~children:fanout, n)) nodes
      in
      let compare (ka, a) (kb, b) =
        match Float.compare kb ka with
        | 0 -> Node.compare_by_power_desc a b
        | c -> c
      in
      List.map snd (List.sort compare keyed)

let supported_children params ~bandwidth ~node ~floor ~max_children =
  (* Agent sched power is FP-monotone non-increasing in the degree (every
     cost term is a rounded sum/product of non-negative parameters with
     the degree), so the usable degrees form a prefix and a gallop +
     binary search lands on exactly the boundary a linear scan from 1
     would find — at O(log d) instead of O(d) model evaluations, which
     matters when capacities reach the platform size. *)
  let ok d = agent params ~bandwidth ~node ~children:d >= floor in
  if max_children < 1 then 0
  else if not (ok 1) then 0
  else begin
    (* Gallop to the first failing degree (or the cap). *)
    let rec gallop lo hi =
      (* invariant: ok lo; lo < hi <= max_children + 1 *)
      if ok (hi - 1) then
        if hi > max_children then max_children
        else gallop (hi - 1) (min (max_children + 1) (((hi - 1) * 2) + 1))
      else begin
        (* first failure lies in (lo, hi - 1]; binary search for it *)
        let lo = ref lo and hi = ref (hi - 1) in
        (* invariant: ok !lo, not (ok !hi) *)
        while !hi - !lo > 1 do
          let mid = (!lo + !hi) / 2 in
          if ok mid then lo := mid else hi := mid
        done;
        !lo
      end
    in
    gallop 1 (min (max_children + 1) 3)
  end
