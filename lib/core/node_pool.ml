open Adept_platform
module Params = Adept_model.Params

type t = {
  params : Params.t;
  bandwidth : float;
  wapp : float;
  sorted : Node.t array;
  server_sched : float array;
  (* Prefix sums of the Eq. 15 service terms over the rest
     (sorted.(1..n-1)), anchored at index 1 and accumulated in exactly
     the fold order of [Throughput.service]: ratio_rest.(i) and
     rate_rest.(i) are the sums over sorted.(1..i-1), so the full-rest
     sums live at index n.  Anchoring at 1 (not 0) matters: a fold that
     starts at the second node must see the same sequence of roundings
     as [Service_power.of_servers] on the rest list. *)
  ratio_rest : float array;
  rate_rest : float array;
  (* Equal-power nodes are contiguous in the sorted order (the sort key
     is a monotone function of power, ties broken by power); each run is
     a power class.  Capacity and feasibility depend on a node only
     through its power, so per-class memoization is exact. *)
  class_of : int array;
  class_count : int;
}

let create params ~bandwidth ~wapp nodes =
  let sorted = Array.of_list (Sched_power.sort_nodes params ~bandwidth nodes) in
  let n = Array.length sorted in
  let server_sched =
    Array.map (fun node -> Sched_power.server params ~bandwidth ~node) sorted
  in
  let ratio_rest = Array.make (n + 1) 0.0 in
  let rate_rest = Array.make (n + 1) 0.0 in
  for i = 1 to n - 1 do
    ratio_rest.(i + 1) <- ratio_rest.(i) +. (params.Params.server.wpre /. wapp);
    rate_rest.(i + 1) <- rate_rest.(i) +. (Node.power sorted.(i) /. wapp)
  done;
  let class_of = Array.make (max n 1) 0 in
  let classes = ref 0 in
  for i = 0 to n - 1 do
    if i > 0 && Node.power sorted.(i) <> Node.power sorted.(i - 1) then incr classes;
    class_of.(i) <- !classes
  done;
  {
    params;
    bandwidth;
    wapp;
    sorted;
    server_sched;
    ratio_rest;
    rate_rest;
    class_of;
    class_count = (if n = 0 then 0 else !classes + 1);
  }

let size t = Array.length t.sorted
let node t i = t.sorted.(i)
let nodes t = t.sorted
let bandwidth t = t.bandwidth
let wapp t = t.wapp
let server_sched t i = t.server_sched.(i)
let class_of t i = t.class_of.(i)
let class_count t = t.class_count

let hi_sched t =
  Sched_power.agent t.params ~bandwidth:t.bandwidth ~node:t.sorted.(0) ~children:1

(* The reference folds [Float.max] over the rest's server scheduling
   powers; server scheduling power is FP-monotone in raw power and power
   is non-increasing along the sorted order, so the maximum is the first
   rest element's. *)
let hi_predict t = t.server_sched.(1)

let hi_service t =
  let n = size t in
  Service_power.of_sums t.params ~bandwidth:t.bandwidth ~ratio_sum:t.ratio_rest.(n)
    ~rate_sum:t.rate_rest.(n)

let usable_until t ~target =
  let n = size t in
  (* First index whose Eq. 14 server power falls below [target]; the
     predicate is monotone along the sorted order (power non-increasing,
     server power FP-monotone in power), so a binary search lands on the
     same boundary a linear scan would. *)
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.server_sched.(mid) >= target then lo := mid + 1 else hi := mid
  done;
  !lo

type scan = Servers of int | Overflow | Infeasible

let min_servers t ~target ~usable ~from ~cap =
  let comm =
    (t.params.Params.server.sreq +. t.params.Params.server.srep) /. t.bandwidth
  in
  let budget = (1.0 /. target) -. comm in
  if budget <= 0.0 then Infeasible
  else begin
    let wpre = t.params.Params.server.wpre in
    (* The reference scans every index from [from], skipping unusable
       nodes without touching the sums.  Unusable nodes form a suffix
       ([usable] is the boundary), so stopping the scan at [usable] sees
       the same condition values: past it the sums are frozen and the
       first re-check decides.  [cap] bounds the prefix the caller could
       accept (direct + deep slots); once the count exceeds it, every
       later answer — a longer prefix or None — is rejected the same way,
       so the scan can stop without changing any decision.  The scan
       consumes every index in [from, usable), so the answer is fully
       described by its length — the caller reads the nodes straight off
       the sorted array instead of a freshly consed list (the per-probe
       allocation that dominated the 100k-node profile). *)
    let rec scan i sum_rate sum_inv count =
      let numer = 1.0 +. (wpre *. sum_inv) in
      if sum_rate > 0.0 && numer /. sum_rate <= budget then Servers count
      else if count > cap then Overflow
      else if i >= usable then Infeasible
      else
        scan (i + 1)
          (sum_rate +. (Node.power t.sorted.(i) /. t.wapp))
          (sum_inv +. (1.0 /. t.wapp))
          (count + 1)
    in
    scan (max from 0) 0.0 0.0 0
  end

let feasible t ~target ~usable =
  (* [min_servers ~from:1] without materializing the prefix: whether any
     prefix of the usable rest reaches the target service power.  If not,
     no scan from a later index can either — a suffix's usable set is
     pointwise weaker at every count, its numerator is count-determined
     and identical, so its condition is harder at every step — and the
     whole build is infeasible. *)
  let comm =
    (t.params.Params.server.sreq +. t.params.Params.server.srep) /. t.bandwidth
  in
  let budget = (1.0 /. target) -. comm in
  if budget <= 0.0 then false
  else begin
    let wpre = t.params.Params.server.wpre in
    let rec scan i sum_rate sum_inv =
      let numer = 1.0 +. (wpre *. sum_inv) in
      if sum_rate > 0.0 && numer /. sum_rate <= budget then true
      else if i >= usable then false
      else
        scan (i + 1)
          (sum_rate +. (Node.power t.sorted.(i) /. t.wapp))
          (sum_inv +. (1.0 /. t.wapp))
    in
    scan 1 0.0 0.0
  end
