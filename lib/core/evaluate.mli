(** Model evaluation of arbitrary hierarchies: bridges {!Adept_hierarchy}
    trees and the Eq. 16 throughput model. *)

open Adept_platform
open Adept_hierarchy

val spec_of_tree :
  wapp:float -> Tree.t -> Adept_model.Throughput.deployment_spec
(** Agents with their degrees and servers with their powers, as the
    throughput model wants them.  @raise Invalid_argument if the tree has
    no servers or an agent with no children. *)

val rho :
  Adept_model.Params.t -> bandwidth:float -> wapp:float -> Tree.t -> float
(** Eq. 16 completed-request throughput of the deployment. *)

val rho_on :
  Adept_model.Params.t -> platform:Platform.t -> wapp:float -> Tree.t -> float
(** {!rho} with the platform's uniform bandwidth.
    @raise Invalid_argument on heterogeneous connectivity. *)

val bottleneck :
  Adept_model.Params.t ->
  bandwidth:float ->
  wapp:float ->
  Tree.t ->
  [ `Agent_sched | `Server_sched | `Service ]
(** Which side of Eq. 16 limits the deployment. *)

type bottleneck_element = {
  be_side : [ `Sched | `Service ];
      (** Which side of [rho = min(rho_sched, rho_service)] attains the
          minimum (ties go to the scheduling side, like {!bottleneck}). *)
  be_role : [ `Agent | `Server ];
  be_node : Node.t option;
      (** The saturating element of Eq. 14 when the scheduling side
          binds.  [None] when the service side binds: under the Eqs. 6–9
          load split every server saturates together, so no single
          element is singled out. *)
  be_rho_sched : float;  (** Eq. 14, req/s. *)
  be_rho_service : float;  (** Eq. 15, req/s. *)
  be_element_rho : float;  (** The binding element's (or side's) own term. *)
}

val bottleneck_element :
  Adept_model.Params.t ->
  bandwidth:float ->
  wapp:float ->
  Tree.t ->
  bottleneck_element
(** {!bottleneck} refined to a concrete element: which node's Eq. 14 term
    (or the collective Eq. 15 service capacity) limits the deployment —
    the model-side prediction that measured critical-path attribution
    ({!Adept_obs} [Attribution]) is checked against.
    @raise Invalid_argument on a non-positive [wapp] or a tree without
    servers. *)

val describe_bottleneck_element : bottleneck_element -> string
(** One-line human rendering of the prediction. *)

val rho_hetero :
  Adept_model.Params.t -> platform:Platform.t -> wapp:float -> Tree.t -> float
(** Eq. 16 generalised to heterogeneous connectivity — the paper's "we
    plan to deal with heterogeneous communication in future works", made
    concrete:

    - every term of Eq. 14 charges each message at the bandwidth of the
      link it crosses (an agent's parent link and each of its child
      links); the root's client link and each server's client link use
      that node's intra-cluster bandwidth;
    - Eq. 15's shared communication term becomes the load-weighted mean of
      the per-server client-link costs, with the Eqs. 6–9 split
      [x_i = (w_i / wapp) / sum_j (w_j / wapp)].

    With a uniform bandwidth this reduces exactly to {!rho} (tested). *)

type element_cost = {
  ec_node : Node.t;
  ec_level : int;  (** Depth in the hierarchy, root = 0. *)
  ec_role : [ `Agent | `Server ];
  ec_degree : int;  (** Children for agents, 0 for servers. *)
  ec_wreq_s : float;  (** Agent request processing [Wreq / w], seconds. *)
  ec_wrep_s : float;  (** Agent reply aggregation [Wrep(d) / w], seconds. *)
  ec_wpre_s : float;  (** Server prediction [Wpre / w], seconds. *)
  ec_service_s : float;  (** Server execution [Wapp / w], seconds. *)
}

val element_costs :
  Adept_model.Params.t -> wapp:float -> Tree.t -> element_cost list
(** The per-element compute components of Eqs. 1–5, per node of the
    hierarchy (sorted by node id): what each element should charge per
    request, to set against measured per-element timings.  Fields that
    do not apply to the element's role are 0. *)

val report :
  Adept_model.Params.t -> bandwidth:float -> wapp:float -> Tree.t -> string
(** Multi-line human summary: shape, throughputs, bottleneck. *)
