(** Unified planning interface over every strategy in the library.

    This is the front door a deployment tool (the paper's planned ADePT)
    calls: pick a strategy, a platform, a workload, a demand — get a
    validated hierarchy with its predicted throughput. *)

open Adept_platform
open Adept_hierarchy

type strategy =
  | Heuristic  (** The paper's Algorithm 1 (heterogeneous heuristic). *)
  | Reference
      (** The frozen pre-{!Node_pool} implementation of Algorithm 1
          ({!Heuristic_reference}) — the oracle the property-test
          equivalence harness checks {!Heuristic} against.  Same
          decisions, quadratic scans; do not use it for large platforms. *)
  | Star  (** One agent, every other node a server. *)
  | Balanced of int  (** The paper's balanced graph with this many middle agents. *)
  | Dary of int  (** Complete spanning d-ary tree of fixed degree. *)
  | Homogeneous_optimal  (** Degree search over d-ary trees (ref. [10]). *)
  | Exhaustive  (** Brute force; tiny platforms only. *)
  | Multi_cluster  (** Per-cluster planning with WAN-aware scoring. *)
  | Improved of strategy
      (** Plan with the inner strategy, then climb with the iterative
          bottleneck remover of refs [6]/[7]. *)

val strategy_name : strategy -> string
val strategy_of_string : string -> (strategy, Error.t) Stdlib.result
(** Parse ["heuristic"], ["reference"], ["star"], ["balanced:<k>"],
    ["dary:<d>"], ["homogeneous"], ["exhaustive"], ["multi-cluster"], and
    ["improved:<strategy>"].  Unknown names are [Error.Invalid_input]. *)

type plan = {
  strategy : strategy;
  tree : Tree.t;
  predicted_rho : float;  (** Eq. 16 model throughput. *)
  demand_met : bool;  (** Always false under unbounded demand. *)
  nodes_used : int;
  nodes_available : int;
  evaluations : int;
      (** Candidate hierarchies the strategy evaluated: bisection probes
          for the heuristic, degrees tried for the homogeneous search,
          enumerated trees for [Exhaustive], inner evaluations plus climb
          steps for [Improved]; 1 for the fixed-shape baselines.  Feeds
          the [adept_planner_evaluations_total] metric. *)
}

val run :
  strategy ->
  Adept_model.Params.t ->
  platform:Platform.t ->
  wapp:float ->
  demand:Adept_model.Demand.t ->
  (plan, Error.t) Stdlib.result
(** Plan and validate.  Every returned tree passes
    [Validate.check ~platform]; strategies that cannot satisfy the
    platform (e.g. [Balanced] with too few nodes) return
    [Error.No_feasible_hierarchy].
    Baseline strategies receive nodes strongest-first.  Predicted
    throughput is {!Evaluate.rho_hetero}, so baselines and
    [Multi_cluster] also score correctly on multi-site platforms
    (strategies whose algorithm needs a single bandwidth — the heuristic,
    the degree search, [Improved] — still error there). *)

val run_with_probe :
  (target:float -> Tree.t option) ->
  Adept_model.Params.t ->
  platform:Platform.t ->
  wapp:float ->
  demand:Adept_model.Demand.t ->
  (plan, Error.t) Stdlib.result
(** {!run} for [Heuristic] with the per-target builder swapped out (see
    {!Heuristic.plan}'s [?probe]): same validation, same [plan] record.
    This is the entry point the sharded planning service feeds its
    speculative probe memo through — when the override answers each
    target with exactly what the internal builder would, the result is
    bit-identical to [run Heuristic]. *)

type replan_result = {
  replanned : plan;  (** New plan over the survivors, on original node ids. *)
  failed : Node.id list;  (** Sorted, deduplicated. *)
  survivors : int;
  rho_before : float;
      (** Predicted throughput before the failures: the [?reference]
          hierarchy's, or a fresh full-platform plan's. *)
  rho_after : float;  (** The replanned hierarchy's predicted throughput. *)
  rho_drop : float;
      (** Relative throughput hit, [1 - after/before] clamped to [>= 0]. *)
}

val replan :
  strategy ->
  Adept_model.Params.t ->
  platform:Platform.t ->
  wapp:float ->
  demand:Adept_model.Demand.t ->
  failed:Node.id list ->
  ?reference:Tree.t ->
  unit ->
  (replan_result, Error.t) Stdlib.result
(** Rebuild the hierarchy after [failed] nodes crash: plan with [strategy]
    on the surviving sub-platform (same names, powers, clusters and link
    structure, node ids renumbered internally and mapped back), validate
    on the original platform, and report the predicted throughput hit
    against [?reference] (default: what [strategy] achieves with every
    node up).  Never raises on degenerate remnants: an empty or
    off-platform [failed] list is [Error.Invalid_input], zero survivors is
    [Error.No_survivors], a single survivor is
    [Error.Insufficient_survivors] (a hierarchy needs an agent and a
    server), and a remnant the strategy cannot plan is
    [Error.No_feasible_hierarchy] — the distinctions an online controller
    needs to decide between giving up and waiting for recoveries. *)

val pp_replan : Format.formatter -> replan_result -> unit

type replan_mode =
  | Incremental  (** The previous hierarchy was patched in place. *)
  | Full of string
      (** Replanned from scratch; the payload says why the patch was not
          good enough (e.g. ["root-died"], ["rho-below-bound"]). *)

val replan_mode_name : replan_mode -> string
(** ["incremental"] or ["full"] — the [replan-mode] breadcrumb value. *)

val replan_fallback_reason : replan_mode -> string option
(** The [Full] payload, [None] for [Incremental]. *)

val replan_incremental :
  strategy ->
  Adept_model.Params.t ->
  platform:Platform.t ->
  wapp:float ->
  demand:Adept_model.Demand.t ->
  failed:Node.id list ->
  ?recovered:Node.id list ->
  previous:Tree.t ->
  ?slack:float ->
  unit ->
  (replan_result * replan_mode, Error.t) Stdlib.result
(** Patch [previous] instead of replanning from scratch when the patch is
    good enough: dead servers are dropped, a dead agent's position is
    taken by its strongest surviving child (an agent child absorbs the
    orphaned siblings; a server child is promoted over them), and
    untouched subtrees are reused by structural sharing.  The patched
    hierarchy is accepted — [Incremental] — when its predicted throughput
    (Eq. 16) is at least [(1 - slack)] of the survivor-platform upper
    bound the heuristic bisects under (so it provably trails whatever a
    from-scratch replan could achieve by at most [slack]); otherwise the
    call falls back to {!replan} with [previous] as the reference and
    reports [Full reason].  Fallback reasons: ["root-died"],
    ["no-survivors-in-tree"], ["invalid-patch"],
    ["non-uniform-bandwidth"], ["rho-below-bound"].

    [recovered] names nodes that returned to service since [previous]
    was planned (the write-off/recovery set an online controller
    tracks): each one absent from [previous] is grafted back into the
    patched hierarchy as a server under the least-loaded agent, kept
    only when the graft does not lower the patched tree's Eq. 16
    throughput — re-admission without waiting for the full-replan path
    (which re-admits implicitly by planning over every survivor).  A
    patch the deaths reduced to a bare root (no servers left, hence no
    throughput to compare) is rescued by the first recovery, grafted
    unconditionally before the patch is judged.  Ids already serving in
    [previous] are ignored; an id in both [failed] and [recovered] is
    [Error.Invalid_input].

    Unlike {!replan}, an empty [failed] list is not an error: with no
    recoveries the result is the input plan verbatim (the tree
    physically shared, zero evaluations, zero drop) — the determinism
    anchor the property tests pin; with recoveries the graft runs as a
    pure improvement step (no slack gate — nothing was lost) and still
    reports [Incremental].  Off-platform ids, zero survivors and a
    single survivor are the same typed errors as {!replan}.  [slack]
    defaults to [0.15]; it must lie in [\[0, 1)]. *)

val compare_strategies :
  Adept_model.Params.t ->
  platform:Platform.t ->
  wapp:float ->
  demand:Adept_model.Demand.t ->
  strategy list ->
  (strategy * (plan, Error.t) Stdlib.result) list
(** Run several strategies on the same problem (the Section 5.3
    experiment shape). *)

val pp_plan : Format.formatter -> plan -> unit
