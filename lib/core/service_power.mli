(** Service power of a server set (the paper's [calc_hier_ser_pow]).

    Eq. 15 evaluated for the servers of a hierarchy running an application
    of cost [wapp] MFlop, "when load is equally divided among the servers
    of the hierarchy" — more precisely, divided so that heterogeneous
    servers finish together (Eqs. 6–9). *)

open Adept_platform

val of_servers :
  Adept_model.Params.t -> bandwidth:float -> wapp:float -> Node.t list -> float
(** Service throughput in requests/s.  @raise Invalid_argument on an empty
    list or non-positive [wapp]. *)

val of_powers :
  Adept_model.Params.t -> bandwidth:float -> wapp:float -> float list -> float
(** Same, from raw powers. *)

val of_sums :
  Adept_model.Params.t ->
  bandwidth:float ->
  ratio_sum:float ->
  rate_sum:float ->
  float
(** Eq. 15 from pre-accumulated sums: [ratio_sum] is the fold of
    [Wpre / wapp] over the servers, [rate_sum] the fold of
    [power / wapp] — what {!Node_pool} keeps as prefix arrays.  When the
    sums were accumulated in the same order as the server list, the
    result is bit-identical to {!of_servers}.
    @raise Invalid_argument on non-positive [bandwidth]/[rate_sum] or a
    negative [ratio_sum]. *)

val marginal :
  Adept_model.Params.t -> bandwidth:float -> wapp:float -> Node.t list -> Node.t -> float
(** [marginal params ~bandwidth ~wapp servers candidate] is the service
    power after adding [candidate] to [servers] — what the heuristic
    evaluates when it considers taking the next sorted node as a server. *)
