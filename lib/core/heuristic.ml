open Adept_platform
open Adept_hierarchy
module Params = Adept_model.Params
module Demand = Adept_model.Demand

(* This module is the pooled/prefix-sum reimplementation of the seed
   planner kept verbatim in {!Heuristic_reference}.  Every optimization
   below is decision-identical: the same floating-point values reach the
   same comparisons in the same order, so the produced tree and rho are
   bit-identical to the reference (the QCheck equivalence property in
   test_core.ml enforces this).  Only work that cannot change a decision
   is skipped — see DESIGN.md "Planner internals". *)

type probe = { target : float; feasible : bool; achieved_rho : float; nodes_used : int }

type result = {
  tree : Tree.t;
  predicted_rho : float;
  probes : probe list;
  demand_met : bool;
}

(* Working representation during the level-by-level build.  [nkids]
   mirrors [List.length kids] so capacity checks are O(1). *)
type ag = { anode : Node.t; cap : int; mutable kids : kid list; mutable nkids : int }
and kid = Kagent of ag | Kserver of Node.t

let rec tree_of_ag a =
  Tree.agent a.anode
    (List.rev_map (function Kagent c -> tree_of_ag c | Kserver s -> Tree.server s) a.kids)

(* Agent lightening: the sorted order puts the strongest nodes in agent
   positions, but once the target [T] is fixed, any node whose Eq. 14
   scheduling power at the agent's degree still clears [T] can hold that
   position.  Swapping the strongest agents with the weakest such servers
   moves compute power to the service side at no scheduling cost — a
   strict improvement over the paper's strongest-first rule (DESIGN.md
   §5).

   The swap demands a wide safety margin ([lighten_slack]) rather than bare
   feasibility: an agent operating close to its Eq. 14 limit stretches the
   scheduling round-trip, and during that window concurrent requests select
   servers from stale predictions and convoy onto the same machine.  The
   steady-state model cannot express this, but the simulator (like the real
   middleware) pays it dearly on long-running services. *)
let lighten_slack = 4.0

(* The reference re-sorts both role lists and rewrites the whole tree for
   every swap.  Here the two sorted orders are maintained as arrays
   across swaps and the node substitution is applied once at the end; the
   swap sequence is identical because both comparators are total orders
   (ties break on the node id), the feasibility predicate is monotone
   along the servers' power-ascending order (so a binary search finds the
   same first candidate a linear scan would), and a swap only exchanges
   the occupants of two positions — the degrees attached to agent
   positions never change. *)
let lighten_agents params ~bandwidth ~target tree =
  let fuel = Tree.size tree in
  let cmp_agent (a, _) (b, _) = Node.compare_by_power_desc a b in
  let cmp_server a b = Node.compare_by_power_desc b a in
  let agents = Array.of_list (Tree.agents_with_degree tree) in
  let servers = Array.of_list (Tree.servers tree) in
  Array.sort cmp_agent agents;
  Array.sort cmp_server servers;
  let feasible_power power degree =
    Adept_model.Throughput.agent_sched params ~bandwidth ~power ~degree
    >= lighten_slack *. target
  in
  (* First server (power-ascending) clearing the scheduling floor at
     [degree]: the predicate is FP-monotone in power, so it holds on a
     suffix and the boundary is binary-searchable. *)
  let first_feasible degree =
    let n = Array.length servers in
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if feasible_power (Node.power servers.(mid)) degree then hi := mid
      else lo := mid + 1
    done;
    !lo
  in
  let find_swap () =
    let n_agents = Array.length agents in
    let rec go i =
      if i >= n_agents then None
      else
        let agent, degree = agents.(i) in
        let j = first_feasible degree in
        if j < Array.length servers && Node.power servers.(j) < Node.power agent
        then Some (i, j)
        else go (i + 1)
    in
    go 0
  in
  (* Remove index [i], insert [x] at its sorted position (total order ⇒
     the position is unique, matching a full re-sort). *)
  let replace_sorted arr cmp i x =
    let n = Array.length arr in
    let y = arr.(i) in
    if cmp x y < 0 then begin
      (* move left: shift (pos..i-1) right *)
      let pos = ref 0 in
      while cmp arr.(!pos) x < 0 do incr pos done;
      Array.blit arr !pos arr (!pos + 1) (i - !pos);
      arr.(!pos) <- x
    end
    else begin
      (* move right: shift (i+1..pos-1) left *)
      let pos = ref n in
      while !pos > i + 1 && cmp x arr.(!pos - 1) < 0 do decr pos done;
      Array.blit arr (i + 1) arr i (!pos - 1 - (i + 1) + 1);
      arr.(!pos - 1) <- x
    end
  in
  (* occupant.(original node id at a tree position) = node now holding it *)
  let occupant = Hashtbl.create 16 in
  let position = Hashtbl.create 16 in
  let pos_of node =
    Option.value ~default:(Node.id node) (Hashtbl.find_opt position (Node.id node))
  in
  let rec loop fuel swapped =
    if fuel = 0 then swapped
    else
      match find_swap () with
      | None -> swapped
      | Some (i, j) ->
          let agent, degree = agents.(i) in
          let server = servers.(j) in
          let pa = pos_of agent and ps = pos_of server in
          Hashtbl.replace occupant pa server;
          Hashtbl.replace occupant ps agent;
          Hashtbl.replace position (Node.id server) pa;
          Hashtbl.replace position (Node.id agent) ps;
          replace_sorted agents cmp_agent i (server, degree);
          replace_sorted servers cmp_server j agent;
          loop (fuel - 1) true
  in
  if not (loop fuel false) then tree
  else
    let substitute node =
      match Hashtbl.find_opt occupant (Node.id node) with
      | Some n -> n
      | None -> node
    in
    let rec rewrite = function
      | Tree.Server n -> Tree.server (substitute n)
      | Tree.Agent (n, children) -> Tree.agent (substitute n) (List.map rewrite children)
    in
    rewrite tree

(* Round-robin children into open slots (frontier remainder + new agents),
   never exceeding an agent's capacity. *)
let distribute ~slots children =
  let open_slots = Array.of_list slots in
  let n = Array.length open_slots in
  let cursor = ref 0 in
  let place kid =
    let rec seek tried =
      if tried >= n then invalid_arg "Heuristic.distribute: no capacity left";
      let a = open_slots.(!cursor) in
      cursor := (!cursor + 1) mod n;
      if a.nkids < a.cap then begin
        a.kids <- kid :: a.kids;
        a.nkids <- a.nkids + 1
      end
      else seek (tried + 1)
    in
    seek 0
  in
  List.iter place children

(* Reusable per-plan scratch: the capacity memo is sized by the pool's
   class count once and re-blanked per probe with [Array.fill] — the
   bisection runs ~40 probes per plan, and re-allocating (and collecting)
   a class-indexed array on every probe showed up at 100k nodes. *)
let scratch_for pool = Array.make (max 1 (Node_pool.class_count pool)) (-1)

let build ?scratch params pool ~target =
  let n = Node_pool.size pool in
  let bandwidth = Node_pool.bandwidth pool in
  let sorted = Node_pool.nodes pool in
  (* Capacity depends on a node only through its power: memoize per
     power class (the generators produce a handful of discrete levels,
     so this collapses the per-node capacity scans of the reference). *)
  let cap_cache =
    match scratch with
    | Some arr ->
        Array.fill arr 0 (Array.length arr) (-1);
        arr
    | None -> scratch_for pool
  in
  let cap_at i =
    let c = Node_pool.class_of pool i in
    let cached = cap_cache.(c) in
    if cached >= 0 then cached
    else begin
      let v =
        Sched_power.supported_children params ~bandwidth ~node:sorted.(i)
          ~floor:target ~max_children:(n - 1)
      in
      cap_cache.(c) <- v;
      v
    end
  in
  let usable = Node_pool.usable_until pool ~target in
  let root_cap = cap_at 0 in
  if root_cap < 1 then None
  else if not (Node_pool.feasible pool ~target ~usable) then
    (* No usable prefix from any start index reaches the target service
       power, so every [min_servers] the level build could issue fails
       and the build bottoms out at [None] — skip the whole cascade. *)
    None
  else begin
    let root = { anode = sorted.(0); cap = root_cap; kids = []; nkids = 0 } in
    (* [q] is the next unused index in the sorted order. *)
    let rec level frontier q =
      let slots = List.fold_left (fun acc a -> acc + (a.cap - a.nkids)) 0 frontier in
      if slots <= 0 || q >= n then None
      else begin
        (* Scan j = number of frontier slots converted into new agents
           (the shift_nodes move); j = 0 is the all-servers finish.
           [deep] carries the running capacity sum of the j new agents so
           each step is O(1) bookkeeping plus the capped server scan. *)
        let max_j = min slots (n - q) in
        let rec try_j j deep =
          if j > max_j then `No_finish
          else begin
            let last_cap = if j = 0 then max_int else cap_at (q + j - 1) in
            (* A new non-root agent is useless below two children; the
               sorted order makes capacity non-increasing, so stop. *)
            if j > 0 && last_cap < 2 then `No_finish
            else begin
              let deep = if j = 0 then 0 else deep + last_cap in
              let direct = slots - j in
              match
                Node_pool.min_servers pool ~target ~usable ~from:(q + j)
                  ~cap:(direct + deep)
              with
              | Node_pool.Servers count
                when count <= direct + deep && (j = 0 || count >= 2 * j) ->
                  `Finish (j, count)
              | Node_pool.Servers _ | Node_pool.Overflow | Node_pool.Infeasible ->
                  try_j (j + 1) deep
            end
          end
        in
        match try_j 0 0 with
        | `Finish (j, count) ->
            (* The accepted servers are the sorted indices
               [q + j .. q + j + count - 1]; read them off the pool
               directly instead of materializing a list per probe. *)
            let sfrom = q + j in
            let new_agents =
              List.init j (fun i ->
                  { anode = sorted.(q + i); cap = cap_at (q + i); kids = []; nkids = 0 })
            in
            distribute ~slots:frontier (List.map (fun a -> Kagent a) new_agents);
            (* Guarantee two servers per new agent before balancing the rest. *)
            let rec seed agents idx =
              match agents with
              | [] -> idx
              | a :: more ->
                  if idx + 1 >= sfrom + count then
                    invalid_arg "Heuristic.build: seeding underflow"
                  else begin
                    a.kids <- Kserver sorted.(idx + 1) :: Kserver sorted.(idx) :: a.kids;
                    a.nkids <- a.nkids + 2;
                    seed more (idx + 2)
                  end
            in
            let rest_from = seed new_agents sfrom in
            let rest = ref [] in
            for i = sfrom + count - 1 downto rest_from do
              rest := Kserver sorted.(i) :: !rest
            done;
            distribute ~slots:(frontier @ new_agents) !rest;
            Some root
        | `No_finish ->
            (* Commit a full level: every remaining slot becomes an agent,
               then grow the next level (nodes without capacity for two
               children cannot anchor a subtree, and capacity is monotone
               along the sorted order). *)
            let takeable =
              let rec count i acc =
                if acc >= slots || q + i >= n then acc
                else if cap_at (q + i) >= 2 then count (i + 1) (acc + 1)
                else acc
              in
              count 0 0
            in
            if takeable = 0 then None
            else begin
              let new_agents =
                List.init takeable (fun i ->
                    let idx = q + i in
                    { anode = sorted.(idx); cap = cap_at idx; kids = []; nkids = 0 })
              in
              distribute ~slots:frontier (List.map (fun a -> Kagent a) new_agents);
              level new_agents (q + takeable)
            end
      end
    in
    match level [ root ] 1 with
    | None -> None
    | Some root ->
        Some
          (lighten_agents params ~bandwidth ~target
             (Tree.normalize (tree_of_ag root)))
  end

let build_for_target params ~platform ~wapp ~target =
  let bandwidth = Platform.uniform_bandwidth platform in
  let pool = Node_pool.create params ~bandwidth ~wapp (Platform.nodes platform) in
  if Node_pool.size pool < 2 then None else build params pool ~target

(* One probe as a standalone entry point for concurrent callers: the
   build is a pure function of (params, pool, target) and the pool is
   immutable after creation, so several domains may probe one shared
   pool at once.  The only mutable state is the capacity scratch, held
   per domain (not per pool — it is re-blanked and, when a bigger pool
   comes along, re-sized on entry). *)
let probe_scratch = Domain.DLS.new_key (fun () -> ref [||])

let probe params pool ~target =
  let cell = Domain.DLS.get probe_scratch in
  let need = max 1 (Node_pool.class_count pool) in
  if Array.length !cell < need then cell := Array.make need (-1);
  build ~scratch:!cell params pool ~target

let pool_of params ~platform ~wapp =
  match Link.uniform_bandwidth (Platform.link platform) with
  | None -> None
  | Some bandwidth ->
      Some (Node_pool.create params ~bandwidth ~wapp (Platform.nodes platform))

let plan ?probe params ~platform ~wapp ~demand =
  let n = Platform.size platform in
  if n < 2 then Error "heuristic: need at least two nodes (one agent, one server)"
  else if wapp <= 0.0 || not (Float.is_finite wapp) then
    Error "heuristic: wapp must be positive and finite"
  else
    match Link.uniform_bandwidth (Platform.link platform) with
    | None ->
        Error "heuristic: the model requires homogeneous connectivity (a single B)"
    | Some bandwidth ->
        let pool = Node_pool.create params ~bandwidth ~wapp (Platform.nodes platform) in
        let probes = ref [] in
        let candidates = ref [] in
        let scratch = scratch_for pool in
        (* [?probe] swaps the builder out from under the driver — the
           sharded service memoizes speculative builds and feeds them
           back here, so every decision (probe order, candidate order,
           tie-breaks) is made by this very loop and the result is
           bit-identical to the sequential plan by construction.  The
           override MUST return exactly what [build] returns for the
           same target; {!probe} does. *)
        let run_build =
          match probe with
          | Some f -> f
          | None -> fun ~target -> build ~scratch params pool ~target
        in
        let try_target target =
          match run_build ~target with
          | None ->
              probes :=
                { target; feasible = false; achieved_rho = 0.0; nodes_used = 0 }
                :: !probes;
              false
          | Some tree ->
              let rho = Evaluate.rho params ~bandwidth ~wapp tree in
              let used = Tree.size tree in
              probes :=
                { target; feasible = true; achieved_rho = rho; nodes_used = used }
                :: !probes;
              candidates := (tree, rho, used) :: !candidates;
              true
        in
        (* Upper bound on any achievable rho: the strongest agent with a
           single child, the service power of everything else, and the
           fastest possible server prediction rate — all O(1) pool
           lookups, bit-identical to the reference's rest-list folds. *)
        let hi_sched = Node_pool.hi_sched pool in
        let hi_service = Node_pool.hi_service pool in
        let hi_predict = Node_pool.hi_predict pool in
        let hi = Float.min hi_sched (Float.min hi_service hi_predict) in
        let search_hi = Demand.min_target demand hi in
        (* Bisection for the largest feasible target; feasibility is
           monotone non-increasing in the target. *)
        if not (try_target search_hi) then begin
          let lo = ref 0.0 and high = ref search_hi in
          let iterations = 64 in
          for _ = 1 to iterations do
            if !high -. !lo > 1e-9 *. Float.max 1.0 search_hi then begin
              let mid = 0.5 *. (!lo +. !high) in
              if try_target mid then lo := mid else high := mid
            end
          done;
          (* Make sure at least the degenerate plan exists. *)
          if !candidates = [] then ignore (try_target (0.5 *. !lo))
        end;
        if !candidates = [] then
          (* Fall back to one agent and one server, always feasible. *)
          ignore
            (try_target
               (0.9
               *. Float.min
                    (Sched_power.agent params ~bandwidth ~node:(Node_pool.node pool 0)
                       ~children:1)
                    (Service_power.of_servers params ~bandwidth ~wapp
                       [ Node_pool.node pool 1 ])));
        match !candidates with
        | [] -> Error "heuristic: could not build any feasible hierarchy"
        | cands ->
            let demand_rate =
              match demand with Demand.Unbounded -> None | Demand.Rate r -> Some r
            in
            let meeting =
              match demand_rate with
              | None -> []
              | Some r -> List.filter (fun (_, rho, _) -> rho >= r *. (1.0 -. 1e-9)) cands
            in
            let pick_max_rho l =
              List.fold_left
                (fun best ((_, rho, used) as c) ->
                  match best with
                  | None -> Some c
                  | Some (_, brho, bused) ->
                      if rho > brho || (rho = brho && used < bused) then Some c else best)
                None l
            in
            let pick_min_used l =
              List.fold_left
                (fun best ((_, rho, used) as c) ->
                  match best with
                  | None -> Some c
                  | Some (_, brho, bused) ->
                      if used < bused || (used = bused && rho > brho) then Some c
                      else best)
                None l
            in
            let chosen, demand_met =
              match meeting with
              | [] -> (pick_max_rho cands, false)
              | _ :: _ -> (pick_min_used meeting, true)
            in
            (match chosen with
            | None -> Error "heuristic: empty candidate set"
            | Some (tree, rho, _) ->
                Ok { tree; predicted_rho = rho; probes = List.rev !probes; demand_met })

let plan_tree params ~platform ~wapp ~demand =
  Result.map (fun r -> r.tree) (plan params ~platform ~wapp ~demand)
