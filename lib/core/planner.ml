open Adept_platform
open Adept_hierarchy
module Demand = Adept_model.Demand

type strategy =
  | Heuristic
  | Reference
  | Star
  | Balanced of int
  | Dary of int
  | Homogeneous_optimal
  | Exhaustive
  | Multi_cluster
  | Improved of strategy

let rec strategy_name = function
  | Heuristic -> "heuristic"
  | Reference -> "reference"
  | Star -> "star"
  | Balanced k -> Printf.sprintf "balanced:%d" k
  | Dary d -> Printf.sprintf "dary:%d" d
  | Homogeneous_optimal -> "homogeneous"
  | Exhaustive -> "exhaustive"
  | Multi_cluster -> "multi-cluster"
  | Improved inner -> "improved:" ^ strategy_name inner

let strip_prefix prefix s =
  let plen = String.length prefix in
  if String.length s > plen && String.sub s 0 plen = prefix then
    Some (String.sub s plen (String.length s - plen))
  else None

let rec strategy_of_string s =
  let int_suffix prefix s =
    Option.bind (strip_prefix prefix s) int_of_string_opt
  in
  match s with
  | "heuristic" -> Ok Heuristic
  | "reference" -> Ok Reference
  | "star" -> Ok Star
  | "homogeneous" -> Ok Homogeneous_optimal
  | "exhaustive" -> Ok Exhaustive
  | "multi-cluster" -> Ok Multi_cluster
  | s -> (
      match int_suffix "balanced:" s with
      | Some k -> Ok (Balanced k)
      | None -> (
          match int_suffix "dary:" s with
          | Some d -> Ok (Dary d)
          | None -> (
              match strip_prefix "improved:" s with
              | Some inner -> Result.map (fun i -> Improved i) (strategy_of_string inner)
              | None -> Error (Error.invalid_input "unknown strategy %S" s))))

type plan = {
  strategy : strategy;
  tree : Tree.t;
  predicted_rho : float;
  demand_met : bool;
  nodes_used : int;
  nodes_available : int;
  evaluations : int;
}

let ( let* ) = Result.bind

(* The strategy modules still speak [(_, string) result]; this is where
   their prose becomes a typed [Error.t].  Each arm also reports how many
   candidate hierarchies the strategy evaluated, for the observability
   layer. *)
let rec plan_tree strategy params ~platform ~wapp ~demand =
  let nodes = Platform.sorted_by_power_desc platform in
  let typed r =
    Result.map_error
      (fun reason -> Error.no_feasible ~strategy:(strategy_name strategy) "%s" reason)
      r
  in
  match strategy with
  | Heuristic ->
      typed
        (Result.map
           (fun (r : Heuristic.result) -> (r.tree, List.length r.probes))
           (Heuristic.plan params ~platform ~wapp ~demand))
  | Reference ->
      typed
        (Result.map
           (fun (r : Heuristic_reference.result) -> (r.tree, List.length r.probes))
           (Heuristic_reference.plan params ~platform ~wapp ~demand))
  | Star -> typed (Result.map (fun t -> (t, 1)) (Baselines.star nodes))
  | Balanced k ->
      typed (Result.map (fun t -> (t, 1)) (Baselines.balanced ~agents:k nodes))
  | Dary d -> typed (Result.map (fun t -> (t, 1)) (Baselines.dary ~degree:d nodes))
  | Homogeneous_optimal ->
      typed
        (Result.map
           (fun (r : Homogeneous.result) -> (r.tree, List.length r.per_degree))
           (Homogeneous.plan params ~platform ~wapp ~demand))
  | Exhaustive ->
      typed
        (Result.map
           (fun (tree, _rho) -> (tree, Exhaustive.count (Platform.nodes platform)))
           (Exhaustive.optimal params ~platform ~wapp ()))
  | Multi_cluster ->
      typed
        (Result.map
           (fun (r : Multi_cluster.result) ->
             (r.Multi_cluster.tree, List.length r.Multi_cluster.candidates))
           (Multi_cluster.plan params ~platform ~wapp ~demand))
  | Improved inner ->
      let* start, inner_evaluations = plan_tree inner params ~platform ~wapp ~demand in
      typed
        (Result.map
           (fun (r : Improver.result) ->
             (r.Improver.tree, inner_evaluations + List.length r.Improver.steps))
           (Improver.improve params ~platform ~wapp start))

let validated ~context ~platform tree =
  match Validate.check ~platform tree with
  | Ok () -> Ok ()
  | Error errs ->
      Error
        (Error.invalid_hierarchy ~context "%s"
           (String.concat "; " (List.map Validate.error_to_string errs)))

let finish strategy params ~platform ~demand ~wapp (tree, evaluations) =
  let* () =
    validated ~context:("strategy " ^ strategy_name strategy) ~platform tree
  in
  let predicted_rho = Evaluate.rho_hetero params ~platform ~wapp tree in
  Ok
    {
      strategy;
      tree;
      predicted_rho;
      demand_met = Demand.is_met demand predicted_rho;
      nodes_used = Tree.size tree;
      nodes_available = Platform.size platform;
      evaluations;
    }

let run strategy params ~platform ~wapp ~demand =
  let* pair = plan_tree strategy params ~platform ~wapp ~demand in
  finish strategy params ~platform ~demand ~wapp pair

let run_with_probe probe params ~platform ~wapp ~demand =
  let* pair =
    Result.map_error
      (fun reason -> Error.no_feasible ~strategy:(strategy_name Heuristic) "%s" reason)
      (Result.map
         (fun (r : Heuristic.result) -> (r.tree, List.length r.probes))
         (Heuristic.plan ~probe params ~platform ~wapp ~demand))
  in
  finish Heuristic params ~platform ~demand ~wapp pair

type replan_result = {
  replanned : plan;
  failed : Node.id list;
  survivors : int;
  rho_before : float;
  rho_after : float;
  rho_drop : float;
}

(* Renumber the surviving nodes into a dense 0..n-1 sub-platform, keeping
   names, powers and cluster labels.  The original link structure carries
   over unchanged because bandwidths are keyed on cluster labels, not node
   ids.  Guarded by the survivor-count checks in [replan]: never called
   with fewer than two members ([Platform.create] would raise on zero). *)
let surviving_platform platform ~members =
  let mapping = Array.of_list members in
  let renumbered =
    List.mapi
      (fun i n ->
        Node.make ~id:i ~name:(Node.name n) ~power:(Node.power n)
          ~cluster:(Node.cluster n) ())
      members
  in
  (Platform.create ~link:(Platform.link platform) renumbered, mapping)

let rec retranslate mapping = function
  | Tree.Server n -> Tree.server mapping.(Node.id n)
  | Tree.Agent (n, children) ->
      Tree.agent mapping.(Node.id n) (List.map (retranslate mapping) children)

let replan strategy params ~platform ~wapp ~demand ~failed ?reference () =
  let n = Platform.size platform in
  let* () =
    if failed = [] then Error (Error.invalid_input "replan: no failed nodes given")
    else Ok ()
  in
  let* () =
    match List.find_opt (fun id -> id < 0 || id >= n) failed with
    | Some id ->
        Error (Error.invalid_input "replan: failed node %d is not on the platform" id)
    | None -> Ok ()
  in
  let failed = List.sort_uniq Int.compare failed in
  let* rho_before =
    match reference with
    | Some tree ->
        Result.map
          (fun () -> Evaluate.rho_hetero params ~platform ~wapp tree)
          (validated ~context:"replan reference" ~platform tree)
    | None ->
        Result.map
          (fun p -> p.predicted_rho)
          (run strategy params ~platform ~wapp ~demand)
  in
  let is_failed = Array.make n false in
  List.iter (fun id -> is_failed.(id) <- true) failed;
  let members =
    List.filter (fun nd -> not is_failed.(Node.id nd)) (Platform.nodes platform)
  in
  (* Any hierarchy needs at least an agent and a server; refuse before
     building the sub-platform so these edge cases are typed errors, not
     exceptions from deeper layers. *)
  let* () =
    match List.length members with
    | 0 -> Error Error.No_survivors
    | s when s < 2 -> Error (Error.Insufficient_survivors { survivors = s; required = 2 })
    | _ -> Ok ()
  in
  let sub, mapping = surviving_platform platform ~members in
  let* sub_plan = run strategy params ~platform:sub ~wapp ~demand in
  let tree = retranslate mapping sub_plan.tree in
  let* () = validated ~context:"replan retranslation" ~platform tree in
  let rho_after = Evaluate.rho_hetero params ~platform ~wapp tree in
  Ok
    {
      replanned =
        {
          strategy;
          tree;
          predicted_rho = rho_after;
          demand_met = Demand.is_met demand rho_after;
          nodes_used = Tree.size tree;
          nodes_available = Platform.size sub;
          evaluations = sub_plan.evaluations;
        };
      failed;
      survivors = Platform.size sub;
      rho_before;
      rho_after;
      rho_drop =
        (if rho_before > 0.0 then Float.max 0.0 (1.0 -. (rho_after /. rho_before))
         else 0.0);
    }

type replan_mode = Incremental | Full of string

let replan_mode_name = function Incremental -> "incremental" | Full _ -> "full"
let replan_fallback_reason = function Incremental -> None | Full r -> Some r

(* Remove the failed nodes from a hierarchy, reusing untouched subtrees by
   structural sharing (a branch with no casualties is returned physically
   unchanged).  A dead server just disappears; a dead agent dissolves and
   its strongest surviving child takes its place — an agent child absorbs
   the orphaned siblings, a server child is promoted to an agent over
   them.  Returns [None] when nothing below survives. *)
let rec drop_first_phys x = function
  | [] -> []
  | t :: rest -> if t == x then rest else t :: drop_first_phys x rest

let promote_strongest kids =
  let best =
    List.fold_left
      (fun best t ->
        if Node.compare_by_power_desc (Tree.root_node t) (Tree.root_node best) < 0
        then t
        else best)
      (List.hd kids) (List.tl kids)
  in
  match drop_first_phys best kids with
  | [] -> best
  | rest -> (
      match best with
      | Tree.Agent (n, c) -> Tree.agent n (c @ rest)
      | Tree.Server n -> Tree.agent n rest)

let rec patch_out is_failed tree =
  match tree with
  | Tree.Server n -> if is_failed.(Node.id n) then None else Some tree
  | Tree.Agent (n, children) ->
      let patched = List.filter_map (patch_out is_failed) children in
      if is_failed.(Node.id n) then
        match patched with [] -> None | kids -> Some (promote_strongest kids)
      else if
        List.length patched = List.length children
        && List.for_all2 ( == ) patched children
      then Some tree
      else Some (Tree.agent n patched)

(* Upper bound (Eq. 16) on the throughput any hierarchy over [survivors]
   can reach — the same three-way bound the heuristic bisects under,
   computed on a survivor pool: strongest agent at degree one, service
   power of everything but the strongest node, fastest server prediction
   rate.  Any tree's rho is below it, so a patch within [slack] of it is
   provably within [slack] of whatever a from-scratch replan could do. *)
let survivor_bound params ~bandwidth ~wapp ~demand survivors =
  let pool = Node_pool.create params ~bandwidth ~wapp survivors in
  let hi =
    Float.min (Node_pool.hi_sched pool)
      (Float.min (Node_pool.hi_service pool) (Node_pool.hi_predict pool))
  in
  Demand.min_target demand hi

(* Re-admission: recovered off-tree nodes rejoin the patched hierarchy as
   servers under the least-loaded agent (fewest children, first in
   preorder on ties) — the cheapest structural move that returns their
   compute power to the service side without re-planning.  The graft is
   kept only when it does not lower the patched tree's Eq. 16 rho: on a
   scheduling-bound hierarchy an extra child can cost more than the
   server adds, and then the recovered node is better left for the next
   full replan to place. *)
let graft_recovered params ~platform ~wapp patched nodes =
  List.fold_left
    (fun (tree, rho) node ->
      if Tree.mem tree (Node.id node) then (tree, rho)
      else
        let agents = Tree.agents_with_degree tree in
        let host, _ =
          List.fold_left
            (fun ((_, bd) as best) ((_, d) as cand) ->
              if d < bd then cand else best)
            (List.hd agents) (List.tl agents)
        in
        let rec add = function
          | Tree.Server _ as s -> s
          | Tree.Agent (a, kids) when Node.id a = Node.id host ->
              Tree.agent a (kids @ [ Tree.server node ])
          | Tree.Agent (a, kids) -> Tree.agent a (List.map add kids)
        in
        let grafted = add tree in
        let rho' = Evaluate.rho_hetero params ~platform ~wapp grafted in
        if rho' >= rho then (grafted, rho') else (tree, rho))
    patched nodes

let replan_incremental strategy params ~platform ~wapp ~demand ~failed
    ?(recovered = []) ~previous ?(slack = 0.15) () =
  let n = Platform.size platform in
  let* () =
    if slack < 0.0 || slack >= 1.0 || not (Float.is_finite slack) then
      Error (Error.invalid_input "replan_incremental: slack must be in [0, 1)")
    else Ok ()
  in
  let* () =
    match List.find_opt (fun id -> id < 0 || id >= n) failed with
    | Some id ->
        Error (Error.invalid_input "replan: failed node %d is not on the platform" id)
    | None -> Ok ()
  in
  let* () =
    match List.find_opt (fun id -> id < 0 || id >= n) recovered with
    | Some id ->
        Error
          (Error.invalid_input "replan: recovered node %d is not on the platform" id)
    | None -> Ok ()
  in
  let failed = List.sort_uniq Int.compare failed in
  let recovered = List.sort_uniq Int.compare recovered in
  let* () =
    match List.find_opt (fun id -> List.mem id failed) recovered with
    | Some id ->
        Error
          (Error.invalid_input "replan: node %d is both failed and recovered" id)
    | None -> Ok ()
  in
  let* rho_before =
    Result.map
      (fun () -> Evaluate.rho_hetero params ~platform ~wapp previous)
      (validated ~context:"replan reference" ~platform previous)
  in
  (* Only nodes genuinely absent from the running hierarchy are
     re-admission candidates — a "recovered" id still serving in
     [previous] never left. *)
  let recovered_nodes =
    List.filter_map
      (fun id ->
        if Tree.mem previous id then None else Some (Platform.node platform id))
      recovered
  in
  if failed = [] && recovered_nodes = [] then
    (* Nothing died: the previous hierarchy is returned verbatim
       (physically shared), with zero candidate evaluations. *)
    Ok
      ( {
          replanned =
            {
              strategy;
              tree = previous;
              predicted_rho = rho_before;
              demand_met = Demand.is_met demand rho_before;
              nodes_used = Tree.size previous;
              nodes_available = n;
              evaluations = 0;
            };
          failed = [];
          survivors = n;
          rho_before;
          rho_after = rho_before;
          rho_drop = 0.0;
        },
        Incremental )
  else if failed = [] then begin
    (* Nothing died but nodes recovered: re-admission is a pure
       improvement step — grafts are kept only when they raise rho, so
       no slack gate is needed (there is no loss to bound) and the
       result is always [Incremental].  When every graft would lower
       rho the previous tree comes back physically unchanged. *)
    let tree, rho =
      graft_recovered params ~platform ~wapp (previous, rho_before)
        recovered_nodes
    in
    Ok
      ( {
          replanned =
            {
              strategy;
              tree;
              predicted_rho = rho;
              demand_met = Demand.is_met demand rho;
              nodes_used = Tree.size tree;
              nodes_available = n;
              evaluations = List.length recovered_nodes;
            };
          failed = [];
          survivors = n;
          rho_before;
          rho_after = rho;
          rho_drop = 0.0;
        },
        Incremental )
  end
  else
    let is_failed = Array.make n false in
    List.iter (fun id -> is_failed.(id) <- true) failed;
    let members =
      List.filter (fun nd -> not is_failed.(Node.id nd)) (Platform.nodes platform)
    in
    let* () =
      match List.length members with
      | 0 -> Error Error.No_survivors
      | s when s < 2 ->
          Error (Error.Insufficient_survivors { survivors = s; required = 2 })
      | _ -> Ok ()
    in
    let survivors = List.length members in
    let full reason =
      Result.map
        (fun r -> (r, Full reason))
        (replan strategy params ~platform ~wapp ~demand ~failed ~reference:previous ())
    in
    let accept tree rho_after =
      Ok
        ( {
            replanned =
              {
                strategy;
                tree;
                predicted_rho = rho_after;
                demand_met = Demand.is_met demand rho_after;
                nodes_used = Tree.size tree;
                nodes_available = survivors;
                evaluations = 1 + List.length recovered_nodes;
              };
            failed;
            survivors;
            rho_before;
            rho_after;
            rho_drop =
              (if rho_before > 0.0 then
                 Float.max 0.0 (1.0 -. (rho_after /. rho_before))
               else 0.0);
          },
          Incremental )
    in
    if is_failed.(Node.id (Tree.root_node previous)) then full "root-died"
    else
      match patch_out is_failed previous with
      | None -> full "no-survivors-in-tree"
      | Some patched -> (
          let patched = Tree.normalize patched in
          (* A recovery can rescue a patch the deaths reduced below a
             servable hierarchy: [Agent (a, [])] is the only server-less
             shape normalization leaves (every other childless agent was
             demoted), it has no Eq. 16 rho to compare against, and a
             hierarchy with no servers serves nothing — so the first
             recovered node is grafted unconditionally before the patch
             is judged. *)
          let patched, recovered_nodes =
            match (patched, recovered_nodes) with
            | Tree.Agent (a, []), nd :: rest ->
                (Tree.agent a [ Tree.server nd ], rest)
            | _ -> (patched, recovered_nodes)
          in
          if Tree.size patched < 2 || Validate.check ~platform patched <> Ok ()
          then full "invalid-patch"
          else
            match Link.uniform_bandwidth (Platform.link platform) with
            | None -> full "non-uniform-bandwidth"
            | Some bandwidth ->
                let rho_patched = Evaluate.rho_hetero params ~platform ~wapp patched in
                (* Recovered off-tree nodes rejoin the patch before the
                   slack gate: their service power counts toward the
                   survivor bound (they are in [members]), so letting the
                   patch actually use them is what keeps it competitive
                   with the from-scratch replan the gate prices against. *)
                let patched, rho_patched =
                  graft_recovered params ~platform ~wapp (patched, rho_patched)
                    recovered_nodes
                in
                let bound = survivor_bound params ~bandwidth ~wapp ~demand members in
                if rho_patched >= (1.0 -. slack) *. bound then
                  accept patched rho_patched
                else full "rho-below-bound")

let pp_replan ppf r =
  Format.fprintf ppf
    "%d node(s) down, %d survive: rho %.2f -> %.2f req/s (%.1f%% drop), %s"
    (List.length r.failed) r.survivors r.rho_before r.rho_after
    (100.0 *. r.rho_drop)
    (Metrics.describe r.replanned.tree)

let compare_strategies params ~platform ~wapp ~demand strategies =
  List.map (fun s -> (s, run s params ~platform ~wapp ~demand)) strategies

let pp_plan ppf p =
  Format.fprintf ppf "%s: rho=%.2f req/s, %d/%d nodes, %s" (strategy_name p.strategy)
    p.predicted_rho p.nodes_used p.nodes_available
    (Metrics.describe p.tree)
