(** The deployment-planning heuristic for heterogeneous platforms
    (the paper's Algorithm 1).

    Given heterogeneous nodes with homogeneous connectivity, an
    application cost [wapp] and a client demand, build a hierarchy
    maximising the completed-request throughput [rho] (Eq. 16), preferring
    fewer resources at equal throughput.

    The paper's pseudo-code is informal; this is a faithful reconstruction
    built from its own primitives (DESIGN.md §5 documents each choice):

    + nodes are sorted once by scheduling power with [n - 1] children
      (Steps 1–2, {!Sched_power.sort_nodes}); agents are always drawn from
      the front of this order, the paper's rule for picking agent-worthy
      nodes;
    + for a candidate target throughput [T], a hierarchy is grown level by
      level: each agent receives at most [supported_children] children —
      the largest degree keeping its Eq. 14 scheduling power at or above
      [T] — and servers are taken from the sorted order until the Eq. 15
      service power reaches [T] (the paper's balance between
      [vir_max_sch_pow] and [vir_max_ser_pow]); when the current level
      cannot host enough servers, frontier slots are converted into agents
      (the paper's [shift_nodes] server-to-agent conversion) and the build
      recurses one level deeper;
    + the achievable [T] is maximised by bisection — feasibility is
      monotone in [T] — which plays the role of the paper's
      [diff]/[throughput_diff] stopping rule; every probe's hierarchy is
      evaluated with the exact Eq. 16 model and the best is kept;
    + the degenerate Step 6 answer (one agent, one server) falls out of
      small targets, and a demand caps the search so the plan meeting the
      demand with the fewest resources is returned;
    + a final {e agent lightening} pass — an improvement over the paper's
      strongest-first rule — swaps strong agents for the weakest servers
      that still hold the position with a 4x scheduling-power margin,
      returning compute power to the service side (DESIGN.md §5). *)

open Adept_platform
open Adept_hierarchy

type probe = {
  target : float;  (** Candidate throughput [T] probed, req/s. *)
  feasible : bool;
  achieved_rho : float;  (** Eq. 16 rho of the built hierarchy (0 if infeasible). *)
  nodes_used : int;  (** 0 if infeasible. *)
}

type result = {
  tree : Tree.t;
  predicted_rho : float;  (** Eq. 16 throughput of [tree]. *)
  probes : probe list;  (** Bisection trace, for diagnostics. *)
  demand_met : bool;
}

val plan :
  ?probe:(target:float -> Tree.t option) ->
  Adept_model.Params.t ->
  platform:Platform.t ->
  wapp:float ->
  demand:Adept_model.Demand.t ->
  (result, string) Stdlib.result
(** Plan a deployment.  Errors: fewer than two nodes, non-positive [wapp],
    or heterogeneous connectivity (the model needs a single [B]).
    The returned tree always passes [Validate.check ~platform].

    [?probe] replaces the internal per-target builder — every decision
    (bisection order, candidate collection, tie-breaking) stays in this
    driver, so a caller that answers each target with exactly what
    {!probe} would return (e.g. from a memo filled concurrently by
    worker domains) gets a bit-identical plan.  An override returning
    anything else voids the equivalence guarantee. *)

val probe :
  Adept_model.Params.t -> Node_pool.t -> target:float -> Tree.t option
(** One bisection probe against a prepared pool: the level-by-level
    build (including normalization and agent lightening) at [target].
    A pure function of its arguments over an immutable pool, safe to
    call concurrently from several domains; the capacity scratch it
    reuses is per-domain state ([Domain.DLS]). *)

val pool_of :
  Adept_model.Params.t ->
  platform:Platform.t ->
  wapp:float ->
  Node_pool.t option
(** The pool {!plan} would build internally — [None] on heterogeneous
    connectivity.  Lets concurrent callers precompute {!probe} results
    against the same sorted view the driver will use. *)

val plan_tree :
  Adept_model.Params.t ->
  platform:Platform.t ->
  wapp:float ->
  demand:Adept_model.Demand.t ->
  (Tree.t, string) Stdlib.result
(** [plan] keeping only the hierarchy. *)

val build_for_target :
  Adept_model.Params.t ->
  platform:Platform.t ->
  wapp:float ->
  target:float ->
  Tree.t option
(** The level-by-level builder for one target throughput, exposed for
    tests and ablations: [Some tree] whose model rho is >= [target] when
    the platform can host it, [None] otherwise. *)
