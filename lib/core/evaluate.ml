open Adept_platform
open Adept_hierarchy
module Throughput = Adept_model.Throughput

let spec_of_tree ~wapp tree =
  let agents =
    List.map
      (fun (node, degree) ->
        if degree = 0 then
          invalid_arg
            (Printf.sprintf "Evaluate.spec_of_tree: agent %s has no children"
               (Node.name node));
        (Node.power node, degree))
      (Tree.agents_with_degree tree)
  in
  let servers =
    List.map (fun node -> { Throughput.power = Node.power node; wapp }) (Tree.servers tree)
  in
  if servers = [] then invalid_arg "Evaluate.spec_of_tree: hierarchy has no servers";
  { Throughput.agents; servers }

let rho params ~bandwidth ~wapp tree =
  Throughput.platform params ~bandwidth (spec_of_tree ~wapp tree)

let rho_on params ~platform ~wapp tree =
  rho params ~bandwidth:(Platform.uniform_bandwidth platform) ~wapp tree

let bottleneck params ~bandwidth ~wapp tree =
  Throughput.bottleneck params ~bandwidth (spec_of_tree ~wapp tree)

type bottleneck_element = {
  be_side : [ `Sched | `Service ];
  be_role : [ `Agent | `Server ];
  be_node : Node.t option;
  be_rho_sched : float;
  be_rho_service : float;
  be_element_rho : float;
}

let bottleneck_element params ~bandwidth ~wapp tree =
  if wapp <= 0.0 || not (Float.is_finite wapp) then
    invalid_arg "Evaluate.bottleneck_element: wapp must be positive and finite";
  let spec = spec_of_tree ~wapp tree in
  let sched = Throughput.sched params ~bandwidth spec in
  let service = Throughput.service params ~bandwidth spec.Throughput.servers in
  (* Locate the Eq. 14 argmin.  Ties resolve to the element first reached
     by a pre-order walk (agents before their subtrees), matching the
     agent-before-server tie order of {!Throughput.bottleneck}. *)
  let best = ref None in
  let consider node role term =
    match !best with
    | Some (_, _, t) when t <= term -> ()
    | Some _ | None -> best := Some (node, role, term)
  in
  let rec walk = function
    | Tree.Server node ->
        consider node `Server
          (Throughput.server_sched params ~bandwidth ~power:(Node.power node))
    | Tree.Agent (node, children) ->
        consider node `Agent
          (Throughput.agent_sched params ~bandwidth ~power:(Node.power node)
             ~degree:(List.length children));
        List.iter walk children
  in
  walk tree;
  let node, role, element_rho =
    match !best with
    | Some b -> b
    | None -> invalid_arg "Evaluate.bottleneck_element: empty hierarchy"
  in
  if service < sched then
    (* The collective Eqs. 6-13 service capacity binds: under the load
       split every server saturates together, so no single server is
       singled out. *)
    {
      be_side = `Service;
      be_role = `Server;
      be_node = None;
      be_rho_sched = sched;
      be_rho_service = service;
      be_element_rho = service;
    }
  else
    {
      be_side = `Sched;
      be_role = role;
      be_node = Some node;
      be_rho_sched = sched;
      be_rho_service = service;
      be_element_rho = element_rho;
    }

let describe_bottleneck_element be =
  let side =
    match be.be_side with
    | `Sched -> "scheduling (Eq. 14)"
    | `Service -> "service (Eq. 15)"
  in
  let element =
    match (be.be_side, be.be_node) with
    | `Service, _ -> "the server set collectively"
    | `Sched, Some node ->
        Printf.sprintf "%s %s (node %d)"
          (match be.be_role with `Agent -> "agent" | `Server -> "server")
          (Node.name node) (Node.id node)
    | `Sched, None -> "unknown element"
  in
  Printf.sprintf
    "%s side binds at %.2f req/s (rho_sched %.2f, rho_service %.2f): %s" side
    be.be_element_rho be.be_rho_sched be.be_rho_service element

let rho_hetero (params : Adept_model.Params.t) ~platform ~wapp tree =
  if wapp <= 0.0 || not (Float.is_finite wapp) then
    invalid_arg "Evaluate.rho_hetero: wapp must be positive and finite";
  let bw a b = Platform.bandwidth platform (Node.id a) (Node.id b) in
  let client_bw node = Platform.bandwidth platform (Node.id node) (Node.id node) in
  let ag = params.Adept_model.Params.agent in
  let srv = params.Adept_model.Params.server in
  (* Eq. 14 agent term with per-link bandwidths: the parent (or client)
     link carries one request down and one reply up; each child link
     carries one request and one reply, always at agent-level sizes. *)
  let agent_term ~parent node children =
    let up = match parent with Some p -> bw p node | None -> client_bw node in
    let degree = List.length children in
    let comm_up = (ag.sreq +. ag.srep) /. up in
    let comm_down =
      List.fold_left
        (fun acc child -> acc +. ((ag.sreq +. ag.srep) /. bw node (Tree.root_node child)))
        0.0 children
    in
    let compute =
      (ag.wreq +. Adept_model.Params.wrep params ~degree) /. Node.power node
    in
    1.0 /. (compute +. comm_up +. comm_down)
  in
  let server_term ~parent node =
    let up = bw parent node in
    1.0 /. ((srv.wpre /. Node.power node) +. ((srv.sreq +. srv.srep) /. up))
  in
  let rec sched_min ~parent tree =
    match tree with
    | Tree.Server node -> (
        match parent with
        | Some p -> server_term ~parent:p node
        | None -> invalid_arg "Evaluate.rho_hetero: root server")
    | Tree.Agent (node, children) ->
        if children = [] then
          invalid_arg "Evaluate.rho_hetero: agent without children";
        List.fold_left
          (fun acc child -> Float.min acc (sched_min ~parent:(Some node) child))
          (agent_term ~parent node children)
          children
  in
  let servers = Tree.servers tree in
  if servers = [] then invalid_arg "Evaluate.rho_hetero: hierarchy has no servers";
  (* Eq. 15 with the load split of Eqs. 6-9 weighting each server's
     client-link cost. *)
  let rate_sum = List.fold_left (fun acc s -> acc +. (Node.power s /. wapp)) 0.0 servers in
  let ratio_sum = List.fold_left (fun acc _ -> acc +. (srv.wpre /. wapp)) 0.0 servers in
  let comm_mean =
    List.fold_left
      (fun acc s ->
        let x = Node.power s /. wapp /. rate_sum in
        acc +. (x *. ((srv.sreq +. srv.srep) /. client_bw s)))
      0.0 servers
  in
  let service = 1.0 /. (comm_mean +. ((1.0 +. ratio_sum) /. rate_sum)) in
  Float.min (sched_min ~parent:None tree) service

type element_cost = {
  ec_node : Node.t;
  ec_level : int;
  ec_role : [ `Agent | `Server ];
  ec_degree : int;
  ec_wreq_s : float;
  ec_wrep_s : float;
  ec_wpre_s : float;
  ec_service_s : float;
}

let element_costs (params : Adept_model.Params.t) ~wapp tree =
  if wapp <= 0.0 || not (Float.is_finite wapp) then
    invalid_arg "Evaluate.element_costs: wapp must be positive and finite";
  let ag = params.Adept_model.Params.agent in
  let srv = params.Adept_model.Params.server in
  let rec walk level acc tree =
    match tree with
    | Tree.Server node ->
        let w = Node.power node in
        {
          ec_node = node;
          ec_level = level;
          ec_role = `Server;
          ec_degree = 0;
          ec_wreq_s = 0.0;
          ec_wrep_s = 0.0;
          ec_wpre_s = srv.wpre /. w;
          ec_service_s = wapp /. w;
        }
        :: acc
    | Tree.Agent (node, children) ->
        let w = Node.power node in
        let degree = List.length children in
        let cost =
          {
            ec_node = node;
            ec_level = level;
            ec_role = `Agent;
            ec_degree = degree;
            ec_wreq_s = ag.wreq /. w;
            ec_wrep_s = Adept_model.Params.wrep params ~degree /. w;
            ec_wpre_s = 0.0;
            ec_service_s = 0.0;
          }
        in
        List.fold_left (fun acc child -> walk (level + 1) acc child) (cost :: acc) children
  in
  walk 0 [] tree
  |> List.sort (fun a b -> Int.compare (Node.id a.ec_node) (Node.id b.ec_node))

let report params ~bandwidth ~wapp tree =
  let spec = spec_of_tree ~wapp tree in
  let sched = Throughput.sched params ~bandwidth spec in
  let service = Throughput.service params ~bandwidth spec.Throughput.servers in
  let total = Throughput.platform params ~bandwidth spec in
  let limit =
    match Throughput.bottleneck params ~bandwidth spec with
    | `Agent_sched -> "agent scheduling"
    | `Server_sched -> "server prediction"
    | `Service -> "service capacity"
  in
  Format.asprintf
    "%s@.rho_sched   = %.2f req/s@.rho_service = %.2f req/s@.rho         = %.2f req/s \
     (bottleneck: %s)"
    (Metrics.describe tree) sched service total limit
