type t =
  | Invalid_input of string
  | No_survivors
  | Insufficient_survivors of { survivors : int; required : int }
  | No_feasible_hierarchy of { strategy : string; reason : string }
  | Invalid_hierarchy of { context : string; reason : string }

let invalid_input fmt = Printf.ksprintf (fun s -> Invalid_input s) fmt

let no_feasible ~strategy fmt =
  Printf.ksprintf (fun reason -> No_feasible_hierarchy { strategy; reason }) fmt

let invalid_hierarchy ~context fmt =
  Printf.ksprintf (fun reason -> Invalid_hierarchy { context; reason }) fmt

let to_string = function
  | Invalid_input msg -> "invalid input: " ^ msg
  | No_survivors -> "no surviving nodes: every node of the platform is down"
  | Insufficient_survivors { survivors; required } ->
      Printf.sprintf
        "only %d node(s) survive, %d needed (an agent and at least one server)"
        survivors required
  | No_feasible_hierarchy { strategy; reason } ->
      Printf.sprintf "strategy %s found no feasible hierarchy: %s" strategy reason
  | Invalid_hierarchy { context; reason } ->
      Printf.sprintf "%s produced an invalid hierarchy: %s" context reason

let pp ppf e = Format.pp_print_string ppf (to_string e)

let equal (a : t) (b : t) = a = b

let is_fatal = function
  | Invalid_input _ | Invalid_hierarchy _ -> true
  | No_survivors | Insufficient_survivors _ | No_feasible_hierarchy _ -> false
