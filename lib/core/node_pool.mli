(** Persistent sorted view of a platform's nodes for the planner hot path.

    {!Heuristic.plan} probes dozens of candidate targets by bisection;
    the seed implementation rescanned the node list for every probe
    (service-power folds for the upper bounds, linear usability and
    capacity scans inside every [min_servers]/[try_j] step), which is
    what made datacenter-scale platforms unreachable.  The pool keeps the
    {!Sched_power.sort_nodes} order as arrays with:

    - per-node Eq. 14 server scheduling power (usability tests and the
      [hi_predict] bound become O(1));
    - prefix sums of the Eq. 15 service terms over the rest, anchored at
      index 1 and accumulated in exactly the reference fold order, so the
      [hi_service] bound is an O(1) lookup with bit-identical rounding;
    - power classes: runs of equal-power nodes, bucketing the platforms
      the generators actually produce (a handful of discrete load
      levels), so capacity lookups memoize per class instead of per node.

    Every accelerated query is {e decision-identical} to the reference
    scan it replaces: the same floats reach the same comparisons (see the
    monotonicity notes inline and DESIGN.md "Planner internals"); the
    QCheck equivalence property enforces this against
    {!Heuristic_reference}. *)

open Adept_platform

type t

val create : Adept_model.Params.t -> bandwidth:float -> wapp:float -> Node.t list -> t
(** Sort once, precompute the arrays.  O(n log n). *)

val size : t -> int

val node : t -> int -> Node.t
(** The i-th node in scheduling-power order (0 = most agent-worthy). *)

val nodes : t -> Node.t array
(** The backing sorted array — callers must not mutate it. *)

val bandwidth : t -> float
val wapp : t -> float

val server_sched : t -> int -> float
(** Eq. 14 server scheduling power of [node t i], precomputed. *)

val class_of : t -> int -> int
(** Power class of the i-th node; equal power ⇔ equal class.  Classes
    are numbered 0.. in sorted order. *)

val class_count : t -> int

val hi_sched : t -> float
(** Scheduling-power bound: the strongest node as an agent with one
    child. *)

val hi_predict : t -> float
(** Max server scheduling power over the rest (requires [size >= 2]);
    bit-identical to the reference [Float.max] fold. *)

val hi_service : t -> float
(** Eq. 15 service power of the whole rest (requires [size >= 2]), read
    from the prefix sums; bit-identical to
    [Service_power.of_servers] on the rest list. *)

val usable_until : t -> target:float -> int
(** First sorted index whose server scheduling power is below [target]
    ([size t] if none): the usability boundary [min_servers] scans up
    to.  Binary search; exact because the predicate is monotone along
    the sorted order. *)

type scan =
  | Servers of int
      (** Length of the smallest usable prefix reaching [target]: the
          servers are [node t from .. node t (from + count - 1)] — the
          scan consumes every index below the usable boundary, so the
          count alone identifies them and no list is allocated on the
          probe hot path. *)
  | Overflow  (** The prefix outgrew [cap] before reaching [target]. *)
  | Infeasible  (** Even every usable node from [from] falls short. *)

val min_servers :
  t -> target:float -> usable:int -> from:int -> cap:int -> scan
(** The reference [min_servers] with two decision-identical shortcuts:
    the scan stops at the [usable] boundary (pass [usable_until]'s
    result) and bails out as [Overflow] once more than [cap] servers
    have been taken — callers reject longer-than-[cap] answers and
    [Infeasible] identically, so the early exit changes no decision. *)

val feasible : t -> target:float -> usable:int -> bool
(** Whether [min_servers ~from:1 ~cap:max_int] would find a prefix — the
    global infeasibility pre-check: when false, every [min_servers] from
    any index fails too (a later scan's usable set is pointwise weaker at
    every count), so the whole level-by-level build returns [None]. *)
