open Adept_platform
module Throughput = Adept_model.Throughput

let of_powers params ~bandwidth ~wapp powers =
  let servers =
    List.map (fun power -> { Throughput.power; wapp }) powers
  in
  Throughput.service params ~bandwidth servers

let of_servers params ~bandwidth ~wapp nodes =
  of_powers params ~bandwidth ~wapp (List.map Node.power nodes)

(* Must mirror [Throughput.service]'s arithmetic operation for operation:
   comm, then (1 + ratio_sum) / rate_sum, then the reciprocal — callers
   feed prefix sums accumulated in the same fold order and rely on the
   result being bit-identical to the list-based path. *)
let of_sums (params : Adept_model.Params.t) ~bandwidth ~ratio_sum ~rate_sum =
  if bandwidth <= 0.0 || not (Float.is_finite bandwidth) then
    invalid_arg "Service_power.of_sums: bandwidth must be positive and finite";
  if rate_sum <= 0.0 || not (Float.is_finite rate_sum) then
    invalid_arg "Service_power.of_sums: rate_sum must be positive and finite";
  if ratio_sum < 0.0 || not (Float.is_finite ratio_sum) then
    invalid_arg "Service_power.of_sums: ratio_sum must be non-negative and finite";
  let comm = (params.server.sreq +. params.server.srep) /. bandwidth in
  1.0 /. (comm +. ((1.0 +. ratio_sum) /. rate_sum))

let marginal params ~bandwidth ~wapp servers candidate =
  of_servers params ~bandwidth ~wapp (candidate :: servers)
