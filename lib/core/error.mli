(** Typed errors for the planning / replanning / self-healing pipeline.

    PR 1 threaded [(_, string) result] through {!Planner} and the fault
    machinery, which left callers pattern-matching on prose.  The online
    redeployment controller ({!Adept_sim.Controller}) needs to react
    differently to "all nodes are dead" (give up quietly), "the survivors
    cannot host any hierarchy" (keep monitoring, a recovery may fix it)
    and "the inputs are malformed" (a programming error worth surfacing) —
    so the pipeline speaks this plain variant instead.  Constructors are
    ordinary (not polymorphic) variants so exhaustive matches stay checked
    as the set grows. *)

type t =
  | Invalid_input of string
      (** Malformed arguments: unknown strategy names, out-of-range
          parameters, empty failure lists.  A caller bug, not a platform
          condition. *)
  | No_survivors
      (** A replan was asked for but zero nodes survive. *)
  | Insufficient_survivors of { survivors : int; required : int }
      (** Nodes survive, but fewer than the minimum any hierarchy needs
          (one agent plus one server). *)
  | No_feasible_hierarchy of { strategy : string; reason : string }
      (** The strategy ran and failed: the platform (or remnant) cannot
          host what it builds, e.g. [Balanced 5] over 3 nodes. *)
  | Invalid_hierarchy of { context : string; reason : string }
      (** A produced tree failed {!Adept_hierarchy.Validate.check} — an
          internal invariant violation. *)

val invalid_input : ('a, unit, string, t) format4 -> 'a
(** [invalid_input fmt ...] builds an {!Invalid_input} printf-style. *)

val no_feasible : strategy:string -> ('a, unit, string, t) format4 -> 'a

val invalid_hierarchy : context:string -> ('a, unit, string, t) format4 -> 'a

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool

val is_fatal : t -> bool
(** True for errors a supervision loop should not retry
    ([Invalid_input], [Invalid_hierarchy]); false for platform conditions
    that may clear on their own (dead nodes recovering, more survivors
    appearing). *)
