(* Plan-fragment cache for the serving loop.

   Planning is a pure function of (params, platform, strategy, wapp,
   demand), so repeated queries — the dominant pattern for a long-lived
   service fronting a mostly-static platform — can be answered from
   memory.  Entries are bucketed under a {e band} key (platform digest,
   strategy, workload and demand rounded to three significant digits) so
   near-identical workloads share a bucket, but a hit requires the exact
   wapp/demand floats: banding bounds bucket size, it never blurs an
   answer.  Eviction is LRU over a small fixed capacity (a plan text is
   a few KB; the cache is about latency, not memory).  Invalidation is
   by platform digest: a replan request reports node deaths on that
   platform, after which every cached plan for it is stale.

   The cache is only ever touched from the server's event-loop domain
   (single writer); it needs no lock. *)

type entry = { text : string; rho : float; nodes_used : int }

type slot = {
  e_wapp : float;
  e_demand : float option;
  entry : entry;
  inserted : float;  (** wall instant of insertion (0. when untimed) *)
  mutable last_used : int;
}

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
}

type t = {
  capacity : int;
  (* band key -> exact-keyed slots, newest first *)
  buckets : (string * string * string * string, slot list ref) Hashtbl.t;
  mutable population : int;
  mutable tick : int;
  stats : stats;
  on_evict : (age:float -> unit) option;
}

let create ?(capacity = 128) ?on_evict () =
  {
    capacity = max 1 capacity;
    buckets = Hashtbl.create 64;
    population = 0;
    tick = 0;
    stats = { hits = 0; misses = 0; evictions = 0; invalidations = 0 };
    on_evict;
  }

let band f = Printf.sprintf "%.3g" f

let band_key ~digest ~strategy ~wapp ~demand =
  ( digest,
    strategy,
    band wapp,
    match demand with None -> "unbounded" | Some r -> band r )

let digest_of_key (d, _, _, _) = d

let find t ~digest ~strategy ~wapp ~demand =
  t.tick <- t.tick + 1;
  let key = band_key ~digest ~strategy ~wapp ~demand in
  match Hashtbl.find_opt t.buckets key with
  | None ->
      t.stats.misses <- t.stats.misses + 1;
      None
  | Some slots -> (
      match
        List.find_opt (fun s -> s.e_wapp = wapp && s.e_demand = demand) !slots
      with
      | Some s ->
          s.last_used <- t.tick;
          t.stats.hits <- t.stats.hits + 1;
          Some s.entry
      | None ->
          t.stats.misses <- t.stats.misses + 1;
          None)

(* O(population) LRU scan; capacity is small by design. *)
let evict_lru t ~now =
  let victim = ref None in
  Hashtbl.iter
    (fun key slots ->
      List.iter
        (fun s ->
          match !victim with
          | Some (_, v) when v.last_used <= s.last_used -> ()
          | _ -> victim := Some (key, s))
        !slots)
    t.buckets;
  match !victim with
  | None -> ()
  | Some (key, v) ->
      let slots = Hashtbl.find t.buckets key in
      slots := List.filter (fun s -> s != v) !slots;
      if !slots = [] then Hashtbl.remove t.buckets key;
      t.population <- t.population - 1;
      t.stats.evictions <- t.stats.evictions + 1;
      Option.iter
        (fun f -> f ~age:(Float.max 0.0 (now -. v.inserted)))
        t.on_evict

let add t ?(now = 0.0) ~digest ~strategy ~wapp ~demand entry =
  t.tick <- t.tick + 1;
  let key = band_key ~digest ~strategy ~wapp ~demand in
  let slots =
    match Hashtbl.find_opt t.buckets key with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.replace t.buckets key r;
        r
  in
  let fresh = List.filter (fun s -> not (s.e_wapp = wapp && s.e_demand = demand)) !slots in
  if List.length fresh = List.length !slots then begin
    if t.population >= t.capacity then evict_lru t ~now;
    t.population <- t.population + 1
  end;
  slots :=
    { e_wapp = wapp; e_demand = demand; entry; inserted = now; last_used = t.tick }
    :: fresh

let invalidate_platform t ~digest =
  let dropped = ref 0 in
  let doomed =
    Hashtbl.fold
      (fun key slots acc ->
        if digest_of_key key = digest then (key, List.length !slots) :: acc
        else acc)
      t.buckets []
  in
  List.iter
    (fun (key, n) ->
      Hashtbl.remove t.buckets key;
      dropped := !dropped + n)
    doomed;
  t.population <- t.population - !dropped;
  t.stats.invalidations <- t.stats.invalidations + !dropped;
  !dropped

let size t = t.population
let hits t = t.stats.hits

let hit_ratio t =
  let lookups = t.stats.hits + t.stats.misses in
  if lookups = 0 then 0.0 else float_of_int t.stats.hits /. float_of_int lookups

let misses t = t.stats.misses
let evictions t = t.stats.evictions
let invalidations t = t.stats.invalidations
