(** Length-prefixed framing for the planning-server protocol.

    Every message is a 4-byte big-endian payload length followed by that
    many payload bytes (UTF-8 JSON, see {!Protocol}).  [max_frame] caps
    the declared length: a prefix past the cap is unrecoverable (the
    stream offset is lost) and must close the connection, whereas a
    malformed {e payload} is answered with a typed error and leaves the
    connection usable. *)

val max_frame : int
(** 16 MiB. *)

val header_len : int
(** 4. *)

val encode : string -> string
(** Prefix + payload as one string.  Raises [Invalid_argument] past
    [max_frame]. *)

(** {1 Incremental reading}

    The server feeds whatever [read] returned and steps out complete
    frames; partial frames stay buffered across feeds, so slow or
    chunked writers need no special handling. *)

type reader

val reader : unit -> reader
val feed : reader -> string -> int -> int -> unit
(** [feed r chunk off len] appends [chunk.[off .. off+len-1]]. *)

type step =
  | Frame of string  (** one complete payload, removed from the buffer *)
  | Need_more  (** no complete frame buffered yet *)
  | Oversized of int  (** declared length beyond [max_frame]: close *)

val step : reader -> step
(** Extract the next complete frame, if any.  Call repeatedly until
    [Need_more] — one feed can complete several frames. *)

(** {1 Blocking helpers}

    For the client and tests, where one request/response exchange at a
    time is the natural shape. *)

val read_frame : Unix.file_descr -> string
(** Raises [End_of_file] on a clean close before or inside a frame,
    [Failure] on an oversized prefix. *)

val write_frame : Unix.file_descr -> string -> unit
