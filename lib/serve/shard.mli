(** Sharded heuristic planning over a {!Domain_pool}.

    Parallelises the paper's Algorithm 1 without changing a single
    decision: per-shard plans computed on worker domains supply a
    throughput {e hint}, the hint drives speculative precomputation of
    the bisection's probes, and the sequential driver then replays with
    those memoized builds ({!Adept.Planner.run_with_probe}).  The
    returned plan is bit-identical to [Planner.run Heuristic] for any
    shard count — mispredictions cost time, never fidelity (the QCheck
    equivalence property in the test suite pins this). *)

open Adept_platform

type diag = {
  shards_used : int;  (** Effective shard count after clamping. *)
  hint : float;  (** Best shard/merged candidate rho; 0 if none. *)
  speculated : int;  (** Probes precomputed from the predicted trajectory. *)
  inline_probes : int;  (** Replay probes the memo missed (mispredictions). *)
}

val plan :
  ?shards:int ->
  ?prof:Prof.t ->
  pool:Domain_pool.t ->
  Adept_model.Params.t ->
  platform:Platform.t ->
  wapp:float ->
  demand:Adept_model.Demand.t ->
  (Adept.Planner.plan, Adept.Error.t) Stdlib.result * diag
(** Plan with the heuristic strategy, sharded across [pool]'s domains.
    [prof] collects wall-clock ["shard"] (one per shard hint, labeled
    with the shard index) and ["replay"] stage samples — pure
    observation, never a planning input.
    [shards] defaults to the pool size; it is clamped to
    [platform size / 2] so every shard keeps at least two nodes (an
    agent and a server).  Platforms the heuristic cannot shard
    (heterogeneous connectivity, fewer than four nodes) fall back to the
    sequential planner, reported as [shards_used = 1]. *)
