(** A fixed pool of OCaml 5 worker domains with help-while-waiting
    futures.

    Domains are heavyweight (one runtime each), so the pool is sized
    once at server start and every unit of CPU work goes through
    {!submit}.  {!await} {e helps}: while its future is unresolved it
    runs queued tasks on the calling domain, so a task may submit
    sub-tasks and await them without deadlocking the pool — waiting
    workers drain the very queue their dependencies sit in. *)

type t

val create : ?workers:int -> unit -> t
(** Spawn the worker domains.  Default:
    [Domain.recommended_domain_count () - 1] (the caller's domain keeps
    one), at least 1. *)

val size : t -> int
(** Number of worker domains. *)

val busy_seconds : t -> float array
(** Cumulative wall seconds each worker domain has spent running task
    bodies, indexed by worker.  Monotone; the scrape loop differences
    consecutive snapshots into per-domain busy ratios.  Safe to call
    from any domain. *)

type 'a future

val submit : ?on_resolve:(unit -> unit) -> t -> (unit -> 'a) -> 'a future
(** Enqueue.  Tasks run in submission order (modulo helping).  A task
    submitted after {!shutdown} runs inline on the submitting domain —
    a draining pool never loses work.

    [on_resolve] fires on the running domain {e after} the future is
    resolved — including when the task raises.  Use it for wakeup
    notifications (e.g. poking an event loop's pipe): firing before
    resolution would let the observer consume the wakeup, read the
    future as pending, and sleep forever.  Exceptions from the hook are
    swallowed. *)

val await : 'a future -> 'a
(** Block until resolved, helping with queued tasks meanwhile.
    Re-raises (with backtrace) if the task raised. *)

val is_resolved : 'a future -> bool
(** Non-blocking completion check. *)

val shutdown : t -> unit
(** Stop accepting queued work, finish what is queued, join the
    domains.  Idempotent. *)
