(** Plan-fragment cache: banded buckets, exact-match hits, LRU
    eviction, digest-keyed invalidation.

    Keys combine the platform catalog digest, the strategy name, and
    the workload/demand floats; lookups hit only on the exact floats (a
    plan is a pure function of them), while internal bucketing bands
    the floats to three significant digits to keep probe chains short.
    Single-writer by design (the server's event-loop domain); not
    thread-safe. *)

type t

type entry = { text : string; rho : float; nodes_used : int }

val create : ?capacity:int -> ?on_evict:(age:float -> unit) -> unit -> t
(** LRU capacity in entries, default 128 (clamped to >= 1).  [on_evict]
    observes every capacity eviction with the entry's age — insertion
    to eviction, in whatever time base [add]'s [now] used (0. when the
    caller never passes one). *)

val find :
  t ->
  digest:string ->
  strategy:string ->
  wapp:float ->
  demand:float option ->
  entry option
(** Exact-match lookup; counts a hit or a miss. *)

val add :
  t ->
  ?now:float ->
  digest:string ->
  strategy:string ->
  wapp:float ->
  demand:float option ->
  entry ->
  unit
(** Insert (replacing any entry under the same exact key), evicting the
    least-recently-used entry when at capacity.  [now] (default 0.)
    stamps the slot for eviction-age observability; it never affects
    lookup or eviction decisions. *)

val invalidate_platform : t -> digest:string -> int
(** Drop every entry cached for this platform digest (driven by replan
    requests reporting node deaths).  Returns the number dropped. *)

val size : t -> int
val hits : t -> int

val hit_ratio : t -> float
(** [hits / (hits + misses)] since creation; 0. before any lookup. *)

val misses : t -> int
val evictions : t -> int
val invalidations : t -> int
