(* Typed requests and responses for the planning service, with total
   JSON codecs.  The shapes mirror the batch CLI's flags one-to-one so
   [adept query ...] can be diffed bit-for-bit against [adept plan ...]:
   a platform is either the synthetic-generator parameters or an inline
   catalog text, and the workload/demand/strategy fields carry the same
   defaults as the CLI arguments. *)

type platform_spec =
  | Synthetic of {
      nodes : int;
      power : float;
      bandwidth : float;
      heterogeneous : bool;
      seed : int;
    }
  | Catalog of string  (** catalog text, inline (not a path: the server
                           may run on another machine) *)

type plan_params = {
  spec : platform_spec;
  dgemm : int;
  demand : float option;
  strategy : string;
  use_cache : bool;
      (** [false] bypasses the plan-fragment cache (cold benchmarks). *)
}

type replan_params = {
  r_spec : platform_spec;
  r_dgemm : int;
  r_demand : float option;
  r_strategy : string;
  r_failed : int list;
}

type observe_params = {
  o_spec : platform_spec;
  o_dgemm : int;
  o_demand : float option;
  o_strategy : string;
  o_seed : int;  (** simulation seed (the CLI reuses --seed for this) *)
  o_clients : int;
  o_warmup : float;
  o_duration : float;
}

type request =
  | Plan of plan_params
  | Replan of replan_params
  | Observe of observe_params
  | Stats
  | Trace_dump
  | Otlp_dump

(* [trace] is the optional trace context: a client-generated trace id
   the server head-samples deterministically.  Old clients simply never
   send it (the member is absent, not null), and old servers ignore it
   — the field rides the envelope, so every method can carry it. *)
type envelope = { id : int; trace : int option; request : request }

type error_kind =
  | Parse_error  (** payload is not valid JSON *)
  | Invalid_request  (** JSON but not a request envelope *)
  | Unknown_method of string
  | Invalid_params of string
  | Plan_failed of string  (** planner/simulator returned a typed error *)

(* Wall-clock observability snapshot, present only when the server runs
   with live observability on — the deterministic counters alone keep
   the golden transcript reproducible. *)
(* Per-connection trace aggregation: what each live connection has
   contributed to the sampled-span stream. *)
type conn_stats = {
  conn_id : int;
  conn_requests : int;  (** traced requests finished on this connection *)
  conn_spans : int;
  conn_seconds : float;  (** wall-clock seconds inside those requests *)
}

type live_stats = {
  uptime_seconds : float;
  latency_p50 : float;
  latency_p99 : float;
  cache_hit_ratio : float;
  gc_pause_p99 : float;
  domain_busy : float list;  (** per worker domain, last scrape interval *)
  traces_sampled : int;
  firing_alerts : (string * string) list;  (** (rule name, severity) *)
  connections : conn_stats list;  (** traced connections, by id *)
}

type server_stats = {
  plan_requests : int;
  replan_requests : int;
  observe_requests : int;
  stats_requests : int;
  errors : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  cache_invalidations : int;
  coalesced : int;
  workers : int;
  shards : int;
  live : live_stats option;
}

type response =
  | Plan_ok of { text : string; rho : float; nodes_used : int; cached : bool }
  | Replan_ok of { text : string; rho_after : float }
  | Observe_ok of { text : string; throughput : float }
  | Stats_ok of server_stats
  | Trace_ok of { chrome : string }
  | Otlp_ok of { otlp : string }
  | Error of error_kind

type reply = { reply_id : int; response : response }

(* ---------- encoding ---------- *)

let json_of_spec = function
  | Synthetic { nodes; power; bandwidth; heterogeneous; seed } ->
      Json.Obj
        [
          ( "synthetic",
            Json.Obj
              [
                ("nodes", Json.Int nodes);
                ("power", Json.Float power);
                ("bandwidth", Json.Float bandwidth);
                ("heterogeneous", Json.Bool heterogeneous);
                ("seed", Json.Int seed);
              ] );
        ]
  | Catalog text -> Json.Obj [ ("catalog", Json.String text) ]

let json_of_demand = function
  | None -> Json.Null
  | Some r -> Json.Float r

let json_of_request = function
  | Plan { spec; dgemm; demand; strategy; use_cache } ->
      ( "plan",
        Json.Obj
          [
            ("platform", json_of_spec spec);
            ("dgemm", Json.Int dgemm);
            ("demand", json_of_demand demand);
            ("strategy", Json.String strategy);
            ("use_cache", Json.Bool use_cache);
          ] )
  | Replan { r_spec; r_dgemm; r_demand; r_strategy; r_failed } ->
      ( "replan",
        Json.Obj
          [
            ("platform", json_of_spec r_spec);
            ("dgemm", Json.Int r_dgemm);
            ("demand", json_of_demand r_demand);
            ("strategy", Json.String r_strategy);
            ("failed", Json.List (List.map (fun i -> Json.Int i) r_failed));
          ] )
  | Observe { o_spec; o_dgemm; o_demand; o_strategy; o_seed; o_clients; o_warmup; o_duration }
    ->
      ( "observe",
        Json.Obj
          [
            ("platform", json_of_spec o_spec);
            ("dgemm", Json.Int o_dgemm);
            ("demand", json_of_demand o_demand);
            ("strategy", Json.String o_strategy);
            ("seed", Json.Int o_seed);
            ("clients", Json.Int o_clients);
            ("warmup", Json.Float o_warmup);
            ("duration", Json.Float o_duration);
          ] )
  | Stats -> ("stats", Json.Obj [])
  | Trace_dump -> ("trace", Json.Obj [])
  | Otlp_dump -> ("otlp", Json.Obj [])

(* The canonical encoding doubles as the cache/coalescing identity:
   equal specs encode equally (deterministic member order), and a
   catalog digest covers exactly the platform text. *)
let spec_digest spec = Digest.to_hex (Digest.string (Json.to_string (json_of_spec spec)))

let encode_request { id; trace; request } =
  let method_, params = json_of_request request in
  Json.to_string
    (Json.Obj
       (("id", Json.Int id)
        :: (match trace with
           | None -> []  (* absent, not null: old servers never see it *)
           | Some tid -> [ ("trace", Json.Int tid) ])
       @ [ ("method", Json.String method_); ("params", params) ]))

let error_kind_fields = function
  | Parse_error -> ("parse-error", "request payload is not valid JSON")
  | Invalid_request -> ("invalid-request", "payload is not a request envelope")
  | Unknown_method m -> ("unknown-method", Printf.sprintf "unknown method %S" m)
  | Invalid_params msg -> ("invalid-params", msg)
  | Plan_failed msg -> ("plan-failed", msg)

(* Non-finite floats would encode as JSON null and decode as absent;
   clamp at the codec boundary so the fixpoint holds for every value a
   misbehaving clock could produce. *)
let finite v = if Float.is_finite v then v else 0.0

let json_of_live l =
  Json.Obj
    ([
      ("uptime_seconds", Json.Float (finite l.uptime_seconds));
      ("latency_p50", Json.Float (finite l.latency_p50));
      ("latency_p99", Json.Float (finite l.latency_p99));
      ("cache_hit_ratio", Json.Float (finite l.cache_hit_ratio));
      ("gc_pause_p99", Json.Float (finite l.gc_pause_p99));
      ( "domain_busy",
        Json.List (List.map (fun v -> Json.Float (finite v)) l.domain_busy) );
      ("traces_sampled", Json.Int l.traces_sampled);
      ( "firing_alerts",
        Json.List
          (List.map
             (fun (name, severity) ->
               Json.Obj
                 [
                   ("name", Json.String name);
                   ("severity", Json.String severity);
                 ])
             l.firing_alerts) );
    ]
    @
    (* absent when empty, like the trace member on envelopes: clients
       predating per-connection aggregation never see it *)
    match l.connections with
    | [] -> []
    | conns ->
        [
          ( "connections",
            Json.List
              (List.map
                 (fun c ->
                   Json.Obj
                     [
                       ("id", Json.Int c.conn_id);
                       ("requests", Json.Int c.conn_requests);
                       ("spans", Json.Int c.conn_spans);
                       ("seconds", Json.Float (finite c.conn_seconds));
                     ])
                 conns) );
        ])

let json_of_stats s =
  Json.Obj
    ([
       ( "requests",
         Json.Obj
           [
             ("plan", Json.Int s.plan_requests);
             ("replan", Json.Int s.replan_requests);
             ("observe", Json.Int s.observe_requests);
             ("stats", Json.Int s.stats_requests);
           ] );
       ("errors", Json.Int s.errors);
       ( "cache",
         Json.Obj
           [
             ("hits", Json.Int s.cache_hits);
             ("misses", Json.Int s.cache_misses);
             ("evictions", Json.Int s.cache_evictions);
             ("invalidations", Json.Int s.cache_invalidations);
           ] );
       ("coalesced", Json.Int s.coalesced);
       ("workers", Json.Int s.workers);
       ("shards", Json.Int s.shards);
     ]
    @ match s.live with None -> [] | Some l -> [ ("live", json_of_live l) ])

let encode_reply { reply_id; response } =
  let body =
    match response with
    | Plan_ok { text; rho; nodes_used; cached } ->
        ( "ok",
          Json.Obj
            [
              ("text", Json.String text);
              ("rho", Json.Float rho);
              ("nodes_used", Json.Int nodes_used);
              ("cached", Json.Bool cached);
            ] )
    | Replan_ok { text; rho_after } ->
        ( "ok",
          Json.Obj
            [ ("text", Json.String text); ("rho_after", Json.Float rho_after) ] )
    | Observe_ok { text; throughput } ->
        ( "ok",
          Json.Obj
            [ ("text", Json.String text); ("throughput", Json.Float throughput) ]
        )
    | Stats_ok s -> ("ok", json_of_stats s)
    | Trace_ok { chrome } -> ("ok", Json.Obj [ ("chrome", Json.String chrome) ])
    | Otlp_ok { otlp } -> ("ok", Json.Obj [ ("otlp", Json.String otlp) ])
    | Error kind ->
        let k, msg = error_kind_fields kind in
        ("error", Json.Obj [ ("kind", Json.String k); ("message", Json.String msg) ])
  in
  let tag, payload = body in
  Json.to_string (Json.Obj [ ("id", Json.Int reply_id); (tag, payload) ])

(* ---------- decoding ---------- *)

let ( let* ) = Result.bind

(* [Stdlib.Error] throughout: the [response] type's [Error] constructor
   shadows the result one in this scope. *)
let field name conv j ~default =
  match Json.member name j with
  | None | Some Json.Null -> (
      match default with
      | Some d -> Ok d
      | None -> Stdlib.Error (Printf.sprintf "missing field %S" name))
  | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Stdlib.Error (Printf.sprintf "field %S has the wrong type" name))

let decode_spec j =
  match Json.member "platform" j with
  | None -> Stdlib.Error "missing field \"platform\""
  | Some p -> (
      match (Json.member "synthetic" p, Json.member "catalog" p) with
      | Some s, None ->
          let* nodes = field "nodes" Json.to_int s ~default:(Some 50) in
          let* power = field "power" Json.to_float s ~default:(Some 730.0) in
          let* bandwidth =
            field "bandwidth" Json.to_float s ~default:(Some 1000.0)
          in
          let* heterogeneous =
            field "heterogeneous" Json.to_bool s ~default:(Some false)
          in
          let* seed = field "seed" Json.to_int s ~default:(Some 42) in
          Ok (Synthetic { nodes; power; bandwidth; heterogeneous; seed })
      | None, Some c -> (
          match Json.to_string_v c with
          | Some text -> Ok (Catalog text)
          | None -> Stdlib.Error "field \"catalog\" must be a string")
      | Some _, Some _ ->
          Stdlib.Error "platform is either synthetic or catalog, not both"
      | None, None -> Stdlib.Error "platform needs a synthetic or catalog member")

let decode_common j =
  let* spec = decode_spec j in
  let* dgemm = field "dgemm" Json.to_int j ~default:(Some 310) in
  let* demand =
    field
      (* [None] and JSON null both mean unbounded *)
      "demand"
      (fun v -> Option.map Option.some (Json.to_float v))
      j ~default:(Some None)
  in
  let* strategy = field "strategy" Json.to_string_v j ~default:(Some "heuristic") in
  Ok (spec, dgemm, demand, strategy)

let decode_params method_ params =
  match method_ with
  | "plan" ->
      let* spec, dgemm, demand, strategy = decode_common params in
      let* use_cache = field "use_cache" Json.to_bool params ~default:(Some true) in
      Ok (Plan { spec; dgemm; demand; strategy; use_cache })
  | "replan" ->
      let* r_spec, r_dgemm, r_demand, r_strategy = decode_common params in
      let* r_failed =
        field "failed"
          (fun v ->
            Option.bind (Json.to_list v) (fun items ->
                let ids = List.filter_map Json.to_int items in
                if List.length ids = List.length items then Some ids else None))
          params ~default:None
      in
      Ok (Replan { r_spec; r_dgemm; r_demand; r_strategy; r_failed })
  | "observe" ->
      let* o_spec, o_dgemm, o_demand, o_strategy = decode_common params in
      let* o_seed = field "seed" Json.to_int params ~default:(Some 42) in
      let* o_clients = field "clients" Json.to_int params ~default:(Some 100) in
      let* o_warmup = field "warmup" Json.to_float params ~default:(Some 2.0) in
      let* o_duration = field "duration" Json.to_float params ~default:(Some 4.0) in
      Ok
        (Observe
           { o_spec; o_dgemm; o_demand; o_strategy; o_seed; o_clients; o_warmup;
             o_duration })
  | "stats" -> Ok Stats
  | "trace" -> Ok Trace_dump
  | "otlp" -> Ok Otlp_dump
  | other -> Stdlib.Error (Printf.sprintf "unknown method %S" other)

type decoded = Request of envelope | Bad of int option * error_kind

let decode_request payload =
  match Json.of_string payload with
  | Error _ -> Bad (None, Parse_error)
  | Ok j -> (
      let id = Option.bind (Json.member "id" j) Json.to_int in
      match (id, Option.bind (Json.member "method" j) Json.to_string_v) with
      | None, _ | _, None -> Bad (id, Invalid_request)
      | Some id, Some method_ ->
          if
            not
              (List.mem method_
                 [ "plan"; "replan"; "observe"; "stats"; "trace"; "otlp" ])
          then Bad (Some id, Unknown_method method_)
          else
            (* Absent or non-integer trace context degrades to "no
               trace" — a malformed trace id must never reject an
               otherwise valid request. *)
            let trace = Option.bind (Json.member "trace" j) Json.to_int in
            let params =
              Option.value ~default:(Json.Obj []) (Json.member "params" j)
            in
            (match decode_params method_ params with
            | Ok request -> Request { id; trace; request }
            | Stdlib.Error msg -> Bad (Some id, Invalid_params msg)))

(* Tolerant by construction: each member defaults independently, so a
   newer server can grow the live block without breaking this client. *)
let decode_live j =
  let num name d =
    Option.value ~default:d (Option.bind (Json.member name j) Json.to_float)
  in
  let domain_busy =
    match Option.bind (Json.member "domain_busy" j) Json.to_list with
    | None -> []
    | Some items -> List.filter_map Json.to_float items
  in
  let firing_alerts =
    match Option.bind (Json.member "firing_alerts" j) Json.to_list with
    | None -> []
    | Some items ->
        List.filter_map
          (fun a ->
            match
              ( Option.bind (Json.member "name" a) Json.to_string_v,
                Option.bind (Json.member "severity" a) Json.to_string_v )
            with
            | Some name, Some severity -> Some (name, severity)
            | _ -> None)
          items
  in
  let connections =
    match Option.bind (Json.member "connections" j) Json.to_list with
    | None -> []
    | Some items ->
        List.filter_map
          (fun c ->
            match Option.bind (Json.member "id" c) Json.to_int with
            | None -> None
            | Some conn_id ->
                let int name d =
                  Option.value ~default:d
                    (Option.bind (Json.member name c) Json.to_int)
                in
                Some
                  {
                    conn_id;
                    conn_requests = int "requests" 0;
                    conn_spans = int "spans" 0;
                    conn_seconds =
                      Option.value ~default:0.0
                        (Option.bind (Json.member "seconds" c) Json.to_float);
                  })
          items
  in
  {
    uptime_seconds = num "uptime_seconds" 0.0;
    latency_p50 = num "latency_p50" 0.0;
    latency_p99 = num "latency_p99" 0.0;
    cache_hit_ratio = num "cache_hit_ratio" 0.0;
    gc_pause_p99 = num "gc_pause_p99" 0.0;
    domain_busy;
    traces_sampled =
      Option.value ~default:0
        (Option.bind (Json.member "traces_sampled" j) Json.to_int);
    firing_alerts;
    connections;
  }

let decode_stats j =
  let req name =
    Option.bind (Json.member "requests" j) (fun r ->
        Option.bind (Json.member name r) Json.to_int)
  in
  let cache name =
    Option.bind (Json.member "cache" j) (fun c ->
        Option.bind (Json.member name c) Json.to_int)
  in
  let top name = Option.bind (Json.member name j) Json.to_int in
  match
    ( req "plan",
      req "replan",
      req "observe",
      req "stats",
      top "errors",
      cache "hits",
      cache "misses",
      cache "evictions",
      cache "invalidations",
      top "coalesced",
      top "workers",
      top "shards" )
  with
  | ( Some plan_requests,
      Some replan_requests,
      Some observe_requests,
      Some stats_requests,
      Some errors,
      Some cache_hits,
      Some cache_misses,
      Some cache_evictions,
      Some cache_invalidations,
      Some coalesced,
      Some workers,
      Some shards ) ->
      Some
        {
          plan_requests;
          replan_requests;
          observe_requests;
          stats_requests;
          errors;
          cache_hits;
          cache_misses;
          cache_evictions;
          cache_invalidations;
          coalesced;
          workers;
          shards;
          live = Option.map decode_live (Json.member "live" j);
        }
  | _ -> None

let error_kind_of_wire kind msg =
  match kind with
  | "parse-error" -> Some Parse_error
  | "invalid-request" -> Some Invalid_request
  | "unknown-method" -> (
      (* message shape: unknown method "<name>" *)
      match String.index_opt msg '"' with
      | Some i when String.length msg > i + 1 -> (
          match String.index_from_opt msg (i + 1) '"' with
          | Some j -> Some (Unknown_method (String.sub msg (i + 1) (j - i - 1)))
          | None -> Some (Unknown_method msg))
      | _ -> Some (Unknown_method msg))
  | "invalid-params" -> Some (Invalid_params msg)
  | "plan-failed" -> Some (Plan_failed msg)
  | _ -> None

let decode_reply payload =
  match Json.of_string payload with
  | Error e -> Result.Error ("reply is not JSON: " ^ e)
  | Ok j -> (
      match Option.bind (Json.member "id" j) Json.to_int with
      | None -> Result.Error "reply has no id"
      | Some reply_id -> (
          match (Json.member "ok" j, Json.member "error" j) with
          | Some ok, None -> (
              let str name = Option.bind (Json.member name ok) Json.to_string_v in
              let num name = Option.bind (Json.member name ok) Json.to_float in
              let int name = Option.bind (Json.member name ok) Json.to_int in
              let bool name = Option.bind (Json.member name ok) Json.to_bool in
              match (str "text", num "rho", int "nodes_used", bool "cached") with
              | Some text, Some rho, Some nodes_used, Some cached ->
                  Result.Ok
                    { reply_id;
                      response = Plan_ok { text; rho; nodes_used; cached } }
              | _ -> (
                  match (str "text", num "rho_after") with
                  | Some text, Some rho_after ->
                      Result.Ok
                        { reply_id; response = Replan_ok { text; rho_after } }
                  | _ -> (
                      match (str "text", num "throughput") with
                      | Some text, Some throughput ->
                          Result.Ok
                            { reply_id;
                              response = Observe_ok { text; throughput } }
                      | _ -> (
                          match str "chrome" with
                          | Some chrome ->
                              Result.Ok
                                { reply_id; response = Trace_ok { chrome } }
                          | None -> (
                              match str "otlp" with
                              | Some otlp ->
                                  Result.Ok
                                    { reply_id; response = Otlp_ok { otlp } }
                              | None -> (
                                  match decode_stats ok with
                                  | Some s ->
                                      Result.Ok
                                        { reply_id; response = Stats_ok s }
                                  | None ->
                                      Result.Error "unrecognized ok payload"))))))
          | None, Some err -> (
              match
                ( Option.bind (Json.member "kind" err) Json.to_string_v,
                  Option.bind (Json.member "message" err) Json.to_string_v )
              with
              | Some kind, Some msg -> (
                  match error_kind_of_wire kind msg with
                  | Some k -> Result.Ok { reply_id; response = Error k }
                  | None -> Result.Error ("unknown error kind " ^ kind))
              | _ -> Result.Error "malformed error payload")
          | _ -> Result.Error "reply needs exactly one of ok/error"))
