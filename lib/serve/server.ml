(* The planning server: one event-loop domain multiplexing connections
   with [Unix.select], a {!Domain_pool} of worker domains doing the
   planning/simulation, and a {!Cache} of finished plan answers.

   Life of a request:

   - bytes accumulate in the connection's incremental {!Wire.reader};
   - a complete frame is decoded ({!Protocol.decode_request});
     undecodable payloads get a typed error reply and the connection
     lives on — only a corrupt {e framing} layer (oversized length
     prefix, EOF mid-frame) kills the connection, because past that
     point the stream offset is unrecoverable;
   - [stats] and plan cache hits are answered inline (they are O(1));
     everything else becomes a task on the worker pool, tracked in the
     in-flight table.  A plan request identical to one already in
     flight (same spec digest, strategy, workload, demand) does not
     plan again: it joins the existing entry's waiter list and is
     answered by the same computation — request {e batching} by
     coalescing;
   - workers signal completion through a self-pipe (one byte), which
     wakes the select; the event loop then writes every waiter's reply
     and, for plans, stores the answer in the cache — cache and
     counters are touched only from the event-loop domain, so they need
     no locks;
   - a replan request reports node deaths, so its completion
     invalidates every cached plan for that platform digest.

   Draining: on SIGINT/SIGTERM (or after [max_requests] dispatches) the
   listener closes, in-flight work finishes and is answered, then
   connections close and [run] returns.  A long-lived planner should
   die with an empty in-flight table, not mid-bisection. *)

module Label = Adept_obs.Label
module Semconv = Adept_obs.Semconv

type address = Unix_socket of string | Tcp of string * int

let address_of_string s =
  match String.index_opt s ':' with
  | Some i when String.sub s 0 i = "unix" ->
      Ok (Unix_socket (String.sub s (i + 1) (String.length s - i - 1)))
  | Some i when String.sub s 0 i = "tcp" -> (
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match String.rindex_opt rest ':' with
      | None -> Error "tcp address needs host:port"
      | Some j -> (
          let host = String.sub rest 0 j in
          let port = String.sub rest (j + 1) (String.length rest - j - 1) in
          match int_of_string_opt port with
          | Some p when p > 0 && p < 65536 -> Ok (Tcp (host, p))
          | _ -> Error ("invalid port: " ^ port)))
  | _ ->
      (* A bare path is a Unix socket — the common local case. *)
      if s = "" then Error "empty address" else Ok (Unix_socket s)

let address_to_string = function
  | Unix_socket path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

type config = {
  address : address;
  workers : int option;  (** worker domains; default [recommended - 1] *)
  shards : int option;  (** planner shards; default = worker count *)
  cache_capacity : int;
  max_requests : int option;  (** drain after this many dispatches *)
  registry : Adept_obs.Registry.t option;
}

let default_config address =
  {
    address;
    workers = None;
    shards = None;
    cache_capacity = 128;
    max_requests = None;
    registry = None;
  }

(* ---------- connections ---------- *)

type conn = {
  fd : Unix.file_descr;
  reader : Wire.reader;
  mutable alive : bool;
}

type work_result =
  | W_plan of (Cache.entry, string) result
  | W_replan of (string * float, string) result
  | W_observe of (string * float, string) result

type waiter = { w_conn : conn; w_id : int; w_started : float }

type inflight = {
  future : work_result Domain_pool.future;
  mutable waiters : waiter list;
  coalesce_key : string option;  (** present iff later plans may join *)
  cache_key : (string * string * float * float option) option;
      (** store a successful plan under this exact key on completion *)
  invalidate : string option;  (** platform digest to invalidate on completion *)
}

type t = {
  config : config;
  pool : Domain_pool.t;
  cache : Cache.t;
  listener : Unix.file_descr;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mutable conns : conn list;
  mutable inflight : inflight list;
  coalesce : (string, inflight) Hashtbl.t;
  mutable draining : bool;
  mutable dispatched : int;
  (* deterministic protocol-level counters (the [stats] payload) *)
  mutable plan_requests : int;
  mutable replan_requests : int;
  mutable observe_requests : int;
  mutable stats_requests : int;
  mutable errors : int;
  mutable coalesced : int;
  (* registry instruments *)
  m_requests : string -> Adept_obs.Counter.t;
  m_errors : Adept_obs.Counter.t;
  m_cache_hits : Adept_obs.Counter.t;
  m_cache_misses : Adept_obs.Counter.t;
  m_cache_evictions : Adept_obs.Counter.t;
  m_cache_invalidations : Adept_obs.Counter.t;
  m_coalesced : Adept_obs.Counter.t;
  m_inflight : Adept_obs.Gauge.t;
  m_latency : Adept_obs.Histogram.t;
}

let shards t = Option.value ~default:(Domain_pool.size t.pool) t.config.shards

let listen_socket address =
  match address with
  | Unix_socket path ->
      if Sys.file_exists path then Sys.remove path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      let addr =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string host
      in
      Unix.bind fd (Unix.ADDR_INET (addr, port));
      Unix.listen fd 64;
      fd

(* Process-global so signal handlers can reach it without a closure
   allocation in signal context. *)
let stop_requested = Atomic.make false

let create config =
  (* Reset here, not in [serve]: a stop requested between [create] and
     [serve] (a signal racing a slow startup) must drain the server, not
     vanish.  A previous server's leftover request is discarded. *)
  Atomic.set stop_requested false;
  let registry =
    match config.registry with
    | Some r -> r
    | None -> Adept_obs.Registry.create ()
  in
  let pool = Domain_pool.create ?workers:config.workers () in
  let wake_r, wake_w = Unix.pipe () in
  {
    config;
    pool;
    cache = Cache.create ~capacity:config.cache_capacity ();
    listener = listen_socket config.address;
    wake_r;
    wake_w;
    conns = [];
    inflight = [];
    coalesce = Hashtbl.create 16;
    draining = false;
    dispatched = 0;
    plan_requests = 0;
    replan_requests = 0;
    observe_requests = 0;
    stats_requests = 0;
    errors = 0;
    coalesced = 0;
    m_requests =
      (fun method_ ->
        Adept_obs.Registry.counter registry
          ~labels:(Label.v [ (Semconv.l_method, method_) ])
          Semconv.serve_requests_total);
    m_errors = Adept_obs.Registry.counter registry Semconv.serve_errors_total;
    m_cache_hits =
      Adept_obs.Registry.counter registry Semconv.serve_cache_hits_total;
    m_cache_misses =
      Adept_obs.Registry.counter registry Semconv.serve_cache_misses_total;
    m_cache_evictions =
      Adept_obs.Registry.counter registry Semconv.serve_cache_evictions_total;
    m_cache_invalidations =
      Adept_obs.Registry.counter registry Semconv.serve_cache_invalidations_total;
    m_coalesced =
      Adept_obs.Registry.counter registry Semconv.serve_coalesced_total;
    m_inflight =
      Adept_obs.Registry.gauge registry Semconv.serve_inflight_requests;
    m_latency =
      Adept_obs.Registry.histogram registry Semconv.serve_request_seconds;
  }

(* Mirror the cache's internal tallies into the registry by delta — the
   cache is single-writer (this domain), so the subtraction is exact. *)
let sync_cache_metrics t =
  let bump counter target =
    let d = float_of_int target -. Adept_obs.Counter.value counter in
    if d > 0.0 then Adept_obs.Counter.inc ~by:d counter
  in
  bump t.m_cache_hits (Cache.hits t.cache);
  bump t.m_cache_misses (Cache.misses t.cache);
  bump t.m_cache_evictions (Cache.evictions t.cache);
  bump t.m_cache_invalidations (Cache.invalidations t.cache)

let close_conn t conn =
  if conn.alive then begin
    conn.alive <- false;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    t.conns <- List.filter (fun c -> c != conn) t.conns
  end

let send_reply t conn reply =
  if conn.alive then
    match Wire.write_frame conn.fd (Protocol.encode_reply reply) with
    | () -> ()
    | exception (Unix.Unix_error _ | Sys_error _) ->
        (* The peer vanished mid-reply; that is its problem, not the
           server's.  Drop the connection, keep serving. *)
        close_conn t conn

let send_error t conn id kind =
  t.errors <- t.errors + 1;
  Adept_obs.Counter.inc t.m_errors;
  send_reply t conn
    { Protocol.reply_id = Option.value ~default:0 id;
      response = Protocol.Error kind }

let current_stats t =
  {
    Protocol.plan_requests = t.plan_requests;
    replan_requests = t.replan_requests;
    observe_requests = t.observe_requests;
    stats_requests = t.stats_requests;
    errors = t.errors;
    cache_hits = Cache.hits t.cache;
    cache_misses = Cache.misses t.cache;
    cache_evictions = Cache.evictions t.cache;
    cache_invalidations = Cache.invalidations t.cache;
    coalesced = t.coalesced;
    workers = Domain_pool.size t.pool;
    shards = shards t;
  }

(* ---------- dispatch ---------- *)

let wake t = ignore (Unix.write t.wake_w (Bytes.of_string "x") 0 1)

let submit_work t conn id ?coalesce_key ?cache_key ?invalidate work =
  let waiter = { w_conn = conn; w_id = id; w_started = Unix.gettimeofday () } in
  let entry =
    {
      (* The wake MUST ride on [on_resolve], not inside the task: a wake
         written before the future resolves can be drained by the event
         loop while the entry still reads as pending, and with no second
         wake coming the reply never leaves [reap] — a lost wakeup that
         hangs the client.  (It also fires when [work] raises.) *)
      future = Domain_pool.submit ~on_resolve:(fun () -> wake t) t.pool work;
      waiters = [ waiter ];
      coalesce_key;
      cache_key;
      invalidate;
    }
  in
  t.inflight <- entry :: t.inflight;
  Option.iter (fun k -> Hashtbl.replace t.coalesce k entry) coalesce_key;
  Adept_obs.Gauge.set t.m_inflight (float_of_int (List.length t.inflight))

let plan_cache_key (p : Protocol.plan_params) =
  match Render.wapp_of_dgemm p.Protocol.dgemm with
  | Error _ -> None
  | Ok wapp ->
      Some
        ( Protocol.spec_digest p.Protocol.spec,
          p.Protocol.strategy,
          wapp,
          p.Protocol.demand )

let dispatch t conn { Protocol.id; request } =
  t.dispatched <- t.dispatched + 1;
  match request with
  | Protocol.Stats ->
      t.stats_requests <- t.stats_requests + 1;
      Adept_obs.Counter.inc (t.m_requests "stats");
      send_reply t conn
        { Protocol.reply_id = id; response = Protocol.Stats_ok (current_stats t) }
  | Protocol.Plan p -> (
      t.plan_requests <- t.plan_requests + 1;
      Adept_obs.Counter.inc (t.m_requests "plan");
      let run_plan () =
        let pool = t.pool and n_shards = shards t in
        fun () ->
          W_plan
            (Result.map
               (fun (text, rho, nodes_used) -> { Cache.text; rho; nodes_used })
               (Render.plan ~pool ~shards:n_shards p))
      in
      match plan_cache_key p with
      | None ->
          (* Let the worker path surface the workload error as a typed
             plan failure. *)
          submit_work t conn id (run_plan ())
      | Some (digest, strategy, wapp, demand) -> (
          let cached =
            if p.Protocol.use_cache then
              Cache.find t.cache ~digest ~strategy ~wapp ~demand
            else None
          in
          if p.Protocol.use_cache then sync_cache_metrics t;
          match cached with
          | Some e ->
              send_reply t conn
                {
                  Protocol.reply_id = id;
                  response =
                    Protocol.Plan_ok
                      {
                        text = e.Cache.text;
                        rho = e.Cache.rho;
                        nodes_used = e.Cache.nodes_used;
                        cached = true;
                      };
                }
          | None -> (
              let key =
                if p.Protocol.use_cache then
                  Some
                    (Printf.sprintf "%s/%s/%h/%s" digest strategy wapp
                       (match demand with
                       | None -> "unbounded"
                       | Some r -> Printf.sprintf "%h" r))
                else None
              in
              match Option.bind key (Hashtbl.find_opt t.coalesce) with
              | Some entry when not (Domain_pool.is_resolved entry.future) ->
                  t.coalesced <- t.coalesced + 1;
                  Adept_obs.Counter.inc t.m_coalesced;
                  entry.waiters <-
                    { w_conn = conn; w_id = id; w_started = Unix.gettimeofday () }
                    :: entry.waiters
              | _ ->
                  let cache_key =
                    if p.Protocol.use_cache then
                      Some (digest, strategy, wapp, demand)
                    else None
                  in
                  submit_work t conn id ?coalesce_key:key ?cache_key
                    (run_plan ()))))
  | Protocol.Replan r ->
      t.replan_requests <- t.replan_requests + 1;
      Adept_obs.Counter.inc (t.m_requests "replan");
      submit_work t conn id
        ~invalidate:(Protocol.spec_digest r.Protocol.r_spec)
        (fun () -> W_replan (Render.replan r))
  | Protocol.Observe o ->
      t.observe_requests <- t.observe_requests + 1;
      Adept_obs.Counter.inc (t.m_requests "observe");
      submit_work t conn id (fun () -> W_observe (Render.observe o))

let response_of_result = function
  | W_plan (Ok e) ->
      Protocol.Plan_ok
        {
          text = e.Cache.text;
          rho = e.Cache.rho;
          nodes_used = e.Cache.nodes_used;
          cached = false;
        }
  | W_replan (Ok (text, rho_after)) -> Protocol.Replan_ok { text; rho_after }
  | W_observe (Ok (text, throughput)) -> Protocol.Observe_ok { text; throughput }
  | W_plan (Error msg) | W_replan (Error msg) | W_observe (Error msg) ->
      Protocol.Error (Protocol.Plan_failed msg)

(* Answer every resolved in-flight entry; cache plan answers; apply
   replan invalidations. *)
let reap t =
  let resolved, pending =
    List.partition (fun e -> Domain_pool.is_resolved e.future) t.inflight
  in
  t.inflight <- pending;
  Adept_obs.Gauge.set t.m_inflight (float_of_int (List.length pending));
  List.iter
    (fun entry ->
      Option.iter
        (fun k ->
          match Hashtbl.find_opt t.coalesce k with
          | Some e when e == entry -> Hashtbl.remove t.coalesce k
          | _ -> ())
        entry.coalesce_key;
      let result =
        try Domain_pool.await entry.future
        with e -> W_plan (Error (Printexc.to_string e))
      in
      (match (result, entry.cache_key) with
      | W_plan (Ok e), Some (digest, strategy, wapp, demand) ->
          Cache.add t.cache ~digest ~strategy ~wapp ~demand e
      | _ -> ());
      (match (result, entry.invalidate) with
      | (W_replan (Ok _) | W_replan (Error _)), Some digest ->
          ignore (Cache.invalidate_platform t.cache ~digest);
          sync_cache_metrics t
      | _ -> ());
      let response = response_of_result result in
      let is_error =
        match response with Protocol.Error _ -> true | _ -> false
      in
      let now = Unix.gettimeofday () in
      List.iter
        (fun w ->
          Adept_obs.Histogram.record t.m_latency (now -. w.w_started);
          if is_error then send_error t w.w_conn (Some w.w_id)
              (match response with
              | Protocol.Error k -> k
              | _ -> assert false)
          else
            send_reply t w.w_conn
              { Protocol.reply_id = w.w_id; response })
        (List.rev entry.waiters))
    (List.rev resolved)

(* ---------- frame handling ---------- *)

let handle_frame t conn payload =
  match Protocol.decode_request payload with
  | Protocol.Bad (id, kind) -> send_error t conn id kind
  | Protocol.Request envelope -> dispatch t conn envelope

let read_conn t conn =
  let buf = Bytes.create 65536 in
  match Unix.read conn.fd buf 0 (Bytes.length buf) with
  | 0 ->
      (* Clean or mid-frame EOF: either way the stream is over.  Any
         unanswered frame dies with it — the client is gone. *)
      close_conn t conn
  | n ->
      Wire.feed conn.reader (Bytes.sub_string buf 0 n) 0 n;
      let rec drain_frames () =
        if conn.alive then
          match Wire.step conn.reader with
          | Wire.Frame payload ->
              handle_frame t conn payload;
              drain_frames ()
          | Wire.Need_more -> ()
          | Wire.Oversized declared ->
              (* The stream offset is unrecoverable past a bogus length
                 prefix; drop the connection. *)
              Logs.warn (fun m ->
                  m "serve: dropping connection (oversized frame: %d bytes)"
                    declared);
              t.errors <- t.errors + 1;
              Adept_obs.Counter.inc t.m_errors;
              close_conn t conn
      in
      drain_frames ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      close_conn t conn

(* ---------- main loop ---------- *)

(* One read per select round: the fd is blocking, so only read when
   select reported it readable, and only once — the pipe is a wakeup
   edge, not a data channel. *)
let drain_wake t =
  let buf = Bytes.create 256 in
  match Unix.read t.wake_r buf 0 (Bytes.length buf) with
  | _ -> ()
  | exception Unix.Unix_error _ -> ()

let should_drain t =
  t.draining
  || match t.config.max_requests with
     | Some m -> t.dispatched >= m
     | None -> false

let install_signal_handlers t =
  let handler _ =
    Atomic.set stop_requested true;
    (* Poke the select from the signal context; a failed write only
       delays the drain until the next wakeup. *)
    try wake t with _ -> ()
  in
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle handler)
   with Invalid_argument _ | Sys_error _ -> ());
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle handler)
   with Invalid_argument _ | Sys_error _ -> ());
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

let serve t =
  install_signal_handlers t;
  Logs.info (fun m ->
      m "serve: listening on %s (%d worker domain(s), %d shard(s))"
        (address_to_string t.config.address)
        (Domain_pool.size t.pool) (shards t));
  let accepting = ref true in
  let finished () =
    should_drain t && t.inflight = []
  in
  while not (finished ()) do
    if Atomic.get stop_requested then t.draining <- true;
    if should_drain t && !accepting then begin
      accepting := false;
      Logs.info (fun m -> m "serve: draining (%d in flight)" (List.length t.inflight));
      try Unix.close t.listener with Unix.Unix_error _ -> ()
    end;
    let read_fds =
      (if !accepting then [ t.listener ] else [])
      @ (t.wake_r :: List.map (fun c -> c.fd) t.conns)
    in
    (match Unix.select read_fds [] [] (-1.0) with
    | ready, _, _ ->
        if List.mem t.wake_r ready then drain_wake t;
        if !accepting && List.mem t.listener ready then begin
          match Unix.accept t.listener with
          | fd, _ ->
              t.conns <-
                { fd; reader = Wire.reader (); alive = true } :: t.conns
          | exception Unix.Unix_error _ -> ()
        end;
        List.iter
          (fun conn -> if conn.alive && List.mem conn.fd ready then read_conn t conn)
          (* snapshot: read_conn may close (remove) connections *)
          (List.filter (fun c -> c.alive) t.conns)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    reap t
  done;
  (* Drained: answer nothing more, tear down. *)
  List.iter (fun c -> close_conn t c) t.conns;
  if !accepting then (try Unix.close t.listener with Unix.Unix_error _ -> ());
  (match t.config.address with
  | Unix_socket path -> ( try Sys.remove path with Sys_error _ -> ())
  | Tcp _ -> ());
  Domain_pool.shutdown t.pool;
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
  Logs.info (fun m -> m "serve: drained, bye")

(* Only touches the atomic and the pipe, so it is safe from a signal
   handler or another thread.  NOTE: on OCaml 5.1 do not embed [serve]
   on a secondary thread next to blocking client calls in the same
   process — with worker domains live, two systhreads parked in blocking
   sections deadlock the runtime's stop-the-world handshake.  Tests and
   the bench driver fork a dedicated server process instead and drain it
   with SIGTERM (see docs/SERVE.md). *)
let stop t =
  Atomic.set stop_requested true;
  try wake t with _ -> ()

let run config = serve (create config)
