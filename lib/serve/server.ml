(* The planning server: one event-loop domain multiplexing connections
   with [Unix.select], a {!Domain_pool} of worker domains doing the
   planning/simulation, and a {!Cache} of finished plan answers.

   Life of a request:

   - bytes accumulate in the connection's incremental {!Wire.reader};
   - a complete frame is decoded ({!Protocol.decode_request});
     undecodable payloads get a typed error reply and the connection
     lives on — only a corrupt {e framing} layer (oversized length
     prefix, EOF mid-frame) kills the connection, because past that
     point the stream offset is unrecoverable;
   - [stats] and plan cache hits are answered inline (they are O(1));
     everything else becomes a task on the worker pool, tracked in the
     in-flight table.  A plan request identical to one already in
     flight (same spec digest, strategy, workload, demand) does not
     plan again: it joins the existing entry's waiter list and is
     answered by the same computation — request {e batching} by
     coalescing;
   - workers signal completion through a self-pipe (one byte), which
     wakes the select; the event loop then writes every waiter's reply
     and, for plans, stores the answer in the cache — cache and
     counters are touched only from the event-loop domain, so they need
     no locks;
   - a replan request reports node deaths, so its completion
     invalidates every cached plan for that platform digest.

   Wall-clock observability is opt-in ([config.obs]).  When on, the
   event loop additionally: head-samples request spans (frame read →
   parse → cache lookup → per-shard plan → replay → render → write)
   into a {!Adept_obs.Request_trace} slowest-N reservoir, consumes the
   OCaml runtime's event ring into GC-pause histograms, scrapes the
   registry into a bounded {!Adept_obs.Timeseries} on a wall-clock tick
   and evaluates alert rules over it, and appends a JSONL access log.
   The hard invariant: observability never changes answers.  Requests
   are parsed, planned, cached and answered identically with [obs]
   absent, and sampling is a deterministic hash of the client-sent
   trace id (no RNG is consulted).  With [obs = None] the loop blocks
   indefinitely in select exactly as before, so golden transcripts of
   an untraced server stay byte-identical.

   Draining: on SIGINT/SIGTERM (or after [max_requests] dispatches) the
   listener closes, in-flight work finishes and is answered, then
   connections close and [run] returns.  A long-lived planner should
   die with an empty in-flight table, not mid-bisection. *)

module Label = Adept_obs.Label
module Semconv = Adept_obs.Semconv
module Rt = Adept_obs.Request_trace
module Clock = Adept_obs.Clock

type address = Unix_socket of string | Tcp of string * int

let address_of_string s =
  match String.index_opt s ':' with
  | Some i when String.sub s 0 i = "unix" ->
      Ok (Unix_socket (String.sub s (i + 1) (String.length s - i - 1)))
  | Some i when String.sub s 0 i = "tcp" -> (
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match String.rindex_opt rest ':' with
      | None -> Error "tcp address needs host:port"
      | Some j -> (
          let host = String.sub rest 0 j in
          let port = String.sub rest (j + 1) (String.length rest - j - 1) in
          match int_of_string_opt port with
          | Some p when p > 0 && p < 65536 -> Ok (Tcp (host, p))
          | _ -> Error ("invalid port: " ^ port)))
  | _ ->
      (* A bare path is a Unix socket — the common local case. *)
      if s = "" then Error "empty address" else Ok (Unix_socket s)

let address_to_string = function
  | Unix_socket path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

(* ---------- observability configuration ---------- *)

(* Signals chosen to cover the monitoring taxonomy over the serve
   metrics: a latency threshold with a [for:] hold, a queue-depth
   threshold, a hit-ratio floor, and a two-window miss burn rate. *)
let default_rules_text =
  "# Default serve alerting rules (see docs/OBSERVABILITY.md).\n\
   alert serve_latency_p99_high severity=warning for=3 when \
   p99(adept_serve_request_seconds) > 0.5\n\
   alert serve_queue_deep severity=warning for=3 when \
   last(adept_serve_inflight_requests) > 64\n\
   alert serve_cache_hit_ratio_low severity=warning for=5 when \
   last(adept_serve_cache_hit_ratio) < 0.5\n\
   alert serve_cache_miss_burn severity=critical when \
   min(rate(adept_serve_cache_misses_total[10]), \
   rate(adept_serve_cache_misses_total[60])) > 50\n"

let default_rules () =
  match Adept_obs.Rule.parse default_rules_text with
  | Ok rules -> rules
  | Error msg -> invalid_arg ("serve: default rules do not parse: " ^ msg)

type otlp_sink = Otlp_file of string | Otlp_tcp of string * int

let otlp_sink_of_string s =
  if String.length s > 4 && String.sub s 0 4 = "tcp:" then begin
    let rest = String.sub s 4 (String.length s - 4) in
    match String.rindex_opt rest ':' with
    | None -> Error "otlp tcp sink needs tcp:host:port"
    | Some j -> (
        let host = String.sub rest 0 j in
        let port = String.sub rest (j + 1) (String.length rest - j - 1) in
        match int_of_string_opt port with
        | Some p when p > 0 && p < 65536 -> Ok (Otlp_tcp (host, p))
        | _ -> Error ("invalid port: " ^ port))
  end
  else if s = "" then Error "empty otlp sink"
  else Ok (Otlp_file s)

let otlp_sink_to_string = function
  | Otlp_file path -> path
  | Otlp_tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

type obs_config = {
  clock : Clock.t;
  trace_sample_rate : float;
  trace_slowest : int;
  rules : Adept_obs.Rule.t list;
  scrape_interval : float;
  retention : float;
  access_log : string option;
  prom_path : string option;
  runtime_events : bool;
  journal_dir : string option;
  journal_segment_bytes : int;
  journal_max_segments : int;
  otlp : otlp_sink option;
}

let default_obs () =
  {
    clock = Clock.source Unix.gettimeofday;
    trace_sample_rate = 1.0;
    trace_slowest = 32;
    rules = default_rules ();
    scrape_interval = 1.0;
    retention = 300.0;
    access_log = None;
    prom_path = None;
    runtime_events = true;
    journal_dir = None;
    journal_segment_bytes = 4 * 1024 * 1024;
    journal_max_segments = 8;
    otlp = None;
  }

(* The one [max_spans] the serving trace store uses — persisted in the
   journal's [Meta] record so replay rebuilds an identical store. *)
let trace_max_spans = 4096

type config = {
  address : address;
  workers : int option;  (** worker domains; default [recommended - 1] *)
  shards : int option;  (** planner shards; default = worker count *)
  cache_capacity : int;
  max_requests : int option;  (** drain after this many dispatches *)
  registry : Adept_obs.Registry.t option;
  obs : obs_config option;
}

let default_config address =
  {
    address;
    workers = None;
    shards = None;
    cache_capacity = 128;
    max_requests = None;
    registry = None;
    obs = None;
  }

(* ---------- connections ---------- *)

type conn = {
  c_id : int;  (** accept-order connection id, 1-based *)
  fd : Unix.file_descr;
  reader : Wire.reader;
  mutable alive : bool;
  mutable frame_start : float;
      (** Wall instant the current partial frame's first bytes arrived;
          [nan] when no read has happened since the last frame (only
          maintained when observability is on). *)
}

type work_result =
  | W_plan of (Cache.entry, string) result
  | W_replan of (string * float, string) result
  | W_observe of (string * float, string) result

type waiter = {
  w_conn : conn;
  w_id : int;
  w_started : float;
  (* observability context; zero/None with [obs] off *)
  w_trace : int option;
  w_method : string;
  w_digest : string option;
  w_frame0 : float;
  w_obs : Rt.handle option;
}

type inflight = {
  future : work_result Domain_pool.future;
  mutable waiters : waiter list;
  coalesce_key : string option;  (** present iff later plans may join *)
  cache_key : (string * string * float * float option) option;
      (** store a successful plan under this exact key on completion *)
  invalidate : string option;  (** platform digest to invalidate on completion *)
  prof : Prof.t option;
      (** worker-side stage samples, converted to spans at reap *)
}

(* Per-connection trace aggregation: what each connection contributed
   to the sampled-span stream.  Single-writer (event loop). *)
type conn_agg = {
  mutable ca_requests : int;
  mutable ca_spans : int;
  mutable ca_seconds : float;
}

type obs_state = {
  o_cfg : obs_config;
  o_now : unit -> float;  (** clamped, event-loop side *)
  o_raw : unit -> float;  (** unclamped, safe on worker domains *)
  o_traces : Rt.t;
  o_ts : Adept_obs.Timeseries.t;
  o_alerts : Adept_obs.Alert.t;
  o_started : float;
  mutable o_next_scrape : float;
  mutable o_last_scrape : float;
  mutable o_last_busy : float array;
  mutable o_busy_ratio : float list;
  o_access : out_channel option;
  o_runtime : Runtime_metrics.t option;
  o_traces_sampled : Adept_obs.Counter.t;
  o_scrapes : Adept_obs.Counter.t;
  o_journal : Adept_obs.Journal.writer option;
  o_conn_aggs : (int, conn_agg) Hashtbl.t;  (** conn id -> aggregation *)
  o_trace_conns : (int, int) Hashtbl.t;
      (** trace id -> conn id, for retained exemplars (pruned at scrape) *)
  mutable o_alerts_logged : int;
      (** transitions already journalled (watermark into
          [Alert.transitions]) *)
  o_journal_records : Adept_obs.Counter.t;
  o_journal_bytes : Adept_obs.Counter.t;
  o_otlp_exports : Adept_obs.Counter.t;
}

type t = {
  config : config;
  registry : Adept_obs.Registry.t;
  pool : Domain_pool.t;
  cache : Cache.t;
  listener : Unix.file_descr;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mutable conns : conn list;
  mutable next_conn : int;
  mutable inflight : inflight list;
  coalesce : (string, inflight) Hashtbl.t;
  mutable draining : bool;
  mutable dispatched : int;
  obs : obs_state option;
  (* deterministic protocol-level counters (the [stats] payload) *)
  mutable plan_requests : int;
  mutable replan_requests : int;
  mutable observe_requests : int;
  mutable stats_requests : int;
  mutable errors : int;
  mutable coalesced : int;
  (* registry instruments *)
  m_requests : string -> Adept_obs.Counter.t;
  m_errors : Adept_obs.Counter.t;
  m_cache_hits : Adept_obs.Counter.t;
  m_cache_misses : Adept_obs.Counter.t;
  m_cache_evictions : Adept_obs.Counter.t;
  m_cache_invalidations : Adept_obs.Counter.t;
  m_coalesced : Adept_obs.Counter.t;
  m_inflight : Adept_obs.Gauge.t;
  m_latency : Adept_obs.Histogram.t;
}

let shards t = Option.value ~default:(Domain_pool.size t.pool) t.config.shards

let registry t = t.registry

let listen_socket address =
  match address with
  | Unix_socket path ->
      if Sys.file_exists path then Sys.remove path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      let addr =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string host
      in
      Unix.bind fd (Unix.ADDR_INET (addr, port));
      Unix.listen fd 64;
      fd

(* Process-global so signal handlers can reach it without a closure
   allocation in signal context. *)
let stop_requested = Atomic.make false

let create (config : config) =
  (* Reset here, not in [serve]: a stop requested between [create] and
     [serve] (a signal racing a slow startup) must drain the server, not
     vanish.  A previous server's leftover request is discarded. *)
  Atomic.set stop_requested false;
  let registry =
    match config.registry with
    | Some r -> r
    | None -> Adept_obs.Registry.create ()
  in
  let pool = Domain_pool.create ?workers:config.workers () in
  let wake_r, wake_w = Unix.pipe () in
  let m_eviction_age =
    Adept_obs.Registry.histogram registry Semconv.serve_cache_eviction_age_seconds
  in
  let obs =
    Option.map
      (fun (oc : obs_config) ->
        let o_now () = Clock.now oc.clock in
        let started = o_now () in
        let selectors = List.concat_map Adept_obs.Rule.selectors oc.rules in
        let ts =
          Adept_obs.Timeseries.create ~retention:oc.retention selectors
        in
        let alerts =
          match Adept_obs.Alert.create ~timeseries:ts oc.rules with
          | Ok a -> a
          | Error msg -> invalid_arg ("serve: invalid alert rules: " ^ msg)
        in
        let access =
          Option.map
            (fun path -> open_out_gen [ Open_append; Open_creat ] 0o644 path)
            oc.access_log
        in
        let runtime =
          if oc.runtime_events then
            match Runtime_metrics.start ~registry () with
            | Ok r -> Some r
            | Error msg ->
                Logs.warn (fun m ->
                    m "serve: runtime events unavailable: %s" msg);
                None
          else None
        in
        let journal =
          Option.bind oc.journal_dir (fun dir ->
              match
                Adept_obs.Journal.create
                  ~segment_bytes:oc.journal_segment_bytes
                  ~max_segments:oc.journal_max_segments dir
              with
              | Ok w -> Some w
              | Error msg ->
                  Logs.warn (fun m ->
                      m "serve: flight recorder disabled: %s" msg);
                  None)
        in
        let j_records =
          Adept_obs.Registry.counter registry
            Semconv.serve_journal_records_total
        and j_bytes =
          Adept_obs.Registry.counter registry Semconv.serve_journal_bytes_total
        and otlp_exports =
          Adept_obs.Registry.counter registry Semconv.serve_otlp_exports_total
        in
        Option.iter
          (fun w ->
            let n =
              Adept_obs.Journal.append w
                (Adept_obs.Journal.Meta
                   {
                     m_at = started;
                     m_sample_rate = oc.trace_sample_rate;
                     m_max_traces = max 1 oc.trace_slowest;
                     m_max_spans = trace_max_spans;
                     m_scrape_interval = oc.scrape_interval;
                     m_retention = oc.retention;
                     m_workers = Domain_pool.size pool;
                     m_shards =
                       Option.value ~default:(Domain_pool.size pool)
                         config.shards;
                   })
            in
            Adept_obs.Counter.inc j_records;
            Adept_obs.Counter.inc ~by:(float_of_int n) j_bytes)
          journal;
        {
          o_cfg = oc;
          o_now;
          o_raw = Clock.raw oc.clock;
          o_traces =
            Rt.create ~sample_rate:oc.trace_sample_rate
              ~max_traces:(max 1 oc.trace_slowest)
              ~max_spans:trace_max_spans ();
          o_ts = ts;
          o_alerts = alerts;
          o_started = started;
          o_next_scrape = started +. oc.scrape_interval;
          o_last_scrape = started;
          o_last_busy = Domain_pool.busy_seconds pool;
          o_busy_ratio = [];
          o_access = access;
          o_runtime = runtime;
          o_traces_sampled =
            Adept_obs.Registry.counter registry Semconv.serve_traces_sampled_total;
          o_scrapes =
            Adept_obs.Registry.counter registry Semconv.serve_scrapes_total;
          o_journal = journal;
          o_conn_aggs = Hashtbl.create 16;
          o_trace_conns = Hashtbl.create 64;
          o_alerts_logged = 0;
          o_journal_records = j_records;
          o_journal_bytes = j_bytes;
          o_otlp_exports = otlp_exports;
        })
      config.obs
  in
  {
    config;
    registry;
    pool;
    cache =
      Cache.create ~capacity:config.cache_capacity
        ~on_evict:(fun ~age -> Adept_obs.Histogram.record m_eviction_age age)
        ();
    listener = listen_socket config.address;
    wake_r;
    wake_w;
    conns = [];
    next_conn = 1;
    inflight = [];
    coalesce = Hashtbl.create 16;
    draining = false;
    dispatched = 0;
    obs;
    plan_requests = 0;
    replan_requests = 0;
    observe_requests = 0;
    stats_requests = 0;
    errors = 0;
    coalesced = 0;
    m_requests =
      (fun method_ ->
        Adept_obs.Registry.counter registry
          ~labels:(Label.v [ (Semconv.l_method, method_) ])
          Semconv.serve_requests_total);
    m_errors = Adept_obs.Registry.counter registry Semconv.serve_errors_total;
    m_cache_hits =
      Adept_obs.Registry.counter registry Semconv.serve_cache_hits_total;
    m_cache_misses =
      Adept_obs.Registry.counter registry Semconv.serve_cache_misses_total;
    m_cache_evictions =
      Adept_obs.Registry.counter registry Semconv.serve_cache_evictions_total;
    m_cache_invalidations =
      Adept_obs.Registry.counter registry Semconv.serve_cache_invalidations_total;
    m_coalesced =
      Adept_obs.Registry.counter registry Semconv.serve_coalesced_total;
    m_inflight =
      Adept_obs.Registry.gauge registry Semconv.serve_inflight_requests;
    m_latency =
      Adept_obs.Registry.histogram registry Semconv.serve_request_seconds;
  }

(* Mirror the cache's internal tallies into the registry by delta — the
   cache is single-writer (this domain), so the subtraction is exact. *)
let sync_cache_metrics t =
  let bump counter target =
    let d = float_of_int target -. Adept_obs.Counter.value counter in
    if d > 0.0 then Adept_obs.Counter.inc ~by:d counter
  in
  bump t.m_cache_hits (Cache.hits t.cache);
  bump t.m_cache_misses (Cache.misses t.cache);
  bump t.m_cache_evictions (Cache.evictions t.cache);
  bump t.m_cache_invalidations (Cache.invalidations t.cache)

let close_conn t conn =
  if conn.alive then begin
    conn.alive <- false;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    t.conns <- List.filter (fun c -> c != conn) t.conns
  end

let send_reply t conn reply =
  if conn.alive then
    match Wire.write_frame conn.fd (Protocol.encode_reply reply) with
    | () -> ()
    | exception (Unix.Unix_error _ | Sys_error _) ->
        (* The peer vanished mid-reply; that is its problem, not the
           server's.  Drop the connection, keep serving. *)
        close_conn t conn

let send_error t conn id kind =
  t.errors <- t.errors + 1;
  Adept_obs.Counter.inc t.m_errors;
  send_reply t conn
    { Protocol.reply_id = Option.value ~default:0 id;
      response = Protocol.Error kind }

(* ---------- live observability helpers ---------- *)

let obs_now t = match t.obs with Some o -> o.o_now () | None -> 0.0

(* Merge every phase's GC-pause histogram and take the p99 — the single
   "how bad are pauses" number [adept top] shows. *)
let gc_pause_p99 t =
  match Adept_obs.Registry.find t.registry Semconv.runtime_gc_pause_seconds with
  | None -> 0.0
  | Some fam -> (
      let merged =
        List.fold_left
          (fun acc (_, v) ->
            match v with
            | Adept_obs.Registry.Histogram s -> (
                match acc with
                | None -> Some s
                | Some a -> Some (Adept_obs.Histogram.merge a s))
            | _ -> acc)
          None fam.Adept_obs.Registry.series
      in
      match merged with
      | None -> 0.0
      | Some s ->
          Option.value ~default:0.0 (Adept_obs.Histogram.quantile s 99.0))

(* ---------- flight recorder ---------- *)

let journal o r =
  match o.o_journal with
  | None -> ()
  | Some w -> (
      try
        let n = Adept_obs.Journal.append w r in
        Adept_obs.Counter.inc o.o_journal_records;
        Adept_obs.Counter.inc ~by:(float_of_int n) o.o_journal_bytes
      with Sys_error msg ->
        Logs.warn (fun m -> m "serve: flight recorder append failed: %s" msg))

(* Fold a finished traced request into its connection's aggregate, map
   the trace to the connection for OTLP export, and journal the finish
   with the exact span array the live reservoir admitted. *)
let note_traced_finish o ~conn ~h ~spans_n ~issued ~now tr =
  let cell =
    match Hashtbl.find_opt o.o_conn_aggs conn.c_id with
    | Some c -> c
    | None ->
        let c = { ca_requests = 0; ca_spans = 0; ca_seconds = 0.0 } in
        Hashtbl.add o.o_conn_aggs conn.c_id c;
        c
  in
  cell.ca_requests <- cell.ca_requests + 1;
  cell.ca_spans <- cell.ca_spans + spans_n;
  cell.ca_seconds <- cell.ca_seconds +. (now -. issued);
  Hashtbl.replace o.o_trace_conns (Rt.trace_id h) conn.c_id;
  journal o
    (Adept_obs.Journal.Finish
       {
         f_at = now;
         f_trace = Rt.trace_id h;
         f_issued = issued;
         f_conn = conn.c_id;
         f_spans = Option.map (fun tr -> tr.Rt.tr_spans) tr;
         f_dropped_spans = Rt.dropped_spans o.o_traces;
       })

let conn_agg_list o =
  Hashtbl.fold
    (fun id c acc ->
      {
        Protocol.conn_id = id;
        conn_requests = c.ca_requests;
        conn_spans = c.ca_spans;
        conn_seconds = c.ca_seconds;
      }
      :: acc)
    o.o_conn_aggs []
  |> List.sort (fun a b -> Int.compare a.Protocol.conn_id b.Protocol.conn_id)

(* ---------- OTLP export ---------- *)

let otlp_resource t o =
  let conns = conn_agg_list o in
  let busiest =
    List.fold_left
      (fun acc (c : Protocol.conn_stats) ->
        match acc with
        | Some (b : Protocol.conn_stats) when b.conn_seconds >= c.conn_seconds
          ->
            acc
        | _ -> Some c)
      None conns
  in
  [
    ("service.name", "adept-serve");
    ("adept.workers", string_of_int (Domain_pool.size t.pool));
    ("adept.shards", string_of_int (shards t));
    ("adept.connections.open", string_of_int (List.length t.conns));
    ("adept.connections.traced", string_of_int (List.length conns));
  ]
  @
  match busiest with
  | None -> []
  | Some c ->
      [
        ("adept.conn.busiest", string_of_int c.Protocol.conn_id);
        ( "adept.conn.busiest.seconds",
          Printf.sprintf "%.6f" c.Protocol.conn_seconds );
      ]

let otlp_document t o =
  Adept_obs.Otlp.document ~resource:(otlp_resource t o)
    ~conn_of:(fun tr -> Hashtbl.find_opt o.o_trace_conns tr)
    ~at:(o.o_now ())
    ~exemplars:(Rt.exemplars o.o_traces)
    (Adept_obs.Registry.snapshot t.registry)

let write_otlp t o =
  match o.o_cfg.otlp with
  | None -> ()
  | Some sink -> (
      let doc = otlp_document t o in
      try
        (match sink with
        | Otlp_file path ->
            let tmp = path ^ ".tmp" in
            let oc = open_out tmp in
            output_string oc doc;
            close_out oc;
            Sys.rename tmp path
        | Otlp_tcp (host, port) ->
            let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
            Fun.protect
              ~finally:(fun () ->
                try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () ->
                let addr =
                  try (Unix.gethostbyname host).Unix.h_addr_list.(0)
                  with Not_found -> Unix.inet_addr_of_string host
                in
                Unix.connect fd (Unix.ADDR_INET (addr, port));
                let b = Bytes.of_string doc in
                let sent = ref 0 in
                while !sent < Bytes.length b do
                  sent := !sent + Unix.write fd b !sent (Bytes.length b - !sent)
                done));
        Adept_obs.Counter.inc o.o_otlp_exports
      with
      | Unix.Unix_error (e, _, _) ->
          Logs.warn (fun m ->
              m "serve: OTLP export to %s failed: %s"
                (otlp_sink_to_string sink) (Unix.error_message e))
      | Sys_error msg ->
          Logs.warn (fun m -> m "serve: OTLP export failed: %s" msg))

let live_stats t o =
  let now = o.o_now () in
  let snap = Adept_obs.Histogram.snapshot t.m_latency in
  let q p = Option.value ~default:0.0 (Adept_obs.Histogram.quantile snap p) in
  {
    Protocol.uptime_seconds = now -. o.o_started;
    latency_p50 = q 50.0;
    latency_p99 = q 99.0;
    cache_hit_ratio = Cache.hit_ratio t.cache;
    gc_pause_p99 = gc_pause_p99 t;
    domain_busy = o.o_busy_ratio;
    traces_sampled = Rt.sampled o.o_traces;
    firing_alerts =
      List.filter_map
        (fun ((r : Adept_obs.Rule.t), st) ->
          match st with
          | Adept_obs.Alert.Firing _ ->
              Some (r.Adept_obs.Rule.name,
                    Adept_obs.Rule.severity_name r.Adept_obs.Rule.severity)
          | _ -> None)
        (Adept_obs.Alert.states o.o_alerts);
    connections = conn_agg_list o;
  }

let current_stats t =
  {
    Protocol.plan_requests = t.plan_requests;
    replan_requests = t.replan_requests;
    observe_requests = t.observe_requests;
    stats_requests = t.stats_requests;
    errors = t.errors;
    cache_hits = Cache.hits t.cache;
    cache_misses = Cache.misses t.cache;
    cache_evictions = Cache.evictions t.cache;
    cache_invalidations = Cache.invalidations t.cache;
    coalesced = t.coalesced;
    workers = Domain_pool.size t.pool;
    shards = shards t;
    live = Option.map (fun o -> live_stats t o) t.obs;
  }

let log_access o ~now ~trace ~method_ ~digest ~cache ~shard_count ~duration
    ~status =
  if o.o_access <> None || o.o_journal <> None then begin
    let fields =
      [ ("at", Json.Float now) ]
      @ (match trace with
        | None -> []
        | Some tid -> [ ("trace", Json.Int tid) ])
      @ [ ("method", Json.String method_) ]
      @ (match digest with
        | None -> []
        | Some d -> [ ("digest", Json.String d) ])
      @ (match cache with
        | None -> []
        | Some hit ->
            [ ("cache", Json.String (if hit then "hit" else "miss")) ])
      @ [
          ("shards", Json.Int shard_count);
          ("duration", Json.Float duration);
          ("status", Json.String status);
        ]
    in
    let line = Json.to_string (Json.Obj fields) in
    (match o.o_access with
    | None -> ()
    | Some ch ->
        output_string ch line;
        output_char ch '\n';
        flush ch);
    journal o (Adept_obs.Journal.Access { x_at = now; x_line = line })
  end

(* Append one span to a sampled request's chain and advance its tail. *)
let record_stage t ~robs ~kind ~node ~start ~stop =
  match (t.obs, robs) with
  | Some o, Some h ->
      Rt.set_tail h
        (Rt.add_span o.o_traces h ~parent:(Rt.tail h) ~kind ~node ~start ~stop)
  | _ -> ()

(* ---------- dispatch ---------- *)

let wake t = ignore (Unix.write t.wake_w (Bytes.of_string "x") 0 1)

let submit_work t conn id ?coalesce_key ?cache_key ?invalidate ~robs ~prof
    ~trace ~method_ ~digest ~frame0 work =
  let waiter =
    { w_conn = conn; w_id = id; w_started = Unix.gettimeofday ();
      w_trace = trace; w_method = method_; w_digest = digest;
      w_frame0 = frame0; w_obs = robs }
  in
  let entry =
    {
      (* The wake MUST ride on [on_resolve], not inside the task: a wake
         written before the future resolves can be drained by the event
         loop while the entry still reads as pending, and with no second
         wake coming the reply never leaves [reap] — a lost wakeup that
         hangs the client.  (It also fires when [work] raises.) *)
      future = Domain_pool.submit ~on_resolve:(fun () -> wake t) t.pool work;
      waiters = [ waiter ];
      coalesce_key;
      cache_key;
      invalidate;
      prof;
    }
  in
  t.inflight <- entry :: t.inflight;
  Option.iter (fun k -> Hashtbl.replace t.coalesce k entry) coalesce_key;
  Adept_obs.Gauge.set t.m_inflight (float_of_int (List.length t.inflight))

let plan_cache_key (p : Protocol.plan_params) =
  match Render.wapp_of_dgemm p.Protocol.dgemm with
  | Error _ -> None
  | Ok wapp ->
      Some
        ( Protocol.spec_digest p.Protocol.spec,
          p.Protocol.strategy,
          wapp,
          p.Protocol.demand )

(* Answer an inline (event-loop) request: write span around the actual
   frame write, close the trace, log the access. *)
let answer_inline t ~robs ~frame0 ~trace ~method_ ~digest ~cache conn id
    response =
  match t.obs with
  | None -> send_reply t conn { Protocol.reply_id = id; response }
  | Some o ->
      let t0 = o.o_now () in
      send_reply t conn { Protocol.reply_id = id; response };
      let t1 = o.o_now () in
      (match robs with
      | None -> ()
      | Some h ->
          ignore
            (Rt.add_span o.o_traces h ~parent:(Rt.tail h)
               ~kind:(Rt.Stage Rt.Write_reply) ~node:(-1) ~start:t0 ~stop:t1);
          let spans_n = Rt.span_count h in
          let tr = Rt.finish_trace o.o_traces h ~now:t1 in
          note_traced_finish o ~conn ~h ~spans_n ~issued:frame0 ~now:t1 tr);
      log_access o ~now:t1 ~trace ~method_ ~digest ~cache ~shard_count:0
        ~duration:(t1 -. frame0) ~status:"ok"

let dispatch t conn ~robs ~frame0 { Protocol.id; trace; request } =
  t.dispatched <- t.dispatched + 1;
  match request with
  | Protocol.Stats ->
      t.stats_requests <- t.stats_requests + 1;
      Adept_obs.Counter.inc (t.m_requests "stats");
      answer_inline t ~robs ~frame0 ~trace ~method_:"stats" ~digest:None
        ~cache:None conn id
        (Protocol.Stats_ok (current_stats t))
  | Protocol.Trace_dump -> (
      Adept_obs.Counter.inc (t.m_requests "trace");
      match t.obs with
      | None ->
          send_error t conn (Some id)
            (Protocol.Invalid_params
               "tracing is not enabled on this server (run serve with \
                observability on)")
      | Some o ->
          (* Marker first: replay cuts just before it, and the dump
             request's own Begin_request was already journalled in
             [handle_frame] — exactly the state the live renderer saw. *)
          journal o (Adept_obs.Journal.Dump_marker { d_at = o.o_now () });
          answer_inline t ~robs ~frame0 ~trace ~method_:"trace" ~digest:None
            ~cache:None conn id
            (Protocol.Trace_ok
               { chrome = Adept_obs.Export.chrome_trace o.o_traces }))
  | Protocol.Otlp_dump -> (
      Adept_obs.Counter.inc (t.m_requests "otlp");
      match t.obs with
      | None ->
          send_error t conn (Some id)
            (Protocol.Invalid_params
               "tracing is not enabled on this server (run serve with \
                observability on)")
      | Some o ->
          journal o (Adept_obs.Journal.Dump_marker { d_at = o.o_now () });
          answer_inline t ~robs ~frame0 ~trace ~method_:"otlp" ~digest:None
            ~cache:None conn id
            (Protocol.Otlp_ok { otlp = otlp_document t o }))
  | Protocol.Plan p -> (
      t.plan_requests <- t.plan_requests + 1;
      Adept_obs.Counter.inc (t.m_requests "plan");
      (* Worker-side stage samples only exist for sampled requests — the
         untraced path passes [None] through to {!Prof.time} no-ops. *)
      let prof =
        match (t.obs, robs) with
        | Some o, Some _ -> Some (Prof.create ~now:o.o_raw)
        | _ -> None
      in
      let run_plan () =
        let pool = t.pool and n_shards = shards t in
        fun () ->
          W_plan
            (Result.map
               (fun (text, rho, nodes_used) -> { Cache.text; rho; nodes_used })
               (Render.plan ~pool ~shards:n_shards ?prof p))
      in
      let submit ?coalesce_key ?cache_key ~digest () =
        submit_work t conn id ?coalesce_key ?cache_key ~robs ~prof ~trace
          ~method_:"plan" ~digest:(Some digest) ~frame0 (run_plan ())
      in
      match plan_cache_key p with
      | None ->
          (* Let the worker path surface the workload error as a typed
             plan failure. *)
          submit ~digest:(Protocol.spec_digest p.Protocol.spec) ()
      | Some (digest, strategy, wapp, demand) -> (
          let c0 = obs_now t in
          let cached =
            if p.Protocol.use_cache then
              Cache.find t.cache ~digest ~strategy ~wapp ~demand
            else None
          in
          record_stage t ~robs ~kind:(Rt.Stage Rt.Cache_lookup) ~node:(-1)
            ~start:c0 ~stop:(obs_now t);
          if p.Protocol.use_cache then sync_cache_metrics t;
          match cached with
          | Some e ->
              answer_inline t ~robs ~frame0 ~trace ~method_:"plan"
                ~digest:(Some digest) ~cache:(Some true) conn id
                (Protocol.Plan_ok
                   {
                     text = e.Cache.text;
                     rho = e.Cache.rho;
                     nodes_used = e.Cache.nodes_used;
                     cached = true;
                   })
          | None -> (
              let key =
                if p.Protocol.use_cache then
                  Some
                    (Printf.sprintf "%s/%s/%h/%s" digest strategy wapp
                       (match demand with
                       | None -> "unbounded"
                       | Some r -> Printf.sprintf "%h" r))
                else None
              in
              match Option.bind key (Hashtbl.find_opt t.coalesce) with
              | Some entry when not (Domain_pool.is_resolved entry.future) ->
                  t.coalesced <- t.coalesced + 1;
                  Adept_obs.Counter.inc t.m_coalesced;
                  entry.waiters <-
                    { w_conn = conn; w_id = id;
                      w_started = Unix.gettimeofday (); w_trace = trace;
                      w_method = "plan"; w_digest = Some digest;
                      w_frame0 = frame0; w_obs = robs }
                    :: entry.waiters
              | _ ->
                  let cache_key =
                    if p.Protocol.use_cache then
                      Some (digest, strategy, wapp, demand)
                    else None
                  in
                  submit ?coalesce_key:key ?cache_key ~digest ())))
  | Protocol.Replan r ->
      t.replan_requests <- t.replan_requests + 1;
      Adept_obs.Counter.inc (t.m_requests "replan");
      let digest = Protocol.spec_digest r.Protocol.r_spec in
      submit_work t conn id ~invalidate:digest ~robs ~prof:None ~trace
        ~method_:"replan" ~digest:(Some digest) ~frame0 (fun () ->
          W_replan (Render.replan r))
  | Protocol.Observe o ->
      t.observe_requests <- t.observe_requests + 1;
      Adept_obs.Counter.inc (t.m_requests "observe");
      submit_work t conn id ~robs ~prof:None ~trace ~method_:"observe"
        ~digest:None ~frame0 (fun () -> W_observe (Render.observe o))

let response_of_result = function
  | W_plan (Ok e) ->
      Protocol.Plan_ok
        {
          text = e.Cache.text;
          rho = e.Cache.rho;
          nodes_used = e.Cache.nodes_used;
          cached = false;
        }
  | W_replan (Ok (text, rho_after)) -> Protocol.Replan_ok { text; rho_after }
  | W_observe (Ok (text, throughput)) -> Protocol.Observe_ok { text; throughput }
  | W_plan (Error msg) | W_replan (Error msg) | W_observe (Error msg) ->
      Protocol.Error (Protocol.Plan_failed msg)

(* Turn the entry's worker-side stage samples into spans on one sampled
   waiter's chain: every shard span hangs off the cache-lookup span,
   the replay continues from the last-stopping shard (the barrier the
   sequential replay actually waited on), then render. *)
let graft_worker_spans o entry h =
  match entry.prof with
  | None -> ()
  | Some prof ->
      let samples = Prof.samples prof in
      let fork = Rt.tail h in
      let last_stop = ref neg_infinity and last_id = ref fork in
      List.iter
        (fun (s : Prof.sample) ->
          if s.Prof.ps_stage = "shard" then begin
            let sid =
              Rt.add_span o.o_traces h ~parent:fork
                ~kind:(Rt.Stage Rt.Shard_plan) ~node:s.Prof.ps_shard
                ~start:s.Prof.ps_start ~stop:s.Prof.ps_stop
            in
            if s.Prof.ps_stop >= !last_stop then begin
              last_stop := s.Prof.ps_stop;
              last_id := sid
            end
          end)
        samples;
      let tail = ref !last_id in
      List.iter
        (fun (s : Prof.sample) ->
          let kind =
            match s.Prof.ps_stage with
            | "replay" -> Some (Rt.Stage Rt.Replay)
            | "render" -> Some (Rt.Stage Rt.Render_reply)
            | _ -> None
          in
          Option.iter
            (fun kind ->
              tail :=
                Rt.add_span o.o_traces h ~parent:!tail ~kind ~node:(-1)
                  ~start:s.Prof.ps_start ~stop:s.Prof.ps_stop)
            kind)
        samples;
      Rt.set_tail h !tail

(* Answer every resolved in-flight entry; cache plan answers; apply
   replan invalidations. *)
let reap t =
  let resolved, pending =
    List.partition (fun e -> Domain_pool.is_resolved e.future) t.inflight
  in
  t.inflight <- pending;
  Adept_obs.Gauge.set t.m_inflight (float_of_int (List.length pending));
  List.iter
    (fun entry ->
      Option.iter
        (fun k ->
          match Hashtbl.find_opt t.coalesce k with
          | Some e when e == entry -> Hashtbl.remove t.coalesce k
          | _ -> ())
        entry.coalesce_key;
      let result =
        try Domain_pool.await entry.future
        with e -> W_plan (Error (Printexc.to_string e))
      in
      (match (result, entry.cache_key) with
      | W_plan (Ok e), Some (digest, strategy, wapp, demand) ->
          Cache.add t.cache ~now:(obs_now t) ~digest ~strategy ~wapp ~demand e
      | _ -> ());
      (match (result, entry.invalidate) with
      | (W_replan (Ok _) | W_replan (Error _)), Some digest ->
          ignore (Cache.invalidate_platform t.cache ~digest);
          sync_cache_metrics t
      | _ -> ());
      let response = response_of_result result in
      let is_error =
        match response with Protocol.Error _ -> true | _ -> false
      in
      let now = Unix.gettimeofday () in
      List.iter
        (fun w ->
          (match w.w_obs with
          | Some h ->
              Adept_obs.Histogram.record_ex t.m_latency (now -. w.w_started)
                ~trace_id:(Rt.trace_id h)
          | None -> Adept_obs.Histogram.record t.m_latency (now -. w.w_started));
          let send () =
            if is_error then
              send_error t w.w_conn (Some w.w_id)
                (match response with
                | Protocol.Error k -> k
                | _ -> assert false)
            else
              send_reply t w.w_conn { Protocol.reply_id = w.w_id; response }
          in
          match t.obs with
          | None -> send ()
          | Some o ->
              Option.iter (fun h -> graft_worker_spans o entry h) w.w_obs;
              let t0 = o.o_now () in
              send ();
              let t1 = o.o_now () in
              Option.iter
                (fun h ->
                  ignore
                    (Rt.add_span o.o_traces h ~parent:(Rt.tail h)
                       ~kind:(Rt.Stage Rt.Write_reply) ~node:(-1) ~start:t0
                       ~stop:t1);
                  let spans_n = Rt.span_count h in
                  let tr = Rt.finish_trace o.o_traces h ~now:t1 in
                  note_traced_finish o ~conn:w.w_conn ~h ~spans_n
                    ~issued:w.w_frame0 ~now:t1 tr)
                w.w_obs;
              log_access o ~now:t1 ~trace:w.w_trace ~method_:w.w_method
                ~digest:w.w_digest
                ~cache:(if w.w_method = "plan" then Some false else None)
                ~shard_count:(shards t) ~duration:(t1 -. w.w_frame0)
                ~status:(if is_error then "error" else "ok"))
        (List.rev entry.waiters))
    (List.rev resolved)

(* ---------- frame handling ---------- *)

let handle_frame t conn ~frame_start payload =
  match t.obs with
  | None -> (
      match Protocol.decode_request payload with
      | Protocol.Bad (id, kind) -> send_error t conn id kind
      | Protocol.Request envelope ->
          dispatch t conn ~robs:None ~frame0:0.0 envelope)
  | Some o -> (
      let t_parse0 = o.o_now () in
      let decoded = Protocol.decode_request payload in
      let t_parse1 = o.o_now () in
      match decoded with
      | Protocol.Bad (id, kind) -> send_error t conn id kind
      | Protocol.Request envelope ->
          let frame0 =
            if Float.is_nan frame_start then t_parse0 else frame_start
          in
          let robs =
            match envelope.Protocol.trace with
            | None -> None
            | Some tid -> (
                let admitted = Rt.begin_with_id o.o_traces ~id:tid ~now:frame0 in
                journal o
                  (Adept_obs.Journal.Begin_request
                     {
                       b_at = frame0;
                       b_trace = tid;
                       b_sampled = admitted <> None;
                     });
                match admitted with
                | None -> None
                | Some h ->
                    Adept_obs.Counter.inc o.o_traces_sampled;
                    let p =
                      Rt.add_span o.o_traces h ~parent:(-1)
                        ~kind:(Rt.Stage Rt.Frame_read) ~node:(-1) ~start:frame0
                        ~stop:t_parse0
                    in
                    let p =
                      Rt.add_span o.o_traces h ~parent:p
                        ~kind:(Rt.Stage Rt.Parse) ~node:(-1) ~start:t_parse0
                        ~stop:t_parse1
                    in
                    Rt.set_tail h p;
                    Some h)
          in
          dispatch t conn ~robs ~frame0 envelope)

let read_conn t conn =
  (* Stamp the arrival of the first bytes of a frame: the frame-read
     span runs from here to frame completion.  A second frame completed
     out of the same buffer gets a zero-length read span (its bytes
     were already here). *)
  (match t.obs with
  | Some o when Float.is_nan conn.frame_start ->
      conn.frame_start <- o.o_now ()
  | _ -> ());
  let buf = Bytes.create 65536 in
  match Unix.read conn.fd buf 0 (Bytes.length buf) with
  | 0 ->
      (* Clean or mid-frame EOF: either way the stream is over.  Any
         unanswered frame dies with it — the client is gone. *)
      close_conn t conn
  | n ->
      Wire.feed conn.reader (Bytes.sub_string buf 0 n) 0 n;
      let rec drain_frames () =
        if conn.alive then
          match Wire.step conn.reader with
          | Wire.Frame payload ->
              let frame_start = conn.frame_start in
              conn.frame_start <- Float.nan;
              handle_frame t conn ~frame_start payload;
              drain_frames ()
          | Wire.Need_more -> ()
          | Wire.Oversized declared ->
              (* The stream offset is unrecoverable past a bogus length
                 prefix; drop the connection. *)
              Logs.warn (fun m ->
                  m "serve: dropping connection (oversized frame: %d bytes)"
                    declared);
              t.errors <- t.errors + 1;
              Adept_obs.Counter.inc t.m_errors;
              close_conn t conn
      in
      drain_frames ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      close_conn t conn

(* ---------- scrape loop ---------- *)

let write_prom t o =
  match o.o_cfg.prom_path with
  | None -> ()
  | Some path -> (
      try
        let doc =
          Adept_obs.Export.prometheus (Adept_obs.Registry.snapshot t.registry)
        in
        let tmp = path ^ ".tmp" in
        let oc = open_out tmp in
        output_string oc doc;
        close_out oc;
        Sys.rename tmp path
      with Sys_error msg ->
        Logs.warn (fun m -> m "serve: prometheus export failed: %s" msg))

(* One wall-clock observability tick: drain the runtime's event ring,
   refresh derived gauges, scrape the time series, advance the alert
   state machines, re-export the scrape file. *)
let scrape_tick t o =
  let now = o.o_now () in
  if now >= o.o_next_scrape then begin
    (match o.o_runtime with
    | Some r -> ignore (Runtime_metrics.poll r)
    | None -> ());
    sync_cache_metrics t;
    (* Register the ratio gauge lazily: before the first lookup there
       is no ratio, and a fresh 0 sample would spuriously trip the
       hit-ratio-floor alert on startup. *)
    if Cache.hits t.cache + Cache.misses t.cache > 0 then
      Adept_obs.Gauge.set
        (Adept_obs.Registry.gauge t.registry Semconv.serve_cache_hit_ratio)
        (Cache.hit_ratio t.cache);
    let busy = Domain_pool.busy_seconds t.pool in
    let dt = now -. o.o_last_scrape in
    if dt > 0.0 then
      o.o_busy_ratio <-
        Array.to_list
          (Array.mapi
             (fun i b ->
               let prev =
                 if i < Array.length o.o_last_busy then o.o_last_busy.(i)
                 else 0.0
               in
               let r = Float.max 0.0 (Float.min 1.0 ((b -. prev) /. dt)) in
               Adept_obs.Gauge.set
                 (Adept_obs.Registry.gauge t.registry
                    ~labels:(Label.v [ (Semconv.l_domain, string_of_int i) ])
                    Semconv.runtime_domain_busy_ratio)
                 r;
               r)
             busy);
    o.o_last_busy <- busy;
    o.o_last_scrape <- now;
    Adept_obs.Timeseries.scrape o.o_ts ~registry:t.registry ~now;
    Adept_obs.Alert.eval o.o_alerts ~now;
    Adept_obs.Counter.inc o.o_scrapes;
    o.o_next_scrape <- now +. o.o_cfg.scrape_interval;
    write_prom t o;
    (* Journal the scrape summary and any alert transitions this tick
       produced (everything past the watermark). *)
    (let snap = Adept_obs.Histogram.snapshot t.m_latency in
     let q p =
       Option.value ~default:0.0 (Adept_obs.Histogram.quantile snap p)
     in
     journal o
       (Adept_obs.Journal.Scrape
          {
            j_at = now;
            j_uptime = now -. o.o_started;
            j_plans = t.plan_requests;
            j_replans = t.replan_requests;
            j_observes = t.observe_requests;
            j_stats = t.stats_requests;
            j_errors = t.errors;
            j_coalesced = t.coalesced;
            j_cache_hits = Cache.hits t.cache;
            j_cache_misses = Cache.misses t.cache;
            j_cache_evictions = Cache.evictions t.cache;
            j_cache_invalidations = Cache.invalidations t.cache;
            j_inflight = List.length t.inflight;
            j_latency_p50 = q 50.0;
            j_latency_p99 = q 99.0;
            j_hit_ratio = Cache.hit_ratio t.cache;
            j_gc_pause_p99 = gc_pause_p99 t;
            j_traces_sampled = Rt.sampled o.o_traces;
            j_busy = o.o_busy_ratio;
          }));
    (let txs = Adept_obs.Alert.transitions o.o_alerts in
     let n = List.length txs in
     if n > o.o_alerts_logged then begin
       List.iteri
         (fun i tr ->
           if i >= o.o_alerts_logged then begin
             let at, name, severity, state, value =
               Adept_obs.Export.transition_entry tr
             in
             journal o
               (Adept_obs.Journal.Alert_edge
                  {
                    a_at = at;
                    a_name = name;
                    a_severity = severity;
                    a_state = state;
                    a_value = value;
                  })
           end)
         txs;
       o.o_alerts_logged <- n
     end);
    (* The trace->conn map only needs to cover retained exemplars. *)
    (let keep = Hashtbl.create 64 in
     List.iter
       (fun (tr : Rt.trace) ->
         match Hashtbl.find_opt o.o_trace_conns tr.Rt.tr_id with
         | Some c -> Hashtbl.replace keep tr.Rt.tr_id c
         | None -> ())
       (Rt.exemplars o.o_traces);
     Hashtbl.reset o.o_trace_conns;
     Hashtbl.iter (Hashtbl.replace o.o_trace_conns) keep);
    write_otlp t o
  end

(* ---------- main loop ---------- *)

(* One read per select round: the fd is blocking, so only read when
   select reported it readable, and only once — the pipe is a wakeup
   edge, not a data channel. *)
let drain_wake t =
  let buf = Bytes.create 256 in
  match Unix.read t.wake_r buf 0 (Bytes.length buf) with
  | _ -> ()
  | exception Unix.Unix_error _ -> ()

let should_drain t =
  t.draining
  || match t.config.max_requests with
     | Some m -> t.dispatched >= m
     | None -> false

let install_signal_handlers t =
  let handler _ =
    Atomic.set stop_requested true;
    (* Poke the select from the signal context; a failed write only
       delays the drain until the next wakeup. *)
    try wake t with _ -> ()
  in
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle handler)
   with Invalid_argument _ | Sys_error _ -> ());
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle handler)
   with Invalid_argument _ | Sys_error _ -> ());
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

let serve t =
  install_signal_handlers t;
  Logs.info (fun m ->
      m "serve: listening on %s (%d worker domain(s), %d shard(s))"
        (address_to_string t.config.address)
        (Domain_pool.size t.pool) (shards t));
  let accepting = ref true in
  let finished () =
    should_drain t && t.inflight = []
  in
  while not (finished ()) do
    if Atomic.get stop_requested then t.draining <- true;
    if should_drain t && !accepting then begin
      accepting := false;
      Logs.info (fun m -> m "serve: draining (%d in flight)" (List.length t.inflight));
      try Unix.close t.listener with Unix.Unix_error _ -> ()
    end;
    let read_fds =
      (if !accepting then [ t.listener ] else [])
      @ (t.wake_r :: List.map (fun c -> c.fd) t.conns)
    in
    (* With observability off the select blocks indefinitely — exactly
       the pre-observability server.  With it on, the timeout is the
       time to the next scrape (manual clocks are driven by events, not
       the wall, so they keep the indefinite block). *)
    let timeout =
      match t.obs with
      | None -> -1.0
      | Some o ->
          if Clock.is_manual o.o_cfg.clock then -1.0
          else Float.max 0.001 (o.o_next_scrape -. o.o_now ())
    in
    (match Unix.select read_fds [] [] timeout with
    | ready, _, _ ->
        if List.mem t.wake_r ready then drain_wake t;
        if !accepting && List.mem t.listener ready then begin
          match Unix.accept t.listener with
          | fd, _ ->
              let c_id = t.next_conn in
              t.next_conn <- t.next_conn + 1;
              t.conns <-
                { c_id; fd; reader = Wire.reader (); alive = true;
                  frame_start = Float.nan }
                :: t.conns
          | exception Unix.Unix_error _ -> ()
        end;
        List.iter
          (fun conn -> if conn.alive && List.mem conn.fd ready then read_conn t conn)
          (* snapshot: read_conn may close (remove) connections *)
          (List.filter (fun c -> c.alive) t.conns)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    reap t;
    Option.iter (fun o -> scrape_tick t o) t.obs
  done;
  (* Drained: answer nothing more, tear down. *)
  List.iter (fun c -> close_conn t c) t.conns;
  if !accepting then (try Unix.close t.listener with Unix.Unix_error _ -> ());
  (match t.config.address with
  | Unix_socket path -> ( try Sys.remove path with Sys_error _ -> ())
  | Tcp _ -> ());
  Domain_pool.shutdown t.pool;
  (match t.obs with
  | Some o ->
      (* A short-lived server may drain before its first tick; force a
         final one so the exported snapshot (and the lazily-registered
         derived gauges) always reflect the drained state. *)
      o.o_next_scrape <- Float.neg_infinity;
      scrape_tick t o;
      (match o.o_access with
      | Some ch -> ( try close_out ch with Sys_error _ -> ())
      | None -> ());
      (match o.o_journal with
      | Some w -> ( try Adept_obs.Journal.close w with Sys_error _ -> ())
      | None -> ())
  | None -> ());
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
  Logs.info (fun m -> m "serve: drained, bye")

(* Only touches the atomic and the pipe, so it is safe from a signal
   handler or another thread.  NOTE: on OCaml 5.1 do not embed [serve]
   on a secondary thread next to blocking client calls in the same
   process — with worker domains live, two systhreads parked in blocking
   sections deadlock the runtime's stop-the-world handshake.  Tests and
   the bench driver fork a dedicated server process instead and drain it
   with SIGTERM (see docs/SERVE.md). *)
let stop t =
  Atomic.set stop_requested true;
  try wake t with _ -> ()

let run config = serve (create config)
