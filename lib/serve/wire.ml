(* Length-prefixed frames: 4-byte big-endian payload length, then the
   payload bytes.  The prefix bounds what the server must buffer before
   it can judge a request, and [max_frame] caps it — a prefix past the
   cap is unrecoverable (the stream offset is lost) and closes the
   connection, unlike a malformed payload, which is answered with a
   typed error and leaves the connection usable. *)

let max_frame = 16 * 1024 * 1024
let header_len = 4

let encode payload =
  let n = String.length payload in
  if n > max_frame then
    invalid_arg
      (Printf.sprintf "Wire.encode: frame of %d bytes exceeds max %d" n max_frame);
  let b = Bytes.create (header_len + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b header_len n;
  Bytes.unsafe_to_string b

(* ---------- incremental reader ---------- *)

type reader = {
  mutable buf : Bytes.t;  (** accumulated unparsed bytes *)
  mutable len : int;  (** live prefix of [buf] *)
}

let reader () = { buf = Bytes.create 4096; len = 0 }

let ensure r extra =
  let need = r.len + extra in
  if Bytes.length r.buf < need then begin
    let grown = Bytes.create (max need (2 * Bytes.length r.buf)) in
    Bytes.blit r.buf 0 grown 0 r.len;
    r.buf <- grown
  end

let feed r chunk off len =
  ensure r len;
  Bytes.blit_string chunk off r.buf r.len len;
  r.len <- r.len + len

type step =
  | Frame of string  (** one complete payload, removed from the buffer *)
  | Need_more  (** no complete frame buffered yet *)
  | Oversized of int  (** declared length beyond [max_frame]: close *)

let step r =
  if r.len < header_len then Need_more
  else
    let declared = Int32.to_int (Bytes.get_int32_be r.buf 0) in
    if declared < 0 || declared > max_frame then Oversized declared
    else if r.len < header_len + declared then Need_more
    else begin
      let payload = Bytes.sub_string r.buf header_len declared in
      let consumed = header_len + declared in
      Bytes.blit r.buf consumed r.buf 0 (r.len - consumed);
      r.len <- r.len - consumed;
      Frame payload
    end

(* ---------- blocking stream helpers (client side, tests) ---------- *)

let really_read fd bytes off len =
  let rec go off len =
    if len > 0 then
      let n = Unix.read fd bytes off len in
      if n = 0 then raise End_of_file else go (off + n) (len - n)
  in
  go off len

let read_frame fd =
  let hdr = Bytes.create header_len in
  (match Unix.read fd hdr 0 header_len with
  | 0 -> raise End_of_file
  | n -> really_read fd hdr n (header_len - n));
  let declared = Int32.to_int (Bytes.get_int32_be hdr 0) in
  if declared < 0 || declared > max_frame then
    failwith (Printf.sprintf "Wire.read_frame: oversized frame (%d bytes)" declared);
  let payload = Bytes.create declared in
  really_read fd payload 0 declared;
  Bytes.unsafe_to_string payload

let write_frame fd payload =
  let frame = encode payload in
  let n = String.length frame in
  let rec go off =
    if off < n then
      let written = Unix.write_substring fd frame off (n - off) in
      go (off + written)
  in
  go 0
