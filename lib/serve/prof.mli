(** Wall-clock stage samples collected while computing one request.

    Worker domains cannot touch the event loop's span store (it is
    single-writer), so the work closure collects raw [(stage, shard,
    start, stop)] samples here and the event loop converts them into
    {!Adept_obs.Request_trace} spans at reap time.  Recording is
    mutex-guarded because per-shard hint tasks run on several domains
    at once.

    Every helper accepts [t option] and is a no-op on [None], so the
    untraced path stays zero-cost (no clock reads, no allocation). *)

type sample = {
  ps_stage : string;  (** ["shard"], ["replay"], ["render"]. *)
  ps_shard : int;  (** Shard index for ["shard"] samples; -1 otherwise. *)
  ps_start : float;
  ps_stop : float;
}

type t

val create : now:(unit -> float) -> t
(** [now] must be safe to call from any domain (a raw wall reader, not
    a clamping {!Adept_obs.Clock}). *)

val time : t option -> stage:string -> ?shard:int -> (unit -> 'a) -> 'a
(** Run the thunk, recording one sample around it (exceptions
    propagate; the sample is still recorded). *)

val samples : t -> sample list
(** Samples in recording order (lock-ordered, deterministic given a
    serial recording). *)
