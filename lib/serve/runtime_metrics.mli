(** OCaml runtime profiling for the serving process.

    Consumes the runtime's own tracing ring ([Runtime_events], OCaml
    5.1) in-process and turns GC pause phases into registry histograms
    ([adept_runtime_gc_pause_seconds], labeled by phase) so GC stalls
    land in the same scrape as cache misses and request latency.  The
    consumer is poll-driven: the server's scrape tick calls {!poll},
    which drains whatever the runtime produced since the last tick —
    no thread, no signal handler.

    Observation-only: consuming the ring never perturbs planning
    results, and a runtime without the events ring simply reports an
    error from {!start} instead of failing the server. *)

type t

val start : registry:Adept_obs.Registry.t -> unit -> (t, string) result
(** Start the runtime's tracing ring (idempotent if already started)
    and attach a cursor to this process. *)

val poll : t -> int
(** Drain pending runtime events into the registry; returns the number
    of events consumed this call.  Also bumps
    [adept_runtime_events_total]. *)

val pause_phases : string list
(** The phase names recorded into [adept_runtime_gc_pause_seconds]. *)
