(** Blocking client connection to a {!Server}: sequential
    request/response exchanges, ids managed internally. *)

type t

val connect : Server.address -> t
(** Raises [Unix.Unix_error] when the server is not there. *)

val connect_retry :
  ?attempts:int -> ?delay:float -> Server.address -> (t, string) result
(** {!connect}, retrying connection-refused/absent-socket every [delay]
    seconds (defaults: 50 attempts, 0.1s) — for racing a server that is
    still starting. *)

val call : t -> Protocol.request -> (Protocol.response, string) result
(** Send one request, wait for its reply.  [Error] covers transport
    failures (closed connection, oversized reply) and undecodable
    replies; protocol-level failures arrive as [Protocol.Error]
    responses inside [Ok]. *)

val close : t -> unit
