(** Blocking client connection to a {!Server}: sequential
    request/response exchanges, ids managed internally. *)

type t

val connect : ?trace_base:int -> Server.address -> t
(** Raises [Unix.Unix_error] when the server is not there.  With
    [trace_base] set, every {!call} carries trace context: trace id
    [trace_base + request id].  Callers holding several connections
    should pass disjoint bases so trace ids never collide — the scheme
    is deterministic by construction (no RNG), so the server's
    head-sampling decisions are reproducible run to run. *)

val connect_retry :
  ?attempts:int -> ?delay:float -> ?trace_base:int -> Server.address ->
  (t, string) result
(** {!connect}, retrying connection-refused/absent-socket every [delay]
    seconds (defaults: 50 attempts, 0.1s) — for racing a server that is
    still starting. *)

val call : ?trace_id:int -> t -> Protocol.request -> (Protocol.response, string) result
(** Send one request, wait for its reply.  [trace_id] overrides the
    connection's trace id scheme for this one call (attach context on
    an untraced connection, or pin a specific id).  [Error] covers
    transport failures (closed connection, oversized reply) and
    undecodable replies; protocol-level failures arrive as
    [Protocol.Error] responses inside [Ok]. *)

val close : t -> unit
