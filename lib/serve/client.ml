(* Blocking client for the planning server: one socket, sequential
   request/response exchanges with monotonically increasing ids.  This
   is all [adept query] and the closed-loop bench driver need — each
   logical client holds one connection and waits for its answer. *)

type t = {
  fd : Unix.file_descr;
  mutable next_id : int;
  (* When set, every call carries trace id [base + request id] — a
     deterministic per-connection id space (bench client [i] passes a
     disjoint base per client, so ids never collide across
     connections and sampling stays reproducible without any RNG). *)
  trace_base : int option;
}

let connect ?trace_base address =
  match address with
  | Server.Unix_socket path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with e -> Unix.close fd; raise e);
      { fd; next_id = 1; trace_base }
  | Server.Tcp (host, port) ->
      let addr =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string host
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_INET (addr, port))
       with e -> Unix.close fd; raise e);
      { fd; next_id = 1; trace_base }

(* Retry the connect while the server is still binding — the CLI and CI
   start the server as a background process and race it. *)
let connect_retry ?(attempts = 50) ?(delay = 0.1) ?trace_base address =
  let rec go n =
    match connect ?trace_base address with
    | c -> Ok c
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
      when n > 1 ->
        Unix.sleepf delay;
        go (n - 1)
    | exception Unix.Unix_error (err, _, _) ->
        Error (Unix.error_message err)
  in
  go (max 1 attempts)

let call ?trace_id t request =
  let id = t.next_id in
  t.next_id <- id + 1;
  let trace =
    match trace_id with
    | Some _ -> trace_id
    | None -> Option.map (fun base -> base + id) t.trace_base
  in
  Wire.write_frame t.fd (Protocol.encode_request { Protocol.id; trace; request });
  let rec read_mine () =
    let payload = Wire.read_frame t.fd in
    match Protocol.decode_reply payload with
    | Error e -> Error ("bad reply: " ^ e)
    | Ok reply ->
        if reply.Protocol.reply_id = id then Ok reply.Protocol.response
        else
          (* Replies to other pipelined requests on this socket; a
             sequential client never sees this, but skipping is the
             right behaviour if it ever does. *)
          read_mine ()
  in
  match read_mine () with
  | r -> r
  | exception End_of_file -> Error "server closed the connection"
  | exception Failure msg -> Error msg
  | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
