(* Minimal JSON for the wire protocol: the repository deliberately
   carries no third-party JSON dependency, and the protocol needs two
   properties off-the-shelf printers do not promise together — exact
   float round-tripping (%.17g, so a rho crossing the wire compares
   bit-for-bit with the batch CLI's) and a deterministic member order
   (objects print in construction order, so golden transcripts are
   stable byte-for-byte). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---------- printing ---------- *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

(* %.17g round-trips every finite binary64 exactly.  Whole-valued floats
   print without a decimal point ("310", the %g convention) and so parse
   back as [Int] — harmless, because the typed decoders accept [Int]
   wherever a float is expected ([to_float]); the protocol-level
   fixpoint is on decoded records, not raw literals. *)
let float_literal f = Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool true -> Buffer.add_string buf "true"
  | Bool false -> Buffer.add_string buf "false"
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (float_literal f)
      else Buffer.add_string buf "null"
  | String s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          write buf v)
        items;
      Buffer.add_char buf ']'
  | Obj members ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          write buf v)
        members;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ---------- parsing ---------- *)

exception Parse of string

type state = { text : string; mutable pos : int }

let fail st msg = raise (Parse (Printf.sprintf "%s at byte %d" msg st.pos))
let peek st = if st.pos < String.length st.text then Some st.text.[st.pos] else None

let next st =
  match peek st with
  | Some c ->
      st.pos <- st.pos + 1;
      c
  | None -> fail st "unexpected end of input"

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      st.pos <- st.pos + 1;
      skip_ws st
  | _ -> ()

let expect st c =
  let got = next st in
  if got <> c then fail st (Printf.sprintf "expected %C, got %C" c got)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.text
    && String.sub st.text st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let utf8_of_code buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match next st with
    | '"' -> Buffer.contents buf
    | '\\' -> (
        (match next st with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
            let hex = String.init 4 (fun _ -> next st) in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail st "bad \\u escape"
            in
            utf8_of_code buf code
        | c -> fail st (Printf.sprintf "bad escape \\%C" c));
        go ())
    | c when Char.code c < 0x20 -> fail st "raw control character in string"
    | c ->
        Buffer.add_char buf c;
        go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  let consume () =
    match peek st with
    | Some ('0' .. '9' | '-' | '+') ->
        st.pos <- st.pos + 1;
        true
    | Some ('.' | 'e' | 'E') ->
        is_float := true;
        st.pos <- st.pos + 1;
        true
    | _ -> false
  in
  while consume () do
    ()
  done;
  let lit = String.sub st.text start (st.pos - start) in
  if lit = "" then fail st "expected a number"
  else if !is_float then
    match float_of_string_opt lit with
    | Some f -> Float f
    | None -> fail st ("bad number " ^ lit)
  else
    match int_of_string_opt lit with
    | Some i -> Int i
    | None -> (
        (* Integer literal too wide for [int]: keep the value as a float
           rather than failing — the protocol never needs 63-bit ids. *)
        match float_of_string_opt lit with
        | Some f -> Float f
        | None -> fail st ("bad number " ^ lit))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '"' -> String (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some '[' ->
      expect st '[';
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        List []
      end
      else
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match next st with
          | ',' -> items (v :: acc)
          | ']' -> List (List.rev (v :: acc))
          | c -> fail st (Printf.sprintf "expected ',' or ']', got %C" c)
        in
        items []
  | Some '{' ->
      expect st '{';
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else
        let rec members acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match next st with
          | ',' -> members ((k, v) :: acc)
          | '}' -> Obj (List.rev ((k, v) :: acc))
          | c -> fail st (Printf.sprintf "expected ',' or '}', got %C" c)
        in
        members []
  | Some _ -> parse_number st

let of_string text =
  let st = { text; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length text then
        Error (Printf.sprintf "trailing bytes after JSON value at byte %d" st.pos)
      else Ok v
  | exception Parse msg -> Error msg

(* ---------- typed accessors ---------- *)

let member key = function Obj ms -> List.assoc_opt key ms | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_string_v = function String s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List l -> Some l | _ -> None
