(* Executes protocol requests and renders their results as the exact
   text the batch CLI prints.  This is the bit-for-bit contract of the
   service: [adept query plan ...] piped through here must diff clean
   against [adept plan ...], so every formatting decision below mirrors
   bin/adept_cli.ml — same [Format] "@." line discipline, same
   model-vs-report branch on link uniformity, same simulator wiring
   (seed, registry counters, tracer) for observe.  When the CLI's
   printing changes, this module must change with it; the CI smoke job
   diffs the two paths to catch drift. *)

open Adept_platform
module Dgemm = Adept_workload.Dgemm

(* The CLI plans with the paper's calibrated DIET/Lyon parameters; the
   server must too or no output could ever match. *)
let params = Adept_model.Params.diet_lyon

let ( let* ) = Result.bind

let platform_of_spec = function
  | Protocol.Synthetic { nodes; power; bandwidth; heterogeneous; seed } -> (
      (* Mirrors the CLI's [build_platform] for synthetic platforms;
         generator preconditions (n >= 1, positive power) surface as
         request errors, not server crashes. *)
      try
        if heterogeneous then
          let rng = Adept_util.Rng.create seed in
          Ok
            (Generator.background_loaded ~bandwidth ~rng ~n:nodes ~power
               ~load_fraction:0.65 ~load_levels:4 ())
        else Ok (Generator.homogeneous ~bandwidth ~n:nodes ~power ())
      with Invalid_argument msg -> Error msg)
  | Protocol.Catalog text -> Catalog.of_string text

let wapp_of_dgemm n =
  try Ok (Dgemm.mflops (Dgemm.make n))
  with Invalid_argument msg -> Error msg

let demand_of = function
  | None -> Adept_model.Demand.unbounded
  | Some r -> Adept_model.Demand.rate r

let strategy_of_string s =
  Result.map_error Adept.Error.to_string (Adept.Planner.strategy_of_string s)

(* The [plan] subcommand's stdout: the plan summary, then the model
   report (uniform links) or the bare heterogeneous rho line. *)
let plan_text ~platform ~wapp (plan : Adept.Planner.plan) =
  let head = Format.asprintf "%a@." Adept.Planner.pp_plan plan in
  let body =
    match Link.uniform_bandwidth (Platform.link platform) with
    | Some bandwidth ->
        Format.asprintf "%s@."
          (Adept.Evaluate.report params ~bandwidth ~wapp plan.Adept.Planner.tree)
    | None ->
        Format.asprintf "rho (heterogeneous links) = %.2f req/s@."
          (Adept.Evaluate.rho_hetero params ~platform ~wapp
             plan.Adept.Planner.tree)
  in
  head ^ body

let run_plan ?pool ?shards ?prof strategy ~platform ~wapp ~demand =
  let result =
    match (strategy, pool) with
    | Adept.Planner.Heuristic, Some pool ->
        fst (Shard.plan ?shards ?prof ~pool params ~platform ~wapp ~demand)
    | _ -> Adept.Planner.run strategy params ~platform ~wapp ~demand
  in
  Result.map_error Adept.Error.to_string result

let plan ?pool ?shards ?prof (p : Protocol.plan_params) =
  let* platform = platform_of_spec p.Protocol.spec in
  let* wapp = wapp_of_dgemm p.Protocol.dgemm in
  let* strategy = strategy_of_string p.Protocol.strategy in
  let demand = demand_of p.Protocol.demand in
  let* plan = run_plan ?pool ?shards ?prof strategy ~platform ~wapp ~demand in
  let text =
    Prof.time prof ~stage:"render" (fun () -> plan_text ~platform ~wapp plan)
  in
  Ok (text, plan.Adept.Planner.predicted_rho, plan.Adept.Planner.nodes_used)

let replan (r : Protocol.replan_params) =
  if r.Protocol.r_failed = [] then
    Error "replan: pass at least one failed node id"
  else
    let* platform = platform_of_spec r.Protocol.r_spec in
    let* wapp = wapp_of_dgemm r.Protocol.r_dgemm in
    let* strategy = strategy_of_string r.Protocol.r_strategy in
    let demand = demand_of r.Protocol.r_demand in
    let* result =
      Result.map_error Adept.Error.to_string
        (Adept.Planner.replan strategy params ~platform ~wapp ~demand
           ~failed:r.Protocol.r_failed ())
    in
    let text =
      Format.asprintf "%a@." Adept.Planner.pp_replan result
      ^ Format.asprintf "%a@." Adept_hierarchy.Tree.pp_compact
          result.Adept.Planner.replanned.Adept.Planner.tree
    in
    Ok (text, result.Adept.Planner.rho_after)

let observe (o : Protocol.observe_params) =
  let* platform = platform_of_spec o.Protocol.o_spec in
  let* wapp = wapp_of_dgemm o.Protocol.o_dgemm in
  let* strategy = strategy_of_string o.Protocol.o_strategy in
  let demand = demand_of o.Protocol.o_demand in
  let* plan = run_plan strategy ~platform ~wapp ~demand in
  let tree = plan.Adept.Planner.tree in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Format.asprintf "%a@." Adept.Planner.pp_plan plan);
  let job = Adept_workload.Job.of_dgemm (Dgemm.make o.Protocol.o_dgemm) in
  let registry = Adept_obs.Registry.create () in
  let strategy_labels =
    Adept_obs.Label.v
      [ (Adept_obs.Semconv.l_strategy, Adept.Planner.strategy_name strategy) ]
  in
  Adept_obs.Counter.inc
    (Adept_obs.Registry.counter registry ~labels:strategy_labels
       Adept_obs.Semconv.planner_plans_total);
  Adept_obs.Counter.inc
    ~by:(float_of_int plan.Adept.Planner.evaluations)
    (Adept_obs.Registry.counter registry ~labels:strategy_labels
       Adept_obs.Semconv.planner_evaluations_total);
  let scenario =
    Adept_sim.Scenario.make ~seed:o.Protocol.o_seed ~params ~platform
      ~client:(Adept_workload.Client.closed_loop job)
      tree
  in
  let tracer = Adept_obs.Tracer.create () in
  let trace = Adept_sim.Trace.create ~tracer () in
  let r =
    Adept_sim.Scenario.run_fixed ~trace ~registry scenario
      ~clients:o.Protocol.o_clients ~warmup:o.Protocol.o_warmup
      ~duration:o.Protocol.o_duration
  in
  Buffer.add_string buf
    (Printf.sprintf
       "simulated: %d clients -> %.2f req/s over %.1fs after %.1fs warm-up\n"
       o.Protocol.o_clients r.Adept_sim.Scenario.throughput
       o.Protocol.o_duration o.Protocol.o_warmup);
  Buffer.add_string buf
    (Printf.sprintf "trace buffer: %d item(s), %d dropped\n\n"
       (Adept_obs.Tracer.length tracer)
       (Adept_obs.Tracer.dropped tracer));
  let report = Adept_obs.Report.build ~registry ~params ~platform ~wapp ~tree in
  Buffer.add_string buf (Adept_obs.Report.render report);
  Ok (Buffer.contents buf, r.Adept_sim.Scenario.throughput)
