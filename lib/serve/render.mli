(** Request execution with batch-CLI-identical text rendering.

    The service's core fidelity contract: a [plan]/[replan]/[observe]
    request answered here produces {e byte-for-byte} the text the
    corresponding [adept plan]/[adept replan]/[adept observe] invocation
    prints (the CI smoke job diffs the two).  All planning uses the
    CLI's calibrated {!Adept_model.Params.diet_lyon} parameters. *)

open Adept_platform

val params : Adept_model.Params.t
(** The parameter set every request is planned under (the CLI's). *)

val platform_of_spec : Protocol.platform_spec -> (Platform.t, string) result
(** Build the platform a request describes: the CLI's synthetic
    generators (same load fraction and levels), or an inline catalog
    parse.  Generator preconditions surface as [Error]. *)

val wapp_of_dgemm : int -> (float, string) result
val demand_of : float option -> Adept_model.Demand.t
val strategy_of_string : string -> (Adept.Planner.strategy, string) result

val plan_text : platform:Platform.t -> wapp:float -> Adept.Planner.plan -> string
(** The [adept plan] stdout for this plan (summary + model report, or
    the heterogeneous-links rho line). *)

val run_plan :
  ?pool:Domain_pool.t ->
  ?shards:int ->
  ?prof:Prof.t ->
  Adept.Planner.strategy ->
  platform:Platform.t ->
  wapp:float ->
  demand:Adept_model.Demand.t ->
  (Adept.Planner.plan, string) result
(** Plan, sharding the heuristic across [pool] when given (bit-identical
    by {!Shard.plan}'s replay); other strategies always run inline. *)

val plan :
  ?pool:Domain_pool.t ->
  ?shards:int ->
  ?prof:Prof.t ->
  Protocol.plan_params ->
  (string * float * int, string) result
(** Execute a plan request: [(text, predicted_rho, nodes_used)].
    [prof] collects wall-clock shard/replay/render stage samples;
    passing it never changes the produced bytes. *)

val replan : Protocol.replan_params -> (string * float, string) result
(** Execute a replan request: [(text, rho_after)].  An empty failed list
    is an error, as in the CLI. *)

val observe : Protocol.observe_params -> (string * float, string) result
(** Execute an observe request: [(text, measured throughput)].  Runs the
    full instrumented simulation — deterministic in the request's seed. *)
