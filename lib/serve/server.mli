(** The long-lived planning server.

    One event-loop domain multiplexes connections over [Unix.select]; a
    {!Domain_pool} of worker domains runs the planning and simulation; a
    {!Cache} answers repeated plan queries without replanning.  Requests
    identical to one already in flight coalesce onto it instead of
    planning twice.  See docs/SERVE.md for the protocol and the
    operational story. *)

type address = Unix_socket of string | Tcp of string * int

val address_of_string : string -> (address, string) result
(** ["unix:<path>"], ["tcp:<host>:<port>"], or a bare path (Unix
    socket). *)

val address_to_string : address -> string

(** Where the scrape-cadence OTLP push goes: an atomically-rewritten
    file, or one short-lived TCP connection per push. *)
type otlp_sink = Otlp_file of string | Otlp_tcp of string * int

val otlp_sink_of_string : string -> (otlp_sink, string) result
(** ["tcp:<host>:<port>"], or any other non-empty string as a file
    path. *)

val otlp_sink_to_string : otlp_sink -> string

(** Wall-clock observability for a serving process.  The hard
    invariant: observability never changes answers — responses are
    byte-identical with it on or off, and trace sampling is a
    deterministic hash of the client-sent trace id (no RNG). *)
type obs_config = {
  clock : Adept_obs.Clock.t;
      (** The one [now] provider for spans, scrapes, alerts and the
          access log.  [Clock.source Unix.gettimeofday] for real
          serving; a manual clock turns the scrape loop event-driven
          (deterministic tests). *)
  trace_sample_rate : float;  (** Fraction of trace ids sampled, [0, 1]. *)
  trace_slowest : int;  (** Slowest-N exemplar traces retained. *)
  rules : Adept_obs.Rule.t list;  (** Alert rules over the serve metrics. *)
  scrape_interval : float;  (** Seconds between registry scrapes. *)
  retention : float;  (** Time-series retention window, seconds. *)
  access_log : string option;  (** JSONL per-request log path (append). *)
  prom_path : string option;
      (** Re-written atomically on every scrape and at teardown, so an
          external scraper (or CI) can read a mid-run snapshot. *)
  runtime_events : bool;
      (** Consume the OCaml runtime's event ring into
          [adept_runtime_gc_pause_seconds]. *)
  journal_dir : string option;
      (** Flight-recorder directory ({!Adept_obs.Journal}); [None]
          disables the recorder.  A failed open logs a warning and
          serves without it — recording never blocks serving. *)
  journal_segment_bytes : int;  (** Rotate segments past this size. *)
  journal_max_segments : int;  (** Oldest segments pruned beyond this. *)
  otlp : otlp_sink option;
      (** Push an OTLP/JSON document (spans + metrics) on every scrape
          tick and at teardown; export failures warn and continue. *)
}

val default_obs : unit -> obs_config
(** Wall clock, sample everything, 32 exemplars, {!default_rules}, 1 s
    scrapes, 300 s retention, no access log, no scrape file, runtime
    events on, no flight recorder (4 MiB × 8 segments when enabled),
    no OTLP sink. *)

val default_rules_text : string
(** The built-in alert rules in {!Adept_obs.Rule.parse} syntax: p99
    latency, queue depth, cache hit-ratio floor, and a two-window cache
    miss burn rate. *)

val default_rules : unit -> Adept_obs.Rule.t list

type config = {
  address : address;
  workers : int option;
      (** Worker domains; default [Domain.recommended_domain_count - 1]. *)
  shards : int option;  (** Planner shards; default = worker count. *)
  cache_capacity : int;  (** Plan cache entries (LRU). *)
  max_requests : int option;
      (** Drain and exit after this many dispatched requests — lets
          tests and CI run a server with a bounded lifetime. *)
  registry : Adept_obs.Registry.t option;
      (** Metrics destination ([adept_serve_*]); a private registry is
          created when absent. *)
  obs : obs_config option;
      (** [None] (the default) serves exactly as before observability
          existed: no clock reads on the request path, select blocks
          indefinitely, stats carry no live block. *)
}

val default_config : address -> config
(** Defaults: pool-sized workers and shards, 128 cache entries, no
    request bound, private registry, observability off. *)

val run : config -> unit
(** Bind, serve, block until drained (SIGINT/SIGTERM or
    [max_requests]), then tear down: listener closed, in-flight
    requests answered, connections closed, worker domains joined, Unix
    socket path removed. *)

type t

val create : config -> t
(** Bind the listener and spawn the worker pool without serving yet.
    Raises [Unix.Unix_error] when the address cannot be bound,
    [Invalid_argument] on an invalid [obs] rule set. *)

val registry : t -> Adept_obs.Registry.t
(** The server's metrics registry (the configured one, or the private
    registry created in its absence). *)

val serve : t -> unit
(** The blocking loop of {!run} on an already-created server. *)

val stop : t -> unit
(** Request a drain (from a signal handler or another thread): {!serve}
    finishes in-flight work, answers it, and returns.  On OCaml 5.1,
    run the server in its own process rather than on a sibling thread
    of blocking client calls — see the runtime note in docs/SERVE.md. *)
