(** The long-lived planning server.

    One event-loop domain multiplexes connections over [Unix.select]; a
    {!Domain_pool} of worker domains runs the planning and simulation; a
    {!Cache} answers repeated plan queries without replanning.  Requests
    identical to one already in flight coalesce onto it instead of
    planning twice.  See docs/SERVE.md for the protocol and the
    operational story. *)

type address = Unix_socket of string | Tcp of string * int

val address_of_string : string -> (address, string) result
(** ["unix:<path>"], ["tcp:<host>:<port>"], or a bare path (Unix
    socket). *)

val address_to_string : address -> string

type config = {
  address : address;
  workers : int option;
      (** Worker domains; default [Domain.recommended_domain_count - 1]. *)
  shards : int option;  (** Planner shards; default = worker count. *)
  cache_capacity : int;  (** Plan cache entries (LRU). *)
  max_requests : int option;
      (** Drain and exit after this many dispatched requests — lets
          tests and CI run a server with a bounded lifetime. *)
  registry : Adept_obs.Registry.t option;
      (** Metrics destination ([adept_serve_*]); a private registry is
          created when absent. *)
}

val default_config : address -> config
(** Defaults: pool-sized workers and shards, 128 cache entries, no
    request bound, private registry. *)

val run : config -> unit
(** Bind, serve, block until drained (SIGINT/SIGTERM or
    [max_requests]), then tear down: listener closed, in-flight
    requests answered, connections closed, worker domains joined, Unix
    socket path removed. *)

type t

val create : config -> t
(** Bind the listener and spawn the worker pool without serving yet.
    Raises [Unix.Unix_error] when the address cannot be bound. *)

val serve : t -> unit
(** The blocking loop of {!run} on an already-created server. *)

val stop : t -> unit
(** Request a drain (from a signal handler or another thread): {!serve}
    finishes in-flight work, answers it, and returns.  On OCaml 5.1,
    run the server in its own process rather than on a sibling thread
    of blocking client calls — see the runtime note in docs/SERVE.md. *)
