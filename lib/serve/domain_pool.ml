(* A fixed pool of worker domains with a shared run queue and
   help-while-waiting futures.

   OCaml 5 domains are heavyweight (one runtime per domain), so the pool
   is sized once at server start — never per request — and every unit of
   CPU work (a whole request, or one speculative bisection probe inside
   one) goes through [submit].  [await] HELPS: while its future is
   unresolved it pulls queued tasks and runs them on the calling domain.
   That makes nested submission safe — a planning task running on a
   worker can fan out probe tasks and await them without deadlocking the
   pool, because waiting workers drain the very queue their dependencies
   sit in. *)

type task = { run : unit -> unit }

type t = {
  queue : task Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
  mutable domains : unit Domain.t array;
  workers : int;
  (* Wall seconds each worker spent inside task bodies (help-while-await
     nests inside the outer task and is covered by it).  One writer per
     cell; [Atomic] so the event-loop domain reads torn-free. *)
  busy : float Atomic.t array;
}

type 'a state = Pending | Done of 'a | Raised of exn * Printexc.raw_backtrace

type 'a future = {
  mutable state : 'a state;
  fm : Mutex.t;
  resolved : Condition.t;
  pool : t;
}

let try_pop t =
  Mutex.lock t.mutex;
  let task = Queue.take_opt t.queue in
  Mutex.unlock t.mutex;
  task

let worker_loop t idx () =
  let rec go () =
    Mutex.lock t.mutex;
    let rec wait () =
      match Queue.take_opt t.queue with
      | Some task ->
          Mutex.unlock t.mutex;
          let started = Unix.gettimeofday () in
          task.run ();
          Atomic.set t.busy.(idx)
            (Atomic.get t.busy.(idx) +. (Unix.gettimeofday () -. started));
          true
      | None ->
          if t.closed then begin
            Mutex.unlock t.mutex;
            false
          end
          else begin
            Condition.wait t.nonempty t.mutex;
            wait ()
          end
    in
    if wait () then go ()
  in
  go ()

let create ?workers () =
  let workers =
    match workers with
    | Some w -> max 1 w
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  let t =
    {
      queue = Queue.create ();
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      closed = false;
      domains = [||];
      workers;
      busy = Array.init workers (fun _ -> Atomic.make 0.0);
    }
  in
  t.domains <- Array.init workers (fun i -> Domain.spawn (worker_loop t i));
  t

let size t = t.workers

let busy_seconds t = Array.map Atomic.get t.busy

let submit ?on_resolve t f =
  let fut = { state = Pending; fm = Mutex.create (); resolved = Condition.create (); pool = t } in
  let run () =
    let outcome =
      match f () with
      | v -> Done v
      | exception e -> Raised (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock fut.fm;
    fut.state <- outcome;
    Condition.broadcast fut.resolved;
    Mutex.unlock fut.fm;
    (* Only after the future is visibly resolved: a notification hook
       that fires before resolution (or not at all, when [f] raises) is
       a lost wakeup — an observer can consume it, find the future still
       pending, and then sleep forever. *)
    match on_resolve with
    | None -> ()
    | Some g -> ( try g () with _ -> ())
  in
  Mutex.lock t.mutex;
  if t.closed then begin
    Mutex.unlock t.mutex;
    (* A draining pool accepts no new work; run inline so shutdown can
       never lose a task. *)
    run ()
  end
  else begin
    Queue.push { run } t.queue;
    Condition.signal t.nonempty;
    Mutex.unlock t.mutex
  end;
  fut

let peek fut =
  Mutex.lock fut.fm;
  let s = fut.state in
  Mutex.unlock fut.fm;
  s

let await fut =
  let t = fut.pool in
  let rec help () =
    match peek fut with
    | Done v -> v
    | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
    | Pending -> (
        (* Help: run someone else's task — possibly the one this future
           depends on — instead of blocking a domain. *)
        match try_pop t with
        | Some task ->
            task.run ();
            help ()
        | None ->
            (* Nothing runnable: the dependency is mid-flight on another
               domain.  Sleep on the future itself. *)
            Mutex.lock fut.fm;
            while fut.state = Pending do
              Condition.wait fut.resolved fut.fm
            done;
            Mutex.unlock fut.fm;
            help ())
  in
  help ()

let is_resolved fut = peek fut <> Pending

let shutdown t =
  Mutex.lock t.mutex;
  if not t.closed then begin
    t.closed <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.domains
  end
  else Mutex.unlock t.mutex
