module Re = Runtime_events
module Semconv = Adept_obs.Semconv

(* Pause-like phases only: sub-phases of a collection would double-count
   the same wall time under a "pause" metric.  [minor] fires on every
   minor collection, so any allocating workload produces data. *)
let pause_phases = [ "minor"; "major"; "major_slice"; "stw_leader" ]

type t = {
  cursor : Re.cursor;
  callbacks : Re.Callbacks.t;
  events : Adept_obs.Counter.t;
  (* (ring domain id, phase) -> begin timestamp; phases of interest do
     not self-nest, so one cell per pair suffices. *)
  open_phases : (int * Re.runtime_phase, Re.Timestamp.t) Hashtbl.t;
}

let seconds_between t0 t1 =
  Int64.to_float (Int64.sub (Re.Timestamp.to_int64 t1) (Re.Timestamp.to_int64 t0))
  /. 1e9

let start ~registry () =
  match
    (try Re.start () with Failure _ -> ());
    Re.create_cursor None
  with
  | exception e -> Error (Printexc.to_string e)
  | cursor ->
      let open_phases = Hashtbl.create 16 in
      let histograms = Hashtbl.create 8 in
      let histogram phase_name =
        match Hashtbl.find_opt histograms phase_name with
        | Some h -> h
        | None ->
            let h =
              Adept_obs.Registry.histogram registry
                ~labels:
                  (Adept_obs.Label.v [ (Semconv.l_phase, phase_name) ])
                Semconv.runtime_gc_pause_seconds
            in
            Hashtbl.replace histograms phase_name h;
            h
      in
      (* Register every pause phase up front: a scrape taken before the
         first collection still exports the full, stable metric set. *)
      List.iter (fun p -> ignore (histogram p)) pause_phases;
      let runtime_begin ring ts phase =
        if List.mem (Re.runtime_phase_name phase) pause_phases then
          Hashtbl.replace open_phases (ring, phase) ts
      in
      let runtime_end ring ts phase =
        match Hashtbl.find_opt open_phases (ring, phase) with
        | None -> ()
        | Some t0 ->
            Hashtbl.remove open_phases (ring, phase);
            let d = seconds_between t0 ts in
            if d >= 0.0 then
              Adept_obs.Histogram.record
                (histogram (Re.runtime_phase_name phase))
                d
      in
      let callbacks = Re.Callbacks.create ~runtime_begin ~runtime_end () in
      Ok
        {
          cursor;
          callbacks;
          events =
            Adept_obs.Registry.counter registry Semconv.runtime_events_total;
          open_phases;
        }

let poll t =
  match Re.read_poll t.cursor t.callbacks None with
  | n ->
      if n > 0 then Adept_obs.Counter.inc ~by:(float_of_int n) t.events;
      n
  | exception _ -> 0
