type sample = {
  ps_stage : string;
  ps_shard : int;
  ps_start : float;
  ps_stop : float;
}

type t = {
  now : unit -> float;
  mutex : Mutex.t;
  mutable samples : sample list;  (* newest first *)
}

let create ~now = { now; mutex = Mutex.create (); samples = [] }

let record t ~stage ~shard ~start ~stop =
  Mutex.lock t.mutex;
  t.samples <-
    { ps_stage = stage; ps_shard = shard; ps_start = start; ps_stop = stop }
    :: t.samples;
  Mutex.unlock t.mutex

let time t ~stage ?(shard = -1) f =
  match t with
  | None -> f ()
  | Some t -> (
      let start = t.now () in
      match f () with
      | v ->
          record t ~stage ~shard ~start ~stop:(t.now ());
          v
      | exception e ->
          record t ~stage ~shard ~start ~stop:(t.now ());
          raise e)

let samples t =
  Mutex.lock t.mutex;
  let s = t.samples in
  Mutex.unlock t.mutex;
  List.rev s
