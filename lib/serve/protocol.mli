(** Typed requests and responses for the planning service.

    The shapes mirror the batch CLI's flags one-to-one, so a [query]
    answer can be diffed bit-for-bit against the corresponding batch
    command: a platform is either the synthetic-generator parameters or
    an inline catalog text, and the workload/demand/strategy fields
    carry the same defaults as the CLI arguments.

    Codecs are total: [decode_request (encode_request e)] recovers [e]
    exactly, and likewise for replies — the parse/print fixpoint the
    protocol tests pin. *)

type platform_spec =
  | Synthetic of {
      nodes : int;
      power : float;
      bandwidth : float;
      heterogeneous : bool;
      seed : int;
    }
  | Catalog of string
      (** Catalog text, inline — not a path; the server may run on
          another machine. *)

type plan_params = {
  spec : platform_spec;
  dgemm : int;
  demand : float option;  (** [None] = unbounded *)
  strategy : string;
  use_cache : bool;
      (** [false] bypasses the plan-fragment cache (cold benchmarks). *)
}

type replan_params = {
  r_spec : platform_spec;
  r_dgemm : int;
  r_demand : float option;
  r_strategy : string;
  r_failed : int list;
}

type observe_params = {
  o_spec : platform_spec;
  o_dgemm : int;
  o_demand : float option;
  o_strategy : string;
  o_seed : int;  (** simulation seed (the CLI reuses --seed for this) *)
  o_clients : int;
  o_warmup : float;
  o_duration : float;
}

type request =
  | Plan of plan_params
  | Replan of replan_params
  | Observe of observe_params
  | Stats
  | Trace_dump
      (** Dump the server's sampled-trace reservoir as Chrome-trace
          JSON.  Observability read path: never touches planning state. *)
  | Otlp_dump
      (** Dump the reservoir and a registry snapshot as one OTLP/JSON
          document ({!Adept_obs.Otlp}).  Observability read path. *)

type envelope = { id : int; trace : int option; request : request }
(** [trace] is the optional trace context: a client-generated trace id
    the server head-samples deterministically.  Old clients never send
    it (absent member, not null) and old servers ignore it, so the
    field is backward- and forward-compatible on the same wire. *)

type error_kind =
  | Parse_error  (** payload is not valid JSON *)
  | Invalid_request  (** JSON but not a request envelope *)
  | Unknown_method of string
  | Invalid_params of string
  | Plan_failed of string  (** planner/simulator returned a typed error *)

type conn_stats = {
  conn_id : int;
  conn_requests : int;  (** traced requests finished on this connection *)
  conn_spans : int;
  conn_seconds : float;  (** wall-clock seconds inside those requests *)
}
(** Per-connection trace aggregation: what each connection contributed
    to the sampled-span stream since it was accepted. *)

type live_stats = {
  uptime_seconds : float;
  latency_p50 : float;  (** request wall-clock seconds, this process *)
  latency_p99 : float;
  cache_hit_ratio : float;
  gc_pause_p99 : float;
  domain_busy : float list;  (** per worker domain, last scrape interval *)
  traces_sampled : int;
  firing_alerts : (string * string) list;  (** (rule name, severity) *)
  connections : conn_stats list;
      (** Connections that finished traced requests, by connection id.
          Encoded as an absent member when empty, so the wire shape
          predating per-connection aggregation is unchanged. *)
}
(** Wall-clock observability snapshot.  Non-finite floats are clamped
    to 0 at the codec boundary (JSON has no representation for them). *)

type server_stats = {
  plan_requests : int;
  replan_requests : int;
  observe_requests : int;
  stats_requests : int;
  errors : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  cache_invalidations : int;
  coalesced : int;
  workers : int;
  shards : int;
  live : live_stats option;
}
(** Deterministic counters, plus a [live] wall-clock block present only
    when the server runs with live observability on — with it off, a
    [stats] exchange is byte-reproducible and can sit in a golden
    transcript. *)

type response =
  | Plan_ok of { text : string; rho : float; nodes_used : int; cached : bool }
  | Replan_ok of { text : string; rho_after : float }
  | Observe_ok of { text : string; throughput : float }
  | Stats_ok of server_stats
  | Trace_ok of { chrome : string }
      (** Chrome-trace JSON for the sampled slowest requests. *)
  | Otlp_ok of { otlp : string }
      (** One OTLP/JSON document: spans + metrics at dump time. *)
  | Error of error_kind

type reply = { reply_id : int; response : response }

val encode_request : envelope -> string
val encode_reply : reply -> string

val spec_digest : platform_spec -> string
(** Hex digest of the spec's canonical encoding — the platform identity
    the plan cache keys on and replan invalidation targets.  Equal specs
    always digest equally (member order is deterministic). *)

type decoded =
  | Request of envelope
  | Bad of int option * error_kind
      (** Undecodable payload, with the request id when one could still
          be read (so the error response can echo it). *)

val decode_request : string -> decoded

val decode_reply : string -> (reply, string) result

val error_kind_fields : error_kind -> string * string
(** Wire [kind] tag and human message. *)
