(** Minimal JSON for the planning-server wire protocol.

    Hand-rolled on purpose: the repository carries no third-party JSON
    dependency, and the protocol needs exact float round-tripping
    ([%.17g], so model throughputs compare bit-for-bit across the wire)
    and deterministic member order (objects print in construction
    order — golden transcripts are stable byte-for-byte). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (no whitespace), deterministic.  Non-finite floats print as
    [null] — the protocol never produces them. *)

val of_string : string -> (t, string) result
(** Strict parse of one JSON value spanning the whole input (modulo
    surrounding whitespace).  Number literals without [./e] parse as
    [Int], others as [Float]; integers wider than [int] fall back to
    [Float]. *)

(** {1 Typed accessors}

    All return [None] on a shape mismatch; [to_float] accepts [Int]
    (whole-valued floats print without a decimal point, so the reader
    must not care). *)

val member : string -> t -> t option
val to_int : t -> int option
val to_float : t -> float option
val to_string_v : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
