(* Sharded planning: shard-and-arbitrate with exact sequential replay.

   Splitting the paper's heuristic across domains is delicate because
   its bisection is a strictly sequential decision chain — every probe's
   target depends on every earlier outcome, and the acceptance criterion
   for this subsystem is a plan {e bit-identical} to the single-domain
   one (float non-associativity rules out merging partial sums, and any
   change in probe order changes tie-breaks).  The scheme:

   {b Phase 1 — shard hints.}  The node pool (the planner's
   scheduling-power order) is partitioned round-robin into per-domain
   shards; each worker runs the full heuristic on its shard as an
   independent sub-platform.  Round-robin keeps every shard's power
   profile representative — a contiguous split would give one shard all
   the strong nodes and starve the rest.

   {b Phase 2 — merge at root.}  Shard candidates are merged into one
   full-platform hierarchy: the shard holding the globally strongest
   node contributes the root, the other shards' trees attach under it as
   subtrees.  The best Eq. 16 throughput among the shard candidates and
   the merged tree becomes the {e hint} — a cheap, parallel estimate of
   what the full platform can achieve.

   {b Phase 3 — exact replay.}  The real [Heuristic.plan] driver runs
   with its builder swapped for a memo ({!Adept.Planner.run_with_probe}):
   the bisection trajectory is simulated ahead of time with the hint as
   a branch predictor (predict a target feasible iff it is at or below
   the hint), every predicted probe is submitted to the worker domains
   at once, and the driver then replays sequentially, awaiting memoized
   builds.  Predictions only choose which probes to {e precompute};
   actual build outcomes drive the replay, so a misprediction costs one
   inline build and wastes the speculated tail — never correctness.  The
   result is bit-identical to the sequential plan for any shard count,
   which the QCheck equivalence property pins. *)

open Adept_platform
open Adept_hierarchy
module Demand = Adept_model.Demand

type diag = {
  shards_used : int;
  hint : float;  (** best shard/merged candidate rho; 0 if none *)
  speculated : int;  (** probes precomputed from the predicted trajectory *)
  inline_probes : int;  (** replay probes the memo missed (mispredictions) *)
}

(* Renumber a node subset into a dense sub-platform (the same idiom as
   [Planner.replan]'s survivor platform); [retranslate] maps a planned
   tree back onto the original node ids. *)
let sub_platform ~link members =
  let mapping = Array.of_list members in
  let renumbered =
    List.mapi
      (fun i n ->
        Node.make ~id:i ~name:(Node.name n) ~power:(Node.power n)
          ~cluster:(Node.cluster n) ())
      members
  in
  (Platform.create ~link renumbered, mapping)

let rec retranslate mapping = function
  | Tree.Server n -> Tree.server mapping.(Node.id n)
  | Tree.Agent (n, children) ->
      Tree.agent mapping.(Node.id n) (List.map (retranslate mapping) children)

(* Phase 1+2: plan every shard in parallel, merge at the root, return
   the hint.  Shard 0 holds the globally strongest node (round-robin
   over the sorted order), so its candidate contributes the merged
   root. *)
let shard_hint ?prof pool ~shards params npool ~wapp ~demand =
  let sorted = Adept.Node_pool.nodes npool in
  let n = Array.length sorted in
  let k = max 1 (min shards (n / 2)) in
  if k < 2 then (k, 0.0)
  else begin
    let buckets = Array.make k [] in
    for i = n - 1 downto 0 do
      buckets.(i mod k) <- sorted.(i) :: buckets.(i mod k)
    done;
    let bandwidth = Adept.Node_pool.bandwidth npool in
    let link = Link.homogeneous ~bandwidth () in
    let futures =
      Array.mapi
        (fun shard members ->
          Domain_pool.submit pool (fun () ->
              Prof.time prof ~stage:"shard" ~shard (fun () ->
                  let sub, mapping = sub_platform ~link members in
                  match
                    Adept.Heuristic.plan params ~platform:sub ~wapp ~demand
                  with
                  | Ok r ->
                      Some
                        ( retranslate mapping r.Adept.Heuristic.tree,
                          r.Adept.Heuristic.predicted_rho )
                  | Error _ -> None)))
        buckets
    in
    let candidates =
      Array.to_list (Array.map Domain_pool.await futures) |> List.filter_map Fun.id
    in
    let best_shard_rho =
      List.fold_left (fun acc (_, rho) -> Float.max acc rho) 0.0 candidates
    in
    let merged_rho =
      match candidates with
      | [] | [ _ ] -> 0.0
      | (base, _) :: rest -> (
          match base with
          | Tree.Server _ -> 0.0
          | Tree.Agent (root, kids) -> (
              let merged =
                Tree.agent root (kids @ List.map (fun (t, _) -> t) rest)
              in
              match
                Adept.Evaluate.rho params ~bandwidth ~wapp merged
              with
              | rho -> rho
              | exception _ -> 0.0))
    in
    (k, Float.max best_shard_rho merged_rho)
  end

(* Phase 2.5: simulate the driver's bisection with the hint as branch
   predictor, collecting the targets it would probe.  Mirrors the float
   arithmetic of [Heuristic.plan] exactly — same midpoints, same gap
   test — so a correct prediction stream makes the memo hit on every
   replay probe. *)
let predicted_targets ~search_hi ~hint =
  if hint >= search_hi then [ search_hi ]
  else begin
    let acc = ref [ search_hi ] in
    let lo = ref 0.0 and high = ref search_hi in
    let iterations = 64 in
    for _ = 1 to iterations do
      if !high -. !lo > 1e-9 *. Float.max 1.0 search_hi then begin
        let mid = 0.5 *. (!lo +. !high) in
        acc := mid :: !acc;
        if mid <= hint then lo := mid else high := mid
      end
    done;
    List.rev !acc
  end

let plan ?(shards = 0) ?prof ~pool params ~platform ~wapp ~demand =
  let shards = if shards <= 0 then Domain_pool.size pool else shards in
  match Adept.Heuristic.pool_of params ~platform ~wapp with
  | None ->
      (* Heterogeneous connectivity: let the sequential driver produce
         its usual typed error. *)
      (Adept.Planner.run Adept.Planner.Heuristic params ~platform ~wapp ~demand,
       { shards_used = 1; hint = 0.0; speculated = 0; inline_probes = 0 })
  | Some npool when Adept.Node_pool.size npool < 2 ->
      (Adept.Planner.run Adept.Planner.Heuristic params ~platform ~wapp ~demand,
       { shards_used = 1; hint = 0.0; speculated = 0; inline_probes = 0 })
  | Some npool ->
      let shards_used, hint =
        shard_hint ?prof pool ~shards params npool ~wapp ~demand
      in
      let hi =
        Float.min
          (Adept.Node_pool.hi_sched npool)
          (Float.min
             (Adept.Node_pool.hi_service npool)
             (Adept.Node_pool.hi_predict npool))
      in
      let search_hi = Demand.min_target demand hi in
      let targets = predicted_targets ~search_hi ~hint in
      let memo = Hashtbl.create 128 in
      List.iter
        (fun target ->
          if not (Hashtbl.mem memo target) then
            Hashtbl.replace memo target
              (Domain_pool.submit pool (fun () ->
                   Adept.Heuristic.probe params npool ~target)))
        targets;
      let inline_probes = ref 0 in
      let probe ~target =
        match Hashtbl.find_opt memo target with
        | Some fut -> Domain_pool.await fut
        | None ->
            incr inline_probes;
            Adept.Heuristic.probe params npool ~target
      in
      let result =
        Prof.time prof ~stage:"replay" (fun () ->
            Adept.Planner.run_with_probe probe params ~platform ~wapp ~demand)
      in
      ( result,
        {
          shards_used;
          hint;
          speculated = Hashtbl.length memo;
          inline_probes = !inline_probes;
        } )
