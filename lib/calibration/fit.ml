module Stats = Adept_util.Stats
module Platform = Adept_platform.Platform

type wrep_fit = { wfix : float; wsel : float; correlation : float }

let fit_wrep ~power samples =
  if power <= 0.0 then Error "fit_wrep: power must be positive"
  else
    let degrees = List.sort_uniq Int.compare (List.map fst (Array.to_list samples)) in
    if List.length degrees < 2 then
      Error "fit_wrep: need samples at two or more distinct degrees"
    else
      let points =
        Array.map (fun (d, seconds) -> (float_of_int d, seconds)) samples
      in
      match Stats.linear_regression points with
      | exception Invalid_argument m -> Error m
      | { slope; intercept; r } ->
          Ok { wfix = intercept *. power; wsel = slope *. power; correlation = r }

let mean_seconds_to_mflop ~power samples =
  match samples with
  | [||] -> None
  | _ -> Some (Stats.mean samples *. power)

let star_reply_samples ~params ~platform ~degrees ~requests ~wapp =
  if requests <= 0 then invalid_arg "star_reply_samples: requests must be positive";
  let nodes = Platform.nodes platform in
  let needed = List.fold_left max 0 degrees + 1 in
  if List.length nodes < needed then
    invalid_arg
      (Printf.sprintf "star_reply_samples: need %d nodes, platform has %d" needed
         (List.length nodes));
  let samples = ref [] in
  List.iter
    (fun degree ->
      if degree < 1 then invalid_arg "star_reply_samples: degrees must be >= 1";
      let agent = List.hd nodes in
      let servers = List.filteri (fun i _ -> i >= 1 && i <= degree) nodes in
      let tree = Adept_hierarchy.Tree.star agent servers in
      let engine = Adept_sim.Engine.create () in
      let trace = Adept_sim.Trace.create () in
      let middleware =
        Adept_sim.Middleware.deploy ~trace ~engine ~params ~platform tree
      in
      (* Serial clients, as in the paper: each request issued only after
         the previous one fully completed. *)
      let rec serial remaining =
        if remaining > 0 then
          Adept_sim.Middleware.submit middleware ~wapp
            ~on_scheduled:(fun ~server ->
              Adept_sim.Middleware.request_service middleware ~server ~wapp
                ~on_done:(fun () -> serial (remaining - 1))
                ())
            ()
      in
      serial requests;
      ignore (Adept_sim.Engine.run engine);
      Array.iter
        (fun sample -> samples := sample :: !samples)
        (Adept_sim.Trace.reply_samples trace))
    degrees;
  Array.of_list (List.rev !samples)
