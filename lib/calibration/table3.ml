module Params = Adept_model.Params
module Trace = Adept_sim.Trace

type measured = {
  params : Params.t;
  wrep_correlation : float;
  requests_observed : int;
}

let ( let* ) = Result.bind

let require name = function
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "table3: no observation for %s" name)

let run ?(requests = 100) ?(fit_degrees = [ 1; 2; 3; 4; 5; 6; 7; 8 ]) ~reference
    ~node_power () =
  if requests <= 0 then Error "table3: requests must be positive"
  else begin
    let n = List.fold_left max 1 fit_degrees + 1 in
    let platform =
      Adept_platform.Generator.homogeneous ~bandwidth:100.0 ~cluster:"lyon" ~n
        ~power:node_power ()
    in
    (* The calibration workload: a small DGEMM, as in the paper. *)
    let wapp = Adept_workload.Dgemm.(mflops (make 100)) in
    (* Step 1: agent + one server, serial clients, full capture. *)
    let nodes = Adept_platform.Platform.nodes platform in
    let tree =
      Adept_hierarchy.Tree.star (List.hd nodes) [ List.nth nodes 1 ]
    in
    let engine = Adept_sim.Engine.create () in
    let trace = Trace.create () in
    let middleware =
      Adept_sim.Middleware.deploy ~trace ~engine ~params:reference ~platform tree
    in
    let rec serial remaining =
      if remaining > 0 then
        Adept_sim.Middleware.submit middleware ~wapp
          ~on_scheduled:(fun ~server ->
            Adept_sim.Middleware.request_service middleware ~server ~wapp
              ~on_done:(fun () -> serial (remaining - 1))
              ())
          ()
    in
    serial requests;
    ignore (Adept_sim.Engine.run engine);
    (* Step 2: message sizes from the capture. *)
    let* agent_sreq =
      require "agent Sreq" (Trace.mean_message_size trace Trace.Sched_request Trace.Agent_end)
    in
    let* agent_srep =
      require "agent Srep" (Trace.mean_message_size trace Trace.Sched_reply Trace.Agent_end)
    in
    let* server_sreq =
      require "server Sreq"
        (Trace.mean_message_size trace Trace.Sched_request Trace.Server_end)
    in
    let* server_srep =
      require "server Srep"
        (Trace.mean_message_size trace Trace.Sched_reply Trace.Server_end)
    in
    (* Step 3: processing times converted to MFlop with the node capacity. *)
    let* wreq =
      require "Wreq"
        (Fit.mean_seconds_to_mflop ~power:node_power
           (Trace.agent_request_computes trace))
    in
    let* wpre =
      require "Wpre"
        (Fit.mean_seconds_to_mflop ~power:node_power (Trace.server_predictions trace))
    in
    (* Step 4: the Wrep linear fit over star deployments of varying degree. *)
    let samples =
      Fit.star_reply_samples ~params:reference ~platform ~degrees:fit_degrees
        ~requests:(max 10 (requests / 10))
        ~wapp
    in
    let* fit = Fit.fit_wrep ~power:node_power samples in
    let measured_params =
      Params.make
        ~agent:
          {
            Params.wreq;
            wfix = fit.Fit.wfix;
            wsel = fit.Fit.wsel;
            sreq = agent_sreq;
            srep = agent_srep;
          }
        ~server:{ Params.wpre; sreq = server_sreq; srep = server_srep }
    in
    Ok
      {
        params = measured_params;
        wrep_correlation = fit.Fit.correlation;
        requests_observed = Array.length (Trace.agent_request_computes trace);
      }
  end

let to_table m = Params.to_table m.params

let relative_errors m ~reference =
  let open Params in
  let rel got want = if want = 0.0 then Float.abs got else Float.abs (got -. want) /. want in
  [
    ("agent.Wreq", rel m.params.agent.wreq reference.agent.wreq);
    ("agent.Wfix", rel m.params.agent.wfix reference.agent.wfix);
    ("agent.Wsel", rel m.params.agent.wsel reference.agent.wsel);
    ("agent.Sreq", rel m.params.agent.sreq reference.agent.sreq);
    ("agent.Srep", rel m.params.agent.srep reference.agent.srep);
    ("server.Wpre", rel m.params.server.wpre reference.server.wpre);
    ("server.Sreq", rel m.params.server.sreq reference.server.sreq);
    ("server.Srep", rel m.params.server.srep reference.server.srep);
  ]
