type t = {
  name : string;
  power : float;
  mutable free_at : float;
  mutable busy : float;
  mutable bookings : int;
  mutable last_request : float;
}

let create ~name ~power =
  if power <= 0.0 || not (Float.is_finite power) then
    invalid_arg "Resource.create: power must be positive and finite";
  { name; power; free_at = 0.0; busy = 0.0; bookings = 0; last_request = 0.0 }

let name t = t.name
let power t = t.power
let free_at t = t.free_at

let book t ~now ~duration =
  if duration < 0.0 || Float.is_nan duration then
    invalid_arg "Resource.book: negative or NaN duration";
  if now < t.last_request then
    invalid_arg
      (Printf.sprintf "Resource.book(%s): request at %g after one at %g" t.name now
         t.last_request);
  t.last_request <- now;
  let finish = Float.max now t.free_at +. duration in
  t.free_at <- finish;
  t.busy <- t.busy +. duration;
  t.bookings <- t.bookings + 1;
  finish

let charge t ~now ~duration = ignore (book t ~now ~duration)

let backlog t ~now = Float.max 0.0 (t.free_at -. now)

let interrupt t ~now =
  if Float.is_nan now then invalid_arg "Resource.interrupt: NaN time";
  (* Queued-but-unexecuted work vanishes with the process; already-counted
     busy seconds stay counted (the port really was occupied until now). *)
  if t.free_at > now then t.free_at <- now;
  if t.last_request < now then t.last_request <- now

let busy_seconds t = t.busy

let bookings t = t.bookings

let utilization t ~horizon =
  if horizon <= 0.0 then 0.0 else Float.min 1.0 (t.busy /. horizon)

let pp ppf t =
  Format.fprintf ppf "%s (%.0f MFlop/s, busy %.3fs, %d bookings)" t.name t.power t.busy
    t.bookings
