(** Continuous monitoring: periodic scraping and model-drift alerting.

    The planner promises a steady-state operating point — Eq. 16's
    [rho], backed by the per-element costs of Eqs. 1–5 — and the rest of
    the observability stack only checks it after the run.  The monitor
    watches the run {e unfold}: a simulated-time probe fires every
    [interval] seconds, refreshes the model gauges
    ([adept_model_predicted_rho] / [_rho_sched] / [_rho_service],
    [adept_alive_nodes]), scrapes the registry into a bounded
    {!Adept_obs.Timeseries} store and advances an {!Adept_obs.Alert}
    engine over it.

    {!model_rules} derives the built-in rule set from the model itself:
    - [model-drift] — windowed measured throughput vs the Eq. 16
      prediction for the {e currently deployed} tree, beyond a relative
      tolerance (critical; the controller cites it when it replans);
    - [cost-drift/node-N/<component>] — each element's measured compute
      mean (Eqs. 1–5 histograms) vs its {!Adept.Evaluate.element_costs}
      prediction;
    - [sched-headroom] — the relative distance between the two sides of
      [rho = min(rho_sched, rho_service)] (Eq. 16): fires when the
      margin shrinks below [headroom], i.e. the binding side is about to
      flip.

    Observation-only invariant: probes read simulator state and write
    only registry/time-series/alert state, never schedule work that
    mutates the simulation — attaching a monitor leaves the run
    bit-identical (regression-tested), and [interval = 0] disables
    probing entirely. *)

open Adept_platform
open Adept_hierarchy
module Params = Adept_model.Params

type t

(** What the model predicts for the hierarchy currently in charge,
    refreshed at every probe. *)
type signals = {
  predicted_rho : float;  (** Eq. 16 for the deployed tree. *)
  rho_sched : float option;  (** Scheduling side; [None] when the
                                 platform's links are heterogeneous. *)
  rho_service : float option;  (** Service side; ditto. *)
  alive : int;  (** Live deployed elements. *)
}

type provider = unit -> signals

val create :
  ?interval:float ->
  ?retention:float ->
  ?capacity:int ->
  ?tracer:Adept_obs.Tracer.t ->
  ?selectors:Adept_obs.Rule.selector list ->
  Adept_obs.Rule.t list ->
  (t, Adept.Error.t) result
(** [interval] defaults to 0.25 s; 0 disables the monitor (attach
    becomes a no-op).  [retention] defaults to twice the longest rule
    window plus ten intervals (and is an error when shorter than the
    longest rule window).  [selectors] add dashboard-only series beyond
    what the rules read; the model-gauge and run-counter selectors are
    always included.  Duplicate rule names are an error. *)

val interval : t -> float

val timeseries : t -> Adept_obs.Timeseries.t

val alerts : t -> Adept_obs.Alert.t

val scrapes : t -> int

val attach :
  t ->
  engine:Engine.t ->
  registry:Adept_obs.Registry.t ->
  ?provider:provider ->
  horizon:float ->
  unit ->
  unit
(** Arm the probe chain: ticks at [interval], [2*interval], ... up to
    [horizon].  Each tick sets the model gauges from [provider] (when
    given), bumps [adept_monitor_scrapes_total], scrapes the registry,
    and evaluates the alert rules.  No-op when [interval = 0]. *)

val signals_of :
  params:Params.t ->
  platform:Platform.t ->
  wapp:float ->
  tree:Tree.t ->
  middleware:Middleware.t ->
  ?controller:Controller.t ->
  unit ->
  signals
(** The standard provider body: predictions for the controller's
    current tree (falling back to [tree]/[middleware] without one),
    [rho_sched]/[rho_service] from {!Adept.Evaluate.bottleneck_element}
    when the platform is link-homogeneous, liveness from
    {!Middleware.alive_count}. *)

val model_rules :
  ?tolerance:float ->
  ?hold:float ->
  ?cost_tolerance:float ->
  ?headroom:float ->
  ?window:float ->
  params:Params.t ->
  wapp:float ->
  Tree.t ->
  Adept_obs.Rule.t list
(** The built-in rules for a deployment (defaults: drift [tolerance]
    0.25 held for [hold] 1 s, [cost_tolerance] 0.5, [headroom] 0.1,
    measurement [window] 2 s).  Cost-drift rules are derived from
    {!Adept.Evaluate.element_costs} of the {e initial} tree — a
    replanned tree keeps the original per-node expectations, which is
    exactly the drift one wants surfaced. *)

val default_selectors : Tree.t -> Adept_obs.Rule.selector list
(** Dashboard series worth scraping for any run: request counters,
    model gauges, liveness, and per-level agent in-flight gauges. *)

val default_panels : Tree.t -> window:float -> Adept_obs.Dashboard.panel list
(** The standard dashboard: measured-vs-predicted rho sparkline, the
    two Eq. 16 sides, per-level in-flight, losses and liveness. *)
