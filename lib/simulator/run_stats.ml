open Adept_platform
module Ring = Adept_obs.Ring
module Histogram = Adept_obs.Histogram

type t = {
  mutable issued : int;
  ring : Ring.t; (* completion time -> response time *)
  responses : Histogram.t;
  mutable completed : int;
  mutable lost : int;
  mutable response_sum : float;
  per_server : (Node.id, int) Hashtbl.t;
  mutable degraded_seconds : float;
  mutable migration_lost : int;
  mutable replans : int;
}

let create ?(retention = infinity) () =
  {
    issued = 0;
    ring = Ring.create ~retention ();
    responses = Histogram.create ();
    completed = 0;
    lost = 0;
    response_sum = 0.0;
    per_server = Hashtbl.create 64;
    degraded_seconds = 0.0;
    migration_lost = 0;
    replans = 0;
  }

let record_issue t ~time:_ = t.issued <- t.issued + 1

let record_lost t ~time:_ = t.lost <- t.lost + 1

let record_completion t ~issued_at ~time ~server =
  let response = time -. issued_at in
  Ring.push t.ring ~time response;
  Histogram.record t.responses response;
  t.response_sum <- t.response_sum +. response;
  t.completed <- t.completed + 1;
  Hashtbl.replace t.per_server server
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.per_server server))

let record_degraded t ~seconds =
  if seconds > 0.0 then t.degraded_seconds <- t.degraded_seconds +. seconds

let record_migration_lost t = t.migration_lost <- t.migration_lost + 1

let record_replan t = t.replans <- t.replans + 1

let issued t = t.issued
let completed t = t.completed
let lost t = t.lost
let degraded_seconds t = t.degraded_seconds
let migration_lost t = t.migration_lost
let replans t = t.replans

let completions_in t ~t0 ~t1 = Ring.count_in t.ring ~t0 ~t1

let throughput t ~t0 ~t1 =
  if t1 <= t0 then invalid_arg "Run_stats.throughput: empty window";
  float_of_int (completions_in t ~t0 ~t1) /. (t1 -. t0)

let per_server t =
  Hashtbl.fold (fun id count acc -> (id, count) :: acc) t.per_server []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let mean_response_time t =
  if t.completed = 0 then None else Some (t.response_sum /. float_of_int t.completed)

let response_percentile t p =
  Histogram.quantile (Histogram.snapshot t.responses) p

let response_snapshot t = Histogram.snapshot t.responses

let retained_completions t = Ring.length t.ring

let pp ppf t =
  Format.fprintf ppf "issued=%d completed=%d lost=%d servers=%d" t.issued t.completed
    t.lost
    (Hashtbl.length t.per_server)
