open Adept_platform

type t = {
  mutable issued : int;
  mutable completions : (float * float) list;  (* (completed_at, response_time), newest first *)
  mutable completed : int;
  mutable lost : int;
  per_server : (Node.id, int) Hashtbl.t;
  mutable degraded_seconds : float;
  mutable migration_lost : int;
  mutable replans : int;
}

let create () =
  {
    issued = 0;
    completions = [];
    completed = 0;
    lost = 0;
    per_server = Hashtbl.create 64;
    degraded_seconds = 0.0;
    migration_lost = 0;
    replans = 0;
  }

let record_issue t ~time:_ = t.issued <- t.issued + 1

let record_lost t ~time:_ = t.lost <- t.lost + 1

let record_completion t ~issued_at ~time ~server =
  t.completions <- (time, time -. issued_at) :: t.completions;
  t.completed <- t.completed + 1;
  Hashtbl.replace t.per_server server
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.per_server server))

let record_degraded t ~seconds =
  if seconds > 0.0 then t.degraded_seconds <- t.degraded_seconds +. seconds

let record_migration_lost t = t.migration_lost <- t.migration_lost + 1

let record_replan t = t.replans <- t.replans + 1

let issued t = t.issued
let completed t = t.completed
let lost t = t.lost
let degraded_seconds t = t.degraded_seconds
let migration_lost t = t.migration_lost
let replans t = t.replans

let completions_in t ~t0 ~t1 =
  List.fold_left
    (fun acc (time, _) -> if time >= t0 && time < t1 then acc + 1 else acc)
    0 t.completions

let throughput t ~t0 ~t1 =
  if t1 <= t0 then invalid_arg "Run_stats.throughput: empty window";
  float_of_int (completions_in t ~t0 ~t1) /. (t1 -. t0)

let per_server t =
  Hashtbl.fold (fun id count acc -> (id, count) :: acc) t.per_server []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let response_times t = Array.of_list (List.rev_map snd t.completions)

let mean_response_time t =
  match response_times t with
  | [||] -> None
  | times -> Some (Adept_util.Stats.mean times)

let response_percentile t p =
  match response_times t with
  | [||] -> None
  | times -> Some (Adept_util.Stats.percentile times p)

let pp ppf t =
  Format.fprintf ppf "issued=%d completed=%d lost=%d servers=%d" t.issued t.completed
    t.lost
    (Hashtbl.length t.per_server)
