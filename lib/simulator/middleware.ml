open Adept_platform
open Adept_hierarchy
module Params = Adept_model.Params
module Rt = Adept_obs.Request_trace

type selection =
  | Best_prediction
  | Round_robin
  | Random_child of Adept_util.Rng.t
  | Database

(* Per-request aggregation state at one agent: replies collected so far,
   in arrival order, plus the request's service cost for selection.
   [targets] is the routing list snapshot the request was forwarded to;
   failover may shrink the live children while replies are in flight. *)
type pending = {
  mutable received : int;
  expected : int;
  targets : Node.id array;
  mutable answered : Node.id list;
  mutable candidates : (Node.id * float) list;
  req_wapp : float;
}

type agent_state = {
  a_resource : Resource.t;
  mutable children : Node.id array;
  original_children : Node.id array;
  a_parent : Node.id option;
  mutable rr : int;
  inflight : (int, pending) Hashtbl.t;
  strikes : (Node.id, int) Hashtbl.t;
      (* consecutive unanswered forwards per child; two strikes prune *)
}

type server_state = {
  s_resource : Resource.t;
  s_parent : Node.id;
  mutable reserved : float;
      (* MFlop selected for this server but not yet booked.  The root
         maintains this ledger: it adds the chosen server's work at
         decision time and the entry drains when the client's service
         request reaches the server.  Decisions consult the ledger so that
         requests deciding within one scheduling round-trip of each other
         do not herd onto the same server from identical stale
         predictions. *)
}

type element = Agent_el of agent_state | Server_el of server_state

(* Pre-resolved observability instruments: one registry lookup per series
   at deploy time, O(1) array reads on the hot paths.  Per-node slots are
   [None] for nodes outside the hierarchy (or of the other role).  The
   registry get-or-create semantics make series survive generation swaps:
   a redeployed hierarchy accumulates into the same counters. *)
type obs_state = {
  o_msg : Adept_obs.Counter.t array;  (* kind * role, as in Trace *)
  o_msg_mbit : Adept_obs.Counter.t array;
  o_wreq : Adept_obs.Histogram.t option array;
  o_wrep : Adept_obs.Histogram.t option array;
  o_wpre : Adept_obs.Histogram.t option array;
  o_service : Adept_obs.Histogram.t option array;
  o_backlog : Adept_obs.Histogram.t option array;
  o_inflight : Adept_obs.Gauge.t option array;
}

type fault_stats = {
  crashes : int;
  recoveries : int;
  messages_lost : int;
  timeouts : int;
  abandoned : int;
  prunes : int;
  rejoins : int;
  recovery_latencies : float list;
}

(* Mutable accumulator behind the immutable {!fault_stats} snapshot. *)
type fault_counters = {
  mutable c_crashes : int;
  mutable c_recoveries : int;
  mutable c_messages_lost : int;
  mutable c_timeouts : int;
  mutable c_abandoned : int;
  mutable c_prunes : int;
  mutable c_rejoins : int;
  mutable c_recovery_latencies : float list;  (* newest first *)
}

type t = {
  engine : Engine.t;
  params : Params.t;
  platform : Platform.t;
  latency : float;
  elements : element option array;
  root : Node.id;
  trace : Trace.t;
  selection : selection;
  mutable next_req : int;
  continuations : (int, float * (Node.id -> unit)) Hashtbl.t;
      (* per request: the service cost to reserve and the client callback *)
  database : (Node.id, float * float) Hashtbl.t;
      (* monitoring database at the root: server id -> (reported backlog
         seconds, report arrival time) *)
  faults : Faults.t;
  active : bool;  (* some fault can fire; false => pre-fault code path *)
  mutable retired : bool;
      (* a superseded generation: still drains in-flight requests and
         tracks liveness, but stops recording topology events (its
         successor records them — once per event, not once per
         generation) *)
  alive : bool array;
  incarnation : int array;
      (* bumped on every crash and recovery: a callback booked for an
         earlier incarnation belongs to a dead process and is abandoned *)
  crashed_at : float array;
  loss_rng : Adept_util.Rng.t option;
  counters : fault_counters;
  obs : obs_state option;
  rtrace : Rt.t option;
}

(* The causal-chain position of a sampled request: its trace handle and
   the span id the next span links to.  [None] for unsampled requests
   (and everywhere when no store is attached) — every recording helper
   is a no-op then. *)
type rt_ctx = (Rt.handle * int) option

let prune_strikes = 2

(* An element that is alive when the prune lands was struck out unfairly:
   its recovery raced the strike window, or (for an agent) every child
   below it happened to be down at once.  A real element notices on its
   next heartbeat that the parent dropped it and re-registers; this is
   how long that takes.  Dead elements instead rejoin on recovery. *)
let re_register_delay = 0.5

let element t id =
  match t.elements.(id) with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Middleware: node %d not deployed" id)

let resource t id =
  match t.elements.(id) with
  | Some (Agent_el a) -> a.a_resource
  | Some (Server_el s) -> s.s_resource
  | None -> raise Not_found

let root t = t.root

let engine t = t.engine

let trace t = t.trace

let is_alive t id = t.alive.(id)

(* Deployed elements (agents + servers) currently alive. *)
let alive_count t =
  let n = ref 0 in
  Array.iteri
    (fun id el ->
      match el with Some _ when t.alive.(id) -> incr n | _ -> ())
    t.elements;
  !n

let retire t = t.retired <- true

(* The recording flag is the same bit [retire] sets: a provisional canary
   generation deploys muted (its crashes and prunes are already being
   witnessed by the generation still in charge) and is flipped to
   recording when it is promoted. *)
let set_recording t recording = t.retired <- not recording

let is_deployed t id = id >= 0 && id < Array.length t.elements && t.elements.(id) <> None

let fault_stats t =
  {
    crashes = t.counters.c_crashes;
    recoveries = t.counters.c_recoveries;
    messages_lost = t.counters.c_messages_lost;
    timeouts = t.counters.c_timeouts;
    abandoned = t.counters.c_abandoned;
    prunes = t.counters.c_prunes;
    rejoins = t.counters.c_rejoins;
    recovery_latencies = List.rev t.counters.c_recovery_latencies;
  }

(* Aggregate counters across hierarchy generations: a self-healing run
   retires middlewares and the per-run totals must cover all of them. *)
let merge_fault_stats a b =
  {
    crashes = a.crashes + b.crashes;
    recoveries = a.recoveries + b.recoveries;
    messages_lost = a.messages_lost + b.messages_lost;
    timeouts = a.timeouts + b.timeouts;
    abandoned = a.abandoned + b.abandoned;
    prunes = a.prunes + b.prunes;
    rejoins = a.rejoins + b.rejoins;
    recovery_latencies = a.recovery_latencies @ b.recovery_latencies;
  }

let server_ids t =
  let ids = ref [] in
  Array.iteri
    (fun id el -> match el with Some (Server_el _) -> ids := id :: !ids | _ -> ())
    t.elements;
  List.rev !ids

let agent_ids t =
  let ids = ref [] in
  Array.iteri
    (fun id el -> match el with Some (Agent_el _) -> ids := id :: !ids | _ -> ())
    t.elements;
  List.rev !ids

let record_failure t failure =
  Trace.record_failure t.trace ~time:(Engine.now t.engine) failure

(* ---------- observability plumbing ---------- *)

let all_kinds =
  [| Trace.Sched_request; Trace.Sched_reply; Trace.Service_request; Trace.Service_reply |]

let all_roles = [| Trace.Agent_end; Trace.Server_end; Trace.Client_end |]

let kind_index = function
  | Trace.Sched_request -> 0
  | Trace.Sched_reply -> 1
  | Trace.Service_request -> 2
  | Trace.Service_reply -> 3

let role_index = function
  | Trace.Agent_end -> 0
  | Trace.Server_end -> 1
  | Trace.Client_end -> 2

let obs_cell ~kind ~role = (kind_index kind * 3) + role_index role

let make_obs_state registry ~elements ~tree =
  let module Obs = Adept_obs in
  let n = Array.length elements in
  let levels = Array.make n 0 in
  let rec depths d = function
    | Tree.Server node -> levels.(Node.id node) <- d
    | Tree.Agent (node, children) ->
        levels.(Node.id node) <- d;
        List.iter (depths (d + 1)) children
  in
  depths 0 tree;
  let message_counter name cell =
    let kind = all_kinds.(cell / 3) and role = all_roles.(cell mod 3) in
    Obs.Registry.counter registry
      ~labels:
        (Obs.Label.v
           [
             (Obs.Semconv.l_kind, Trace.kind_name kind);
             (Obs.Semconv.l_role, Trace.role_name role);
           ])
      name
  in
  let node_labels id =
    Obs.Label.v [ Obs.Semconv.node_label id; Obs.Semconv.level_label levels.(id) ]
  in
  let per_node ~agent name =
    Array.init n (fun id ->
        match elements.(id) with
        | Some (Agent_el _) when agent ->
            Some (Obs.Registry.histogram registry ~labels:(node_labels id) name)
        | Some (Server_el _) when not agent ->
            Some (Obs.Registry.histogram registry ~labels:(node_labels id) name)
        | Some _ | None -> None)
  in
  {
    o_msg = Array.init 12 (message_counter Obs.Semconv.messages_total);
    o_msg_mbit = Array.init 12 (message_counter Obs.Semconv.message_mbit_total);
    o_wreq = per_node ~agent:true Obs.Semconv.agent_request_compute_seconds;
    o_wrep = per_node ~agent:true Obs.Semconv.agent_reply_compute_seconds;
    o_wpre = per_node ~agent:false Obs.Semconv.server_prediction_seconds;
    o_service = per_node ~agent:false Obs.Semconv.server_service_seconds;
    o_backlog = per_node ~agent:false Obs.Semconv.server_backlog_seconds;
    o_inflight =
      Array.init n (fun id ->
          match elements.(id) with
          | Some (Agent_el _) ->
              Some
                (Obs.Registry.gauge registry ~labels:(node_labels id)
                   Obs.Semconv.agent_inflight_requests)
          | Some (Server_el _) | None -> None);
  }

let record_msg t ~kind ~role ~size =
  Trace.record_message t.trace ~kind ~role ~size;
  match t.obs with
  | Some o ->
      let cell = obs_cell ~kind ~role in
      Adept_obs.Counter.inc o.o_msg.(cell);
      Adept_obs.Counter.inc ~by:size o.o_msg_mbit.(cell)
  | None -> ()

let record_node_hist t sel ~node v =
  match t.obs with
  | Some o -> (
      match (sel o).(node) with
      | Some h -> Adept_obs.Histogram.record h v
      | None -> ())
  | None -> ()

let inflight_add t ~node delta =
  match t.obs with
  | Some o -> (
      match o.o_inflight.(node) with
      | Some g -> Adept_obs.Gauge.add g delta
      | None -> ())
  | None -> ()

let message_lost t =
  t.counters.c_messages_lost <- t.counters.c_messages_lost + 1;
  record_failure t Trace.Message_lost

(* One independent draw per message from the dedicated loss stream; never
   consulted (and never seeded) on fault-free runs. *)
let message_dropped t =
  match t.loss_rng with
  | None -> false
  | Some rng -> Adept_util.Rng.float rng 1.0 < t.faults.Faults.drop_probability

let effective_bandwidth t base =
  if t.active then base *. Faults.bandwidth_factor t.faults ~now:(Engine.now t.engine)
  else base

(* ---------- crash / recovery / failover machinery ---------- *)

let reset_strikes (a : agent_state) child = Hashtbl.remove a.strikes child

let rejoin_child t ~agent ~child =
  match t.elements.(agent) with
  | Some (Agent_el a) ->
      if not (Array.exists (fun c -> c = child) a.children) then begin
        a.children <- Array.append a.children [| child |];
        reset_strikes a child;
        if not t.retired then begin
          t.counters.c_rejoins <- t.counters.c_rejoins + 1;
          record_failure t (Trace.Child_rejoined (agent, child))
        end
      end
  | Some (Server_el _) | None -> ()

(* A silent child earns a strike; [prune_strikes] consecutive strikes
   remove it from the routing tree (the parent-side failover).  A reply
   clears the child's strikes, so transient message loss rarely prunes a
   healthy child. *)
let strike_child t ~agent ~child =
  match t.elements.(agent) with
  | Some (Agent_el a) when Array.exists (fun c -> c = child) a.children ->
      let s = 1 + Option.value ~default:0 (Hashtbl.find_opt a.strikes child) in
      Hashtbl.replace a.strikes child s;
      if s >= prune_strikes then begin
        a.children <-
          Array.of_list (List.filter (fun c -> c <> child) (Array.to_list a.children));
        Hashtbl.remove a.strikes child;
        if not t.retired then begin
          t.counters.c_prunes <- t.counters.c_prunes + 1;
          record_failure t (Trace.Child_pruned (agent, child));
          if not t.alive.(child) then begin
            let latency = Engine.now t.engine -. t.crashed_at.(child) in
            t.counters.c_recovery_latencies <-
              latency :: t.counters.c_recovery_latencies;
            Trace.record_recovery_latency t.trace ~seconds:latency
          end
        end;
        if t.alive.(child) then begin
          let inc = t.incarnation.(child) in
          Engine.schedule t.engine ~delay:re_register_delay (fun () ->
              if t.alive.(child) && t.incarnation.(child) = inc then
                rejoin_child t ~agent ~child)
        end
      end
  | Some _ | None -> ()

let crash_node t id =
  if t.alive.(id) then begin
    let now = Engine.now t.engine in
    t.alive.(id) <- false;
    t.incarnation.(id) <- t.incarnation.(id) + 1;
    t.crashed_at.(id) <- now;
    (match t.elements.(id) with
    | Some (Agent_el a) ->
        Resource.interrupt a.a_resource ~now;
        inflight_add t ~node:id (-.float_of_int (Hashtbl.length a.inflight));
        Hashtbl.reset a.inflight
    | Some (Server_el s) ->
        Resource.interrupt s.s_resource ~now;
        s.reserved <- 0.0
    | None -> ());
    if not t.retired then begin
      t.counters.c_crashes <- t.counters.c_crashes + 1;
      record_failure t (Trace.Node_crash id)
    end
  end

let recover_node t id =
  if not t.alive.(id) then begin
    let now = Engine.now t.engine in
    t.alive.(id) <- true;
    t.incarnation.(id) <- t.incarnation.(id) + 1;
    (match t.elements.(id) with
    | Some (Agent_el a) -> Resource.interrupt a.a_resource ~now
    | Some (Server_el s) -> Resource.interrupt s.s_resource ~now
    | None -> ());
    if not t.retired then begin
      t.counters.c_recoveries <- t.counters.c_recoveries + 1;
      record_failure t (Trace.Node_recover id)
    end;
    (* Re-registration: the recovered element reconnects to its parent,
       and a recovered agent readopts whichever of its original children
       are up (they may have been pruned while it was away). *)
    let parent =
      match t.elements.(id) with
      | Some (Agent_el a) -> a.a_parent
      | Some (Server_el s) -> Some s.s_parent
      | None -> None
    in
    (match parent with
    | Some p when t.alive.(p) -> rejoin_child t ~agent:p ~child:id
    | Some _ | None -> ());
    match t.elements.(id) with
    | Some (Agent_el a) ->
        Array.iter
          (fun c -> if t.alive.(c) then rejoin_child t ~agent:id ~child:c)
          a.original_children
    | Some (Server_el _) | None -> ()
  end

let crash_time t id = t.crashed_at.(id)

let deploy ?(trace = Trace.disabled) ?obs ?rtrace ?(selection = Best_prediction)
    ?monitoring_period ?(faults = Faults.none) ?(initial_dead = []) ~engine ~params
    ~platform tree =
  (match monitoring_period with
  | Some p when p <= 0.0 || not (Float.is_finite p) ->
      invalid_arg "Middleware.deploy: monitoring_period must be positive and finite"
  | Some _ | None -> ());
  if selection = Database && monitoring_period = None then
    invalid_arg "Middleware.deploy: Database selection requires a monitoring_period";
  (match Validate.check ~platform tree with
  | Ok () -> ()
  | Error errs ->
      invalid_arg
        ("Middleware.deploy: invalid hierarchy: "
        ^ String.concat "; " (List.map Validate.error_to_string errs)));
  let elements = Array.make (Platform.size platform) None in
  let mk_resource node =
    Resource.create ~name:(Node.name node) ~power:(Node.power node)
  in
  let rec instantiate parent = function
    | Tree.Server node ->
        let parent =
          match parent with
          | Some p -> p
          | None -> invalid_arg "Middleware.deploy: root server"
        in
        elements.(Node.id node) <-
          Some
            (Server_el
               { s_resource = mk_resource node; s_parent = parent; reserved = 0.0 })
    | Tree.Agent (node, children) ->
        let child_ids =
          Array.of_list (List.map (fun c -> Node.id (Tree.root_node c)) children)
        in
        elements.(Node.id node) <-
          Some
            (Agent_el
               {
                 a_resource = mk_resource node;
                 children = child_ids;
                 original_children = Array.copy child_ids;
                 a_parent = parent;
                 rr = 0;
                 inflight = Hashtbl.create 64;
                 strikes = Hashtbl.create 8;
               });
        List.iter (instantiate (Some (Node.id node))) children
  in
  instantiate None tree;
  let active = not (Faults.is_none faults) in
  let t =
    {
      engine;
      params;
      platform;
      latency = Link.latency (Platform.link platform);
      elements;
      root = Node.id (Tree.root_node tree);
      trace;
      selection;
      next_req = 0;
      continuations = Hashtbl.create 64;
      database = Hashtbl.create 64;
      faults;
      active;
      retired = false;
      alive = Array.make (Platform.size platform) true;
      incarnation = Array.make (Platform.size platform) 0;
      crashed_at = Array.make (Platform.size platform) 0.0;
      loss_rng =
        (if active && faults.Faults.drop_probability > 0.0 then
           Some (Adept_util.Rng.create faults.Faults.loss_seed)
         else None);
      counters =
        {
          c_crashes = 0;
          c_recoveries = 0;
          c_messages_lost = 0;
          c_timeouts = 0;
          c_abandoned = 0;
          c_prunes = 0;
          c_rejoins = 0;
          c_recovery_latencies = [];
        };
      obs = Option.map (fun registry -> make_obs_state registry ~elements ~tree) obs;
      rtrace;
    }
  in
  (* Liveness inherited from a superseded generation: a node kept in the
     hierarchy despite being down right now starts dead, with its original
     crash time, so failover strikes it out and its pending recovery event
     genuinely revives it.  The crash itself is not re-counted — the
     generation that witnessed it already did. *)
  (if initial_dead <> [] && not active then
     invalid_arg "Middleware.deploy: initial_dead requires fault injection");
  List.iter
    (fun (id, crashed_at) ->
      if id >= 0 && id < Array.length elements && elements.(id) <> None then begin
        t.alive.(id) <- false;
        t.crashed_at.(id) <- crashed_at
      end)
    initial_dead;
  (* Periodic monitoring: every server reports its backlog to the root's
     database, paying the message at both ends (lane at the server, port
     at the root — monitoring traffic really does contend with
     scheduling). *)
  (match monitoring_period with
  | None -> ()
  | Some period ->
      let root_res =
        match elements.(t.root) with
        | Some (Agent_el a) -> a.a_resource
        | Some (Server_el _) | None -> invalid_arg "Middleware.deploy: no root agent"
      in
      Array.iteri
        (fun id el ->
          match el with
          | Some (Server_el s) ->
              let rec report () =
                (if (not t.active) || (t.alive.(id) && t.alive.(t.root)) then
                   let backlog =
                     Resource.backlog s.s_resource ~now:(Engine.now engine)
                   in
                   Network.transfer engine
                     ~bandwidth:
                       (effective_bandwidth t (Platform.bandwidth platform id t.root))
                     ~latency:t.latency ~src:(Network.Lane s.s_resource)
                     ~src_size:params.Params.server.srep ~dst:(Network.Port root_res)
                     ~dst_size:params.Params.agent.srep
                     ~on_delivered:(fun () ->
                       Hashtbl.replace t.database id (backlog, Engine.now engine))
                     ());
                Engine.schedule engine ~delay:period report
              in
              (* desynchronise first reports across servers *)
              Engine.schedule engine
                ~delay:(period *. float_of_int (id + 1) /. float_of_int (Array.length elements))
                report
          | Some (Agent_el _) | None -> ())
        elements);
  (* Install the fault schedule.  Events aimed at nodes outside the
     hierarchy are ignored (the platform may be larger than the tree), and
     so are events already in the past — a hierarchy deployed mid-run by
     the controller only sees what is still to come. *)
  (if active then
     let now = Engine.now engine in
     List.iter
       (fun { Faults.node; at; kind } ->
         if
           at >= now && node >= 0
           && node < Array.length elements
           && elements.(node) <> None
         then
           Engine.schedule_at engine ~time:at (fun () ->
               match kind with
               | Faults.Crash -> crash_node t node
               | Faults.Recover -> recover_node t node))
       faults.Faults.node_events);
  t

let bandwidth_between t a b = effective_bandwidth t (Platform.bandwidth t.platform a b)

(* Bandwidth for messages between a platform node and a client machine:
   the node's intra-cluster bandwidth (clients are not modelled as
   bottlenecks, only the node-side port cost matters). *)
let bandwidth_to_client t id = effective_bandwidth t (Platform.bandwidth t.platform id id)

(* Compute booked for [owner]'s current incarnation; a crash (or a crash
   plus recovery) before the booking completes voids the continuation —
   the process that asked for the work no longer exists. *)
let book_compute t resource ~owner ~work k =
  let now = Engine.now t.engine in
  let duration = work /. Resource.power resource in
  let finish = Resource.book resource ~now ~duration in
  let incarnation = t.incarnation.(owner) in
  Engine.schedule_at t.engine ~time:finish (fun () ->
      if (not t.active) || t.incarnation.(owner) = incarnation then k duration)

(* ---------- request tracing ---------- *)

(* A computation on a sampled request's causal chain: the span runs from
   when the element could start ([start], the triggering delivery) to
   now (the booked finish), so queue wait behind earlier work is
   included and consecutive spans tile exactly. *)
let record_compute t ~(rt : rt_ctx) ~step ~node ~start : rt_ctx =
  match (t.rtrace, rt) with
  | Some store, Some (h, parent) ->
      let id =
        Rt.add_span store h ~parent ~kind:(Rt.Compute step) ~node ~start
          ~stop:(Engine.now t.engine)
      in
      Some (h, id)
  | _ -> rt

(* A traced message: its three legs — sender port time (queue wait
   included), wire latency, receiver port time — are recorded on the
   chain and [on_delivered] receives the chain advanced past the receive
   leg.  Tracing only attaches an observation callback to the transfer,
   so the scheduled events are identical to an untraced run. *)
let transfer_traced t ~(rt : rt_ctx) ~msg ~src_node ~dst_node ~bandwidth ~src
    ~src_size ~dst ~dst_size ~on_delivered =
  match (t.rtrace, rt) with
  | Some store, Some (h, parent) ->
      let handoff = Engine.now t.engine in
      let times = ref None in
      Network.transfer t.engine ~bandwidth ~latency:t.latency
        ~on_times:(fun ~sent_at ~arrival -> times := Some (sent_at, arrival))
        ~src ~src_size ~dst ~dst_size
        ~on_delivered:(fun () ->
          let rt =
            match !times with
            | None -> rt
            | Some (sent_at, arrival) ->
                let s =
                  Rt.add_span store h ~parent ~kind:(Rt.Send msg) ~node:src_node
                    ~start:handoff ~stop:sent_at
                in
                let w =
                  Rt.add_span store h ~parent:s ~kind:(Rt.Wire msg) ~node:(-1)
                    ~start:sent_at ~stop:arrival
                in
                let r =
                  Rt.add_span store h ~parent:w ~kind:(Rt.Recv msg) ~node:dst_node
                    ~start:arrival ~stop:(Engine.now t.engine)
                in
                Some (h, r)
          in
          on_delivered rt)
        ()
  | _ ->
      Network.transfer t.engine ~bandwidth ~latency:t.latency ~src ~src_size ~dst
        ~dst_size
        ~on_delivered:(fun () -> on_delivered None)
        ()

let argmin_candidate candidates ~effective =
  (* One fold carrying the winner's raw prediction along, so reporting it
     upward needs no second lookup over the candidate list. *)
  match
    Array.fold_left
      (fun best (id, raw) ->
        let adjusted = effective id in
        match best with
        | Some (bid, _, bp) when bp < adjusted || (bp = adjusted && bid <= id) ->
            best
        | Some _ | None -> Some (id, raw, adjusted))
      None candidates
  with
  | Some (id, raw, _) -> (id, raw)
  | None -> invalid_arg "Middleware.argmin_candidate: no candidates"

let choose_candidate t (a : agent_state) pending =
  let candidates = Array.of_list (List.rev pending.candidates) in
  match t.selection with
  | Best_prediction ->
      (* The paper's agents "select potential servers from a list of
         servers maintained in the database by frequent monitoring"
         (footnote 1): the decision reads the current load picture —
         booked backlog plus the reservation ledger of work promised by
         decisions whose service requests are still in flight — rather
         than the prediction snapshots the replies carried, which go stale
         within one scheduling round-trip and would herd concurrent
         requests onto one server. *)
      let now = Engine.now t.engine in
      let effective id =
        match t.elements.(id) with
        | Some (Server_el s) when t.alive.(id) ->
            let w = Resource.power s.s_resource in
            Resource.backlog s.s_resource ~now
            +. (s.reserved /. w)
            +. (pending.req_wapp /. w)
        | Some _ | None -> Float.infinity
      in
      argmin_candidate candidates ~effective
  | Database ->
      (* Same decision, but from the last periodic report instead of
         fresh state: the reported backlog is decayed by the time since
         the report (the server has been draining meanwhile) and
         corrected by the reservation ledger. *)
      let now = Engine.now t.engine in
      let effective id =
        match t.elements.(id) with
        | Some (Server_el s) when t.alive.(id) ->
            let w = Resource.power s.s_resource in
            let reported =
              match Hashtbl.find_opt t.database id with
              | Some (backlog, at) -> Float.max 0.0 (backlog -. (now -. at))
              | None -> 0.0
            in
            reported +. (s.reserved /. w) +. (pending.req_wapp /. w)
        | Some _ | None -> Float.infinity
      in
      argmin_candidate candidates ~effective
  | Round_robin ->
      let i = a.rr mod Array.length candidates in
      a.rr <- a.rr + 1;
      candidates.(i)
  | Random_child rng -> Adept_util.Rng.pick rng candidates

(* The scheduling phase, message by message.  [handle_request] runs when a
   request has been fully received at [id]; [handle_reply] when a child's
   reply has been fully received at agent [id]. *)
let rec handle_request t ~rt ~req_id ~wapp id =
  match element t id with
  | Agent_el a ->
      let arrived = Engine.now t.engine in
      book_compute t a.a_resource ~owner:id ~work:t.params.Params.agent.wreq
        (fun seconds ->
          Trace.record_agent_request_compute t.trace ~seconds;
          record_node_hist t (fun o -> o.o_wreq) ~node:id seconds;
          let rt = record_compute t ~rt ~step:Rt.Wreq ~node:id ~start:arrived in
          let targets = Array.copy a.children in
          if Array.length targets = 0 then
            (* every child pruned: stay silent and let the upstream
               patience (or the client's timeout) handle the hole *)
            ()
          else begin
            Hashtbl.replace a.inflight req_id
              {
                received = 0;
                expected = Array.length targets;
                targets;
                answered = [];
                candidates = [];
                req_wapp = wapp;
              };
            inflight_add t ~node:id 1.0;
            Array.iter
              (fun child -> forward_down t ~rt ~req_id ~wapp ~from:id ~child)
              targets;
            if t.active then
              Engine.schedule t.engine ~delay:t.faults.Faults.patience (fun () ->
                  patience_expired t ~req_id ~agent:id)
          end)
  | Server_el s ->
      (* Prediction work charges the port (it steals cycles from any
         running application) but the reply is not queued behind booked
         services: the servant thread answers after Wpre/w of wall time.
         The prediction itself is "when would your job finish if you chose
         me now": current queue, the prediction step, then the service. *)
      let now = Engine.now t.engine in
      let backlog = Resource.backlog s.s_resource ~now in
      let wpre_duration =
        t.params.Params.server.wpre /. Resource.power s.s_resource
      in
      Resource.charge s.s_resource ~now ~duration:wpre_duration;
      Trace.record_server_prediction t.trace ~seconds:wpre_duration;
      record_node_hist t (fun o -> o.o_wpre) ~node:id wpre_duration;
      record_node_hist t (fun o -> o.o_backlog) ~node:id backlog;
      let prediction =
        backlog +. wpre_duration +. (wapp /. Resource.power s.s_resource)
      in
      let incarnation = t.incarnation.(id) in
      Engine.schedule t.engine ~delay:wpre_duration (fun () ->
          if (not t.active) || t.incarnation.(id) = incarnation then begin
            let rt = record_compute t ~rt ~step:Rt.Wpre ~node:id ~start:now in
            send_reply_up t ~rt ~req_id ~from:id ~to_:s.s_parent
              ~candidate:(id, prediction)
          end)

and forward_down t ~rt ~req_id ~wapp ~from ~child =
  let src_res = resource t from in
  let dst_is_agent, dst =
    match element t child with
    | Agent_el a -> (true, Network.Port a.a_resource)
    | Server_el s -> (false, Network.Lane s.s_resource)
  in
  let src_size = t.params.Params.agent.sreq in
  let dst_size =
    if dst_is_agent then t.params.Params.agent.sreq else t.params.Params.server.sreq
  in
  record_msg t ~kind:Trace.Sched_request ~role:Trace.Agent_end
    ~size:src_size;
  if message_dropped t then begin
    (* the sender still pays its port time; nothing arrives *)
    message_lost t;
    Network.transfer t.engine
      ~bandwidth:(bandwidth_between t from child)
      ~latency:t.latency ~src:(Network.Port src_res) ~src_size ~dst:Network.Instant
      ~dst_size:0.0
      ~on_delivered:(fun () -> ())
      ()
  end
  else begin
    record_msg t ~kind:Trace.Sched_request
      ~role:(if dst_is_agent then Trace.Agent_end else Trace.Server_end)
      ~size:dst_size;
    transfer_traced t ~rt ~msg:Rt.Forward ~src_node:from ~dst_node:child
      ~bandwidth:(bandwidth_between t from child)
      ~src:(Network.Port src_res) ~src_size ~dst ~dst_size
      ~on_delivered:(fun rt ->
        if t.active && not t.alive.(child) then message_lost t
        else handle_request t ~rt ~req_id ~wapp child)
  end

and send_reply_up t ~rt ~req_id ~from ~to_ ~candidate =
  let src_is_agent, src =
    match element t from with
    | Agent_el a -> (true, Network.Port a.a_resource)
    | Server_el s -> (false, Network.Lane s.s_resource)
  in
  let src_size =
    if src_is_agent then t.params.Params.agent.srep else t.params.Params.server.srep
  in
  let dst_res =
    match element t to_ with
    | Agent_el a -> a.a_resource
    | Server_el _ -> invalid_arg "Middleware: reply sent to a server"
  in
  let dst_size = t.params.Params.agent.srep in
  record_msg t ~kind:Trace.Sched_reply
    ~role:(if src_is_agent then Trace.Agent_end else Trace.Server_end)
    ~size:src_size;
  if message_dropped t then begin
    message_lost t;
    Network.transfer t.engine
      ~bandwidth:(bandwidth_between t from to_)
      ~latency:t.latency ~src ~src_size ~dst:Network.Instant ~dst_size:0.0
      ~on_delivered:(fun () -> ())
      ()
  end
  else begin
    record_msg t ~kind:Trace.Sched_reply ~role:Trace.Agent_end
      ~size:dst_size;
    transfer_traced t ~rt ~msg:Rt.Reply ~src_node:from ~dst_node:to_
      ~bandwidth:(bandwidth_between t from to_)
      ~src ~src_size ~dst:(Network.Port dst_res) ~dst_size
      ~on_delivered:(fun rt ->
        if t.active && not t.alive.(to_) then message_lost t
        else handle_reply t ~rt ~req_id ~agent:to_ ~child:from ~candidate)
  end

and handle_reply t ~rt ~req_id ~agent ~child ~candidate =
  match element t agent with
  | Server_el _ -> invalid_arg "Middleware: reply delivered to a server"
  | Agent_el a -> (
      match Hashtbl.find_opt a.inflight req_id with
      | None ->
          (* Fault runs produce stale replies: the request was finalised
             by the patience timer, or the agent crashed and restarted. *)
          if not t.active then invalid_arg "Middleware: reply for unknown request"
      | Some pending ->
          pending.received <- pending.received + 1;
          pending.answered <- child :: pending.answered;
          if t.active then reset_strikes a child;
          pending.candidates <- candidate :: pending.candidates;
          if pending.received = pending.expected then begin
            Hashtbl.remove a.inflight req_id;
            inflight_add t ~node:agent (-1.0);
            (* The chain continues from the reply that completed the set:
               the last-arriving child is the aggregation's causal
               trigger, so the [Wrep] span links to its receive leg. *)
            finalize_request t ~rt ~req_id ~agent a pending
          end)

and patience_expired t ~req_id ~agent =
  match t.elements.(agent) with
  | Some (Agent_el a) when t.alive.(agent) -> (
      match Hashtbl.find_opt a.inflight req_id with
      | None -> ()  (* all replies arrived in time *)
      | Some pending ->
          Hashtbl.remove a.inflight req_id;
          inflight_add t ~node:agent (-1.0);
          Array.iter
            (fun child ->
              if not (List.mem child pending.answered) then
                strike_child t ~agent ~child)
            pending.targets;
          (* answer with whatever arrived; with no candidate at all the
             agent stays silent and the caller's own timeout handles it.
             No causal reply triggered this, so the trace chain breaks
             here (fault runs only — critical paths are exact fault-free). *)
          if pending.candidates <> [] then
            finalize_request t ~rt:None ~req_id ~agent a pending)
  | Some _ | None -> ()

and finalize_request t ~rt ~req_id ~agent a pending =
  let triggered = Engine.now t.engine in
  let degree = pending.received in
  let work = Params.wrep t.params ~degree in
  book_compute t a.a_resource ~owner:agent ~work (fun seconds ->
      Trace.record_agent_reply_compute t.trace ~degree ~seconds;
      record_node_hist t (fun o -> o.o_wrep) ~node:agent seconds;
      let rt = record_compute t ~rt ~step:Rt.Wrep ~node:agent ~start:triggered in
      let chosen = choose_candidate t a pending in
      match a.a_parent with
      | Some parent ->
          send_reply_up t ~rt ~req_id ~from:agent ~to_:parent ~candidate:chosen
      | None -> (
          (* Root: answer the client. *)
          match Hashtbl.find_opt t.continuations req_id with
          | None ->
              (* the client gave up on this round trip and re-submitted *)
              if not t.active then
                invalid_arg "Middleware: request has no continuation"
          | Some (req_wapp, continuation) ->
              let src_size = t.params.Params.agent.srep in
              record_msg t ~kind:Trace.Sched_reply
                ~role:Trace.Agent_end ~size:src_size;
              Hashtbl.remove t.continuations req_id;
              (match element t (fst chosen) with
              | Server_el s -> s.reserved <- s.reserved +. req_wapp
              | Agent_el _ -> invalid_arg "Middleware: chose an agent");
              transfer_traced t ~rt ~msg:Rt.Answer ~src_node:agent ~dst_node:(-1)
                ~bandwidth:(bandwidth_to_client t agent)
                ~src:(Network.Port a.a_resource) ~src_size ~dst:Network.Instant
                ~dst_size:0.0
                ~on_delivered:(fun rt ->
                  (* Park the chain position on the handle: the service
                     phase is initiated by the client (a separate call)
                     and resumes the chain from here. *)
                  (match rt with
                  | Some (h, tl) -> Rt.set_tail h tl
                  | None -> ());
                  continuation (fst chosen))))

let submit_once t ~rt ~req_id ~wapp =
  let dst_size = t.params.Params.agent.sreq in
  let root_res = resource t t.root in
  record_msg t ~kind:Trace.Sched_request ~role:Trace.Agent_end
    ~size:dst_size;
  if message_dropped t then begin
    message_lost t;
    Network.transfer t.engine
      ~bandwidth:(bandwidth_to_client t t.root)
      ~latency:t.latency ~src:Network.Instant ~src_size:0.0 ~dst:Network.Instant
      ~dst_size:0.0
      ~on_delivered:(fun () -> ())
      ()
  end
  else
    transfer_traced t ~rt ~msg:Rt.Submit ~src_node:(-1) ~dst_node:t.root
      ~bandwidth:(bandwidth_to_client t t.root)
      ~src:Network.Instant ~src_size:0.0 ~dst:(Network.Port root_res) ~dst_size
      ~on_delivered:(fun rt ->
        if t.active && not t.alive.(t.root) then message_lost t
        else handle_request t ~rt ~req_id ~wapp t.root)

let submit t ~wapp ?rt ?on_failed ~on_scheduled () =
  (* Each (re-)submission opens a fresh chain head (parent -1). *)
  let rt : rt_ctx = Option.map (fun h -> (h, -1)) rt in
  if not t.active then begin
    let req_id = t.next_req in
    t.next_req <- t.next_req + 1;
    Hashtbl.replace t.continuations req_id (wapp, fun server -> on_scheduled ~server);
    submit_once t ~rt ~req_id ~wapp
  end
  else begin
    (* Round-trip supervision: if the scheduling reply does not arrive
       within the timeout, abandon that round trip and re-submit with an
       exponentially backed-off deadline; after [max_retries] extra
       attempts the request is abandoned. *)
    let rec attempt ~retries_left ~timeout =
      let req_id = t.next_req in
      t.next_req <- t.next_req + 1;
      Hashtbl.replace t.continuations req_id (wapp, fun server -> on_scheduled ~server);
      submit_once t ~rt ~req_id ~wapp;
      Engine.schedule t.engine ~delay:timeout (fun () ->
          if Hashtbl.mem t.continuations req_id then begin
            Hashtbl.remove t.continuations req_id;
            if retries_left > 0 then begin
              t.counters.c_timeouts <- t.counters.c_timeouts + 1;
              record_failure t Trace.Request_timeout;
              attempt ~retries_left:(retries_left - 1)
                ~timeout:(timeout *. t.faults.Faults.backoff)
            end
            else begin
              t.counters.c_abandoned <- t.counters.c_abandoned + 1;
              record_failure t Trace.Request_abandoned;
              match on_failed with Some f -> f () | None -> ()
            end
          end)
    in
    attempt ~retries_left:t.faults.Faults.max_retries ~timeout:t.faults.Faults.timeout
  end

let request_service t ~server ?rt ?on_failed ~wapp ~on_done () =
  match element t server with
  | Agent_el _ -> invalid_arg "Middleware.request_service: target is an agent"
  | Server_el s ->
      (* Resume the chain where the scheduling answer parked it. *)
      let rt : rt_ctx = Option.map (fun h -> (h, Rt.tail h)) rt in
      let dst_size = t.params.Params.server.sreq in
      record_msg t ~kind:Trace.Service_request ~role:Trace.Server_end
        ~size:dst_size;
      (* The promised work is now being submitted; it will appear in the
         server's booked backlog as soon as the request arrives, so the
         ledger entry drains here. *)
      s.reserved <- Float.max 0.0 (s.reserved -. wapp);
      let settled = ref false in
      let on_done () =
        if not !settled then begin
          settled := true;
          on_done ()
        end
      in
      let service_dropped = message_dropped t in
      if service_dropped then message_lost t
      else
        transfer_traced t ~rt ~msg:Rt.Service_request ~src_node:(-1)
          ~dst_node:server
          ~bandwidth:(bandwidth_to_client t server)
          ~src:Network.Instant ~src_size:0.0 ~dst:(Network.Port s.s_resource)
          ~dst_size
          ~on_delivered:(fun rt ->
            if t.active && not t.alive.(server) then message_lost t
            else begin
              let arrived = Engine.now t.engine in
              book_compute t s.s_resource ~owner:server ~work:wapp (fun seconds ->
                  record_node_hist t (fun o -> o.o_service) ~node:server seconds;
                  let rt =
                    record_compute t ~rt ~step:Rt.Service ~node:server ~start:arrived
                  in
                  (* The response leaves as soon as the computation ends: the
                     send charges port capacity but is not queued behind work
                     booked after this job (a strict-FIFO send would trap every
                     finished reply behind the whole compute backlog). *)
                  let src_size = t.params.Params.server.srep in
                  record_msg t ~kind:Trace.Service_reply
                    ~role:Trace.Server_end ~size:src_size;
                  if message_dropped t then begin
                    message_lost t;
                    Network.transfer t.engine
                      ~bandwidth:(bandwidth_to_client t server)
                      ~latency:t.latency ~src:(Network.Lane s.s_resource) ~src_size
                      ~dst:Network.Instant ~dst_size:0.0
                      ~on_delivered:(fun () -> ())
                      ()
                  end
                  else
                    transfer_traced t ~rt ~msg:Rt.Service_reply ~src_node:server
                      ~dst_node:(-1)
                      ~bandwidth:(bandwidth_to_client t server)
                      ~src:(Network.Lane s.s_resource) ~src_size
                      ~dst:Network.Instant ~dst_size:0.0
                      ~on_delivered:(fun _rt -> on_done ()))
            end);
      if t.active then
        Engine.schedule t.engine ~delay:t.faults.Faults.service_timeout (fun () ->
            if not !settled then begin
              settled := true;
              t.counters.c_abandoned <- t.counters.c_abandoned + 1;
              record_failure t Trace.Request_abandoned;
              match on_failed with Some f -> f () | None -> ()
            end)
