open Adept_platform
open Adept_hierarchy
module Rng = Adept_util.Rng
module Client = Adept_workload.Client
module Mix = Adept_workload.Mix
module Job = Adept_workload.Job

type t = {
  params : Adept_model.Params.t;
  platform : Platform.t;
  tree : Tree.t;
  client : Client.t;
  selection : Middleware.selection;
  monitoring_period : float option;
  faults : Faults.t;
  controller : Controller.config option;
  demand : Adept_model.Demand.t;
  seed : int;
}

let make ?(selection = Middleware.Best_prediction) ?monitoring_period
    ?(faults = Faults.none) ?controller ?(demand = Adept_model.Demand.unbounded)
    ?(seed = 1) ~params ~platform ~client tree =
  {
    params;
    platform;
    tree;
    client;
    selection;
    monitoring_period;
    faults;
    controller;
    demand;
    seed;
  }

type run_result = {
  clients : int;
  warmup : float;
  duration : float;
  throughput : float;
  completed_total : int;
  issued_total : int;
  lost_total : int;
  mean_response : float option;
  p95_response : float option;
  per_server : (Node.id * int) list;
  faults : Middleware.fault_stats;
  events : Engine.outcome;
  degraded_seconds : float;
  migration_lost : int;
  replans : Controller.replan_record list;
  final_tree : Tree.t;
}

(* Run-level instruments, resolved once per run. *)
type run_obs = {
  ro_registry : Adept_obs.Registry.t;
  ro_issued : Adept_obs.Counter.t;
  ro_completed : Adept_obs.Counter.t;
  ro_lost : Adept_obs.Counter.t;
  ro_sched_latency : Adept_obs.Histogram.t;
  ro_response : Adept_obs.Histogram.t;
}

let make_run_obs registry =
  let module Obs = Adept_obs in
  {
    ro_registry = registry;
    ro_issued = Obs.Registry.counter registry Obs.Semconv.requests_issued_total;
    ro_completed = Obs.Registry.counter registry Obs.Semconv.requests_completed_total;
    ro_lost = Obs.Registry.counter registry Obs.Semconv.requests_lost_total;
    ro_sched_latency =
      Obs.Registry.histogram registry Obs.Semconv.sched_latency_seconds;
    ro_response = Obs.Registry.histogram registry Obs.Semconv.response_seconds;
  }

(* Shared scaffolding of a run: deployed middleware, stats, and the
   issue-one-request closure.  A failed request (both phases supervised
   under fault injection) counts as lost and still fires [on_complete] so
   closed-loop clients keep going rather than dying with their first lost
   request.  With a controller attached, each request goes to whichever
   hierarchy generation is current at issue time, and requests arriving
   inside a migration window are dropped with the client resumed when the
   window closes (an immediate resume would spin a zero-think client
   without advancing the clock).

   Two zero-cost probe events capture the completion count as of [warmup]
   and [horizon]: the final throughput is their difference over the
   duration, which lets [Run_stats] prune its completion ring to the
   controller's window instead of retaining the whole run.  A probe
   scheduled here (before any workload event exists) fires ahead of
   completions landing at exactly the same instant, so the window keeps
   its historical [t0 <= time < t1] semantics. *)
let prepare ?(trace = Trace.disabled) ?registry ?rtrace ?monitor ~warmup ~horizon t =
  (* A monitor needs a registry to scrape; runs monitored without an
     explicit one get a private registry (instrumentation is
     observation-only, so this cannot perturb the simulation). *)
  let registry =
    match (registry, monitor) with
    | None, Some _ -> Some (Adept_obs.Registry.create ())
    | registry, _ -> registry
  in
  let engine = Engine.create () in
  let rng = Rng.create t.seed in
  let selection =
    match t.selection with
    | Middleware.Random_child _ -> Middleware.Random_child (Rng.split rng)
    | other -> other
  in
  let middleware =
    Middleware.deploy ~trace ?obs:registry ?rtrace ~selection
      ?monitoring_period:t.monitoring_period ~faults:t.faults ~engine
      ~params:t.params ~platform:t.platform t.tree
  in
  let retention =
    match t.controller with
    | Some cfg -> cfg.Controller.window +. cfg.Controller.sample_period
    | None -> 0.0
  in
  let stats = Run_stats.create ~retention () in
  let completed_at_warmup = ref None in
  let completed_at_horizon = ref None in
  Engine.schedule_at engine ~time:warmup (fun () ->
      completed_at_warmup := Some (Run_stats.completed stats));
  Engine.schedule_at engine ~time:horizon (fun () ->
      completed_at_horizon := Some (Run_stats.completed stats));
  let window_completions () =
    (* A probe that never fired means the run stopped (event limit or
       queue exhaustion) before its time: every completion so far counts
       as "before" it. *)
    let upto probe =
      match !probe with Some c -> c | None -> Run_stats.completed stats
    in
    upto completed_at_horizon - upto completed_at_warmup
  in
  let obs = Option.map make_run_obs registry in
  let mix = Client.mix t.client in
  let controller =
    Option.map
      (fun cfg ->
        Controller.create cfg ~engine ~params:t.params ~platform:t.platform
          ~wapp:(Mix.expected_wapp mix) ~demand:t.demand ~selection
          ?monitoring_period:t.monitoring_period ~faults:t.faults ~stats ~trace
          ?obs:registry ?rtrace
          ?alerts:(Option.map Monitor.alerts monitor)
          ~horizon ~middleware t.tree)
      t.controller
  in
  (match (monitor, registry) with
  | Some m, Some registry ->
      let provider () =
        Monitor.signals_of ~params:t.params ~platform:t.platform
          ~wapp:(Mix.expected_wapp mix) ~tree:t.tree ~middleware ?controller ()
      in
      Monitor.attach m ~engine ~registry ~provider ~horizon ()
  | _ -> ());
  let issue_request ~client ~on_complete =
    let issued_at = Engine.now engine in
    Run_stats.record_issue stats ~time:issued_at;
    (match obs with Some o -> Adept_obs.Counter.inc o.ro_issued | None -> ());
    (* With a controller attached, which generation serves — and whether
       this client is paused by a migration window at all — depends on
       the client id: a staged rollout moves only one side of the canary
       split at a time (with rollout off both calls reduce to the old
       fleet-wide is_migrating / current-middleware logic). *)
    let blocked =
      match controller with
      | Some c -> Controller.blocked_until c ~client
      | None -> None
    in
    match blocked with
    | Some until ->
        Run_stats.record_lost stats ~time:issued_at;
        Run_stats.record_migration_lost stats;
        (match obs with Some o -> Adept_obs.Counter.inc o.ro_lost | None -> ());
        Engine.schedule_at engine ~time:until on_complete
    | None ->
        let middleware =
          match controller with
          | Some c -> Controller.route c ~client
          | None -> middleware
        in
        let job = Mix.draw mix rng in
        let wapp = Job.wapp job in
        (* Every request draws a trace id (so the sampled set depends only
           on the rate); a handle opens only for sampled ids. *)
        let rt =
          match rtrace with
          | Some store ->
              Adept_obs.Request_trace.begin_request store ~now:issued_at
          | None -> None
        in
        let on_failed () =
          Run_stats.record_lost stats ~time:(Engine.now engine);
          (match obs with Some o -> Adept_obs.Counter.inc o.ro_lost | None -> ());
          (match (rtrace, rt) with
          | Some store, Some h -> Adept_obs.Request_trace.abandon store h
          | _ -> ());
          on_complete ()
        in
        Middleware.submit middleware ~wapp ?rt ~on_failed
          ~on_scheduled:(fun ~server ->
            (match obs with
            | Some o ->
                Adept_obs.Histogram.record o.ro_sched_latency
                  (Engine.now engine -. issued_at)
            | None -> ());
            Middleware.request_service middleware ~server ?rt ~on_failed ~wapp
              ~on_done:(fun () ->
                let now = Engine.now engine in
                Run_stats.record_completion stats ~issued_at ~time:now ~server;
                (match obs with
                | Some o ->
                    Adept_obs.Counter.inc o.ro_completed;
                    Adept_obs.Histogram.record o.ro_response (now -. issued_at)
                | None -> ());
                (match (rtrace, rt) with
                | Some store, Some h ->
                    Adept_obs.Request_trace.finish store h ~now
                | _ -> ());
                on_complete ())
              ())
          ()
  in
  (engine, rng, stats, middleware, controller, issue_request, window_completions, obs)

(* Final utilization/run gauges, set once from the end-of-run state. *)
let finish_obs obs ~middleware ~controller ~horizon ~duration ~throughput =
  match obs with
  | None -> ()
  | Some o ->
      let module Obs = Adept_obs in
      let reg = o.ro_registry in
      let current =
        match controller with Some c -> Controller.middleware c | None -> middleware
      in
      let set_util role id =
        let labels =
          Obs.Label.v [ Obs.Semconv.node_label id; (Obs.Semconv.l_role, role) ]
        in
        let g = Obs.Registry.gauge reg ~labels Obs.Semconv.node_utilization_ratio in
        Obs.Gauge.set g
          (Resource.utilization (Middleware.resource current id) ~horizon)
      in
      List.iter (set_util "agent") (Middleware.agent_ids current);
      List.iter (set_util "server") (Middleware.server_ids current);
      Obs.Gauge.set (Obs.Registry.gauge reg Obs.Semconv.run_duration_seconds) duration;
      Obs.Gauge.set
        (Obs.Registry.gauge reg Obs.Semconv.run_measured_throughput)
        throughput

let finish ~clients ~warmup ~duration ~stats ~middleware ~controller ~events
    ~window_completions ~obs ~tree =
  let horizon = warmup +. duration in
  let throughput = float_of_int (window_completions ()) /. duration in
  finish_obs obs ~middleware ~controller ~horizon ~duration ~throughput;
  {
    clients;
    warmup;
    duration;
    throughput;
    completed_total = Run_stats.completed stats;
    issued_total = Run_stats.issued stats;
    lost_total = Run_stats.lost stats;
    mean_response = Run_stats.mean_response_time stats;
    p95_response = Run_stats.response_percentile stats 95.0;
    per_server = Run_stats.per_server stats;
    faults =
      (match controller with
      | Some c -> Controller.fault_stats c
      | None -> Middleware.fault_stats middleware);
    events;
    degraded_seconds = Run_stats.degraded_seconds stats;
    migration_lost = Run_stats.migration_lost stats;
    replans = (match controller with Some c -> Controller.records c | None -> []);
    final_tree =
      (match controller with Some c -> Controller.tree c | None -> tree);
  }

let run_fixed ?trace ?registry ?rtrace ?monitor ?max_events t ~clients ~warmup
    ~duration =
  if clients <= 0 then invalid_arg "Scenario.run_fixed: clients must be positive";
  if warmup < 0.0 || duration <= 0.0 then
    invalid_arg "Scenario.run_fixed: need warmup >= 0 and duration > 0";
  let horizon = warmup +. duration in
  let engine, _rng, stats, middleware, controller, issue_request, window_completions, obs
      =
    prepare ?trace ?registry ?rtrace ?monitor ~warmup ~horizon t
  in
  let think = Client.think_time t.client in
  let rec client_loop client () =
    if Engine.now engine < horizon then
      issue_request ~client ~on_complete:(fun () ->
          if think > 0.0 then
            Engine.schedule engine ~delay:think (client_loop client)
          else client_loop client ())
  in
  (* Stagger the client starts across the first simulated second so the
     hierarchy does not see a synchronised burst at t=0. *)
  let stagger = 1.0 /. float_of_int clients in
  for i = 0 to clients - 1 do
    Engine.schedule_at engine ~time:(float_of_int i *. stagger) (client_loop i)
  done;
  let events = Engine.run ~until:horizon ?max_events engine in
  finish ~clients ~warmup ~duration ~stats ~middleware ~controller ~events
    ~window_completions ~obs ~tree:t.tree

let run_open ?trace ?registry ?rtrace ?monitor ?max_events t ~rate ~warmup
    ~duration =
  if rate <= 0.0 || not (Float.is_finite rate) then
    invalid_arg "Scenario.run_open: rate must be positive and finite";
  if warmup < 0.0 || duration <= 0.0 then
    invalid_arg "Scenario.run_open: need warmup >= 0 and duration > 0";
  let horizon = warmup +. duration in
  let engine, rng, stats, middleware, controller, issue_request, window_completions, obs
      =
    prepare ?trace ?registry ?rtrace ?monitor ~warmup ~horizon t
  in
  (* Open-loop arrivals are one-shot, so the client id is just the
     arrival index — still deterministic, so the canary split partitions
     the Poisson stream reproducibly. *)
  let next_client = ref 0 in
  let rec arrival () =
    if Engine.now engine < horizon then begin
      let client = !next_client in
      incr next_client;
      issue_request ~client ~on_complete:(fun () -> ());
      Engine.schedule engine
        ~delay:(Rng.exponential rng ~mean:(1.0 /. rate))
        arrival
    end
  in
  Engine.schedule_at engine ~time:(Rng.exponential rng ~mean:(1.0 /. rate)) arrival;
  let events = Engine.run ~until:horizon ?max_events engine in
  finish ~clients:0 ~warmup ~duration ~stats ~middleware ~controller ~events
    ~window_completions ~obs ~tree:t.tree

let throughput_series ?trace t ~client_counts ~warmup ~duration =
  List.map
    (fun clients -> (clients, (run_fixed ?trace t ~clients ~warmup ~duration).throughput))
    client_counts

let saturation_throughput ?(start = 1) ?(grow = 1.6) ?(tolerance = 0.02) t ~warmup
    ~duration =
  if start < 1 then invalid_arg "Scenario.saturation_throughput: start must be >= 1";
  if grow <= 1.0 then invalid_arg "Scenario.saturation_throughput: grow must exceed 1";
  let rec probe clients best_clients best_throughput =
    let result = run_fixed t ~clients ~warmup ~duration in
    let improved =
      result.throughput > best_throughput *. (1.0 +. tolerance)
    in
    let best_clients, best_throughput =
      if result.throughput > best_throughput then (clients, result.throughput)
      else (best_clients, best_throughput)
    in
    if not improved then (best_clients, best_throughput)
    else
      let next = max (clients + 1) (int_of_float (Float.round (float_of_int clients *. grow))) in
      probe next best_clients best_throughput
  in
  probe start start 0.0
