module Error = Adept.Error

type mode = Off | Direct | Canary

let mode_name = function Off -> "off" | Direct -> "direct" | Canary -> "canary"

let mode_of_string = function
  | "off" -> Ok Off
  | "direct" -> Ok Direct
  | "canary" -> Ok Canary
  | other ->
      Error (Error.invalid_input "Rollout: mode must be off, direct or canary, got %s" other)

type config = {
  mode : mode;
  canary_fraction : float;
  bake_window : float;
  watch : string list;
}

let off = { mode = Off; canary_fraction = 0.0; bake_window = 0.0; watch = [] }

let ( let* ) = Result.bind

let config ?(canary_fraction = 0.25) ?(bake_window = 2.0)
    ?(watch = [ "model-drift" ]) mode =
  match mode with
  | Off -> Ok off
  | Direct | Canary ->
      let* () =
        if
          mode = Canary
          && (canary_fraction <= 0.0 || canary_fraction >= 1.0
             || Float.is_nan canary_fraction)
        then
          Error
            (Error.invalid_input
               "Rollout.config: canary_fraction must be in (0, 1), got %g"
               canary_fraction)
        else Ok ()
      in
      let* () =
        if mode = Canary && (bake_window <= 0.0 || not (Float.is_finite bake_window))
        then
          Error
            (Error.invalid_input
               "Rollout.config: bake_window must be positive and finite, got %g"
               bake_window)
        else Ok ()
      in
      Ok { mode; canary_fraction; bake_window; watch }

(* Canary membership must be a pure function of the client id: the same
   client lands on the same side of the split in every run (and in the
   direct-vs-canary comparison runs of the same scenario), and no RNG is
   drawn, so attaching a canary rollout cannot shift the workload
   stream.  Knuth's multiplicative hash scrambles consecutive client ids
   across the unit interval. *)
let is_canary cfg ~client =
  cfg.mode = Canary
  &&
  let h = client * 2654435761 land 0x3FFFFFFF in
  float_of_int h /. float_of_int 0x40000000 < cfg.canary_fraction

type step =
  | Canary_started
  | Canary_enacted
  | Promote_started
  | Promote_finished
  | Rollback_started
  | Rollback_finished
  | Direct_swap

let step_name = function
  | Canary_started -> "canary-started"
  | Canary_enacted -> "canary-enacted"
  | Promote_started -> "promote-started"
  | Promote_finished -> "promoted"
  | Rollback_started -> "rollback-started"
  | Rollback_finished -> "rolled-back"
  | Direct_swap -> "direct-enacted"

type event = { at : float; step : step; alerts : string list }

type outcome = Direct_enacted | Promoted | Rolled_back

let outcome_name = function
  | Direct_enacted -> "direct"
  | Promoted -> "promoted"
  | Rolled_back -> "rolled-back"

type record = {
  outcome : outcome;
  canary_fraction : float;
  bake_window : float;
  trail : event list;
}

(* Bake verdict: any watched rule still firing at the bake deadline
   condemns the canary.  An empty watch list watches everything — the
   conservative default for ad-hoc rule sets. *)
let decide cfg ~firing =
  let cited =
    match cfg.watch with
    | [] -> firing
    | watch -> List.filter (fun name -> List.mem name watch) firing
  in
  match cited with [] -> `Promote | names -> `Rollback names

type phase =
  | Idle
  | Canary_migrating of float
  | Baking of float
  | Promoting of float
  | Rolling_back of float

type t = { cfg : config; mutable phase : phase; mutable trail : event list }

let create cfg = { cfg; phase = Idle; trail = [] }

let config_of t = t.cfg

let phase t = t.phase

let active t = t.phase <> Idle

let set_phase t phase = t.phase <- phase

let push t ~at ?(alerts = []) step = t.trail <- { at; step; alerts } :: t.trail

let trail t = List.rev t.trail

let reset_trail t = t.trail <- []

(* Snapshot the accumulated trail into the typed record attached to the
   replan that finished (promoted, rolled back, or enacted directly). *)
let snapshot t ~outcome =
  let trail = trail t in
  t.trail <- [];
  {
    outcome;
    canary_fraction = t.cfg.canary_fraction;
    bake_window = t.cfg.bake_window;
    trail;
  }

(* The trail as labeled phase intervals for the dashboard: each opening
   step spans to its matching closing step (an interval the run ended
   inside stays open).  [Direct_swap] is a point event, not a phase. *)
let phase_spans trail =
  let find_after at step =
    List.find_map
      (fun e -> if e.step = step && e.at >= at then Some e.at else None)
      trail
  in
  List.filter_map
    (fun e ->
      match e.step with
      | Canary_started ->
          Some ("canary-migration", e.at, find_after e.at Canary_enacted)
      | Canary_enacted ->
          let close =
            match find_after e.at Promote_started with
            | Some t -> Some t
            | None -> find_after e.at Rollback_started
          in
          Some ("bake", e.at, close)
      | Promote_started ->
          Some ("promote", e.at, find_after e.at Promote_finished)
      | Rollback_started ->
          Some ("rollback", e.at, find_after e.at Rollback_finished)
      | Promote_finished | Rollback_finished | Direct_swap -> None)
    trail

(* ---------- timeline export ---------- *)

let json_escaped s = Printf.sprintf "%S" s

let step_line { at; step; alerts } =
  Printf.sprintf "{\"at\":%.6f,\"step\":%s,\"alerts\":[%s]}\n" at
    (json_escaped (step_name step))
    (String.concat "," (List.map json_escaped alerts))

(* The rollout decision trail as JSON lines, optionally interleaved in
   chronological order with the alert timeline that drove it (the same
   bytes {!Adept_obs.Export.alert_timeline_jsonl} exports, so the merged
   document diffs cleanly against either source).  Ties put the alert
   transition first: the alert is the cause, the transition the effect. *)
let timeline_jsonl ?alerts trail =
  let steps = List.map (fun ev -> (ev.at, step_line ev)) trail in
  let alert_lines =
    match alerts with
    | None -> []
    | Some a ->
        let lines =
          String.split_on_char '\n' (Adept_obs.Export.alert_timeline_jsonl a)
          |> List.filter (fun l -> l <> "")
        in
        List.map2
          (fun (tr : Adept_obs.Alert.transition) line ->
            (tr.Adept_obs.Alert.at, line ^ "\n"))
          (Adept_obs.Alert.transitions a)
          lines
  in
  let rec merge xs ys =
    match (xs, ys) with
    | [], rest | rest, [] -> List.map snd rest
    | (ta, la) :: xs', (tb, lb) :: ys' ->
        if ta <= tb then la :: merge xs' ys else lb :: merge xs ys'
  in
  String.concat "" (merge alert_lines steps)
