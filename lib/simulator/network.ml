type endpoint = Instant | Port of Resource.t | Lane of Resource.t

let transfer engine ~bandwidth ?(latency = 0.0) ?on_times ~src ~src_size ~dst
    ~dst_size ~on_delivered () =
  if bandwidth <= 0.0 then invalid_arg "Network.transfer: bandwidth must be positive";
  if src_size < 0.0 || dst_size < 0.0 then
    invalid_arg "Network.transfer: negative message size";
  if latency < 0.0 then invalid_arg "Network.transfer: negative latency";
  let now = Engine.now engine in
  let sent_at =
    match src with
    | Instant -> now
    | Port resource ->
        Resource.book resource ~now ~duration:(src_size /. bandwidth)
    | Lane resource ->
        Resource.charge resource ~now ~duration:(src_size /. bandwidth);
        now +. (src_size /. bandwidth)
  in
  let arrival = sent_at +. latency in
  (match on_times with Some f -> f ~sent_at ~arrival | None -> ());
  Engine.schedule_at engine ~time:arrival (fun () ->
      match dst with
      | Instant -> on_delivered ()
      | Port resource ->
          let finish =
            Resource.book resource ~now:arrival ~duration:(dst_size /. bandwidth)
          in
          Engine.schedule_at engine ~time:finish on_delivered
      | Lane resource ->
          Resource.charge resource ~now:arrival ~duration:(dst_size /. bandwidth);
          on_delivered ())
