(** Fault-injection schedules for the simulator.

    The paper's steady-state model assumes every element stays up for the
    whole run; real Grid'5000 deployments do not.  A [Faults.t] describes
    what goes wrong during a simulation — node crashes and recoveries at
    scheduled instants, uniform link degradation windows, and random
    message loss — together with the middleware's defensive reaction
    parameters (client round-trip timeout, retry budget, backoff, and the
    agents' patience while collecting child replies).

    A schedule is immutable data: {!Middleware.deploy} consumes it and
    installs the events.  {!none} is the empty schedule; deployments made
    with it take exactly the pre-fault code path, so a run with
    [Faults.none] is bit-for-bit identical to one without any fault
    argument (the determinism regression test pins this down).  Message
    loss draws come from a dedicated {!Adept_util.Rng} seeded by
    [loss_seed], never from the scenario's workload stream. *)

open Adept_platform

type event_kind = Crash | Recover

type node_event = { node : Node.id; at : float; kind : event_kind }

type degradation = { from_ : float; until : float; factor : float }
(** Between [from_] and [until] every link runs at [factor] times its
    nominal bandwidth ([0 < factor <= 1]). *)

type t = private {
  node_events : node_event list;  (** Chronological. *)
  degradations : degradation list;
  drop_probability : float;  (** Per-message loss probability in [\[0, 1)]. *)
  loss_seed : int;  (** Seeds the message-loss stream. *)
  timeout : float;  (** Client-side scheduling round-trip timeout, s. *)
  service_timeout : float;  (** Client-side service-phase timeout, s. *)
  max_retries : int;  (** Scheduling retries after the first attempt. *)
  backoff : float;  (** Timeout multiplier per retry, [>= 1]. *)
  patience : float;  (** Agent-side wait for child replies before
                         finalising with what arrived and pruning the
                         silent children, s. *)
}

val none : t
(** The empty schedule: no events, no loss, no degradation.  Deploying
    with it changes nothing — not even event-queue insertion order. *)

val is_none : t -> bool
(** True iff the schedule can never perturb a run (no node events, no
    degradation windows, zero drop probability). *)

val make :
  ?timeout:float ->
  ?service_timeout:float ->
  ?max_retries:int ->
  ?backoff:float ->
  ?patience:float ->
  unit ->
  (t, Adept.Error.t) result
(** An empty schedule with explicit reaction parameters (defaults:
    timeout 0.5 s, service_timeout 5 s, 3 retries, backoff 2.0,
    patience 0.25 s), validated at construction: every time must be
    positive and finite, [max_retries >= 0], [backoff >= 1].  Violations
    are reported as [Error.Invalid_input] instead of raising, so a CLI can
    surface them as exit diagnostics. *)

val make_exn :
  ?timeout:float ->
  ?service_timeout:float ->
  ?max_retries:int ->
  ?backoff:float ->
  ?patience:float ->
  unit ->
  t
(** {!make} for static, known-good parameters (tests, benches).
    @raise Invalid_argument where {!make} returns [Error]. *)

val crash : ?recover_at:float -> node:Node.id -> at:float -> t -> t
(** Add a crash of [node] at time [at], with an optional later recovery.
    @raise Invalid_argument if times are negative or
    [recover_at <= at]. *)

val degrade : from_:float -> until:float -> factor:float -> t -> t
(** Add a uniform link-degradation window.
    @raise Invalid_argument unless [0 <= from_ < until] and
    [0 < factor <= 1]. *)

val with_message_loss : probability:float -> seed:int -> t -> t
(** Drop each middleware message independently with [probability].
    @raise Invalid_argument unless [0 <= probability < 1]. *)

val seeded_crashes :
  rng:Adept_util.Rng.t ->
  nodes:Node.id list ->
  rate:float ->
  mttr:float ->
  horizon:float ->
  t ->
  t
(** Draw per-node Poisson crash processes: each node fails with rate
    [rate] (crashes per simulated second while up) and recovers after an
    exponential repair time of mean [mttr].  Events beyond [horizon] are
    not generated.  [rate = 0] adds nothing.  Deterministic in the [rng]
    state.
    @raise Invalid_argument on negative rate or non-positive
    [mttr]/[horizon]. *)

val bandwidth_factor : t -> now:float -> float
(** Product of the factors of every window containing [now]; 1.0 outside
    all windows. *)

val events_before : t -> horizon:float -> node_event list
(** Chronological node events strictly before [horizon]. *)

val pp : Format.formatter -> t -> unit
