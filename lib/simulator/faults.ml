open Adept_platform
module Rng = Adept_util.Rng

type event_kind = Crash | Recover

type node_event = { node : Node.id; at : float; kind : event_kind }

type degradation = { from_ : float; until : float; factor : float }

type t = {
  node_events : node_event list;
  degradations : degradation list;
  drop_probability : float;
  loss_seed : int;
  timeout : float;
  service_timeout : float;
  max_retries : int;
  backoff : float;
  patience : float;
}

let none =
  {
    node_events = [];
    degradations = [];
    drop_probability = 0.0;
    loss_seed = 0;
    timeout = 0.5;
    service_timeout = 5.0;
    max_retries = 3;
    backoff = 2.0;
    patience = 0.25;
  }

let is_none t =
  t.node_events = [] && t.degradations = [] && t.drop_probability = 0.0

module Error = Adept.Error

let ( let* ) = Result.bind

let positive_finite name v =
  if v <= 0.0 || not (Float.is_finite v) then
    Error (Error.invalid_input "Faults.make: %s must be positive and finite, got %g" name v)
  else Ok ()

let make ?(timeout = none.timeout) ?(service_timeout = none.service_timeout)
    ?(max_retries = none.max_retries) ?(backoff = none.backoff)
    ?(patience = none.patience) () =
  let* () = positive_finite "timeout" timeout in
  let* () = positive_finite "service_timeout" service_timeout in
  let* () = positive_finite "patience" patience in
  let* () =
    if max_retries < 0 then
      Error (Error.invalid_input "Faults.make: max_retries must be >= 0, got %d" max_retries)
    else Ok ()
  in
  let* () =
    if backoff < 1.0 || not (Float.is_finite backoff) then
      Error (Error.invalid_input "Faults.make: backoff must be >= 1, got %g" backoff)
    else Ok ()
  in
  Ok { none with timeout; service_timeout; max_retries; backoff; patience }

let make_exn ?timeout ?service_timeout ?max_retries ?backoff ?patience () =
  match make ?timeout ?service_timeout ?max_retries ?backoff ?patience () with
  | Ok t -> t
  | Error e -> invalid_arg (Error.to_string e)

(* Stable chronology: time, then node id, then Crash before Recover, so
   schedules built in any insertion order replay identically. *)
let sort_events events =
  let kind_rank = function Crash -> 0 | Recover -> 1 in
  List.stable_sort
    (fun a b ->
      match Float.compare a.at b.at with
      | 0 -> (
          match Int.compare a.node b.node with
          | 0 -> Int.compare (kind_rank a.kind) (kind_rank b.kind)
          | c -> c)
      | c -> c)
    events

let add_events t events = { t with node_events = sort_events (events @ t.node_events) }

let crash ?recover_at ~node ~at t =
  if at < 0.0 || Float.is_nan at then
    invalid_arg "Faults.crash: crash time must be non-negative";
  if node < 0 then invalid_arg "Faults.crash: negative node id";
  let events =
    match recover_at with
    | None -> [ { node; at; kind = Crash } ]
    | Some r ->
        if r <= at || not (Float.is_finite r) then
          invalid_arg "Faults.crash: recover_at must be after the crash";
        [ { node; at; kind = Crash }; { node; at = r; kind = Recover } ]
  in
  add_events t events

let degrade ~from_ ~until ~factor t =
  if from_ < 0.0 || until <= from_ || not (Float.is_finite until) then
    invalid_arg "Faults.degrade: need 0 <= from_ < until";
  if factor <= 0.0 || factor > 1.0 then
    invalid_arg "Faults.degrade: factor must be in (0, 1]";
  { t with degradations = { from_; until; factor } :: t.degradations }

let with_message_loss ~probability ~seed t =
  if probability < 0.0 || probability >= 1.0 || Float.is_nan probability then
    invalid_arg "Faults.with_message_loss: probability must be in [0, 1)";
  { t with drop_probability = probability; loss_seed = seed }

let seeded_crashes ~rng ~nodes ~rate ~mttr ~horizon t =
  if rate < 0.0 || not (Float.is_finite rate) then
    invalid_arg "Faults.seeded_crashes: rate must be non-negative and finite";
  if mttr <= 0.0 || not (Float.is_finite mttr) then
    invalid_arg "Faults.seeded_crashes: mttr must be positive";
  if horizon <= 0.0 || not (Float.is_finite horizon) then
    invalid_arg "Faults.seeded_crashes: horizon must be positive";
  if rate = 0.0 then t
  else
    let events = ref [] in
    List.iter
      (fun node ->
        let rec walk now =
          let crash_at = now +. Rng.exponential rng ~mean:(1.0 /. rate) in
          if crash_at < horizon then begin
            events := { node; at = crash_at; kind = Crash } :: !events;
            let recover_at = crash_at +. Rng.exponential rng ~mean:mttr in
            if recover_at < horizon then begin
              events := { node; at = recover_at; kind = Recover } :: !events;
              walk recover_at
            end
          end
        in
        walk 0.0)
      nodes;
    add_events t !events

let bandwidth_factor t ~now =
  List.fold_left
    (fun acc w -> if now >= w.from_ && now < w.until then acc *. w.factor else acc)
    1.0 t.degradations

let events_before t ~horizon =
  List.filter (fun e -> e.at < horizon) t.node_events

let pp ppf t =
  let crashes =
    List.length (List.filter (fun e -> e.kind = Crash) t.node_events)
  in
  Format.fprintf ppf
    "faults: %d crash(es), %d event(s), drop %.3f, %d degradation window(s), \
     timeout %gs x%d retries"
    crashes
    (List.length t.node_events)
    t.drop_probability
    (List.length t.degradations)
    t.timeout t.max_retries
