(** End-to-end simulation runs: a platform, a deployed hierarchy, a client
    population — the simulated version of the paper's measurement protocol
    (Section 5.1).

    Clients are closed loops: each keeps exactly one request in flight
    (scheduling phase, then service phase, then immediately the next
    request, with an optional think time).  The maximum sustained
    throughput is measured over a window after a warm-up. *)

open Adept_platform
open Adept_hierarchy

type t = {
  params : Adept_model.Params.t;
  platform : Platform.t;
  tree : Tree.t;
  client : Adept_workload.Client.t;
  selection : Middleware.selection;
  monitoring_period : float option;
  faults : Faults.t;  (** Fault schedule; {!Faults.none} by default. *)
  controller : Controller.config option;
      (** Self-healing supervision loop; [None] (default) runs without
          one. *)
  demand : Adept_model.Demand.t;
      (** The demand the hierarchy was planned under; controller replans
          are produced and scored against it.  [Unbounded] by default. *)
  seed : int;  (** Drives job draws from the mix (and Random selection). *)
}

val make :
  ?selection:Middleware.selection ->
  ?monitoring_period:float ->
  ?faults:Faults.t ->
  ?controller:Controller.config ->
  ?demand:Adept_model.Demand.t ->
  ?seed:int ->
  params:Adept_model.Params.t ->
  platform:Platform.t ->
  client:Adept_workload.Client.t ->
  Tree.t ->
  t
(** Default selection [Best_prediction], seed 1, no faults, no
    controller.  [monitoring_period] is required by the [Database]
    selection (see {!Middleware.deploy}).  [faults] installs the
    crash/recovery schedule; with the default {!Faults.none} runs are
    bit-for-bit identical to the fault-free simulator.  [controller]
    attaches an online redeployment loop (see {!Controller}): requests
    are routed to whichever hierarchy generation is current, and requests
    issued inside a migration window count as lost.  [demand] (default
    {!Adept_model.Demand.unbounded}) is passed through to the
    controller's replans so a hierarchy planned under a bounded demand is
    replaced under the same demand. *)

type run_result = {
  clients : int;  (** Population, or 0 for open-loop runs. *)
  warmup : float;
  duration : float;  (** Measurement window length, sim seconds. *)
  throughput : float;  (** Completions/s inside the window. *)
  completed_total : int;
  issued_total : int;
  lost_total : int;
      (** Requests abandoned after retries (fault runs only; a closed-loop
          client that loses a request goes on to its next one). *)
  mean_response : float option;
  p95_response : float option;
  per_server : (Node.id * int) list;
  faults : Middleware.fault_stats;
      (** All-zero on fault-free runs; merged across hierarchy
          generations when a controller redeployed. *)
  events : Engine.outcome;
  degraded_seconds : float;
      (** Simulated time the controller sampled throughput below its
          threshold; 0 without a controller. *)
  migration_lost : int;
      (** Requests dropped inside migration windows (also counted in
          [lost_total]); 0 without a controller. *)
  replans : Controller.replan_record list;
      (** Enacted redeployments, chronological; [] without a
          controller. *)
  final_tree : Tree.t;
      (** The hierarchy generation in charge when the run ended: the
          original tree unless a controller promoted a replacement — a
          rolled-back canary leaves it untouched. *)
}

val run_fixed :
  ?trace:Trace.t ->
  ?registry:Adept_obs.Registry.t ->
  ?rtrace:Adept_obs.Request_trace.t ->
  ?monitor:Monitor.t ->
  ?max_events:int ->
  t ->
  clients:int ->
  warmup:float ->
  duration:float ->
  run_result
(** Launch [clients] closed-loop clients (start times staggered across the
    first simulated second, like the paper's one-per-second ramp compressed)
    and measure throughput on [\[warmup, warmup + duration\]].

    [registry] turns on metrics for the run: it is threaded to the
    middleware (per-node compute histograms, message counters — see
    {!Middleware.deploy}) and the controller, and the run itself records
    issued/completed/lost counters, response-time and scheduling-latency
    histograms, end-of-run per-node utilization gauges, and run
    duration/throughput gauges.  Instrumentation observes work the
    simulation already performs, so results are identical with and
    without it.

    [rtrace] turns on per-request causal tracing: every issued request
    draws a trace id from the store, sampled requests record their
    Figure-1 span chain through the middleware (and through every
    generation a controller deploys), completed requests are finalised
    into the store's critical-path aggregates and slowest-N reservoir,
    failed requests are counted as abandoned.  Like [registry], the
    store only observes — results are identical with it attached,
    sampled at 0, or absent.

    [monitor] attaches a continuous-monitoring probe chain (see
    {!Monitor}): periodic registry scrapes into its time-series store,
    model gauges refreshed from the hierarchy currently in charge, and
    alert-rule evaluation; when a controller is configured it is handed
    the monitor's alert engine so enacted replans cite the alerts firing
    at trigger time.  A monitored run without an explicit [registry]
    creates a private one.  Monitoring, too, only observes — results
    are identical with it attached, detached, or at interval 0.
    @raise Invalid_argument on non-positive clients/durations. *)

val throughput_series :
  ?trace:Trace.t ->
  t ->
  client_counts:int list ->
  warmup:float ->
  duration:float ->
  (int * float) list
(** One {!run_fixed} per population size — the x/y series of the paper's
    throughput-vs-clients figures.  Each point is an independent run. *)

val run_open :
  ?trace:Trace.t ->
  ?registry:Adept_obs.Registry.t ->
  ?rtrace:Adept_obs.Request_trace.t ->
  ?monitor:Monitor.t ->
  ?max_events:int ->
  t ->
  rate:float ->
  warmup:float ->
  duration:float ->
  run_result
(** Open-loop load: requests arrive as a Poisson process of [rate]
    requests/s (drawn from the scenario's seed), regardless of
    completions — the workload a {!Adept_model.Demand.rate} describes.
    When the deployment's rho exceeds [rate], throughput tracks [rate]
    and response times stay bounded; below it, the backlog and latency
    grow for as long as the run lasts.  The scenario's think time is
    ignored (arrivals are exogenous).
    @raise Invalid_argument on a non-positive rate. *)

val saturation_throughput :
  ?start:int ->
  ?grow:float ->
  ?tolerance:float ->
  t ->
  warmup:float ->
  duration:float ->
  int * float
(** Increase the client population geometrically until throughput stops
    improving by more than [tolerance] (relative, default 0.02); returns
    (clients, throughput) at saturation — the paper's "introduce new
    clients until the throughput of the platform stops improving". *)
