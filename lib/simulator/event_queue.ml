type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;  (* heap.(0) unused sentinel-free; 0-based *)
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let earlier a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let cap = Array.length t.heap in
  let ncap = max 16 (2 * cap) in
  if t.size = cap then begin
    let nheap = Array.make ncap t.heap.(0) in
    Array.blit t.heap 0 nheap 0 t.size;
    t.heap <- nheap
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if earlier t.heap.(i) t.heap.(parent) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && earlier t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && earlier t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(!smallest);
    t.heap.(!smallest) <- tmp;
    sift_down t !smallest
  end

let add t ~time payload =
  if Float.is_nan time then invalid_arg "Event_queue.add: NaN time";
  let entry = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  if t.size = 0 && Array.length t.heap = 0 then t.heap <- Array.make 16 entry
  else grow t;
  t.heap.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop_min t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t 0
    end;
    Some (top.time, top.payload)
  end

let peek_min t = if t.size = 0 then None else Some (t.heap.(0).time, t.heap.(0).payload)

let next_time t = if t.size = 0 then Float.infinity else t.heap.(0).time

let pop_min_exn t =
  if t.size = 0 then invalid_arg "Event_queue.pop_min_exn: empty queue";
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.heap.(0) <- t.heap.(t.size);
    sift_down t 0
  end;
  top.payload

let size t = t.size
let is_empty t = t.size = 0

let clear t =
  t.size <- 0;
  t.heap <- [||]
