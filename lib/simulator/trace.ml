type message_kind = Sched_request | Sched_reply | Service_request | Service_reply

type role = Agent_end | Server_end | Client_end

let kind_index = function
  | Sched_request -> 0
  | Sched_reply -> 1
  | Service_request -> 2
  | Service_reply -> 3

let role_index = function Agent_end -> 0 | Server_end -> 1 | Client_end -> 2

let kind_name = function
  | Sched_request -> "sched-request"
  | Sched_reply -> "sched-reply"
  | Service_request -> "service-request"
  | Service_reply -> "service-reply"

let role_name = function
  | Agent_end -> "agent"
  | Server_end -> "server"
  | Client_end -> "client"

type failure =
  | Node_crash of int
  | Node_recover of int
  | Message_lost
  | Request_timeout
  | Request_abandoned
  | Child_pruned of int * int
  | Child_rejoined of int * int
  | Replan_triggered
  | Replan_enacted of int list
  | Replan_suppressed of string

let failure_name = function
  | Node_crash _ -> "node-crash"
  | Node_recover _ -> "node-recover"
  | Message_lost -> "message-lost"
  | Request_timeout -> "request-timeout"
  | Request_abandoned -> "request-abandoned"
  | Child_pruned _ -> "child-pruned"
  | Child_rejoined _ -> "child-rejoined"
  | Replan_triggered -> "replan-triggered"
  | Replan_enacted _ -> "replan-enacted"
  | Replan_suppressed _ -> "replan-suppressed"

type t = {
  enabled : bool;
  tracer : Adept_obs.Tracer.t option;
  counts : int array;  (* kind * role *)
  sizes : float array;
  mutable request_computes : float list;
  mutable reply_samples : (int * float) list;
  mutable predictions : float list;
  mutable failures : (float * failure) list;
  mutable recovery_latencies : float list;
}

let make ?tracer enabled =
  {
    enabled;
    tracer;
    counts = Array.make 12 0;
    sizes = Array.make 12 0.0;
    request_computes = [];
    reply_samples = [];
    predictions = [];
    failures = [];
    recovery_latencies = [];
  }

let create ?tracer () = make ?tracer true

let disabled = make false

let is_enabled t = t.enabled

let tracer t = t.tracer

let cell ~kind ~role = (kind_index kind * 3) + role_index role

let record_message t ~kind ~role ~size =
  if t.enabled then begin
    let i = cell ~kind ~role in
    t.counts.(i) <- t.counts.(i) + 1;
    t.sizes.(i) <- t.sizes.(i) +. size
  end

let record_agent_request_compute t ~seconds =
  if t.enabled then t.request_computes <- seconds :: t.request_computes

let record_agent_reply_compute t ~degree ~seconds =
  if t.enabled then t.reply_samples <- (degree, seconds) :: t.reply_samples

let record_server_prediction t ~seconds =
  if t.enabled then t.predictions <- seconds :: t.predictions

let failure_labels = function
  | Node_crash id | Node_recover id -> [ ("node", string_of_int id) ]
  | Child_pruned (agent, child) | Child_rejoined (agent, child) ->
      [ ("agent", string_of_int agent); ("child", string_of_int child) ]
  | Replan_enacted failed ->
      [ ("failed", String.concat " " (List.map string_of_int failed)) ]
  | Replan_suppressed reason -> [ ("reason", reason) ]
  | Message_lost | Request_timeout | Request_abandoned | Replan_triggered -> []

let record_failure t ~time failure =
  if t.enabled then begin
    t.failures <- (time, failure) :: t.failures;
    match t.tracer with
    | Some tracer ->
        Adept_obs.Tracer.event tracer ~at:time
          ~labels:(Adept_obs.Label.v (failure_labels failure))
          (failure_name failure)
    | None -> ()
  end

let record_recovery_latency t ~seconds =
  if t.enabled then t.recovery_latencies <- seconds :: t.recovery_latencies

let message_count t kind role = t.counts.(cell ~kind ~role)

let mean_message_size t kind role =
  let i = cell ~kind ~role in
  if t.counts.(i) = 0 then None else Some (t.sizes.(i) /. float_of_int t.counts.(i))

let total_mbit t = Array.fold_left ( +. ) 0.0 t.sizes

let agent_request_computes t = Array.of_list (List.rev t.request_computes)

let reply_samples t = Array.of_list (List.rev t.reply_samples)

let server_predictions t = Array.of_list (List.rev t.predictions)

let failures t = List.rev t.failures

let failure_count t = List.length t.failures

let recovery_latencies t = Array.of_list (List.rev t.recovery_latencies)

let pp_summary ppf t =
  List.iter
    (fun kind ->
      List.iter
        (fun role ->
          match mean_message_size t kind role with
          | None -> ()
          | Some mean ->
              Format.fprintf ppf "%s@%s: %d observations, mean %.3g Mbit@."
                (kind_name kind) (role_name role) (message_count t kind role) mean)
        [ Agent_end; Server_end; Client_end ])
    [ Sched_request; Sched_reply; Service_request; Service_reply ];
  if t.failures <> [] then
    Format.fprintf ppf "failure events: %d (last %s)@." (failure_count t)
      (match t.failures with (_, f) :: _ -> failure_name f | [] -> "-");
  Format.fprintf ppf "total traffic: %.3f Mbit" (total_mbit t)
