(** A simulated computing resource under the [M(r, s, w)] model: one
    single-port device that sends, receives or computes — never two at
    once.  Activities are booked FIFO in booking order; an activity asked
    for at time [t] starts at [max t free_at]. *)

type t

val create : name:string -> power:float -> t
(** @raise Invalid_argument if [power <= 0]. *)

val name : t -> string
val power : t -> float

val free_at : t -> float
(** When the port next becomes idle (0 initially). *)

val book : t -> now:float -> duration:float -> float
(** Finish time of the newly queued activity (it starts at
    [max now (free_at t)]); extends [free_at] to the returned finish.  @raise Invalid_argument on a negative duration or a [now]
    that moves backwards past an already granted booking's request time
    (bookings must be requested in non-decreasing [now] order, which the
    engine's ordered event execution guarantees). *)

val charge : t -> now:float -> duration:float -> unit
(** Consume port capacity without anyone waiting for it: extends [free_at]
    and the busy accounting exactly like {!book}, but the caller proceeds
    immediately.  Used for a server's scheduling-phase work, which a real
    SeD performs in a servant thread concurrent with (and stealing cycles
    from) the running application. *)

val backlog : t -> now:float -> float
(** Seconds of already-booked work remaining at [now]
    ([max 0 (free_at - now)]) — what a DIET server reports in its
    performance prediction. *)

val interrupt : t -> now:float -> unit
(** A crash at [now]: every queued-but-unexecuted booking is lost, so
    [free_at] snaps back to [now] (never forward).  Busy accounting is
    untouched — the port genuinely worked until the crash.  Subsequent
    bookings may be requested from [now] on. *)

val busy_seconds : t -> float
(** Total booked activity time so far. *)

val bookings : t -> int

val utilization : t -> horizon:float -> float
(** [busy_seconds / horizon] clamped to [0, 1]; the fraction of the run
    the port was occupied (assuming all bookings fit in the horizon). *)

val pp : Format.formatter -> t -> unit
