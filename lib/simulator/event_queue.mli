(** Binary min-heap keyed by (time, sequence number).

    The sequence number makes event ordering total and deterministic:
    events scheduled for the same instant fire in insertion order. *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> time:float -> 'a -> unit
(** Insert with an automatically increasing sequence number.
    @raise Invalid_argument on NaN time. *)

val pop_min : 'a t -> (float * 'a) option
(** Remove and return the earliest event. *)

val peek_min : 'a t -> (float * 'a) option

val next_time : 'a t -> float
(** Time of the earliest event without removing it, [Float.infinity] when
    the queue is empty — the allocation-free [peek_min] the simulation
    loop spins on. *)

val pop_min_exn : 'a t -> 'a
(** Remove and return the earliest event's payload (its time is
    [next_time], read first).  @raise Invalid_argument when empty. *)

val size : 'a t -> int
val is_empty : 'a t -> bool
val clear : 'a t -> unit
