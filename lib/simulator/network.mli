(** Message passing between simulated resources.

    A transfer occupies the sender's port, travels (optional latency), then
    occupies the receiver's port — matching the model's accounting, which
    charges [S/B] to both endpoints of every message (Eqs. 1–4).  The two
    ends may account different sizes, as in Table 3 where an agent↔server
    exchange costs the agent its agent-level message size and the server
    its server-level size.

    Endpoint semantics:
    - [Port r]: the transfer queues FIFO on [r]'s single port; the message
      leaves/arrives only when the port has processed it (agents, and the
      service phase at servers).
    - [Lane r]: the port is charged the same capacity but the message is
      not delayed by the port's queue — a server's scheduling traffic,
      handled by a servant thread concurrently with the running
      application.
    - [Instant]: no cost at this end (client machines, which the paper's
      load model never makes a bottleneck). *)

type endpoint = Instant | Port of Resource.t | Lane of Resource.t

val transfer :
  Engine.t ->
  bandwidth:float ->
  ?latency:float ->
  ?on_times:(sent_at:float -> arrival:float -> unit) ->
  src:endpoint ->
  src_size:float ->
  dst:endpoint ->
  dst_size:float ->
  on_delivered:(unit -> unit) ->
  unit ->
  unit
(** Book/charge the send on [src] now, schedule arrival, book/charge the
    receive on [dst], and call [on_delivered] once the receive completes
    (for a [Port]) or at arrival (otherwise).  [on_times] (observation
    only, called synchronously before the arrival is scheduled) reports
    when the message leaves the sender's port and when it reaches the
    receiver — together with the call time and the delivery time these
    bound the send/wire/receive legs that request tracing records; it
    must not schedule events or the run would diverge from an untraced
    one.
    @raise Invalid_argument on non-positive bandwidth, negative sizes or
    negative latency. *)
