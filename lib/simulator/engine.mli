(** Discrete-event simulation engine.

    A monotonically advancing clock driving a queue of timestamped
    callbacks.  Deterministic: same schedule calls, same execution order
    (ties fire in insertion order). *)

type t

val create : unit -> t

val now : t -> float
(** Current simulation time, seconds; starts at 0. *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** Enqueue a callback.  @raise Invalid_argument for a time in the past
    (before [now]) or NaN. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** [schedule_at ~time:(now + delay)].  @raise Invalid_argument on a
    negative delay. *)

val schedule_every : t -> interval:float -> until:float -> (now:float -> unit) -> unit
(** Self-rescheduling periodic callback at [now + interval],
    [now + 2*interval], ... while the tick time is [<= until].  Only one
    event sits in the queue at a time; the next tick is armed after the
    callback runs, so a tick that itself advances past [until] stops the
    chain.  @raise Invalid_argument unless [interval > 0]. *)

val pending : t -> int

type outcome = Exhausted  (** No events left. *)
             | Horizon_reached  (** Stopped at the time limit. *)
             | Event_limit  (** Stopped after [max_events]. *)

val run : ?until:float -> ?max_events:int -> t -> outcome
(** Process events in order.  [until] stops before executing any event
    later than the horizon and sets the clock to the horizon;
    [max_events] is a safety valve against runaway simulations. *)

val step : t -> bool
(** Execute the next event; false when empty. *)
