(** Simulated DIET-style middleware: a deployed hierarchy executing the
    two phases of Figure 1.

    Scheduling phase: the client's request enters the root agent, which
    books [Wreq], forwards down to every child, collects one reply per
    child, books [Wrep(d)], and answers up; servers book [Wpre] and reply
    with a performance prediction.  Service phase: the client contacts the
    selected server directly; the server books [Wapp] and responds.  Every
    computation and both ends of every message occupy the owning node's
    single port (see {!Resource}).

    Fault injection (optional, via {!Faults}): nodes crash and recover on
    a schedule, messages drop, links degrade.  Crashed nodes lose queued
    work and in-flight state; clients supervise the scheduling round trip
    with timeout and exponential-backoff retries; agents wait out a
    patience window per request, answer with the replies that arrived, and
    prune children that stay silent (failover), re-adopting them when they
    re-register after recovery.  A child pruned while it is alive — its
    recovery raced the strike window, or an agent was struck out because
    every child below it was down at once — notices on its next heartbeat
    and re-registers after a short fixed delay, so failover never
    permanently detaches a living element.  With {!Faults.none} every
    fault code path is bypassed and runs are bit-for-bit identical to
    pre-fault behaviour. *)

open Adept_platform

type selection =
  | Best_prediction
      (** DIET's policy with fresh monitoring: smallest predicted
          completion from the server's current state. *)
  | Round_robin  (** Each agent cycles through its children. *)
  | Random_child of Adept_util.Rng.t  (** Uniform child choice per agent. *)
  | Database
      (** Selection from the monitoring database (the paper's footnote 1:
          "a list of servers maintained in the database by frequent
          monitoring"): servers push load reports every
          [monitoring_period] seconds, each report costing its message
          transfer at both ends, and decisions use the last report —
          decayed by the time since — instead of fresh state.  Requires
          [monitoring_period]. *)

type fault_stats = {
  crashes : int;
  recoveries : int;
  messages_lost : int;  (** Dropped in transit or delivered to a corpse. *)
  timeouts : int;  (** Scheduling round trips that timed out and retried. *)
  abandoned : int;
      (** Requests given up on: retry budget exhausted or the service
          phase never answered. *)
  prunes : int;  (** Children removed from the routing tree by failover. *)
  rejoins : int;  (** Children re-adopted after recovery. *)
  recovery_latencies : float list;
      (** Seconds from each crash to its parent-side prune, in prune
          order. *)
}

type t

val deploy :
  ?trace:Trace.t ->
  ?obs:Adept_obs.Registry.t ->
  ?rtrace:Adept_obs.Request_trace.t ->
  ?selection:selection ->
  ?monitoring_period:float ->
  ?faults:Faults.t ->
  ?initial_dead:(Node.id * float) list ->
  engine:Engine.t ->
  params:Adept_model.Params.t ->
  platform:Platform.t ->
  Adept_hierarchy.Tree.t ->
  t
(** Instantiate resources for every node of the hierarchy.  The hierarchy
    must validate against the platform.  [obs] attaches the metrics
    registry: message counters by kind/role, per-node histograms of the
    booked compute steps ([Wreq], [Wrep(d)], [Wpre], service), observed
    server backlog at prediction time, and per-agent in-flight gauges —
    labeled by node id and hierarchy level.  Instrumentation only
    observes work the simulation already performs (it schedules no
    events), so runs are bit-identical with and without it; series are
    get-or-create, so a redeployed generation keeps accumulating into
    the same series.  [monitoring_period] (seconds,
    positive) starts the periodic load reports and is required by the
    [Database] selection.  [faults] (default {!Faults.none}) installs the
    crash/recovery schedule; fault events naming nodes outside the
    hierarchy, or scheduled before the engine's current time (a redeploy
    mid-run only sees what is still to come), are ignored.
    [initial_dead] (default empty; requires fault injection) seeds
    liveness for a hierarchy deployed mid-run: each [(node, crashed_at)]
    starts dead as of [crashed_at] — failover strikes it out, a pending
    recovery event revives it — without re-counting the crash the
    previous generation already recorded.  Entries naming nodes outside
    the hierarchy are ignored.
    [rtrace] attaches the per-request causal trace store: on sampled
    requests (see {!Adept_obs.Request_trace}) every Figure-1 hand-off —
    the three legs of each message, [Wreq], [Wpre], [Wrep(d)] and the
    service execution — is recorded as a parent-linked span.  Like
    [obs], tracing schedules no events and draws no random state, so
    runs are bit-identical with it attached, sampled at 0, or absent.
    @raise Invalid_argument otherwise. *)

val submit :
  t ->
  wapp:float ->
  ?rt:Adept_obs.Request_trace.handle ->
  ?on_failed:(unit -> unit) ->
  on_scheduled:(server:Node.id -> unit) ->
  unit ->
  unit
(** Inject one scheduling request at the root (from an [Instant] client
    endpoint); [on_scheduled] fires when the client receives the reply
    naming the selected server.  Under fault injection the round trip is
    supervised: on timeout the request is re-submitted with exponential
    backoff up to [max_retries] times, then [on_failed] fires (exactly one
    of the two callbacks runs).  Fault-free, [on_failed] never fires.
    [rt] (meaningful only with the deploy-time [rtrace]) is the request's
    open trace handle; the scheduling phase records its spans on it and
    parks the chain position for {!request_service} to resume. *)

val request_service :
  t ->
  server:Node.id ->
  ?rt:Adept_obs.Request_trace.handle ->
  ?on_failed:(unit -> unit) ->
  wapp:float ->
  on_done:(unit -> unit) ->
  unit ->
  unit
(** The service phase: direct client→server request of [wapp] MFlop.
    Under fault injection the phase is supervised by the schedule's
    [service_timeout]; if the response has not arrived by then [on_failed]
    fires and a late response is discarded (exactly one callback runs).
    [rt] continues the causal chain of the same handle passed to
    {!submit}.
    @raise Invalid_argument if [server] is not a server of the
    hierarchy. *)

val fault_stats : t -> fault_stats
(** Snapshot of the fault counters (all zero on fault-free runs). *)

val merge_fault_stats : fault_stats -> fault_stats -> fault_stats
(** Componentwise sum (latency lists concatenated in argument order) —
    aggregates the counters of successive hierarchy generations when a
    controller redeploys mid-run. *)

val is_alive : t -> Node.id -> bool
(** Whether the node is currently up (always [true] fault-free). *)

val alive_count : t -> int
(** Deployed elements (agents + servers) currently alive — the
    monitor's [adept_alive_nodes] gauge. *)

val crash_time : t -> Node.id -> float
(** When the node last went down (inherited across generations via
    [initial_dead]); meaningful only while [is_alive] is [false]. *)

val retire : t -> unit
(** Mark this hierarchy as superseded by a newer generation.  A retired
    middleware keeps draining its in-flight requests and keeps tracking
    node liveness (fault events still update it), but stops recording
    topology events — crashes, recoveries, prunes, rejoins — in its
    counters and trace, so that a run with several generations counts each
    event exactly once (in the generation that was current when it
    fired).  Request-outcome events (timeouts, abandons) of its own
    in-flight work are still recorded. *)

val set_recording : t -> bool -> unit
(** Flip the topology-event recording bit {!retire} clears.  A canary
    generation deploys and is immediately muted with
    [set_recording t false] — while it bakes, the generation still in
    charge is the one witness of every crash/recovery — and is flipped
    back on when the rollout promotes it. *)

val is_deployed : t -> Node.id -> bool
(** Whether the node is part of this hierarchy (has a deployed element).
    {!is_alive} and {!crash_time} are only meaningful for deployed nodes:
    a node outside the hierarchy is invisible to this generation's fault
    handling, so its liveness must be derived from the fault schedule
    instead. *)

val resource : t -> Node.id -> Resource.t
(** The simulated port of a deployed node.
    @raise Not_found for nodes outside the hierarchy. *)

val root : t -> Node.id
val server_ids : t -> Node.id list
val agent_ids : t -> Node.id list
val engine : t -> Engine.t
val trace : t -> Trace.t
