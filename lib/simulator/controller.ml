open Adept_platform
open Adept_hierarchy
module Planner = Adept.Planner
module Error = Adept.Error
module Params = Adept_model.Params
module Demand = Adept_model.Demand

type policy = Off | Eager | Hysteresis

let policy_name = function
  | Off -> "off"
  | Eager -> "eager"
  | Hysteresis -> "hysteresis"

type config = {
  policy : policy;
  strategy : Planner.strategy;
  sample_period : float;
  window : float;
  threshold : float;
  hold_time : float;
  cooldown : float;
  min_gain : float;
  max_replans : int;
  restart_latency : float;
  state_mbit : float;
  prefer_incremental : bool;
  replan_slack : float;
  rollout : Rollout.config;
}

let ( let* ) = Result.bind

let positive name v =
  if v <= 0.0 || not (Float.is_finite v) then
    Error
      (Error.invalid_input "Controller.config: %s must be positive and finite, got %g"
         name v)
  else Ok ()

let non_negative name v =
  if v < 0.0 || not (Float.is_finite v) then
    Error
      (Error.invalid_input
         "Controller.config: %s must be non-negative and finite, got %g" name v)
  else Ok ()

let config ?(strategy = Planner.Heuristic) ?(sample_period = 1.0) ?(window = 5.0)
    ?(threshold = 0.5) ?(hold_time = 3.0) ?(cooldown = 20.0) ?(min_gain = 0.05)
    ?(max_replans = 3) ?(restart_latency = 0.5) ?(state_mbit = 1.0)
    ?(prefer_incremental = true) ?(replan_slack = 0.15) ?(rollout = Rollout.off)
    policy =
  let* () = positive "sample_period" sample_period in
  let* () = positive "window" window in
  let* () =
    if window < sample_period then
      Error
        (Error.invalid_input
           "Controller.config: window (%g) must cover at least one sample period (%g)"
           window sample_period)
    else Ok ()
  in
  let* () =
    if threshold < 0.0 || threshold > 1.0 || Float.is_nan threshold then
      Error
        (Error.invalid_input "Controller.config: threshold must be in [0, 1], got %g"
           threshold)
    else Ok ()
  in
  let* () = non_negative "hold_time" hold_time in
  let* () = non_negative "cooldown" cooldown in
  let* () = non_negative "min_gain" min_gain in
  let* () =
    if max_replans < 0 then
      Error
        (Error.invalid_input "Controller.config: max_replans must be >= 0, got %d"
           max_replans)
    else Ok ()
  in
  let* () = non_negative "restart_latency" restart_latency in
  let* () = non_negative "state_mbit" state_mbit in
  let* () =
    if replan_slack < 0.0 || replan_slack >= 1.0 || Float.is_nan replan_slack then
      Error
        (Error.invalid_input "Controller.config: replan_slack must be in [0, 1), got %g"
           replan_slack)
    else Ok ()
  in
  Ok
    {
      policy;
      strategy;
      sample_period;
      window;
      threshold;
      hold_time;
      cooldown;
      min_gain;
      max_replans;
      restart_latency;
      state_mbit;
      prefer_incremental;
      replan_slack;
      rollout;
    }

type replan_record = {
  at : float;
  failed : Node.id list;
  observed : float;
  rho_before : float;
  rho_after : float;
  migration_cost : float;
  bottleneck : (Node.id * float) option;
  alerts : string list;
  mode : Planner.replan_mode;
  rollout : Rollout.record option;
}

(* Pre-resolved controller instruments (suppression counters are
   resolved per reason at suppression time — reasons are open-ended). *)
type ctrl_obs = {
  co_registry : Adept_obs.Registry.t;
  co_replans : Adept_obs.Counter.t;
  co_migration : Adept_obs.Histogram.t;
  co_window : Adept_obs.Gauge.t;
  co_degraded : Adept_obs.Counter.t;
}

let make_ctrl_obs registry =
  let module Obs = Adept_obs in
  {
    co_registry = registry;
    co_replans = Obs.Registry.counter registry Obs.Semconv.controller_replans_total;
    co_migration =
      Obs.Registry.histogram registry Obs.Semconv.controller_migration_seconds;
    co_window = Obs.Registry.gauge registry Obs.Semconv.controller_window_throughput;
    co_degraded =
      Obs.Registry.counter registry Obs.Semconv.controller_degraded_samples_total;
  }

(* A canary generation waiting on its bake verdict: the provisional
   middleware plus everything needed to finish the replan record once the
   rollout settles one way or the other. *)
type staging = {
  s_canary : Middleware.t;
  s_result : Planner.replan_result;
  s_mode : Planner.replan_mode;
  s_observed : float;
  s_cost : float;  (* forward migration window, seconds *)
  s_bottleneck : (Node.id * float) option;
  s_alerts : string list;
}

type t = {
  cfg : config;
  engine : Engine.t;
  params : Params.t;
  platform : Platform.t;
  wapp : float;
  demand : Demand.t;
  selection : Middleware.selection;
  monitoring_period : float option;
  faults : Faults.t;
  stats : Run_stats.t;
  trace : Trace.t;
  horizon : float;
  mutable middleware : Middleware.t;
  mutable retired : Middleware.t list;
  mutable tree : Tree.t;
  dead_since : (Node.id, float) Hashtbl.t;
      (* When each currently-dead tree node was first sampled dead;
         entries disappear on recovery.  Generation swaps keep the
         entries of nodes still dead in the new tree (seeded from the
         crash time when sampling missed the death). *)
  written_off : (Node.id, unit) Hashtbl.t;
      (* Nodes a past replan excluded from its hierarchy.  The full
         replan re-admits recovered ones implicitly (it plans over
         every survivor); the incremental patcher cannot — it only
         removes tree nodes — so the ones that are alive again are
         threaded to [Planner.replan_incremental ~recovered] for
         explicit re-admission.  Entries are dropped once the node
         serves in an enacted hierarchy again. *)
  mutable predicted_rho : float;
  mutable degraded_since : float option;
  mutable last_enact : float;
  mutable migration_until : float option;
  mutable enacted : replan_record list;  (* newest first *)
  rollout : Rollout.t;
  mutable staging : staging option;
  mutable observed_at_trigger : float;
      (* Windowed throughput at the trigger that started the rollout in
         flight — the old generation's share of the blended bake
         prediction. *)
  obs : ctrl_obs option;
  rtrace : Adept_obs.Request_trace.t option;
  alerts : Adept_obs.Alert.t option;
}

let middleware t = t.middleware

let tree t = t.tree

let records t = List.rev t.enacted

let replan_count t = List.length t.enacted

let predicted_rho t = t.predicted_rho

let is_migrating t =
  match t.migration_until with
  | Some until -> Engine.now t.engine < until
  | None -> false

let migration_ends t =
  match t.migration_until with
  | Some until -> until
  | None -> Engine.now t.engine

let rollout_phase t = Rollout.phase t.rollout

let rollout_active t = Rollout.active t.rollout

(* Which generation serves this client right now.  Only a canary client
   during the bake (or the promote window, while the rest of the fleet is
   still migrating over) sees the staged generation; everyone else stays
   on the hierarchy in charge.  With rollout [Off]/[Direct] the staging
   slot is never filled, so this is exactly [middleware t]. *)
let route t ~client =
  match t.staging with
  | Some s when Rollout.is_canary (Rollout.config_of t.rollout) ~client -> (
      match Rollout.phase t.rollout with
      | Rollout.Baking _ | Rollout.Promoting _ -> s.s_canary
      | Rollout.Idle | Rollout.Canary_migrating _ | Rollout.Rolling_back _ ->
          t.middleware)
  | Some _ | None -> t.middleware

(* When this client may issue again, [None] if it is free to go now.
   The legacy full-fleet pause ([Off]/[Direct], and the only pause those
   modes ever take) blocks everyone; canary phases pause only the side
   of the split that is actually moving: canary clients during their
   forward hop and during a rollback, the rest of the fleet during a
   promote.  Nobody pauses while the canary bakes. *)
let blocked_until t ~client =
  if is_migrating t then Some (migration_ends t)
  else
    let canary () = Rollout.is_canary (Rollout.config_of t.rollout) ~client in
    match Rollout.phase t.rollout with
    | Rollout.Idle | Rollout.Baking _ -> None
    | Rollout.Canary_migrating until | Rollout.Rolling_back until ->
        if canary () then Some until else None
    | Rollout.Promoting until -> if canary () then None else Some until

let fault_stats t =
  let staged =
    match t.staging with
    | Some s -> Middleware.fault_stats s.s_canary
    | None -> Middleware.fault_stats t.middleware
  in
  let base =
    match t.staging with
    | Some _ ->
        Middleware.merge_fault_stats staged (Middleware.fault_stats t.middleware)
    | None -> staged
  in
  List.fold_left
    (fun acc mw -> Middleware.merge_fault_stats acc (Middleware.fault_stats mw))
    base t.retired

(* Liveness of a node as the static fault schedule has it: the last
   crash/recovery at or before [now] wins, a node the schedule never
   names is up.  The middleware only tracks liveness for nodes it
   deployed, so this is the source of truth for everything off the
   running tree — the still-dead off-tree node that must stay out of the
   replan pool, and the recovered one that may rejoin it. *)
let schedule_status t id ~now =
  List.fold_left
    (fun acc ev ->
      if ev.Faults.node = id && ev.Faults.at <= now then
        match ev.Faults.kind with
        | Faults.Crash -> `Dead ev.Faults.at
        | Faults.Recover -> `Alive
      else acc)
    `Alive t.faults.Faults.node_events

(* Global liveness: the deployed generation's view where it has one,
   the schedule's everywhere else. *)
let node_alive t id ~now =
  if Middleware.is_deployed t.middleware id then
    Middleware.is_alive t.middleware id
  else match schedule_status t id ~now with `Dead _ -> false | `Alive -> true

(* What the monitor's model rules should predict against.  While a canary
   bakes, the fleet is split: a [canary_fraction] share runs on the staged
   hierarchy (model throughput [rho_after]) and the rest still limps along
   on the old one — whose honest short-term forecast is what it was
   actually observed delivering at the trigger, not its own healthy-state
   model.  Outside a bake this is just {!predicted_rho}. *)
let monitor_rho t =
  match (Rollout.phase t.rollout, t.staging) with
  | Rollout.Baking _, Some s ->
      let f = (Rollout.config_of t.rollout).Rollout.canary_fraction in
      (f *. s.s_result.Planner.rho_after)
      +. ((1.0 -. f) *. t.observed_at_trigger)
  | _ -> t.predicted_rho

(* Every state-machine transition lands in three places at once: the
   typed decision trail (golden-pinned timeline), the run's tracer (the
   monitor timeline and dashboard read it), and the transition counter.
   All three are pure observation — no events, no RNG. *)
let rollout_transition t ~at ?(alerts = []) step =
  Rollout.push t.rollout ~at ~alerts step;
  (match Trace.tracer t.trace with
  | Some tracer ->
      Adept_obs.Tracer.event tracer ~at
        ~labels:
          (Adept_obs.Label.v
             ((Adept_obs.Semconv.l_step, Rollout.step_name step)
             ::
             (match alerts with
             | [] -> []
             | a -> [ ("alerts", String.concat " " a) ])))
        "rollout"
  | None -> ());
  match t.obs with
  | Some o ->
      Adept_obs.Counter.inc
        (Adept_obs.Registry.counter o.co_registry
           ~labels:
             (Adept_obs.Label.v
                [ (Adept_obs.Semconv.l_step, Rollout.step_name step) ])
           Adept_obs.Semconv.rollout_transitions_total)
  | None -> ()

(* Agents and servers restart in parallel and each pulls its state over
   the link to its new parent, so the pause the clients see is the restart
   latency plus the slowest single transfer — not the sum.  The root has
   no parent and restarts from local state. *)
let migration_cost t tree =
  let link_latency = Link.latency (Platform.link t.platform) in
  let xfer parent node =
    match parent with
    | None -> 0.0
    | Some p ->
        link_latency
        +. (t.cfg.state_mbit
            /. Platform.bandwidth t.platform (Node.id p) (Node.id node))
  in
  let rec walk parent acc = function
    | Tree.Server n -> Float.max acc (xfer parent n)
    | Tree.Agent (n, children) ->
        List.fold_left (walk (Some n)) (Float.max acc (xfer parent n)) children
  in
  t.cfg.restart_latency +. walk None 0.0 tree

let record_suppressed t reason =
  Trace.record_failure t.trace ~time:(Engine.now t.engine)
    (Trace.Replan_suppressed reason);
  match t.obs with
  | Some o ->
      Adept_obs.Counter.inc
        (Adept_obs.Registry.counter o.co_registry
           ~labels:(Adept_obs.Label.v [ (Adept_obs.Semconv.l_reason, reason) ])
           Adept_obs.Semconv.controller_suppressed_total)
  | None -> ()

(* The write-off ledger follows the hierarchy that actually serves: a
   replan that got suppressed (gain guard, dead agent mid-migration) or
   rolled back wrote nothing off, so the ledger only moves when a new
   generation takes charge — its exclusions join, anything it serves
   again leaves. *)
let note_written_off t (r : Planner.replan_result) =
  List.iter (fun id -> Hashtbl.replace t.written_off id ()) r.Planner.failed;
  List.iter
    (fun n -> Hashtbl.remove t.written_off (Node.id n))
    (Tree.nodes r.Planner.replanned.Planner.tree)

(* Migration finished: swap generations — unless an agent the new
   hierarchy is built around died while it was being set up, in which
   case the migration is abandoned (its disruption was already paid) and
   the old hierarchy stays in charge.  A server that died meanwhile is
   not fatal: the fresh generation's failover strikes it out and rejoins
   it on recovery, exactly as it would mid-run. *)
let enact t (r : Planner.replan_result) ~mode ~observed ~cost ~bottleneck ~alerts () =
  let now = Engine.now t.engine in
  t.migration_until <- None;
  let new_tree = r.Planner.replanned.Planner.tree in
  let structural =
    match Tree.agents new_tree with
    | [] -> [ Tree.root_node new_tree ]
    | agents -> agents
  in
  let dead_agent =
    List.exists (fun n -> not (node_alive t (Node.id n) ~now)) structural
  in
  if dead_agent then record_suppressed t "agent-died-mid-migration"
  else begin
    (* Liveness carries across the swap: a node kept in the new tree
       despite being down right now (dead for less than the hold under
       [Hysteresis], or crashed during the migration window) must start
       the new generation dead — otherwise it would serve requests for
       the rest of its downtime and its pending recovery event would be a
       no-op.  Its [dead_since] clock survives too, timestamped at the
       first sample that saw it dead (or its actual crash time if it died
       while sampling was paused by the migration), so the next replan's
       hold does not restart at migration end. *)
    let inherited_dead =
      List.filter_map
        (fun n ->
          let id = Node.id n in
          if Middleware.is_deployed t.middleware id then
            if Middleware.is_alive t.middleware id then None
            else Some (id, Middleware.crash_time t.middleware id)
          else
            (* Re-admitted node the old generation never deployed: its
               liveness comes from the schedule, not the stale default. *)
            match schedule_status t id ~now with
            | `Dead crashed -> Some (id, crashed)
            | `Alive -> None)
        (Tree.nodes new_tree)
    in
    let dead_since =
      List.map
        (fun (id, crashed) ->
          (id, Option.value ~default:crashed (Hashtbl.find_opt t.dead_since id)))
        inherited_dead
    in
    Hashtbl.reset t.dead_since;
    List.iter (fun (id, since) -> Hashtbl.replace t.dead_since id since) dead_since;
    Middleware.retire t.middleware;
    t.retired <- t.middleware :: t.retired;
    t.middleware <-
      Middleware.deploy ~trace:t.trace
        ?obs:(Option.map (fun o -> o.co_registry) t.obs)
        ?rtrace:t.rtrace ~selection:t.selection
        ?monitoring_period:t.monitoring_period
        ~faults:t.faults ~engine:t.engine ~params:t.params ~platform:t.platform
        ~initial_dead:inherited_dead new_tree;
    t.tree <- new_tree;
    note_written_off t r;
    t.predicted_rho <- r.Planner.rho_after;
    t.last_enact <- now;
    t.degraded_since <- None;
    Run_stats.record_replan t.stats;
    (match t.obs with
    | Some o ->
        Adept_obs.Counter.inc o.co_replans;
        Adept_obs.Histogram.record o.co_migration cost
    | None -> ());
    Trace.record_failure t.trace ~time:now (Trace.Replan_enacted r.Planner.failed);
    (* [Direct] mode is behaviourally identical to [Off] but leaves the
       one-shot swap in the decision trail — tracer events only, nothing
       the trace fingerprint hashes, so the bit-identity regression holds. *)
    let rollout =
      match (Rollout.config_of t.rollout).Rollout.mode with
      | Rollout.Direct ->
          rollout_transition t ~at:now ~alerts Rollout.Direct_swap;
          Some (Rollout.snapshot t.rollout ~outcome:Rollout.Direct_enacted)
      | Rollout.Off | Rollout.Canary -> None
    in
    t.enacted <-
      {
        at = now;
        failed = r.Planner.failed;
        observed;
        rho_before = r.Planner.rho_before;
        rho_after = r.Planner.rho_after;
        migration_cost = cost;
        bottleneck;
        alerts;
        mode;
        rollout;
      }
      :: t.enacted
  end

(* ---------- canary rollout state machine ----------

   Canary mode replaces the one-shot swap with four phases driven off the
   engine clock: [Canary_migrating] (only the canary share of clients
   pauses for the forward migration window), [Baking] (both generations
   serve, the monitor's alert rules are the judges), then either
   [Promoting] (the rest of the fleet pays its migration pause and the
   old generation retires) or [Rolling_back] (the canary clients pay the
   reverse hop back onto the old generation, which never stopped serving
   and is restored bit-identically because it was never touched). *)

(* The canary passed its bake: the staged generation takes charge.  This
   is the canary-mode twin of [enact] — the hierarchy is already deployed
   and warm, so the swap is bookkeeping: unmute its topology recording,
   retire the old generation, carry liveness and hold clocks over. *)
let finish_promote t (s : staging) () =
  let now = Engine.now t.engine in
  let r = s.s_result in
  let new_tree = r.Planner.replanned.Planner.tree in
  Middleware.retire t.middleware;
  t.retired <- t.middleware :: t.retired;
  Middleware.set_recording s.s_canary true;
  t.middleware <- s.s_canary;
  t.tree <- new_tree;
  note_written_off t r;
  let dead =
    List.filter_map
      (fun n ->
        let id = Node.id n in
        if Middleware.is_alive s.s_canary id then None
        else
          let crashed = Middleware.crash_time s.s_canary id in
          Some (id, Option.value ~default:crashed (Hashtbl.find_opt t.dead_since id)))
      (Tree.nodes new_tree)
  in
  Hashtbl.reset t.dead_since;
  List.iter (fun (id, since) -> Hashtbl.replace t.dead_since id since) dead;
  t.predicted_rho <- r.Planner.rho_after;
  t.last_enact <- now;
  t.degraded_since <- None;
  t.staging <- None;
  Run_stats.record_replan t.stats;
  (match t.obs with
  | Some o ->
      Adept_obs.Counter.inc o.co_replans;
      Adept_obs.Histogram.record o.co_migration s.s_cost
  | None -> ());
  Trace.record_failure t.trace ~time:now (Trace.Replan_enacted r.Planner.failed);
  rollout_transition t ~at:now Rollout.Promote_finished;
  Rollout.set_phase t.rollout Rollout.Idle;
  let rollout = Rollout.snapshot t.rollout ~outcome:Rollout.Promoted in
  t.enacted <-
    {
      at = now;
      failed = r.Planner.failed;
      observed = s.s_observed;
      rho_before = r.Planner.rho_before;
      rho_after = r.Planner.rho_after;
      migration_cost = s.s_cost;
      bottleneck = s.s_bottleneck;
      alerts = s.s_alerts;
      mode = s.s_mode;
      rollout = Some rollout;
    }
    :: t.enacted

let promote t (s : staging) ~now =
  (* The remaining (1 - fraction) of the fleet migrates onto the same
     tree the canary clients already crossed to, so the promote window
     is priced by the same forward cost. *)
  Rollout.set_phase t.rollout (Rollout.Promoting (now +. s.s_cost));
  rollout_transition t ~at:now Rollout.Promote_started;
  Engine.schedule t.engine ~delay:s.s_cost (finish_promote t s)

(* The reverse hop landed: the canary generation is abandoned.  The old
   generation was never retired, never paused and kept every client
   outside the canary fraction, so restoring it is a pure routing flip —
   its liveness, hold clocks and in-flight work are exactly what they
   would have been had the rollout never happened. *)
let finish_rollback t (s : staging) ~back_cost () =
  let now = Engine.now t.engine in
  let r = s.s_result in
  Middleware.retire s.s_canary;
  t.retired <- s.s_canary :: t.retired;
  t.staging <- None;
  (* The rolled-back plan spends a budget slot and starts the cooldown:
     without both, the very next degraded sample would stage the same
     rejected hierarchy again. *)
  t.last_enact <- now;
  t.degraded_since <- None;
  rollout_transition t ~at:now Rollout.Rollback_finished;
  Rollout.set_phase t.rollout Rollout.Idle;
  let rollout = Rollout.snapshot t.rollout ~outcome:Rollout.Rolled_back in
  t.enacted <-
    {
      at = now;
      failed = r.Planner.failed;
      observed = s.s_observed;
      rho_before = r.Planner.rho_before;
      rho_after = r.Planner.rho_after;
      migration_cost = s.s_cost +. back_cost;
      bottleneck = s.s_bottleneck;
      alerts = s.s_alerts;
      mode = s.s_mode;
      rollout = Some rollout;
    }
    :: t.enacted

let rollback t (s : staging) ~now ~cited =
  (* The reverse migration is priced by the same restart + state-transfer
     model as the forward one, against the tree being restored. *)
  let back_cost = migration_cost t t.tree in
  record_suppressed t "canary-rolled-back";
  Rollout.set_phase t.rollout (Rollout.Rolling_back (now +. back_cost));
  rollout_transition t ~at:now ~alerts:cited Rollout.Rollback_started;
  Engine.schedule t.engine ~delay:back_cost (finish_rollback t s ~back_cost)

(* Bake deadline: the verdict.  Any watched alert rule still firing
   condemns the canary, as does the death of one of its structural
   agents during the bake (promoting a hierarchy built around a corpse
   is what the legacy path's mid-migration guard prevents). *)
let finish_bake t () =
  match t.staging with
  | None -> ()
  | Some s ->
      let now = Engine.now t.engine in
      let new_tree = s.s_result.Planner.replanned.Planner.tree in
      let structural =
        match Tree.agents new_tree with
        | [] -> [ Tree.root_node new_tree ]
        | agents -> agents
      in
      let canary_agent_died =
        List.exists
          (fun n -> not (Middleware.is_alive s.s_canary (Node.id n)))
          structural
      in
      let firing =
        match t.alerts with
        | Some a -> Adept_obs.Alert.firing_names a
        | None -> []
      in
      let verdict =
        if canary_agent_died then `Rollback [ "canary-agent-died" ]
        else Rollout.decide (Rollout.config_of t.rollout) ~firing
      in
      (match verdict with
      | `Promote -> promote t s ~now
      | `Rollback cited -> rollback t s ~now ~cited)

(* Forward migration window over: deploy the canary generation and start
   the bake.  The canary deploys muted ([Middleware.set_recording]) — the
   old generation is still in charge and is the one witness of every
   topology event — and inherits global liveness, so nodes dead right now
   start dead in it too. *)
let begin_bake t (r : Planner.replan_result) ~mode ~observed ~cost ~bottleneck
    ~alerts () =
  let now = Engine.now t.engine in
  let new_tree = r.Planner.replanned.Planner.tree in
  let structural =
    match Tree.agents new_tree with
    | [] -> [ Tree.root_node new_tree ]
    | agents -> agents
  in
  let dead_agent =
    List.exists (fun n -> not (node_alive t (Node.id n) ~now)) structural
  in
  if dead_agent then begin
    (* Same abandonment as the legacy path: the canary clients' pause was
       already paid, the old hierarchy stays in charge, and the aborted
       trail is discarded rather than recorded as a finished rollout. *)
    Rollout.set_phase t.rollout Rollout.Idle;
    Rollout.reset_trail t.rollout;
    record_suppressed t "agent-died-mid-migration"
  end
  else begin
    let inherited_dead =
      List.filter_map
        (fun n ->
          let id = Node.id n in
          if node_alive t id ~now then None
          else
            let crashed =
              if Middleware.is_deployed t.middleware id then
                Middleware.crash_time t.middleware id
              else
                match schedule_status t id ~now with
                | `Dead crashed -> crashed
                | `Alive -> now
            in
            Some (id, crashed))
        (Tree.nodes new_tree)
    in
    let canary =
      Middleware.deploy ~trace:t.trace
        ?obs:(Option.map (fun o -> o.co_registry) t.obs)
        ?rtrace:t.rtrace ~selection:t.selection
        ?monitoring_period:t.monitoring_period ~faults:t.faults ~engine:t.engine
        ~params:t.params ~platform:t.platform ~initial_dead:inherited_dead
        new_tree
    in
    Middleware.set_recording canary false;
    t.staging <-
      Some
        {
          s_canary = canary;
          s_result = r;
          s_mode = mode;
          s_observed = observed;
          s_cost = cost;
          s_bottleneck = bottleneck;
          s_alerts = alerts;
        };
    let bake = (Rollout.config_of t.rollout).Rollout.bake_window in
    Rollout.set_phase t.rollout (Rollout.Baking (now +. bake));
    rollout_transition t ~at:now Rollout.Canary_enacted;
    Engine.schedule t.engine ~delay:bake (finish_bake t)
  end

(* A sustained-degradation trigger survived the policy's timing guards;
   decide whether a replan is worth enacting.  Every veto leaves a
   [Replan_suppressed] breadcrumb in the trace. *)
let consider t ~now ~observed =
  Trace.record_failure t.trace ~time:now Trace.Replan_triggered;
  if replan_count t >= t.cfg.max_replans then
    record_suppressed t "replan-budget-exhausted"
  else if t.cfg.policy = Hysteresis && now -. t.last_enact < t.cfg.cooldown then
    record_suppressed t "cooldown"
  else begin
    (* Which dead nodes count as failed is itself policy: [Eager] writes
       off whatever is down at this instant, [Hysteresis] only nodes that
       stayed dead through the whole hold — a node mid-repair is not worth
       excluding from the next hierarchy. *)
    let node_hold =
      match t.cfg.policy with Hysteresis -> t.cfg.hold_time | Off | Eager -> 0.0
    in
    let failed =
      List.filter_map
        (fun n ->
          let id = Node.id n in
          if Middleware.is_alive t.middleware id then None
          else
            match Hashtbl.find_opt t.dead_since id with
            | Some since when now -. since >= node_hold -. 1e-9 -> Some id
            | Some _ | None -> None)
        (Tree.nodes t.tree)
    in
    if failed = [] then record_suppressed t "no-dead-nodes"
    else
      (* Nodes outside the running tree are invisible to the middleware's
         fault handling, so their liveness comes from the fault schedule:
         the full replan plans over the platform minus [failed], which
         both keeps a still-dead off-tree node out of the candidate pool
         and silently re-admits one that recovered since it was written
         off.  Only dead {e tree} nodes trigger (above) — a node already
         written off is not a new reason to replan — but once a replan is
         going ahead the off-tree dead join the exclusion list.  For the
         incremental path the extra ids are no-ops (the patch only
         removes tree nodes) but still tighten its survivor bound. *)
      let failed =
        let in_tree id =
          List.exists (fun n -> Node.id n = id) (Tree.nodes t.tree)
        in
        failed
        @ List.filter_map
            (fun n ->
              let id = Node.id n in
              if in_tree id then None
              else
                match schedule_status t id ~now with
                | `Dead _ -> Some id
                | `Alive -> None)
            (Platform.nodes t.platform)
      in
      (* The planner first tries to patch the running hierarchy in place
         (cheap, structure-preserving) and only replans from scratch when
         the patch's predicted throughput trails the survivor bound by
         more than the configured slack — unless incremental planning is
         switched off, in which case every replan is a full one. *)
      (* Written-off nodes that came back to life are re-admission
         candidates for the incremental patcher (the full replan needs no
         hint: it plans over every survivor).  Liveness comes from the
         fault schedule — these nodes are off the running tree, invisible
         to the middleware. *)
      let recovered =
        Hashtbl.fold
          (fun id () acc ->
            if
              (not (List.mem id failed))
              && (not (Tree.mem t.tree id))
              && node_alive t id ~now
            then id :: acc
            else acc)
          t.written_off []
        |> List.sort Int.compare
      in
      match
        if t.cfg.prefer_incremental then
          Planner.replan_incremental t.cfg.strategy t.params ~platform:t.platform
            ~wapp:t.wapp ~demand:t.demand ~failed ~recovered ~previous:t.tree
            ~slack:t.cfg.replan_slack ()
        else
          Result.map
            (fun r -> (r, Planner.Full "incremental-disabled"))
            (Planner.replan t.cfg.strategy t.params ~platform:t.platform ~wapp:t.wapp
               ~demand:t.demand ~failed ~reference:t.tree ())
      with
      | Error e -> record_suppressed t (Error.to_string e)
      | Ok (r, mode) ->
          (* The gain guard compares the replanned hierarchy's model
             throughput against what is actually being observed: replacing
             a limping deployment is only worth the migration pause if the
             model predicts a real improvement. *)
          if r.Planner.rho_after <= observed *. (1.0 +. t.cfg.min_gain) then
            record_suppressed t "insufficient-gain"
          else begin
            let cost = migration_cost t r.Planner.replanned.Planner.tree in
            (* Where the time actually went: the element carrying the most
               critical-path seconds across the traces collected so far.
               Purely a breadcrumb — the replan itself is driven by the
               model, but the record shows what the measurement blamed. *)
            let bottleneck =
              Option.bind t.rtrace Adept_obs.Request_trace.hottest_element
            in
            (* The monitor's view of why: whatever alert rules are firing
               at the trigger instant go into the record, so a replan can
               cite e.g. [model-drift] as its observable cause. *)
            let alerts =
              match t.alerts with
              | Some a -> Adept_obs.Alert.firing_names a
              | None -> []
            in
            (* How this replan was planned: patched in place or rebuilt
               from scratch (and why the patch was rejected, if so). *)
            (match Trace.tracer t.trace with
            | Some tracer ->
                Adept_obs.Tracer.event tracer ~at:now
                  ~labels:
                    (Adept_obs.Label.v
                       (("mode", Planner.replan_mode_name mode)
                       ::
                       (match Planner.replan_fallback_reason mode with
                       | Some reason -> [ ("reason", reason) ]
                       | None -> [])))
                  "replan-mode"
            | None -> ());
            (match (bottleneck, Trace.tracer t.trace) with
            | Some (node, seconds), Some tracer ->
                Adept_obs.Tracer.event tracer ~at:now
                  ~labels:
                    (Adept_obs.Label.v
                       [
                         ("node", string_of_int node);
                         ("critical_path_seconds", Printf.sprintf "%.6f" seconds);
                       ])
                  "replan-bottleneck"
            | _ -> ());
            match (Rollout.config_of t.rollout).Rollout.mode with
            | Rollout.Off | Rollout.Direct ->
                (* The one-shot swap: the whole fleet pauses for the
                   migration window and the new generation takes over at
                   its end. *)
                t.migration_until <- Some (now +. cost);
                (* The migration window as a span in the run's trace. *)
                let span =
                  Option.map
                    (fun tracer ->
                      ( tracer,
                        Adept_obs.Tracer.span_start tracer ~at:now
                          ~labels:
                            (Adept_obs.Label.v
                               [
                                 ( "failed",
                                   String.concat " "
                                     (List.map string_of_int failed) );
                               ])
                          "migration" ))
                    (Trace.tracer t.trace)
                in
                Engine.schedule t.engine ~delay:cost (fun () ->
                    (match span with
                    | Some (tracer, sp) ->
                        Adept_obs.Tracer.span_end tracer ~at:(Engine.now t.engine)
                          sp
                    | None -> ());
                    enact t r ~mode ~observed ~cost ~bottleneck ~alerts ())
            | Rollout.Canary ->
                (* Staged enactment: only the canary share of the fleet
                   pauses for the forward hop; the bake, verdict and
                   final swap (or rollback) play out from [begin_bake]
                   onwards. *)
                t.observed_at_trigger <- observed;
                Rollout.set_phase t.rollout
                  (Rollout.Canary_migrating (now +. cost));
                rollout_transition t ~at:now ~alerts Rollout.Canary_started;
                Engine.schedule t.engine ~delay:cost
                  (begin_bake t r ~mode ~observed ~cost ~bottleneck ~alerts)
          end
  end

let note_node_states t ~now =
  List.iter
    (fun n ->
      let id = Node.id n in
      if Middleware.is_alive t.middleware id then Hashtbl.remove t.dead_since id
      else if not (Hashtbl.mem t.dead_since id) then Hashtbl.replace t.dead_since id now)
    (Tree.nodes t.tree)

let rec tick t () =
  let now = Engine.now t.engine in
  (* Sampling pauses for the legacy full-fleet migration window and for
     every rollout phase: mid-rollout the fleet is split across two
     generations, so a window sample is not comparable to either model,
     and a nested trigger would race the state machine. *)
  (if not (is_migrating t) && not (Rollout.active t.rollout) then begin
     note_node_states t ~now;
     let t0 = Float.max 0.0 (now -. t.cfg.window) in
     if now > t0 then begin
       let observed = Run_stats.throughput t.stats ~t0 ~t1:now in
       (match t.obs with
       | Some o -> Adept_obs.Gauge.set o.co_window observed
       | None -> ());
       if observed < t.cfg.threshold *. t.predicted_rho then begin
         Run_stats.record_degraded t.stats ~seconds:t.cfg.sample_period;
         (match t.obs with
         | Some o -> Adept_obs.Counter.inc o.co_degraded
         | None -> ());
         (if t.degraded_since = None then t.degraded_since <- Some now);
         match t.cfg.policy with
         | Off -> ()
         | Eager -> consider t ~now ~observed
         | Hysteresis ->
             (match t.degraded_since with
             | Some since when now -. since >= t.cfg.hold_time -. 1e-9 ->
                 consider t ~now ~observed
             | Some _ | None -> ())
       end
       else t.degraded_since <- None
     end
   end);
  if now +. t.cfg.sample_period <= t.horizon then
    Engine.schedule t.engine ~delay:t.cfg.sample_period (tick t)

let create cfg ~engine ~params ~platform ~wapp ~demand ~selection
    ?monitoring_period ~faults ~stats ~trace ?obs ?rtrace ?alerts ~horizon
    ~middleware tree =
  let t =
    {
      cfg;
      engine;
      params;
      platform;
      wapp;
      demand;
      selection;
      monitoring_period;
      faults;
      stats;
      trace;
      horizon;
      middleware;
      retired = [];
      tree;
      predicted_rho = Adept.Evaluate.rho_hetero params ~platform ~wapp tree;
      degraded_since = None;
      last_enact = Float.neg_infinity;
      migration_until = None;
      enacted = [];
      rollout = Rollout.create cfg.rollout;
      staging = None;
      observed_at_trigger = 0.0;
      dead_since = Hashtbl.create 16;
      written_off = Hashtbl.create 16;
      obs = Option.map make_ctrl_obs obs;
      rtrace;
      alerts;
    }
  in
  Engine.schedule engine ~delay:cfg.sample_period (tick t);
  t

let pp_record ppf r =
  Format.fprintf ppf
    "t=%.2fs: %d node(s) out, observed %.2f req/s, rho %.2f -> %.2f, migration %.3fs, %s%s"
    r.at (List.length r.failed) r.observed r.rho_before r.rho_after r.migration_cost
    (Planner.replan_mode_name r.mode)
    (match Planner.replan_fallback_reason r.mode with
    | Some reason -> " (" ^ reason ^ ")"
    | None -> "");
  (match r.bottleneck with
  | Some (node, seconds) ->
      Format.fprintf ppf ", bottleneck node %d (%.3fs on critical path)" node seconds
  | None -> ());
  (match r.alerts with
  | [] -> ()
  | alerts -> Format.fprintf ppf ", alerts [%s]" (String.concat "; " alerts));
  match r.rollout with
  | Some ro ->
      Format.fprintf ppf ", rollout %s (canary %g%%, bake %gs, %d steps)"
        (Rollout.outcome_name ro.Rollout.outcome)
        (100.0 *. ro.Rollout.canary_fraction)
        ro.Rollout.bake_window
        (List.length ro.Rollout.trail)
  | None -> ()
