open Adept_platform
open Adept_hierarchy
module Planner = Adept.Planner
module Error = Adept.Error
module Params = Adept_model.Params
module Demand = Adept_model.Demand

type policy = Off | Eager | Hysteresis

let policy_name = function
  | Off -> "off"
  | Eager -> "eager"
  | Hysteresis -> "hysteresis"

type config = {
  policy : policy;
  strategy : Planner.strategy;
  sample_period : float;
  window : float;
  threshold : float;
  hold_time : float;
  cooldown : float;
  min_gain : float;
  max_replans : int;
  restart_latency : float;
  state_mbit : float;
  prefer_incremental : bool;
  replan_slack : float;
}

let ( let* ) = Result.bind

let positive name v =
  if v <= 0.0 || not (Float.is_finite v) then
    Error
      (Error.invalid_input "Controller.config: %s must be positive and finite, got %g"
         name v)
  else Ok ()

let non_negative name v =
  if v < 0.0 || not (Float.is_finite v) then
    Error
      (Error.invalid_input
         "Controller.config: %s must be non-negative and finite, got %g" name v)
  else Ok ()

let config ?(strategy = Planner.Heuristic) ?(sample_period = 1.0) ?(window = 5.0)
    ?(threshold = 0.5) ?(hold_time = 3.0) ?(cooldown = 20.0) ?(min_gain = 0.05)
    ?(max_replans = 3) ?(restart_latency = 0.5) ?(state_mbit = 1.0)
    ?(prefer_incremental = true) ?(replan_slack = 0.15) policy =
  let* () = positive "sample_period" sample_period in
  let* () = positive "window" window in
  let* () =
    if window < sample_period then
      Error
        (Error.invalid_input
           "Controller.config: window (%g) must cover at least one sample period (%g)"
           window sample_period)
    else Ok ()
  in
  let* () =
    if threshold < 0.0 || threshold > 1.0 || Float.is_nan threshold then
      Error
        (Error.invalid_input "Controller.config: threshold must be in [0, 1], got %g"
           threshold)
    else Ok ()
  in
  let* () = non_negative "hold_time" hold_time in
  let* () = non_negative "cooldown" cooldown in
  let* () = non_negative "min_gain" min_gain in
  let* () =
    if max_replans < 0 then
      Error
        (Error.invalid_input "Controller.config: max_replans must be >= 0, got %d"
           max_replans)
    else Ok ()
  in
  let* () = non_negative "restart_latency" restart_latency in
  let* () = non_negative "state_mbit" state_mbit in
  let* () =
    if replan_slack < 0.0 || replan_slack >= 1.0 || Float.is_nan replan_slack then
      Error
        (Error.invalid_input "Controller.config: replan_slack must be in [0, 1), got %g"
           replan_slack)
    else Ok ()
  in
  Ok
    {
      policy;
      strategy;
      sample_period;
      window;
      threshold;
      hold_time;
      cooldown;
      min_gain;
      max_replans;
      restart_latency;
      state_mbit;
      prefer_incremental;
      replan_slack;
    }

type replan_record = {
  at : float;
  failed : Node.id list;
  observed : float;
  rho_before : float;
  rho_after : float;
  migration_cost : float;
  bottleneck : (Node.id * float) option;
  alerts : string list;
  mode : Planner.replan_mode;
}

(* Pre-resolved controller instruments (suppression counters are
   resolved per reason at suppression time — reasons are open-ended). *)
type ctrl_obs = {
  co_registry : Adept_obs.Registry.t;
  co_replans : Adept_obs.Counter.t;
  co_migration : Adept_obs.Histogram.t;
  co_window : Adept_obs.Gauge.t;
  co_degraded : Adept_obs.Counter.t;
}

let make_ctrl_obs registry =
  let module Obs = Adept_obs in
  {
    co_registry = registry;
    co_replans = Obs.Registry.counter registry Obs.Semconv.controller_replans_total;
    co_migration =
      Obs.Registry.histogram registry Obs.Semconv.controller_migration_seconds;
    co_window = Obs.Registry.gauge registry Obs.Semconv.controller_window_throughput;
    co_degraded =
      Obs.Registry.counter registry Obs.Semconv.controller_degraded_samples_total;
  }

type t = {
  cfg : config;
  engine : Engine.t;
  params : Params.t;
  platform : Platform.t;
  wapp : float;
  demand : Demand.t;
  selection : Middleware.selection;
  monitoring_period : float option;
  faults : Faults.t;
  stats : Run_stats.t;
  trace : Trace.t;
  horizon : float;
  mutable middleware : Middleware.t;
  mutable retired : Middleware.t list;
  mutable tree : Tree.t;
  dead_since : (Node.id, float) Hashtbl.t;
      (* When each currently-dead tree node was first sampled dead;
         entries disappear on recovery.  Generation swaps keep the
         entries of nodes still dead in the new tree (seeded from the
         crash time when sampling missed the death). *)
  mutable predicted_rho : float;
  mutable degraded_since : float option;
  mutable last_enact : float;
  mutable migration_until : float option;
  mutable enacted : replan_record list;  (* newest first *)
  obs : ctrl_obs option;
  rtrace : Adept_obs.Request_trace.t option;
  alerts : Adept_obs.Alert.t option;
}

let middleware t = t.middleware

let tree t = t.tree

let records t = List.rev t.enacted

let replan_count t = List.length t.enacted

let predicted_rho t = t.predicted_rho

let is_migrating t =
  match t.migration_until with
  | Some until -> Engine.now t.engine < until
  | None -> false

let migration_ends t =
  match t.migration_until with
  | Some until -> until
  | None -> Engine.now t.engine

let fault_stats t =
  List.fold_left
    (fun acc mw -> Middleware.merge_fault_stats acc (Middleware.fault_stats mw))
    (Middleware.fault_stats t.middleware)
    t.retired

(* Agents and servers restart in parallel and each pulls its state over
   the link to its new parent, so the pause the clients see is the restart
   latency plus the slowest single transfer — not the sum.  The root has
   no parent and restarts from local state. *)
let migration_cost t tree =
  let link_latency = Link.latency (Platform.link t.platform) in
  let xfer parent node =
    match parent with
    | None -> 0.0
    | Some p ->
        link_latency
        +. (t.cfg.state_mbit
            /. Platform.bandwidth t.platform (Node.id p) (Node.id node))
  in
  let rec walk parent acc = function
    | Tree.Server n -> Float.max acc (xfer parent n)
    | Tree.Agent (n, children) ->
        List.fold_left (walk (Some n)) (Float.max acc (xfer parent n)) children
  in
  t.cfg.restart_latency +. walk None 0.0 tree

let record_suppressed t reason =
  Trace.record_failure t.trace ~time:(Engine.now t.engine)
    (Trace.Replan_suppressed reason);
  match t.obs with
  | Some o ->
      Adept_obs.Counter.inc
        (Adept_obs.Registry.counter o.co_registry
           ~labels:(Adept_obs.Label.v [ (Adept_obs.Semconv.l_reason, reason) ])
           Adept_obs.Semconv.controller_suppressed_total)
  | None -> ()

(* Migration finished: swap generations — unless an agent the new
   hierarchy is built around died while it was being set up, in which
   case the migration is abandoned (its disruption was already paid) and
   the old hierarchy stays in charge.  A server that died meanwhile is
   not fatal: the fresh generation's failover strikes it out and rejoins
   it on recovery, exactly as it would mid-run. *)
let enact t (r : Planner.replan_result) ~mode ~observed ~cost ~bottleneck ~alerts () =
  let now = Engine.now t.engine in
  t.migration_until <- None;
  let new_tree = r.Planner.replanned.Planner.tree in
  let structural =
    match Tree.agents new_tree with
    | [] -> [ Tree.root_node new_tree ]
    | agents -> agents
  in
  let dead_agent =
    List.exists
      (fun n -> not (Middleware.is_alive t.middleware (Node.id n)))
      structural
  in
  if dead_agent then record_suppressed t "agent-died-mid-migration"
  else begin
    (* Liveness carries across the swap: a node kept in the new tree
       despite being down right now (dead for less than the hold under
       [Hysteresis], or crashed during the migration window) must start
       the new generation dead — otherwise it would serve requests for
       the rest of its downtime and its pending recovery event would be a
       no-op.  Its [dead_since] clock survives too, timestamped at the
       first sample that saw it dead (or its actual crash time if it died
       while sampling was paused by the migration), so the next replan's
       hold does not restart at migration end. *)
    let inherited_dead =
      List.filter_map
        (fun n ->
          let id = Node.id n in
          if Middleware.is_alive t.middleware id then None
          else Some (id, Middleware.crash_time t.middleware id))
        (Tree.nodes new_tree)
    in
    let dead_since =
      List.map
        (fun (id, crashed) ->
          (id, Option.value ~default:crashed (Hashtbl.find_opt t.dead_since id)))
        inherited_dead
    in
    Hashtbl.reset t.dead_since;
    List.iter (fun (id, since) -> Hashtbl.replace t.dead_since id since) dead_since;
    Middleware.retire t.middleware;
    t.retired <- t.middleware :: t.retired;
    t.middleware <-
      Middleware.deploy ~trace:t.trace
        ?obs:(Option.map (fun o -> o.co_registry) t.obs)
        ?rtrace:t.rtrace ~selection:t.selection
        ?monitoring_period:t.monitoring_period
        ~faults:t.faults ~engine:t.engine ~params:t.params ~platform:t.platform
        ~initial_dead:inherited_dead new_tree;
    t.tree <- new_tree;
    t.predicted_rho <- r.Planner.rho_after;
    t.last_enact <- now;
    t.degraded_since <- None;
    Run_stats.record_replan t.stats;
    (match t.obs with
    | Some o ->
        Adept_obs.Counter.inc o.co_replans;
        Adept_obs.Histogram.record o.co_migration cost
    | None -> ());
    Trace.record_failure t.trace ~time:now (Trace.Replan_enacted r.Planner.failed);
    t.enacted <-
      {
        at = now;
        failed = r.Planner.failed;
        observed;
        rho_before = r.Planner.rho_before;
        rho_after = r.Planner.rho_after;
        migration_cost = cost;
        bottleneck;
        alerts;
        mode;
      }
      :: t.enacted
  end

(* A sustained-degradation trigger survived the policy's timing guards;
   decide whether a replan is worth enacting.  Every veto leaves a
   [Replan_suppressed] breadcrumb in the trace. *)
let consider t ~now ~observed =
  Trace.record_failure t.trace ~time:now Trace.Replan_triggered;
  if replan_count t >= t.cfg.max_replans then
    record_suppressed t "replan-budget-exhausted"
  else if t.cfg.policy = Hysteresis && now -. t.last_enact < t.cfg.cooldown then
    record_suppressed t "cooldown"
  else begin
    (* Which dead nodes count as failed is itself policy: [Eager] writes
       off whatever is down at this instant, [Hysteresis] only nodes that
       stayed dead through the whole hold — a node mid-repair is not worth
       excluding from the next hierarchy. *)
    let node_hold =
      match t.cfg.policy with Hysteresis -> t.cfg.hold_time | Off | Eager -> 0.0
    in
    let failed =
      List.filter_map
        (fun n ->
          let id = Node.id n in
          if Middleware.is_alive t.middleware id then None
          else
            match Hashtbl.find_opt t.dead_since id with
            | Some since when now -. since >= node_hold -. 1e-9 -> Some id
            | Some _ | None -> None)
        (Tree.nodes t.tree)
    in
    if failed = [] then record_suppressed t "no-dead-nodes"
    else
      (* The planner first tries to patch the running hierarchy in place
         (cheap, structure-preserving) and only replans from scratch when
         the patch's predicted throughput trails the survivor bound by
         more than the configured slack — unless incremental planning is
         switched off, in which case every replan is a full one. *)
      match
        if t.cfg.prefer_incremental then
          Planner.replan_incremental t.cfg.strategy t.params ~platform:t.platform
            ~wapp:t.wapp ~demand:t.demand ~failed ~previous:t.tree
            ~slack:t.cfg.replan_slack ()
        else
          Result.map
            (fun r -> (r, Planner.Full "incremental-disabled"))
            (Planner.replan t.cfg.strategy t.params ~platform:t.platform ~wapp:t.wapp
               ~demand:t.demand ~failed ~reference:t.tree ())
      with
      | Error e -> record_suppressed t (Error.to_string e)
      | Ok (r, mode) ->
          (* The gain guard compares the replanned hierarchy's model
             throughput against what is actually being observed: replacing
             a limping deployment is only worth the migration pause if the
             model predicts a real improvement. *)
          if r.Planner.rho_after <= observed *. (1.0 +. t.cfg.min_gain) then
            record_suppressed t "insufficient-gain"
          else begin
            let cost = migration_cost t r.Planner.replanned.Planner.tree in
            (* Where the time actually went: the element carrying the most
               critical-path seconds across the traces collected so far.
               Purely a breadcrumb — the replan itself is driven by the
               model, but the record shows what the measurement blamed. *)
            let bottleneck =
              Option.bind t.rtrace Adept_obs.Request_trace.hottest_element
            in
            (* The monitor's view of why: whatever alert rules are firing
               at the trigger instant go into the record, so a replan can
               cite e.g. [model-drift] as its observable cause. *)
            let alerts =
              match t.alerts with
              | Some a -> Adept_obs.Alert.firing_names a
              | None -> []
            in
            (* How this replan was planned: patched in place or rebuilt
               from scratch (and why the patch was rejected, if so). *)
            (match Trace.tracer t.trace with
            | Some tracer ->
                Adept_obs.Tracer.event tracer ~at:now
                  ~labels:
                    (Adept_obs.Label.v
                       (("mode", Planner.replan_mode_name mode)
                       ::
                       (match Planner.replan_fallback_reason mode with
                       | Some reason -> [ ("reason", reason) ]
                       | None -> [])))
                  "replan-mode"
            | None -> ());
            (match (bottleneck, Trace.tracer t.trace) with
            | Some (node, seconds), Some tracer ->
                Adept_obs.Tracer.event tracer ~at:now
                  ~labels:
                    (Adept_obs.Label.v
                       [
                         ("node", string_of_int node);
                         ("critical_path_seconds", Printf.sprintf "%.6f" seconds);
                       ])
                  "replan-bottleneck"
            | _ -> ());
            t.migration_until <- Some (now +. cost);
            (* The migration window as a span in the run's trace. *)
            let span =
              Option.map
                (fun tracer ->
                  ( tracer,
                    Adept_obs.Tracer.span_start tracer ~at:now
                      ~labels:
                        (Adept_obs.Label.v
                           [
                             ( "failed",
                               String.concat " " (List.map string_of_int failed) );
                           ])
                      "migration" ))
                (Trace.tracer t.trace)
            in
            Engine.schedule t.engine ~delay:cost (fun () ->
                (match span with
                | Some (tracer, sp) ->
                    Adept_obs.Tracer.span_end tracer ~at:(Engine.now t.engine) sp
                | None -> ());
                enact t r ~mode ~observed ~cost ~bottleneck ~alerts ())
          end
  end

let note_node_states t ~now =
  List.iter
    (fun n ->
      let id = Node.id n in
      if Middleware.is_alive t.middleware id then Hashtbl.remove t.dead_since id
      else if not (Hashtbl.mem t.dead_since id) then Hashtbl.replace t.dead_since id now)
    (Tree.nodes t.tree)

let rec tick t () =
  let now = Engine.now t.engine in
  (if not (is_migrating t) then begin
     note_node_states t ~now;
     let t0 = Float.max 0.0 (now -. t.cfg.window) in
     if now > t0 then begin
       let observed = Run_stats.throughput t.stats ~t0 ~t1:now in
       (match t.obs with
       | Some o -> Adept_obs.Gauge.set o.co_window observed
       | None -> ());
       if observed < t.cfg.threshold *. t.predicted_rho then begin
         Run_stats.record_degraded t.stats ~seconds:t.cfg.sample_period;
         (match t.obs with
         | Some o -> Adept_obs.Counter.inc o.co_degraded
         | None -> ());
         (if t.degraded_since = None then t.degraded_since <- Some now);
         match t.cfg.policy with
         | Off -> ()
         | Eager -> consider t ~now ~observed
         | Hysteresis ->
             (match t.degraded_since with
             | Some since when now -. since >= t.cfg.hold_time -. 1e-9 ->
                 consider t ~now ~observed
             | Some _ | None -> ())
       end
       else t.degraded_since <- None
     end
   end);
  if now +. t.cfg.sample_period <= t.horizon then
    Engine.schedule t.engine ~delay:t.cfg.sample_period (tick t)

let create cfg ~engine ~params ~platform ~wapp ~demand ~selection
    ?monitoring_period ~faults ~stats ~trace ?obs ?rtrace ?alerts ~horizon
    ~middleware tree =
  let t =
    {
      cfg;
      engine;
      params;
      platform;
      wapp;
      demand;
      selection;
      monitoring_period;
      faults;
      stats;
      trace;
      horizon;
      middleware;
      retired = [];
      tree;
      predicted_rho = Adept.Evaluate.rho_hetero params ~platform ~wapp tree;
      degraded_since = None;
      last_enact = Float.neg_infinity;
      migration_until = None;
      enacted = [];
      dead_since = Hashtbl.create 16;
      obs = Option.map make_ctrl_obs obs;
      rtrace;
      alerts;
    }
  in
  Engine.schedule engine ~delay:cfg.sample_period (tick t);
  t

let pp_record ppf r =
  Format.fprintf ppf
    "t=%.2fs: %d node(s) out, observed %.2f req/s, rho %.2f -> %.2f, migration %.3fs, %s%s"
    r.at (List.length r.failed) r.observed r.rho_before r.rho_after r.migration_cost
    (Planner.replan_mode_name r.mode)
    (match Planner.replan_fallback_reason r.mode with
    | Some reason -> " (" ^ reason ^ ")"
    | None -> "");
  (match r.bottleneck with
  | Some (node, seconds) ->
      Format.fprintf ppf ", bottleneck node %d (%.3fs on critical path)" node seconds
  | None -> ());
  match r.alerts with
  | [] -> ()
  | alerts -> Format.fprintf ppf ", alerts [%s]" (String.concat "; " alerts)
