open Adept_platform
open Adept_hierarchy
module Params = Adept_model.Params
module Error = Adept.Error
module Obs = Adept_obs

type signals = {
  predicted_rho : float;
  rho_sched : float option;
  rho_service : float option;
  alive : int;
}

type provider = unit -> signals

type t = {
  interval : float;
  timeseries : Obs.Timeseries.t;
  alerts : Obs.Alert.t;
}

(* Series every monitored run scrapes regardless of the rule set: the
   dashboard's raw material and the model gauges the built-in rules
   compare against. *)
let base_selectors =
  [
    Obs.Rule.selector Obs.Semconv.requests_completed_total;
    Obs.Rule.selector Obs.Semconv.requests_issued_total;
    Obs.Rule.selector Obs.Semconv.requests_lost_total;
    Obs.Rule.selector Obs.Semconv.model_predicted_rho;
    Obs.Rule.selector Obs.Semconv.model_rho_sched;
    Obs.Rule.selector Obs.Semconv.model_rho_service;
    Obs.Rule.selector Obs.Semconv.alive_nodes;
  ]

let create ?(interval = 0.25) ?retention ?capacity ?tracer ?(selectors = [])
    rules =
  if interval < 0. || Float.is_nan interval then
    Error (Error.invalid_input "Monitor.create: interval must be >= 0, got %g" interval)
  else begin
    let max_window =
      List.fold_left
        (fun acc r -> Float.max acc (Obs.Rule.max_window r))
        0. rules
    in
    let retention =
      match retention with
      | Some r -> r
      | None ->
          (* twice the longest window plus slack so window starts stay
             inside retained history even between scrapes *)
          Float.max ((2. *. max_window) +. (10. *. Float.max interval 0.1)) 1.
    in
    if retention < max_window then
      Error
        (Error.invalid_input
           "Monitor.create: retention %g is shorter than the longest rule window %g"
           retention max_window)
    else
      let rule_selectors = List.concat_map Obs.Rule.selectors rules in
      let timeseries =
        Obs.Timeseries.create ?capacity ~retention
          (base_selectors @ rule_selectors @ selectors)
      in
      match Obs.Alert.create ?tracer ~timeseries rules with
      | Error m -> Error (Error.invalid_input "Monitor.create: %s" m)
      | Ok alerts -> Ok { interval; timeseries; alerts }
  end

let interval t = t.interval

let timeseries t = t.timeseries

let alerts t = t.alerts

let scrapes t = Obs.Timeseries.scrapes t.timeseries

let attach t ~engine ~registry ?provider ~horizon () =
  if t.interval > 0. then begin
    let scrapes_counter =
      Obs.Registry.counter registry Obs.Semconv.monitor_scrapes_total
    in
    let g name = Obs.Registry.gauge registry name in
    Engine.schedule_every engine ~interval:t.interval ~until:horizon
      (fun ~now ->
        (match provider with
        | None -> ()
        | Some f ->
            let s = f () in
            Obs.Gauge.set (g Obs.Semconv.model_predicted_rho) s.predicted_rho;
            (match s.rho_sched with
            | Some v -> Obs.Gauge.set (g Obs.Semconv.model_rho_sched) v
            | None -> ());
            (match s.rho_service with
            | Some v -> Obs.Gauge.set (g Obs.Semconv.model_rho_service) v
            | None -> ());
            Obs.Gauge.set (g Obs.Semconv.alive_nodes) (float_of_int s.alive));
        Obs.Counter.inc scrapes_counter;
        Obs.Timeseries.scrape t.timeseries ~registry ~now;
        Obs.Alert.eval t.alerts ~now)
  end

let signals_of ~params ~platform ~wapp ~tree ~middleware ?controller () =
  let tree, middleware =
    match controller with
    | Some c -> (Controller.tree c, Controller.middleware c)
    | None -> (tree, middleware)
  in
  let predicted_rho =
    (* [monitor_rho], not [predicted_rho]: while a canary bakes the fleet
       is split across two generations and the controller publishes the
       blended forecast the drift rule should judge against (outside a
       bake the two are equal). *)
    match controller with
    | Some c -> Controller.monitor_rho c
    | None -> Adept.Evaluate.rho_hetero params ~platform ~wapp tree
  in
  let rho_sched, rho_service =
    match Link.uniform_bandwidth (Platform.link platform) with
    | Some bandwidth -> (
        match Adept.Evaluate.bottleneck_element params ~bandwidth ~wapp tree with
        | be ->
            ( Some be.Adept.Evaluate.be_rho_sched,
              Some be.Adept.Evaluate.be_rho_service )
        | exception Invalid_argument _ -> (None, None))
    | None -> (None, None)
  in
  { predicted_rho; rho_sched; rho_service; alive = Middleware.alive_count middleware }

(* ------------------------------------------------------------------ *)
(* Built-in rules                                                     *)

let sel = Obs.Rule.selector

let node_sel metric node =
  Obs.Rule.selector
    ~labels:(Obs.Label.v [ Obs.Semconv.node_label node ])
    metric

let model_rules ?(tolerance = 0.25) ?(hold = 1.0) ?(cost_tolerance = 0.5)
    ?(headroom = 0.1) ?(window = 2.0) ~params ~wapp tree =
  let open Obs.Rule in
  let drift =
    deviation ~severity:Critical ~for_duration:hold "model-drift"
      ~measured:(Rate (sel Obs.Semconv.requests_completed_total, window))
      ~reference:(Last (sel Obs.Semconv.model_predicted_rho))
      ~tolerance
  in
  let headroom_rule =
    (* distance to the flip of Eq. 16's min: (sched - service) / service *)
    v ~severity:Info "sched-headroom"
      (Div
         ( Sub
             ( Last (sel Obs.Semconv.model_rho_sched),
               Last (sel Obs.Semconv.model_rho_service) ),
           Last (sel Obs.Semconv.model_rho_service) ))
      Lt (Const headroom)
  in
  let cost_rules =
    List.concat_map
      (fun (ec : Adept.Evaluate.element_cost) ->
        let node = Node.id ec.Adept.Evaluate.ec_node in
        let component name metric predicted =
          if predicted > 0. then
            [
              deviation ~severity:Warning ~for_duration:hold
                (Printf.sprintf "cost-drift/node-%d/%s" node name)
                ~measured:(Window_mean (node_sel metric node, window))
                ~reference:(Const predicted) ~tolerance:cost_tolerance;
            ]
          else []
        in
        component "wreq" Obs.Semconv.agent_request_compute_seconds
          ec.Adept.Evaluate.ec_wreq_s
        @ component "wrep" Obs.Semconv.agent_reply_compute_seconds
            ec.Adept.Evaluate.ec_wrep_s
        @ component "wpre" Obs.Semconv.server_prediction_seconds
            ec.Adept.Evaluate.ec_wpre_s
        @ component "service" Obs.Semconv.server_service_seconds
            ec.Adept.Evaluate.ec_service_s)
      (Adept.Evaluate.element_costs params ~wapp tree)
  in
  (drift :: cost_rules) @ [ headroom_rule ]

(* Distinct hierarchy levels that hold agents (their in-flight gauges
   are labelled by level). *)
let agent_levels tree =
  let levels = ref [] in
  let rec walk depth = function
    | Tree.Server _ -> ()
    | Tree.Agent (_, children) ->
        if not (List.mem depth !levels) then levels := depth :: !levels;
        List.iter (walk (depth + 1)) children
  in
  walk 0 tree;
  List.sort Int.compare !levels

let level_sel level =
  Obs.Rule.selector
    ~labels:(Obs.Label.v [ Obs.Semconv.level_label level ])
    Obs.Semconv.agent_inflight_requests

let default_selectors tree =
  base_selectors @ List.map level_sel (agent_levels tree)

let default_panels tree ~window =
  let open Obs.Rule in
  [
    Obs.Dashboard.panel ~unit_:"req/s" "throughput: measured vs Eq. 16"
      [
        ("measured", Rate (sel Obs.Semconv.requests_completed_total, window));
        ("predicted rho", Last (sel Obs.Semconv.model_predicted_rho));
      ];
    Obs.Dashboard.panel ~unit_:"req/s" "Eq. 16 sides"
      [
        ("rho_sched", Last (sel Obs.Semconv.model_rho_sched));
        ("rho_service", Last (sel Obs.Semconv.model_rho_service));
      ];
    Obs.Dashboard.panel ~unit_:"requests" "in-flight by level"
      (List.map
         (fun level -> (Printf.sprintf "level %d" level, Last (level_sel level)))
         (agent_levels tree));
    Obs.Dashboard.panel ~unit_:"req/s" "losses"
      [ ("lost", Rate (sel Obs.Semconv.requests_lost_total, window)) ];
    Obs.Dashboard.panel ~unit_:"elements" "alive"
      [ ("alive", Last (sel Obs.Semconv.alive_nodes)) ];
  ]
