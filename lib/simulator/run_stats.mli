(** Measurement collection for simulation runs. *)

open Adept_platform

type t

val create : unit -> t

val record_issue : t -> time:float -> unit
(** A client submitted a scheduling request. *)

val record_completion : t -> issued_at:float -> time:float -> server:Node.id -> unit
(** A client received the service response. *)

val record_lost : t -> time:float -> unit
(** A request was abandoned: every scheduling retry timed out, or the
    service phase never answered (fault-injection runs only). *)

val issued : t -> int
val completed : t -> int

val lost : t -> int
(** Abandoned requests; 0 for fault-free runs. *)

val record_degraded : t -> seconds:float -> unit
(** Accumulate time spent below the controller's degradation threshold
    (non-positive durations are ignored). *)

val record_migration_lost : t -> unit
(** A request was issued during a migration window and dropped. *)

val record_replan : t -> unit
(** The controller enacted one replanned hierarchy. *)

val degraded_seconds : t -> float
(** Total simulated time the controller observed throughput below its
    threshold; 0 without a controller. *)

val migration_lost : t -> int
(** Requests dropped because they arrived mid-migration; 0 without a
    controller. *)

val replans : t -> int
(** Replanned hierarchies enacted; 0 without a controller. *)

val completions_in : t -> t0:float -> t1:float -> int
(** Completions with [t0 <= time < t1]. *)

val throughput : t -> t0:float -> t1:float -> float
(** Completions per second over the window.
    @raise Invalid_argument when [t1 <= t0]. *)

val per_server : t -> (Node.id * int) list
(** Completion counts by serving node, ascending id. *)

val response_times : t -> float array
(** End-to-end request latencies (issue to service response), in
    completion order. *)

val mean_response_time : t -> float option

val response_percentile : t -> float -> float option
(** [response_percentile t p] for [p] in [\[0, 100\]]; [None] with no
    completions. *)

val pp : Format.formatter -> t -> unit
