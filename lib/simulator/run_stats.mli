(** Measurement collection for simulation runs.

    Memory is bounded: completion times live in a pruned
    {!Adept_obs.Ring} that drops samples older than [retention] behind
    the newest completion (so sliding-window throughput queries are
    O(log n) on a window-sized buffer rather than a scan of the whole
    history), and response-time statistics live in a bounded-memory
    {!Adept_obs.Histogram} (exact count/sum/min/max, percentile
    estimates within 1% relative error).  With [retention = infinity]
    (the default) nothing is pruned and window counts are exact over
    the entire run. *)

open Adept_platform

type t

val create : ?retention:float -> unit -> t
(** [retention] is how far behind the newest completion window queries
    may reach (default [infinity]: keep everything).  Pass the largest
    window any consumer will ask for — the controller's sliding window
    plus its sample period.  @raise Invalid_argument if negative. *)

val record_issue : t -> time:float -> unit
(** A client submitted a scheduling request. *)

val record_completion : t -> issued_at:float -> time:float -> server:Node.id -> unit
(** A client received the service response.  Completion times must be
    non-decreasing (discrete-event order). *)

val record_lost : t -> time:float -> unit
(** A request was abandoned: every scheduling retry timed out, or the
    service phase never answered (fault-injection runs only). *)

val issued : t -> int
val completed : t -> int

val lost : t -> int
(** Abandoned requests; 0 for fault-free runs. *)

val record_degraded : t -> seconds:float -> unit
(** Accumulate time spent below the controller's degradation threshold
    (non-positive durations are ignored). *)

val record_migration_lost : t -> unit
(** A request was issued during a migration window and dropped. *)

val record_replan : t -> unit
(** The controller enacted one replanned hierarchy. *)

val degraded_seconds : t -> float
(** Total simulated time the controller observed throughput below its
    threshold; 0 without a controller. *)

val migration_lost : t -> int
(** Requests dropped because they arrived mid-migration; 0 without a
    controller. *)

val replans : t -> int
(** Replanned hierarchies enacted; 0 without a controller. *)

val completions_in : t -> t0:float -> t1:float -> int
(** Completions with [t0 <= time < t1].  @raise Invalid_argument if
    [t0] reaches behind the retained history (window larger than
    [retention]). *)

val throughput : t -> t0:float -> t1:float -> float
(** Completions per second over the window.
    @raise Invalid_argument when [t1 <= t0], or as {!completions_in}. *)

val per_server : t -> (Node.id * int) list
(** Completion counts by serving node, ascending id. *)

val mean_response_time : t -> float option
(** Exact (running sum / count). *)

val response_percentile : t -> float -> float option
(** [response_percentile t p] for [p] in [\[0, 100\]]; [None] with no
    completions.  Estimated from the histogram: within 1% relative
    error of the exact percentile. *)

val response_snapshot : t -> Adept_obs.Histogram.snapshot
(** The response-time histogram, for export or merging. *)

val retained_completions : t -> int
(** Completions currently held in the ring (memory proxy for tests). *)

val pp : Format.formatter -> t -> unit
