(** Staged-deployment state machine: canary generations, bake windows,
    promotion and rollback.

    The planner computes a hierarchy and the {!Controller} decides when a
    better one is worth enacting; this module decides {e how} the swap
    happens.  [Off] is the legacy behaviour — the whole client population
    pauses for the migration window and the new generation takes over in
    one shot, with no rollout machinery instantiated at all.  [Direct] is
    behaviourally identical to [Off] (bit-identical simulation results)
    but records the enactment as a typed decision trail.  [Canary] stages
    the swap: a deterministic fraction of clients is routed to the new
    generation first, the watched alert rules are observed over a bake
    window of simulated time, and the rollout then either promotes (the
    remaining traffic migrates, the old generation retires) or rolls back
    (the prior generation — never paused, never retired — resumes full
    traffic, with the reverse migration priced by the same restart +
    state-transfer cost model as the forward one).

    This module owns the pure parts — configuration, deterministic canary
    membership, the bake verdict, the phase/trail bookkeeping and the
    timeline export; the {!Controller} drives the transitions against the
    engine clock. *)

type mode = Off | Direct | Canary

val mode_name : mode -> string

val mode_of_string : string -> (mode, Adept.Error.t) result

type config = private {
  mode : mode;
  canary_fraction : float;
      (** Fraction of clients routed to the canary generation, in (0, 1). *)
  bake_window : float;
      (** Simulated seconds the canary is observed before the verdict. *)
  watch : string list;
      (** Alert-rule names whose firing at the bake deadline condemns the
          canary; [[]] watches every firing rule. *)
}

val off : config
(** The inert configuration: mode [Off], no rollout machinery. *)

val config :
  ?canary_fraction:float ->
  ?bake_window:float ->
  ?watch:string list ->
  mode ->
  (config, Adept.Error.t) result
(** Validated constructor (defaults: fraction 0.25, bake 2.0 s, watch
    [["model-drift"]]).  [Off] ignores every parameter and returns
    {!off}; [Canary] requires [canary_fraction] in (0, 1) and a positive
    finite [bake_window]. *)

val is_canary : config -> client:int -> bool
(** Deterministic canary membership: a pure multiplicative-hash split of
    the client id, so the same client lands on the same side in every
    run and no RNG is drawn (attaching a rollout cannot shift the
    workload stream).  Always [false] outside [Canary] mode. *)

(** One transition of the staged-deployment state machine, as recorded in
    the decision trail. *)
type step =
  | Canary_started  (** Canary migration window opened (canary clients pause). *)
  | Canary_enacted  (** Canary generation live; the bake window begins. *)
  | Promote_started  (** Bake passed; remaining traffic migrating over. *)
  | Promote_finished  (** New generation fully in charge; old one retired. *)
  | Rollback_started  (** Bake failed; reverse migration begins. *)
  | Rollback_finished  (** Prior generation restored, canary retired. *)
  | Direct_swap  (** [Direct] mode: one-shot enactment, no bake. *)

val step_name : step -> string

type event = { at : float; step : step; alerts : string list }
(** A trail entry: when, what, and the alert names cited (the rules firing
    at the trigger for [Canary_started]/[Direct_swap], the condemning
    rules for [Rollback_started]). *)

type outcome = Direct_enacted | Promoted | Rolled_back

val outcome_name : outcome -> string

type record = {
  outcome : outcome;
  canary_fraction : float;
  bake_window : float;
  trail : event list;  (** Chronological. *)
}
(** The finished rollout attached to a {!Controller.replan_record}. *)

val decide : config -> firing:string list -> [ `Promote | `Rollback of string list ]
(** The bake verdict from the alert names firing at the deadline: any
    watched rule still firing condemns the canary, and the condemning
    names are returned as the rollback citation. *)

(** Where a rollout currently stands; the payload is the engine time the
    phase ends.  Clients are paused per phase: canary clients during
    [Canary_migrating] and [Rolling_back], the rest during [Promoting];
    nobody pauses during [Baking]. *)
type phase =
  | Idle
  | Canary_migrating of float
  | Baking of float
  | Promoting of float
  | Rolling_back of float

type t

val create : config -> t

val config_of : t -> config

val phase : t -> phase

val active : t -> bool
(** True while any rollout phase is in progress ([phase t <> Idle]). *)

val set_phase : t -> phase -> unit

val push : t -> at:float -> ?alerts:string list -> step -> unit
(** Append a trail event. *)

val trail : t -> event list
(** The accumulated trail, chronological. *)

val reset_trail : t -> unit

val snapshot : t -> outcome:outcome -> record
(** The accumulated trail as a finished {!record}; clears the trail for
    the next rollout. *)

val phase_spans : event list -> (string * float * float option) list
(** The trail as labeled phase intervals — [canary-migration], [bake],
    [promote], [rollback] — each spanning its opening step to the
    matching closing step ([None] when the run ended inside the phase).
    Feed them to {!Adept_obs.Dashboard.render}'s [spans] to band the
    rollout over every panel. *)

val step_line : event -> string
(** One trail event as a JSON line (newline-terminated). *)

val timeline_jsonl : ?alerts:Adept_obs.Alert.t -> event list -> string
(** The decision trail as JSON lines, optionally merged in chronological
    order with the alert timeline that drove it (same bytes as
    {!Adept_obs.Export.alert_timeline_jsonl}; ties order the alert
    transition before the rollout step).  Deterministic — suitable for
    golden pinning. *)
