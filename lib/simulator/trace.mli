(** Measurement instrumentation: the simulator's stand-in for the paper's
    tcpdump/Ethereal traffic capture and DIET's statistics collection.

    The calibration pipeline (Table 3) reads message sizes and per-element
    processing times from here and fits the [Wrep(d)] linear model exactly
    as the paper fitted real traces.  Messages are recorded at each
    endpoint with that endpoint's role and accounted size, because the
    same logical message costs an agent its agent-level size and a server
    its server-level size (Table 3 has separate rows). *)

type message_kind = Sched_request | Sched_reply | Service_request | Service_reply

type role = Agent_end | Server_end | Client_end

val kind_name : message_kind -> string
(** ["sched-request"] etc. — the label values the observability layer
    uses for the [kind] dimension. *)

val role_name : role -> string
(** ["agent"] / ["server"] / ["client"]. *)

type failure =
  | Node_crash of int  (** The node with this id went down. *)
  | Node_recover of int
  | Message_lost  (** Dropped in transit or delivered to a dead node. *)
  | Request_timeout  (** A client round trip timed out (retry follows). *)
  | Request_abandoned  (** Retry budget exhausted; the request is lost. *)
  | Child_pruned of int * int  (** [(agent, child)]: failover removed the
                                   silent child from the routing tree. *)
  | Child_rejoined of int * int  (** [(agent, child)]: re-registration
                                     after recovery. *)
  | Replan_triggered  (** The controller saw sustained degradation and
                          asked the planner for a new hierarchy. *)
  | Replan_enacted of int list  (** A replanned hierarchy went live; the
                                    list is the failed node ids it
                                    excludes. *)
  | Replan_suppressed of string  (** A trigger was vetoed (cooldown,
                                     insufficient predicted gain, replan
                                     budget, planner error); the string
                                     names the reason. *)

val failure_name : failure -> string

type t

val create : ?tracer:Adept_obs.Tracer.t -> unit -> t
(** [?tracer] mirrors every {!record_failure} breadcrumb into the
    bounded observability tracer as a labeled event, so fault
    timelines export as JSON-lines without retaining this trace's
    unbounded sample lists. *)

val disabled : t
(** A shared sink that records nothing — used by performance-sensitive
    runs. *)

val is_enabled : t -> bool

val tracer : t -> Adept_obs.Tracer.t option
(** The attached observability tracer, for other layers (the
    controller's migration spans) to record into. *)

val record_message : t -> kind:message_kind -> role:role -> size:float -> unit
(** One message observation at one endpoint, size in Mbit. *)

val record_agent_request_compute : t -> seconds:float -> unit
(** Duration of one agent [Wreq] processing step. *)

val record_agent_reply_compute : t -> degree:int -> seconds:float -> unit
(** Duration of one agent reply-aggregation step ([Wrep]) together with
    the agent's degree — the (x, y) samples of the paper's linear fit. *)

val record_server_prediction : t -> seconds:float -> unit
(** Duration of one server [Wpre] step. *)

val record_failure : t -> time:float -> failure -> unit
(** One fault-injection or recovery observation at simulated [time]. *)

val record_recovery_latency : t -> seconds:float -> unit
(** Time from a node's crash to the routing tree healing around it (its
    parent pruning it after the reply timeout). *)

val message_count : t -> message_kind -> role -> int
val mean_message_size : t -> message_kind -> role -> float option
(** Mbit; [None] when no such observation exists. *)

val total_mbit : t -> float
(** Sum over all endpoint observations (each message counted at both
    non-client endpoints). *)

val agent_request_computes : t -> float array
val reply_samples : t -> (int * float) array
(** (degree, seconds) samples for the [Wrep] fit. *)

val server_predictions : t -> float array

val failures : t -> (float * failure) list
(** Chronological failure events (empty for fault-free runs — the
    determinism regression compares these streams). *)

val failure_count : t -> int

val recovery_latencies : t -> float array

val pp_summary : Format.formatter -> t -> unit
