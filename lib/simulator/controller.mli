(** Online redeployment: the self-healing supervision loop.

    The planner (Section 4) decides where agents and servers go before the
    run; the controller watches the deployment afterwards.  Every
    [sample_period] seconds it compares the completed-request throughput
    over a sliding [window] against the current hierarchy's model
    throughput (Eq. 16).  When the observed rate stays below [threshold]
    of the prediction, the deployment is degraded; a degraded deployment
    that the policy decides to heal is replanned with {!Adept.Planner.replan}
    over the surviving nodes and the new hierarchy is enacted online.

    Enacting is not free.  The migration pays an explicit cost — agent
    restart latency plus the slowest parallel state transfer over the
    platform's links — during which newly issued requests are dropped
    (recorded as {!Run_stats.migration_lost}); in-flight requests keep
    draining through the old hierarchy, which stays deployed until its
    work finishes.

    Three policies bound how trigger-happy the loop is:
    - [Off] only monitors: degraded time is measured, nothing is enacted.
    - [Eager] replans on the first degraded sample — the strawman that
      pays migration cost for every transient blip.
    - [Hysteresis] waits out [hold_time] of sustained degradation,
      enforces a [cooldown] between enactments, and requires the
      replanned hierarchy's predicted throughput to beat the observed
      rate by at least [min_gain] (relative).

    Which dead nodes the replan writes off is itself policy.  [Eager]
    excludes whatever is down at the trigger instant; [Hysteresis] only
    nodes that have been dead for a full [hold_time] — a node mid-repair
    keeps its place in the next hierarchy.  If an {e agent} of the new
    hierarchy dies while the migration is in flight the enactment is
    abandoned (the pause was already paid, a [Replan_suppressed
    "agent-died-mid-migration"] breadcrumb is traced) and the old
    hierarchy stays in charge; a dead {e server} is not fatal — it starts
    the new generation dead (liveness is inherited across the swap, see
    {!Middleware.deploy}'s [initial_dead]), the new generation's failover
    strikes it out and readopts it on recovery, exactly as it would
    mid-run.  Degradation clocks survive the swap too: a node still dead
    after an enactment keeps its original death time, so the next
    replan's hold does not restart at migration end.

    All policies respect [max_replans] and the [min_gain] guard (for
    [Eager] the default guard is whatever the config says — set it to 0
    to reproduce a guard-free strawman), so the invariant the property
    tests pin down holds universally: {b no enacted replan ever has a
    predicted gain below the configured minimum}.

    {e How} an accepted replan is enacted is a separate choice (see
    {!Rollout}).  The default ([Off]) is the one-shot swap described
    above.  [Canary] mode stages it: a deterministic fraction of clients
    migrates to the new hierarchy first, both generations serve while
    the monitor's alert rules judge the canary over a bake window, and
    the rollout then promotes (the rest of the fleet migrates, the old
    generation retires) or rolls back (the canary clients pay the
    reverse hop back onto the old generation, which was never paused or
    retired and is therefore restored bit-identically).  Every
    transition is pushed to the run's tracer, counted in
    [adept_rollout_transitions_total], and attached to the finished
    {!replan_record} as a typed decision trail. *)

open Adept_platform
open Adept_hierarchy

type policy = Off | Eager | Hysteresis

val policy_name : policy -> string

type config = private {
  policy : policy;
  strategy : Adept.Planner.strategy;  (** Used by every replan. *)
  sample_period : float;  (** Seconds between throughput samples. *)
  window : float;  (** Sliding measurement window, seconds. *)
  threshold : float;
      (** Degraded when observed < threshold * predicted rho; 0 never
          degrades (the determinism regression uses this). *)
  hold_time : float;  (** Sustained degradation before a trigger
                          ([Hysteresis] only). *)
  cooldown : float;  (** Minimum seconds between enactments
                         ([Hysteresis] only). *)
  min_gain : float;
      (** Required relative improvement of predicted rho over observed
          throughput; enact only if
          [rho_after > observed * (1 + min_gain)]. *)
  max_replans : int;  (** Enactment budget for the whole run. *)
  restart_latency : float;  (** Seconds to restart the agent processes. *)
  state_mbit : float;
      (** Per-element state shipped to its new parent during migration. *)
  prefer_incremental : bool;
      (** Try {!Adept.Planner.replan_incremental} first (the default);
          [false] forces every replan through the from-scratch path and
          records [Full "incremental-disabled"]. *)
  replan_slack : float;
      (** Acceptance slack handed to the incremental planner: the patch
          is kept when its predicted rho is within this fraction of the
          survivor-platform bound. *)
  rollout : Rollout.config;
      (** How enactments are staged (see {!Rollout}): [Off] (the
          default) is the legacy one-shot swap with no rollout machinery,
          [Direct] the same swap recorded as a decision trail, [Canary] a
          staged enactment with a bake window and automatic rollback. *)
}

val config :
  ?strategy:Adept.Planner.strategy ->
  ?sample_period:float ->
  ?window:float ->
  ?threshold:float ->
  ?hold_time:float ->
  ?cooldown:float ->
  ?min_gain:float ->
  ?max_replans:int ->
  ?restart_latency:float ->
  ?state_mbit:float ->
  ?prefer_incremental:bool ->
  ?replan_slack:float ->
  ?rollout:Rollout.config ->
  policy ->
  (config, Adept.Error.t) result
(** Validated construction (defaults: strategy [Heuristic], sample 1 s,
    window 5 s, threshold 0.5, hold 3 s, cooldown 20 s, min_gain 0.05,
    3 replans, restart 0.5 s, 1 Mbit of state, incremental replans
    preferred with slack 0.15).  Violations — non-positive periods, a
    window shorter than the sample period, a threshold outside [0, 1],
    negative guards, a slack outside [0, 1) — are
    [Error.Invalid_input]. *)

type replan_record = {
  at : float;  (** Enactment time (end of the migration window). *)
  failed : Node.id list;  (** The dead nodes the new hierarchy excludes. *)
  observed : float;  (** Windowed throughput at trigger time, req/s. *)
  rho_before : float;  (** Model throughput of the replaced hierarchy. *)
  rho_after : float;  (** Model throughput of the enacted hierarchy. *)
  migration_cost : float;  (** Seconds of migration pause paid. *)
  bottleneck : (Node.id * float) option;
      (** Measured bottleneck at trigger time — the node carrying the
          most critical-path seconds across the request traces collected
          so far, with that total (see
          {!Adept_obs.Request_trace.hottest_element}); [None] without a
          request-trace store or before any trace finished. *)
  alerts : string list;
      (** Alert rules firing at trigger time (see {!Adept_obs.Alert}) —
          the monitor's citation for why this replan happened; [[]]
          without an attached alert engine. *)
  mode : Adept.Planner.replan_mode;
      (** How the enacted hierarchy was planned: [Incremental] when the
          previous tree was patched in place, [Full reason] when the
          planner fell back to (or was configured for) a from-scratch
          replan.  Also traced as a ["replan-mode"] event at trigger
          time. *)
  rollout : Rollout.record option;
      (** How the enactment was staged: [None] in [Off] mode, the
          finished decision trail otherwise.  A [Rolled_back] record
          means the staged hierarchy was {e rejected} — the old
          generation is still in charge, the record's [at] is the end of
          the reverse migration, and [migration_cost] is the total
          disruption the canary clients paid (forward hop plus reverse
          hop).  Rolled-back rollouts still consume a [max_replans]
          budget slot and start the cooldown, so a bad plan is not
          immediately retried. *)
}

type t

val create :
  config ->
  engine:Engine.t ->
  params:Adept_model.Params.t ->
  platform:Platform.t ->
  wapp:float ->
  demand:Adept_model.Demand.t ->
  selection:Middleware.selection ->
  ?monitoring_period:float ->
  faults:Faults.t ->
  stats:Run_stats.t ->
  trace:Trace.t ->
  ?obs:Adept_obs.Registry.t ->
  ?rtrace:Adept_obs.Request_trace.t ->
  ?alerts:Adept_obs.Alert.t ->
  horizon:float ->
  middleware:Middleware.t ->
  Tree.t ->
  t
(** Attach the loop to a freshly deployed [middleware] running [tree]:
    the first sample fires one [sample_period] after the current engine
    time, and sampling stops at [horizon].  [selection],
    [monitoring_period] and [faults] are reused verbatim for every
    hierarchy the controller deploys (fault events already in the past
    are skipped by {!Middleware.deploy}).  [obs] records the control
    loop into the registry — window-throughput gauge, degraded-sample
    and replan counters, per-reason suppression counters, migration-cost
    histogram — passes it on to every hierarchy it deploys, and (when
    [trace] carries a tracer) brackets each migration window in a
    ["migration"] span.  [rtrace] is likewise passed to every hierarchy
    the controller deploys, so sampled requests keep tracing across
    generations; each enacted replan records the store's hottest element
    at trigger time as its [bottleneck] breadcrumb (and, with a tracer,
    emits a ["replan-bottleneck"] event).  [alerts] is an alert engine
    (typically the {!Monitor}'s) consulted read-only at each trigger:
    whatever rules are firing at that instant are cited in the enacted
    record's [alerts] field. *)

val middleware : t -> Middleware.t
(** The hierarchy currently in charge — changes after each enactment;
    request issuers must re-read it per request. *)

val tree : t -> Tree.t
(** The hierarchy currently in charge as a tree — what the monitor's
    model rules should be predicting against. *)

val is_migrating : t -> bool
(** True inside a migration window: the old hierarchy is being torn down
    and requests issued now are lost. *)

val migration_ends : t -> float
(** End of the current migration window ([Engine.now] when not
    migrating) — where a dropped request's client should resume. *)

val route : t -> client:int -> Middleware.t
(** The generation serving this client right now.  Only a canary client
    during the bake (or the promote window) sees the staged generation;
    with rollout [Off]/[Direct] this is always {!middleware}.  Request
    issuers must re-read it per request. *)

val blocked_until : t -> client:int -> float option
(** When this client may issue again ([None]: free to go now).  The
    legacy full-fleet migration pause blocks every client — exactly
    {!is_migrating}/{!migration_ends} — while canary phases pause only
    the side of the split that is moving: canary clients during the
    forward hop and the rollback, the rest of the fleet during the
    promote, nobody while the canary bakes. *)

val rollout_phase : t -> Rollout.phase
(** Where the staged rollout currently stands ([Idle] outside canary
    enactments and always in [Off]/[Direct] mode). *)

val rollout_active : t -> bool
(** True while a canary rollout is in flight ([rollout_phase <> Idle]);
    degradation sampling is paused for its duration. *)

val monitor_rho : t -> float
(** The model throughput the monitor's rules should predict against.
    Equal to {!predicted_rho} except while a canary bakes, when the
    fleet is split and the forecast blends the staged hierarchy's model
    throughput (weighted by the canary fraction) with what the old
    generation was actually observed delivering at the trigger. *)

val records : t -> replan_record list
(** Enacted replans, chronological. *)

val replan_count : t -> int

val predicted_rho : t -> float
(** Model throughput of the hierarchy currently in charge. *)

val fault_stats : t -> Middleware.fault_stats
(** Counters merged across every generation (current plus retired). *)

val pp_record : Format.formatter -> replan_record -> unit
