type t = { mutable clock : float; queue : (unit -> unit) Event_queue.t }

let create () = { clock = 0.0; queue = Event_queue.create () }

let now t = t.clock

let schedule_at t ~time callback =
  if Float.is_nan time then invalid_arg "Engine.schedule_at: NaN time";
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is before now %g" time t.clock);
  Event_queue.add t.queue ~time callback

let schedule t ~delay callback =
  if delay < 0.0 || Float.is_nan delay then
    invalid_arg "Engine.schedule: negative or NaN delay";
  schedule_at t ~time:(t.clock +. delay) callback

let schedule_every t ~interval ~until callback =
  if interval <= 0.0 || Float.is_nan interval then
    invalid_arg "Engine.schedule_every: interval must be > 0";
  let rec arm time =
    if time <= until then
      schedule_at t ~time (fun () ->
          callback ~now:time;
          arm (time +. interval))
  in
  arm (t.clock +. interval)

let pending t = Event_queue.size t.queue

type outcome = Exhausted | Horizon_reached | Event_limit

let step t =
  match Event_queue.pop_min t.queue with
  | None -> false
  | Some (time, callback) ->
      t.clock <- time;
      callback ();
      true

let run ?until ?max_events t =
  let horizon = Option.value ~default:Float.infinity until in
  let limit = Option.value ~default:max_int max_events in
  (* Allocation-free spin: [next_time]/[pop_min_exn] instead of the
     option-returning peek/pop pair — this loop runs once per simulated
     event, and the two [Some (time, payload)] boxes per event were a
     measurable slice of the simulator's minor-heap churn. *)
  let rec go executed =
    if executed >= limit then Event_limit
    else if Event_queue.is_empty t.queue then Exhausted
    else begin
      let time = Event_queue.next_time t.queue in
      if time > horizon then begin
        t.clock <- horizon;
        Horizon_reached
      end
      else begin
        let callback = Event_queue.pop_min_exn t.queue in
        t.clock <- time;
        callback ();
        go (executed + 1)
      end
    end
  in
  let outcome = go 0 in
  (match (outcome, until) with
  | Exhausted, Some h when t.clock < h -> t.clock <- h
  | _ -> ());
  outcome
