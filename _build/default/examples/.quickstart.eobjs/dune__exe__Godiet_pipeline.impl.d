examples/godiet_pipeline.ml: Adept Adept_godiet Adept_hierarchy Adept_model Adept_platform Adept_sim Adept_util Adept_workload List Printf Result String
