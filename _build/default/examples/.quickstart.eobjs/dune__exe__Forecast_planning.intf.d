examples/forecast_planning.mli:
