examples/model_validation.mli:
