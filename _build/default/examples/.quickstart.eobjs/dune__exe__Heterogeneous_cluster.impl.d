examples/heterogeneous_cluster.ml: Adept Adept_hierarchy Adept_model Adept_platform Adept_sim Adept_util Adept_workload Float Format List Option Printf Result
