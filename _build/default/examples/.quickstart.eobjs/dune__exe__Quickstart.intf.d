examples/quickstart.mli:
