examples/capacity_planning.mli:
