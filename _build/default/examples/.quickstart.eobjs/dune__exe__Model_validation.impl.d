examples/model_validation.ml: Adept Adept_hierarchy Adept_model Adept_platform Adept_sim Adept_util Adept_workload List Printf
