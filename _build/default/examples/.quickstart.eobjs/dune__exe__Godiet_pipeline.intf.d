examples/godiet_pipeline.mli:
