examples/forecast_planning.ml: Adept Adept_calibration Adept_model Adept_platform Adept_util Adept_workload Array Float List Option Printf
