examples/redeployment.ml: Adept Adept_godiet Adept_model Adept_platform Adept_sim Adept_workload Float List Option Printf Result
