examples/quickstart.ml: Adept Adept_hierarchy Adept_model Adept_platform Adept_util Adept_workload Format
