examples/redeployment.mli:
