(* Planning with forecast execution times — the paper's proposed follow-up
   to "we consider that we have a function to know the execution time".

   A client runs an application whose cost is unknown.  We observe noisy
   service durations (as the middleware's statistics collection would),
   estimate Wapp with three statistical forecasters, plan with each
   estimate, and check how much throughput the plan built on the forecast
   loses against the plan built on the true cost.

     dune exec examples/forecast_planning.exe *)

module Forecast = Adept_calibration.Forecast

let true_wapp = Adept_workload.Dgemm.(mflops (make 310))

let node_power = 730.0

let () =
  let params = Adept_model.Params.diet_lyon in
  let platform = Adept_platform.Generator.grid5000_lyon ~n:45 () in
  let rng = Adept_util.Rng.create 99 in

  (* 1. Observed service times: true cost + 15% measurement noise + the
        occasional straggler (cache miss, shared node...). *)
  let observations =
    Array.init 60 (fun i ->
        let base = true_wapp /. node_power in
        let noisy =
          Adept_util.Rng.normal rng ~mean:base ~stddev:(0.15 *. base)
        in
        let straggler = if i mod 17 = 0 then 3.0 *. base else 0.0 in
        Float.max (0.1 *. base) (noisy +. straggler))
  in

  (* 2. Plan on the true cost for reference. *)
  let rho_of wapp_for_planning =
    match
      Adept.Heuristic.plan params ~platform ~wapp:wapp_for_planning
        ~demand:Adept_model.Demand.unbounded
    with
    | Error e -> failwith e
    | Ok plan ->
        (* score the planned tree against the TRUE workload *)
        Adept.Evaluate.rho_on params ~platform ~wapp:true_wapp plan.Adept.Heuristic.tree
  in
  let reference = rho_of true_wapp in

  (* 3. Each forecaster's estimate and the throughput its plan achieves. *)
  let table =
    List.fold_left
      (fun table (name, estimator) ->
        let f = Forecast.of_trace estimator ~power:node_power ~seconds:observations in
        let estimate = Option.get (Forecast.predict f) in
        let achieved = rho_of estimate in
        Adept_util.Table.add_row table
          [
            name;
            Printf.sprintf "%.1f" estimate;
            Printf.sprintf "%+.1f%%" (100.0 *. (estimate -. true_wapp) /. true_wapp);
            Adept_util.Table.cell_float achieved;
            Adept_util.Table.cell_percent (achieved /. reference);
          ])
      (Adept_util.Table.create
         [ "forecaster"; "Wapp est. (MFlop)"; "bias"; "plan rho (true wl)"; "vs oracle" ])
      [
        ("running mean", Forecast.Running_mean);
        ("EWMA a=0.2", Forecast.Ewma 0.2);
        ("median of 20", Forecast.Windowed_median 20);
      ]
  in
  Printf.printf "true Wapp = %.1f MFlop; oracle plan rho = %.1f req/s\n\n" true_wapp
    reference;
  print_string (Adept_util.Table.render table);
  print_endline
    "(the straggler-robust median forecasts closest; all plans stay within a \
     few percent of the oracle because the heuristic's shape is insensitive \
     to small Wapp errors)"
