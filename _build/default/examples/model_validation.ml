(* Model validation (Section 5.2 in miniature): does Eq. 16 predict what
   the simulated middleware actually sustains?  Runs star hierarchies of
   one and two servers under an agent-limited workload (DGEMM 10x10) and a
   server-limited one (DGEMM 200x200).

     dune exec examples/model_validation.exe *)

let measure ~dgemm ~servers =
  let params = Adept_model.Params.diet_lyon in
  let platform = Adept_platform.Generator.grid5000_lyon ~n:(servers + 1) () in
  let nodes = Adept_platform.Platform.nodes platform in
  let tree = Adept_hierarchy.Tree.star (List.hd nodes) (List.tl nodes) in
  let job = Adept_workload.Job.of_dgemm (Adept_workload.Dgemm.make dgemm) in
  let wapp = Adept_workload.Job.wapp job in
  let predicted = Adept.Evaluate.rho_on params ~platform ~wapp tree in
  let scenario =
    Adept_sim.Scenario.make ~params ~platform
      ~client:(Adept_workload.Client.closed_loop job) tree
  in
  let _, measured =
    Adept_sim.Scenario.saturation_throughput scenario ~warmup:1.0 ~duration:3.0
  in
  (predicted, measured)

let () =
  let table =
    List.fold_left
      (fun table (dgemm, servers) ->
        let predicted, measured = measure ~dgemm ~servers in
        Adept_util.Table.add_row table
          [
            Printf.sprintf "DGEMM %dx%d" dgemm dgemm;
            string_of_int servers;
            Adept_util.Table.cell_float predicted;
            Adept_util.Table.cell_float measured;
            Adept_util.Table.cell_percent (measured /. predicted);
          ])
      (Adept_util.Table.create
         [ "workload"; "servers"; "predicted req/s"; "measured req/s"; "accuracy" ])
      [ (10, 1); (10, 2); (200, 1); (200, 2) ]
  in
  print_string (Adept_util.Table.render table);
  print_endline
    "(the model must predict that the second server hurts DGEMM 10 and doubles \
     DGEMM 200 — compare rows pairwise)"
