(* Correcting a deployment after launch.

   The paper's measurement protocol notes that "one has to assume a
   particular job mix, define a deployment, and eventually correct the
   deployment after launch if it was not well-chosen."  This walkthrough
   does exactly that: launch an intuitive star, observe it underperform,
   identify the bottleneck, and redeploy.

     dune exec examples/redeployment.exe *)

let params = Adept_model.Params.diet_lyon

let measure platform tree ~label =
  let job = Adept_workload.Job.of_dgemm (Adept_workload.Dgemm.make 310) in
  let scenario =
    Adept_sim.Scenario.make ~params ~platform
      ~client:(Adept_workload.Client.closed_loop job) tree
  in
  let r = Adept_sim.Scenario.run_fixed scenario ~clients:200 ~warmup:2.0 ~duration:4.0 in
  Printf.printf "%-12s %6.1f req/s measured (model %6.1f), p95 response %.3fs\n" label
    r.Adept_sim.Scenario.throughput
    (Adept.Evaluate.rho_on params ~platform
       ~wapp:(Adept_workload.Job.wapp job)
       tree)
    (Option.value ~default:Float.nan r.Adept_sim.Scenario.p95_response);
  r.Adept_sim.Scenario.throughput

let () =
  let platform = Adept_platform.Generator.grid5000_lyon ~n:45 () in
  let wapp = Adept_workload.Dgemm.(mflops (make 310)) in
  let sorted = Adept_platform.Platform.sorted_by_power_desc platform in

  (* Day 1: the intuitive flat star over the first 40 machines (the other
     five were kept in reserve). *)
  let star =
    Result.get_ok (Adept.Baselines.star (List.filteri (fun i _ -> i < 40) sorted))
  in
  let star_rate = measure platform star ~label:"star" in

  (* The model's diagnosis. *)
  (match
     Adept.Evaluate.bottleneck params
       ~bandwidth:(Adept_platform.Platform.uniform_bandwidth platform)
       ~wapp star
   with
  | `Agent_sched -> print_endline "diagnosis: the root agent is the bottleneck"
  | `Server_sched -> print_endline "diagnosis: server prediction is the bottleneck"
  | `Service -> print_endline "diagnosis: service capacity is the bottleneck");

  (* Option A: patch the running deployment iteratively (refs [6]/[7]). *)
  let patched =
    match Adept.Improver.improve params ~platform ~wapp star with
    | Ok r ->
        Printf.printf "improver applied %d changes\n" (List.length r.Adept.Improver.steps);
        r.Adept.Improver.tree
    | Error e -> failwith e
  in
  let patched_rate = measure platform patched ~label:"patched" in

  (* Option B: replan from scratch (Algorithm 1) and redeploy via GoDIET. *)
  let replanned =
    Result.get_ok
      (Adept.Heuristic.plan_tree params ~platform ~wapp
         ~demand:Adept_model.Demand.unbounded)
  in
  let plan = Result.get_ok (Adept_godiet.Plan.of_tree replanned) in
  let engine = Adept_sim.Engine.create () in
  let launched =
    Adept_godiet.Launcher.launch ~element_delay:0.5 ~engine ~params ~platform plan
  in
  Printf.printf "redeployment: %d elements relaunched, platform back up after %.0fs\n"
    launched.Adept_godiet.Launcher.launched_elements
    launched.Adept_godiet.Launcher.ready_at;
  let replanned_rate = measure platform replanned ~label:"replanned" in

  Printf.printf
    "\nsummary: star %.0f -> patched %.0f (x%.2f) -> replanned %.0f (x%.2f)\n" star_rate
    patched_rate (patched_rate /. star_rate) replanned_rate
    (replanned_rate /. star_rate)
