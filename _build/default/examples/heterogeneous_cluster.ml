(* The Figure 6 story in miniature: on a background-loaded heterogeneous
   cluster, compare the automatically planned deployment against the two
   intuitive ones (star, balanced) by actually running them in the
   discrete-event simulator.

     dune exec examples/heterogeneous_cluster.exe *)

let clients = 150

let () =
  let params = Adept_model.Params.diet_lyon in
  let rng = Adept_util.Rng.create 11 in
  let platform = Adept_platform.Generator.grid5000_orsay ~rng ~n:60 () in
  Format.printf "platform: %a@.@." Adept_platform.Platform.pp_summary platform;
  let job = Adept_workload.Job.of_dgemm (Adept_workload.Dgemm.make 310) in
  let wapp = Adept_workload.Job.wapp job in
  let in_order = Adept_platform.Platform.nodes platform in
  let deployments =
    [
      ("star", Result.get_ok (Adept.Baselines.star in_order));
      ("balanced", Result.get_ok (Adept.Baselines.balanced ~agents:6 in_order));
      ( "automatic",
        Result.get_ok
          (Adept.Heuristic.plan_tree params ~platform ~wapp
             ~demand:Adept_model.Demand.unbounded) );
    ]
  in
  let table =
    List.fold_left
      (fun table (name, tree) ->
        let scenario =
          Adept_sim.Scenario.make ~params ~platform
            ~client:(Adept_workload.Client.closed_loop job) tree
        in
        let r =
          Adept_sim.Scenario.run_fixed scenario ~clients ~warmup:2.0 ~duration:4.0
        in
        Adept_util.Table.add_row table
          [
            name;
            Adept_hierarchy.Metrics.describe tree;
            Adept_util.Table.cell_float
              (Adept.Evaluate.rho_on params ~platform ~wapp tree);
            Adept_util.Table.cell_float r.Adept_sim.Scenario.throughput;
            Printf.sprintf "%.3f"
              (Option.value ~default:Float.nan r.Adept_sim.Scenario.mean_response);
          ])
      (Adept_util.Table.create
         [ "deployment"; "shape"; "model rho"; "measured req/s"; "mean resp (s)" ])
      deployments
  in
  Printf.printf "%d closed-loop DGEMM 310x310 clients:\n" clients;
  print_string (Adept_util.Table.render table)
