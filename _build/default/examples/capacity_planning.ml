(* Capacity planning: how many nodes does each target request rate need?

   The heuristic prefers the deployment using the least resources once the
   client demand is met (paper, Section 4), so sweeping the demand turns it
   into a sizing tool: "we expect N req/s of DGEMM 310 — what do we rent?"

     dune exec examples/capacity_planning.exe *)

let () =
  let params = Adept_model.Params.diet_lyon in
  let platform =
    Adept_platform.Generator.homogeneous ~bandwidth:1000.0 ~n:120 ~power:730.0 ()
  in
  let wapp = Adept_workload.Dgemm.(mflops (make 310)) in
  let table =
    List.fold_left
      (fun table demand ->
        match
          Adept.Heuristic.plan params ~platform ~wapp
            ~demand:(Adept_model.Demand.rate demand)
        with
        | Error e -> failwith e
        | Ok plan ->
            let m = Adept_hierarchy.Metrics.of_tree plan.Adept.Heuristic.tree in
            Adept_util.Table.add_row table
              [
                Printf.sprintf "%.0f" demand;
                string_of_bool plan.Adept.Heuristic.demand_met;
                string_of_int m.Adept_hierarchy.Metrics.nodes;
                string_of_int m.Adept_hierarchy.Metrics.agents;
                string_of_int m.Adept_hierarchy.Metrics.servers;
                Adept_util.Table.cell_float plan.Adept.Heuristic.predicted_rho;
              ])
      (Adept_util.Table.create
         [ "demand (req/s)"; "met"; "nodes"; "agents"; "servers"; "plan rho" ])
      [ 25.0; 50.0; 100.0; 200.0; 400.0; 800.0; 1600.0; 3200.0 ]
  in
  print_string (Adept_util.Table.render table);
  print_endline
    "(an unmet demand means the 120-node pool tops out: the plan shown is the \
     best achievable)"
