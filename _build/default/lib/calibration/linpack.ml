let time f =
  let t0 = Sys.time () in
  f ();
  let t1 = Sys.time () in
  Float.max 1e-9 (t1 -. t0)

let daxpy_mflops ?(n = 1_000_000) ?(repeats = 20) () =
  if n <= 0 || repeats <= 0 then invalid_arg "Linpack.daxpy_mflops: need positive sizes";
  let x = Array.make n 1.000001 and y = Array.make n 0.5 in
  let a = 1.0000001 in
  let pass () =
    for i = 0 to n - 1 do
      y.(i) <- (a *. x.(i)) +. y.(i)
    done
  in
  let seconds = time (fun () -> for _ = 1 to repeats do pass () done) in
  (* keep the result observable so the loop cannot be dead-code eliminated *)
  if y.(0) = Float.infinity then print_string "";
  2.0 *. float_of_int n *. float_of_int repeats /. seconds /. 1e6

let dgemm_mflops ?(n = 192) ?(repeats = 5) () =
  if n <= 0 || repeats <= 0 then invalid_arg "Linpack.dgemm_mflops: need positive sizes";
  let a = Array.make (n * n) 1.0001
  and b = Array.make (n * n) 0.9999
  and c = Array.make (n * n) 0.0 in
  let pass () =
    for i = 0 to n - 1 do
      for k = 0 to n - 1 do
        let aik = a.((i * n) + k) in
        let brow = k * n in
        let crow = i * n in
        for j = 0 to n - 1 do
          c.(crow + j) <- c.(crow + j) +. (aik *. b.(brow + j))
        done
      done
    done
  in
  let seconds = time (fun () -> for _ = 1 to repeats do pass () done) in
  if c.(0) = Float.infinity then print_string "";
  let flops = 2.0 *. (float_of_int n ** 3.0) *. float_of_int repeats in
  flops /. seconds /. 1e6

let measure () = dgemm_mflops ()

let simulate_background_load ~base ~load_fraction =
  if load_fraction < 0.0 || load_fraction >= 1.0 then
    invalid_arg "Linpack.simulate_background_load: load_fraction must be in [0, 1)";
  base *. (1.0 -. load_fraction)
