type estimator = Running_mean | Ewma of float | Windowed_median of int

type state =
  | Mean_state of { mutable total : float }
  | Ewma_state of { alpha : float; mutable value : float option }
  | Median_state of { window : int; mutable recent : float list (* newest first *) }

type t = {
  state : state;
  mutable n : int;
  (* Welford accumulators for the residual spread, shared by all
     estimators. *)
  mutable mean : float;
  mutable m2 : float;
}

let create estimator =
  let state =
    match estimator with
    | Running_mean -> Mean_state { total = 0.0 }
    | Ewma alpha ->
        if alpha <= 0.0 || alpha > 1.0 then
          invalid_arg "Forecast.create: Ewma alpha must be in (0, 1]";
        Ewma_state { alpha; value = None }
    | Windowed_median k ->
        if k <= 0 then invalid_arg "Forecast.create: window must be positive";
        Median_state { window = k; recent = [] }
  in
  { state; n = 0; mean = 0.0; m2 = 0.0 }

let observe_mflop t mflop =
  if mflop <= 0.0 || not (Float.is_finite mflop) then
    invalid_arg "Forecast.observe: cost must be positive and finite";
  t.n <- t.n + 1;
  let delta = mflop -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (mflop -. t.mean));
  match t.state with
  | Mean_state s -> s.total <- s.total +. mflop
  | Ewma_state s ->
      s.value <-
        Some
          (match s.value with
          | None -> mflop
          | Some v -> ((1.0 -. s.alpha) *. v) +. (s.alpha *. mflop))
  | Median_state s ->
      let keep = s.window - 1 in
      s.recent <- mflop :: List.filteri (fun i _ -> i < keep) s.recent

let observe t ~power ~seconds =
  if power <= 0.0 || seconds <= 0.0 then
    invalid_arg "Forecast.observe: power and seconds must be positive";
  observe_mflop t (seconds *. power)

let count t = t.n

let predict t =
  if t.n = 0 then None
  else
    match t.state with
    | Mean_state s -> Some (s.total /. float_of_int t.n)
    | Ewma_state s -> s.value
    | Median_state s ->
        Some (Adept_util.Stats.median (Array.of_list s.recent))

let residual_stddev t =
  if t.n < 2 then None else Some (sqrt (t.m2 /. float_of_int (t.n - 1)))

let of_trace estimator ~power ~seconds =
  let t = create estimator in
  Array.iter (fun s -> observe t ~power ~seconds:s) seconds;
  t

let pp ppf t =
  match predict t with
  | None -> Format.pp_print_string ppf "no observations"
  | Some w ->
      Format.fprintf ppf "Wapp ~ %.3f MFlop after %d observations%a" w t.n
        (fun ppf -> function
          | Some sd -> Format.fprintf ppf " (stddev %.3f)" sd
          | None -> ())
        (residual_stddev t)
