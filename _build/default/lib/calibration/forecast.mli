(** Statistical execution-time forecasting.

    The paper's model "consider[s] that we have a function to know the
    execution time"; its conclusion proposes "another approach with
    statistical mathematical function to forecast the execution time".
    This module provides that approach: online estimators fed with
    observed service durations, producing the [Wapp] the planner needs
    when the application's cost is not known analytically.

    Observations are given in seconds together with the serving node's
    power; estimation happens in MFlop space so heterogeneous servers'
    observations combine. *)

type estimator =
  | Running_mean  (** Arithmetic mean of all observations. *)
  | Ewma of float
      (** Exponentially weighted moving average with smoothing factor
          [alpha] in (0, 1]; tracks drifting workloads. *)
  | Windowed_median of int
      (** Median of the last [k] observations; robust to outliers. *)

type t

val create : estimator -> t
(** @raise Invalid_argument on [Ewma] alpha outside (0, 1] or a
    non-positive window. *)

val observe : t -> power:float -> seconds:float -> unit
(** Record one completed service: it ran [seconds] on a node of [power]
    MFlop/s, i.e. cost [seconds *. power] MFlop.
    @raise Invalid_argument on non-positive inputs. *)

val observe_mflop : t -> float -> unit
(** Record a cost already in MFlop. *)

val count : t -> int

val predict : t -> float option
(** Estimated [Wapp] in MFlop; [None] before any observation (or before
    the window fills for [Windowed_median]... it predicts from what it
    has once at least one observation exists). *)

val residual_stddev : t -> float option
(** Sample standard deviation of the observations seen so far (all
    estimators track it); [None] below two observations. *)

val of_trace :
  estimator -> power:float -> seconds:float array -> t
(** Batch construction from a timing trace. *)

val pp : Format.formatter -> t -> unit
