(** Reproduction of Table 3: extracting the middleware cost parameters
    from (simulated) measurements.

    The paper deployed an agent and a single DGEMM server on the Lyon
    cluster, launched 100 serial clients, captured all traffic with
    tcpdump/Ethereal for the message sizes, used DIET's statistics
    collection for per-element processing times, ran a family of star
    deployments for the [Wrep(d)] linear fit, and converted times to
    MFlop with the Linpack node capacity.  This module runs the same
    protocol against the simulator and reconstructs every Table 3 entry;
    agreement with the injected {!Adept_model.Params.diet_lyon} constants
    validates the measurement pipeline end to end. *)

type measured = {
  params : Adept_model.Params.t;  (** The reconstructed Table 3. *)
  wrep_correlation : float;  (** r of the Wrep fit (paper: 0.97). *)
  requests_observed : int;  (** Scheduling requests in the capture. *)
}

val run :
  ?requests:int ->
  ?fit_degrees:int list ->
  reference:Adept_model.Params.t ->
  node_power:float ->
  unit ->
  (measured, string) result
(** Run the calibration campaign on a simulated Lyon-like cluster whose
    middleware is parameterised by [reference], and reconstruct the
    parameters from the traces alone.  Defaults: 100 requests (the
    paper's count), fit degrees 1..8. *)

val to_table : measured -> Adept_util.Table.t
(** Table 3 layout of the reconstructed parameters. *)

val relative_errors :
  measured -> reference:Adept_model.Params.t -> (string * float) list
(** Relative reconstruction error per parameter, for tests and the
    EXPERIMENTS.md report. *)
