lib/calibration/fit.mli: Adept_model Adept_platform
