lib/calibration/table3.ml: Adept_hierarchy Adept_model Adept_platform Adept_sim Adept_workload Array Fit Float List Printf Result
