lib/calibration/forecast.mli: Format
