lib/calibration/table3.mli: Adept_model Adept_util
