lib/calibration/fit.ml: Adept_hierarchy Adept_platform Adept_sim Adept_util Array Int List Printf
