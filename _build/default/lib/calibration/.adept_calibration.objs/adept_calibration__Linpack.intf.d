lib/calibration/linpack.mli:
