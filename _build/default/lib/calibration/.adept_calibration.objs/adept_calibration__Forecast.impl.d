lib/calibration/forecast.ml: Adept_util Array Float Format List
