lib/calibration/linpack.ml: Array Float Sys
