(** Parameter fitting from traces.

    Reproduces the paper's measurement pipeline: deploy an agent with a
    single server, run clients serially, capture traffic and per-element
    timings, then fit [Wrep] against agent degree over a family of star
    deployments ("a linear data fit provided a very accurate model ...
    with a correlation coefficient of 0.97"). *)

type wrep_fit = {
  wfix : float;  (** Fitted fixed cost, MFlop. *)
  wsel : float;  (** Fitted per-child cost, MFlop. *)
  correlation : float;  (** r of the time-vs-degree regression. *)
}

val fit_wrep : power:float -> (int * float) array -> (wrep_fit, string) result
(** [(degree, seconds)] samples from {!Adept_sim.Trace.reply_samples};
    times are converted to MFlop with the node power (the paper "measured
    the capacity of our test machines in MFlops ... and this value is used
    to convert all measured times to estimates of the MFlops required").
    Needs samples at two or more distinct degrees. *)

val mean_seconds_to_mflop : power:float -> float array -> float option
(** Convert timing samples to a single MFlop estimate ([None] on empty
    input) — used for [Wreq] and [Wpre]. *)

val star_reply_samples :
  params:Adept_model.Params.t ->
  platform:Adept_platform.Platform.t ->
  degrees:int list ->
  requests:int ->
  wapp:float ->
  (int * float) array
(** Run one simulated star deployment per degree (the paper's "variety of
    star deployments including an agent and different numbers of
    servers"), driving [requests] serial client requests each, and collect
    the agent reply-processing samples.  The platform must have at least
    [max degrees + 1] nodes.
    @raise Invalid_argument otherwise. *)
