(** A Linpack-style mini-benchmark.

    The paper measured node capacity "in MFlops using a mini-benchmark
    extracted from Linpack" — both to parameterise the model and to
    re-measure nodes after background-loading them.  This module measures
    the actual machine it runs on (dense DAXPY/DGEMM-like kernels over a
    fixed problem size), which the CLI's [bench-node] command and the
    calibration tests use.  Synthetic experiments use fixed powers instead
    so results stay deterministic. *)

val daxpy_mflops : ?n:int -> ?repeats:int -> unit -> float
(** Measured MFlop/s of a [y <- a*x + y] sweep ([2n] flops per pass).
    Defaults: n = 1_000_000, repeats = 20. *)

val dgemm_mflops : ?n:int -> ?repeats:int -> unit -> float
(** Measured MFlop/s of a naive triple-loop [n x n] matrix multiply
    ([2 n^3] flops per pass).  Defaults: n = 192, repeats = 5. *)

val measure : unit -> float
(** The node-capacity figure used for calibration: the DGEMM measurement
    (closer to the workload than DAXPY). *)

val simulate_background_load : base:float -> load_fraction:float -> float
(** What the mini-benchmark would report on a node whose cycles are
    [load_fraction] consumed by background work — the paper's
    heterogenisation arithmetic, exposed for tests.
    @raise Invalid_argument unless [0 <= load_fraction < 1]. *)
