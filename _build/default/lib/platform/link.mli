(** Interconnect model.

    The paper's primary model assumes homogeneous connectivity: every pair
    of nodes communicates at bandwidth [B] (Mbit/s), optionally with a
    per-message latency.  The paper lists heterogeneous communication as
    future work; we expose a per-cluster-pair bandwidth table as that
    extension point while keeping the homogeneous model as the default used
    by all paper experiments. *)

type t

val homogeneous : ?latency:float -> bandwidth:float -> unit -> t
(** Uniform bandwidth in Mbit/s and optional one-way latency in seconds
    (default 0).  @raise Invalid_argument if [bandwidth <= 0] or
    [latency < 0]. *)

val inter_cluster :
  default:float ->
  ?latency:float ->
  ((string * string) * float) list ->
  t
(** Bandwidth per unordered cluster pair, falling back to [default] —
    the future-work heterogeneous extension.  Pairs are symmetric:
    [(a, b)] also applies to [(b, a)].
    @raise Invalid_argument on non-positive bandwidths. *)

val bandwidth : t -> Node.t -> Node.t -> float
(** Bandwidth of the link between two nodes, Mbit/s. *)

val latency : t -> float
(** One-way latency in seconds (uniform). *)

val is_homogeneous : t -> bool
(** True when every pair sees the same bandwidth — required by the
    planner's model (Eq. 14–16 assume a single [B]). *)

val uniform_bandwidth : t -> float option
(** [Some b] iff {!is_homogeneous}. *)

val pp : Format.formatter -> t -> unit
