(** A deployment platform: the set of candidate nodes plus the interconnect.

    This is the input to every planner and to the simulator.  Node ids are
    dense: node [i] of an [n]-node platform has [Node.id = i]. *)

type t

val create : ?link:Link.t -> Node.t list -> t
(** [create nodes] builds a platform.  The default link is homogeneous
    1000 Mbit/s with zero latency.
    @raise Invalid_argument if the node list is empty, if ids are not
    exactly [0 .. n-1], or if two nodes share a name. *)

val of_powers : ?link:Link.t -> ?cluster:string -> float list -> t
(** Convenience: node [i] is named ["node-<i>"] with the given power. *)

val size : t -> int
val nodes : t -> Node.t list
val node : t -> Node.id -> Node.t
(** @raise Invalid_argument on an out-of-range id. *)

val link : t -> Link.t

val bandwidth : t -> Node.id -> Node.id -> float
(** Link bandwidth between two nodes, Mbit/s. *)

val uniform_bandwidth : t -> float
(** The single [B] of a homogeneous-connectivity platform.
    @raise Invalid_argument when connectivity is heterogeneous (the
    planner's model requires homogeneous links; callers must check
    {!Link.is_homogeneous} before planning on exotic platforms). *)

val total_power : t -> float
(** Sum of node powers, MFlop/s. *)

val is_homogeneous_compute : t -> bool
(** True when all nodes have equal power (Table 4's setting). *)

val sorted_by_power_desc : t -> Node.t list
(** Deterministic order: decreasing power, ties by id. *)

val subset : t -> Node.id list -> Node.t list
(** Resolve ids to nodes, preserving order.
    @raise Invalid_argument on out-of-range ids or duplicates. *)

val pp : Format.formatter -> t -> unit
val pp_summary : Format.formatter -> t -> unit
