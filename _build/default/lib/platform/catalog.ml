let to_string platform =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "# adept platform catalog\n";
  let link = Platform.link platform in
  (match Link.uniform_bandwidth link with
  | Some b ->
      Buffer.add_string buf
        (Printf.sprintf "link homogeneous bandwidth=%.17g latency=%.17g\n" b
           (Link.latency link))
  | None ->
      (* Heterogeneous: emit the per-pair table observed between clusters. *)
      let nodes = Platform.nodes platform in
      let clusters =
        List.sort_uniq String.compare (List.map Node.cluster nodes)
      in
      let representative c = List.find (fun n -> Node.cluster n = c) nodes in
      let intra =
        match clusters with
        | c :: _ ->
            let n = representative c in
            Link.bandwidth link n n
        | [] -> 1000.0
      in
      Buffer.add_string buf
        (Printf.sprintf "link inter-cluster default=%.17g latency=%.17g\n" intra
           (Link.latency link));
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              if String.compare a b < 0 then
                let bw = Link.bandwidth link (representative a) (representative b) in
                if bw <> intra then
                  Buffer.add_string buf
                    (Printf.sprintf "peer a=%s b=%s bandwidth=%.17g\n" a b bw))
            clusters)
        clusters);
  List.iter
    (fun n ->
      Buffer.add_string buf
        (Printf.sprintf "node name=%s power=%.17g cluster=%s\n" (Node.name n)
           (Node.power n) (Node.cluster n)))
    (Platform.nodes platform);
  Buffer.contents buf

type parse_state = {
  mutable link_kind : [ `Unset | `Homogeneous of float * float | `Inter of float * float ];
  mutable peers : ((string * string) * float) list;
  mutable rev_nodes : (string * float * string) list;
}

let parse_kv line =
  (* "key=value key=value ..." after the leading keyword. *)
  String.split_on_char ' ' line
  |> List.filter (fun s -> s <> "")
  |> List.filter_map (fun tok ->
         match String.index_opt tok '=' with
         | None -> None
         | Some i ->
             Some (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1)))

let find_field fields key lineno =
  match List.assoc_opt key fields with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "line %d: missing field %S" lineno key)

let float_field fields key lineno =
  match find_field fields key lineno with
  | Error _ as e -> e
  | Ok v -> (
      match float_of_string_opt v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "line %d: field %S is not a number" lineno key))

let float_field_default fields key default lineno =
  match List.assoc_opt key fields with
  | None -> Ok default
  | Some v -> (
      match float_of_string_opt v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "line %d: field %S is not a number" lineno key))

let ( let* ) = Result.bind

let parse_line state lineno line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Ok ()
  else
    match String.index_opt line ' ' with
    | None -> Error (Printf.sprintf "line %d: malformed line %S" lineno line)
    | Some i -> (
        let keyword = String.sub line 0 i in
        let rest = String.sub line i (String.length line - i) in
        let fields = parse_kv rest in
        match keyword with
        | "link" ->
            let kind = String.trim (List.hd (String.split_on_char ' ' (String.trim rest))) in
            let* bw =
              if kind = "homogeneous" then float_field fields "bandwidth" lineno
              else float_field fields "default" lineno
            in
            let* latency = float_field_default fields "latency" 0.0 lineno in
            if kind = "homogeneous" then (
              state.link_kind <- `Homogeneous (bw, latency);
              Ok ())
            else if kind = "inter-cluster" then (
              state.link_kind <- `Inter (bw, latency);
              Ok ())
            else Error (Printf.sprintf "line %d: unknown link kind %S" lineno kind)
        | "peer" ->
            let* a = find_field fields "a" lineno in
            let* b = find_field fields "b" lineno in
            let* bw = float_field fields "bandwidth" lineno in
            state.peers <- ((a, b), bw) :: state.peers;
            Ok ()
        | "node" ->
            let* name = find_field fields "name" lineno in
            let* power = float_field fields "power" lineno in
            let cluster =
              match List.assoc_opt "cluster" fields with Some c -> c | None -> "default"
            in
            state.rev_nodes <- (name, power, cluster) :: state.rev_nodes;
            Ok ()
        | other -> Error (Printf.sprintf "line %d: unknown keyword %S" lineno other))

let of_string text =
  let state = { link_kind = `Unset; peers = []; rev_nodes = [] } in
  let lines = String.split_on_char '\n' text in
  let rec go lineno = function
    | [] -> Ok ()
    | line :: rest -> (
        match parse_line state lineno line with
        | Ok () -> go (lineno + 1) rest
        | Error _ as e -> e)
  in
  let* () = go 1 lines in
  let* link =
    match state.link_kind with
    | `Unset -> Ok (Link.homogeneous ~bandwidth:1000.0 ())
    | `Homogeneous (b, latency) -> (
        try Ok (Link.homogeneous ~bandwidth:b ~latency ())
        with Invalid_argument m -> Error m)
    | `Inter (default, latency) -> (
        try Ok (Link.inter_cluster ~default ~latency (List.rev state.peers))
        with Invalid_argument m -> Error m)
  in
  let node_specs = List.rev state.rev_nodes in
  if node_specs = [] then Error "catalog declares no nodes"
  else
    try
      let nodes =
        List.mapi
          (fun i (name, power, cluster) -> Node.make ~id:i ~name ~power ~cluster ())
          node_specs
      in
      Ok (Platform.create ~link nodes)
    with Invalid_argument m -> Error m

let save platform path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string platform))

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error m -> Error m
