lib/platform/generator.ml: Adept_util Array Link List Node Platform Printf
