lib/platform/node.ml: Float Format Int
