lib/platform/node.mli: Format
