lib/platform/platform.mli: Format Link Node
