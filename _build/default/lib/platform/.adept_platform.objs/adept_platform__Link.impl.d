lib/platform/link.ml: Float Format List Map Node String
