lib/platform/catalog.ml: Buffer Fun In_channel Link List Node Platform Printf Result String
