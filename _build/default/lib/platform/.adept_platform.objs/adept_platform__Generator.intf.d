lib/platform/generator.mli: Adept_util Platform
