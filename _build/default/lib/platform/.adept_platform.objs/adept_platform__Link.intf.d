lib/platform/link.mli: Format Node
