lib/platform/platform.ml: Adept_util Array Format Hashtbl Link List Node Printf
