lib/platform/catalog.mli: Platform
