module Pair_map = Map.Make (struct
  type t = string * string

  let compare = compare
end)

type t =
  | Homogeneous of { bandwidth : float; latency : float }
  | Inter_cluster of { default : float; table : float Pair_map.t; latency : float }

let check_bandwidth b =
  if b <= 0.0 || not (Float.is_finite b) then
    invalid_arg "Link: bandwidth must be positive and finite"

let check_latency l =
  if l < 0.0 || not (Float.is_finite l) then
    invalid_arg "Link: latency must be non-negative and finite"

let homogeneous ?(latency = 0.0) ~bandwidth () =
  check_bandwidth bandwidth;
  check_latency latency;
  Homogeneous { bandwidth; latency }

let canonical (a, b) = if String.compare a b <= 0 then (a, b) else (b, a)

let inter_cluster ~default ?(latency = 0.0) entries =
  check_bandwidth default;
  check_latency latency;
  let table =
    List.fold_left
      (fun acc (pair, b) ->
        check_bandwidth b;
        Pair_map.add (canonical pair) b acc)
      Pair_map.empty entries
  in
  Inter_cluster { default; table; latency }

let bandwidth t a b =
  match t with
  | Homogeneous { bandwidth; _ } -> bandwidth
  | Inter_cluster { default; table; _ } -> (
      let key = canonical (Node.cluster a, Node.cluster b) in
      match Pair_map.find_opt key table with Some b -> b | None -> default)

let latency = function
  | Homogeneous { latency; _ } -> latency
  | Inter_cluster { latency; _ } -> latency

let is_homogeneous = function
  | Homogeneous _ -> true
  | Inter_cluster { default; table; _ } ->
      Pair_map.for_all (fun _ b -> b = default) table

let uniform_bandwidth t =
  match t with
  | Homogeneous { bandwidth; _ } -> Some bandwidth
  | Inter_cluster { default; _ } -> if is_homogeneous t then Some default else None

let pp ppf = function
  | Homogeneous { bandwidth; latency } ->
      Format.fprintf ppf "homogeneous %.0f Mbit/s (latency %.3g s)" bandwidth latency
  | Inter_cluster { default; table; latency } ->
      Format.fprintf ppf "inter-cluster default %.0f Mbit/s, %d overrides (latency %.3g s)"
        default (Pair_map.cardinal table) latency
