(** Plain-text platform catalogs.

    A catalog is the textual description of a platform, analogous to the
    resource-description XML files consumed by ADAGE/GoDIET.  The format is
    line-oriented:

    {v
    # comment
    link homogeneous bandwidth=100 latency=0
    node name=lyon-0 power=730 cluster=lyon
    node name=lyon-1 power=730 cluster=lyon
    v}

    Node ids are assigned in file order.  Heterogeneous links use
    [link inter-cluster default=1000 latency=0] followed by
    [peer a=orsay b=lyon bandwidth=50] lines. *)

val to_string : Platform.t -> string
(** Serialise a platform; {!of_string} of the result is the identity up to
    node ids (which are positional in both). *)

val of_string : string -> (Platform.t, string) result
(** Parse a catalog.  Errors carry a line number and reason. *)

val save : Platform.t -> string -> unit
(** Write {!to_string} to a file. *)

val load : string -> (Platform.t, string) result
(** Read and parse a file; [Error] on IO failure too. *)
