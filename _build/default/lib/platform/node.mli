(** Computational resources.

    A node is the unit the planner assigns middleware elements to.  Per the
    paper's platform model, a node is characterised by its computing power
    [w] in MFlop/s (measured with a Linpack mini-benchmark in the paper);
    connectivity is homogeneous and lives on the {!Platform.t}. *)

type id = int
(** Dense, zero-based node identifiers; they index adjacency matrices. *)

type t = private {
  id : id;
  name : string;
  power : float;  (** [w], MFlop/s; strictly positive. *)
  cluster : string;  (** Site/cluster label, e.g. ["orsay"]. *)
}

val make : id:id -> name:string -> power:float -> ?cluster:string -> unit -> t
(** @raise Invalid_argument if [power <= 0], [id < 0] or [name = ""]. *)

val id : t -> id
val name : t -> string
val power : t -> float
val cluster : t -> string

val with_power : t -> float -> t
(** Same node with a different measured power (used by background-load
    heterogenisation).  @raise Invalid_argument if the power is not
    positive. *)

val compare_by_power_desc : t -> t -> int
(** Sort key: decreasing power, ties by increasing id (deterministic). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
