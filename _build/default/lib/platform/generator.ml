module Rng = Adept_util.Rng

(* 730 MFlop/s reproduces the paper's DGEMM 200x200 single-server
   throughput of ~45 req/s: 2*200^3 flop = 16 MFlop per request, plus the
   Table 3 prediction cost, gives 1/((16 + 0.0064)/730) ~ 45.6 req/s. *)
let era_node_power = 730.0

let check_n n = if n <= 0 then invalid_arg "Generator: n must be positive"

let make_nodes ?(cluster = "default") ~n power_of_index =
  List.init n (fun i ->
      Node.make ~id:i
        ~name:(Printf.sprintf "%s-%d" cluster i)
        ~power:(power_of_index i) ~cluster ())

let homogeneous ?(bandwidth = 1000.0) ?cluster ~n ~power () =
  check_n n;
  let link = Link.homogeneous ~bandwidth () in
  Platform.create ~link (make_nodes ?cluster ~n (fun _ -> power))

let uniform_heterogeneous ?(bandwidth = 1000.0) ?cluster ~rng ~n ~power_min ~power_max () =
  check_n n;
  if power_min <= 0.0 || power_max < power_min then
    invalid_arg "Generator.uniform_heterogeneous: need 0 < power_min <= power_max";
  let powers = Array.init n (fun _ -> Rng.float_in rng power_min power_max) in
  let link = Link.homogeneous ~bandwidth () in
  Platform.create ~link (make_nodes ?cluster ~n (fun i -> powers.(i)))

let background_loaded ?(bandwidth = 1000.0) ?cluster ~rng ~n ~power ~load_fraction
    ~load_levels () =
  check_n n;
  if load_fraction < 0.0 || load_fraction >= 1.0 then
    invalid_arg "Generator.background_loaded: load_fraction must be in [0, 1)";
  if load_levels < 1 then
    invalid_arg "Generator.background_loaded: load_levels must be >= 1";
  let level_power level =
    if load_levels = 1 then power
    else
      let k = float_of_int level /. float_of_int (load_levels - 1) in
      power *. (1.0 -. (load_fraction *. k))
  in
  let powers = Array.init n (fun _ -> level_power (Rng.int rng load_levels)) in
  let link = Link.homogeneous ~bandwidth () in
  Platform.create ~link (make_nodes ?cluster ~n (fun i -> powers.(i)))

let grid5000_orsay ~rng ~n () =
  background_loaded ~bandwidth:1000.0 ~cluster:"orsay" ~rng ~n ~power:era_node_power
    ~load_fraction:0.65 ~load_levels:4 ()

let grid5000_lyon ~n () =
  homogeneous ~bandwidth:100.0 ~cluster:"lyon" ~n ~power:era_node_power ()

let two_sites ~rng ~n_orsay ~n_lyon ~wan_bandwidth () =
  check_n n_orsay;
  check_n n_lyon;
  let orsay =
    List.init n_orsay (fun i ->
        let loaded = Rng.int rng 4 in
        let power = era_node_power *. (1.0 -. (0.65 *. float_of_int loaded /. 3.0)) in
        Node.make ~id:i ~name:(Printf.sprintf "orsay-%d" i) ~power ~cluster:"orsay" ())
  in
  let lyon =
    List.init n_lyon (fun i ->
        Node.make ~id:(n_orsay + i)
          ~name:(Printf.sprintf "lyon-%d" i)
          ~power:era_node_power ~cluster:"lyon" ())
  in
  let link =
    Link.inter_cluster ~default:1000.0 [ (("orsay", "lyon"), wan_bandwidth) ]
  in
  Platform.create ~link (orsay @ lyon)
