type id = int

type t = { id : id; name : string; power : float; cluster : string }

let make ~id ~name ~power ?(cluster = "default") () =
  if power <= 0.0 || not (Float.is_finite power) then
    invalid_arg "Node.make: power must be positive and finite";
  if id < 0 then invalid_arg "Node.make: id must be non-negative";
  if name = "" then invalid_arg "Node.make: name must be non-empty";
  { id; name; power; cluster }

let id t = t.id
let name t = t.name
let power t = t.power
let cluster t = t.cluster

let with_power t power =
  if power <= 0.0 || not (Float.is_finite power) then
    invalid_arg "Node.with_power: power must be positive and finite";
  { t with power }

let compare_by_power_desc a b =
  match Float.compare b.power a.power with 0 -> Int.compare a.id b.id | c -> c

let equal a b = a.id = b.id && a.name = b.name && a.power = b.power && a.cluster = b.cluster

let compare a b = Int.compare a.id b.id

let pp ppf t = Format.fprintf ppf "%s#%d(%.0f MFlop/s)" t.name t.id t.power
