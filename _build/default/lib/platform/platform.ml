type t = { nodes : Node.t array; link : Link.t }

let default_link = Link.homogeneous ~bandwidth:1000.0 ()

let create ?(link = default_link) nodes =
  if nodes = [] then invalid_arg "Platform.create: empty node list";
  let arr = Array.of_list nodes in
  Array.iteri
    (fun i n ->
      if Node.id n <> i then
        invalid_arg
          (Printf.sprintf "Platform.create: node at position %d has id %d (ids must be dense)"
             i (Node.id n)))
    arr;
  let names = Hashtbl.create (Array.length arr) in
  Array.iter
    (fun n ->
      let name = Node.name n in
      if Hashtbl.mem names name then
        invalid_arg (Printf.sprintf "Platform.create: duplicate node name %S" name);
      Hashtbl.add names name ())
    arr;
  { nodes = arr; link }

let of_powers ?link ?(cluster = "default") powers =
  let nodes =
    List.mapi
      (fun i p -> Node.make ~id:i ~name:(Printf.sprintf "node-%d" i) ~power:p ~cluster ())
      powers
  in
  create ?link nodes

let size t = Array.length t.nodes

let nodes t = Array.to_list t.nodes

let node t id =
  if id < 0 || id >= Array.length t.nodes then
    invalid_arg (Printf.sprintf "Platform.node: id %d out of range" id);
  t.nodes.(id)

let link t = t.link

let bandwidth t a b = Link.bandwidth t.link (node t a) (node t b)

let uniform_bandwidth t =
  match Link.uniform_bandwidth t.link with
  | Some b -> b
  | None -> invalid_arg "Platform.uniform_bandwidth: heterogeneous connectivity"

let total_power t = Array.fold_left (fun acc n -> acc +. Node.power n) 0.0 t.nodes

let is_homogeneous_compute t =
  let p0 = Node.power t.nodes.(0) in
  Array.for_all (fun n -> Node.power n = p0) t.nodes

let sorted_by_power_desc t =
  let copy = Array.copy t.nodes in
  Array.sort Node.compare_by_power_desc copy;
  Array.to_list copy

let subset t ids =
  let seen = Hashtbl.create (List.length ids) in
  List.map
    (fun id ->
      if Hashtbl.mem seen id then
        invalid_arg (Printf.sprintf "Platform.subset: duplicate id %d" id);
      Hashtbl.add seen id ();
      node t id)
    ids

let pp_summary ppf t =
  let powers = Array.map Node.power t.nodes in
  let s = Adept_util.Stats.summarize powers in
  Format.fprintf ppf "%d nodes, power %.0f..%.0f MFlop/s (mean %.0f), link %a"
    (size t) s.Adept_util.Stats.smin s.Adept_util.Stats.smax s.Adept_util.Stats.smean
    Link.pp t.link

let pp ppf t =
  pp_summary ppf t;
  Format.pp_print_newline ppf ();
  Array.iter (fun n -> Format.fprintf ppf "  %a@." Node.pp n) t.nodes
