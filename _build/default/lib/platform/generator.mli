(** Synthetic platform generators.

    These replace physical testbed reservations.  The heterogeneous
    generator reproduces the paper's own method (Section 5.3): start from a
    homogeneous cluster and perturb node powers by running background load,
    then re-measure with the Linpack mini-benchmark.  Here the perturbation
    is drawn deterministically from an {!Adept_util.Rng.t}. *)

val homogeneous :
  ?bandwidth:float -> ?cluster:string -> n:int -> power:float -> unit -> Platform.t
(** [n] identical nodes of the given power; homogeneous links at
    [bandwidth] (default 1000 Mbit/s).  @raise Invalid_argument if
    [n <= 0]. *)

val uniform_heterogeneous :
  ?bandwidth:float ->
  ?cluster:string ->
  rng:Adept_util.Rng.t ->
  n:int ->
  power_min:float ->
  power_max:float ->
  unit ->
  Platform.t
(** Node powers drawn uniformly in [\[power_min, power_max\]]. *)

val background_loaded :
  ?bandwidth:float ->
  ?cluster:string ->
  rng:Adept_util.Rng.t ->
  n:int ->
  power:float ->
  load_fraction:float ->
  load_levels:int ->
  unit ->
  Platform.t
(** The paper's heterogenisation: each node independently receives one of
    [load_levels] background-load intensities (level 0 = unloaded), chosen
    uniformly; a node at level [k] retains
    [1 - load_fraction * k / (load_levels - 1)] of [power].
    @raise Invalid_argument unless [0 <= load_fraction < 1] and
    [load_levels >= 1] and [n > 0]. *)

val grid5000_orsay :
  rng:Adept_util.Rng.t -> n:int -> unit -> Platform.t
(** A 2008-era Grid'5000 Orsay-like site: nominal 730 MFlop/s nodes
    (anchored on the paper's DGEMM 200x200 measurements) heterogenised by
    background load over four levels up to 65%, 1000 Mbit/s LAN. *)

val grid5000_lyon : n:int -> unit -> Platform.t
(** The homogeneous Lyon-like site used for calibration (Table 3) and the
    star-hierarchy validation: 730 MFlop/s nodes, 100 Mbit/s LAN. *)

val two_sites :
  rng:Adept_util.Rng.t ->
  n_orsay:int ->
  n_lyon:int ->
  wan_bandwidth:float ->
  unit ->
  Platform.t
(** Both sites with an inter-cluster WAN bandwidth — exercises the
    heterogeneous-connectivity extension point (future work in the
    paper). *)
