lib/hierarchy/validate.mli: Adept_platform Format Node Platform Tree
