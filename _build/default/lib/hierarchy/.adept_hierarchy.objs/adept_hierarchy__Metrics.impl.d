lib/hierarchy/metrics.ml: Format Hashtbl Int List Option Printf Tree
