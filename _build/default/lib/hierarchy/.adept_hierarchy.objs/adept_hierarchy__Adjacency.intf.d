lib/hierarchy/adjacency.mli: Adept_platform Format Platform Tree
