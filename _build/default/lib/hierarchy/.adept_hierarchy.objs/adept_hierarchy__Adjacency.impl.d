lib/hierarchy/adjacency.ml: Adept_platform Array Format List Node Platform Printf Result Tree
