lib/hierarchy/xml.ml: Adept_platform Buffer Float Fun Hashtbl In_channel List Node Platform Printf Result String Tree
