lib/hierarchy/tree.mli: Adept_platform Format Node
