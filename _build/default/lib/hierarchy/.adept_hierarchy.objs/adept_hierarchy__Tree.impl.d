lib/hierarchy/tree.ml: Adept_platform Format List Node
