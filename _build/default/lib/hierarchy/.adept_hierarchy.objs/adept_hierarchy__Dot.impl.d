lib/hierarchy/dot.ml: Adept_platform Buffer Fun List Node Printf Tree
