lib/hierarchy/validate.ml: Adept_platform Format Hashtbl List Node Platform Tree
