lib/hierarchy/xml.mli: Adept_platform Platform Tree
