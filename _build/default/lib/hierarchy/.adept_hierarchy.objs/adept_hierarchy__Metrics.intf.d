lib/hierarchy/metrics.mli: Format Tree
