lib/hierarchy/dot.mli: Tree
