(** GoDIET-style XML serialisation (the paper's [write_xml]).

    The heuristic "generates an XML file ... given as an input to [the]
    deployment tool to deploy the hierarchical platform" (GoDIET).  The
    emitted document mirrors GoDIET's hierarchy section:

    {v
    <diet_hierarchy>
      <master_agent host="orsay-3" power="730">
        <agent host="orsay-7" power="693">
          <server host="orsay-12" power="550"/>
          ...
        </agent>
        ...
      </master_agent>
    </diet_hierarchy>
    v}

    The parser accepts exactly this dialect (attributes double-quoted,
    elements [master_agent], [agent], [server]); it exists so plans can be
    stored and re-launched, and for round-trip testing. *)

open Adept_platform

val to_string : Tree.t -> string
(** Serialise with 2-space indentation and a trailing newline. *)

val of_string : string -> (Tree.t, string) result
(** Parse a document produced by {!to_string} (node ids are reassigned
    densely in document order, so the round-trip preserves shape, names
    and powers but not necessarily original platform ids). *)

val of_string_on : Platform.t -> string -> (Tree.t, string) result
(** Parse and resolve each [host] attribute against the platform by node
    name, restoring original ids; fails if a host is unknown or the power
    attribute disagrees with the platform. *)

val save : Tree.t -> string -> unit
val load : string -> (Tree.t, string) result
