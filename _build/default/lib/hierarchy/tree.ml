open Adept_platform

type t = Agent of Node.t * t list | Server of Node.t

let agent node children = Agent (node, children)

let server node = Server node

let star node servers =
  if servers = [] then invalid_arg "Tree.star: empty server list";
  Agent (node, List.map (fun s -> Server s) servers)

let root_node = function Agent (n, _) | Server n -> n

let rec fold ~agent ~server = function
  | Server n -> server n
  | Agent (n, children) -> agent n (List.map (fold ~agent ~server) children)

let nodes t =
  let rec go acc = function
    | Server n -> n :: acc
    | Agent (n, children) -> List.fold_left go (n :: acc) children
  in
  List.rev (go [] t)

let agents t =
  let rec go acc = function
    | Server _ -> acc
    | Agent (n, children) -> List.fold_left go (n :: acc) children
  in
  List.rev (go [] t)

let servers t =
  let rec go acc = function
    | Server n -> n :: acc
    | Agent (_, children) -> List.fold_left go acc children
  in
  List.rev (go [] t)

let agents_with_degree t =
  let rec go acc = function
    | Server _ -> acc
    | Agent (n, children) -> List.fold_left go ((n, List.length children) :: acc) children
  in
  List.rev (go [] t)

let size t = List.length (nodes t)

let agent_count t = List.length (agents t)

let server_count t = List.length (servers t)

let rec depth = function
  | Server _ -> 0
  | Agent (_, []) -> 0
  | Agent (_, children) -> 1 + List.fold_left (fun acc c -> max acc (depth c)) 0 children

let degree = function Server _ -> 0 | Agent (_, children) -> List.length children

let parent_of t id =
  let rec go parent = function
    | Server n -> if Node.id n = id then parent else None
    | Agent (n, children) ->
        if Node.id n = id then parent
        else
          List.fold_left
            (fun acc c -> match acc with Some _ -> acc | None -> go (Some n) c)
            None children
  in
  go None t

let mem t id = List.exists (fun n -> Node.id n = id) (nodes t)

let normalize tree =
  let rec fix ~root tree =
    match tree with
    | Server _ -> [ tree ]
    | Agent (node, children) -> (
        let fixed = List.concat_map (fix ~root:false) children in
        if root then [ Agent (node, fixed) ]
        else
          match fixed with
          | [] -> [ Server node ]
          | [ only ] -> [ Server node; only ]
          | _ -> [ Agent (node, fixed) ])
  in
  match fix ~root:true tree with [ t ] -> t | _ -> assert false

let rec equal a b =
  match (a, b) with
  | Server x, Server y -> Node.equal x y
  | Agent (x, xs), Agent (y, ys) ->
      Node.equal x y && List.length xs = List.length ys && List.for_all2 equal xs ys
  | Server _, Agent _ | Agent _, Server _ -> false

let rec pp_indent indent ppf = function
  | Server n -> Format.fprintf ppf "%sserver %a@." indent Node.pp n
  | Agent (n, children) ->
      Format.fprintf ppf "%sagent  %a@." indent Node.pp n;
      List.iter (pp_indent (indent ^ "  ") ppf) children

let pp ppf t = pp_indent "" ppf t

let rec pp_compact ppf = function
  | Server n -> Format.fprintf ppf "s%d" (Node.id n)
  | Agent (n, children) ->
      Format.fprintf ppf "a%d(%a)" (Node.id n)
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_compact)
        children
