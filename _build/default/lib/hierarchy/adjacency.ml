open Adept_platform

type t = bool array array

let of_tree ~n tree =
  let m = Array.make_matrix n n false in
  let check_id id =
    if id < 0 || id >= n then
      invalid_arg (Printf.sprintf "Adjacency.of_tree: node id %d outside 0..%d" id (n - 1))
  in
  let rec go = function
    | Tree.Server node -> check_id (Node.id node)
    | Tree.Agent (node, children) ->
        let p = Node.id node in
        check_id p;
        List.iter
          (fun child ->
            let c = Node.id (Tree.root_node child) in
            check_id c;
            m.(p).(c) <- true;
            go child)
          children
  in
  go tree;
  m

let parents m =
  let n = Array.length m in
  let parent = Array.make n None in
  for p = 0 to n - 1 do
    for c = 0 to n - 1 do
      if m.(p).(c) then begin
        (match parent.(c) with
        | Some other when other <> p ->
            invalid_arg
              (Printf.sprintf "Adjacency.parents: node %d has parents %d and %d" c other p)
        | Some _ | None -> ());
        parent.(c) <- Some p
      end
    done
  done;
  parent

let used m =
  let n = Array.length m in
  let u = Array.make n false in
  for p = 0 to n - 1 do
    for c = 0 to n - 1 do
      if m.(p).(c) then begin
        u.(p) <- true;
        u.(c) <- true
      end
    done
  done;
  u

let edge_count m =
  Array.fold_left
    (fun acc row -> Array.fold_left (fun acc b -> if b then acc + 1 else acc) acc row)
    0 m

let to_tree platform m =
  let n = Array.length m in
  if n <> Platform.size platform then Error "matrix size differs from platform size"
  else
    match parents m with
    | exception Invalid_argument msg -> Error msg
    | parent -> (
        let u = used m in
        let roots = ref [] in
        for id = 0 to n - 1 do
          if u.(id) && parent.(id) = None then roots := id :: !roots
        done;
        match !roots with
        | [] -> Error "hierarchy has no root (empty matrix or cycle)"
        | _ :: _ :: _ ->
            Error
              (Printf.sprintf "hierarchy has %d roots; expected one" (List.length !roots))
        | [ root ] ->
            let children_of p =
              let cs = ref [] in
              for c = n - 1 downto 0 do
                if m.(p).(c) then cs := c :: !cs
              done;
              !cs
            in
            let rec build visiting id =
              if List.mem id visiting then Error "cycle detected"
              else
                match children_of id with
                | [] -> Ok (Tree.server (Platform.node platform id))
                | children ->
                    let rec build_all acc = function
                      | [] -> Ok (List.rev acc)
                      | c :: rest -> (
                          match build (id :: visiting) c with
                          | Ok t -> build_all (t :: acc) rest
                          | Error _ as e -> e)
                    in
                    Result.map
                      (fun children -> Tree.agent (Platform.node platform id) children)
                      (build_all [] children)
            in
            build [] root)

let pp ppf m =
  Array.iter
    (fun row ->
      Array.iter (fun b -> Format.pp_print_char ppf (if b then '1' else '0')) row;
      Format.pp_print_newline ppf ())
    m
