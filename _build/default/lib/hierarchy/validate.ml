open Adept_platform

type error =
  | Root_is_server of Node.t
  | Root_has_no_children of Node.t
  | Undersized_agent of Node.t * int
  | Duplicate_node of Node.t
  | Unknown_node of Node.t

let pp_error ppf = function
  | Root_is_server n -> Format.fprintf ppf "root %a is a server" Node.pp n
  | Root_has_no_children n -> Format.fprintf ppf "root agent %a has no children" Node.pp n
  | Undersized_agent (n, d) ->
      Format.fprintf ppf "non-root agent %a has %d child(ren); needs >= 2" Node.pp n d
  | Duplicate_node n -> Format.fprintf ppf "node %a appears more than once" Node.pp n
  | Unknown_node n -> Format.fprintf ppf "node %a is not on the platform" Node.pp n

let error_to_string e = Format.asprintf "%a" pp_error e

let errors ?platform tree =
  let errs = ref [] in
  let add e = errs := e :: !errs in
  (match tree with
  | Tree.Server n -> add (Root_is_server n)
  | Tree.Agent (n, []) -> add (Root_has_no_children n)
  | Tree.Agent (_, _ :: _) -> ());
  let rec structure ~root = function
    | Tree.Server _ -> ()
    | Tree.Agent (n, children) ->
        let d = List.length children in
        if (not root) && d < 2 then add (Undersized_agent (n, d));
        List.iter (structure ~root:false) children
  in
  structure ~root:true tree;
  let seen = Hashtbl.create 64 in
  List.iter
    (fun n ->
      let id = Node.id n in
      if Hashtbl.mem seen id then add (Duplicate_node n) else Hashtbl.add seen id ())
    (Tree.nodes tree);
  (match platform with
  | None -> ()
  | Some p ->
      List.iter
        (fun n ->
          let known =
            Node.id n < Platform.size p
            && Node.id n >= 0
            && Node.equal (Platform.node p (Node.id n)) n
          in
          if not known then add (Unknown_node n))
        (Tree.nodes tree));
  List.rev !errs

let check ?platform tree =
  match errors ?platform tree with [] -> Ok () | errs -> Error errs

let is_valid ?platform tree = errors ?platform tree = []
