open Adept_platform

let to_string ?(name = "hierarchy") tree =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  Buffer.add_string buf "  rankdir=TB;\n";
  let node_decl node shape =
    Buffer.add_string buf
      (Printf.sprintf "  n%d [shape=%s, label=\"%s\\n%.0f MFlop/s\"];\n" (Node.id node)
         shape (Node.name node) (Node.power node))
  in
  let rec go = function
    | Tree.Server node -> node_decl node "ellipse"
    | Tree.Agent (node, children) ->
        node_decl node "box";
        List.iter
          (fun child ->
            Buffer.add_string buf
              (Printf.sprintf "  n%d -> n%d;\n" (Node.id node)
                 (Node.id (Tree.root_node child)));
            go child)
          children
  in
  go tree;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let save ?name tree path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?name tree))
