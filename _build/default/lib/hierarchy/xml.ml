open Adept_platform

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then ()
    else if s.[i] = '&' then begin
      let entity_end =
        match String.index_from_opt s i ';' with Some j -> j | None -> n - 1
      in
      let entity = String.sub s i (entity_end - i + 1) in
      (match entity with
      | "&amp;" -> Buffer.add_char buf '&'
      | "&lt;" -> Buffer.add_char buf '<'
      | "&gt;" -> Buffer.add_char buf '>'
      | "&quot;" -> Buffer.add_char buf '"'
      | other -> Buffer.add_string buf other);
      go (entity_end + 1)
    end
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents buf

let to_string tree =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "<diet_hierarchy>\n";
  let attr node =
    Printf.sprintf "host=\"%s\" power=\"%.17g\"" (escape (Node.name node)) (Node.power node)
  in
  let rec emit indent element = function
    | Tree.Server node ->
        Buffer.add_string buf (Printf.sprintf "%s<server %s/>\n" indent (attr node))
    | Tree.Agent (node, children) ->
        Buffer.add_string buf (Printf.sprintf "%s<%s %s>\n" indent element (attr node));
        List.iter (emit (indent ^ "  ") "agent") children;
        Buffer.add_string buf (Printf.sprintf "%s</%s>\n" indent element)
  in
  emit "  " "master_agent" tree;
  Buffer.add_string buf "</diet_hierarchy>\n";
  Buffer.contents buf

(* --- Parsing.  Tokenise into open/close/self-closing tags, then build. --- *)

type tag = Open of string * (string * string) list | Close of string | Selfclose of string * (string * string) list

let parse_attrs s =
  (* attributes of the form key="value", separated by spaces *)
  let n = String.length s in
  let rec skip_ws i = if i < n && (s.[i] = ' ' || s.[i] = '\n' || s.[i] = '\t') then skip_ws (i + 1) else i in
  let rec go acc i =
    let i = skip_ws i in
    if i >= n then Ok (List.rev acc)
    else
      match String.index_from_opt s i '=' with
      | None -> Error (Printf.sprintf "malformed attribute near %S" (String.sub s i (n - i)))
      | Some eq ->
          let key = String.trim (String.sub s i (eq - i)) in
          if eq + 1 >= n || s.[eq + 1] <> '"' then Error "attribute value must be quoted"
          else (
            match String.index_from_opt s (eq + 2) '"' with
            | None -> Error "unterminated attribute value"
            | Some close ->
                let value = unescape (String.sub s (eq + 2) (close - eq - 2)) in
                go ((key, value) :: acc) (close + 1))
  in
  go [] 0

let tokenize text =
  let n = String.length text in
  let rec go acc i =
    if i >= n then Ok (List.rev acc)
    else if text.[i] <> '<' then
      if text.[i] = ' ' || text.[i] = '\n' || text.[i] = '\t' || text.[i] = '\r' then
        go acc (i + 1)
      else Error (Printf.sprintf "unexpected character %C at offset %d" text.[i] i)
    else
      match String.index_from_opt text i '>' with
      | None -> Error "unterminated tag"
      | Some close ->
          let inner = String.sub text (i + 1) (close - i - 1) in
          if inner = "" then Error "empty tag"
          else if inner.[0] = '/' then
            go (Close (String.trim (String.sub inner 1 (String.length inner - 1))) :: acc)
              (close + 1)
          else
            let selfclosing = inner.[String.length inner - 1] = '/' in
            let inner =
              if selfclosing then String.sub inner 0 (String.length inner - 1) else inner
            in
            let name, attrs_str =
              match String.index_opt inner ' ' with
              | None -> (String.trim inner, "")
              | Some sp ->
                  (String.sub inner 0 sp, String.sub inner sp (String.length inner - sp))
            in
            (match parse_attrs attrs_str with
            | Error _ as e -> e
            | Ok attrs ->
                let tok = if selfclosing then Selfclose (name, attrs) else Open (name, attrs) in
                go (tok :: acc) (close + 1))
  in
  go [] 0

let node_of_attrs ~id attrs =
  match (List.assoc_opt "host" attrs, List.assoc_opt "power" attrs) with
  | None, _ -> Error "element missing host attribute"
  | _, None -> Error "element missing power attribute"
  | Some host, Some power_str -> (
      match float_of_string_opt power_str with
      | None -> Error (Printf.sprintf "invalid power %S" power_str)
      | Some power -> (
          try Ok (Node.make ~id ~name:host ~power ())
          with Invalid_argument m -> Error m))

let ( let* ) = Result.bind

let build_tree tokens =
  let next_id = ref 0 in
  let fresh_node attrs =
    let id = !next_id in
    incr next_id;
    node_of_attrs ~id attrs
  in
  (* Parse one element from the token stream; returns the tree and rest. *)
  let rec element tokens =
    match tokens with
    | Selfclose ("server", attrs) :: rest ->
        let* node = fresh_node attrs in
        Ok (Tree.server node, rest)
    | Open (("agent" | "master_agent") as name, attrs) :: rest ->
        let* node = fresh_node attrs in
        let* children, rest = children name [] rest in
        if children = [] then Error (Printf.sprintf "<%s> with no children" name)
        else Ok (Tree.agent node children, rest)
    | Open (other, _) :: _ | Selfclose (other, _) :: _ ->
        Error (Printf.sprintf "unexpected element <%s>" other)
    | Close other :: _ -> Error (Printf.sprintf "unexpected closing tag </%s>" other)
    | [] -> Error "unexpected end of document"
  and children closer acc tokens =
    match tokens with
    | Close name :: rest when name = closer -> Ok (List.rev acc, rest)
    | _ ->
        let* child, rest = element tokens in
        children closer (child :: acc) rest
  in
  match tokens with
  | Open ("diet_hierarchy", _) :: rest -> (
      let* tree, rest = element rest in
      match rest with
      | [ Close "diet_hierarchy" ] -> Ok tree
      | _ -> Error "trailing content after hierarchy")
  | _ -> Error "document must start with <diet_hierarchy>"

let of_string text =
  let* tokens = tokenize text in
  build_tree tokens

let of_string_on platform text =
  let* shape = of_string text in
  let by_name = Hashtbl.create (Platform.size platform) in
  List.iter (fun n -> Hashtbl.replace by_name (Node.name n) n) (Platform.nodes platform);
  let resolve parsed =
    match Hashtbl.find_opt by_name (Node.name parsed) with
    | None -> Error (Printf.sprintf "unknown host %S" (Node.name parsed))
    | Some node ->
        if Float.abs (Node.power node -. Node.power parsed) > 1e-9 *. Node.power node then
          Error
            (Printf.sprintf "host %S power mismatch: plan says %g, platform says %g"
               (Node.name parsed) (Node.power parsed) (Node.power node))
        else Ok node
  in
  let rec rebuild = function
    | Tree.Server n ->
        let* node = resolve n in
        Ok (Tree.server node)
    | Tree.Agent (n, children) ->
        let* node = resolve n in
        let rec all acc = function
          | [] -> Ok (List.rev acc)
          | c :: rest ->
              let* c' = rebuild c in
              all (c' :: acc) rest
        in
        let* children = all [] children in
        Ok (Tree.agent node children)
  in
  rebuild shape

let save tree path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string tree))

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error m -> Error m
