(** Shape statistics of a hierarchy, used in experiment reports (the paper
    describes deployments by degree and per-level composition, e.g. "top
    agent connected with 9 agents and each agent again connected to 9
    agents"). *)

type t = {
  nodes : int;
  agents : int;
  servers : int;
  depth : int;
  max_degree : int;
  min_agent_degree : int;
  mean_agent_degree : float;
  level_sizes : int list;  (** Node count per level, root level first. *)
}

val of_tree : Tree.t -> t

val degree_histogram : Tree.t -> (int * int) list
(** [(degree, agent count)] pairs, ascending by degree. *)

val pp : Format.formatter -> t -> unit

val describe : Tree.t -> string
(** A one-line description like
    ["156 nodes: 11 agents (depth 2, degrees 5..9), 145 servers"]. *)
