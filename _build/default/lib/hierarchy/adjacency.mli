(** Adjacency-matrix view of a hierarchy (the paper's [plot_hierarchy]).

    The heuristic's output is "presented in the form of an adjacency
    matrix" before XML emission.  The matrix is indexed by platform node
    id; [m.(p).(c)] is true when node [p] is the agent parent of node
    [c]. *)

open Adept_platform

type t = bool array array

val of_tree : n:int -> Tree.t -> t
(** [of_tree ~n tree] builds the [n x n] matrix.  @raise Invalid_argument
    when a node id is outside [0 .. n-1]. *)

val to_tree : Platform.t -> t -> (Tree.t, string) result
(** Reconstruct the hierarchy.  Nodes with children become agents, used
    leaves become servers; children are attached in increasing id order.
    Errors: no root (no used node without parent), several roots, a node
    with several parents, or a cycle. *)

val parents : t -> int option array
(** [parents m] maps each node id to its parent id, [None] for unused
    nodes and the root.  @raise Invalid_argument if some node has two
    parents. *)

val used : t -> bool array
(** Nodes that appear in the hierarchy (as parent or child). *)

val edge_count : t -> int

val pp : Format.formatter -> t -> unit
(** Render as 0/1 rows, one line per parent. *)
