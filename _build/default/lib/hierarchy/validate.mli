(** Structural validation of hierarchies against the paper's rules:

    - the root is an agent with one or more children;
    - every non-root agent has two or more children;
    - servers are leaves (guaranteed by the type) with exactly one parent,
      i.e. no node appears twice;
    - resources are not shared between agents and servers (also a
      consequence of no-duplicates);
    - when a platform is supplied, every node must belong to it (same id,
      name and power). *)

open Adept_platform

type error =
  | Root_is_server of Node.t
  | Root_has_no_children of Node.t
  | Undersized_agent of Node.t * int
      (** Non-root agent with fewer than two children. *)
  | Duplicate_node of Node.t
  | Unknown_node of Node.t  (** Not on the supplied platform. *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val errors : ?platform:Platform.t -> Tree.t -> error list
(** All violations, in discovery order (root problems first). *)

val check : ?platform:Platform.t -> Tree.t -> (unit, error list) result
(** [Ok ()] when {!errors} is empty. *)

val is_valid : ?platform:Platform.t -> Tree.t -> bool
