(** Middleware hierarchies.

    A deployment hierarchy maps each used node to a role: agents are
    internal vertices (the root is the master agent), servers are leaves.
    The constructors are exposed for pattern-matching; structural
    invariants (paper, Section 1: the root has one or more children,
    non-root agents two or more, servers exactly one agent parent) are
    checked by {!Validate.check}, which planners call on their output. *)

open Adept_platform

type t =
  | Agent of Node.t * t list  (** An agent and its children, in order. *)
  | Server of Node.t  (** A leaf server. *)

val agent : Node.t -> t list -> t
(** [agent node children] — mere constructor, no validation. *)

val server : Node.t -> t

val star : Node.t -> Node.t list -> t
(** One agent with the given servers as leaves.
    @raise Invalid_argument when the server list is empty. *)

val root_node : t -> Node.t

val nodes : t -> Node.t list
(** All nodes, preorder. *)

val agents : t -> Node.t list
(** Agent nodes, preorder (root first). *)

val servers : t -> Node.t list
(** Server nodes, preorder. *)

val agents_with_degree : t -> (Node.t * int) list
(** Each agent with its child count, preorder. *)

val size : t -> int
(** Total number of nodes used. *)

val agent_count : t -> int
val server_count : t -> int

val depth : t -> int
(** Length of the longest root-to-leaf path counted in edges; a lone server
    or single agent has depth 0. *)

val degree : t -> int
(** Child count of the root (0 for a server). *)

val fold : agent:(Node.t -> 'a list -> 'a) -> server:(Node.t -> 'a) -> t -> 'a
(** Bottom-up catamorphism. *)

val parent_of : t -> Node.id -> Node.t option
(** The parent node of the node with the given id, if present and not the
    root. *)

val mem : t -> Node.id -> bool

val normalize : t -> t
(** Demote non-root agents with fewer than two children (the structural
    minimum of {!Validate}): a childless agent becomes a server in place;
    a single-child agent becomes a server with its child spliced into the
    grandparent's child list.  The root is never demoted.  Idempotent;
    used by planners to clean up frontier rounding. *)

val equal : t -> t -> bool
(** Structural equality, child order significant. *)

val pp : Format.formatter -> t -> unit
(** Indented multi-line rendering. *)

val pp_compact : Format.formatter -> t -> unit
(** One-line rendering like [a0(a1(s2 s3) s4)]. *)
