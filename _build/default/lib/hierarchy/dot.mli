(** Graphviz export of hierarchies, for documentation and debugging. *)

val to_string : ?name:string -> Tree.t -> string
(** A [digraph] with agents as boxes and servers as ellipses, labelled
    with node name and power.  [name] defaults to ["hierarchy"]. *)

val save : ?name:string -> Tree.t -> string -> unit
