type t = {
  nodes : int;
  agents : int;
  servers : int;
  depth : int;
  max_degree : int;
  min_agent_degree : int;
  mean_agent_degree : float;
  level_sizes : int list;
}

let level_sizes tree =
  let table = Hashtbl.create 16 in
  let bump level =
    Hashtbl.replace table level (1 + Option.value ~default:0 (Hashtbl.find_opt table level))
  in
  let rec go level = function
    | Tree.Server _ -> bump level
    | Tree.Agent (_, children) ->
        bump level;
        List.iter (go (level + 1)) children
  in
  go 0 tree;
  let max_level = Hashtbl.fold (fun l _ acc -> max l acc) table 0 in
  List.init (max_level + 1) (fun l -> Option.value ~default:0 (Hashtbl.find_opt table l))

let of_tree tree =
  let degrees = List.map snd (Tree.agents_with_degree tree) in
  let agents = List.length degrees in
  let max_degree = List.fold_left max 0 degrees in
  let min_agent_degree = List.fold_left min max_int degrees in
  let min_agent_degree = if agents = 0 then 0 else min_agent_degree in
  let mean_agent_degree =
    if agents = 0 then 0.0
    else float_of_int (List.fold_left ( + ) 0 degrees) /. float_of_int agents
  in
  {
    nodes = Tree.size tree;
    agents;
    servers = Tree.server_count tree;
    depth = Tree.depth tree;
    max_degree;
    min_agent_degree;
    mean_agent_degree;
    level_sizes = level_sizes tree;
  }

let degree_histogram tree =
  let table = Hashtbl.create 16 in
  List.iter
    (fun (_, d) ->
      Hashtbl.replace table d (1 + Option.value ~default:0 (Hashtbl.find_opt table d)))
    (Tree.agents_with_degree tree);
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let pp ppf t =
  Format.fprintf ppf
    "nodes=%d agents=%d servers=%d depth=%d degrees=%d..%d (mean %.1f) levels=[%a]" t.nodes
    t.agents t.servers t.depth t.min_agent_degree t.max_degree t.mean_agent_degree
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Format.pp_print_int)
    t.level_sizes

let describe tree =
  let m = of_tree tree in
  if m.agents = 0 then Printf.sprintf "%d nodes: single server" m.nodes
  else
    Printf.sprintf "%d nodes: %d agent(s) (depth %d, degrees %d..%d), %d server(s)" m.nodes
      m.agents m.depth m.min_agent_degree m.max_degree m.servers
