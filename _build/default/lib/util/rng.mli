(** Deterministic pseudo-random number generation.

    Every stochastic component of the library (platform generators, random
    baselines, property tests) draws from this splittable SplitMix64
    generator so that experiments are reproducible from a single seed.
    The generator is explicit state: no global mutable RNG is used. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from an integer seed.  Equal seeds
    yield equal streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent from the continuation of [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output of SplitMix64. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)].  [bound] must be finite and
    positive. *)

val float_in : t -> float -> float -> float
(** [float_in t lo hi] is uniform in [\[lo, hi)]. *)

val bool : t -> bool
(** Fair coin. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed positive value with the given mean. *)

val normal : t -> mean:float -> stddev:float -> float
(** Gaussian value (Box–Muller). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array.
    @raise Invalid_argument on an empty array. *)

val pick_weighted : t -> ('a * float) array -> 'a
(** [pick_weighted t choices] selects proportionally to the (non-negative,
    not all zero) weights.  @raise Invalid_argument otherwise. *)
