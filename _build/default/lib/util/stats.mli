(** Descriptive statistics and least-squares fits.

    Used by the calibration pipeline (the paper fits [Wrep] against agent
    degree with a linear model, correlation 0.97), by the simulator's
    measurement windows, and by experiment reporting. *)

val mean : float array -> float
(** Arithmetic mean.  @raise Invalid_argument on an empty array. *)

val variance : float array -> float
(** Unbiased sample variance (n-1 denominator); 0 for singletons.
    @raise Invalid_argument on an empty array. *)

val stddev : float array -> float
(** Square root of {!variance}. *)

val minimum : float array -> float
(** Smallest element.  @raise Invalid_argument on an empty array. *)

val maximum : float array -> float
(** Largest element.  @raise Invalid_argument on an empty array. *)

val sum : float array -> float
(** Compensated (Kahan) sum. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0, 100\]], linear interpolation between
    order statistics.  @raise Invalid_argument on an empty array or [p]
    outside the range. *)

val median : float array -> float
(** [percentile xs 50.]. *)

type linear_fit = {
  slope : float;
  intercept : float;
  r : float;  (** Pearson correlation coefficient. *)
}

val linear_regression : (float * float) array -> linear_fit
(** Ordinary least squares on [(x, y)] samples.  Requires at least two
    samples with non-zero x variance; [r] is 1 when y variance is zero.
    @raise Invalid_argument otherwise. *)

val confidence_interval_95 : float array -> float * float
(** [(mean, half_width)] of the normal-approximation 95% confidence
    interval of the mean. *)

type summary = {
  n : int;
  smean : float;
  sstddev : float;
  smin : float;
  smax : float;
}

val summarize : float array -> summary
(** Convenience bundle of the descriptive statistics above. *)

val pp_summary : Format.formatter -> summary -> unit
