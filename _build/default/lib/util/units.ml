let mflop_of_flop f = f /. 1e6
let flop_of_mflop m = m *. 1e6
let mbit_of_byte b = b *. 8.0 /. 1e6
let byte_of_mbit m = m *. 1e6 /. 8.0

let seconds ~w ~power =
  if power <= 0.0 then invalid_arg "Units.seconds: power must be positive";
  w /. power

let transfer_seconds ~size ~bandwidth =
  if bandwidth <= 0.0 then
    invalid_arg "Units.transfer_seconds: bandwidth must be positive";
  size /. bandwidth

let pp_seconds ppf t =
  if t < 1e-3 then Format.fprintf ppf "%.1fus" (t *. 1e6)
  else if t < 1.0 then Format.fprintf ppf "%.2fms" (t *. 1e3)
  else Format.fprintf ppf "%.2fs" t

let pp_throughput ppf r =
  if r >= 100.0 then Format.fprintf ppf "%.0f req/s" r
  else if r >= 1.0 then Format.fprintf ppf "%.1f req/s" r
  else Format.fprintf ppf "%.3f req/s" r
