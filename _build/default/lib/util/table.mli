(** ASCII table rendering for experiment reports.

    The benchmark harness prints each paper table/figure as an aligned text
    table; this module centralises the layout so every experiment reports
    consistently. *)

type align = Left | Right | Center

type t
(** A table under construction: a header row plus data rows. *)

val create : ?aligns:align list -> string list -> t
(** [create headers] starts a table.  [aligns] defaults to [Left] for the
    first column and [Right] for the rest (the common "label + numbers"
    shape).  @raise Invalid_argument if [aligns] is given with a length
    different from [headers]. *)

val add_row : t -> string list -> t
(** Append a data row.  @raise Invalid_argument if the arity differs from
    the header. *)

val add_separator : t -> t
(** Append a horizontal rule between data rows. *)

val render : t -> string
(** Render with box-drawing in plain ASCII ([+-|]).  Rows are emitted in
    insertion order. *)

val pp : Format.formatter -> t -> unit

val cell_float : ?decimals:int -> float -> string
(** Format a float cell; defaults to 2 decimals, switches to scientific
    notation below 1e-3. *)

val cell_percent : ?decimals:int -> float -> string
(** Format a ratio as a percentage cell, e.g. [0.89] as ["89.0%"]. *)
