(** Minimal CSV emission for experiment series (figure data points).

    Only writing is supported; values are quoted per RFC 4180 when they
    contain separators, quotes or newlines. *)

type t

val create : string list -> t
(** [create headers] starts a document with a header row. *)

val add_row : t -> string list -> t
(** Append a row.  @raise Invalid_argument on arity mismatch. *)

val add_floats : t -> float list -> t
(** Append a row of floats rendered with [%.17g] round-trip precision. *)

val to_string : t -> string
(** Render the document, rows in insertion order, LF line endings. *)

val save : t -> string -> unit
(** [save t path] writes {!to_string} to [path]. *)
