(** Units used throughout the model, following the paper's conventions:

    - computing power [w] in MFlop/s,
    - computation amounts [W] in MFlop,
    - message sizes [S] in Mbit,
    - bandwidth [B] in Mbit/s,
    - time in seconds,
    - throughput in requests/s.

    Keeping conversions in one place avoids the classic MB/Mb confusion. *)

val mflop_of_flop : float -> float
(** Flop count to MFlop. *)

val flop_of_mflop : float -> float

val mbit_of_byte : float -> float
(** Bytes to Mbit (1 Mbit = 10^6 bits). *)

val byte_of_mbit : float -> float

val seconds : w:float -> power:float -> float
(** [seconds ~w ~power] is the time to compute [w] MFlop at [power]
    MFlop/s.  @raise Invalid_argument if [power <= 0]. *)

val transfer_seconds : size:float -> bandwidth:float -> float
(** [transfer_seconds ~size ~bandwidth] is the time to move [size] Mbit at
    [bandwidth] Mbit/s.  @raise Invalid_argument if [bandwidth <= 0]. *)

val pp_seconds : Format.formatter -> float -> unit
(** Human-readable duration (us / ms / s). *)

val pp_throughput : Format.formatter -> float -> unit
(** Requests per second with adaptive precision. *)
