lib/util/csv.mli:
