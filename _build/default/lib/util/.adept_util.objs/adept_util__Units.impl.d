lib/util/units.ml: Format
