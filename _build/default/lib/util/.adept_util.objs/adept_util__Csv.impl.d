lib/util/csv.ml: Buffer Fun List Printf String
