lib/util/rng.mli:
