type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 output function (Steele, Lea, Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = bits64 t in
  { state = seed }

(* Non-negative 62-bit int from the top bits, safe on 64-bit OCaml ints. *)
let bits t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let max = (1 lsl 62) - 1 in
  let limit = max - (max mod bound) in
  let rec draw () =
    let v = bits t in
    if v >= limit then draw () else v mod bound
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  if not (Float.is_finite bound) || bound <= 0.0 then
    invalid_arg "Rng.float: bound must be finite and positive";
  (* 53 uniform mantissa bits. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int v /. 9007199254740992.0 *. bound

let float_in t lo hi =
  if hi < lo then invalid_arg "Rng.float_in: hi < lo";
  if hi = lo then lo else lo +. float t (hi -. lo)

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~mean =
  if mean <= 0.0 then invalid_arg "Rng.exponential: mean must be positive";
  let u = 1.0 -. float t 1.0 in
  -.mean *. log u

let normal t ~mean ~stddev =
  let u1 = 1.0 -. float t 1.0 in
  let u2 = float t 1.0 in
  let r = sqrt (-2.0 *. log u1) in
  mean +. (stddev *. r *. cos (2.0 *. Float.pi *. u2))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let pick_weighted t choices =
  if Array.length choices = 0 then invalid_arg "Rng.pick_weighted: empty array";
  let total =
    Array.fold_left
      (fun acc (_, w) ->
        if w < 0.0 then invalid_arg "Rng.pick_weighted: negative weight";
        acc +. w)
      0.0 choices
  in
  if total <= 0.0 then invalid_arg "Rng.pick_weighted: weights sum to zero";
  let target = float t total in
  let rec scan i acc =
    let x, w = choices.(i) in
    let acc = acc +. w in
    if target < acc || i = Array.length choices - 1 then x else scan (i + 1) acc
  in
  scan 0 0.0
