type t = { arity : int; rev_rows : string list list }

let create headers = { arity = List.length headers; rev_rows = [ headers ] }

let add_row t row =
  if List.length row <> t.arity then invalid_arg "Csv.add_row: arity mismatch";
  { t with rev_rows = row :: t.rev_rows }

let add_floats t row = add_row t (List.map (Printf.sprintf "%.17g") row)

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let quote s =
  if needs_quoting s then
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  else s

let to_string t =
  let rows = List.rev t.rev_rows in
  String.concat "\n" (List.map (fun row -> String.concat "," (List.map quote row)) rows)
  ^ "\n"

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))
