type align = Left | Right | Center

type row = Cells of string list | Separator

type t = { headers : string list; aligns : align list; rev_rows : row list }

let default_aligns headers =
  match headers with [] -> [] | _ :: rest -> Left :: List.map (fun _ -> Right) rest

let create ?aligns headers =
  let aligns =
    match aligns with
    | None -> default_aligns headers
    | Some a ->
        if List.length a <> List.length headers then
          invalid_arg "Table.create: aligns length mismatch";
        a
  in
  { headers; aligns; rev_rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: arity mismatch";
  { t with rev_rows = Cells cells :: t.rev_rows }

let add_separator t = { t with rev_rows = Separator :: t.rev_rows }

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = width - n in
    match align with
    | Left -> s ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ s
    | Center ->
        let left = fill / 2 in
        String.make left ' ' ^ s ^ String.make (fill - left) ' '

let render t =
  let rows = List.rev t.rev_rows in
  let widths = Array.of_list (List.map String.length t.headers) in
  List.iter
    (function
      | Separator -> ()
      | Cells cells ->
          List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells)
    rows;
  let aligns = Array.of_list t.aligns in
  let buf = Buffer.create 256 in
  let rule () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let line align_all cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        let a = if align_all then Center else aligns.(i) in
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad a widths.(i) c);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  rule ();
  line true t.headers;
  rule ();
  List.iter (function Separator -> rule () | Cells cells -> line false cells) rows;
  rule ();
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (render t)

let cell_float ?(decimals = 2) v =
  if v <> 0.0 && Float.abs v < 1e-3 then Format.asprintf "%.*e" decimals v
  else Format.asprintf "%.*f" decimals v

let cell_percent ?(decimals = 1) v = Format.asprintf "%.*f%%" decimals (v *. 100.0)
