let require_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty array")

let sum xs =
  (* Kahan compensated summation: measurement windows can mix very large
     counts with tiny residuals. *)
  let total = ref 0.0 and comp = ref 0.0 in
  Array.iter
    (fun x ->
      let y = x -. !comp in
      let t = !total +. y in
      comp := t -. !total -. y;
      total := t)
    xs;
  !total

let mean xs =
  require_nonempty "Stats.mean" xs;
  sum xs /. float_of_int (Array.length xs)

let variance xs =
  require_nonempty "Stats.variance" xs;
  let n = Array.length xs in
  if n = 1 then 0.0
  else
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    acc /. float_of_int (n - 1)

let stddev xs = sqrt (variance xs)

let minimum xs =
  require_nonempty "Stats.minimum" xs;
  Array.fold_left Float.min xs.(0) xs

let maximum xs =
  require_nonempty "Stats.maximum" xs;
  Array.fold_left Float.max xs.(0) xs

let percentile xs p =
  require_nonempty "Stats.percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p outside [0, 100]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let median xs = percentile xs 50.0

type linear_fit = { slope : float; intercept : float; r : float }

let linear_regression samples =
  let n = Array.length samples in
  if n < 2 then invalid_arg "Stats.linear_regression: need at least two samples";
  let xs = Array.map fst samples and ys = Array.map snd samples in
  let mx = mean xs and my = mean ys in
  let sxx = ref 0.0 and syy = ref 0.0 and sxy = ref 0.0 in
  Array.iter
    (fun (x, y) ->
      let dx = x -. mx and dy = y -. my in
      sxx := !sxx +. (dx *. dx);
      syy := !syy +. (dy *. dy);
      sxy := !sxy +. (dx *. dy))
    samples;
  if !sxx = 0.0 then invalid_arg "Stats.linear_regression: zero x variance";
  let slope = !sxy /. !sxx in
  let intercept = my -. (slope *. mx) in
  let r = if !syy = 0.0 then 1.0 else !sxy /. sqrt (!sxx *. !syy) in
  { slope; intercept; r }

let confidence_interval_95 xs =
  require_nonempty "Stats.confidence_interval_95" xs;
  let m = mean xs in
  let half = 1.96 *. stddev xs /. sqrt (float_of_int (Array.length xs)) in
  (m, half)

type summary = { n : int; smean : float; sstddev : float; smin : float; smax : float }

let summarize xs =
  require_nonempty "Stats.summarize" xs;
  {
    n = Array.length xs;
    smean = mean xs;
    sstddev = stddev xs;
    smin = minimum xs;
    smax = maximum xs;
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.6g stddev=%.6g min=%.6g max=%.6g" s.n s.smean
    s.sstddev s.smin s.smax
