(** Table 4: quality of the heterogeneous heuristic on homogeneous
    clusters, measured as the percentage of the optimal throughput
    achieved, with the degrees each planner picks.

    The paper compares against the experimentally determined optimal and
    the homogeneous model of [10]; here the reference optimum is the
    d-ary degree search itself (exact under the model on homogeneous
    platforms), and the exhaustive oracle cross-checks the smallest
    instance. *)

type row = {
  dgemm : int;
  total_nodes : int;
  paper_opt_degree : int;
  paper_homo_degree : int;
  paper_heur_degree : int;
  paper_heur_percent : float;
  homo_degree : int;  (** Our homogeneous-optimal degree. *)
  homo_rho : float;
  heur_degree : int;  (** Max degree of the heuristic's hierarchy. *)
  heur_rho : float;
  heur_percent : float;  (** heur_rho / max(homo_rho, heur_rho effective optimum) *)
}

type result = { rows : row list }

val run : Common.context -> result

val report : Common.context -> result -> Common.report
