(** Figures 4 and 5: star hierarchies with one or two servers under
    DGEMM 200x200 — the server-limited regime where the second server must
    roughly double throughput. *)

type result = {
  series_one : (int * float) list;
  series_two : (int * float) list;
  predicted_one : float;
  predicted_two : float;
  measured_one : float;
  measured_two : float;
  speedup_predicted : float;  (** predicted_two / predicted_one (~2). *)
  speedup_measured : float;
}

val run : Common.context -> result

val report : Common.context -> result -> Common.report
