(** Table 3: calibration of the middleware parameters from simulated
    traces — runs the full measurement protocol of Section 5.1 against the
    simulator and reports the reconstructed constants next to the
    injected reference values. *)

type result = {
  measured : Adept_calibration.Table3.measured;
  errors : (string * float) list;  (** Relative error per parameter. *)
  max_error : float;
}

val run : Common.context -> result

val report : Common.context -> result -> Common.report
