(** Figure 7: DGEMM 1000x1000 on the 200-node heterogeneous cluster.  The
    heuristic must degenerate to a star (service-limited regime), and that
    automatic star must beat the balanced deployment, whose middle agents
    waste 14 nodes of service capacity. *)

type deployment = {
  name : string;
  tree : Adept_hierarchy.Tree.t;
  predicted : float;
  series : (int * float) list;
  peak : float;
}

type result = {
  automatic : deployment;
  balanced : deployment;
  automatic_is_star : bool;
  automatic_wins : bool;
}

val run : Common.context -> result

val report : Common.context -> result -> Common.report
