module Table = Adept_util.Table

type result = {
  measured : Adept_calibration.Table3.measured;
  errors : (string * float) list;
  max_error : float;
}

let run (ctx : Common.context) =
  let requests = match ctx.fidelity with Common.Quick -> 20 | Common.Full -> 100 in
  match
    Adept_calibration.Table3.run ~requests ~reference:Common.params
      ~node_power:Common.node_power ()
  with
  | Error e -> failwith ("table3: " ^ e)
  | Ok measured ->
      let errors =
        Adept_calibration.Table3.relative_errors measured ~reference:Common.params
      in
      let max_error = List.fold_left (fun acc (_, e) -> Float.max acc e) 0.0 errors in
      { measured; errors; max_error }

let report _ctx r =
  let reconstructed = Adept_calibration.Table3.to_table r.measured in
  let reference = Adept_model.Params.to_table Common.params in
  let error_table =
    List.fold_left
      (fun table (name, err) ->
        Table.add_row table [ name; Table.cell_percent ~decimals:3 err ])
      (Table.create [ "parameter"; "relative error" ])
      r.errors
  in
  {
    Common.id = "table3";
    title = "Middleware parameter calibration from traces";
    paper_reference =
      "Table 3: Wreq=1.7e-1, Wrep(d)=4.0e-3+5.4e-3d, Wpre=6.4e-3 MFlop; agent \
       Srep/Sreq=5.4e-3/5.3e-3 Mb, server 6.4e-5/5.3e-5 Mb; Wrep fit correlation 0.97";
    tables =
      [
        ("Table 3 — reconstructed from traces", reconstructed);
        ("Table 3 — reference (injected)", reference);
        ("reconstruction error", error_table);
      ];
    notes =
      [
        Printf.sprintf "Wrep fit correlation: %.4f (paper: 0.97)"
          r.measured.Adept_calibration.Table3.wrep_correlation;
        Printf.sprintf "%d scheduling requests captured"
          r.measured.Adept_calibration.Table3.requests_observed;
        Printf.sprintf "max relative reconstruction error: %.3f%%" (r.max_error *. 100.0);
      ];
    series = [];
  }
