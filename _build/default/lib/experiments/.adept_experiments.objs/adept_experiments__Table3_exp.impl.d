lib/experiments/table3_exp.ml: Adept_calibration Adept_model Adept_util Common Float List Printf
