lib/experiments/fig7.ml: Adept Adept_hierarchy Adept_model Adept_platform Adept_sim Adept_util Adept_workload Common Float List Printf
