lib/experiments/registry.ml: Ablation Common Fig2_3 Fig4_5 Fig6 Fig7 List Table3_exp Table4
