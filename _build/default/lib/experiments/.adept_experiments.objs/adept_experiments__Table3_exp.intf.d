lib/experiments/table3_exp.mli: Adept_calibration Common
