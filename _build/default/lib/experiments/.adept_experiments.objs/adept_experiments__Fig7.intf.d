lib/experiments/fig7.mli: Adept_hierarchy Common
