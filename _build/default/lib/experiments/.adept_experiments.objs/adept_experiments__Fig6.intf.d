lib/experiments/fig6.mli: Adept_hierarchy Common
