lib/experiments/common.mli: Adept_model Adept_sim Adept_util
