lib/experiments/registry.mli: Common
