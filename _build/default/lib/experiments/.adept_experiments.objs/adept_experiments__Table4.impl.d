lib/experiments/table4.ml: Adept Adept_hierarchy Adept_model Adept_platform Adept_util Adept_workload Common Float List Printf
