lib/experiments/fig2_3.mli: Common
