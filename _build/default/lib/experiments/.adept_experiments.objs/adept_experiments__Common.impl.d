lib/experiments/common.ml: Adept_hierarchy Adept_model Adept_platform Adept_sim Adept_util Adept_workload Buffer Filename List Printf
