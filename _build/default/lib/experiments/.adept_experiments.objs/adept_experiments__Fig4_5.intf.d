lib/experiments/fig4_5.mli: Common
