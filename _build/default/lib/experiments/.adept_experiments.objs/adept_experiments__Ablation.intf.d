lib/experiments/ablation.mli: Common
