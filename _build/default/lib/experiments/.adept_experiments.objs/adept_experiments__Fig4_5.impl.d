lib/experiments/fig4_5.ml: Adept Adept_hierarchy Adept_platform Adept_util Adept_workload Common Float List Printf
