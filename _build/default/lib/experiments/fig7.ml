module Table = Adept_util.Table
module Csv = Adept_util.Csv
module Demand = Adept_model.Demand

type deployment = {
  name : string;
  tree : Adept_hierarchy.Tree.t;
  predicted : float;
  series : (int * float) list;
  peak : float;
}

type result = {
  automatic : deployment;
  balanced : deployment;
  automatic_is_star : bool;
  automatic_wins : bool;
}

let dgemm = 1000

let n_nodes = 200

let peak series = List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 series

let run (ctx : Common.context) =
  let clients, warmup, duration =
    match ctx.fidelity with
    (* DGEMM 1000 services run 3-16 s each, so steady state needs windows
       far longer than the other figures (the paper let the platform run
       ten minutes). *)
    | Common.Quick -> ([ 60; 160 ], 8.0, 16.0)
    | Common.Full -> ([ 50; 150; 300; 500 ], 20.0, 40.0)
  in
  let rng = Adept_util.Rng.create ctx.Common.seed in
  let platform = Adept_platform.Generator.grid5000_orsay ~rng ~n:n_nodes () in
  let wapp = Adept_workload.Dgemm.(mflops (make dgemm)) in
  let in_order = Adept_platform.Platform.nodes platform in
  let balanced_tree =
    match Adept.Baselines.balanced ~agents:14 in_order with
    | Ok t -> t
    | Error e -> failwith e
  in
  let automatic_tree =
    match
      Adept.Heuristic.plan_tree Common.params ~platform ~wapp ~demand:Demand.unbounded
    with
    | Ok t -> t
    | Error e -> failwith e
  in
  let job = Adept_workload.Job.of_dgemm (Adept_workload.Dgemm.make dgemm) in
  let measure name tree =
    let scenario =
      Adept_sim.Scenario.make ~seed:ctx.seed ~params:Common.params ~platform
        ~client:(Adept_workload.Client.closed_loop job) tree
    in
    let series = Common.measure_series scenario ~clients ~warmup ~duration in
    {
      name;
      tree;
      predicted = Adept.Evaluate.rho_on Common.params ~platform ~wapp tree;
      series;
      peak = peak series;
    }
  in
  let automatic = measure "automatic" automatic_tree in
  let balanced = measure "balanced" balanced_tree in
  {
    automatic;
    balanced;
    automatic_is_star =
      Adept_hierarchy.Tree.agent_count automatic_tree = 1;
    automatic_wins = automatic.peak >= balanced.peak;
  }

let report _ctx r =
  let shape =
    List.fold_left
      (fun table d ->
        Table.add_row table
          [
            d.name;
            Adept_hierarchy.Metrics.describe d.tree;
            Table.cell_float d.predicted;
            Table.cell_float d.peak;
          ])
      (Table.create [ "deployment"; "shape"; "predicted rho"; "measured peak" ])
      [ r.automatic; r.balanced ]
  in
  let series_table =
    List.fold_left
      (fun table (c, v) ->
        Table.add_row table
          [
            string_of_int c;
            Table.cell_float v;
            Table.cell_float (List.assoc c r.balanced.series);
          ])
      (Table.create [ "clients"; "automatic/star"; "balanced" ])
      r.automatic.series
  in
  let csv =
    List.fold_left
      (fun csv (c, v) ->
        Csv.add_floats csv [ float_of_int c; v; List.assoc c r.balanced.series ])
      (Csv.create [ "clients"; "automatic_star"; "balanced" ])
      r.automatic.series
  in
  {
    Common.id = "fig7";
    title = "Automatic (star) vs balanced, DGEMM 1000x1000, 200 heterogeneous nodes";
    paper_reference =
      "Fig. 7: the heuristic generates a star that beats the balanced deployment \
       (roughly 30 vs 25 req/s at saturation)";
    tables = [ ("deployments", shape); ("Fig. 7 — throughput vs load", series_table) ];
    notes =
      [
        Printf.sprintf "automatic deployment is a star: %b" r.automatic_is_star;
        Printf.sprintf "automatic wins at saturation: %b" r.automatic_wins;
      ];
    series = [ ("throughput", csv) ];
  }
