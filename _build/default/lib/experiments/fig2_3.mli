(** Figures 2 and 3: star hierarchies with one or two servers under
    DGEMM 10x10 — the agent-limited regime where the model must predict
    that adding a second server {e hurts}. *)

type result = {
  series_one : (int * float) list;  (** (clients, req/s), one server. *)
  series_two : (int * float) list;
  predicted_one : float;  (** Eq. 16 for the one-server star. *)
  predicted_two : float;
  measured_one : float;  (** Peak of the measured series. *)
  measured_two : float;
  second_server_hurts_predicted : bool;
  second_server_hurts_measured : bool;
}

val run : Common.context -> result

val report : Common.context -> result -> Common.report
