(** Figure 6: automatically planned deployment vs intuitive star and
    balanced deployments for DGEMM 310x310 on a 200-node heterogeneous
    cluster (background-loaded Orsay-like site), measured as throughput
    against a growing client population.

    The intuitive baselines assign nodes in platform order (the paper's
    deployments were not power-aware); the heuristic sorts by scheduling
    power. *)

type deployment = {
  name : string;
  tree : Adept_hierarchy.Tree.t;
  predicted : float;
  series : (int * float) list;
  peak : float;
}

type result = {
  star : deployment;
  balanced : deployment;
  automatic : deployment;
  automatic_wins : bool;  (** Peak of automatic >= peak of both others. *)
}

val run : Common.context -> result

val report : Common.context -> result -> Common.report
