(** Extension studies beyond the paper's evaluation, covering the design
    choices DESIGN.md calls out:

    - {b selection}: how much of the measured throughput depends on DIET's
      best-prediction server selection versus round-robin or random choice;
    - {b bandwidth}: sensitivity of the planned shape and throughput to the
      link bandwidth [B] (where does the star/two-level crossover fall);
    - {b demand}: demand-bounded planning — resources used by the smallest
      deployment meeting a target rate (the paper's "preferred deployment
      is the one using the least resources"). *)

type selection_row = { policy : string; throughput : float }

type bandwidth_row = {
  bandwidth : float;
  rho : float;
  agents : int;
  depth : int;
  max_degree : int;
}

type demand_row = {
  demand : float;
  met : bool;
  rho : float;
  nodes_used : int;
}

type improver_row = {
  start : string;  (** Starting deployment description. *)
  start_rho : float;
  improved_rho : float;
  improver_steps : int;
  heuristic_rho : float;  (** Planning from scratch on the same problem. *)
}

type result = {
  selection : selection_row list;
  bandwidth : bandwidth_row list;
  demand : demand_row list;
  improver : improver_row list;
}

val run_selection : Common.context -> selection_row list
val run_bandwidth : Common.context -> bandwidth_row list
val run_demand : Common.context -> demand_row list

val run_improver : Common.context -> improver_row list
(** The paper's Section 2 claim made runnable: the iterative
    bottleneck-removal of refs [6]/[7] "can only be used to improve the
    throughput of a deployment that has been defined by other means" —
    climb from several starting deployments and compare against planning
    from scratch. *)

type mix_row = {
  planner_basis : string;  (** Which effective Wapp the plan used. *)
  basis_wapp : float;
  plan_nodes : int;
  measured : float;  (** req/s under the true mixed load. *)
}

val run_mix : Common.context -> mix_row list
(** Multi-application planning (the paper's closing future-work item): a
    50/50 mix of cheap and expensive DGEMMs planned through one effective
    cost — arithmetic vs harmonic mean — then measured under the true
    mixed load. *)

val report_mix : Common.context -> mix_row list -> Common.report

val run_wan : Common.context -> (float * string * float) list
(** The future-work heterogeneous-communication study: plan a two-site
    platform across a sweep of WAN bandwidths with
    {!Adept.Multi_cluster.plan}; rows are (wan Mbit/s, chosen arrangement,
    rho). *)

val run : Common.context -> result

val report_selection : Common.context -> selection_row list -> Common.report
val report_bandwidth : Common.context -> bandwidth_row list -> Common.report
val report_demand : Common.context -> demand_row list -> Common.report
val report_improver : Common.context -> improver_row list -> Common.report
val report_wan : Common.context -> (float * string * float) list -> Common.report

type latency_row = {
  arrival_rate : float;
  predicted_latency : float;  (** Seconds; [infinity] when unstable. *)
  measured_latency : float;
  stable : bool;
}

val run_latency : Common.context -> latency_row list
(** Latency-vs-load validation of {!Adept.Latency} against open-loop
    simulation on the Figure 4 star. *)

val report_latency : Common.context -> latency_row list -> Common.report

type monitoring_row = {
  period : float option;  (** [None] = fresh state ([Best_prediction]). *)
  monitored_throughput : float;
}

val run_monitoring : Common.context -> monitoring_row list
(** Staleness of the footnote-1 monitoring database: measured throughput
    under the [Database] selection across report periods, with fresh
    best-prediction as the reference row. *)

val report_monitoring : Common.context -> monitoring_row list -> Common.report
