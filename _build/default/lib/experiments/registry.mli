(** Experiment registry: every paper artefact and extension by id, as the
    benchmark harness and the CLI list them. *)

type experiment = {
  id : string;
  title : string;
  run : Common.context -> Common.report;
}

val all : experiment list
(** In presentation order: table3, fig2-3, fig4-5, table4, fig6, fig7,
    ablations. *)

val find : string -> experiment option

val ids : string list
