module Table = Adept_util.Table
module Demand = Adept_model.Demand
module Rng = Adept_util.Rng

type selection_row = { policy : string; throughput : float }

type bandwidth_row = {
  bandwidth : float;
  rho : float;
  agents : int;
  depth : int;
  max_degree : int;
}

type demand_row = { demand : float; met : bool; rho : float; nodes_used : int }

type improver_row = {
  start : string;
  start_rho : float;
  improved_rho : float;
  improver_steps : int;
  heuristic_rho : float;
}

type result = {
  selection : selection_row list;
  bandwidth : bandwidth_row list;
  demand : demand_row list;
  improver : improver_row list;
}

(* Selection-policy ablation on the Fig. 6 setting: heterogeneous servers
   make the policy matter — round-robin overloads the weak ones. *)
let run_selection (ctx : Common.context) =
  let n, clients, warmup, duration =
    match ctx.fidelity with
    | Common.Quick -> (40, 60, 0.5, 1.0)
    | Common.Full -> (100, 300, 1.5, 2.5)
  in
  let rng = Rng.create ctx.Common.seed in
  let platform = Adept_platform.Generator.grid5000_orsay ~rng ~n () in
  let wapp = Adept_workload.Dgemm.(mflops (make 310)) in
  let tree =
    match
      Adept.Heuristic.plan_tree Common.params ~platform ~wapp ~demand:Demand.unbounded
    with
    | Ok t -> t
    | Error e -> failwith e
  in
  let job = Adept_workload.Job.of_dgemm (Adept_workload.Dgemm.make 310) in
  let measure policy selection =
    let scenario =
      Adept_sim.Scenario.make ~selection ~seed:ctx.seed ~params:Common.params ~platform
        ~client:(Adept_workload.Client.closed_loop job) tree
    in
    let r = Adept_sim.Scenario.run_fixed scenario ~clients ~warmup ~duration in
    { policy; throughput = r.Adept_sim.Scenario.throughput }
  in
  [
    measure "best-prediction" Adept_sim.Middleware.Best_prediction;
    measure "round-robin" Adept_sim.Middleware.Round_robin;
    measure "random" (Adept_sim.Middleware.Random_child (Rng.create (ctx.Common.seed + 1)));
  ]

(* Bandwidth sweep: the planner's shape shifts from deep hierarchies
   (cheap links let agents fan out) towards small stars as B drops. *)
let run_bandwidth (ctx : Common.context) =
  let n = match ctx.fidelity with Common.Quick -> 30 | Common.Full -> 100 in
  let bandwidths =
    match ctx.fidelity with
    | Common.Quick -> [ 10.0; 1000.0 ]
    | Common.Full -> [ 1.0; 10.0; 100.0; 1000.0; 10000.0 ]
  in
  let wapp = Adept_workload.Dgemm.(mflops (make 310)) in
  List.map
    (fun bandwidth ->
      let platform =
        Adept_platform.Generator.homogeneous ~bandwidth ~n ~power:Common.node_power ()
      in
      match
        Adept.Heuristic.plan Common.params ~platform ~wapp ~demand:Demand.unbounded
      with
      | Error e -> failwith e
      | Ok plan ->
          let m = Adept_hierarchy.Metrics.of_tree plan.Adept.Heuristic.tree in
          {
            bandwidth;
            rho = plan.Adept.Heuristic.predicted_rho;
            agents = m.Adept_hierarchy.Metrics.agents;
            depth = m.Adept_hierarchy.Metrics.depth;
            max_degree = m.Adept_hierarchy.Metrics.max_degree;
          })
    bandwidths

(* Demand sweep: resources used by the smallest plan meeting each target. *)
let run_demand (ctx : Common.context) =
  let n = match ctx.fidelity with Common.Quick -> 30 | Common.Full -> 100 in
  let platform = Adept_platform.Generator.grid5000_lyon ~n () in
  let wapp = Adept_workload.Dgemm.(mflops (make 310)) in
  let unbounded =
    match
      Adept.Heuristic.plan Common.params ~platform ~wapp ~demand:Demand.unbounded
    with
    | Ok p -> p.Adept.Heuristic.predicted_rho
    | Error e -> failwith e
  in
  let fractions = [ 0.1; 0.25; 0.5; 0.75; 0.9; 1.1 ] in
  List.map
    (fun fraction ->
      let demand = fraction *. unbounded in
      match
        Adept.Heuristic.plan Common.params ~platform ~wapp
          ~demand:(Demand.rate demand)
      with
      | Error e -> failwith e
      | Ok plan ->
          {
            demand;
            met = plan.Adept.Heuristic.demand_met;
            rho = plan.Adept.Heuristic.predicted_rho;
            nodes_used = Adept_hierarchy.Tree.size plan.Adept.Heuristic.tree;
          })
    fractions

(* Climb from several starting deployments with the iterative improver of
   refs [6]/[7] and compare against planning from scratch. *)
let run_improver (ctx : Common.context) =
  (* 45 nodes in both fidelities: the climb is pure model computation, and
     smaller pools make the optimum a star, which local climbing reaches —
     the interesting regime needs the multi-level optimum. *)
  ignore ctx.Common.seed;
  let n = 45 in
  let platform = Adept_platform.Generator.grid5000_lyon ~n () in
  let wapp = Adept_workload.Dgemm.(mflops (make 310)) in
  let sorted = Adept_platform.Platform.sorted_by_power_desc platform in
  let heuristic_rho =
    match Adept.Heuristic.plan Common.params ~platform ~wapp ~demand:Demand.unbounded with
    | Ok p -> p.Adept.Heuristic.predicted_rho
    | Error e -> failwith e
  in
  let starts =
    [
      ("1 agent + 1 server",
       Adept_hierarchy.Tree.star (List.hd sorted) [ List.nth sorted 1 ]);
      ("full star",
       match Adept.Baselines.star sorted with Ok t -> t | Error e -> failwith e);
      ("d-ary degree 3",
       match Adept.Baselines.dary ~degree:3 sorted with Ok t -> t | Error e -> failwith e);
    ]
  in
  List.map
    (fun (start, tree) ->
      let start_rho =
        Adept.Evaluate.rho_on Common.params ~platform ~wapp tree
      in
      match Adept.Improver.improve Common.params ~platform ~wapp tree with
      | Error e -> failwith e
      | Ok r ->
          {
            start;
            start_rho;
            improved_rho = r.Adept.Improver.predicted_rho;
            improver_steps = List.length r.Adept.Improver.steps;
            heuristic_rho;
          })
    starts

let run ctx =
  {
    selection = run_selection ctx;
    bandwidth = run_bandwidth ctx;
    demand = run_demand ctx;
    improver = run_improver ctx;
  }

let report_selection _ctx rows =
  let table =
    List.fold_left
      (fun t r -> Table.add_row t [ r.policy; Table.cell_float r.throughput ])
      (Table.create [ "selection policy"; "measured req/s" ])
      rows
  in
  {
    Common.id = "ablation-selection";
    title = "Server-selection policy ablation (heterogeneous Fig. 6 setting)";
    paper_reference =
      "extension: DIET selects by performance prediction; the paper does not \
       evaluate alternatives";
    tables = [ ("policies", table) ];
    notes = [];
    series = [];
  }

let report_bandwidth _ctx rows =
  let table =
    List.fold_left
      (fun t (r : bandwidth_row) ->
        Table.add_row t
          [
            Table.cell_float ~decimals:0 r.bandwidth;
            Table.cell_float r.rho;
            string_of_int r.agents;
            string_of_int r.depth;
            string_of_int r.max_degree;
          ])
      (Table.create [ "B (Mbit/s)"; "planned rho"; "agents"; "depth"; "max degree" ])
      rows
  in
  {
    Common.id = "ablation-bandwidth";
    title = "Planner sensitivity to link bandwidth";
    paper_reference =
      "extension: the paper fixes homogeneous B per site; this sweeps it";
    tables = [ ("bandwidth sweep", table) ];
    notes = [];
    series = [];
  }

let report_demand _ctx rows =
  let table =
    List.fold_left
      (fun t (r : demand_row) ->
        Table.add_row t
          [
            Table.cell_float r.demand;
            string_of_bool r.met;
            Table.cell_float r.rho;
            string_of_int r.nodes_used;
          ])
      (Table.create [ "demand (req/s)"; "met"; "plan rho"; "nodes used" ])
      rows
  in
  {
    Common.id = "ablation-demand";
    title = "Demand-bounded planning: least resources meeting a target";
    paper_reference =
      "Section 4: \"the preferred deployment is the one using the least resources\"";
    tables = [ ("demand sweep", table) ];
    notes = [];
    series = [];
  }

let report_improver _ctx rows =
  let table =
    List.fold_left
      (fun t (r : improver_row) ->
        Table.add_row t
          [
            r.start;
            Table.cell_float r.start_rho;
            Table.cell_float r.improved_rho;
            string_of_int r.improver_steps;
            Table.cell_float r.heuristic_rho;
            Table.cell_percent (r.improved_rho /. r.heuristic_rho);
          ])
      (Table.create
         [
           "starting deployment"; "start rho"; "improved rho"; "steps";
           "heuristic rho"; "improver vs heuristic";
         ])
      rows
  in
  {
    Common.id = "ablation-improver";
    title = "Iterative bottleneck removal (refs [6]/[7]) vs planning from scratch";
    paper_reference =
      "Section 2: the iterative approach \"can only be used to improve the \
       throughput of a deployment that has been defined by other means\"; the \
       heuristic needs no starting deployment";
    tables = [ ("improver climbs", table) ];
    notes =
      [
        "the improver converges to local optima (it will not trade short-term \
         throughput for structure), which is the paper's motivation for \
         planning from scratch";
      ];
    series = [];
  }

let run_wan (ctx : Common.context) =
  let n_orsay, n_lyon =
    match ctx.Common.fidelity with Common.Quick -> (16, 12) | Common.Full -> (60, 40)
  in
  let wapp = Adept_workload.Dgemm.(mflops (make 310)) in
  let bandwidths =
    match ctx.Common.fidelity with
    | Common.Quick -> [ 1.0; 1000.0 ]
    | Common.Full -> [ 0.1; 1.0; 5.0; 20.0; 100.0; 1000.0 ]
  in
  List.map
    (fun wan ->
      let rng = Rng.create ctx.Common.seed in
      let platform =
        Adept_platform.Generator.two_sites ~rng ~n_orsay ~n_lyon ~wan_bandwidth:wan ()
      in
      match
        Adept.Multi_cluster.plan Common.params ~platform ~wapp ~demand:Demand.unbounded
      with
      | Error e -> failwith e
      | Ok r ->
          let arrangement =
            match r.Adept.Multi_cluster.arrangement with
            | Adept.Multi_cluster.Single_site c -> "single:" ^ c
            | Adept.Multi_cluster.Federated c -> "federated:" ^ c
          in
          (wan, arrangement, r.Adept.Multi_cluster.predicted_rho))
    bandwidths

let report_wan _ctx rows =
  let table =
    List.fold_left
      (fun t (wan, arrangement, rho) ->
        Table.add_row t
          [ Table.cell_float ~decimals:1 wan; arrangement; Table.cell_float rho ])
      (Table.create [ "WAN (Mbit/s)"; "chosen arrangement"; "rho (req/s)" ])
      rows
  in
  {
    Common.id = "ablation-wan";
    title = "Multi-cluster planning across WAN bandwidths (future work of the paper)";
    paper_reference =
      "Section 6: \"we plan to deal with heterogeneous communication in future \
       works\" — this implements and sweeps it";
    tables = [ ("WAN sweep", table) ];
    notes =
      [
        "slow WANs make the planner keep the whole deployment inside one \
         cluster; fast WANs make the federated arrangement win";
      ];
    series = [];
  }

type mix_row = {
  planner_basis : string;  (* which effective Wapp the plan used *)
  basis_wapp : float;
  plan_nodes : int;
  measured : float;  (* req/s under the true mixed load *)
}

(* Multi-application planning: the paper's closing "deploy several
   middlewares and/or applications" item.  A mix of cheap and expensive
   requests is planned through a single effective Wapp; the arithmetic
   mean is rate-correct for sequential servers, the harmonic mean
   under-provisions. *)
let run_mix (ctx : Common.context) =
  let n = match ctx.Common.fidelity with Common.Quick -> 30 | Common.Full -> 60 in
  let clients, warmup, duration =
    match ctx.Common.fidelity with
    | Common.Quick -> (60, 2.0, 4.0)
    | Common.Full -> (150, 3.0, 8.0)
  in
  let platform = Adept_platform.Generator.grid5000_lyon ~n () in
  let cheap = Adept_workload.Job.of_dgemm (Adept_workload.Dgemm.make 100) in
  let pricey = Adept_workload.Job.of_dgemm (Adept_workload.Dgemm.make 500) in
  let mix = Adept_workload.Mix.weighted [ (cheap, 1.0); (pricey, 1.0) ] in
  let client = Adept_workload.Client.make mix in
  let bases =
    [
      ("arithmetic mean", Adept_workload.Mix.expected_wapp mix);
      ("harmonic mean", Adept_workload.Mix.harmonic_expected_wapp mix);
    ]
  in
  List.map
    (fun (planner_basis, basis_wapp) ->
      let tree =
        match
          Adept.Heuristic.plan_tree Common.params ~platform ~wapp:basis_wapp
            ~demand:Demand.unbounded
        with
        | Ok t -> t
        | Error e -> failwith e
      in
      let scenario =
        Adept_sim.Scenario.make ~seed:ctx.Common.seed ~params:Common.params ~platform
          ~client tree
      in
      let r = Adept_sim.Scenario.run_fixed scenario ~clients ~warmup ~duration in
      {
        planner_basis;
        basis_wapp;
        plan_nodes = Adept_hierarchy.Tree.size tree;
        measured = r.Adept_sim.Scenario.throughput;
      })
    bases

let report_mix _ctx rows =
  let table =
    List.fold_left
      (fun t (r : mix_row) ->
        Table.add_row t
          [
            r.planner_basis;
            Table.cell_float r.basis_wapp;
            string_of_int r.plan_nodes;
            Table.cell_float r.measured;
          ])
      (Table.create
         [ "planning basis"; "effective Wapp (MFlop)"; "plan nodes"; "measured req/s" ])
      rows
  in
  {
    Common.id = "ablation-mix";
    title = "Multi-application mixes: which effective Wapp should the planner use?";
    paper_reference =
      "Section 6: \"find a modelization to deploy several middlewares and/or \
       applications\" — a 50/50 mix of DGEMM 100 and DGEMM 500 planned through \
       one effective cost";
    tables = [ ("planning bases under the true mixed load", table) ];
    notes =
      [
        "sequential servers complete a mix at w / E[Wapp]: the arithmetic mean \
         provisions correctly, the harmonic mean plans for the cheap jobs and \
         starves the expensive ones";
      ];
    series = [];
  }

type latency_row = {
  arrival_rate : float;
  predicted_latency : float;  (* seconds; infinity when unstable *)
  measured_latency : float;
  stable : bool;
}

(* Latency-vs-load: the analytical M/D/1 companion to the throughput
   model, validated against open-loop simulation on the Fig. 4 star. *)
let run_latency (ctx : Common.context) =
  let platform = Adept_platform.Generator.grid5000_lyon ~n:3 () in
  let nodes = Adept_platform.Platform.nodes platform in
  let tree = Adept_hierarchy.Tree.star (List.hd nodes) (List.tl nodes) in
  let wapp = Adept_workload.Dgemm.(mflops (make 200)) in
  let job = Adept_workload.Job.of_dgemm (Adept_workload.Dgemm.make 200) in
  let scenario =
    Adept_sim.Scenario.make ~seed:ctx.Common.seed ~params:Common.params ~platform
      ~client:(Adept_workload.Client.closed_loop job) tree
  in
  let rates, warmup, duration =
    match ctx.Common.fidelity with
    | Common.Quick -> ([ 30.0; 70.0 ], 3.0, 8.0)
    | Common.Full -> ([ 10.0; 30.0; 45.0; 60.0; 75.0; 85.0; 95.0 ], 5.0, 20.0)
  in
  List.map
    (fun rate ->
      let est =
        Adept.Latency.estimate Common.params ~bandwidth:Common.lyon_bandwidth ~wapp
          ~rate tree
      in
      let r = Adept_sim.Scenario.run_open scenario ~rate ~warmup ~duration in
      {
        arrival_rate = rate;
        predicted_latency = est.Adept.Latency.total;
        measured_latency =
          Option.value ~default:Float.nan r.Adept_sim.Scenario.mean_response;
        stable = est.Adept.Latency.stable;
      })
    rates

let report_latency _ctx rows =
  let table =
    List.fold_left
      (fun t (r : latency_row) ->
        Table.add_row t
          [
            Table.cell_float ~decimals:0 r.arrival_rate;
            (if r.stable then Printf.sprintf "%.4f" r.predicted_latency else "unstable");
            Printf.sprintf "%.4f" r.measured_latency;
          ])
      (Table.create [ "arrivals (req/s)"; "predicted mean (s)"; "measured mean (s)" ])
      rows
  in
  {
    Common.id = "ablation-latency";
    title = "Response time vs load: M/D/1 companion model vs simulation";
    paper_reference =
      "extension: the paper models throughput only; this adds the latency side \
       on the Fig. 4 two-server star (rho = 90.7 req/s)";
    tables = [ ("latency curve", table) ];
    notes =
      [
        "the estimate combines the zero-load message/compute path with an M/D/1 \
         wait per resource; it must diverge exactly where Eq. 16 saturates";
      ];
    series = [];
  }

type monitoring_row = {
  period : float option;  (* None = fresh state (Best_prediction) *)
  monitored_throughput : float;
}

(* Staleness of the monitoring database (the paper's footnote 1): how fast
   must servers report load before selection quality collapses? *)
let run_monitoring (ctx : Common.context) =
  let n, clients, warmup, duration =
    match ctx.Common.fidelity with
    | Common.Quick -> (40, 120, 1.0, 2.0)
    | Common.Full -> (100, 300, 2.0, 4.0)
  in
  let rng = Rng.create ctx.Common.seed in
  let platform = Adept_platform.Generator.grid5000_orsay ~rng ~n () in
  let job = Adept_workload.Job.of_dgemm (Adept_workload.Dgemm.make 310) in
  let wapp = Adept_workload.Job.wapp job in
  let tree =
    match
      Adept.Heuristic.plan_tree Common.params ~platform ~wapp ~demand:Demand.unbounded
    with
    | Ok t -> t
    | Error e -> failwith e
  in
  let measure ?monitoring_period selection =
    let s =
      Adept_sim.Scenario.make ~selection ?monitoring_period ~seed:ctx.Common.seed
        ~params:Common.params ~platform
        ~client:(Adept_workload.Client.closed_loop job) tree
    in
    (Adept_sim.Scenario.run_fixed s ~clients ~warmup ~duration)
      .Adept_sim.Scenario.throughput
  in
  let fresh =
    { period = None; monitored_throughput = measure Adept_sim.Middleware.Best_prediction }
  in
  let periods =
    match ctx.Common.fidelity with
    | Common.Quick -> [ 0.01; 1.0 ]
    | Common.Full -> [ 0.01; 0.05; 0.2; 1.0; 5.0 ]
  in
  fresh
  :: List.map
       (fun period ->
         {
           period = Some period;
           monitored_throughput =
             measure ~monitoring_period:period Adept_sim.Middleware.Database;
         })
       periods

let report_monitoring _ctx rows =
  let table =
    List.fold_left
      (fun t (r : monitoring_row) ->
        Table.add_row t
          [
            (match r.period with
            | None -> "fresh state"
            | Some p -> Printf.sprintf "%.2fs reports" p);
            Table.cell_float r.monitored_throughput;
          ])
      (Table.create [ "monitoring"; "measured req/s" ])
      rows
  in
  {
    Common.id = "ablation-monitoring";
    title = "Monitoring-database staleness vs selection quality";
    paper_reference =
      "footnote 1: agents select from \"a list of servers maintained in the \
       database by frequent monitoring\" — this sweeps how frequent it must be";
    tables = [ ("monitoring period sweep", table) ];
    notes =
      [
        "stale load reports make concurrent requests herd onto whichever server \
         last reported idle; second-scale staleness costs an order of magnitude \
         of throughput on the Fig. 6 platform and is a plausible part of the \
         paper's own model-vs-testbed gap";
      ];
    series = [];
  }
