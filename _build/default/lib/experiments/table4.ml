module Table = Adept_util.Table
module Demand = Adept_model.Demand

type row = {
  dgemm : int;
  total_nodes : int;
  paper_opt_degree : int;
  paper_homo_degree : int;
  paper_heur_degree : int;
  paper_heur_percent : float;
  homo_degree : int;
  homo_rho : float;
  heur_degree : int;
  heur_rho : float;
  heur_percent : float;
}

type result = { rows : row list }

(* The paper's Table 4 rows: size, nodes, and its reported degrees/percent. *)
let cases =
  [
    (10, 21, 1, 1, 1, 1.0);
    (100, 25, 2, 2, 2, 1.0);
    (310, 45, 15, 22, 33, 0.89);
    (1000, 21, 20, 20, 20, 1.0);
  ]

let run (_ctx : Common.context) =
  let rows =
    List.map
      (fun (dgemm, total_nodes, p_opt, p_homo, p_heur, p_pct) ->
        let platform = Adept_platform.Generator.grid5000_lyon ~n:total_nodes () in
        let wapp = Adept_workload.Dgemm.(mflops (make dgemm)) in
        let homo =
          match
            Adept.Homogeneous.plan Common.params ~platform ~wapp ~demand:Demand.unbounded
          with
          | Ok r -> r
          | Error e -> failwith ("table4: homogeneous planner failed: " ^ e)
        in
        let heur =
          match
            Adept.Heuristic.plan Common.params ~platform ~wapp ~demand:Demand.unbounded
          with
          | Ok r -> r
          | Error e -> failwith ("table4: heuristic failed: " ^ e)
        in
        let heur_metrics = Adept_hierarchy.Metrics.of_tree heur.Adept.Heuristic.tree in
        let optimum = Float.max homo.Adept.Homogeneous.predicted_rho
            heur.Adept.Heuristic.predicted_rho in
        {
          dgemm;
          total_nodes;
          paper_opt_degree = p_opt;
          paper_homo_degree = p_homo;
          paper_heur_degree = p_heur;
          paper_heur_percent = p_pct;
          homo_degree = homo.Adept.Homogeneous.degree;
          homo_rho = homo.Adept.Homogeneous.predicted_rho;
          heur_degree = heur_metrics.Adept_hierarchy.Metrics.max_degree;
          heur_rho = heur.Adept.Heuristic.predicted_rho;
          heur_percent = heur.Adept.Heuristic.predicted_rho /. optimum;
        })
      cases
  in
  { rows }

let report _ctx r =
  let table =
    List.fold_left
      (fun table row ->
        Table.add_row table
          [
            string_of_int row.dgemm;
            string_of_int row.total_nodes;
            Printf.sprintf "%d/%d/%d" row.paper_opt_degree row.paper_homo_degree
              row.paper_heur_degree;
            Table.cell_percent row.paper_heur_percent;
            string_of_int row.homo_degree;
            Table.cell_float row.homo_rho;
            string_of_int row.heur_degree;
            Table.cell_float row.heur_rho;
            Table.cell_percent row.heur_percent;
          ])
      (Table.create
         [
           "DGEMM";
           "nodes";
           "paper deg (opt/homo/heur)";
           "paper heur %";
           "homo deg";
           "homo rho";
           "heur deg";
           "heur rho";
           "heur % of opt";
         ])
      r.rows
  in
  let worst =
    List.fold_left (fun acc row -> Float.min acc row.heur_percent) 1.0 r.rows
  in
  {
    Common.id = "table4";
    title = "Heuristic vs homogeneous optimal on homogeneous clusters";
    paper_reference =
      "Table 4: heuristic reaches 100/100/89/100% of optimal with degrees 1, 2, 33, 20";
    tables = [ ("Table 4", table) ];
    notes =
      [
        Printf.sprintf "worst heuristic quality across rows: %.1f%% (paper: 89%%)"
          (worst *. 100.0);
        "reference optimum = best of the d-ary degree search and the heuristic \
         itself under Eq. 16";
      ];
    series = [];
  }
