module Table = Adept_util.Table
module Csv = Adept_util.Csv
module Demand = Adept_model.Demand

type deployment = {
  name : string;
  tree : Adept_hierarchy.Tree.t;
  predicted : float;
  series : (int * float) list;
  peak : float;
}

type result = {
  star : deployment;
  balanced : deployment;
  automatic : deployment;
  automatic_wins : bool;
}

let dgemm = 310

let n_nodes = 200

let peak series = List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 series

let deployments ctx =
  let rng = Adept_util.Rng.create ctx.Common.seed in
  let platform = Adept_platform.Generator.grid5000_orsay ~rng ~n:n_nodes () in
  let wapp = Adept_workload.Dgemm.(mflops (make dgemm)) in
  (* Intuitive deployments use nodes in platform order, power-blind. *)
  let in_order = Adept_platform.Platform.nodes platform in
  let star =
    match Adept.Baselines.star in_order with Ok t -> t | Error e -> failwith e
  in
  let balanced =
    match Adept.Baselines.balanced ~agents:14 in_order with
    | Ok t -> t
    | Error e -> failwith e
  in
  let automatic =
    match
      Adept.Heuristic.plan_tree Common.params ~platform ~wapp ~demand:Demand.unbounded
    with
    | Ok t -> t
    | Error e -> failwith e
  in
  (platform, wapp, [ ("star", star); ("balanced", balanced); ("automatic", automatic) ])

let run (ctx : Common.context) =
  let clients, warmup, duration =
    match ctx.fidelity with
    | Common.Quick -> ([ 100; 600 ], 1.0, 2.5)
    | Common.Full -> ([ 25; 50; 100; 200; 350; 500; 700 ], 1.5, 2.5)
  in
  let platform, wapp, trees = deployments ctx in
  let job = Adept_workload.Job.of_dgemm (Adept_workload.Dgemm.make dgemm) in
  let measure (name, tree) =
    let scenario =
      Adept_sim.Scenario.make ~seed:ctx.seed ~params:Common.params ~platform
        ~client:(Adept_workload.Client.closed_loop job) tree
    in
    let series = Common.measure_series scenario ~clients ~warmup ~duration in
    {
      name;
      tree;
      predicted = Adept.Evaluate.rho_on Common.params ~platform ~wapp tree;
      series;
      peak = peak series;
    }
  in
  match List.map measure trees with
  | [ star; balanced; automatic ] ->
      {
        star;
        balanced;
        automatic;
        automatic_wins = automatic.peak >= star.peak && automatic.peak >= balanced.peak;
      }
  | _ -> assert false

let report _ctx r =
  let all = [ r.star; r.balanced; r.automatic ] in
  let shape =
    List.fold_left
      (fun table d ->
        Table.add_row table
          [
            d.name;
            Adept_hierarchy.Metrics.describe d.tree;
            Table.cell_float d.predicted;
            Table.cell_float d.peak;
          ])
      (Table.create [ "deployment"; "shape"; "predicted rho"; "measured peak" ])
      all
  in
  let series_table =
    let clients = List.map fst r.star.series in
    List.fold_left
      (fun table c ->
        let v d = Table.cell_float (List.assoc c d.series) in
        Table.add_row table
          [ string_of_int c; v r.star; v r.balanced; v r.automatic ])
      (Table.create [ "clients"; "star"; "balanced"; "automatic" ])
      clients
  in
  let csv =
    List.fold_left
      (fun csv (c, s) ->
        Csv.add_floats csv
          [
            float_of_int c;
            s;
            List.assoc c r.balanced.series;
            List.assoc c r.automatic.series;
          ])
      (Csv.create [ "clients"; "star"; "balanced"; "automatic" ])
      r.star.series
  in
  {
    Common.id = "fig6";
    title =
      "Automatic vs intuitive deployments, DGEMM 310x310, 200 heterogeneous nodes";
    paper_reference =
      "Fig. 6: the automatically generated deployment (156 nodes, multi-level) \
       outperforms both the star and the balanced deployments (saturation \
       roughly 200 vs 150 vs 120 req/s)";
    tables =
      [ ("deployments", shape); ("Fig. 6 — throughput vs load", series_table) ];
    notes =
      [ Printf.sprintf "automatic wins at saturation: %b" r.automatic_wins ];
    series = [ ("throughput", csv) ];
  }
