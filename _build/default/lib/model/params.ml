type agent = { wreq : float; wfix : float; wsel : float; sreq : float; srep : float }

type server = { wpre : float; sreq : float; srep : float }

type t = { agent : agent; server : server }

let check name v =
  if v < 0.0 || not (Float.is_finite v) then
    invalid_arg (Printf.sprintf "Params.make: %s must be non-negative and finite" name)

let make ~agent ~server =
  check "agent.wreq" agent.wreq;
  check "agent.wfix" agent.wfix;
  check "agent.wsel" agent.wsel;
  check "agent.sreq" agent.sreq;
  check "agent.srep" agent.srep;
  check "server.wpre" server.wpre;
  check "server.sreq" server.sreq;
  check "server.srep" server.srep;
  { agent; server }

let diet_lyon =
  make
    ~agent:{ wreq = 1.7e-1; wfix = 4.0e-3; wsel = 5.4e-3; sreq = 5.3e-3; srep = 5.4e-3 }
    ~server:{ wpre = 6.4e-3; sreq = 5.3e-5; srep = 6.4e-5 }

let wrep t ~degree =
  if degree < 0 then invalid_arg "Params.wrep: negative degree";
  t.agent.wfix +. (t.agent.wsel *. float_of_int degree)

let scale_agent_compute t factor =
  if factor <= 0.0 || not (Float.is_finite factor) then
    invalid_arg "Params.scale_agent_compute: factor must be positive";
  {
    t with
    agent =
      {
        t.agent with
        wreq = t.agent.wreq *. factor;
        wfix = t.agent.wfix *. factor;
        wsel = t.agent.wsel *. factor;
      };
  }

let pp ppf t =
  Format.fprintf ppf
    "agent: Wreq=%g Wrep(d)=%g+%g*d Sreq=%g Srep=%g; server: Wpre=%g Sreq=%g Srep=%g"
    t.agent.wreq t.agent.wfix t.agent.wsel t.agent.sreq t.agent.srep t.server.wpre
    t.server.sreq t.server.srep

let to_table t =
  let open Adept_util in
  let table =
    Table.create
      [ "DIET element"; "Wreq (MFlop)"; "Wrep (MFlop)"; "Wpre (MFlop)"; "Srep (Mb)"; "Sreq (Mb)" ]
  in
  let table =
    Table.add_row table
      [
        "Agent";
        Printf.sprintf "%.1e" t.agent.wreq;
        Printf.sprintf "%.1e + %.1e*d" t.agent.wfix t.agent.wsel;
        "-";
        Printf.sprintf "%.1e" t.agent.srep;
        Printf.sprintf "%.1e" t.agent.sreq;
      ]
  in
  Table.add_row table
    [
      "Server";
      "-";
      "-";
      Printf.sprintf "%.1e" t.server.wpre;
      Printf.sprintf "%.1e" t.server.srep;
      Printf.sprintf "%.1e" t.server.sreq;
    ]
