type activity = Send of float | Receive of float | Compute of float

let duration activity ~power ~bandwidth =
  match activity with
  | Send size | Receive size ->
      if size < 0.0 then invalid_arg "Capability.duration: negative message size";
      Adept_util.Units.transfer_seconds ~size ~bandwidth
  | Compute w ->
      if w < 0.0 then invalid_arg "Capability.duration: negative work";
      Adept_util.Units.seconds ~w ~power

let total activities ~power ~bandwidth =
  List.fold_left (fun acc a -> acc +. duration a ~power ~bandwidth) 0.0 activities

let pp_activity ppf = function
  | Send s -> Format.fprintf ppf "send %g Mbit" s
  | Receive s -> Format.fprintf ppf "recv %g Mbit" s
  | Compute w -> Format.fprintf ppf "compute %g MFlop" w
