(** Per-request element costs: the paper's Equations 1–5.

    All functions take the link bandwidth [bandwidth] in Mbit/s, node power
    [power] in MFlop/s, and the agent degree [degree] (number of children);
    results are in seconds.  Degrees must be non-negative and bandwidth and
    power positive; violations raise [Invalid_argument]. *)

val agent_receive_time : Params.t -> bandwidth:float -> degree:int -> float
(** Eq. 1: [(Sreq + d * Srep) / B] — one request from the parent plus one
    reply from each of [d] children. *)

val agent_send_time : Params.t -> bandwidth:float -> degree:int -> float
(** Eq. 2: [(d * Sreq + Srep) / B] — the request forwarded to each child
    plus one reply to the parent. *)

val server_receive_time : Params.t -> bandwidth:float -> float
(** Eq. 3: [Sreq / B] with server-level message sizes. *)

val server_send_time : Params.t -> bandwidth:float -> float
(** Eq. 4: [Srep / B] with server-level message sizes. *)

val agent_comp_time : Params.t -> power:float -> degree:int -> float
(** Eq. 5: [(Wreq + Wrep(d)) / w]. *)

val server_prediction_time : Params.t -> power:float -> float
(** [Wpre / w]: the server-side scheduling work per request. *)

val server_service_time : power:float -> wapp:float -> float
(** [Wapp / w]: the application execution itself. *)

val agent_request_time : Params.t -> bandwidth:float -> power:float -> degree:int -> float
(** Total serial occupation of an agent per request: receive + compute +
    send (the denominator of the agent term of Eq. 14). *)

val server_sched_time : Params.t -> bandwidth:float -> power:float -> float
(** Total serial occupation of a server per scheduling request: receive +
    prediction + send (the denominator of the server term of Eq. 14). *)
