(** Steady-state throughput: the paper's Equations 10–16.

    Throughput values are requests per second.  Servers are heterogeneous:
    server [i] has power [w_i] and executes an application costing
    [wapp_i] MFlop, predicting at [Wpre] per request.  The service phase
    load split (Eqs. 6–9) assumes every server predicts every request and
    completed requests divide so that all servers finish together. *)

type server_spec = {
  power : float;  (** [w_i], MFlop/s. *)
  wapp : float;  (** [Wapp_i], MFlop per service request; must be > 0. *)
}

val agent_sched : Params.t -> bandwidth:float -> power:float -> degree:int -> float
(** Agent term of Eq. 14: the scheduling throughput sustained by an agent
    of the given power with [degree] children.  [degree] must be >= 1. *)

val server_sched : Params.t -> bandwidth:float -> power:float -> float
(** Server term of Eq. 14: prediction throughput of one server. *)

val service_comp_time : Params.t -> server_spec list -> float
(** Eq. 10: mean time for the server set to complete one request,
    computation only:
    [(1 + sum Wpre/Wapp_i) / (sum w_i / Wapp_i)].
    @raise Invalid_argument on an empty list. *)

val service : Params.t -> bandwidth:float -> server_spec list -> float
(** Eq. 15: service throughput of the platform, including the service-phase
    client–server messages: [1 / (Sreq/B + Srep/B + service_comp_time)]. *)

val completed_per_server :
  Params.t -> server_spec list -> horizon:float -> float list
(** Eq. 8: requests [N_i] completed by each server over a time horizon [T]
    seconds when the set processes at its steady-state rate.  Entries can
    be fractional; they sum to [horizon / service_comp_time].  Servers too
    slow to keep up with prediction contribute 0 rather than a negative
    count. *)

type deployment_spec = {
  agents : (float * int) list;  (** (power, degree) per agent; degrees >= 1. *)
  servers : server_spec list;  (** non-empty. *)
}

val sched : Params.t -> bandwidth:float -> deployment_spec -> float
(** Eq. 14: minimum over all agents and servers of their scheduling-phase
    throughput. *)

val platform : Params.t -> bandwidth:float -> deployment_spec -> float
(** Eq. 16: [min(sched, service)] — the completed-request throughput of the
    deployment. *)

val bottleneck :
  Params.t -> bandwidth:float -> deployment_spec ->
  [ `Agent_sched | `Server_sched | `Service ]
(** Which term of Eq. 16 attains the minimum (ties resolve in the order
    agent, server-scheduling, service). *)
