type server_spec = { power : float; wapp : float }

let check_server s =
  if s.power <= 0.0 || not (Float.is_finite s.power) then
    invalid_arg "Throughput: server power must be positive and finite";
  if s.wapp <= 0.0 || not (Float.is_finite s.wapp) then
    invalid_arg "Throughput: wapp must be positive and finite"

let agent_sched p ~bandwidth ~power ~degree =
  if degree < 1 then invalid_arg "Throughput.agent_sched: degree must be >= 1";
  1.0 /. Costs.agent_request_time p ~bandwidth ~power ~degree

let server_sched p ~bandwidth ~power =
  1.0 /. Costs.server_sched_time p ~bandwidth ~power

let service_comp_time (p : Params.t) servers =
  if servers = [] then invalid_arg "Throughput.service_comp_time: no servers";
  List.iter check_server servers;
  let ratio_sum =
    List.fold_left (fun acc s -> acc +. (p.server.wpre /. s.wapp)) 0.0 servers
  in
  let rate_sum = List.fold_left (fun acc s -> acc +. (s.power /. s.wapp)) 0.0 servers in
  (1.0 +. ratio_sum) /. rate_sum

let service p ~bandwidth servers =
  if bandwidth <= 0.0 || not (Float.is_finite bandwidth) then
    invalid_arg "Throughput.service: bandwidth must be positive and finite";
  let comm = (p.Params.server.sreq +. p.Params.server.srep) /. bandwidth in
  1.0 /. (comm +. service_comp_time p servers)

let completed_per_server (p : Params.t) servers ~horizon =
  if horizon < 0.0 then invalid_arg "Throughput.completed_per_server: negative horizon";
  let t_one = service_comp_time p servers in
  let n_total = horizon /. t_one in
  (* Eq. 8: N_i = (T * w_i - Wpre * N) / Wapp_i, clamped at 0 for servers
     slower than the aggregate prediction load. *)
  List.map
    (fun s ->
      let n_i = ((horizon *. s.power) -. (p.server.wpre *. n_total)) /. s.wapp in
      Float.max 0.0 n_i)
    servers

type deployment_spec = { agents : (float * int) list; servers : server_spec list }

let sched p ~bandwidth spec =
  if spec.agents = [] then invalid_arg "Throughput.sched: no agents";
  if spec.servers = [] then invalid_arg "Throughput.sched: no servers";
  let agent_min =
    List.fold_left
      (fun acc (power, degree) ->
        Float.min acc (agent_sched p ~bandwidth ~power ~degree))
      Float.infinity spec.agents
  in
  let server_min =
    List.fold_left
      (fun acc (s : server_spec) ->
        Float.min acc (server_sched p ~bandwidth ~power:s.power))
      Float.infinity spec.servers
  in
  Float.min agent_min server_min

let platform p ~bandwidth spec =
  Float.min (sched p ~bandwidth spec) (service p ~bandwidth spec.servers)

let bottleneck p ~bandwidth spec =
  let agent_min =
    List.fold_left
      (fun acc (power, degree) ->
        Float.min acc (agent_sched p ~bandwidth ~power ~degree))
      Float.infinity spec.agents
  in
  let server_min =
    List.fold_left
      (fun acc (s : server_spec) ->
        Float.min acc (server_sched p ~bandwidth ~power:s.power))
      Float.infinity spec.servers
  in
  let svc = service p ~bandwidth spec.servers in
  if agent_min <= server_min && agent_min <= svc then `Agent_sched
  else if server_min <= svc then `Server_sched
  else `Service
