(** The [M(r, s, w)] capability model (Section 3, after Eq. 10).

    A computing resource has no internal parallelism: it can either send a
    message, receive a message, or compute, one activity at a time through
    a single port.  This module gives the vocabulary shared by the
    closed-form model and the discrete-event simulator, and the duration of
    each activity. *)

type activity =
  | Send of float  (** message size, Mbit. *)
  | Receive of float  (** message size, Mbit. *)
  | Compute of float  (** work, MFlop. *)

val duration : activity -> power:float -> bandwidth:float -> float
(** Time in seconds the activity occupies the resource.  [power] applies to
    [Compute]; [bandwidth] to [Send]/[Receive].
    @raise Invalid_argument on non-positive power/bandwidth or negative
    amounts. *)

val total : activity list -> power:float -> bandwidth:float -> float
(** Serial execution time of a sequence of activities (the model's core
    assumption: activities never overlap on one resource). *)

val pp_activity : Format.formatter -> activity -> unit
