let check_bandwidth b =
  if b <= 0.0 || not (Float.is_finite b) then
    invalid_arg "Costs: bandwidth must be positive and finite"

let check_power w =
  if w <= 0.0 || not (Float.is_finite w) then
    invalid_arg "Costs: power must be positive and finite"

let check_degree d = if d < 0 then invalid_arg "Costs: negative degree"

let agent_receive_time (p : Params.t) ~bandwidth ~degree =
  check_bandwidth bandwidth;
  check_degree degree;
  (p.agent.sreq +. (float_of_int degree *. p.agent.srep)) /. bandwidth

let agent_send_time (p : Params.t) ~bandwidth ~degree =
  check_bandwidth bandwidth;
  check_degree degree;
  ((float_of_int degree *. p.agent.sreq) +. p.agent.srep) /. bandwidth

let server_receive_time (p : Params.t) ~bandwidth =
  check_bandwidth bandwidth;
  p.server.sreq /. bandwidth

let server_send_time (p : Params.t) ~bandwidth =
  check_bandwidth bandwidth;
  p.server.srep /. bandwidth

let agent_comp_time (p : Params.t) ~power ~degree =
  check_power power;
  check_degree degree;
  (p.agent.wreq +. Params.wrep p ~degree) /. power

let server_prediction_time (p : Params.t) ~power =
  check_power power;
  p.server.wpre /. power

let server_service_time ~power ~wapp =
  check_power power;
  if wapp < 0.0 then invalid_arg "Costs.server_service_time: negative wapp";
  wapp /. power

let agent_request_time p ~bandwidth ~power ~degree =
  agent_receive_time p ~bandwidth ~degree
  +. agent_comp_time p ~power ~degree
  +. agent_send_time p ~bandwidth ~degree

let server_sched_time p ~bandwidth ~power =
  server_receive_time p ~bandwidth
  +. server_prediction_time p ~power
  +. server_send_time p ~bandwidth
