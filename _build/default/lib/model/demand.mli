(** Client demand.

    The heuristic stops growing the hierarchy once the demanded request
    rate is met (the paper's [client_volume] / [min_ser_cv]); unbounded
    demand asks for the maximum-throughput deployment. *)

type t = Unbounded | Rate of float  (** requests per second, > 0. *)

val rate : float -> t
(** @raise Invalid_argument if the rate is not positive and finite. *)

val unbounded : t

val cap : t -> float -> float
(** [cap demand rho] limits a throughput by the demand:
    [min rho r] for [Rate r], [rho] otherwise. *)

val is_met : t -> float -> bool
(** [is_met demand rho] is true when [rho] satisfies the demand (always
    false for [Unbounded]: one can always want more). *)

val min_target : t -> float -> float
(** [min_target demand x] is [min r x] for [Rate r] and [x] otherwise —
    the paper's [min_ser_cv] combining service power and client demand. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
