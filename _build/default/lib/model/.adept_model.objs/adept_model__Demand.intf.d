lib/model/demand.mli: Format
