lib/model/throughput.ml: Costs Float List Params
