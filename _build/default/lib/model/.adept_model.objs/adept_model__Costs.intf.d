lib/model/costs.mli: Params
