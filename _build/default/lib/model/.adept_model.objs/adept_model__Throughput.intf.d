lib/model/throughput.mli: Params
