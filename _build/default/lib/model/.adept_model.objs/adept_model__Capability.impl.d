lib/model/capability.ml: Adept_util Format List
