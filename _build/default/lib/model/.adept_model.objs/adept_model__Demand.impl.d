lib/model/demand.ml: Float Format
