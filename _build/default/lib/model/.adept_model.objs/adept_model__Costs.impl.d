lib/model/costs.ml: Float Params
