lib/model/capability.mli: Format
