lib/model/params.ml: Adept_util Float Format Printf Table
