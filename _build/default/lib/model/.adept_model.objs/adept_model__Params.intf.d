lib/model/params.mli: Adept_util Format
