type t = Unbounded | Rate of float

let rate r =
  if r <= 0.0 || not (Float.is_finite r) then
    invalid_arg "Demand.rate: rate must be positive and finite";
  Rate r

let unbounded = Unbounded

let cap t rho = match t with Unbounded -> rho | Rate r -> Float.min rho r

let is_met t rho = match t with Unbounded -> false | Rate r -> rho >= r

let min_target t x = match t with Unbounded -> x | Rate r -> Float.min r x

let pp ppf = function
  | Unbounded -> Format.pp_print_string ppf "unbounded"
  | Rate r -> Format.fprintf ppf "%.2f req/s" r

let equal a b =
  match (a, b) with
  | Unbounded, Unbounded -> true
  | Rate x, Rate y -> x = y
  | Unbounded, Rate _ | Rate _, Unbounded -> false
