(** Middleware element cost parameters (the paper's Table 3).

    All computation amounts are in MFlop, message sizes in Mbit.  The
    agent's reply-processing cost is the linear model
    [Wrep(d) = wfix + wsel * d] fitted by the paper against agent degree
    (correlation coefficient 0.97). *)

type agent = {
  wreq : float;  (** [Wreq]: processing of one incoming request, MFlop. *)
  wfix : float;  (** [Wfix]: fixed part of reply processing, MFlop. *)
  wsel : float;  (** [Wsel]: per-child part of reply processing, MFlop. *)
  sreq : float;  (** [Sreq]: agent-level request message, Mbit. *)
  srep : float;  (** [Srep]: agent-level reply message, Mbit. *)
}

type server = {
  wpre : float;  (** [Wpre]: performance prediction per request, MFlop. *)
  sreq : float;  (** [Sreq]: server-level request message, Mbit. *)
  srep : float;  (** [Srep]: server-level reply message, Mbit. *)
}

type t = { agent : agent; server : server }

val make : agent:agent -> server:server -> t
(** @raise Invalid_argument if any component is negative or non-finite. *)

val diet_lyon : t
(** The constants measured on the Lyon site of Grid'5000 (Table 3):
    agent [Wreq = 1.7e-1], [Wrep(d) = 4.0e-3 + 5.4e-3 d],
    [Srep = 5.4e-3], [Sreq = 5.3e-3]; server [Wpre = 6.4e-3],
    [Srep = 6.4e-5], [Sreq = 5.3e-5]. *)

val wrep : t -> degree:int -> float
(** [Wrep(d) = Wfix + Wsel * d] (MFlop).  @raise Invalid_argument if
    [degree < 0]. *)

val scale_agent_compute : t -> float -> t
(** Multiply the agent computation costs by a factor — used for
    sensitivity/ablation studies.  @raise Invalid_argument if the factor is
    not positive. *)

val pp : Format.formatter -> t -> unit

val to_table : t -> Adept_util.Table.t
(** Render in the layout of the paper's Table 3. *)
