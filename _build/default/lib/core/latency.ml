open Adept_platform
open Adept_hierarchy
module Params = Adept_model.Params
module Costs = Adept_model.Costs

type estimate = {
  rate : float;
  sched_latency : float;
  service_latency : float;
  total : float;
  max_utilization : float;
  stable : bool;
}

(* M/D/1 mean waiting time for a resource occupied [s] seconds per request
   at utilisation [u]. *)
let md1_wait ~s ~u = if u >= 1.0 then Float.infinity else u *. s /. (2.0 *. (1.0 -. u))

let estimate (params : Params.t) ~bandwidth ~wapp ~rate tree =
  if rate <= 0.0 || not (Float.is_finite rate) then
    invalid_arg "Latency.estimate: rate must be positive and finite";
  if wapp <= 0.0 then invalid_arg "Latency.estimate: wapp must be positive";
  if bandwidth <= 0.0 then invalid_arg "Latency.estimate: bandwidth must be positive";
  let servers = Tree.servers tree in
  if servers = [] then invalid_arg "Latency.estimate: hierarchy has no servers";
  let ag = params.Params.agent and srv = params.Params.server in
  let total_power = List.fold_left (fun acc s -> acc +. Node.power s) 0.0 servers in
  (* service share of server i under the Eqs. 6-9 proportional split *)
  let share node = Node.power node /. total_power in
  (* per-request port occupation *)
  let agent_occupation node degree =
    Costs.agent_request_time params ~bandwidth ~power:(Node.power node) ~degree
  in
  let server_occupation node =
    let w = Node.power node in
    (srv.wpre /. w)
    +. ((srv.sreq +. srv.srep) /. bandwidth)
    +. (share node *. (((srv.sreq +. srv.srep) /. bandwidth) +. (wapp /. w)))
  in
  (* collect utilisations for the stability verdict *)
  let max_u = ref 0.0 in
  let note_u u = if u > !max_u then max_u := u in
  let agent_wait node degree =
    let s = agent_occupation node degree in
    let u = rate *. s in
    note_u u;
    md1_wait ~s ~u
  in
  List.iter (fun s -> note_u (rate *. server_occupation s)) servers;
  (* scheduling-phase latency: recursive path time with queue waits at the
     agents (server predictions run on a non-blocking lane; their charge
     appears in the server utilisation, not the scheduling path) *)
  let rec sched_path tree =
    match tree with
    | Tree.Server node ->
        (srv.wpre /. Node.power node) +. (srv.srep /. bandwidth)
    | Tree.Agent (node, children) ->
        let degree = List.length children in
        let w = Node.power node in
        let deepest_child =
          List.fold_left (fun acc c -> Float.max acc (sched_path c)) 0.0 children
        in
        agent_wait node degree
        +. (ag.sreq /. bandwidth) (* receive from parent/client *)
        +. (ag.wreq /. w)
        +. (float_of_int degree *. ag.sreq /. bandwidth) (* serial fan-out *)
        +. deepest_child
        +. (float_of_int degree *. ag.srep /. bandwidth) (* serial reply collection *)
        +. (Params.wrep params ~degree /. w)
        +. (ag.srep /. bandwidth) (* reply up *)
  in
  let sched_latency = sched_path tree in
  (* service phase: expectation over the proportional split *)
  let service_latency =
    List.fold_left
      (fun acc node ->
        let w = Node.power node in
        let s = server_occupation node in
        let u = rate *. s in
        acc
        +. (share node
           *. (md1_wait ~s ~u
              +. (srv.sreq /. bandwidth)
              +. (wapp /. w)
              +. (srv.srep /. bandwidth))))
      0.0 servers
  in
  let stable = !max_u < 1.0 in
  let sched_latency = if stable then sched_latency else Float.infinity in
  let service_latency = if stable then service_latency else Float.infinity in
  {
    rate;
    sched_latency;
    service_latency;
    total = sched_latency +. service_latency;
    max_utilization = !max_u;
    stable;
  }

let sweep params ~bandwidth ~wapp ~rates tree =
  List.map (fun rate -> estimate params ~bandwidth ~wapp ~rate tree) rates

let pp ppf e =
  if e.stable then
    Format.fprintf ppf
      "@%.1f req/s: total %.4fs (sched %.4fs + service %.4fs), max util %.0f%%" e.rate
      e.total e.sched_latency e.service_latency (100.0 *. e.max_utilization)
  else
    Format.fprintf ppf "@%.1f req/s: unstable (max util %.0f%%)" e.rate
      (100.0 *. e.max_utilization)
