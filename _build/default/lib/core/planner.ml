open Adept_platform
open Adept_hierarchy
module Demand = Adept_model.Demand

type strategy =
  | Heuristic
  | Star
  | Balanced of int
  | Dary of int
  | Homogeneous_optimal
  | Exhaustive
  | Multi_cluster
  | Improved of strategy

let rec strategy_name = function
  | Heuristic -> "heuristic"
  | Star -> "star"
  | Balanced k -> Printf.sprintf "balanced:%d" k
  | Dary d -> Printf.sprintf "dary:%d" d
  | Homogeneous_optimal -> "homogeneous"
  | Exhaustive -> "exhaustive"
  | Multi_cluster -> "multi-cluster"
  | Improved inner -> "improved:" ^ strategy_name inner

let strip_prefix prefix s =
  let plen = String.length prefix in
  if String.length s > plen && String.sub s 0 plen = prefix then
    Some (String.sub s plen (String.length s - plen))
  else None

let rec strategy_of_string s =
  let int_suffix prefix s =
    Option.bind (strip_prefix prefix s) int_of_string_opt
  in
  match s with
  | "heuristic" -> Ok Heuristic
  | "star" -> Ok Star
  | "homogeneous" -> Ok Homogeneous_optimal
  | "exhaustive" -> Ok Exhaustive
  | "multi-cluster" -> Ok Multi_cluster
  | s -> (
      match int_suffix "balanced:" s with
      | Some k -> Ok (Balanced k)
      | None -> (
          match int_suffix "dary:" s with
          | Some d -> Ok (Dary d)
          | None -> (
              match strip_prefix "improved:" s with
              | Some inner -> Result.map (fun i -> Improved i) (strategy_of_string inner)
              | None -> Error (Printf.sprintf "unknown strategy %S" s))))

type plan = {
  strategy : strategy;
  tree : Tree.t;
  predicted_rho : float;
  demand_met : bool;
  nodes_used : int;
  nodes_available : int;
}

let ( let* ) = Result.bind

let rec plan_tree strategy params ~platform ~wapp ~demand =
  let nodes = Platform.sorted_by_power_desc platform in
  match strategy with
  | Heuristic -> Heuristic.plan_tree params ~platform ~wapp ~demand
  | Star -> Baselines.star nodes
  | Balanced k -> Baselines.balanced ~agents:k nodes
  | Dary d -> Baselines.dary ~degree:d nodes
  | Homogeneous_optimal ->
      Result.map (fun (r : Homogeneous.result) -> r.tree)
        (Homogeneous.plan params ~platform ~wapp ~demand)
  | Exhaustive -> Result.map fst (Exhaustive.optimal params ~platform ~wapp ())
  | Multi_cluster ->
      Result.map (fun (r : Multi_cluster.result) -> r.Multi_cluster.tree)
        (Multi_cluster.plan params ~platform ~wapp ~demand)
  | Improved inner ->
      let* start = plan_tree inner params ~platform ~wapp ~demand in
      Result.map (fun (r : Improver.result) -> r.Improver.tree)
        (Improver.improve params ~platform ~wapp start)

let run strategy params ~platform ~wapp ~demand =
  let* tree = plan_tree strategy params ~platform ~wapp ~demand in
  let* () =
    match Validate.check ~platform tree with
    | Ok () -> Ok ()
    | Error errs ->
        Error
          (Printf.sprintf "strategy %s produced an invalid hierarchy: %s"
             (strategy_name strategy)
             (String.concat "; " (List.map Validate.error_to_string errs)))
  in
  let predicted_rho = Evaluate.rho_hetero params ~platform ~wapp tree in
  Ok
    {
      strategy;
      tree;
      predicted_rho;
      demand_met = Demand.is_met demand predicted_rho;
      nodes_used = Tree.size tree;
      nodes_available = Platform.size platform;
    }

let compare_strategies params ~platform ~wapp ~demand strategies =
  List.map (fun s -> (s, run s params ~platform ~wapp ~demand)) strategies

let pp_plan ppf p =
  Format.fprintf ppf "%s: rho=%.2f req/s, %d/%d nodes, %s" (strategy_name p.strategy)
    p.predicted_rho p.nodes_used p.nodes_available
    (Metrics.describe p.tree)
