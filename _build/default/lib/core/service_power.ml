open Adept_platform
module Throughput = Adept_model.Throughput

let of_powers params ~bandwidth ~wapp powers =
  let servers =
    List.map (fun power -> { Throughput.power; wapp }) powers
  in
  Throughput.service params ~bandwidth servers

let of_servers params ~bandwidth ~wapp nodes =
  of_powers params ~bandwidth ~wapp (List.map Node.power nodes)

let marginal params ~bandwidth ~wapp servers candidate =
  of_servers params ~bandwidth ~wapp (candidate :: servers)
