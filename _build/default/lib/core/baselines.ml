open Adept_hierarchy
module Rng = Adept_util.Rng

let star_with ~agent ~servers =
  if servers = [] then Error "star: need at least one server"
  else Ok (Tree.star agent servers)

let star = function
  | [] | [ _ ] -> Error "star: need at least two nodes"
  | agent :: servers -> star_with ~agent ~servers

let balanced ~agents nodes =
  let n = List.length nodes in
  if agents < 1 then Error "balanced: need at least one middle agent"
  else if n < 1 + agents + (2 * agents) then
    Error
      (Printf.sprintf "balanced: %d nodes cannot host 1 + %d agents with >= 2 servers each"
         n agents)
  else
    match nodes with
    | [] -> Error "balanced: empty node list"
    | top :: rest ->
        let middle = Array.of_list (List.filteri (fun i _ -> i < agents) rest) in
        let servers = List.filteri (fun i _ -> i >= agents) rest in
        let buckets = Array.make agents [] in
        List.iteri (fun i s -> buckets.(i mod agents) <- s :: buckets.(i mod agents)) servers;
        let children =
          Array.to_list
            (Array.mapi (fun i a -> Tree.star a (List.rev buckets.(i))) middle)
        in
        Ok (Tree.agent top children)

let dary ~degree nodes =
  let n = List.length nodes in
  if degree < 1 then Error "dary: degree must be >= 1"
  else if n < 2 then Error "dary: need at least two nodes"
  else begin
    let arr = Array.of_list nodes in
    (* Heap-style indexing: children of position i are i*d+1 .. i*d+d. *)
    let rec build i =
      let first = (i * degree) + 1 in
      if first >= n then Tree.server arr.(i)
      else
        let last = min (first + degree - 1) (n - 1) in
        let children = List.init (last - first + 1) (fun k -> build (first + k)) in
        Tree.agent arr.(i) children
    in
    (* Frontier rounding can leave a non-root agent with a single child;
       Tree.normalize demotes it and splices the child upward. *)
    Ok (Tree.normalize (build 0))
  end

(* Random partition of [items] into groups of size 1 (future server) or
   >= 3 (future agent subtree), with at least [min_groups] groups. *)
let rec random_partition rng ~min_groups items =
  let m = List.length items in
  if m < min_groups then None
  else if m = 0 then Some []
  else
    let take k =
      let rec split acc k = function
        | rest when k = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | x :: rest -> split (x :: acc) (k - 1) rest
      in
      split [] k items
    in
    let groups_needed_after = max 0 (min_groups - 1) in
    let max_take =
      (* leave enough items for the remaining mandatory groups *)
      m - groups_needed_after
    in
    let size =
      if max_take < 3 || Rng.bool rng then 1
      else if Rng.bool rng then 1
      else Rng.int_in rng 3 max_take
    in
    let group, rest = take size in
    match random_partition rng ~min_groups:groups_needed_after rest with
    | Some groups -> Some (group :: groups)
    | None -> None

let rec random_subtree rng = function
  | [] -> invalid_arg "random_subtree: empty group"
  | [ node ] -> Tree.server node
  | node :: rest -> (
      match random_partition rng ~min_groups:2 rest with
      | Some groups -> Tree.agent node (List.map (random_subtree rng) groups)
      | None ->
          (* rest has fewer than 2 items; fall back to a flat star *)
          Tree.star node rest)

let random ~rng nodes =
  let n = List.length nodes in
  if n < 2 then Error "random: need at least two nodes"
  else begin
    let arr = Array.of_list nodes in
    Rng.shuffle rng arr;
    let used = Rng.int_in rng 2 n in
    match Array.to_list (Array.sub arr 0 used) with
    | [] | [ _ ] -> Error "random: internal error"
    | root :: rest -> (
        match random_partition rng ~min_groups:1 rest with
        | Some groups -> Ok (Tree.agent root (List.map (random_subtree rng) groups))
        | None -> Ok (Tree.star root rest))
  end
