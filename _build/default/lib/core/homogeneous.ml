open Adept_platform
open Adept_hierarchy
module Demand = Adept_model.Demand

type result = {
  tree : Tree.t;
  degree : int;
  predicted_rho : float;
  per_degree : (int * float) list;
}

let plan params ~platform ~wapp ~demand =
  let n = Platform.size platform in
  if n < 2 then Error "homogeneous: need at least two nodes"
  else if wapp <= 0.0 || not (Float.is_finite wapp) then
    Error "homogeneous: wapp must be positive and finite"
  else
    match Link.uniform_bandwidth (Platform.link platform) with
    | None -> Error "homogeneous: the model requires homogeneous connectivity"
    | Some bandwidth ->
        let nodes = Platform.sorted_by_power_desc platform in
        let candidates =
          List.filter_map
            (fun degree ->
              match Baselines.dary ~degree nodes with
              | Error _ -> None
              | Ok tree ->
                  let rho = Evaluate.rho params ~bandwidth ~wapp tree in
                  Some (degree, tree, rho, Tree.size tree))
            (List.init (n - 1) (fun i -> i + 1))
        in
        let per_degree = List.map (fun (d, _, rho, _) -> (d, rho)) candidates in
        let better_unbounded (da, ra, ua) (db, rb, ub) =
          (* prefer: higher rho, then fewer nodes, then smaller degree *)
          if rb > ra then true
          else if rb < ra then false
          else if ub < ua then true
          else if ub > ua then false
          else db < da
        in
        let meeting =
          match demand with
          | Demand.Unbounded -> []
          | Demand.Rate r ->
              List.filter (fun (_, _, rho, _) -> rho >= r *. (1.0 -. 1e-9)) candidates
        in
        let pool, prefer =
          match meeting with
          | [] -> (candidates, better_unbounded)
          | _ :: _ ->
              ( meeting,
                fun (da, _, ua) (db, _, ub) ->
                  (* demand met: fewest nodes, then smaller degree *)
                  if ub < ua then true else if ub > ua then false else db < da )
        in
        let best =
          List.fold_left
            (fun acc (d, tree, rho, used) ->
              match acc with
              | None -> Some (d, tree, rho, used)
              | Some (bd, _, brho, bused) ->
                  if prefer (bd, brho, bused) (d, rho, used) then Some (d, tree, rho, used)
                  else acc)
            None pool
        in
        (match best with
        | None -> Error "homogeneous: no valid d-ary tree could be built"
        | Some (_, tree, predicted_rho, _) ->
            (* Report the realised degree: frontier fix-ups can leave the
               built tree with a different maximum degree than the search
               parameter (e.g. a demoted single-child agent widens the
               root). *)
            let degree = (Metrics.of_tree tree).Metrics.max_degree in
            Ok { tree; degree; predicted_rho; per_degree })
