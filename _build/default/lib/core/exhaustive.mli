(** Brute-force optimal deployment for small platforms.

    Enumerates every valid hierarchy over every subset of the nodes and
    keeps the Eq. 16 maximum.  The count of valid hierarchies explodes
    combinatorially, so this is a test oracle (the heuristic's quality is
    measured against it, as Table 4 measures against the homogeneous
    optimal) rather than a planner; the size guard rejects platforms
    beyond [max_nodes]. *)

open Adept_platform
open Adept_hierarchy

val default_max_nodes : int
(** 8 — a few hundred thousand trees, still fast. *)

val enumerate : Node.t list -> Tree.t Seq.t
(** All valid hierarchies using exactly the given nodes (every node used).
    Children partitions are enumerated without regard to order, so
    structurally identical trees appear once. *)

val enumerate_subsets : Node.t list -> Tree.t Seq.t
(** All valid hierarchies over every non-empty subset of the nodes. *)

val optimal :
  ?max_nodes:int ->
  Adept_model.Params.t ->
  platform:Platform.t ->
  wapp:float ->
  unit ->
  (Tree.t * float, string) Stdlib.result
(** The maximum-rho hierarchy and its throughput.  Errors on oversized
    platforms ([> max_nodes]) or heterogeneous connectivity. *)

val count : Node.t list -> int
(** Number of hierarchies {!enumerate_subsets} yields (for tests). *)
