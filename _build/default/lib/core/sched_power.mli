(** Scheduling power of individual nodes (the paper's [calc_sch_pow]).

    The scheduling power of a node acting as an agent depends on its
    computing power and its number of children (Eq. 14); the heuristic
    sorts candidate nodes by their scheduling power with [n_nodes - 1]
    children to find the most agent-worthy nodes. *)

open Adept_platform

val agent : Adept_model.Params.t -> bandwidth:float -> node:Node.t -> children:int -> float
(** Requests/s the node can schedule as an agent with [children] children
    (agent term of Eq. 14).  [children >= 1]. *)

val server : Adept_model.Params.t -> bandwidth:float -> node:Node.t -> float
(** Requests/s the node can predict for as a server (server term of
    Eq. 14). *)

val sort_nodes :
  Adept_model.Params.t -> bandwidth:float -> Node.t list -> Node.t list
(** The paper's [sort_nodes]: decreasing scheduling power evaluated with
    [n - 1] children (Steps 1–2 of Algorithm 1), ties broken by higher raw
    power then lower id.  Returns [] for [].  Single-node lists sort with
    one child. *)

val supported_children :
  Adept_model.Params.t ->
  bandwidth:float ->
  node:Node.t ->
  floor:float ->
  max_children:int ->
  int
(** The largest degree [d <= max_children] such that
    [agent ~node ~children:d >= floor], or 0 when even one child drops the
    node below [floor] — the paper's [supported_children] notion: how many
    children an agent can take before becoming the bottleneck. *)
